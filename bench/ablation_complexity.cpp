// The §4.3.1 complexity claim, measured: our solver is O(m^2) while LTB is
// O(C * N^n * m^2). Sweeps pattern size m (dense 2-D boxes), dimensionality
// n (dense boxes of fixed volume) and random sparse patterns, reporting the
// instrumented arithmetic-operation counts of both solvers.
#include <iostream>

#include "baseline/ltb.h"
#include "common/random.h"
#include "common/table.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace {

using namespace mempart;

void report(TextTable& t, const Pattern& p) {
  PartitionRequest req;
  req.pattern = p;
  const PartitionSolution ours = Partitioner::solve(req);
  baseline::LtbOptions options;
  options.max_banks = 512;
  const baseline::LtbSolution ltb = baseline::ltb_solve(p, options);
  t.add_row();
  t.cell(p.name())
      .cell(p.size())
      .cell(static_cast<std::int64_t>(p.rank()))
      .cell(ours.num_banks())
      .cell(ltb.num_banks)
      .cell(ours.ops.arithmetic())
      .cell(ltb.ops.arithmetic())
      .cell(static_cast<double>(ltb.ops.arithmetic()) /
                static_cast<double>(ours.ops.arithmetic()),
            1);
}

}  // namespace

int main() {
  std::cout << "=== Solver cost scaling: ops(ours) ~ m^2 vs ops(LTB) ~ "
               "C*N^n*m^2 ===\n\n";

  TextTable t;
  t.row({"Pattern", "m", "n", "N ours", "N LTB", "ops ours", "ops LTB",
         "ratio"});
  t.separator();

  // m sweep: dense k x k boxes (conflict-free at N = m immediately, so the
  // growth isolates the m^2 term).
  for (Count k = 2; k <= 7; ++k) report(t, patterns::box2d(k));
  t.separator();

  // n sweep: dense boxes with similar m but rising rank.
  report(t, patterns::row1d(27));
  report(t, patterns::box2d(5));
  report(t, patterns::box3d(3));
  t.separator();

  // Sparse random patterns: irregular difference sets force both solvers to
  // reject candidates (the C term).
  Rng rng(2026);
  for (int i = 0; i < 5; ++i) {
    report(t, patterns::random_pattern(rng, {6, 6}, 10));
  }
  t.separator();
  Rng rng3(2027);
  for (int i = 0; i < 3; ++i) {
    report(t, patterns::random_pattern(rng3, {3, 3, 3}, 8));
  }

  t.print(std::cout);
  std::cout << "\nThe ratio explodes with rank n (LTB enumerates N^n "
               "vectors) and stays\nbounded for ours — the paper's "
               "exponential-to-constant reduction.\n";
  return 0;
}
