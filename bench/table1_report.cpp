// Reproduces Table 1 of the paper: for the seven benchmark patterns,
// compares the proposed partitioner against the LTB baseline on
//   - minimal bank number,
//   - storage overhead in 9kb memory blocks at SD..4K,
//   - arithmetic operations spent finding the solution,
//   - execution time (averaged over many repetitions, as in §5.2).
// Paper values are printed beside measured values; EXPERIMENTS.md records
// which columns reproduce exactly and which only in shape.
#include <array>
#include <chrono>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "baseline/ltb.h"
#include "baseline/ltb_mapping.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/overhead.h"
#include "core/partitioner.h"
#include "hw/bram.h"
#include "hw/resolutions.h"
#include "pattern/pattern_library.h"

namespace {

using namespace mempart;

struct PaperRow {
  const char* name;
  Count ltb_banks;
  Count our_banks;
  std::array<Count, 5> ltb_overhead;
  std::array<Count, 5> our_overhead;
  Count ltb_ops;
  Count our_ops;
  double ltb_ms;
  double our_ms;
};

// Table 1 of the paper, verbatim.
const PaperRow kPaper[] = {
    {"LoG", 13, 13, {10, 28, 49, 58, 106}, {2, 19, 41, 55, 76}, 1053, 92,
     0.575, 0.024},
    {"Canny", 25, 25, {32, 38, 79, 43, 142}, {23, 12, 69, 0, 103}, 5575, 325,
     1.451, 0.024},
    {"Prewitt", 9, 9, {14, 9, 12, 24, 12}, {7, 0, 0, 10, 0}, 2784, 37, 2.472,
     0.018},
    {"SE", 5, 5, {0, 0, 0, 0, 0}, {0, 0, 0, 0, 0}, 120, 16, 0.188, 0.015},
    {"Sobel3D", 27, 27, {8193, 24578, 36864, 78508, 105984},
     {2731, 8192, 18432, 36409, 73728}, 4564742, 352, 1108, 0.025},
    {"Median", 7, 8, {7, 4, 27, 20, 33}, {0, 0, 0, 0, 0}, 217, 30, 0.241,
     0.015},
    {"Gaussian", 10, 13, {0, 0, 0, 0, 0}, {2, 19, 41, 55, 76}, 3996, 50,
     3.038, 0.017},
};

double improvement(double baseline, double ours) {
  if (baseline == 0.0) return ours == 0.0 ? 0.0 : -100.0;
  return 100.0 * (baseline - ours) / baseline;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v);
  return buf;
}

/// Wall-time of `fn` averaged over `reps` runs, in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn, int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         reps;
}

/// Everything one pattern contributes to the table, computed off-thread.
struct MeasuredRow {
  bool present = false;
  Count ltb_banks = 0;
  Count our_banks = 0;
  std::array<Count, 5> ltb_blocks{};
  std::array<Count, 5> our_blocks{};
  Count ltb_ops = 0;
  Count our_ops = 0;
  double ltb_ms = 0.0;
  double our_ms = 0.0;
};

}  // namespace

int main() {
  std::cout << "=== Table 1: memory partitioning, ours vs LTB (Wang DAC'13) ===\n"
            << "Storage overhead in 9kb memory blocks (16-bit elements); see\n"
            << "DESIGN.md for the reconstructed accounting.\n\n";

  const auto& resolutions = hw::table1_resolutions();
  const auto all_patterns = patterns::table1_patterns();

  // The seven patterns are independent: solve, time and size each on the
  // pool (MEMPART_THREADS controls width), then print in the fixed paper
  // order so the table is byte-stable regardless of thread count. Note the
  // wall-times are measured under co-scheduling, so treat them as a sanity
  // band rather than a precision benchmark when threads > 1.
  ThreadPool pool;
  const Count num_rows = static_cast<Count>(std::size(kPaper));
  const std::vector<MeasuredRow> measured =
      pool.map_chunked<MeasuredRow>(num_rows, 1, [&](Count row_index) {
        const PaperRow& paper = kPaper[static_cast<size_t>(row_index)];
        const Pattern* pattern = nullptr;
        for (const Pattern& p : all_patterns) {
          if (p.name() == paper.name) pattern = &p;
        }
        MeasuredRow out;
        if (pattern == nullptr) return out;
        out.present = true;
        const bool three_d = pattern->rank() == 3;

        // --- solve both ways, with op counting ---
        PartitionRequest req;
        req.pattern = *pattern;
        const PartitionSolution ours = Partitioner::solve(req);
        const baseline::LtbSolution ltb = baseline::ltb_solve(*pattern);
        out.ltb_banks = ltb.num_banks;
        out.our_banks = ours.num_banks();
        out.ltb_ops = ltb.ops.arithmetic();
        out.our_ops = ours.ops.arithmetic();

        // --- timing: repeat enough for stable numbers, like the paper's
        // 10000 repetitions (fewer for the expensive 3-D LTB search) ---
        const int our_reps = 2000;
        const int ltb_reps = three_d ? 20 : 500;
        out.our_ms = time_ms(
            [&] {
              PartitionRequest r;
              r.pattern = *pattern;
              (void)Partitioner::solve(r);
            },
            our_reps);
        out.ltb_ms =
            time_ms([&] { (void)baseline::ltb_solve(*pattern); }, ltb_reps);

        // --- storage overhead per resolution ---
        for (size_t i = 0; i < resolutions.size(); ++i) {
          const NdShape shape =
              three_d ? resolutions[i].shape3d() : resolutions[i].shape2d();
          out.our_blocks[i] = hw::overhead_blocks(
              storage_overhead_elements(shape, ours.num_banks()));
          out.ltb_blocks[i] = hw::overhead_blocks(
              baseline::ltb_storage_overhead_elements(shape, ltb.num_banks));
        }
        return out;
      });

  double sum_overhead_impr = 0.0;
  double sum_ops_impr = 0.0;
  double sum_time_impr = 0.0;
  int overhead_cells = 0;

  TextTable t;
  t.row({"Pattern", "", "Banks", "SD", "HD", "FullHD", "WQXGA", "4K", "Ops",
         "Time/ms"});
  t.separator();

  for (Count row_index = 0; row_index < num_rows; ++row_index) {
    const PaperRow& paper = kPaper[static_cast<size_t>(row_index)];
    const MeasuredRow& row = measured[static_cast<size_t>(row_index)];
    if (!row.present) continue;

    for (size_t i = 0; i < resolutions.size(); ++i) {
      sum_overhead_impr += improvement(static_cast<double>(row.ltb_blocks[i]),
                                       static_cast<double>(row.our_blocks[i]));
      ++overhead_cells;
    }
    sum_ops_impr += improvement(static_cast<double>(row.ltb_ops),
                                static_cast<double>(row.our_ops));
    sum_time_impr += improvement(row.ltb_ms, row.our_ms);

    auto emit = [&](const std::string& label, Count banks,
                    const std::array<Count, 5>& blocks, Count ops, double ms) {
      t.cell(paper.name).cell(label).cell(banks);
      for (Count b : blocks) t.cell(b);
      t.cell(ops).cell(ms, 4);
    };
    t.add_row();
    emit("LTB measured", row.ltb_banks, row.ltb_blocks, row.ltb_ops,
         row.ltb_ms);
    t.add_row();
    emit("LTB paper", paper.ltb_banks, paper.ltb_overhead, paper.ltb_ops,
         paper.ltb_ms);
    t.add_row();
    emit("ours measured", row.our_banks, row.our_blocks, row.our_ops,
         row.our_ms);
    t.add_row();
    emit("ours paper", paper.our_banks, paper.our_overhead, paper.our_ops,
         paper.our_ms);
    t.separator();
  }
  t.print(std::cout);

  std::cout << "\nAverage improvement (measured, ours vs LTB):\n"
            << "  storage overhead: "
            << pct(sum_overhead_impr / overhead_cells)
            << "   (paper: 31.1%)\n"
            << "  arithmetic ops:   " << pct(sum_ops_impr / 7)
            << "   (paper: 93.7%)\n"
            << "  execution time:   " << pct(sum_time_impr / 7)
            << "   (paper: 96.9%)\n";
  return 0;
}
