// The §1 motivation, made measurable: run the LoG loop nest (Fig. 1(b))
// against four memory organisations and report cycles and effective
// bandwidth from the banked-memory simulator —
//   flat        : 1 bank (the memory-bandwidth wall),
//   LTB         : 13 banks, exhaustively found transform,
//   ours        : 13 banks, closed-form transform,
//   ours @Nmax10: 7 banks folded (fast approach).
// Also sweeps bank bandwidth B (ports per bank), the §3 extension.
#include <iostream>

#include "baseline/ltb.h"
#include "baseline/ltb_mapping.h"
#include "common/simd.h"
#include "common/table.h"
#include "hw/energy.h"
#include "core/partitioner.h"
#include "loopnest/schedule.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;
  const Pattern log = patterns::log5x5();
  // A scaled-down frame keeps full simulation exact but fast; cycle ratios
  // are size-independent because conflicts are position-invariant.
  const NdShape frame({96, 72});
  const loopnest::StencilProgram program(frame, log, "LoG");

  const sim::FlatAddressMap flat{frame};

  const baseline::LtbSolution ltb_sol = baseline::ltb_solve(log);
  const sim::LtbAddressMap ltb(
      baseline::LtbMapping(frame, ltb_sol.transform, ltb_sol.num_banks));

  PartitionRequest req;
  req.pattern = log;
  req.array_shape = frame;
  PartitionSolution ours_sol = Partitioner::solve(req);
  const sim::CoreAddressMap ours(std::move(*ours_sol.mapping));

  PartitionRequest capped = req;
  capped.max_banks = 10;
  PartitionSolution capped_sol = Partitioner::solve(capped);
  const sim::CoreAddressMap folded(std::move(*capped_sol.mapping));

  std::cout << "=== LoG loop nest (" << program.loop_nest().to_string()
            << ") over " << frame.to_string() << " ===\n"
            << "simd tier: " << simd::tier_name(simd::active_tier()) << "\n\n";

  TextTable t;
  t.row({"Memory", "Banks", "Cycles", "Cyc/iter", "Elems/cycle",
         "Conflict cyc"});
  t.separator();
  struct Row {
    const char* name;
    const sim::AddressMap* map;
  };
  const Row rows[] = {{"flat (1 bank)", &flat},
                      {"LTB 13-bank", &ltb},
                      {"ours 13-bank", &ours},
                      {"ours 7-bank (Nmax=10)", &folded}};
  for (const Row& row : rows) {
    const sim::AccessStats stats = loopnest::simulate_fast(program, *row.map);
    t.add_row();
    t.cell(row.name)
        .cell(row.map->num_banks())
        .cell(stats.cycles)
        .cell(stats.avg_cycles_per_iteration(), 2)
        .cell(stats.effective_bandwidth(), 2)
        .cell(stats.conflict_cycles);
  }
  t.print(std::cout);

  std::cout << "\n=== Bank bandwidth sweep (ports per bank B, §3) on the "
               "7-bank fold ===\n";
  TextTable p;
  p.row({"B", "Cycles/iter", "Elems/cycle"});
  p.separator();
  for (Count ports = 1; ports <= 4; ++ports) {
    const sim::AccessStats stats =
        loopnest::simulate_sampled(program, folded, 500, ports);
    p.add_row();
    p.cell(ports)
        .cell(stats.avg_cycles_per_iteration(), 2)
        .cell(stats.effective_bandwidth(), 2);
  }
  p.print(std::cout);

  // First-order energy comparison (§1's power motivation): same access
  // stream, flat vs banked layout.
  const sim::AccessStats flat_stats = loopnest::simulate_fast(program, flat);
  const sim::AccessStats ours_stats = loopnest::simulate_fast(program, ours);
  std::vector<Count> flat_caps{frame.volume()};
  std::vector<Count> bank_caps;
  for (Count b = 0; b < ours.num_banks(); ++b) {
    bank_caps.push_back(ours.bank_capacity(b));
  }
  const hw::EnergyEstimate e_flat =
      hw::estimate_energy(flat_caps, flat_stats.accesses, flat_stats.cycles);
  const hw::EnergyEstimate e_banked =
      hw::estimate_energy(bank_caps, ours_stats.accesses, ours_stats.cycles);
  std::cout << "\n=== First-order energy (relative units) ===\n"
            << "flat:   dynamic " << e_flat.dynamic << " + static "
            << e_flat.stat << " = " << e_flat.total() << '\n'
            << "banked: dynamic " << e_banked.dynamic << " + static "
            << e_banked.stat << " = " << e_banked.total() << "  ("
            << e_flat.total() / e_banked.total() << "x less)\n";

  std::cout << "\nPartitioning into 13 banks restores the full 13 elements/"
               "cycle that\nthe flat memory serialises; the 7-bank fold "
               "reaches it with B = 2,\nmatching the paper's bank-combining "
               "argument (§5.1). The energy model\nshows the second win: "
               "smaller banks and a 13x shorter run.\n";
  return 0;
}
