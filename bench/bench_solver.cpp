// A/B harness for the vectorized cold-solve engine.
//
// The "A" side is reference_minimize_banks below: a line-for-line copy of
// the pre-vectorization scalar implementation (byte existence table,
// per-pair checked abs-diff, probe-every-candidate N-scan) including its
// instrumentation — the old path opened an obs::Span per candidate and
// charged the op model per probe, and that cost was part of every cold
// solve this PR replaces, so the reference keeps it. The "B" side
// is the library's minimize_banks, once per supported simd tier via
// TierOverride. Every case is solved by both sides first and compared
// STRUCTURALLY — num_banks, max_difference, rejected_candidates and the
// diagnostics difference_set must match exactly, for every tier — and the
// process exits non-zero on any mismatch, so the timing numbers can never
// outrun correctness. The LTB leg does the same A/B between the unpruned
// DAC'13 enumeration (LtbOptions::prune = false, the paper's cost model)
// and the pruned conflict-difference DFS, checking bank count and
// transform equality.
//
// Cases: the seven Table 1 stencils, synthetic adversarial classes
// covering both solver regimes (dense-table up to the 2^24 boundary,
// sorted-fallback beyond it), and batches drawn from the fuzz generator's
// random classes. Results land in BENCH_solver.json (CI artifact;
// docs/PERFORMANCE.md documents the fields).
//
// Exit codes: 0 ok; 1 structural mismatch; 2 speedup gate failed
// (geomean of best-tier speedups < --min-geomean, default 3).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/ltb.h"
#include "check/generator.h"
#include "common/args.h"
#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/bank_search.h"
#include "core/linear_transform.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/pattern.h"
#include "pattern/pattern_library.h"

namespace {

using namespace mempart;

// ---------------------------------------------------------------------------
// Reference implementation: the scalar minimize_banks this PR replaced.
// Kept verbatim (including its op charges and byte table) so the A side
// of the A/B pays exactly the cost the old cold path paid.
// ---------------------------------------------------------------------------

struct ReferenceScratch {
  std::vector<char> exists;
  std::vector<Count> diffs;
};

BankSearchResult reference_minimize_banks(std::span<const Address> z,
                                          bool collect_diagnostics,
                                          ReferenceScratch* scratch) {
  MEMPART_REQUIRE(!z.empty(), "minimize_banks: z must be non-empty");
  const Count m = static_cast<Count>(z.size());
  obs::Span span("bank_search.minimize.reference");
  span.arg("m", m);
  BankSearchResult result;
  if (m == 1) {
    result.num_banks = 1;
    return result;
  }
  const auto [min_it, max_it] = std::minmax_element(z.begin(), z.end());
  const Count max_diff = abs_diff_checked(*max_it, *min_it);
  constexpr Count kMaxTableDiff = Count{1} << 24;
  const bool use_table = max_diff <= kMaxTableDiff;
  ReferenceScratch local;
  ReferenceScratch& buffers = scratch != nullptr ? *scratch : local;
  std::vector<char>& exists = buffers.exists;
  std::vector<Count>& diffs = buffers.diffs;
  diffs.clear();
  if (use_table) exists.assign(static_cast<size_t>(max_diff) + 1, 0);
  if (collect_diagnostics || !use_table) {
    diffs.reserve(z.size() * (z.size() - 1) / 2);
  }
  for (size_t i = 0; i + 1 < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      const Count d = abs_diff_checked(z[i], z[j]);
      MEMPART_REQUIRE(d != 0, "minimize_banks: z values must be distinct");
      if (use_table) exists[static_cast<size_t>(d)] = 1;
      if (collect_diagnostics || !use_table) diffs.push_back(d);
    }
  }
  if (!use_table) {
    std::sort(diffs.begin(), diffs.end());
    diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
  }
  OpCounter::charge(OpKind::kAdd, m * (m - 1) / 2);
  Count nf = m;
  for (;;) {
    obs::Span candidate("bank_search.candidate");
    Count probes = 0;
    bool rejected = false;
    if (use_table) {
      for (Count k = 1; k * nf <= max_diff; ++k) {
        OpCounter::charge(OpKind::kMul);
        ++probes;
        rejected = exists[static_cast<size_t>(k * nf)] != 0;
        OpCounter::charge(OpKind::kCompare);
        if (rejected) break;
      }
    } else {
      for (const Count d : diffs) {
        ++probes;
        rejected = (d % nf) == 0;
        OpCounter::charge(OpKind::kCompare);
        if (rejected) break;
      }
    }
    candidate.arg("N", nf).arg("probes", probes).arg("rejected",
                                                     Count{rejected});
    static const std::vector<double> kProbeBounds = obs::pow2_bounds(10);
    obs::observe("bank_search.probes_per_candidate",
                 static_cast<double>(probes), kProbeBounds);
    obs::count(rejected ? "bank_search.candidates.rejected"
                        : "bank_search.candidates.accepted");
    if (!rejected) break;
    ++nf;
    ++result.rejected_candidates;
  }
  result.num_banks = nf;
  result.max_difference = max_diff;
  span.arg("nf", nf).arg("rejected_candidates", result.rejected_candidates);
  if (collect_diagnostics) {
    std::sort(diffs.begin(), diffs.end());
    diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
    result.difference_set.assign(diffs.begin(), diffs.end());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Cases
// ---------------------------------------------------------------------------

/// One minimize_banks case: a batch of z vectors solved back to back per
/// timed repetition (batching keeps per-rep work measurable for the small
/// stencils without touching the solver).
struct SolveCase {
  std::string name;
  std::string regime;  // "table" or "fallback"
  std::vector<std::vector<Address>> batch;
  Count reps_full = 0;   // timed repetitions, full mode
  Count reps_quick = 0;  // timed repetitions, --quick
};

std::vector<Address> pattern_z(const Pattern& p) {
  return LinearTransform::derive(p).transform_values(p);
}

std::vector<SolveCase> build_cases() {
  std::vector<SolveCase> cases;
  for (const Pattern& p : patterns::table1_patterns()) {
    cases.push_back({"table1:" + p.name(), "table", {pattern_z(p)}, 2000, 500});
  }

  // Squares: differences (j-i)(j+i) half-fill [1, 65280]; the candidate
  // scan rejects hundreds of N at k = 1, which is the packed-bitset
  // prefilter's best case, and the 32640-pair scan stresses the SoA pass.
  {
    std::vector<Address> z;
    for (Count i = 0; i < 256; ++i) z.push_back(i * i);
    cases.push_back({"adv:squares-m256", "table", {std::move(z)}, 50, 15});
  }
  // Contiguous taps: the solve is one giant pair pass (8.4M pairs) plus an
  // instantly-accepted candidate; isolates the vectorized abs-diff scan.
  {
    std::vector<Address> z;
    for (Count i = 0; i < 4096; ++i) z.push_back(i);
    cases.push_back({"adv:contiguous-m4096", "table", {std::move(z)}, 3, 2});
  }
  // Random taps at the dense-table boundary: the byte table was 16 MiB
  // here, the bitset is 2 MiB, and the sparse candidate scan probes far
  // into the table per candidate.
  {
    Rng rng(0x5eed0001);
    std::vector<Address> z;
    while (z.size() < 64) {
      const Count v = rng.uniform(0, (Count{1} << 24) - 1);
      if (std::find(z.begin(), z.end(), v) == z.end()) z.push_back(v);
    }
    cases.push_back({"adv:dense-boundary-m64", "table", {std::move(z)}, 40, 8});
  }
  // Mid-spread dense table, more taps: pair pass and table zeroing both
  // matter, with a non-trivial reject run.
  {
    Rng rng(0x5eed0002);
    std::vector<Address> z;
    while (z.size() < 192) {
      const Count v = rng.uniform(0, (Count{1} << 20) - 1);
      if (std::find(z.begin(), z.end(), v) == z.end()) z.push_back(v);
    }
    cases.push_back({"adv:dense-random-m192", "table", {std::move(z)}, 60, 12});
  }
  // Sorted-fallback regime: random 2^40 spread forces the divisibility
  // probe; thousands of candidates are rejected and each one scans the
  // unique-difference list until its first multiple, so the runtime is
  // dominated by the division the modular-inverse kernel eliminates.
  for (const Count m : {Count{32}, Count{64}}) {
    Rng rng(0x5eed0003 + m);
    std::vector<Address> z;
    while (static_cast<Count>(z.size()) < m) {
      const Count v = rng.uniform(0, Count{1} << 40);
      if (std::find(z.begin(), z.end(), v) == z.end()) z.push_back(v);
    }
    cases.push_back({"adv:fallback-random-m" + std::to_string(m), "fallback",
                     {std::move(z)}, m == 32 ? 40 : 10,
                     m == 32 ? 10 : 4});
  }
  // Collinear wide-stride taps: the fallback list is small but highly
  // divisible, so accepted candidates scan it end to end.
  {
    std::vector<Address> z;
    for (Count i = 0; i < 512; ++i) z.push_back(i * (Count{1} << 21));
    cases.push_back(
        {"adv:fallback-collinear-m512", "fallback", {std::move(z)}, 60, 12});
  }

  // Fuzz-generator random classes, batched: the same adversarial draws the
  // differential fuzzer replays, restricted to configs that yield a valid
  // pattern with at least two taps.
  const struct {
    const char* cls;
    const char* label;
  } kClasses[] = {{"random:box-reach", "fuzz:box-reach"},
                  {"random:collinear", "fuzz:collinear"},
                  {"random:sparse-wide", "fuzz:sparse-wide"}};
  for (const auto& cls : kClasses) {
    Rng rng(0xf022);
    check::GeneratorOptions opts;
    opts.degenerate_rate = 0.0;
    opts.overflow_rate = 0.0;
    std::vector<std::vector<Address>> batch;
    int guard = 0;
    while (batch.size() < 24 && ++guard < 4000) {
      const check::CheckConfig config = check::generate_config(rng, opts);
      if (config.note != cls.cls || config.offsets.size() < 2) continue;
      try {
        const Pattern p(config.offsets);
        batch.push_back(pattern_z(p));
      } catch (const Error&) {
        continue;  // degenerate draw (duplicate offsets etc.)
      }
    }
    cases.push_back({cls.label, "table", std::move(batch), 400, 60});
  }
  return cases;
}

// ---------------------------------------------------------------------------
// Timing and comparison
// ---------------------------------------------------------------------------

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Times fn() over `reps` repetitions, three times; returns the best
/// per-rep average (min-of-means rides out scheduler noise on shared CI
/// machines better than a single long mean).
template <typename Fn>
double time_best_ns(Count reps, Fn&& fn) {
  double best = 0;
  for (int round = 0; round < 3; ++round) {
    const double t0 = now_ns();
    for (Count r = 0; r < reps; ++r) fn();
    const double per = (now_ns() - t0) / static_cast<double>(reps);
    if (round == 0 || per < best) best = per;
  }
  return best;
}

bool same_result(const BankSearchResult& a, const BankSearchResult& b) {
  return a.num_banks == b.num_banks && a.max_difference == b.max_difference &&
         a.rejected_candidates == b.rejected_candidates &&
         a.difference_set == b.difference_set;
}

struct TierTiming {
  simd::Tier tier;
  double ns = 0;
  double speedup = 0;
};

struct CaseReport {
  std::string name;
  std::string regime;
  Count batch = 0;
  Count m = 0;
  Count num_banks = 0;
  double reference_ns = 0;
  std::vector<TierTiming> tiers;
  double best_speedup = 0;
  std::string best_tier;
};

int verify_and_time(const SolveCase& c, const std::vector<simd::Tier>& tiers,
                    bool quick, CaseReport& report) {
  report.name = c.name;
  report.regime = c.regime;
  report.batch = static_cast<Count>(c.batch.size());
  report.m = c.batch.empty() ? 0 : static_cast<Count>(c.batch.front().size());

  // Structural gate first: reference vs every tier, with diagnostics so
  // the difference_set is compared too.
  ReferenceScratch ref_scratch;
  std::vector<BankSearchResult> expected;
  for (const auto& z : c.batch) {
    expected.push_back(
        reference_minimize_banks(z, /*collect_diagnostics=*/true, &ref_scratch));
  }
  if (!expected.empty()) report.num_banks = expected.front().num_banks;
  for (const simd::Tier tier : tiers) {
    simd::TierOverride override(tier);
    BankSearchScratch scratch;
    for (size_t i = 0; i < c.batch.size(); ++i) {
      const BankSearchResult got =
          minimize_banks(c.batch[i], /*collect_diagnostics=*/true, &scratch);
      if (!same_result(expected[i], got)) {
        std::cerr << "FAIL " << c.name << " tier " << simd::tier_name(tier)
                  << " z[" << i << "]: banks " << got.num_banks << " vs "
                  << expected[i].num_banks << ", max_diff "
                  << got.max_difference << " vs "
                  << expected[i].max_difference << ", rejected "
                  << got.rejected_candidates << " vs "
                  << expected[i].rejected_candidates << ", |Q| "
                  << got.difference_set.size() << " vs "
                  << expected[i].difference_set.size() << '\n';
        return 1;
      }
    }
  }

  // Timing: no diagnostics (the serve cold path's configuration), scratch
  // reused, identical batch on both sides.
  const Count reps = std::max<Count>(1, quick ? c.reps_quick : c.reps_full);
  report.reference_ns = time_best_ns(reps, [&] {
    for (const auto& z : c.batch) {
      (void)reference_minimize_banks(z, false, &ref_scratch);
    }
  });
  for (const simd::Tier tier : tiers) {
    simd::TierOverride override(tier);
    BankSearchScratch scratch;
    TierTiming t;
    t.tier = tier;
    t.ns = time_best_ns(reps, [&] {
      for (const auto& z : c.batch) {
        (void)minimize_banks(z, false, &scratch);
      }
    });
    t.speedup = t.ns > 0 ? report.reference_ns / t.ns : 0;
    report.tiers.push_back(t);
    if (t.speedup > report.best_speedup) {
      report.best_speedup = t.speedup;
      report.best_tier = simd::tier_name(tier);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// LTB leg
// ---------------------------------------------------------------------------

struct LtbReport {
  std::string name;
  Count num_banks = 0;
  double unpruned_ns = 0;
  double pruned_ns = 0;
  double pruned_mt_ns = 0;
  double speedup = 0;
};

int ltb_leg(bool quick, std::vector<LtbReport>& out) {
  const char* kNames[] = {"LoG", "Median", "Gaussian", "Sobel3D"};
  for (const Pattern& p : patterns::table1_patterns()) {
    bool selected = false;
    for (const char* n : kNames) selected |= p.name() == n;
    if (!selected) continue;
    if (quick && p.name() == "Sobel3D") continue;  // ~1s per unpruned solve

    baseline::LtbOptions unpruned;
    baseline::LtbOptions pruned;
    pruned.prune = true;
    baseline::LtbOptions pruned_mt = pruned;
    pruned_mt.threads = 2;
    baseline::LtbScratch scratch;

    const baseline::LtbSolution a = baseline::ltb_solve(p, unpruned);
    const baseline::LtbSolution b = baseline::ltb_solve(p, pruned, scratch);
    const baseline::LtbSolution c = baseline::ltb_solve(p, pruned_mt, scratch);
    if (a.num_banks != b.num_banks || a.num_banks != c.num_banks ||
        a.transform.alpha() != b.transform.alpha() ||
        a.transform.alpha() != c.transform.alpha()) {
      std::cerr << "FAIL ltb " << p.name()
                << ": pruned/threaded solution differs from the unpruned "
                   "enumeration\n";
      return 1;
    }

    LtbReport r;
    r.name = p.name();
    r.num_banks = a.num_banks;
    const Count reps = quick ? 3 : (p.name() == "Sobel3D" ? 1 : 5);
    r.unpruned_ns =
        time_best_ns(reps, [&] { (void)baseline::ltb_solve(p, unpruned); });
    baseline::LtbSolution warm;
    r.pruned_ns = time_best_ns(reps, [&] {
      baseline::ltb_solve_into(p, pruned, scratch, warm);
    });
    r.pruned_mt_ns = time_best_ns(reps, [&] {
      baseline::ltb_solve_into(p, pruned_mt, scratch, warm);
    });
    r.speedup = r.pruned_ns > 0 ? r.unpruned_ns / r.pruned_ns : 0;
    out.push_back(r);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

void write_json(const std::string& path, bool quick,
                const std::vector<simd::Tier>& tiers,
                const std::vector<CaseReport>& cases,
                const std::vector<LtbReport>& ltb, double geomean,
                double min_geomean, bool pass) {
  std::ostringstream json;
  json << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n";
  json << "  \"tiers\": [";
  for (size_t i = 0; i < tiers.size(); ++i) {
    json << (i ? ", " : "") << '"' << simd::tier_name(tiers[i]) << '"';
  }
  json << "],\n  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseReport& c = cases[i];
    json << "    {\"name\": \"" << c.name << "\", \"regime\": \"" << c.regime
         << "\", \"batch\": " << c.batch << ", \"m\": " << c.m
         << ", \"num_banks\": " << c.num_banks
         << ", \"reference_ns\": " << c.reference_ns << ", \"tiers\": {";
    for (size_t t = 0; t < c.tiers.size(); ++t) {
      json << (t ? ", " : "") << '"' << simd::tier_name(c.tiers[t].tier)
           << "\": {\"ns\": " << c.tiers[t].ns
           << ", \"speedup\": " << c.tiers[t].speedup << '}';
    }
    json << "}, \"best_tier\": \"" << c.best_tier
         << "\", \"best_speedup\": " << c.best_speedup << '}'
         << (i + 1 < cases.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"ltb\": [\n";
  for (size_t i = 0; i < ltb.size(); ++i) {
    const LtbReport& r = ltb[i];
    json << "    {\"name\": \"" << r.name << "\", \"num_banks\": "
         << r.num_banks << ", \"unpruned_ns\": " << r.unpruned_ns
         << ", \"pruned_ns\": " << r.pruned_ns
         << ", \"pruned_mt_ns\": " << r.pruned_mt_ns
         << ", \"speedup\": " << r.speedup << '}'
         << (i + 1 < ltb.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"geomean_best_speedup\": " << geomean
       << ",\n  \"gate\": {\"min_geomean\": " << min_geomean
       << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
  std::ofstream out(path);
  out << json.str();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("bench_solver",
                   "A/B harness: vectorized cold-solve engine vs the scalar "
                   "reference implementation");
  parser.add_bool("quick", "fewer repetitions for CI");
  parser.add_int("min-geomean", 3, "speedup gate (geomean of best tiers)");
  parser.add_string("out", "BENCH_solver.json", "JSON output path");
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    parser.parse(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  const bool quick = parser.get_bool("quick");
  const auto min_geomean = static_cast<double>(parser.get_int("min-geomean"));

  const std::vector<simd::Tier> tiers = simd::supported_tiers();
  std::cout << "bench_solver: tiers";
  for (const simd::Tier t : tiers) std::cout << ' ' << simd::tier_name(t);
  std::cout << (quick ? " (quick)" : "") << '\n';

  const std::vector<SolveCase> cases = build_cases();
  std::vector<CaseReport> reports;
  for (const SolveCase& c : cases) {
    CaseReport report;
    if (verify_and_time(c, tiers, quick, report) != 0) return 1;
    std::cout << "  " << report.name << ": ref " << report.reference_ns
              << " ns, best " << report.best_tier << " x"
              << report.best_speedup << '\n';
    reports.push_back(std::move(report));
  }

  std::vector<LtbReport> ltb;
  if (ltb_leg(quick, ltb) != 0) return 1;
  for (const LtbReport& r : ltb) {
    std::cout << "  ltb:" << r.name << ": unpruned " << r.unpruned_ns
              << " ns, pruned x" << r.speedup << '\n';
  }

  double log_sum = 0;
  for (const CaseReport& r : reports) {
    log_sum += std::log(std::max(r.best_speedup, 1e-9));
  }
  const double geomean =
      reports.empty() ? 0 : std::exp(log_sum / static_cast<double>(reports.size()));
  const bool pass = geomean >= min_geomean;
  std::cout << "geomean best-tier speedup: x" << geomean << " (gate "
            << min_geomean << ": " << (pass ? "pass" : "FAIL") << ")\n";

  write_json(parser.get_string("out"), quick, tiers, reports, ltb, geomean,
             min_geomean, pass);
  return pass ? 0 : 2;
}
