// Ablation of the §3/§5.1 bandwidth extension: sweep the bank bandwidth B
// for each benchmark pattern and report how many physical banks remain,
// what delta_II becomes, and the simulator-confirmed cycles per iteration —
// the "combine B banks together" knob quantified.
#include <iostream>

#include "common/table.h"
#include "core/partitioner.h"
#include "loopnest/schedule.h"
#include "pattern/pattern_library.h"
#include "sim/address_map.h"

int main() {
  using namespace mempart;

  std::cout << "=== Bank-bandwidth sweep: physical banks vs B "
               "(paper sec 5.1: 13 -> 7 for LoG at B = 2) ===\n\n";
  TextTable t;
  t.row({"Pattern", "m", "Nf", "B", "banks", "delta_II", "cycles",
         "sim cyc/iter"});
  t.separator();

  for (const Pattern& pattern : patterns::table1_patterns()) {
    for (Count bandwidth = 1; bandwidth <= 4; ++bandwidth) {
      PartitionRequest req;
      req.pattern = pattern;
      req.bank_bandwidth = bandwidth;
      // A small simulation array: pattern box plus margin, innermost extent
      // not a multiple of anything interesting.
      std::vector<Count> extents;
      for (int d = 0; d < pattern.rank(); ++d) {
        extents.push_back(pattern.extent(d) + 9);
      }
      req.array_shape = NdShape(extents);
      PartitionSolution sol = Partitioner::solve(req);
      const sim::CoreAddressMap map(std::move(*sol.mapping));
      const loopnest::StencilProgram program(NdShape(extents), pattern,
                                             pattern.name());
      const sim::AccessStats stats =
          loopnest::simulate(program, map, bandwidth);
      t.add_row();
      t.cell(pattern.name())
          .cell(pattern.size())
          .cell(sol.search.num_banks)
          .cell(bandwidth)
          .cell(sol.num_banks())
          .cell(sol.delta_ii())
          .cell(sol.access_cycles())
          .cell(stats.avg_cycles_per_iteration(), 2);
    }
    t.separator();
  }
  t.print(std::cout);
  std::cout << "\nEvery row keeps 1 cycle/iteration: B-port banks absorb "
               "the fold.\nPhysical bank count drops ~B-fold, saving block "
               "RAM instances and\ncrossbar ports at the cost of wider "
               "banks.\n";
  return 0;
}
