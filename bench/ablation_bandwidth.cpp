// Ablation of the §3/§5.1 bandwidth extension: sweep the bank bandwidth B
// for each benchmark pattern and report how many physical banks remain,
// what delta_II becomes, and the simulator-confirmed cycles per iteration —
// the "combine B banks together" knob quantified.
//
// The (pattern, B) cells are independent, so they are computed on the
// thread pool (MEMPART_THREADS wide) and printed in the fixed sweep order;
// the table is byte-identical at any thread count.
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/table.h"
#include "core/partitioner.h"
#include "loopnest/schedule.h"
#include "pattern/pattern_library.h"
#include "sim/address_map.h"

namespace {

using namespace mempart;

struct Cell {
  std::string pattern;
  Count m = 0;
  Count nf = 0;
  Count bandwidth = 0;
  Count banks = 0;
  Count delta_ii = 0;
  Count cycles = 0;
  double sim_cycles_per_iter = 0.0;
};

}  // namespace

int main() {
  std::cout << "=== Bank-bandwidth sweep: physical banks vs B "
               "(paper sec 5.1: 13 -> 7 for LoG at B = 2) ===\n\n";
  TextTable t;
  t.row({"Pattern", "m", "Nf", "B", "banks", "delta_II", "cycles",
         "sim cyc/iter"});
  t.separator();

  const auto all_patterns = patterns::table1_patterns();
  constexpr Count kMaxBandwidth = 4;
  const Count num_cells =
      static_cast<Count>(all_patterns.size()) * kMaxBandwidth;

  ThreadPool pool;
  const std::vector<Cell> cells =
      pool.map_chunked<Cell>(num_cells, 1, [&](Count index) {
    const Pattern& pattern =
        all_patterns[static_cast<size_t>(index / kMaxBandwidth)];
    const Count bandwidth = index % kMaxBandwidth + 1;
    PartitionRequest req;
    req.pattern = pattern;
    req.bank_bandwidth = bandwidth;
    // A small simulation array: pattern box plus margin, innermost extent
    // not a multiple of anything interesting.
    std::vector<Count> extents;
    for (int d = 0; d < pattern.rank(); ++d) {
      extents.push_back(pattern.extent(d) + 9);
    }
    req.array_shape = NdShape(extents);
    PartitionSolution sol = Partitioner::solve(req);
    const sim::CoreAddressMap map(std::move(*sol.mapping));
    const loopnest::StencilProgram program(NdShape(extents), pattern,
                                           pattern.name());
    const sim::AccessStats stats =
        loopnest::simulate_fast(program, map, bandwidth);
    return Cell{pattern.name(),
                pattern.size(),
                sol.search.num_banks,
                bandwidth,
                sol.num_banks(),
                sol.delta_ii(),
                sol.access_cycles(),
                stats.avg_cycles_per_iteration()};
  });

  for (Count index = 0; index < num_cells; ++index) {
    const Cell& cell = cells[static_cast<size_t>(index)];
    t.add_row();
    t.cell(cell.pattern)
        .cell(cell.m)
        .cell(cell.nf)
        .cell(cell.bandwidth)
        .cell(cell.banks)
        .cell(cell.delta_ii)
        .cell(cell.cycles)
        .cell(cell.sim_cycles_per_iter, 2);
    if (cell.bandwidth == kMaxBandwidth) t.separator();
  }
  t.print(std::cout);
  std::cout << "\nEvery row keeps 1 cycle/iteration: B-port banks absorb "
               "the fold.\nPhysical bank count drops ~B-fold, saving block "
               "RAM instances and\ncrossbar ports at the cost of wider "
               "banks.\n";
  return 0;
}
