// Open-loop load generator for `mempart serve` (docs/SERVING.md).
//
// Spins up an in-process serve::Server on an AF_UNIX socket, drives it with
// mixed traffic over several client connections, and reports sustained
// throughput plus end-to-end latency percentiles (p50/p99/p999, measured
// client-side from send to response). The generator is open-loop: each
// sender emits requests on a fixed schedule regardless of response progress
// — closed-loop generators hide queueing delay (coordinated omission), and
// the admission queue is exactly the thing this benchmark exists to
// observe.
//
// Traffic mix: `hot` requests are translations of Table-1 stencils — all
// canonically equal to a handful of classes, so after warmup they ride the
// SolveCache hit path. `cold` requests are structurally distinct small
// patterns that miss every time. The hot share models the service-scale
// workload from DESIGN.md (sliding windows of a small stencil set).
//
// A second leg floods a server configured with --queue-depth 1 and asserts
// the admission control sheds: every request still gets a response, some of
// them `shed`. The run exits non-zero when any request goes unanswered or
// the saturation leg fails to shed — making this binary the serve gate CI
// runs (`--quick`).
//
// Results land in BENCH_serve.json for the CI artifact and
// docs/PERFORMANCE.md.
//
// Flags: --quick (shorter legs), --rate R (target requests/s, default
// 2000), --seconds S (measured leg length, default 5), --connections C
// (client connections, default 4), --threads T (server workers, 0 = auto),
// --out FILE (JSON path, default BENCH_serve.json).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/errors.h"
#include "core/solve_cache.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/pattern_library.h"
#include "serve/server.h"

namespace {

using namespace mempart;
using Clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Renders one serve request line. `id` must be "c<conn>-<seq>" — the
/// receiver parses the sequence number back out to find the send time.
std::string render_request(const std::string& id,
                           const std::vector<NdIndex>& offsets) {
  std::ostringstream os;
  os << "{\"id\": \"" << id << "\", \"tenant\": \"bench\", \"offsets\": [";
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    os << (i ? ", [" : "[");
    for (std::size_t d = 0; d < offsets[i].size(); ++d) {
      os << (d ? ", " : "") << offsets[i][d];
    }
    os << ']';
  }
  os << "], \"shape\": [128, 128]}\n";
  return os.str();
}

std::vector<NdIndex> translated(const Pattern& pattern, Coord shift) {
  std::vector<NdIndex> offsets = pattern.offsets();
  for (NdIndex& offset : offsets) {
    for (Coord& c : offset) c += shift;
  }
  return offsets;
}

/// Structurally distinct per `seq`: a 2x2 box plus one far offset whose
/// position varies, so every cold request is its own canonical class (a
/// guaranteed cache miss) while staying cheap enough (m = 5) that a miss
/// costs a bounded solve, not a benchmark-dominating one.
std::vector<NdIndex> cold_offsets(std::int64_t seq) {
  std::vector<NdIndex> offsets = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  offsets.push_back(
      {static_cast<Coord>(3 + seq % 61), static_cast<Coord>(3 + (seq * 7) % 53)});
  return offsets;
}

/// Pre-rendered traffic: request_lines[i] is sent as the i-th request of a
/// connection, cycling. ~80% hot (8 translations of 2 stencils), 20% cold
/// slots re-rendered per sequence number at send time.
struct TrafficMix {
  std::vector<std::string> hot_lines;  ///< id placeholder "@" patched later
};

/// One client connection driving the open-loop schedule.
struct Connection {
  int fd = -1;
  std::int64_t sent = 0;
  std::int64_t answered = 0;
  std::int64_t ok = 0;
  std::int64_t shed = 0;
  std::vector<std::atomic<std::int64_t>> send_ns;  ///< indexed by seq
  std::vector<std::int64_t> latencies_ns;       ///< served responses
  std::vector<std::int64_t> shed_latencies_ns;  ///< shed responses
};

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MEMPART_REQUIRE(fd >= 0, "bench_serve: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  MEMPART_REQUIRE(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                  "bench_serve: connect '" + path + "' failed");
  return fd;
}

void send_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    MEMPART_REQUIRE(n > 0, "bench_serve: send failed");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

/// Reads response lines until `expected` of them arrived (or EOF), crediting
/// latencies back to the connection via the seq encoded in the id.
void receive_loop(Connection& conn, int conn_index, std::int64_t expected) {
  std::string buffer;
  char chunk[8192];
  const std::string id_prefix =
      "{\"id\": \"c" + std::to_string(conn_index) + '-';
  while (conn.answered < expected) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t pos = buffer.find('\n', start);
         pos != std::string::npos; pos = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, pos - start);
      start = pos + 1;
      ++conn.answered;
      const bool shed = line.find("\"shed\": true") != std::string::npos;
      if (line.find("\"ok\": true") != std::string::npos) ++conn.ok;
      if (shed) ++conn.shed;
      if (line.compare(0, id_prefix.size(), id_prefix) == 0) {
        const std::int64_t seq =
            std::strtoll(line.c_str() + id_prefix.size(), nullptr, 10);
        if (seq >= 0 &&
            seq < static_cast<std::int64_t>(conn.send_ns.size())) {
          const std::int64_t sent_at =
              conn.send_ns[static_cast<std::size_t>(seq)].load(
                  std::memory_order_acquire);
          if (sent_at > 0) {
            // A shed response is a fast rejection, not service: folding it
            // into the served series would make saturation look *better*
            // the harder the server sheds, so the two go in separate pools.
            (shed ? conn.shed_latencies_ns : conn.latencies_ns)
                .push_back(now_ns() - sent_at);
          }
        }
      }
    }
    buffer.erase(0, start);
  }
}

struct Percentiles {
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
  std::int64_t p999 = 0;
  std::int64_t max = 0;
  double mean = 0.0;
};

Percentiles percentiles(std::vector<std::int64_t>& ns) {
  Percentiles out;
  if (ns.empty()) return out;
  std::sort(ns.begin(), ns.end());
  const auto at = [&](double q) {
    const double idx = q * static_cast<double>(ns.size() - 1);
    return ns[static_cast<std::size_t>(idx)];
  };
  out.p50 = at(0.50);
  out.p99 = at(0.99);
  out.p999 = at(0.999);
  out.max = ns.back();
  double sum = 0.0;
  for (const std::int64_t v : ns) sum += static_cast<double>(v);
  out.mean = sum / static_cast<double>(ns.size());
  return out;
}

struct LegResult {
  std::int64_t sent = 0;
  std::int64_t answered = 0;
  std::int64_t ok = 0;
  std::int64_t shed = 0;
  double elapsed_s = 0.0;
  Percentiles latency;       ///< served (non-shed) responses
  Percentiles shed_latency;  ///< shed responses (saturation leg)
};

/// Drives `total_per_conn` requests per connection at the target per-
/// connection interval (0 = as fast as possible) and waits for every
/// response.
LegResult run_leg(const std::string& socket_path, int connections,
                  std::int64_t total_per_conn, std::int64_t interval_ns,
                  const TrafficMix& mix) {
  std::vector<Connection> conns(static_cast<std::size_t>(connections));
  for (Connection& conn : conns) {
    conn.fd = connect_unix(socket_path);
    conn.send_ns = std::vector<std::atomic<std::int64_t>>(
        static_cast<std::size_t>(total_per_conn));
    conn.latencies_ns.reserve(static_cast<std::size_t>(total_per_conn));
  }
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    Connection& conn = conns[static_cast<std::size_t>(c)];
    threads.emplace_back([&conn, c, total_per_conn] {
      receive_loop(conn, c, total_per_conn);
    });
    threads.emplace_back([&conn, &mix, c, total_per_conn, interval_ns,
                          start] {
      const std::size_t hot_count = mix.hot_lines.size();
      for (std::int64_t seq = 0; seq < total_per_conn; ++seq) {
        if (interval_ns > 0) {
          std::this_thread::sleep_until(
              start + std::chrono::nanoseconds(seq * interval_ns));
        }
        const std::string id = 'c' + std::to_string(c) + '-' +
                               std::to_string(seq);
        std::string line;
        if (seq % 5 == 4 || hot_count == 0) {  // every 5th request is cold
          line = render_request(id, cold_offsets(seq * 1000 + c));
        } else {
          line = mix.hot_lines[static_cast<std::size_t>(seq) % hot_count];
          const std::size_t at = line.find('@');
          line = line.substr(0, at) + id + line.substr(at + 1);
        }
        conn.send_ns[static_cast<std::size_t>(seq)].store(
            now_ns(), std::memory_order_release);
        send_all(conn.fd, line);
        ++conn.sent;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LegResult result;
  result.elapsed_s = elapsed_s;
  std::vector<std::int64_t> all_latencies;
  std::vector<std::int64_t> all_shed_latencies;
  for (Connection& conn : conns) {
    result.sent += conn.sent;
    result.answered += conn.answered;
    result.ok += conn.ok;
    result.shed += conn.shed;
    all_latencies.insert(all_latencies.end(), conn.latencies_ns.begin(),
                         conn.latencies_ns.end());
    all_shed_latencies.insert(all_shed_latencies.end(),
                              conn.shed_latencies_ns.begin(),
                              conn.shed_latencies_ns.end());
    ::close(conn.fd);
  }
  result.latency = percentiles(all_latencies);
  result.shed_latency = percentiles(all_shed_latencies);
  return result;
}

void print_leg(const char* name, const LegResult& leg) {
  std::cout << name << ": " << leg.sent << " sent, " << leg.answered
            << " answered (" << leg.ok << " ok, " << leg.shed << " shed) in "
            << leg.elapsed_s << " s = "
            << static_cast<double>(leg.answered) / leg.elapsed_s
            << " req/s\n    latency p50 " << leg.latency.p50 / 1000
            << " us, p99 " << leg.latency.p99 / 1000 << " us, p999 "
            << leg.latency.p999 / 1000 << " us, max "
            << leg.latency.max / 1000 << " us\n";
}

void append_leg_json(std::ostringstream& json, const char* name,
                     const LegResult& leg) {
  json << "  \"" << name << "\": {\n"
       << "    \"sent\": " << leg.sent << ",\n"
       << "    \"answered\": " << leg.answered << ",\n"
       << "    \"ok\": " << leg.ok << ",\n"
       << "    \"shed\": " << leg.shed << ",\n"
       << "    \"elapsed_s\": " << leg.elapsed_s << ",\n"
       << "    \"sustained_rps\": "
       << static_cast<double>(leg.answered) / leg.elapsed_s << ",\n"
       << "    \"latency_ns\": {\"p50\": " << leg.latency.p50
       << ", \"p99\": " << leg.latency.p99
       << ", \"p999\": " << leg.latency.p999
       << ", \"max\": " << leg.latency.max
       << ", \"mean\": " << leg.latency.mean << "}\n  }";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("bench_serve",
                   "Open-loop load test of the mempart serve daemon");
  parser.add_bool("quick", "short legs for CI");
  parser.add_int("rate", 2000, "target request rate across all connections");
  parser.add_int("seconds", 5, "measured leg duration");
  parser.add_int("connections", 4, "client connections");
  parser.add_int("threads", 0, "server worker threads (0 = auto)");
  parser.add_string("out", "BENCH_serve.json", "JSON output path");
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    parser.parse(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  const bool quick = parser.get_bool("quick");
  const int connections =
      std::max<int>(1, static_cast<int>(parser.get_int("connections")));
  const std::int64_t rate = std::max<std::int64_t>(
      connections, quick ? parser.get_int("rate") / 2 : parser.get_int("rate"));
  const double seconds =
      quick ? 1.5 : static_cast<double>(parser.get_int("seconds"));

  const std::string socket_path =
      "bench_serve_" + std::to_string(::getpid()) + ".sock";

  // Hot traffic: translations of two Table-1 stencils — 8 canonical-equal
  // variants per stencil collapse onto 2 cache entries.
  TrafficMix mix;
  for (const Pattern& base :
       {patterns::log5x5(), patterns::box2d(3)}) {
    for (Coord shift = 0; shift < 4; ++shift) {
      mix.hot_lines.push_back(render_request("@", translated(base, shift)));
    }
  }

  std::cout << "=== mempart serve load test: " << connections
            << " connections, target " << rate << " req/s, "
            << seconds << " s measured leg ===\n\n";

  std::ostringstream json;
  json << "{\n  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"connections\": " << connections
       << ",\n  \"target_rate_rps\": " << rate << ",\n";

  bool gate_ok = true;

  // Worker threads inherit the metrics default set here, so the server-side
  // serve.request.{hit,miss}.ns histograms fill during the measured leg and
  // the JSON can report the cache-miss (cold solve) latency series the
  // client-side end-to-end percentiles blur together.
  obs::set_metrics_enabled(true);

  // --- Leg 1: mixed hot/cold at the target rate ---
  {
    serve::ServeOptions options;
    options.socket_path = socket_path;
    options.threads = parser.get_int("threads");
    options.queue_depth = 1024;
    SolveCache cache(4096);
    options.cache = &cache;
    serve::Server server(options);
    std::thread server_thread([&server] { (void)server.run_socket(); });
    // The server unlinks a stale socket before binding; wait for the bind.
    while (::access(socket_path.c_str(), F_OK) != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Warmup: populate the cache's hot classes and fault in the worker
    // threads, outside the measured window.
    (void)run_leg(socket_path, 1, 64, 0, mix);

    const std::int64_t per_conn = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(rate) * seconds /
                                     connections));
    const std::int64_t interval_ns =
        1'000'000'000LL * connections / rate;
    const LegResult leg =
        run_leg(socket_path, connections, per_conn, interval_ns, mix);
    print_leg("open-loop", leg);
    const SolveCache::Stats stats = cache.stats();
    std::cout << "    cache: " << stats.hits << " hits / " << stats.misses
              << " misses (" << stats.entries << " entries)\n\n";
    server.request_shutdown();
    server_thread.join();
    const serve::ServeSummary summary = server.summary();

    if (leg.answered != leg.sent) {
      std::cerr << "GATE: open-loop leg lost responses (" << leg.answered
                << "/" << leg.sent << ")\n";
      gate_ok = false;
    }
    append_leg_json(json, "open_loop", leg);
    json << ",\n  \"open_loop_cache\": {\"hits\": " << stats.hits
         << ", \"misses\": " << stats.misses
         << ", \"entries\": " << stats.entries << "},\n"
         << "  \"open_loop_server\": {\"admitted\": " << summary.admitted
         << ", \"solved\": " << summary.solved
         << ", \"failed\": " << summary.failed
         << ", \"shed\": " << summary.shed << "},\n";

    // Server-side queue-to-response latency split by cache outcome (the
    // worker records these per request; see src/serve/server.cpp). The
    // miss series is the open-loop cold-solve latency this leg exists to
    // measure — a regression there is invisible in the combined series
    // while hits dominate the mix.
    const auto snap = [](const char* name) {
      const obs::LatencyHistogram* hist =
          obs::Registry::instance().find_latency(name);
      return hist != nullptr ? hist->snapshot() : obs::LatencySnapshot{};
    };
    const obs::LatencySnapshot miss = snap("serve.request.miss.ns");
    const obs::LatencySnapshot hit = snap("serve.request.hit.ns");
    std::cout << "    server-side miss latency (" << miss.count
              << " cold requests): p50 " << miss.p50() / 1000 << " us, p99 "
              << miss.p99() / 1000 << " us\n\n";
    const auto append_snapshot = [&json](const char* field,
                                         const obs::LatencySnapshot& s) {
      json << "  \"" << field << "\": {\"count\": " << s.count
           << ", \"p50\": " << s.p50() << ", \"p99\": " << s.p99()
           << ", \"p999\": " << s.p999() << ", \"max\": " << s.max
           << ", \"mean\": " << s.mean() << "},\n";
    };
    append_snapshot("open_loop_request_miss_ns", miss);
    append_snapshot("open_loop_request_hit_ns", hit);
  }

  // --- Leg 2: saturation — a depth-1 queue must shed, never drop ---
  {
    serve::ServeOptions options;
    options.socket_path = socket_path;
    options.threads = 1;
    options.queue_depth = 1;
    options.max_batch = 1;
    SolveCache cache(64);
    options.cache = &cache;
    serve::Server server(options);
    std::thread server_thread([&server] { (void)server.run_socket(); });
    while (::access(socket_path.c_str(), F_OK) != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::int64_t flood = quick ? 400 : 2000;
    const LegResult leg =
        run_leg(socket_path, connections, flood / connections, 0, mix);
    print_leg("saturation", leg);
    server.request_shutdown();
    server_thread.join();

    if (leg.answered != leg.sent) {
      std::cerr << "GATE: saturation leg lost responses (" << leg.answered
                << "/" << leg.sent << ")\n";
      gate_ok = false;
    }
    if (leg.shed == 0) {
      std::cerr << "GATE: saturation leg never shed — admission control "
                   "is not engaging\n";
      gate_ok = false;
    }
    std::cout << "    shed-path latency (" << leg.shed << " shed): p50 "
              << leg.shed_latency.p50 / 1000 << " us, p99 "
              << leg.shed_latency.p99 / 1000 << " us\n";
    append_leg_json(json, "saturation", leg);
    json << ",\n  \"saturation_shed_latency_ns\": {\"p50\": "
         << leg.shed_latency.p50 << ", \"p99\": " << leg.shed_latency.p99
         << ", \"p999\": " << leg.shed_latency.p999
         << ", \"max\": " << leg.shed_latency.max
         << ", \"mean\": " << leg.shed_latency.mean << "}\n}\n";
  }

  std::ofstream out(parser.get_string("out"));
  out << json.str();
  std::cout << "\nresults written to " << parser.get_string("out") << '\n';
  if (!gate_ok) {
    std::cerr << "bench_serve: GATE FAILED\n";
    return 1;
  }
  std::cout << "gate: every request answered; saturation leg shed as "
               "expected\n";
  return 0;
}
