// Design-space triangle of §1/§3: storage cost of serving m parallel
// accesses by (a) duplicating the array, (b) LTB partitioning, (c) the
// proposed padded mapping, (d) the proposed compact (zero-overhead) tail
// handling — across all five Table 1 resolutions, plus the strict
// per-bank-rounded block accounting as a sensitivity check.
#include <iostream>

#include "baseline/duplication.h"
#include "baseline/ltb.h"
#include "baseline/ltb_mapping.h"
#include "common/table.h"
#include "core/overhead.h"
#include "core/partitioner.h"
#include "hw/bram.h"
#include "hw/resolutions.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;
  const Pattern log = patterns::log5x5();

  PartitionRequest req;
  req.pattern = log;
  const Count banks = Partitioner::solve(req).num_banks();
  const Count ltb_banks = baseline::ltb_solve(log).num_banks;

  std::cout << "=== Storage overhead for LoG (m = 13) across schemes, in "
               "elements ===\n\n";
  TextTable t;
  t.row({"Resolution", "duplicate (m-1)W", "LTB pad-all-dims",
         "ours padded", "ours compact"});
  t.separator();
  for (const hw::Resolution& r : hw::table1_resolutions()) {
    const NdShape shape = r.shape2d();
    const auto dup = baseline::duplication_solve(log, shape);
    t.add_row();
    t.cell(r.name)
        .cell(dup.overhead_elements)
        .cell(baseline::ltb_storage_overhead_elements(shape, ltb_banks))
        .cell(storage_overhead_elements(shape, banks))
        .cell(std::int64_t{0});
  }
  t.print(std::cout);

  std::cout << "\n=== Same, in 9kb blocks; plus strict per-bank block "
               "rounding for ours ===\n\n";
  TextTable b;
  b.row({"Resolution", "LTB blocks", "ours blocks (aggregate)",
         "ours blocks (per-bank)"});
  b.separator();
  for (const hw::Resolution& r : hw::table1_resolutions()) {
    const NdShape shape = r.shape2d();
    // Strict accounting: each bank is allocated whole blocks.
    PartitionRequest mapped = req;
    mapped.array_shape = shape;
    const PartitionSolution sol = Partitioner::solve(mapped);
    std::vector<Count> bank_sizes;
    for (Count bank = 0; bank < sol.num_banks(); ++bank) {
      bank_sizes.push_back(sol.mapping->bank_capacity(bank));
    }
    const Count strict = hw::blocks_per_bank_sum(bank_sizes) -
                         hw::blocks_for_elements(shape.volume());
    b.add_row();
    b.cell(r.name)
        .cell(hw::overhead_blocks(
            baseline::ltb_storage_overhead_elements(shape, ltb_banks)))
        .cell(hw::overhead_blocks(storage_overhead_elements(shape, banks)))
        .cell(strict);
  }
  b.print(std::cout);
  std::cout << "\nDuplication costs ~12x the whole frame; partitioning costs "
               "a sliver.\nThe compact tail policy removes even that sliver "
               "at the price of\nunequal banks and a rank lookup for tail "
               "elements (§4.4.2).\n";
  return 0;
}
