// Why linear transforms at all? The classical single-dimension schemes
// (cyclic / block — the array_partition pragmas of commercial HLS) are
// simpler and search-free. This bench gives them their best shot on every
// 2-D benchmark — every dimension, every scheme, every N up to the linear
// transform's bank count — and reports the delta_II they cannot get rid of.
#include <iostream>

#include "baseline/classical.h"
#include "common/table.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;
  using baseline::best_classical;
  using baseline::ClassicalScheme;

  std::cout << "=== Classical single-dimension partitioning vs the paper's "
               "linear transform ===\n\n";
  TextTable t;
  t.row({"Pattern", "m", "ours banks", "ours delta", "best classical",
         "cl. banks", "cl. delta", "cl. cycles"});
  t.separator();

  for (const Pattern& pattern : patterns::table1_patterns()) {
    if (pattern.rank() != 2) continue;  // classical sweep is 2-D here
    PartitionRequest req;
    req.pattern = pattern;
    const PartitionSolution ours = Partitioner::solve(req);

    std::vector<Count> extents;
    for (int d = 0; d < pattern.rank(); ++d) {
      extents.push_back(pattern.extent(d) + 8);
    }
    const baseline::ClassicalBest best =
        best_classical(pattern, NdShape(extents), ours.num_banks());

    std::string desc =
        std::string(best.scheme == ClassicalScheme::kCyclic ? "cyclic"
                                                            : "block") +
        " dim" + std::to_string(best.dim);
    t.add_row();
    t.cell(pattern.name())
        .cell(pattern.size())
        .cell(ours.num_banks())
        .cell(ours.delta_ii())
        .cell(desc)
        .cell(best.banks)
        .cell(best.delta_ii)
        .cell(best.delta_ii + 1);
  }
  t.print(std::cout);
  std::cout << "\nWith the SAME bank budget, one-dimensional schemes leave "
               "every 2-D\nstencil with delta_II >= 1 (2+ cycles per "
               "iteration); the mixed-radix\nlinear transform reaches "
               "delta_II = 0 on all of them. This is the gap\nthe LTB line "
               "of work (and this paper) exists to close.\n";
  return 0;
}
