// Ablation of §4.3.2: sweep the bank budget N_max for each benchmark and
// compare the two constraint strategies on the axes Problem 1 optimises —
// bank count, delta_II (access cycles), storage overhead (SD array) and the
// address-generator hardware estimate. Shows the trade-off the paper calls
// "different optimizing orders lead to solutions of different concerns".
#include <iostream>

#include "common/table.h"
#include "core/overhead.h"
#include "core/partitioner.h"
#include "hw/addr_gen.h"
#include "hw/bram.h"
#include "hw/resolutions.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;
  const auto& sd = hw::table1_resolutions().front();

  for (const Pattern& pattern : patterns::table1_patterns()) {
    PartitionRequest base;
    base.pattern = pattern;
    const Count nf = Partitioner::solve(base).num_banks();

    std::cout << "=== " << pattern.name() << " (m = " << pattern.size()
              << ", Nf = " << nf << "), array " << sd.name << " ===\n";
    TextTable t;
    t.row({"Nmax", "strategy", "Nc", "F", "delta_II", "cycles",
           "ovh blocks", "~LUT"});
    t.separator();

    const NdShape shape =
        pattern.rank() == 3 ? sd.shape3d() : sd.shape2d();
    for (Count nmax : {nf, (nf + 1) / 2, (nf + 3) / 4, Count{2}}) {
      if (nmax < 1) continue;
      for (auto strategy :
           {ConstraintStrategy::kFastFold, ConstraintStrategy::kSameSize}) {
        PartitionRequest req = base;
        req.max_banks = nmax;
        req.strategy = strategy;
        const PartitionSolution sol = Partitioner::solve(req);
        const Count blocks = hw::overhead_blocks(
            storage_overhead_elements(shape, sol.num_banks()));
        const hw::AddressGenCost hwcost = hw::estimate_addr_gen(
            sol.transform, sol.num_banks(), pattern.size());
        t.add_row();
        t.cell(nmax)
            .cell(strategy == ConstraintStrategy::kFastFold ? "fast"
                                                            : "same-size")
            .cell(sol.num_banks())
            .cell(sol.constraint.fold_factor)
            .cell(sol.delta_ii())
            .cell(sol.access_cycles())
            .cell(blocks)
            .cell(hwcost.lut_estimate, 0);
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "fast folding fixes delta_II = F-1 with no search; the "
               "same-size sweep\ncan trade a different N for the same or "
               "better delta_II and equal banks.\n";
  return 0;
}
