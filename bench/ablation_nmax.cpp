// Ablation of §4.3.2: sweep the bank budget N_max for each benchmark and
// compare the two constraint strategies on the axes Problem 1 optimises —
// bank count, delta_II (access cycles), storage overhead (SD array) and the
// address-generator hardware estimate. Shows the trade-off the paper calls
// "different optimizing orders lead to solutions of different concerns".
//
// Per-pattern sections are computed on the thread pool (MEMPART_THREADS
// wide) and printed in the fixed pattern order; output is byte-identical
// at any thread count.
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/table.h"
#include "core/overhead.h"
#include "core/partitioner.h"
#include "hw/addr_gen.h"
#include "hw/bram.h"
#include "hw/resolutions.h"
#include "pattern/pattern_library.h"

namespace {

using namespace mempart;

struct SweepRow {
  Count nmax = 0;
  bool fast_fold = false;
  Count nc = 0;
  Count fold_factor = 0;
  Count delta_ii = 0;
  Count cycles = 0;
  Count overhead_blocks = 0;
  double lut_estimate = 0.0;
};

struct Section {
  std::string name;
  Count m = 0;
  Count nf = 0;
  std::vector<SweepRow> rows;
};

}  // namespace

int main() {
  const auto& sd = hw::table1_resolutions().front();
  const auto all_patterns = patterns::table1_patterns();

  ThreadPool pool;
  const std::vector<Section> sections = pool.map_chunked<Section>(
      static_cast<Count>(all_patterns.size()), 1, [&](Count index) {
        const Pattern& pattern = all_patterns[static_cast<size_t>(index)];
        PartitionRequest base;
        base.pattern = pattern;
        Section section;
        section.name = pattern.name();
        section.m = pattern.size();
        section.nf = Partitioner::solve(base).num_banks();

        const NdShape shape =
            pattern.rank() == 3 ? sd.shape3d() : sd.shape2d();
        for (Count nmax :
             {section.nf, (section.nf + 1) / 2, (section.nf + 3) / 4,
              Count{2}}) {
          if (nmax < 1) continue;
          for (auto strategy : {ConstraintStrategy::kFastFold,
                                ConstraintStrategy::kSameSize}) {
            PartitionRequest req = base;
            req.max_banks = nmax;
            req.strategy = strategy;
            const PartitionSolution sol = Partitioner::solve(req);
            const Count blocks = hw::overhead_blocks(
                storage_overhead_elements(shape, sol.num_banks()));
            const hw::AddressGenCost hwcost = hw::estimate_addr_gen(
                sol.transform, sol.num_banks(), pattern.size());
            section.rows.push_back(
                SweepRow{nmax, strategy == ConstraintStrategy::kFastFold,
                         sol.num_banks(), sol.constraint.fold_factor,
                         sol.delta_ii(), sol.access_cycles(), blocks,
                         hwcost.lut_estimate});
          }
        }
        return section;
      });

  for (const Section& section : sections) {
    std::cout << "=== " << section.name << " (m = " << section.m
              << ", Nf = " << section.nf << "), array " << sd.name
              << " ===\n";
    TextTable t;
    t.row({"Nmax", "strategy", "Nc", "F", "delta_II", "cycles",
           "ovh blocks", "~LUT"});
    t.separator();
    for (const SweepRow& row : section.rows) {
      t.add_row();
      t.cell(row.nmax)
          .cell(row.fast_fold ? "fast" : "same-size")
          .cell(row.nc)
          .cell(row.fold_factor)
          .cell(row.delta_ii)
          .cell(row.cycles)
          .cell(row.overhead_blocks)
          .cell(row.lut_estimate, 0);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "fast folding fixes delta_II = F-1 with no search; the "
               "same-size sweep\ncan trade a different N for the same or "
               "better delta_II and equal banks.\n";
  return 0;
}
