// A/B harness for the compiled-plan fast path: replays the Table-1 loop
// nests through both simulator paths — the per-access virtual reference
// (loopnest::simulate) and the compiled AccessPlan (loopnest::simulate_fast)
// — asserts the cycle statistics agree bit-for-bit, reports the speedup,
// and sweeps the parallel runner from 1..T threads over the workload set to
// measure sweep scaling. Emits machine-readable JSON (BENCH_fastpath.json)
// for CI artifacts and docs/PERFORMANCE.md.
//
// Exit status is non-zero when any fast-path statistic disagrees with the
// reference oracle, so CI can gate on it.
//
// Flags: --quick (fewer reps, smaller frames), --threads T (max sweep
// width, default 4), --out FILE (JSON path, default BENCH_fastpath.json).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/parallel.h"
#include "core/partitioner.h"
#include "img/banked_convolve.h"
#include "img/synthetic.h"
#include "loopnest/schedule.h"
#include "pattern/pattern_library.h"
#include "sim/address_map.h"

namespace {

using namespace mempart;

struct Workload {
  std::string name;
  Pattern pattern;
  NdShape shape;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool stats_equal(const sim::AccessStats& a, const sim::AccessStats& b) {
  return a.iterations == b.iterations && a.accesses == b.accesses &&
         a.cycles == b.cycles && a.conflict_cycles == b.conflict_cycles &&
         a.worst_group_cycles == b.worst_group_cycles &&
         a.bank_load == b.bank_load;
}

sim::CoreAddressMap solve_map(const Pattern& pattern, const NdShape& shape) {
  PartitionRequest req;
  req.pattern = pattern;
  req.array_shape = shape;
  PartitionSolution sol = Partitioner::solve(req);
  return sim::CoreAddressMap(std::move(*sol.mapping));
}

std::vector<Workload> build_workloads(bool quick) {
  const NdShape frame2d = quick ? NdShape({48, 40}) : NdShape({96, 72});
  const NdShape frame3d = quick ? NdShape({8, 10, 12}) : NdShape({12, 16, 20});
  std::vector<Workload> workloads;
  for (const Pattern& pattern : patterns::table1_patterns()) {
    workloads.push_back(
        {pattern.name(), pattern,
         pattern.rank() == 3 ? frame3d : frame2d});
  }
  return workloads;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("bench_fastpath",
                   "A/B: reference simulator vs compiled access plans");
  parser.add_bool("quick", "smaller frames and fewer repetitions");
  parser.add_int("threads", 4, "max thread count of the sweep scaling run");
  parser.add_string("out", "BENCH_fastpath.json", "JSON output path");
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    parser.parse(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  const bool quick = parser.get_bool("quick");
  const Count max_threads = std::max<Count>(1, parser.get_int("threads"));
  const int reps = quick ? 3 : 10;

  const std::vector<Workload> workloads = build_workloads(quick);
  std::vector<sim::CoreAddressMap> maps;
  std::vector<loopnest::StencilProgram> programs;
  maps.reserve(workloads.size());
  programs.reserve(workloads.size());
  for (const Workload& w : workloads) {
    maps.push_back(solve_map(w.pattern, w.shape));
    programs.emplace_back(w.shape, w.pattern, w.name);
  }

  bool all_match = true;
  std::ostringstream json;
  json << "{\n  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"workloads\": [\n";

  // --- Part 1: single-thread A/B per workload ---
  std::cout << "=== Fast-path A/B: reference simulate() vs compiled "
               "AccessPlan ===\n\n";
  double total_ref_ms = 0.0;
  double total_fast_ms = 0.0;
  for (size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    const sim::AccessStats ref = loopnest::simulate(programs[i], maps[i]);
    const sim::AccessStats fast =
        loopnest::simulate_fast(programs[i], maps[i]);
    const bool match = stats_equal(ref, fast);
    all_match = all_match && match;

    double t0 = now_ms();
    for (int r = 0; r < reps; ++r) (void)loopnest::simulate(programs[i], maps[i]);
    const double ref_ms = (now_ms() - t0) / reps;
    t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      (void)loopnest::simulate_fast(programs[i], maps[i]);
    }
    const double fast_ms = (now_ms() - t0) / reps;
    total_ref_ms += ref_ms;
    total_fast_ms += fast_ms;

    const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
    std::cout << "  " << w.name << " (" << w.shape.to_string() << ", m="
              << w.pattern.size() << "): ref " << ref_ms << " ms, fast "
              << fast_ms << " ms, speedup " << speedup << "x, stats "
              << (match ? "IDENTICAL" : "MISMATCH") << '\n';
    json << "    {\"name\": \"" << w.name << "\", \"shape\": \""
         << w.shape.to_string() << "\", \"ref_ms\": " << ref_ms
         << ", \"fast_ms\": " << fast_ms << ", \"speedup\": " << speedup
         << ", \"cycles\": " << fast.cycles
         << ", \"stats_identical\": " << (match ? "true" : "false") << "}"
         << (i + 1 < workloads.size() ? "," : "") << '\n';
  }
  const double overall =
      total_fast_ms > 0.0 ? total_ref_ms / total_fast_ms : 0.0;
  std::cout << "\n  overall: ref " << total_ref_ms << " ms, fast "
            << total_fast_ms << " ms, speedup " << overall << "x\n";
  json << "  ],\n  \"overall_speedup\": " << overall << ",\n";

  // --- Part 2: convolution A/B (2-D workloads, full data path) ---
  std::cout << "\n=== Convolution A/B (LoG kernel through banked memory) "
               "===\n\n";
  {
    const Kernel kernel = patterns::log5x5_kernel();
    const NdShape frame = quick ? NdShape({48, 40}) : NdShape({96, 72});
    const img::Image input = img::gradient(frame);
    const sim::CoreAddressMap map = solve_map(kernel.support(), frame);
    const auto ref = img::convolve_banked_reference(input, kernel, map);
    const auto fast = img::convolve_banked(input, kernel, map);
    const bool match =
        ref.output == fast.output && stats_equal(ref.stats, fast.stats);
    all_match = all_match && match;
    double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      (void)img::convolve_banked_reference(input, kernel, map);
    }
    const double ref_ms = (now_ms() - t0) / reps;
    t0 = now_ms();
    for (int r = 0; r < reps; ++r) (void)img::convolve_banked(input, kernel, map);
    const double fast_ms = (now_ms() - t0) / reps;
    const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
    std::cout << "  LoG " << frame.to_string() << ": ref " << ref_ms
              << " ms, fast " << fast_ms << " ms, speedup " << speedup
              << "x, output+stats " << (match ? "IDENTICAL" : "MISMATCH")
              << '\n';
    json << "  \"convolve\": {\"ref_ms\": " << ref_ms
         << ", \"fast_ms\": " << fast_ms << ", \"speedup\": " << speedup
         << ", \"identical\": " << (match ? "true" : "false") << "},\n";
  }

  // --- Part 3: sweep scaling 1..T threads over the workload set ---
  std::cout << "\n=== Sweep scaling: all workloads via parallel_for ===\n\n";
  std::vector<Count> baseline_cycles;
  double single_thread_ms = 0.0;
  json << "  \"sweep\": [\n";
  for (Count threads = 1; threads <= max_threads; ++threads) {
    ThreadPool pool(threads);
    std::vector<Count> cycles(workloads.size(), 0);
    const double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      pool.parallel_for(static_cast<Count>(workloads.size()), [&](Count i) {
        cycles[static_cast<size_t>(i)] =
            loopnest::simulate_fast(programs[static_cast<size_t>(i)],
                                    maps[static_cast<size_t>(i)])
                .cycles;
      });
    }
    const double sweep_ms = (now_ms() - t0) / reps;
    if (threads == 1) {
      baseline_cycles = cycles;
      single_thread_ms = sweep_ms;
    }
    const bool deterministic = cycles == baseline_cycles;
    all_match = all_match && deterministic;
    const double scaling = sweep_ms > 0.0 ? single_thread_ms / sweep_ms : 0.0;
    std::cout << "  threads=" << threads << ": " << sweep_ms << " ms ("
              << scaling << "x vs 1 thread)"
              << (deterministic ? "" : "  CYCLE MISMATCH vs 1 thread")
              << '\n';
    json << "    {\"threads\": " << threads << ", \"sweep_ms\": " << sweep_ms
         << ", \"scaling\": " << scaling
         << ", \"deterministic\": " << (deterministic ? "true" : "false")
         << "}" << (threads < max_threads ? "," : "") << '\n';
  }
  json << "  ],\n  \"all_identical\": " << (all_match ? "true" : "false")
       << "\n}\n";

  const std::string out_path = parser.get_string("out");
  std::ofstream out(out_path);
  out << json.str();
  std::cout << "\nwrote " << out_path << '\n';

  if (!all_match) {
    std::cerr << "FAIL: fast path disagreed with the reference oracle\n";
    return 1;
  }
  std::cout << "PASS: fast path bit-identical to the reference on all "
               "workloads\n";
  return 0;
}
