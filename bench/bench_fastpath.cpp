// A/B harness for the compiled-plan fast path: replays the Table-1 loop
// nests through both simulator paths — the per-access virtual reference
// (loopnest::simulate) and the compiled AccessPlan (loopnest::simulate_fast)
// — asserts the cycle statistics agree bit-for-bit, reports the speedup,
// and sweeps the parallel runner from 1..T threads over the workload set to
// measure sweep scaling. Emits machine-readable JSON (BENCH_fastpath.json)
// for CI artifacts and docs/PERFORMANCE.md.
//
// Exit status is non-zero when any fast-path statistic disagrees with the
// reference oracle, so CI can gate on it.
//
// A fourth leg A/Bs the telemetry layer itself over the cached-solve hot
// path: flight recorder off vs on (gated, the recorder is always on in
// production) and full metrics (informational). Results land in a second
// JSON file (BENCH_obs.json) and the gate fails the run when the recorder
// costs more than --obs-max-overhead percent.
//
// Flags: --quick (fewer reps, smaller frames), --threads T (max sweep
// width, default 4), --out FILE (JSON path, default BENCH_fastpath.json),
// --obs-out FILE (telemetry JSON, default BENCH_obs.json),
// --obs-max-overhead PCT (flight-recorder gate, default 5).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <cmath>

#include "common/args.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "core/partitioner.h"
#include "img/banked_convolve.h"
#include "img/synthetic.h"
#include "loopnest/schedule.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/pattern_library.h"
#include "sim/address_map.h"

namespace {

using namespace mempart;

struct Workload {
  std::string name;
  Pattern pattern;
  NdShape shape;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool stats_equal(const sim::AccessStats& a, const sim::AccessStats& b) {
  return a.iterations == b.iterations && a.accesses == b.accesses &&
         a.cycles == b.cycles && a.conflict_cycles == b.conflict_cycles &&
         a.worst_group_cycles == b.worst_group_cycles &&
         a.bank_load == b.bank_load;
}

sim::CoreAddressMap solve_map(const Pattern& pattern, const NdShape& shape) {
  PartitionRequest req;
  req.pattern = pattern;
  req.array_shape = shape;
  PartitionSolution sol = Partitioner::solve(req);
  return sim::CoreAddressMap(std::move(*sol.mapping));
}

std::vector<Workload> build_workloads(bool quick) {
  const NdShape frame2d = quick ? NdShape({48, 40}) : NdShape({96, 72});
  const NdShape frame3d = quick ? NdShape({8, 10, 12}) : NdShape({12, 16, 20});
  std::vector<Workload> workloads;
  for (const Pattern& pattern : patterns::table1_patterns()) {
    workloads.push_back(
        {pattern.name(), pattern,
         pattern.rank() == 3 ? frame3d : frame2d});
  }
  return workloads;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("bench_fastpath",
                   "A/B: reference simulator vs compiled access plans");
  parser.add_bool("quick", "smaller frames and fewer repetitions");
  parser.add_int("threads", 4, "max thread count of the sweep scaling run");
  parser.add_string("out", "BENCH_fastpath.json", "JSON output path");
  parser.add_string("obs-out", "BENCH_obs.json",
                    "telemetry-overhead JSON output path");
  parser.add_int("obs-max-overhead", 5,
                 "max flight-recorder overhead percent before failing");
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    parser.parse(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  const bool quick = parser.get_bool("quick");
  const Count max_threads = std::max<Count>(1, parser.get_int("threads"));
  const int reps = quick ? 3 : 10;

  const std::vector<Workload> workloads = build_workloads(quick);
  std::vector<sim::CoreAddressMap> maps;
  std::vector<loopnest::StencilProgram> programs;
  maps.reserve(workloads.size());
  programs.reserve(workloads.size());
  for (const Workload& w : workloads) {
    maps.push_back(solve_map(w.pattern, w.shape));
    programs.emplace_back(w.shape, w.pattern, w.name);
  }

  bool all_match = true;
  std::ostringstream json;
  json << "{\n  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"workloads\": [\n";

  // --- Part 1: single-thread A/B per workload ---
  std::cout << "=== Fast-path A/B: reference simulate() vs compiled "
               "AccessPlan ===\n\n";
  double total_ref_ms = 0.0;
  double total_fast_ms = 0.0;
  for (size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    const sim::AccessStats ref = loopnest::simulate(programs[i], maps[i]);
    const sim::AccessStats fast =
        loopnest::simulate_fast(programs[i], maps[i]);
    const bool match = stats_equal(ref, fast);
    all_match = all_match && match;

    double t0 = now_ms();
    for (int r = 0; r < reps; ++r) (void)loopnest::simulate(programs[i], maps[i]);
    const double ref_ms = (now_ms() - t0) / reps;
    t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      (void)loopnest::simulate_fast(programs[i], maps[i]);
    }
    const double fast_ms = (now_ms() - t0) / reps;
    total_ref_ms += ref_ms;
    total_fast_ms += fast_ms;

    const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
    std::cout << "  " << w.name << " (" << w.shape.to_string() << ", m="
              << w.pattern.size() << "): ref " << ref_ms << " ms, fast "
              << fast_ms << " ms, speedup " << speedup << "x, stats "
              << (match ? "IDENTICAL" : "MISMATCH") << '\n';
    json << "    {\"name\": \"" << w.name << "\", \"shape\": \""
         << w.shape.to_string() << "\", \"ref_ms\": " << ref_ms
         << ", \"fast_ms\": " << fast_ms << ", \"speedup\": " << speedup
         << ", \"cycles\": " << fast.cycles
         << ", \"simd\": \"" << simd::tier_name(simd::active_tier())
         << "\", \"stats_identical\": " << (match ? "true" : "false") << "}"
         << (i + 1 < workloads.size() ? "," : "") << '\n';
  }
  const double overall =
      total_fast_ms > 0.0 ? total_ref_ms / total_fast_ms : 0.0;
  std::cout << "\n  overall: ref " << total_ref_ms << " ms, fast "
            << total_fast_ms << " ms, speedup " << overall << "x\n";
  json << "  ],\n  \"overall_speedup\": " << overall << ",\n";

  // --- Part 1b: production-size SIMD legs (scalar tier vs widest tier) ---
  // Full frames at video resolutions; the reference simulator is far too
  // slow here, so the A/B is scalar-dispatch vs widest-dispatch through the
  // same compiled AccessPlan — bit-identical statistics required. Quick
  // mode keeps the small frame so CI smoke stays fast.
  std::cout << "\n=== Production frames: scalar vs "
            << simd::tier_name(simd::active_tier())
            << " dispatch (simulate_fast) ===\n\n";
  {
    const simd::Tier wide = simd::active_tier();
    const std::vector<NdShape> prod_frames =
        quick ? std::vector<NdShape>{NdShape({96, 72})}
              : std::vector<NdShape>{NdShape({1920, 1080}),
                                     NdShape({3840, 2160})};
    const int prod_reps = 3;
    json << "  \"simd_tier\": \"" << simd::tier_name(wide)
         << "\",\n  \"production\": [\n";
    // Geomean of the first (1080p) frame's speedups: the headline number
    // docs and CI track. Quick mode substitutes its small frame.
    double log_speedup_sum = 0.0;
    Count geomean_legs = 0;
    bool first_entry = true;
    for (size_t f = 0; f < prod_frames.size(); ++f) {
      const NdShape& frame = prod_frames[f];
      for (const Workload& w : workloads) {
        if (w.pattern.rank() != 2) continue;
        const sim::CoreAddressMap map = solve_map(w.pattern, frame);
        const loopnest::StencilProgram program(frame, w.pattern, w.name);
        sim::AccessStats scalar_stats;
        sim::AccessStats simd_stats;
        double scalar_ms = 0.0;
        double simd_ms = 0.0;
        // Best-of-N, not mean: the run shares the machine with CI neighbours
        // and the mean absorbs their noise; the minimum is the capability.
        {
          const simd::TierOverride guard(simd::Tier::kScalar);
          scalar_stats = loopnest::simulate_fast(program, map);
          scalar_ms = std::numeric_limits<double>::infinity();
          for (int r = 0; r < prod_reps; ++r) {
            const double t0 = now_ms();
            (void)loopnest::simulate_fast(program, map);
            scalar_ms = std::min(scalar_ms, now_ms() - t0);
          }
        }
        {
          const simd::TierOverride guard(wide);
          simd_stats = loopnest::simulate_fast(program, map);
          simd_ms = std::numeric_limits<double>::infinity();
          for (int r = 0; r < prod_reps; ++r) {
            const double t0 = now_ms();
            (void)loopnest::simulate_fast(program, map);
            simd_ms = std::min(simd_ms, now_ms() - t0);
          }
        }
        const bool match = stats_equal(scalar_stats, simd_stats);
        all_match = all_match && match;
        const double speedup = simd_ms > 0.0 ? scalar_ms / simd_ms : 0.0;
        if (f == 0 && speedup > 0.0) {
          log_speedup_sum += std::log(speedup);
          ++geomean_legs;
        }
        std::cout << "  " << w.name << " (" << frame.to_string()
                  << "): scalar " << scalar_ms << " ms, "
                  << simd::tier_name(wide) << " " << simd_ms
                  << " ms, speedup " << speedup << "x, stats "
                  << (match ? "IDENTICAL" : "MISMATCH") << '\n';
        if (!first_entry) json << ",\n";
        first_entry = false;
        json << "    {\"name\": \"" << w.name << "\", \"shape\": \""
             << frame.to_string() << "\", \"simd\": \""
             << simd::tier_name(wide) << "\", \"scalar_ms\": " << scalar_ms
             << ", \"simd_ms\": " << simd_ms << ", \"speedup\": " << speedup
             << ", \"stats_identical\": " << (match ? "true" : "false")
             << "}";
      }
    }
    const double geomean =
        geomean_legs > 0
            ? std::exp(log_speedup_sum / static_cast<double>(geomean_legs))
            : 0.0;
    std::cout << "\n  geomean (" << prod_frames.front().to_string()
              << "): " << geomean << "x\n";
    json << "\n  ],\n  \"simd_geomean_1080p\": " << geomean << ",\n";
  }

  // --- Part 2: convolution A/B (2-D workloads, full data path) ---
  std::cout << "\n=== Convolution A/B (LoG kernel through banked memory) "
               "===\n\n";
  {
    const Kernel kernel = patterns::log5x5_kernel();
    const NdShape frame = quick ? NdShape({48, 40}) : NdShape({96, 72});
    const img::Image input = img::gradient(frame);
    const sim::CoreAddressMap map = solve_map(kernel.support(), frame);
    const auto ref = img::convolve_banked_reference(input, kernel, map);
    const auto fast = img::convolve_banked(input, kernel, map);
    const bool match =
        ref.output == fast.output && stats_equal(ref.stats, fast.stats);
    all_match = all_match && match;
    double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      (void)img::convolve_banked_reference(input, kernel, map);
    }
    const double ref_ms = (now_ms() - t0) / reps;
    t0 = now_ms();
    for (int r = 0; r < reps; ++r) (void)img::convolve_banked(input, kernel, map);
    const double fast_ms = (now_ms() - t0) / reps;
    const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
    std::cout << "  LoG " << frame.to_string() << ": ref " << ref_ms
              << " ms, fast " << fast_ms << " ms, speedup " << speedup
              << "x, output+stats " << (match ? "IDENTICAL" : "MISMATCH")
              << '\n';
    json << "  \"convolve\": {\"ref_ms\": " << ref_ms
         << ", \"fast_ms\": " << fast_ms << ", \"speedup\": " << speedup
         << ", \"identical\": " << (match ? "true" : "false") << "},\n";
  }

  // --- Part 3: sweep scaling 1..T threads over the workload set ---
  std::cout << "\n=== Sweep scaling: all workloads via parallel_for ===\n\n";
  std::vector<Count> baseline_cycles;
  double single_thread_ms = 0.0;
  json << "  \"sweep\": [\n";
  for (Count threads = 1; threads <= max_threads; ++threads) {
    ThreadPool pool(threads);
    std::vector<Count> cycles(workloads.size(), 0);
    const double t0 = now_ms();
    for (int r = 0; r < reps; ++r) {
      pool.parallel_for(static_cast<Count>(workloads.size()), [&](Count i) {
        cycles[static_cast<size_t>(i)] =
            loopnest::simulate_fast(programs[static_cast<size_t>(i)],
                                    maps[static_cast<size_t>(i)])
                .cycles;
      });
    }
    const double sweep_ms = (now_ms() - t0) / reps;
    if (threads == 1) {
      baseline_cycles = cycles;
      single_thread_ms = sweep_ms;
    }
    const bool deterministic = cycles == baseline_cycles;
    all_match = all_match && deterministic;
    const double scaling = sweep_ms > 0.0 ? single_thread_ms / sweep_ms : 0.0;
    std::cout << "  threads=" << threads << ": " << sweep_ms << " ms ("
              << scaling << "x vs 1 thread)"
              << (deterministic ? "" : "  CYCLE MISMATCH vs 1 thread")
              << '\n';
    json << "    {\"threads\": " << threads << ", \"sweep_ms\": " << sweep_ms
         << ", \"scaling\": " << scaling
         << ", \"deterministic\": " << (deterministic ? "true" : "false")
         << "}" << (threads < max_threads ? "," : "") << '\n';
  }
  json << "  ],\n  \"all_identical\": " << (all_match ? "true" : "false")
       << "\n}\n";

  const std::string out_path = parser.get_string("out");
  std::ofstream out(out_path);
  out << json.str();
  std::cout << "\nwrote " << out_path << '\n';

  // --- Part 4: telemetry overhead (always-on flight recorder A/B) ---
  // Gate workload: the `mempart batch` pipeline (solve_many_collect over a
  // request stream with repeated patterns) — the production path the
  // always-on recorder must not tax. The recorder-on vs recorder-off delta
  // there is gated at --obs-max-overhead percent; the full-metrics run
  // (histogram timers + per-group observe()) is reported informationally.
  // A second, unguarded number prices the worst case: the per-call cost of
  // spans + flight events on a warm single-request solve (~a microsecond of
  // real work), in nanoseconds per solve.
  std::cout << "\n=== Telemetry overhead: flight recorder + metrics ===\n\n";
  const double max_overhead_pct = static_cast<double>(
      std::max<Count>(0, parser.get_int("obs-max-overhead")));
  bool obs_pass = true;
  std::ostringstream obs_json;
  obs_json << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n";
  {
    std::vector<PartitionRequest> requests;
    requests.reserve(workloads.size());
    for (const Workload& w : workloads) {
      PartitionRequest req;
      req.pattern = w.pattern;
      req.array_shape = w.shape;
      requests.push_back(req);
    }
    // The batch stream repeats each pattern, as real request streams do;
    // duplicates exercise the canonicalize + rehydrate path end to end.
    const int copies = quick ? 10 : 25;
    std::vector<PartitionRequest> stream;
    stream.reserve(requests.size() * static_cast<size_t>(copies));
    for (int c = 0; c < copies; ++c) {
      stream.insert(stream.end(), requests.begin(), requests.end());
    }
    const int batch_reps = quick ? 5 : 15;
    const int solve_reps = quick ? 300 : 1500;

    // Best-of-3 wall time for one obs configuration; the warm-up pass fills
    // the solve cache so every trial measures the steady state.
    const auto run_case = [&](Count flight_capacity, bool metrics,
                              const auto& body) {
      obs::flight_clear();
      obs::set_flight_capacity(flight_capacity);
      obs::set_metrics_enabled(metrics);
      if (metrics) obs::Registry::instance().clear();
      body();  // warm-up
      double best = std::numeric_limits<double>::infinity();
      for (int trial = 0; trial < 3; ++trial) {
        const double t0 = now_ms();
        body();
        best = std::min(best, now_ms() - t0);
      }
      obs::set_metrics_enabled(false);
      obs::flight_clear();
      return best;
    };

    Partitioner partitioner;
    const auto batch_body = [&] {
      for (int r = 0; r < batch_reps; ++r) {
        (void)partitioner.solve_many_collect(stream);
      }
    };
    const double batch_off_ms = run_case(0, false, batch_body);
    const double batch_flight_ms =
        run_case(obs::kDefaultFlightCapacity, false, batch_body);
    const double batch_full_ms =
        run_case(obs::kDefaultFlightCapacity, true, batch_body);
    const auto overhead_pct = [](double off, double with) {
      return off > 0.0 ? (with - off) / off * 100.0 : 0.0;
    };
    const double flight_pct = overhead_pct(batch_off_ms, batch_flight_ms);
    const double full_pct = overhead_pct(batch_off_ms, batch_full_ms);
    obs_pass = flight_pct < max_overhead_pct;
    const Count batch_solves = static_cast<Count>(batch_reps) *
                               static_cast<Count>(stream.size());
    std::cout << "  batch pipeline (" << batch_solves
              << " requests per trial, best of 3):\n"
              << "    telemetry off:   " << batch_off_ms << " ms\n"
              << "    flight recorder: " << batch_flight_ms << " ms  ("
              << flight_pct << "% overhead, gate < " << max_overhead_pct
              << "%)  " << (obs_pass ? "PASS" : "FAIL") << '\n'
              << "    + full metrics:  " << batch_full_ms << " ms  ("
              << full_pct << "% overhead, informational)\n";
    obs_json << "  \"batch\": {\"requests_per_trial\": " << batch_solves
             << ", \"off_ms\": " << batch_off_ms
             << ", \"flight_ms\": " << batch_flight_ms
             << ", \"full_metrics_ms\": " << batch_full_ms
             << ", \"flight_overhead_pct\": " << flight_pct
             << ", \"full_metrics_overhead_pct\": " << full_pct << "},\n";

    // Worst case, informational: warm cache hits through the single-request
    // API cost ~1 us each, so the fixed span/flight cost shows up as a large
    // relative number. Reported as ns per solve, not gated — batch callers
    // use solve_many, which amortises its spans across chunks.
    const auto solve_body = [&] {
      for (int r = 0; r < solve_reps; ++r) {
        for (const PartitionRequest& req : requests) {
          (void)Partitioner::solve(req);
        }
      }
    };
    const double solves =
        static_cast<double>(solve_reps) * static_cast<double>(requests.size());
    const auto per_solve_ns = [&](double ms) { return ms * 1e6 / solves; };
    const double solve_off_ns = per_solve_ns(run_case(0, false, solve_body));
    const double solve_flight_ns =
        per_solve_ns(run_case(obs::kDefaultFlightCapacity, false, solve_body));
    const double solve_full_ns =
        per_solve_ns(run_case(obs::kDefaultFlightCapacity, true, solve_body));
    std::cout << "  warm single-request solve (informational):\n"
              << "    telemetry off:   " << solve_off_ns << " ns/solve\n"
              << "    flight recorder: " << solve_flight_ns << " ns/solve  (+"
              << (solve_flight_ns - solve_off_ns) << " ns)\n"
              << "    + full metrics:  " << solve_full_ns << " ns/solve  (+"
              << (solve_full_ns - solve_off_ns) << " ns)\n";
    obs_json << "  \"per_solve\": {\"off_ns\": " << solve_off_ns
             << ", \"flight_ns\": " << solve_flight_ns
             << ", \"full_metrics_ns\": " << solve_full_ns << "},\n";
  }
  obs_json << "  \"max_overhead_pct\": " << max_overhead_pct
           << ",\n  \"pass\": " << (obs_pass ? "true" : "false") << "\n}\n";
  const std::string obs_out_path = parser.get_string("obs-out");
  {
    std::ofstream obs_out(obs_out_path);
    obs_out << obs_json.str();
  }
  std::cout << "  wrote " << obs_out_path << '\n';

  if (!all_match) {
    std::cerr << "FAIL: fast path disagreed with the reference oracle\n";
    return 1;
  }
  if (!obs_pass) {
    std::cerr << "FAIL: flight-recorder overhead exceeded the gate\n";
    return 1;
  }
  std::cout << "PASS: fast path bit-identical to the reference on all "
               "workloads\n";
  return 0;
}
