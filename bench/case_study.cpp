// Reproduces the §5.1 case study end to end on the LoG pattern:
//   - the transform alpha = (5, 1) and values z(i) = {14, 18, ..., 34},
//   - the difference set Q and Algorithm 1's N_f = 13,
//   - the 13 bank indices {1, 5, 6, 7, 9, 10, 11, 12, 0, 2, 3, 4, 8},
//   - the fast approach under N_max = 10 (F = 2, N_c = 7),
//   - the delta_P|N table for N = 1..10 and the same-size N_c in {7, 9}.
#include <iostream>

#include "common/table.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;

  // The paper states the case study in un-normalised coordinates (offsets
  // (2,4)..(6,4) inside the 5x5 window at origin (2,2)); mirror that so the
  // printed z values match the text.
  const Pattern log = patterns::log5x5().translated({2, 2});

  std::cout << "=== Section 5.1 case study: LoG pattern (m = 13, n = 2) ===\n\n";
  std::cout << "P = " << log.to_string() << "\n\n";

  PartitionRequest req;
  req.pattern = log;
  const PartitionSolution base = Partitioner::solve(req);

  std::cout << "D0 = " << log.extent(0) << ", D1 = " << log.extent(1)
            << "  =>  " << base.transform.to_string()
            << "   (paper: alpha = (5, 1))\n\n";

  const LinearTransform direct = LinearTransform::derive(log);
  const auto z = direct.transform_values(log);
  std::cout << "z(i) = ";
  for (size_t i = 0; i < z.size(); ++i) std::cout << (i ? ", " : "") << z[i];
  std::cout << "\n       (paper: 14, 18, 19, ..., 29, 30, 34)\n\n";

  const BankSearchResult search = minimize_banks(z);
  std::cout << "Q = { ";
  for (size_t i = 0; i < search.difference_set.size(); ++i) {
    std::cout << (i ? ", " : "") << search.difference_set[i];
  }
  std::cout << " }\n    (paper: 1..12, 14, 15, 16, 20)\n";
  std::cout << "N_f = " << search.num_banks << "   (paper: 13)\n\n";

  std::cout << "Bank indices of the 13 elements (B = z % 13):\n  ";
  for (size_t i = 0; i < z.size(); ++i) {
    std::cout << (i ? ", " : "") << z[i] % 13;
  }
  std::cout << "\n  (paper: 1, 5, 6, 7, 9, 10, 11, 12, 0, 2, 3, 4, 8)\n\n";

  // Fast approach under N_max = 10.
  PartitionRequest fast = req;
  fast.max_banks = 10;
  fast.strategy = ConstraintStrategy::kFastFold;
  const PartitionSolution f = Partitioner::solve(fast);
  std::cout << "Fast approach, N_max = 10: F = " << f.constraint.fold_factor
            << ", N_c = " << f.num_banks()
            << ", delta_II = " << f.delta_ii()
            << "   (paper: F = 2, N_c = 7, banks accessed twice)\n\n";

  // Same-size sweep.
  PartitionRequest same = req;
  same.max_banks = 10;
  same.strategy = ConstraintStrategy::kSameSize;
  const PartitionSolution s = Partitioner::solve(same);

  TextTable t;
  t.row({"N", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10"});
  {
    t.add_row();
    t.cell("delta+1 (measured)");
    for (Count d : s.constraint.sweep) t.cell(d + 1);
  }
  t.row({"delta+1 (paper)", "13", "9", "5", "6", "5", "3", "2", "3", "2",
         "3"});
  std::cout << "Same-size sweep, delta_P|N + 1 for N = 1..10:\n";
  t.print(std::cout);
  std::cout << "\nSame-size choice: N_c = " << s.num_banks()
            << " with delta_II = " << s.delta_ii()
            << "   (paper: minimum 1 at N_c = 7 or 9)\n";

  // Cross-check both constrained solutions against a real array.
  PartitionRequest sd = same;
  sd.array_shape = NdShape({640, 480});
  const PartitionSolution mapped = Partitioner::solve(sd);
  std::cout << "\n7-bank same-size mapping on 640x480: overhead = "
            << mapped.storage_overhead_elements() << " elements ("
            << mapped.mapping->total_capacity() << " allocated for "
            << NdShape({640, 480}).volume() << ")\n";
  return 0;
}
