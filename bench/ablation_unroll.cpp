// Unrolling ablation: sweep the unroll factor U of the LoG loop's column
// dimension, re-partition the dilated pattern for each U, and report how
// banks and throughput scale — the co-design loop of banking + unrolling
// that the related work ([2], [3]) optimises jointly.
#include <iostream>

#include "common/table.h"
#include "core/partitioner.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_program.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;
  const NdShape frame({48, 64});
  const loopnest::StencilProgram base(frame, patterns::log5x5(), "LoG");

  std::cout << "=== Unroll sweep: LoG over " << frame.to_string()
            << ", re-partitioned per factor ===\n\n";
  TextTable t;
  t.row({"U", "reads/iter", "banks", "delta_II", "iterations", "cycles",
         "elems/cycle"});
  t.separator();

  for (Count factor = 1; factor <= 4; ++factor) {
    const loopnest::StencilProgram program = base.unrolled(1, factor);
    PartitionRequest req;
    req.pattern = program.extract_pattern();
    req.array_shape = frame;
    PartitionSolution sol = Partitioner::solve(req);
    const sim::CoreAddressMap map(std::move(*sol.mapping));
    const sim::AccessStats stats = loopnest::simulate(program, map);
    t.add_row();
    t.cell(factor)
        .cell(program.extract_pattern().size())
        .cell(sol.num_banks())
        .cell(sol.delta_ii())
        .cell(stats.iterations)
        .cell(stats.cycles)
        .cell(stats.effective_bandwidth(), 2);
  }
  t.print(std::cout);
  std::cout << "\nEach unroll step widens the constellation (13 -> 18 -> 23 "
               "-> ...),\nthe bank count follows, and the effective memory "
               "bandwidth scales\naccordingly while every iteration stays "
               "single-cycle.\n";
  return 0;
}
