// Reproduces Figure 3: the benchmark access patterns of §5.2 (the five
// edge-detection operators plus the Median and Gaussian patterns added for
// the bank-number comparison), with their key partitioning properties.
#include <iostream>

#include "baseline/ltb.h"
#include "common/table.h"
#include "core/partitioner.h"
#include "pattern/pattern_io.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;

  std::cout << "=== Fig. 3: benchmark access patterns ===\n\n";
  for (const Pattern& p : patterns::table1_patterns()) {
    std::cout << "--- " << p.name() << " (" << p.size() << " elements, "
              << p.rank() << "-D) ---\n";
    if (p.rank() == 2) {
      std::cout << render_pattern_2d(p);
    } else {
      // Render 3-D patterns slice by slice along the innermost dimension.
      const Pattern norm = p.normalized();
      for (Coord k = 0; k < norm.extent(2); ++k) {
        std::cout << "slice x2 = " << k << ":\n";
        for (Coord i = 0; i < norm.extent(0); ++i) {
          for (Coord j = 0; j < norm.extent(1); ++j) {
            std::cout << (norm.contains({i, j, k}) ? '#' : '.');
          }
          std::cout << '\n';
        }
      }
    }
    std::cout << '\n';
  }

  TextTable t;
  t.row({"Pattern", "m", "n", "D", "alpha", "Nf (ours)", "N (LTB)"});
  t.separator();
  for (const Pattern& p : patterns::table1_patterns()) {
    PartitionRequest req;
    req.pattern = p;
    const PartitionSolution sol = Partitioner::solve(req);
    const baseline::LtbSolution ltb = baseline::ltb_solve(p);
    std::string extents;
    for (int d = 0; d < p.rank(); ++d) {
      if (d > 0) extents += 'x';
      extents += std::to_string(p.extent(d));
    }
    t.add_row();
    t.cell(p.name())
        .cell(p.size())
        .cell(static_cast<std::int64_t>(p.rank()))
        .cell(extents)
        .cell(sol.transform.to_string())
        .cell(sol.num_banks())
        .cell(ltb.num_banks);
  }
  std::cout << "=== Partitioning properties ===\n";
  t.print(std::cout);
  std::cout << "\nPaper bank numbers: LoG 13/13, Canny 25/25, Prewitt 9/9, "
               "SE 5/5,\nSobel3D 27/27, Median 8/7, Gaussian 13/10 "
               "(ours/LTB).\n";
  return 0;
}
