// A/B harness for the solve-throughput engine: the canonical solution
// cache (src/core/solve_cache.h) and the batched solver
// (Partitioner::solve_many). Three phases:
//
//   1. cold vs warm — every corpus request solved uncached (the static
//      Partitioner::solve) and then again through a warmed cache; asserts
//      the hit-path solution is field-for-field identical to the direct one
//      (ops excepted — a hit honestly performs less arithmetic) and reports
//      the warm speedup.
//   2. batch — a large request stream built from translated and permuted
//      variants of the corpus (canonically equal, so they dedup) through
//      solve_many vs a sequential solve loop.
//   3. thread sweep — solve_many at 1..T threads over the same stream with
//      the cache cleared per run; asserts the results are identical at
//      every width and reports sweep scaling.
//
// Emits machine-readable JSON (BENCH_solvecache.json) for CI artifacts and
// docs/PERFORMANCE.md. Exit status is non-zero when any hit-path solution
// disagrees with the direct solve or any sweep width changes the results.
//
// Flags: --quick (smaller corpus and fewer reps), --threads T (max sweep
// width, default 4), --out FILE (JSON path, default BENCH_solvecache.json).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace {

using namespace mempart;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Field-for-field equality of two solutions of the same request, ops
/// excluded (a cache hit performs less arithmetic than a full solve).
bool solutions_equal(const PartitionSolution& a, const PartitionSolution& b) {
  return a.transform.alpha() == b.transform.alpha() &&
         a.search.num_banks == b.search.num_banks &&
         a.search.max_difference == b.search.max_difference &&
         a.constraint.num_banks == b.constraint.num_banks &&
         a.constraint.fold_factor == b.constraint.fold_factor &&
         a.constraint.delta_ii == b.constraint.delta_ii &&
         a.constraint.strategy == b.constraint.strategy &&
         a.constraint.sweep == b.constraint.sweep &&
         a.transformed == b.transformed &&
         a.pattern_banks == b.pattern_banks &&
         a.bank_bandwidth == b.bank_bandwidth;
}

/// Translates every offset of `pattern` by `shift` (same value added to
/// each dimension, scaled per axis) — a canonical-equal variant.
Pattern translated(const Pattern& pattern, Coord shift) {
  std::vector<NdIndex> offsets = pattern.offsets();
  for (NdIndex& offset : offsets) {
    for (std::size_t d = 0; d < offset.size(); ++d) {
      offset[d] += shift * static_cast<Coord>(d + 1);
    }
  }
  return Pattern(std::move(offsets), pattern.name());
}

/// Reverses the dimension order of every offset — a canonical-equal
/// variant whenever permutation-based canonicalization is allowed.
Pattern transposed(const Pattern& pattern) {
  std::vector<NdIndex> offsets = pattern.offsets();
  for (NdIndex& offset : offsets) std::reverse(offset.begin(), offset.end());
  return Pattern(std::move(offsets), pattern.name());
}

/// Distinct requests covering the solver surface: every Table-1 pattern
/// plus larger generated ones, across strategies, bandwidths and caps.
/// Shapeless on purpose — this benchmark times the solver, not the
/// BankMapping construction, and the warm hit path for shapeless requests
/// is the zero-allocation one.
std::vector<PartitionRequest> build_corpus(bool quick) {
  // The Table-1 patterns keep the mix honest (realistic, nearly free to
  // solve — caching buys little there); the large and sparse constellations
  // are where Algorithm 1's O(m^2) pair scan and candidate search dominate
  // the O(m log m) canonicalize-and-look-up path, i.e. where a cache earns
  // its keep.
  std::vector<Pattern> pool = patterns::table1_patterns();
  pool.push_back(patterns::box2d(quick ? 8 : 10));
  pool.push_back(patterns::box2d(quick ? 10 : 14));
  pool.push_back(patterns::cross2d(quick ? 16 : 32));
  pool.push_back(patterns::cross2d(quick ? 24 : 48));
  if (!quick) pool.push_back(patterns::cross2d(64));
  pool.push_back(patterns::box3d(quick ? 5 : 6));
  pool.push_back(patterns::row1d(quick ? 24 : 48));
  pool.push_back(patterns::atrous2d(quick ? 7 : 9, quick ? 5 : 7));

  std::vector<PartitionRequest> corpus;
  for (const Pattern& pattern : pool) {
    for (const Count max_banks : {Count{0}, Count{8}}) {
      for (const ConstraintStrategy strategy :
           {ConstraintStrategy::kFastFold, ConstraintStrategy::kSameSize}) {
        PartitionRequest request;
        request.pattern = pattern;
        request.max_banks = max_banks;
        request.strategy = strategy;
        corpus.push_back(request);
        if (max_banks != 0) {
          request.bank_bandwidth = 2;
          corpus.push_back(request);
        }
      }
    }
  }
  return corpus;
}

/// The batch stream: canonically equal variants (translations, and
/// transpositions of the square patterns) of corpus requests, shuffled
/// deterministically.
std::vector<PartitionRequest> build_stream(
    const std::vector<PartitionRequest>& corpus, bool quick) {
  std::vector<PartitionRequest> stream;
  const int copies = quick ? 4 : 8;
  for (const PartitionRequest& request : corpus) {
    for (int c = 0; c < copies; ++c) {
      PartitionRequest variant = request;
      const Pattern& base = *request.pattern;
      variant.pattern =
          c % 2 == 0 ? translated(base, static_cast<Coord>(c - copies / 2))
                     : transposed(translated(base, static_cast<Coord>(c)));
      stream.push_back(std::move(variant));
    }
  }
  std::mt19937 rng(12345);
  std::shuffle(stream.begin(), stream.end(), rng);
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("bench_solvecache",
                   "A/B: direct solves vs the canonical solution cache and "
                   "the batched solver");
  parser.add_bool("quick", "smaller corpus and fewer repetitions");
  parser.add_int("threads", 4, "max thread count of the sweep scaling run");
  parser.add_string("out", "BENCH_solvecache.json", "JSON output path");
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    parser.parse(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  const bool quick = parser.get_bool("quick");
  const Count max_threads = std::max<Count>(1, parser.get_int("threads"));
  const int reps = quick ? 20 : 100;

  const std::vector<PartitionRequest> corpus = build_corpus(quick);
  const std::vector<PartitionRequest> stream = build_stream(corpus, quick);
  std::cout << "=== Solve-cache A/B: " << corpus.size()
            << " distinct requests, " << stream.size()
            << "-request batch stream ===\n\n";

  bool all_identical = true;
  std::ostringstream json;
  json << "{\n  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency()
       << ",\n  \"corpus_requests\": " << corpus.size()
       << ",\n  \"stream_requests\": " << stream.size() << ",\n";

  // --- Phase 1: cold vs warm, hit-path identity ---
  SolveCache cache(4096);
  Partitioner cached(&cache);
  Partitioner uncached(nullptr);

  double t0 = now_ms();
  for (int r = 0; r < reps; ++r) {
    for (const PartitionRequest& request : corpus) {
      (void)Partitioner::solve(request);
    }
  }
  const double cold_ms = (now_ms() - t0) / reps;

  for (const PartitionRequest& request : corpus) {
    (void)cached.solve_cached(request);  // populate
  }
  PartitionSolution reused;
  t0 = now_ms();
  for (int r = 0; r < reps; ++r) {
    for (const PartitionRequest& request : corpus) {
      cached.solve_into(request, reused);
    }
  }
  const double warm_ms = (now_ms() - t0) / reps;
  const double warm_speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

  std::size_t mismatches = 0;
  for (const PartitionRequest& request : corpus) {
    const PartitionSolution direct = Partitioner::solve(request);
    const PartitionSolution hit = cached.solve_cached(request);
    if (!solutions_equal(direct, hit)) ++mismatches;
  }
  all_identical = all_identical && mismatches == 0;
  std::cout << "  cold " << cold_ms << " ms/pass, warm " << warm_ms
            << " ms/pass, speedup " << warm_speedup << "x, hit-vs-direct "
            << (mismatches == 0 ? "IDENTICAL" : "MISMATCH") << '\n';
  json << "  \"cold_ms\": " << cold_ms << ",\n  \"warm_ms\": " << warm_ms
       << ",\n  \"warm_speedup\": " << warm_speedup
       << ",\n  \"hit_vs_direct_identical\": "
       << (mismatches == 0 ? "true" : "false") << ",\n";

  // --- Phase 2: batch solve_many vs sequential loop ---
  const int batch_reps = std::max(1, reps / 10);
  BatchOptions options;
  options.threads = 1;
  cache.clear();
  t0 = now_ms();
  for (int r = 0; r < batch_reps; ++r) {
    cache.clear();
    (void)cached.solve_many(stream, options);
  }
  const double batch_ms = (now_ms() - t0) / batch_reps;
  t0 = now_ms();
  for (int r = 0; r < batch_reps; ++r) {
    for (const PartitionRequest& request : stream) {
      (void)Partitioner::solve(request);
    }
  }
  const double sequential_ms = (now_ms() - t0) / batch_reps;
  cache.clear();
  const std::vector<PartitionSolution> batch_base =
      cached.solve_many(stream, options);
  const SolveCache::Stats batch_stats = cache.stats();
  const double dedup =
      batch_stats.misses > 0
          ? static_cast<double>(stream.size()) /
                static_cast<double>(batch_stats.misses)
          : 0.0;
  const double batch_speedup = batch_ms > 0.0 ? sequential_ms / batch_ms : 0.0;
  std::cout << "  batch " << stream.size() << " requests: solve_many "
            << batch_ms << " ms, sequential " << sequential_ms
            << " ms, speedup " << batch_speedup << "x, " << batch_stats.misses
            << " distinct solves (dedup " << dedup << "x)\n";
  json << "  \"batch\": {\"requests\": " << stream.size()
       << ", \"distinct_solves\": " << batch_stats.misses
       << ", \"dedup_factor\": " << dedup
       << ", \"solve_many_ms\": " << batch_ms
       << ", \"sequential_ms\": " << sequential_ms
       << ", \"speedup\": " << batch_speedup << "},\n";

  // --- Phase 3: thread sweep, determinism across widths ---
  std::cout << "\n=== Sweep scaling: solve_many at 1.."
            << max_threads << " threads (cache cleared per run) ===\n\n";
  double single_thread_ms = 0.0;
  json << "  \"sweep\": [\n";
  for (Count threads = 1; threads <= max_threads; ++threads) {
    BatchOptions sweep_options;
    sweep_options.threads = threads;
    t0 = now_ms();
    std::vector<PartitionSolution> results;
    for (int r = 0; r < batch_reps; ++r) {
      cache.clear();
      results = cached.solve_many(stream, sweep_options);
    }
    const double sweep_ms = (now_ms() - t0) / batch_reps;
    if (threads == 1) single_thread_ms = sweep_ms;
    bool deterministic = results.size() == batch_base.size();
    for (std::size_t i = 0; deterministic && i < results.size(); ++i) {
      deterministic = solutions_equal(results[i], batch_base[i]);
    }
    all_identical = all_identical && deterministic;
    const double scaling = sweep_ms > 0.0 ? single_thread_ms / sweep_ms : 0.0;
    std::cout << "  threads=" << threads << ": " << sweep_ms << " ms ("
              << scaling << "x vs 1 thread)"
              << (deterministic ? "" : "  RESULT MISMATCH vs 1 thread")
              << '\n';
    json << "    {\"threads\": " << threads << ", \"sweep_ms\": " << sweep_ms
         << ", \"scaling\": " << scaling
         << ", \"deterministic\": " << (deterministic ? "true" : "false")
         << "}" << (threads < max_threads ? "," : "") << '\n';
  }

  cache.clear();
  for (const PartitionRequest& request : corpus) {
    (void)cached.solve_cached(request);
    (void)cached.solve_cached(request);
  }
  const SolveCache::Stats stats = cache.stats();
  json << "  ],\n  \"cache\": {\"hits\": " << stats.hits
       << ", \"misses\": " << stats.misses
       << ", \"evictions\": " << stats.evictions
       << ", \"entries\": " << stats.entries
       << ", \"capacity\": " << stats.capacity
       << ", \"shards\": " << stats.shards
       << "},\n  \"all_identical\": " << (all_identical ? "true" : "false")
       << "\n}\n";

  const std::string out_path = parser.get_string("out");
  std::ofstream out(out_path);
  out << json.str();
  std::cout << "\nwrote " << out_path << '\n';

  if (!all_identical) {
    std::cerr << "FAIL: cache or batch path disagreed with direct solves\n";
    return 1;
  }
  std::cout << "PASS: cache hits and batched solves identical to direct "
               "solves at every thread count\n";
  return 0;
}
