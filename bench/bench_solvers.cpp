// google-benchmark timing of both solvers on the Table 1 patterns — the
// "execution time" column measured properly (steady-state, statistically
// sized runs) rather than by a single stopwatch loop.
#include <benchmark/benchmark.h>

#include "baseline/ltb.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace {

using namespace mempart;

const Pattern& table1_pattern(size_t index) {
  static const auto all = patterns::table1_patterns();
  return all[index];
}

void BM_OursSolve(benchmark::State& state) {
  const Pattern& p = table1_pattern(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    PartitionRequest req;
    req.pattern = p;
    benchmark::DoNotOptimize(Partitioner::solve(req));
  }
  state.SetLabel(p.name());
}

void BM_LtbSolve(benchmark::State& state) {
  const Pattern& p = table1_pattern(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::ltb_solve(p));
  }
  state.SetLabel(p.name());
}

void BM_OursSolveWithMapping(benchmark::State& state) {
  const Pattern& p = table1_pattern(static_cast<size_t>(state.range(0)));
  const NdShape shape = p.rank() == 3 ? NdShape({640, 480, 400})
                                      : NdShape({640, 480});
  for (auto _ : state) {
    PartitionRequest req;
    req.pattern = p;
    req.array_shape = shape;
    benchmark::DoNotOptimize(Partitioner::solve(req));
  }
  state.SetLabel(p.name());
}

void BM_ConstrainedSameSize(benchmark::State& state) {
  const Pattern& p = table1_pattern(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    PartitionRequest req;
    req.pattern = p;
    req.max_banks = 10;
    req.strategy = ConstraintStrategy::kSameSize;
    benchmark::DoNotOptimize(Partitioner::solve(req));
  }
  state.SetLabel(p.name());
}

}  // namespace

BENCHMARK(BM_OursSolve)->DenseRange(0, 6);
BENCHMARK(BM_LtbSolve)->DenseRange(0, 6)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OursSolveWithMapping)->DenseRange(0, 6);
BENCHMARK(BM_ConstrainedSameSize)->DenseRange(0, 6);
