// Ablation of §4.4.2: padded vs compact tail handling. The padded mapping
// costs (ceil(w/N)N - w) * leading elements but is pure arithmetic; the
// compact mapping is overhead-free but needs a rank lookup for tail
// elements ("no storage overhead but high complexity"). This bench
// quantifies both sides: storage across resolutions, and address-generation
// throughput measured on this host.
#include <chrono>
#include <iostream>

#include "common/table.h"
#include "core/partitioner.h"
#include "hw/bram.h"
#include "hw/resolutions.h"
#include "pattern/pattern_library.h"

namespace {

using namespace mempart;

double addresses_per_second(const BankMapping& mapping, Count probes) {
  const NdShape& shape = mapping.array_shape();
  // Deterministic probe sequence covering body and tail.
  std::vector<NdIndex> xs;
  xs.reserve(static_cast<size_t>(probes));
  const Count volume = shape.volume();
  for (Count i = 0; i < probes; ++i) {
    xs.push_back(shape.unflatten((i * 7919) % volume));
  }
  // Warm the compact tail index outside the timed region.
  (void)mapping.offset_of(xs.front());
  const auto start = std::chrono::steady_clock::now();
  Address sink = 0;
  for (const NdIndex& x : xs) {
    sink += mapping.bank_of(x) + mapping.offset_of(x);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  // Keep the accumulator alive.
  if (sink == -1) std::cout << "";
  return static_cast<double>(probes) / seconds;
}

}  // namespace

int main() {
  const Pattern pattern = patterns::log5x5();

  std::cout << "=== Tail policy: storage overhead (elements) across "
               "resolutions, LoG N=13 ===\n\n";
  TextTable t;
  t.row({"Resolution", "padded elems", "padded blocks", "compact elems",
         "bank sizes"});
  t.separator();
  for (const hw::Resolution& r : hw::table1_resolutions()) {
    PartitionRequest req;
    req.pattern = pattern;
    req.array_shape = r.shape2d();

    req.tail = TailPolicy::kPadded;
    const PartitionSolution padded = Partitioner::solve(req);

    req.tail = TailPolicy::kCompact;
    const PartitionSolution compact = Partitioner::solve(req);

    // Compact banks differ in size; show the range.
    Count lo = compact.mapping->bank_capacity(0);
    Count hi = lo;
    for (Count b = 1; b < compact.num_banks(); ++b) {
      lo = std::min(lo, compact.mapping->bank_capacity(b));
      hi = std::max(hi, compact.mapping->bank_capacity(b));
    }
    t.add_row();
    t.cell(r.name)
        .cell(padded.storage_overhead_elements())
        .cell(hw::overhead_blocks(padded.storage_overhead_elements()))
        .cell(compact.storage_overhead_elements())
        .cell(std::to_string(lo) + ".." + std::to_string(hi));
  }
  t.print(std::cout);

  std::cout << "\n=== Address-generation throughput (software model, SD "
               "array) ===\n\n";
  TextTable p;
  p.row({"Tail policy", "addresses/s"});
  p.separator();
  for (TailPolicy tail : {TailPolicy::kPadded, TailPolicy::kCompact}) {
    PartitionRequest req;
    req.pattern = pattern;
    req.array_shape = hw::table1_resolutions().front().shape2d();
    req.tail = tail;
    const PartitionSolution sol = Partitioner::solve(req);
    p.add_row();
    p.cell(tail == TailPolicy::kPadded ? "padded" : "compact")
        .cell(addresses_per_second(*sol.mapping, 200000), 0);
  }
  p.print(std::cout);
  std::cout << "\nCompact wins the storage column by construction and loses\n"
               "address-generation speed to the tail-rank lookup — the exact\n"
               "trade-off the paper names in sec 4.4.2.\n";
  return 0;
}
