// How close is Table 1's aggregate block accounting (ceil(bits/9000)) to a
// physical FPGA mapping? A real mapper tiles each bank separately with one
// of the M9K's aspect-ratio configurations (8192x1 ... 256x36). This bench
// packs the LoG banked layouts for every resolution both ways and shows the
// per-bank aspect constraint as the hidden cost of high bank counts — the
// hardware argument behind constraint 2 (N_max).
#include <iostream>

#include "common/table.h"
#include "core/partitioner.h"
#include "hw/bram.h"
#include "hw/bram_packing.h"
#include "hw/resolutions.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;
  const Pattern log = patterns::log5x5();

  std::cout << "=== LoG (N = 13) banked storage: paper accounting vs "
               "physical M9K packing (16-bit data) ===\n\n";
  TextTable t;
  t.row({"Resolution", "array blocks*", "banked aggregate*",
         "banked physical", "per-bank tiling"});
  t.separator();
  for (const hw::Resolution& r : hw::table1_resolutions()) {
    PartitionRequest req;
    req.pattern = log;
    req.array_shape = r.shape2d();
    const PartitionSolution sol = Partitioner::solve(req);

    std::vector<Count> bank_depths;
    for (Count b = 0; b < sol.num_banks(); ++b) {
      bank_depths.push_back(sol.mapping->bank_capacity(b));
    }
    const hw::PackingResult per_bank =
        hw::pack_memory(bank_depths.front(), 16);
    const Count physical = hw::pack_banks(bank_depths, 16);
    t.add_row();
    t.cell(r.name)
        .cell(hw::blocks_for_elements(r.shape2d().volume()))
        .cell(hw::blocks_for_elements(sol.mapping->total_capacity()))
        .cell(physical)
        .cell(per_bank.to_string());
  }
  t.print(std::cout);
  std::cout << "\n(* aggregate ceil(bits/9000) as in Table 1)\n\n";

  std::cout << "=== Physical cost of over-banking: split an SD frame into "
               "N banks ===\n\n";
  TextTable n;
  n.row({"N banks", "bank depth", "physical blocks", "vs aggregate"});
  n.separator();
  const Count volume = 640 * 480;
  const Count aggregate = hw::blocks_for_elements(volume);
  for (Count banks : {1, 4, 13, 32, 64, 128, 256}) {
    const Count depth = (volume + banks - 1) / banks;
    const Count physical =
        hw::pack_banks(std::vector<Count>(static_cast<size_t>(banks), depth),
                       16);
    n.add_row();
    n.cell(banks)
        .cell(depth)
        .cell(physical)
        .cell(static_cast<double>(physical) / static_cast<double>(aggregate),
              2);
  }
  n.print(std::cout);
  std::cout << "\nUp to a few dozen banks the physical cost tracks the "
               "aggregate bound;\npast that, every tiny bank still burns "
               "whole blocks — the area cliff\nthat motivates capping N "
               "(constraint 2 of Problem 1).\n";
  return 0;
}
