// Reproduces Figure 2 of the paper as text art:
//   (a) the LoG access pattern,
//   (b) the 13-bank partitioning (bank index of every element in a window),
//   (c) the 7-bank same-size solution,
//   (d)/(e) the storage reorganisation: for a small window, where every
//           element physically lands (bank, offset) under the 7-bank
//           mapping, shown bank by bank.
#include <iostream>
#include <vector>

#include "common/math_util.h"
#include "core/partitioner.h"
#include "pattern/pattern_io.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;
  const Pattern log = patterns::log5x5();

  std::cout << "=== Fig. 2(a): LoG access pattern (13 of 25 positions) ===\n"
            << render_pattern_2d(log) << '\n';

  PartitionRequest req;
  req.pattern = log;
  const PartitionSolution base = Partitioner::solve(req);

  const LinearTransform& alpha = base.transform;
  std::cout << "=== Fig. 2(b): bank index map, N = 13, B(x) = ("
            << alpha.to_string() << " . x) % 13 ===\n"
            << render_bank_map(10, 10,
                               [&](const NdIndex& x) {
                                 return euclid_mod(alpha.apply(x), 13);
                               })
            << '\n';

  std::cout << "Any placement of the 13-element LoG window covers 13 distinct"
               " bank indices.\n\n";

  PartitionRequest same = req;
  same.max_banks = 10;
  same.strategy = ConstraintStrategy::kSameSize;
  const PartitionSolution seven = Partitioner::solve(same);
  std::cout << "=== Fig. 2(c): same-size solution, N = " << seven.num_banks()
            << ", delta_II = " << seven.delta_ii() << " ===\n"
            << render_bank_map(10, 10,
                               [&](const NdIndex& x) {
                                 return euclid_mod(alpha.apply(x),
                                                   seven.num_banks());
                               })
            << '\n';
  std::cout << "Any LoG window hits each of the 7 banks at most "
            << seven.delta_ii() + 1 << " times (2 access cycles).\n\n";

  // (d)/(e): physical layout of a small array under the 7-bank mapping.
  const NdShape window({5, 8});
  PartitionRequest mapped_req = same;
  mapped_req.array_shape = window;
  const PartitionSolution mapped = Partitioner::solve(mapped_req);
  const BankMapping& mapping = *mapped.mapping;

  std::cout << "=== Fig. 2(d)/(e): storage reorganisation of a "
            << window.to_string() << " array into " << mapping.num_banks()
            << " banks ===\n"
            << "Each row lists one bank; entries are the original element\n"
               "coordinates in offset order (. = unused padded slot).\n\n";

  for (Count b = 0; b < mapping.num_banks(); ++b) {
    std::vector<std::string> slots(
        static_cast<size_t>(mapping.bank_capacity(b)), ".");
    window.for_each([&](const NdIndex& x) {
      if (mapping.bank_of(x) == b) {
        slots[static_cast<size_t>(mapping.offset_of(x))] = to_string(x);
      }
    });
    std::cout << "bank " << b << ": ";
    for (size_t i = 0; i < slots.size(); ++i) {
      std::cout << (i ? " " : "") << slots[i];
    }
    std::cout << '\n';
  }
  std::cout << "\nTotal allocated: " << mapping.total_capacity()
            << " slots for " << window.volume() << " elements (overhead "
            << mapping.storage_overhead_elements() << ").\n";
  return 0;
}
