#include "core/bank_mapping.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/verify.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

BankMapping log_mapping(NdShape shape, Count banks,
                        TailPolicy tail = TailPolicy::kPadded,
                        Count fold_modulus = 0) {
  return BankMapping(std::move(shape),
                     LinearTransform::derive(patterns::log5x5()),
                     {.num_banks = banks, .fold_modulus = fold_modulus,
                      .tail = tail});
}

TEST(BankMapping, RejectsBadOptions) {
  const LinearTransform t({5, 1});
  EXPECT_THROW((void)BankMapping(NdShape({8, 8}), t, {.num_banks = 0}),
               InvalidArgument);
  EXPECT_THROW((void)BankMapping(NdShape({8}), t, {.num_banks = 3}),
               InvalidArgument);  // rank mismatch
  EXPECT_THROW(
      BankMapping(NdShape({8, 8}), t, {.num_banks = 7, .fold_modulus = 3}),
      InvalidArgument);  // fold < banks
  EXPECT_THROW((void)BankMapping(NdShape({8, 8}), t,
                           {.num_banks = 7, .fold_modulus = 13,
                            .tail = TailPolicy::kCompact}),
               InvalidArgument);  // folding requires padding
}

TEST(BankMapping, BankIndexFormula) {
  const BankMapping m = log_mapping(NdShape({20, 20}), 13);
  // B(x) = (5*x0 + x1) mod 13.
  EXPECT_EQ(m.bank_of({0, 0}), 0);
  EXPECT_EQ(m.bank_of({3, 4}), 19 % 13);
  EXPECT_EQ(m.bank_of({6, 4}), 34 % 13);
  EXPECT_THROW((void)m.bank_of({20, 0}), InvalidArgument);
}

TEST(BankMapping, PaddedUniqueAddressesSmallArray) {
  const BankMapping m = log_mapping(NdShape({9, 11}), 13);
  EXPECT_TRUE(verify_unique_addresses(m)) << verify_unique_addresses(m).message;
}

TEST(BankMapping, PaddedOverheadMatchesClosedForm) {
  // LoG on SD: (ceil(480/13)*13 - 480) * 640 = 640 elements (§2).
  const BankMapping m = log_mapping(NdShape({640, 480}), 13);
  EXPECT_EQ(m.storage_overhead_elements(), 640);
  EXPECT_EQ(m.total_capacity(), 640 * 480 + 640);
  EXPECT_EQ(m.bank_capacity(0), 37 * 640);
}

TEST(BankMapping, PaddedBanksAreEqualSize) {
  const BankMapping m = log_mapping(NdShape({30, 17}), 7);
  for (Count b = 1; b < 7; ++b) {
    EXPECT_EQ(m.bank_capacity(b), m.bank_capacity(0));
  }
}

TEST(BankMapping, ZeroOverheadWhenDivisible) {
  const BankMapping m = log_mapping(NdShape({16, 24}), 8);
  EXPECT_EQ(m.storage_overhead_elements(), 0);
}

TEST(BankMapping, CompactAlwaysZeroOverhead) {
  for (Count banks : {3, 5, 7, 13}) {
    const BankMapping m =
        log_mapping(NdShape({10, 11}), banks, TailPolicy::kCompact);
    EXPECT_EQ(m.storage_overhead_elements(), 0) << "banks=" << banks;
    EXPECT_EQ(m.total_capacity(), 110);
  }
}

TEST(BankMapping, CompactUniqueAddresses) {
  for (Count banks : {3, 5, 7, 13}) {
    const BankMapping m =
        log_mapping(NdShape({9, 11}), banks, TailPolicy::kCompact);
    const VerifyResult r = verify_unique_addresses(m);
    EXPECT_TRUE(r) << "banks=" << banks << ": " << r.message;
  }
}

TEST(BankMapping, CompactBankCapacitiesSumToVolume) {
  const BankMapping m = log_mapping(NdShape({8, 10}), 7, TailPolicy::kCompact);
  Count sum = 0;
  for (Count b = 0; b < 7; ++b) sum += m.bank_capacity(b);
  EXPECT_EQ(sum, 80);
}

TEST(BankMapping, CompactWithInnermostSmallerThanBanks) {
  // w_{n-1} < N: the body is empty, everything is tail.
  const BankMapping m = log_mapping(NdShape({6, 4}), 7, TailPolicy::kCompact);
  EXPECT_EQ(m.storage_overhead_elements(), 0);
  EXPECT_TRUE(verify_unique_addresses(m));
}

TEST(BankMapping, FoldedUniqueAddresses) {
  // LoG fast approach: Nf = 13 folded to Nc = 7.
  const BankMapping m = log_mapping(NdShape({9, 11}), 7, TailPolicy::kPadded,
                                    /*fold_modulus=*/13);
  EXPECT_TRUE(m.folded());
  const VerifyResult r = verify_unique_addresses(m);
  EXPECT_TRUE(r) << r.message;
}

TEST(BankMapping, FoldedBankIndexCombinesPairs) {
  // §5.1: banks 0&7, 1&8, ..., 5&12 combine; bank 6 stays alone.
  const BankMapping m = log_mapping(NdShape({20, 26}), 7, TailPolicy::kPadded,
                                    /*fold_modulus=*/13);
  const LinearTransform t = LinearTransform::derive(patterns::log5x5());
  m.array_shape().for_each([&](const NdIndex& x) {
    const Count raw = ((t.apply(x) % 13) + 13) % 13;
    EXPECT_EQ(m.bank_of(x), raw % 7);
  });
}

TEST(BankMapping, FoldedCapacitiesAreConcatenations) {
  const BankMapping m = log_mapping(NdShape({10, 26}), 7, TailPolicy::kPadded,
                                    /*fold_modulus=*/13);
  // K' = ceil(26/13) = 2; raw bank capacity = 2*10 = 20.
  for (Count b = 0; b < 6; ++b) {
    EXPECT_EQ(m.bank_capacity(b), 40) << "bank " << b;  // two raw banks
  }
  EXPECT_EQ(m.bank_capacity(6), 20);  // raw bank 6 only
  EXPECT_EQ(m.total_capacity(), 13 * 20);
}

TEST(BankMapping, IntraBankCoordKeepsLeadingCoords) {
  const BankMapping m = log_mapping(NdShape({6, 11}), 5);
  m.array_shape().for_each([&](const NdIndex& x) {
    const NdIndex c = m.intra_bank_coord(x);
    EXPECT_EQ(c[0], x[0]);
    EXPECT_GE(c[1], 0);
    EXPECT_LT(c[1], 3);  // K' = ceil(11/5) = 3
  });
}

TEST(BankMapping, IntraBankCoordRejectsFolded) {
  const BankMapping m = log_mapping(NdShape({6, 26}), 7, TailPolicy::kPadded,
                                    /*fold_modulus=*/13);
  EXPECT_THROW((void)m.intra_bank_coord({0, 0}), InvalidArgument);
}

TEST(BankMapping, Rank1Array) {
  const BankMapping m(NdShape({29}), LinearTransform({1}), {.num_banks = 4});
  EXPECT_TRUE(verify_unique_addresses(m));
  EXPECT_EQ(m.storage_overhead_elements(), 3);  // 32 - 29
}

TEST(BankMapping, Rank3Array) {
  const BankMapping m(NdShape({4, 5, 7}),
                      LinearTransform::derive(patterns::sobel3d()),
                      {.num_banks = 5});
  EXPECT_TRUE(verify_unique_addresses(m));
  // (ceil(7/5)*5 - 7) * 4*5 = 3 * 20 = 60.
  EXPECT_EQ(m.storage_overhead_elements(), 60);
}

TEST(BankMapping, CapacityBankOutOfRange) {
  const BankMapping m = log_mapping(NdShape({8, 8}), 3);
  EXPECT_THROW((void)m.bank_capacity(3), InvalidArgument);
  EXPECT_THROW((void)m.bank_capacity(-1), InvalidArgument);
}

TEST(BankMapping, FoldModulusEqualToBanksDegradesToUnfolded) {
  // F = 1 folding is a no-op; it must behave exactly like the unfolded
  // mapping — folded() false, intra_bank_coord available, same layout.
  const BankMapping folded = log_mapping(NdShape({6, 26}), 13,
                                         TailPolicy::kPadded,
                                         /*fold_modulus=*/13);
  const BankMapping plain = log_mapping(NdShape({6, 26}), 13);
  EXPECT_FALSE(folded.folded());
  EXPECT_EQ(folded.conflict_modulus(), 13);
  NdShape({6, 26}).for_each([&](const NdIndex& x) {
    ASSERT_EQ(folded.bank_of(x), plain.bank_of(x));
    ASSERT_EQ(folded.offset_of(x), plain.offset_of(x));
  });
  EXPECT_NO_THROW((void)folded.intra_bank_coord({0, 0}));
}

TEST(BankMapping, RejectsNonInjectiveInnermostRemapPadded) {
  // alpha = (1, 3), N = 9, innermost 23 pads to 27: the remap
  // x -> 3x mod 27 has period 9 < 23, so elements would silently collide.
  EXPECT_THROW((void)BankMapping(NdShape({17, 23}), LinearTransform({1, 3}),
                                 {.num_banks = 9}),
               InvalidArgument);
  // alpha_last coprime to the span is fine.
  EXPECT_NO_THROW((void)BankMapping(NdShape({17, 23}),
                                    LinearTransform({1, 2}), {.num_banks = 9}));
}

TEST(BankMapping, RejectsNonInjectiveInnermostRemapCompact) {
  // Compact body spans K*N = 24; alpha_last = 2 shares a factor with 24,
  // so the body remap x -> 2x mod 24 collides.
  EXPECT_THROW((void)BankMapping(NdShape({5, 26}), LinearTransform({1, 2}),
                                 {.num_banks = 12,
                                  .tail = TailPolicy::kCompact}),
               InvalidArgument);
}

TEST(BankMapping, PaddedNonMultipleInnermostStaysUnique) {
  // The regression the fuzzer chased: with w_{n-1} = 19 and N = 5 the last
  // padded slice holds only 4 real elements whose remapped x_new values are
  // not contiguous; every (bank, offset) pair must still be unique and
  // within capacity.
  const Pattern cross({{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}}, "cross");
  const BankMapping m(NdShape({11, 19}), LinearTransform::derive(cross),
                      {.num_banks = 5});
  EXPECT_TRUE(verify_unique_addresses(m));
  NdShape({11, 19}).for_each([&](const NdIndex& x) {
    const Count bank = m.bank_of(x);
    ASSERT_GE(bank, 0);
    ASSERT_LT(bank, 5);
    ASSERT_LT(m.offset_of(x), m.bank_capacity(bank));
  });
}

}  // namespace
}  // namespace mempart
