#include "core/solution_io.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

PartitionRequest log_request() {
  PartitionRequest req;
  req.pattern = patterns::log5x5();
  req.array_shape = NdShape({640, 480});
  req.max_banks = 10;
  req.strategy = ConstraintStrategy::kSameSize;
  return req;
}

TEST(SolutionIO, RoundTripPreservesEverything) {
  const PartitionRequest req = log_request();
  const PartitionSolution sol = Partitioner::solve(req);
  const std::string text = write_solution_record(req, sol);

  const SolutionRecord record = read_solution_record(text);
  EXPECT_EQ(*record.request.pattern, *req.pattern);
  EXPECT_EQ(record.request.pattern->name(), "LoG");
  ASSERT_TRUE(record.request.array_shape.has_value());
  EXPECT_EQ(*record.request.array_shape, NdShape({640, 480}));
  EXPECT_EQ(record.request.max_banks, 10);
  EXPECT_EQ(record.request.strategy, ConstraintStrategy::kSameSize);
  EXPECT_EQ(record.alpha, (std::vector<Count>{5, 1}));
  EXPECT_EQ(record.nf, 13);
  EXPECT_EQ(record.nc, 7);
  EXPECT_EQ(record.delta, 1);
}

TEST(SolutionIO, VerifyRecordAcceptsFaithfulRecord) {
  const PartitionRequest req = log_request();
  const PartitionSolution sol = Partitioner::solve(req);
  const SolutionRecord record =
      read_solution_record(write_solution_record(req, sol));
  EXPECT_TRUE(verify_record(record));
}

TEST(SolutionIO, VerifyRecordRejectsTamperedFacts) {
  const PartitionRequest req = log_request();
  const PartitionSolution sol = Partitioner::solve(req);
  SolutionRecord record =
      read_solution_record(write_solution_record(req, sol));
  record.nc = 9;  // a plausible but wrong bank count
  EXPECT_FALSE(verify_record(record));
}

TEST(SolutionIO, RoundTripAllBenchmarks) {
  for (const Pattern& p : patterns::table1_patterns()) {
    PartitionRequest req;
    req.pattern = p;
    const PartitionSolution sol = Partitioner::solve(req);
    const SolutionRecord record =
        read_solution_record(write_solution_record(req, sol));
    EXPECT_TRUE(verify_record(record)) << p.name();
  }
}

TEST(SolutionIO, RoundTripWithBandwidthAndCompactTail) {
  PartitionRequest req;
  req.pattern = patterns::gaussian9();
  req.bank_bandwidth = 2;
  req.tail = TailPolicy::kCompact;
  const PartitionSolution sol = Partitioner::solve(req);
  const SolutionRecord record =
      read_solution_record(write_solution_record(req, sol));
  EXPECT_EQ(record.request.bank_bandwidth, 2);
  EXPECT_EQ(record.request.tail, TailPolicy::kCompact);
  EXPECT_TRUE(verify_record(record));
}

TEST(SolutionIO, CommentsAndBlankLinesTolerated) {
  const PartitionRequest req = log_request();
  const PartitionSolution sol = Partitioner::solve(req);
  std::string text = write_solution_record(req, sol);
  text.insert(text.find('\n') + 1, "# a comment line\n\n");
  EXPECT_TRUE(verify_record(read_solution_record(text)));
}

TEST(SolutionIO, RejectsMalformedInput) {
  EXPECT_THROW((void)read_solution_record(""), InvalidArgument);
  EXPECT_THROW((void)read_solution_record("wrong header\n"), InvalidArgument);
  EXPECT_THROW((void)read_solution_record("mempart-solution v1\nalpha 5,1\n"),
               InvalidArgument);  // missing fields
  const PartitionRequest req = log_request();
  const PartitionSolution sol = Partitioner::solve(req);
  std::string text = write_solution_record(req, sol);
  // Corrupt a number.
  const size_t pos = text.find("nf 13");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "nf 1x");
  EXPECT_THROW((void)read_solution_record(text), InvalidArgument);
}

TEST(SolutionIO, WriteRequiresPattern) {
  const PartitionSolution sol = Partitioner::solve(log_request());
  EXPECT_THROW((void)write_solution_record(PartitionRequest{}, sol),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart
