#include "core/bank_search.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/linear_transform.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

std::vector<Address> z_of(const Pattern& p) {
  return LinearTransform::derive(p).transform_values(p);
}

TEST(MinimizeBanks, LoGCaseStudy) {
  // §5.1: Q = {1..12, 14, 15, 16, 20}, N_f = 13.
  const BankSearchResult r = minimize_banks(z_of(patterns::log5x5()));
  EXPECT_EQ(r.num_banks, 13);
  EXPECT_EQ(r.max_difference, 20);
  EXPECT_EQ(r.difference_set,
            (std::vector<Count>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 15,
                                16, 20}));
  EXPECT_EQ(r.rejected_candidates, 0);  // N_f = m immediately
}

struct BankCase {
  const char* name;
  Count expected_banks;
};

class Table1BankNumber : public ::testing::TestWithParam<BankCase> {};

TEST_P(Table1BankNumber, MatchesPaper) {
  const auto& param = GetParam();
  for (const Pattern& p : patterns::table1_patterns()) {
    if (p.name() == param.name) {
      EXPECT_EQ(minimize_banks(z_of(p)).num_banks, param.expected_banks);
      return;
    }
  }
  FAIL() << "pattern not found: " << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table1BankNumber,
    ::testing::Values(BankCase{"LoG", 13}, BankCase{"Canny", 25},
                      BankCase{"Prewitt", 9}, BankCase{"SE", 5},
                      BankCase{"Sobel3D", 27}, BankCase{"Median", 8},
                      BankCase{"Gaussian", 13}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(MinimizeBanks, ResultIsConflictFree) {
  for (const Pattern& p : patterns::table1_patterns()) {
    const auto z = z_of(p);
    const BankSearchResult r = minimize_banks(z);
    EXPECT_TRUE(is_conflict_free_bank_count(z, r.num_banks)) << p.name();
  }
}

TEST(MinimizeBanks, ResultIsMinimalAboveM) {
  // No N in [m, N_f) may be conflict-free — N_f is the least feasible value.
  for (const Pattern& p : patterns::table1_patterns()) {
    const auto z = z_of(p);
    const BankSearchResult r = minimize_banks(z);
    for (Count n = p.size(); n < r.num_banks; ++n) {
      EXPECT_FALSE(is_conflict_free_bank_count(z, n))
          << p.name() << " N=" << n;
    }
  }
}

TEST(MinimizeBanks, SingleElement) {
  const BankSearchResult r = minimize_banks({42});
  EXPECT_EQ(r.num_banks, 1);
  EXPECT_TRUE(r.difference_set.empty());
}

TEST(MinimizeBanks, ContiguousRowNeedsExactlyM) {
  // z = {0..k-1}: every difference < k, so N_f = k.
  for (Count k = 2; k <= 12; ++k) {
    std::vector<Address> z;
    for (Count i = 0; i < k; ++i) z.push_back(i);
    EXPECT_EQ(minimize_banks(z).num_banks, k);
  }
}

TEST(MinimizeBanks, GapForcesExtraBank) {
  // z = {0, 1, 2, 3, 4, 5, 7}: m = 7 but 7 = |7-0| is in Q, so N_f = 8.
  const BankSearchResult r = minimize_banks({0, 1, 2, 3, 4, 5, 7});
  EXPECT_EQ(r.num_banks, 8);
  EXPECT_EQ(r.rejected_candidates, 1);
}

TEST(MinimizeBanks, MultipleOfCandidateAlsoRejects) {
  // z = {0, 9, 14}: m = 3; 3 divides 9 -> reject; 4: 8? no, diffs are
  // {9, 14, 5} -> 4 has multiples 8,12 not in Q... 4 is fine.
  const BankSearchResult r = minimize_banks({0, 9, 14});
  EXPECT_EQ(r.num_banks, 4);
}

TEST(MinimizeBanks, RejectsDuplicateValues) {
  EXPECT_THROW((void)minimize_banks({3, 3}), InvalidArgument);
}

TEST(MinimizeBanks, RejectsEmpty) {
  EXPECT_THROW((void)minimize_banks(std::vector<Address>{}), InvalidArgument);
}

TEST(IsConflictFree, NegativeValuesHandled) {
  // Differences are what matter; shifting z must not change the answer.
  const std::vector<Address> z{-5, -3, 0};
  const std::vector<Address> shifted{0, 2, 5};
  for (Count n = 3; n <= 8; ++n) {
    EXPECT_EQ(is_conflict_free_bank_count(z, n),
              is_conflict_free_bank_count(shifted, n));
  }
}

TEST(IsConflictFree, RejectsBadBankCount) {
  EXPECT_THROW((void)is_conflict_free_bank_count(std::vector<Address>{0, 1}, 0), InvalidArgument);
}

TEST(MinimizeBanks, LargeSpreadUsesDivisibilityFallback) {
  // M = 2^30 would make the dense existence table allocate a gigabyte per
  // solve; the fallback probes the deduplicated difference list instead and
  // must return the same minimal N_f. Q = {1, 2^30 - 1, 2^30}: N = 3 and
  // N = 4 each divide an element, N = 5 divides none.
  const std::vector<Address> z{0, 1, Count{1} << 30};
  const BankSearchResult r = minimize_banks(z);
  EXPECT_EQ(r.num_banks, 5);
  EXPECT_EQ(r.max_difference, Count{1} << 30);
  EXPECT_EQ(r.difference_set,
            (std::vector<Count>{1, (Count{1} << 30) - 1, Count{1} << 30}));
  EXPECT_TRUE(is_conflict_free_bank_count(z, r.num_banks));
  EXPECT_FALSE(is_conflict_free_bank_count(z, 4));
}

TEST(MinimizeBanks, FallbackAgreesWithTableOnTheBoundary) {
  // Same difference structure scaled to both sides of the 2^24 cutoff: the
  // two code paths must pick the same bank count.
  for (Count scale : {Count{1} << 20, Count{1} << 28}) {
    const std::vector<Address> z{0, 3 * scale, 7 * scale, 12 * scale};
    const BankSearchResult r = minimize_banks(z);
    EXPECT_TRUE(is_conflict_free_bank_count(z, r.num_banks)) << scale;
    for (Count n = static_cast<Count>(z.size()); n < r.num_banks; ++n) {
      EXPECT_FALSE(is_conflict_free_bank_count(z, n)) << scale << " N=" << n;
    }
  }
}

TEST(MinimizeBanks, HugeNegativeAndPositiveValuesDoNotWrap) {
  // The spread INT64_MAX - (INT64_MIN + 2) overflows; the pair pass must
  // raise the structured overflow error rather than feed a negative
  // "difference" into the search.
  EXPECT_THROW((void)minimize_banks({INT64_MIN + 2, 0, INT64_MAX}),
               OverflowError);
}

}  // namespace
}  // namespace mempart
