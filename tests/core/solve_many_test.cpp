// Property tests of the batched solver and the canonical cache: random
// translations and dimension permutations of corpus patterns must solve to
// the same bank counts and delta_P through the cache as directly, with the
// brute-force oracle (src/check) confirming the delta_P claim on the
// mapped variants.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "check/oracle.h"
#include "common/errors.h"
#include "core/partitioner.h"
#include "pattern/canonical.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

Pattern permuted(const Pattern& pattern, const std::vector<int>& perm) {
  std::vector<NdIndex> offsets = pattern.offsets();
  for (NdIndex& offset : offsets) {
    NdIndex reordered(offset.size());
    for (std::size_t d = 0; d < offset.size(); ++d) {
      reordered[d] = offset[static_cast<std::size_t>(perm[d])];
    }
    offset = std::move(reordered);
  }
  return Pattern(std::move(offsets));
}

NdIndex random_shift(std::mt19937& rng, int rank) {
  std::uniform_int_distribution<Coord> dist(-25, 25);
  NdIndex shift(static_cast<std::size_t>(rank));
  for (Coord& s : shift) s = dist(rng);
  return shift;
}

/// Random canonical-equal variants of `base`: a translation plus (half the
/// time) a dimension permutation.
std::vector<Pattern> random_variants(const Pattern& base, std::mt19937& rng,
                                     int count) {
  std::vector<Pattern> variants;
  std::vector<int> perm(static_cast<std::size_t>(base.rank()));
  for (int v = 0; v < count; ++v) {
    Pattern variant = base.translated(random_shift(rng, base.rank()));
    if (v % 2 == 1) {
      std::iota(perm.begin(), perm.end(), 0);
      std::shuffle(perm.begin(), perm.end(), rng);
      variant = permuted(variant, perm);
    }
    variants.push_back(std::move(variant));
  }
  return variants;
}

TEST(SolveMany, RandomVariantsShareBankCountAndDeltaThroughTheCache) {
  // The equivalence the cache keys on: translations are always canonical-
  // equal; a dimension permutation is canonical-equal exactly when the
  // canonicalizer identifies the two forms (always for distinct extents —
  // tied extents on an asymmetric pattern, like Median's transpose, are a
  // genuinely different closed-form problem and legitimately solve apart).
  // Canonical-equal variants must come back identical through the cache,
  // and EVERY variant — equal or not — must match its own direct solve.
  std::mt19937 rng(2024);
  std::vector<Pattern> corpus = patterns::table1_patterns();
  corpus.push_back(patterns::box2d(4));
  corpus.push_back(patterns::cross2d(3));
  corpus.push_back(patterns::atrous2d(3, 2));
  SolveCache cache(256);
  Partitioner cached(&cache);
  Count equivalent_variants = 0;
  for (const Pattern& base : corpus) {
    PartitionRequest request;
    request.pattern = base;
    const PartitionSolution expected = Partitioner::solve(request);
    for (const Pattern& variant : random_variants(base, rng, 6)) {
      PartitionRequest var_request;
      var_request.pattern = variant;
      const PartitionSolution got = cached.solve_cached(var_request);
      const PartitionSolution direct = Partitioner::solve(var_request);
      EXPECT_EQ(got.num_banks(), direct.num_banks()) << base.name();
      EXPECT_EQ(got.delta_ii(), direct.delta_ii()) << base.name();
      EXPECT_EQ(got.transform.alpha(), direct.transform.alpha())
          << base.name();
      EXPECT_EQ(got.pattern_banks, direct.pattern_banks) << base.name();
      if (!canonically_equal(base, variant)) continue;
      ++equivalent_variants;
      EXPECT_EQ(got.num_banks(), expected.num_banks()) << base.name();
      EXPECT_EQ(got.delta_ii(), expected.delta_ii()) << base.name();
      // Same multiset of per-offset banks: the variant relabels offsets.
      std::vector<Count> a = got.pattern_banks;
      std::vector<Count> b = expected.pattern_banks;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << base.name();
    }
  }
  // The translations alone guarantee most variants are equivalent, and each
  // equivalence class occupies one cache entry.
  EXPECT_GE(equivalent_variants, static_cast<Count>(3 * corpus.size()));
  const SolveCache::Stats stats = cache.stats();
  EXPECT_GE(stats.hits, equivalent_variants - static_cast<Count>(corpus.size()));
}

TEST(SolveMany, OracleConfirmsDeltaOnMappedVariants) {
  std::mt19937 rng(7);
  const std::vector<Pattern> corpus = {patterns::prewitt3x3(),
                                       patterns::structure_element(),
                                       patterns::roberts2x2()};
  SolveCache cache(64);
  Partitioner cached(&cache);
  const std::vector<Count> extents = {12, 10};
  for (const Pattern& base : corpus) {
    for (Pattern& variant : random_variants(base, rng, 4)) {
      variant = variant.normalized();
      PartitionRequest request;
      request.pattern = variant;
      request.array_shape = NdShape({extents[0] + variant.extent(0),
                                     extents[1] + variant.extent(1)});
      const PartitionSolution sol = cached.solve_cached(request);
      ASSERT_TRUE(sol.mapping.has_value());
      std::vector<std::vector<Coord>> offsets;
      for (const NdIndex& offset : variant.offsets()) {
        offsets.emplace_back(offset.begin(), offset.end());
      }
      const check::ConflictReport report = check::enumerate_conflicts(
          offsets, extents,
          [&](const std::vector<Coord>& x) { return sol.mapping->bank_of(x); });
      EXPECT_EQ(report.delta_p, sol.delta_ii()) << base.name();
    }
  }
}

TEST(SolveMany, ResultsComeBackInInputOrderAtEveryThreadCount) {
  std::mt19937 rng(99);
  std::vector<PartitionRequest> batch;
  for (const Pattern& base : patterns::table1_patterns()) {
    for (const Pattern& variant : random_variants(base, rng, 3)) {
      PartitionRequest request;
      request.pattern = variant;
      request.max_banks = batch.size() % 3 == 0 ? 8 : 0;
      batch.push_back(std::move(request));
    }
  }
  SolveCache cache(256);
  Partitioner cached(&cache);
  BatchOptions base_options;
  base_options.threads = 1;
  const std::vector<PartitionSolution> expected =
      cached.solve_many(batch, base_options);
  ASSERT_EQ(expected.size(), batch.size());
  for (const Count threads : {2, 4}) {
    for (const Count min_grain : {1, 4, 64}) {
      cache.clear();
      BatchOptions options;
      options.threads = threads;
      options.min_grain = min_grain;
      const std::vector<PartitionSolution> got =
          cached.solve_many(batch, options);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].transform.alpha(), expected[i].transform.alpha());
        EXPECT_EQ(got[i].num_banks(), expected[i].num_banks());
        EXPECT_EQ(got[i].delta_ii(), expected[i].delta_ii());
        EXPECT_EQ(got[i].transformed, expected[i].transformed);
        EXPECT_EQ(got[i].pattern_banks, expected[i].pattern_banks);
      }
    }
  }
}

TEST(SolveMany, DedupSolvesEachClassOnce) {
  SolveCache cache(64);
  Partitioner cached(&cache);
  std::vector<PartitionRequest> batch;
  for (Coord shift = 0; shift < 10; ++shift) {
    PartitionRequest request;
    request.pattern = patterns::log5x5().translated({shift, -shift});
    batch.push_back(std::move(request));
  }
  const std::vector<PartitionSolution> solutions = cached.solve_many(batch);
  ASSERT_EQ(solutions.size(), batch.size());
  for (const PartitionSolution& sol : solutions) {
    EXPECT_EQ(sol.num_banks(), solutions.front().num_banks());
  }
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);  // one canonical class -> one real solve
  EXPECT_EQ(stats.entries, 1);
}

TEST(SolveMany, CollectFlagsCacheHitsAsOfBatchStart) {
  SolveCache cache(64);
  Partitioner cached(&cache);
  std::vector<PartitionRequest> batch;
  for (Coord shift = 0; shift < 4; ++shift) {
    PartitionRequest request;
    request.pattern = patterns::log5x5().translated({shift, -shift});
    batch.push_back(std::move(request));
  }
  // Cold batch: the class wasn't cached when the batch started, so every
  // request — the one real solve AND its canonical duplicates — is a miss.
  for (const BatchResult& result : cached.solve_many_collect(batch)) {
    EXPECT_TRUE(result.ok());
    EXPECT_FALSE(result.cache_hit);
  }
  // Warm batch: the entry now pre-exists, so every request is a hit.
  for (const BatchResult& result : cached.solve_many_collect(batch)) {
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.cache_hit);
  }
  // Without a cache there is nothing to hit.
  Partitioner uncached(nullptr);
  for (const BatchResult& result : uncached.solve_many_collect(batch)) {
    EXPECT_FALSE(result.cache_hit);
  }
}

TEST(SolveMany, CollectReportsPerRequestErrors) {
  std::vector<PartitionRequest> batch(3);
  batch[0].pattern = patterns::prewitt3x3();
  batch[1].pattern = patterns::prewitt3x3();
  batch[1].array_shape = NdShape({8});  // rank mismatch
  batch[2].pattern = patterns::row1d(4);
  Partitioner cached;
  const std::vector<BatchResult> results = cached.solve_many_collect(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[1].error.empty());
  EXPECT_TRUE(results[2].ok());
}

TEST(SolveMany, ThrowingVariantNamesTheFirstBadRequest) {
  std::vector<PartitionRequest> batch(2);
  batch[0].pattern = patterns::prewitt3x3();
  // batch[1] has no pattern at all.
  Partitioner cached;
  try {
    (void)cached.solve_many(batch);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("request 1"), std::string::npos);
  }
}

TEST(SolveMany, EmptyBatchIsFine) {
  Partitioner cached;
  EXPECT_TRUE(cached.solve_many({}).empty());
  EXPECT_TRUE(cached.solve_many_collect({}).empty());
}

}  // namespace
}  // namespace mempart
