#include "core/verify.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/math_util.h"
#include "core/delta_ii.h"
#include "core/linear_transform.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

TEST(VerifyUniqueAddresses, AcceptsValidMapping) {
  const BankMapping m(NdShape({9, 11}),
                      LinearTransform::derive(patterns::log5x5()),
                      {.num_banks = 13});
  const VerifyResult r = verify_unique_addresses(m);
  EXPECT_TRUE(r);
  EXPECT_EQ(r.message, "all addresses unique");
}

TEST(MeasureDeltaII, ZeroForConflictFreeMapping) {
  const Pattern p = patterns::log5x5();
  const LinearTransform t = LinearTransform::derive(p);
  const auto bank_of = [&](const NdIndex& x) {
    return euclid_mod(t.apply(x), 13);
  };
  EXPECT_EQ(measure_delta_ii(p, NdShape({14, 16}), bank_of), 0);
}

TEST(MeasureDeltaII, MatchesAnalyticDeltaForSmallN) {
  // Brute force over all positions must equal the O(1) analytic value —
  // the position-invariance of §4.3.2 made observable.
  const Pattern p = patterns::log5x5();
  const LinearTransform t = LinearTransform::derive(p);
  const auto z = t.transform_values(p);
  for (Count n = 2; n <= 10; ++n) {
    const auto bank_of = [&](const NdIndex& x) {
      return euclid_mod(t.apply(x), n);
    };
    EXPECT_EQ(measure_delta_ii(p, NdShape({12, 13}), bank_of), delta_ii(z, n))
        << "N=" << n;
  }
}

TEST(MeasureDeltaII, SerialisedSingleBank) {
  const Pattern p = patterns::structure_element();
  const auto one_bank = [](const NdIndex&) { return Count{0}; };
  EXPECT_EQ(measure_delta_ii(p, NdShape({8, 8}), one_bank), p.size() - 1);
}

TEST(MeasureDeltaII, EmptyDomainYieldsZero) {
  const Pattern p = patterns::canny5x5();  // needs 5x5
  const auto bank_of = [](const NdIndex&) { return Count{0}; };
  EXPECT_EQ(measure_delta_ii(p, NdShape({4, 4}), bank_of), 0);
}

TEST(MeasureDeltaIISampled, AgreesWithExactForInvariantMappings) {
  // Linear-transform mappings have position-independent conflicts, so the
  // sample must find the same delta as the exhaustive sweep.
  const Pattern p = patterns::median7();
  const LinearTransform t = LinearTransform::derive(p);
  for (Count n : {3, 5, 7, 8}) {
    const auto bank_of = [&](const NdIndex& x) {
      return euclid_mod(t.apply(x), n);
    };
    const NdShape domain({20, 20});
    EXPECT_EQ(measure_delta_ii_sampled(p, domain, bank_of, 10),
              measure_delta_ii(p, domain, bank_of))
        << "N=" << n;
  }
}

TEST(MeasureDeltaIISampled, RejectsBadSampleCount) {
  const auto bank_of = [](const NdIndex&) { return Count{0}; };
  EXPECT_THROW((void)measure_delta_ii_sampled(patterns::median7(), NdShape({9, 9}),
                                        bank_of, 0),
               InvalidArgument);
}

TEST(VerifyUniqueAddresses, DetectsBrokenMapping) {
  // A deliberately broken "mapping": route everything to bank 0 offset 0 by
  // constructing a 1-bank mapping over a 1-element array, then check a
  // genuinely colliding variant cannot be expressed through BankMapping —
  // instead exercise the failure path via a tiny adversarial subclass-free
  // trick: two elements, one bank, capacity 1 is impossible through the real
  // type, so this documents that the library's own mappings always pass.
  const BankMapping honest(NdShape({5, 6}), LinearTransform({3, 1}),
                           {.num_banks = 4});
  EXPECT_TRUE(verify_unique_addresses(honest));
}

}  // namespace
}  // namespace mempart
