#include "core/advisor.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

std::vector<DesignPoint> explore_log(AdvisorOptions options = {}) {
  return explore_design_space(patterns::log5x5(), NdShape({640, 480}),
                              options);
}

TEST(Advisor, ReturnsAtLeastTheUnconstrainedPoints) {
  const auto points = explore_log();
  ASSERT_FALSE(points.empty());
  // The compact-tail unconstrained point (13 banks, 1 cycle, 0 overhead)
  // dominates the padded one, so the frontier contains 13/1/0.
  bool found = false;
  for (const DesignPoint& p : points) {
    if (p.banks == 13 && p.access_cycles == 1 && p.overhead_elements == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Advisor, FrontierIsMutuallyNonDominating) {
  const auto points = explore_log();
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(points[i].dominates(points[j]))
          << points[i].label << " dominates " << points[j].label;
    }
  }
}

TEST(Advisor, SortedByBankCount) {
  const auto points = explore_log();
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].banks, points[i].banks);
  }
}

TEST(Advisor, OffersFewerBankTrades) {
  // Somewhere on the frontier there must be a point with fewer banks than
  // N_f (paying cycles or bandwidth for it).
  const auto points = explore_log();
  bool cheaper = false;
  for (const DesignPoint& p : points) {
    if (p.banks < 13) cheaper = true;
  }
  EXPECT_TRUE(cheaper);
}

TEST(Advisor, BandwidthLevelAppearsOnFrontier) {
  AdvisorOptions options;
  options.max_bandwidth = 2;
  const auto points = explore_log(options);
  bool b2 = false;
  for (const DesignPoint& p : points) {
    // B = 2 gives 7 banks at 1 access cycle — undominated by any B = 1 point
    // with <= 7 banks (those need >= 2 cycles).
    if (p.banks == 7 && p.access_cycles == 1) b2 = true;
  }
  EXPECT_TRUE(b2);
}

TEST(Advisor, PointsReproduceViaTheirRequests) {
  for (const DesignPoint& p : explore_log()) {
    const PartitionSolution sol = Partitioner::solve(p.request);
    EXPECT_EQ(sol.num_banks(), p.banks) << p.label;
    EXPECT_EQ(sol.access_cycles(), p.access_cycles) << p.label;
    EXPECT_EQ(sol.storage_overhead_elements(), p.overhead_elements) << p.label;
  }
}

TEST(Advisor, IncludeDominatedKeepsMore) {
  AdvisorOptions all;
  all.include_dominated = true;
  EXPECT_GE(explore_log(all).size(), explore_log().size());
}

TEST(Advisor, DominanceIsStrict) {
  DesignPoint a;
  a.banks = 5;
  a.access_cycles = 1;
  a.overhead_elements = 0;
  DesignPoint b = a;
  EXPECT_FALSE(a.dominates(b));  // equal points do not dominate
  b.banks = 6;
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
}

TEST(Advisor, RejectsBadOptions) {
  AdvisorOptions bad;
  bad.max_bandwidth = 0;
  EXPECT_THROW(
      (void)explore_design_space(patterns::median7(), NdShape({9, 9}), bad),
      InvalidArgument);
}

TEST(Advisor, WorksOn3DPattern) {
  const auto points =
      explore_design_space(patterns::sobel3d(), NdShape({12, 12, 13}));
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points.back().access_cycles, 1);  // largest-bank point is 1-cycle
}

}  // namespace
}  // namespace mempart
