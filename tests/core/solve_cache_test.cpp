#include "core/solve_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "common/errors.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"
#include "support/alloc_counter.h"

namespace mempart {
namespace {

std::vector<std::int64_t> key_of(std::int64_t tag) {
  return {tag, tag + 1, tag + 2};
}

std::shared_ptr<const CachedSolve> dummy_value(Count banks) {
  auto value = std::make_shared<CachedSolve>();
  value->search.num_banks = banks;
  value->constraint.num_banks = banks;
  return value;
}

TEST(SolveCache, MissThenHit) {
  SolveCache cache(4, /*shards=*/1);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  cache.insert(key_of(1), dummy_value(5));
  const auto hit = cache.find(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->search.num_banks, 5);
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(SolveCache, EvictsLeastRecentlyUsed) {
  SolveCache cache(2, /*shards=*/1);
  cache.insert(key_of(1), dummy_value(1));
  cache.insert(key_of(2), dummy_value(2));
  // Touch key 1 so key 2 becomes the eviction victim.
  ASSERT_NE(cache.find(key_of(1)), nullptr);
  cache.insert(key_of(3), dummy_value(3));
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_EQ(cache.find(key_of(2)), nullptr);
  EXPECT_NE(cache.find(key_of(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(SolveCache, HitKeepsTheValueAliveAcrossEviction) {
  SolveCache cache(1, /*shards=*/1);
  cache.insert(key_of(1), dummy_value(7));
  const auto held = cache.find(key_of(1));
  cache.insert(key_of(2), dummy_value(8));  // evicts key 1
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->search.num_banks, 7);  // shared_ptr keeps it valid
}

TEST(SolveCache, ContainsPeeksWithoutCountingOrPromoting) {
  SolveCache cache(2, /*shards=*/1);
  EXPECT_FALSE(cache.contains(key_of(1)));
  cache.insert(key_of(1), dummy_value(1));
  cache.insert(key_of(2), dummy_value(2));
  EXPECT_TRUE(cache.contains(key_of(1)));
  // The peek neither registered a hit/miss nor refreshed recency: key 1 is
  // still the LRU victim when key 3 arrives.
  cache.insert(key_of(3), dummy_value(3));
  EXPECT_FALSE(cache.contains(key_of(1)));
  EXPECT_TRUE(cache.contains(key_of(2)));
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
}

TEST(SolveCache, ShardCountRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(SolveCache(16, 3).shard_count(), 4);
  EXPECT_EQ(SolveCache(16, 4).shard_count(), 4);
  // Shards never exceed capacity.
  EXPECT_EQ(SolveCache(2, 16).shard_count(), 2);
}

TEST(SolveCache, ClearDropsEntriesAndCounters) {
  SolveCache cache(4, /*shards=*/2);
  cache.insert(key_of(1), dummy_value(1));
  (void)cache.find(key_of(1));
  cache.clear();
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
}

TEST(SolveCache, HashKeyIsDeterministicAndKeySensitive) {
  EXPECT_EQ(SolveCache::hash_key(key_of(9)), SolveCache::hash_key(key_of(9)));
  EXPECT_NE(SolveCache::hash_key(key_of(9)), SolveCache::hash_key(key_of(10)));
}

TEST(SolveCache, CachedSolveMatchesDirectSolve) {
  SolveCache cache(64);
  Partitioner cached(&cache);
  for (const Pattern& pattern : patterns::table1_patterns()) {
    PartitionRequest request;
    request.pattern = pattern;
    const PartitionSolution direct = Partitioner::solve(request);
    const PartitionSolution miss = cached.solve_cached(request);
    const PartitionSolution hit = cached.solve_cached(request);
    for (const PartitionSolution* got : {&miss, &hit}) {
      EXPECT_EQ(got->transform.alpha(), direct.transform.alpha());
      EXPECT_EQ(got->num_banks(), direct.num_banks());
      EXPECT_EQ(got->delta_ii(), direct.delta_ii());
      EXPECT_EQ(got->transformed, direct.transformed);
      EXPECT_EQ(got->pattern_banks, direct.pattern_banks);
    }
    // A hit skips Algorithm 1, so it honestly reports fewer ops.
    EXPECT_LT(hit.ops.arithmetic(), direct.ops.arithmetic()) << pattern.name();
  }
  EXPECT_GE(cache.stats().hits, 7);
}

TEST(SolveCache, WarmShapelessSolveIntoAllocatesNothing) {
  SolveCache cache(64);
  Partitioner cached(&cache);
  PartitionRequest request;
  request.pattern = patterns::log5x5();
  PartitionSolution out;
  cached.solve_into(request, out);  // miss: populates cache and capacities
  cached.solve_into(request, out);  // warm once more for good measure
  const long before = testsupport::allocation_count();
  for (int i = 0; i < 100; ++i) cached.solve_into(request, out);
  const long after = testsupport::allocation_count();
  EXPECT_EQ(after - before, 0);
  EXPECT_EQ(out.num_banks(), 13);
}

TEST(SolveCache, GlobalCacheIsSharedByDefaultPartitioners) {
  Partitioner a;
  Partitioner b;
  EXPECT_EQ(a.cache(), &SolveCache::global());
  EXPECT_EQ(a.cache(), b.cache());
}

TEST(SolveCache, ReconfigureResizesAndDropsEntriesButKeepsCounters) {
  SolveCache cache(4, /*shards=*/1);
  cache.insert(key_of(1), dummy_value(1));
  (void)cache.find(key_of(1));
  (void)cache.find(key_of(2));  // miss
  cache.reconfigure(128, 2);
  EXPECT_EQ(cache.capacity(), 128);
  EXPECT_EQ(cache.shard_count(), 2);
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);  // drain-and-resize drops residents
  EXPECT_EQ(stats.hits, 1);     // history carries over
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  cache.insert(key_of(1), dummy_value(2));
  EXPECT_NE(cache.find(key_of(1)), nullptr);
}

TEST(SolveCache, ReconfigureRejectsABadSizeWithoutDisturbingTheTable) {
  SolveCache cache(16, 4);
  cache.insert(key_of(1), dummy_value(9));
  EXPECT_THROW(cache.reconfigure(0), InvalidArgument);
  // The failed swap left the live table (and its entries) intact.
  EXPECT_EQ(cache.capacity(), 16);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  // Shards are clamped to capacity on a legal reconfigure.
  cache.reconfigure(2, 16);
  EXPECT_EQ(cache.shard_count(), 2);
}

// TSan coverage: readers and writers keep hammering the cache while the
// main thread swaps the shard table underneath them. In-flight operations
// must complete against whichever table they loaded — no crash, no race,
// and every find() that returns non-null returns an intact value.
TEST(SolveCache, ReconfigureRacesFindAndInsert) {
  SolveCache cache(64, 4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&cache, &stop, t] {
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t tag = t * 1000 + (i % 97);
        cache.insert(key_of(tag), dummy_value(static_cast<Count>(t + 1)));
        const auto hit = cache.find(key_of(tag));
        if (hit != nullptr) {
          EXPECT_EQ(hit->search.num_banks, static_cast<Count>(t + 1));
        }
        ++i;
      }
    });
  }
  // Make sure the workers are actually running before the swaps start —
  // on a single-core box they may not be scheduled yet.
  while (cache.stats().insertions < 3) std::this_thread::yield();
  for (int round = 0; round < 50; ++round) {
    cache.reconfigure(32 + round % 3 * 32, 1 + round % 4);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  // Counters survived every swap: the pre-swap insertions are still there.
  const SolveCache::Stats stats = cache.stats();
  EXPECT_GE(stats.insertions, 3);
  EXPECT_EQ(cache.shard_count(), 2);  // last round: shards = 1 + 49 % 4
}

}  // namespace
}  // namespace mempart
