#include "core/linear_transform.h"

#include <gtest/gtest.h>

#include <set>

#include "common/errors.h"
#include "common/op_counter.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

TEST(LinearTransform, DeriveLoGGivesAlpha51) {
  // §5.1: D0 = 5, D1 = 5 => alpha = (D1, 1) = (5, 1).
  const LinearTransform t = LinearTransform::derive(patterns::log5x5());
  EXPECT_EQ(t.alpha(), (std::vector<Count>{5, 1}));
}

TEST(LinearTransform, DeriveSobel3dGivesMixedRadix) {
  // D = (3,3,3) => alpha = (D1*D2, D2, 1) = (9, 3, 1).
  const LinearTransform t = LinearTransform::derive(patterns::sobel3d());
  EXPECT_EQ(t.alpha(), (std::vector<Count>{9, 3, 1}));
}

TEST(LinearTransform, InnermostWeightIsAlwaysOne) {
  for (const Pattern& p : patterns::table1_patterns()) {
    const LinearTransform t = LinearTransform::derive(p);
    EXPECT_EQ(t.alpha().back(), 1) << p.name();
  }
}

TEST(LinearTransform, DeriveRank1) {
  const LinearTransform t = LinearTransform::derive(patterns::row1d(7));
  EXPECT_EQ(t.alpha(), (std::vector<Count>{1}));
}

TEST(LinearTransform, ApplyIsDotProduct) {
  const LinearTransform t({5, 1});
  EXPECT_EQ(t.apply({3, 4}), 19);
  EXPECT_EQ(t.apply({0, 0}), 0);
  EXPECT_EQ(t.apply({-1, 2}), -3);
  EXPECT_THROW((void)t.apply({1}), InvalidArgument);
}

TEST(LinearTransform, TransformValuesMatchSection51) {
  // §5.1: z = {14, 18, 19, ..., 29, 30, 34} for the (un-normalised) offsets.
  // Our library pattern is the §5.1 constellation shifted by (-2,-2), which
  // shifts every z by alpha.(2,2) = 12.
  const Pattern log = patterns::log5x5();
  const LinearTransform t = LinearTransform::derive(log);
  const std::vector<Address> z = t.transform_values(log.translated({2, 2}));
  EXPECT_EQ(z, (std::vector<Address>{14, 18, 19, 20, 22, 23, 24, 25, 26, 28,
                                     29, 30, 34}));
}

TEST(LinearTransform, TheoremOneDistinctnessOnAllBenchmarks) {
  for (const Pattern& p : patterns::table1_patterns()) {
    const LinearTransform t = LinearTransform::derive(p);
    const std::vector<Address> z = t.transform_values(p);
    const std::set<Address> unique(z.begin(), z.end());
    EXPECT_EQ(unique.size(), z.size()) << p.name();
  }
}

TEST(LinearTransform, TransformValuesRankMismatchThrows) {
  const LinearTransform t({5, 1});
  EXPECT_THROW((void)t.transform_values(patterns::sobel3d()), InvalidArgument);
}

TEST(LinearTransform, EmptyAlphaRejected) {
  EXPECT_THROW((void)LinearTransform(std::vector<Count>{}), InvalidArgument);
}

TEST(LinearTransform, DerivationChargesConstantOps) {
  // The derivation's arithmetic must not depend on the array size, and only
  // linearly on m and n — this is the "constant complexity" claim of §2.
  OpScope scope;
  (void)LinearTransform::derive(patterns::log5x5());
  const auto small = scope.tally().all();

  OpScope scope2;
  (void)LinearTransform::derive(patterns::canny5x5());
  const auto large = scope2.tally().all();

  // Both are tiny; the bigger pattern may charge more comparisons but stays
  // within the same order of magnitude.
  EXPECT_LT(small, 200);
  EXPECT_LT(large, 300);
}

TEST(LinearTransform, ToString) {
  EXPECT_EQ(LinearTransform({5, 1}).to_string(), "alpha=(5, 1)");
}

TEST(LinearTransform, ApplyRaisesOverflowErrorInsteadOfWrapping) {
  // alpha . x with alpha_0 near 2^62 and x_0 = 4 overflows int64; before
  // the fix this wrapped silently and produced a garbage bank index.
  const LinearTransform t({Count{1} << 62, 1});
  EXPECT_EQ(t.apply({1, 5}), (Count{1} << 62) + 5);
  EXPECT_THROW((void)t.apply({4, 0}), OverflowError);
  // Accumulation overflow, not just a single product: two huge terms.
  const LinearTransform sum({Count{1} << 62, Count{1} << 62});
  EXPECT_THROW((void)sum.apply({1, 1}), OverflowError);
}

TEST(LinearTransform, DeriveRaisesOverflowErrorOnHugePatterns) {
  // Suffix products alpha_j = prod_{k>j} D_k blow past 64 bits for a
  // pattern spanning 2^40 in three trailing dimensions.
  const Coord reach = Coord{1} << 40;
  const Pattern huge({{0, 0, 0, 0}, {0, reach, reach, reach}}, "huge");
  try {
    (void)LinearTransform::derive(huge);
    FAIL() << "derive must overflow";
  } catch (const OverflowError& e) {
    EXPECT_NE(std::string(e.what()).find("overflows 64 bits"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mempart
