// Property-based sweeps over randomly generated patterns and array shapes.
//
// These are the strongest correctness evidence in the suite: for hundreds of
// random (pattern, shape, options) draws they brute-force the paper's
// claims — Theorem 1 distinctness, Algorithm 1 feasibility and minimality,
// delta_P position-invariance, and (B, F) address uniqueness — against the
// definitions, with no shared code path between the claim and the check.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/math_util.h"
#include "common/random.h"
#include "core/bank_search.h"
#include "core/delta_ii.h"
#include "core/partitioner.h"
#include "core/verify.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  int rank;
  Count box;  ///< bounding box extent per dimension
  Count m;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.rank) +
         "_box" + std::to_string(p.box) + "_m" + std::to_string(p.m);
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  std::uint64_t seed = 1000;
  for (int rank : {1, 2, 3}) {
    for (Count box : {3, 4, 5, 6, 7}) {
      Count volume = 1;
      for (int d = 0; d < rank; ++d) volume *= box;
      for (Count m : {Count{2}, volume / 3, 2 * volume / 3}) {
        if (m < 2 || m > volume) continue;
        cases.push_back({seed++, rank, box, m});
      }
    }
  }
  return cases;
}

class RandomPatternProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  Pattern make_pattern() const {
    const auto& p = GetParam();
    Rng rng(p.seed);
    std::vector<Count> box(static_cast<size_t>(p.rank), p.box);
    return patterns::random_pattern(rng, box, p.m);
  }
};

TEST_P(RandomPatternProperty, TheoremOneDistinctTransformValues) {
  const Pattern pattern = make_pattern();
  const LinearTransform t = LinearTransform::derive(pattern);
  const auto z = t.transform_values(pattern);
  const std::set<Address> unique(z.begin(), z.end());
  EXPECT_EQ(unique.size(), z.size());
}

TEST_P(RandomPatternProperty, AlgorithmOneFeasibleAndMinimal) {
  const Pattern pattern = make_pattern();
  const auto z = LinearTransform::derive(pattern).transform_values(pattern);
  const BankSearchResult r = minimize_banks(z);
  EXPECT_GE(r.num_banks, pattern.size());
  EXPECT_TRUE(is_conflict_free_bank_count(z, r.num_banks));
  for (Count n = pattern.size(); n < r.num_banks; ++n) {
    EXPECT_FALSE(is_conflict_free_bank_count(z, n)) << "N=" << n;
  }
}

TEST_P(RandomPatternProperty, MeasuredDeltaMatchesAnalytic) {
  const Pattern pattern = make_pattern();
  const LinearTransform t = LinearTransform::derive(pattern);
  const auto z = t.transform_values(pattern);
  // Domain comfortably larger than the pattern in every dimension.
  std::vector<Count> extents;
  for (int d = 0; d < pattern.rank(); ++d) {
    extents.push_back(pattern.extent(d) + 6);
  }
  const NdShape domain(extents);
  for (Count n : {Count{2}, Count{3}, pattern.size(), pattern.size() + 3}) {
    const auto bank_of = [&](const NdIndex& x) {
      return euclid_mod(t.apply(x), n);
    };
    EXPECT_EQ(measure_delta_ii(pattern, domain, bank_of), delta_ii(z, n))
        << "N=" << n;
  }
}

TEST_P(RandomPatternProperty, SolvedMappingHasUniqueAddresses) {
  const Pattern pattern = make_pattern();
  // A small array with an innermost extent that is NOT a multiple of the
  // bank count, so the tail path is exercised.
  std::vector<Count> extents(static_cast<size_t>(pattern.rank()), 0);
  for (int d = 0; d < pattern.rank(); ++d) {
    extents[static_cast<size_t>(d)] = pattern.extent(d) + 4;
  }
  extents.back() += 3;

  for (TailPolicy tail : {TailPolicy::kPadded, TailPolicy::kCompact}) {
    PartitionRequest req;
    req.pattern = pattern;
    req.array_shape = NdShape(extents);
    req.tail = tail;
    const PartitionSolution sol = Partitioner::solve(req);
    ASSERT_TRUE(sol.mapping.has_value());
    const VerifyResult r = verify_unique_addresses(*sol.mapping);
    EXPECT_TRUE(r) << r.message;
    if (tail == TailPolicy::kCompact) {
      EXPECT_EQ(sol.mapping->storage_overhead_elements(), 0);
    }
  }
}

TEST_P(RandomPatternProperty, FoldedSolutionRespectsDeltaBound) {
  const Pattern pattern = make_pattern();
  if (pattern.size() < 3) GTEST_SKIP() << "folding needs m >= 3";
  PartitionRequest req;
  req.pattern = pattern;
  req.max_banks = pattern.size() / 2 + 1;
  req.strategy = ConstraintStrategy::kFastFold;
  const PartitionSolution sol = Partitioner::solve(req);
  EXPECT_LE(sol.num_banks(), req.max_banks);
  // Measured worst-case conflicts must not exceed the fold bound F - 1.
  std::vector<Count> histogram(static_cast<size_t>(sol.num_banks()), 0);
  for (Count b : sol.pattern_banks) ++histogram[static_cast<size_t>(b)];
  Count worst = 0;
  for (Count h : histogram) worst = std::max(worst, h);
  EXPECT_LE(worst - 1, sol.constraint.fold_factor - 1);
}

TEST_P(RandomPatternProperty, SameSizeSweepIsConsistent) {
  const Pattern pattern = make_pattern();
  const auto z = LinearTransform::derive(pattern).transform_values(pattern);
  PartitionRequest req;
  req.pattern = pattern;
  req.max_banks = std::max<Count>(1, pattern.size() - 1);
  req.strategy = ConstraintStrategy::kSameSize;
  const PartitionSolution sol = Partitioner::solve(req);
  ASSERT_FALSE(sol.constraint.sweep.empty());
  // The chosen N really achieves the sweep minimum.
  Count best = sol.constraint.sweep.front();
  for (Count d : sol.constraint.sweep) best = std::min(best, d);
  EXPECT_EQ(sol.delta_ii(), best);
  EXPECT_EQ(sol.constraint.sweep[static_cast<size_t>(sol.num_banks() - 1)],
            best);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPatternProperty,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace mempart
