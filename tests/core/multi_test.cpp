#include "core/multi.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

ArrayAccess access(const std::string& name, Pattern p,
                   std::optional<NdShape> shape = std::nullopt,
                   Count max_banks = 0) {
  ArrayAccess a;
  a.name = name;
  a.request.pattern = std::move(p);
  a.request.array_shape = std::move(shape);
  a.request.max_banks = max_banks;
  return a;
}

TEST(MultiPartition, TwoArraysIndependentBanks) {
  const MultiPartitionResult r = partition_arrays({
      access("image", patterns::log5x5(), NdShape({640, 480})),
      access("guide", patterns::structure_element(), NdShape({640, 480})),
  });
  ASSERT_EQ(r.arrays.size(), 2u);
  EXPECT_EQ(r.arrays[0].name, "image");
  EXPECT_EQ(r.arrays[0].solution.num_banks(), 13);
  EXPECT_EQ(r.arrays[1].solution.num_banks(), 5);
  EXPECT_EQ(r.total_banks(), 18);
  EXPECT_EQ(r.access_cycles(), 1);
  // 640-wide overheads: LoG 640 elements, SE 0 (480 divisible by 5).
  EXPECT_EQ(r.total_overhead_elements(), 640);
}

TEST(MultiPartition, SlowestArrayGatesTheBody) {
  auto capped = access("big", patterns::log5x5(), std::nullopt, 10);
  const MultiPartitionResult r = partition_arrays({
      access("fast", patterns::structure_element()),
      capped,
  });
  EXPECT_EQ(r.arrays[0].solution.access_cycles(), 1);
  EXPECT_EQ(r.arrays[1].solution.access_cycles(), 2);
  EXPECT_EQ(r.access_cycles(), 2);
}

TEST(MultiPartition, OpsAccumulate) {
  const MultiPartitionResult r = partition_arrays({
      access("a", patterns::median7()),
      access("b", patterns::gaussian9()),
  });
  EXPECT_EQ(r.total_ops().arithmetic(),
            r.arrays[0].solution.ops.arithmetic() +
                r.arrays[1].solution.ops.arithmetic());
  EXPECT_GT(r.total_ops().arithmetic(), 0);
}

TEST(MultiPartition, MixedRanksSupported) {
  const MultiPartitionResult r = partition_arrays({
      access("frame", patterns::canny5x5(), NdShape({64, 50})),
      access("volume", patterns::sobel3d(), NdShape({16, 16, 11})),
  });
  EXPECT_EQ(r.arrays[0].solution.num_banks(), 25);
  EXPECT_EQ(r.arrays[1].solution.num_banks(), 27);
  EXPECT_GT(r.total_overhead_elements(), 0);
}

TEST(MultiPartition, RejectsEmptyAndPropagatesErrors) {
  EXPECT_THROW((void)partition_arrays({}), InvalidArgument);
  ArrayAccess bad;
  bad.name = "no pattern";
  EXPECT_THROW((void)partition_arrays({bad}), InvalidArgument);
}

}  // namespace
}  // namespace mempart
