#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <set>

#include "common/errors.h"
#include "core/verify.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

PartitionRequest request_for(Pattern p) {
  PartitionRequest req;
  req.pattern = std::move(p);
  return req;
}

TEST(Partitioner, RequiresPattern) {
  EXPECT_THROW((void)Partitioner::solve(PartitionRequest{}), InvalidArgument);
}

TEST(Partitioner, RejectsRankMismatch) {
  PartitionRequest req = request_for(patterns::log5x5());
  req.array_shape = NdShape({8});
  EXPECT_THROW((void)Partitioner::solve(req), InvalidArgument);
}

TEST(Partitioner, UnconstrainedLoG) {
  const PartitionSolution sol =
      Partitioner::solve(request_for(patterns::log5x5()));
  EXPECT_EQ(sol.num_banks(), 13);
  EXPECT_EQ(sol.delta_ii(), 0);
  EXPECT_EQ(sol.access_cycles(), 1);
  EXPECT_EQ(sol.transform.alpha(), (std::vector<Count>{5, 1}));
  EXPECT_FALSE(sol.mapping.has_value());
  EXPECT_GT(sol.ops.arithmetic(), 0);
}

TEST(Partitioner, PatternBanksAllDistinctWhenDeltaZero) {
  for (const Pattern& p : patterns::table1_patterns()) {
    const PartitionSolution sol = Partitioner::solve(request_for(p));
    const std::set<Count> unique(sol.pattern_banks.begin(),
                                 sol.pattern_banks.end());
    EXPECT_EQ(static_cast<Count>(unique.size()), p.size()) << p.name();
    for (Count b : sol.pattern_banks) {
      EXPECT_GE(b, 0);
      EXPECT_LT(b, sol.num_banks());
    }
  }
}

TEST(Partitioner, UnnormalisedPatternGivesSameSolution) {
  // Patterns expressed around a centre (negative offsets) must solve
  // identically to their normalised form.
  const Pattern centered = patterns::log5x5().translated({-2, -2});
  const PartitionSolution a = Partitioner::solve(request_for(centered));
  const PartitionSolution b =
      Partitioner::solve(request_for(patterns::log5x5()));
  EXPECT_EQ(a.num_banks(), b.num_banks());
  EXPECT_EQ(a.transform, b.transform);
  EXPECT_EQ(a.pattern_banks, b.pattern_banks);
}

TEST(Partitioner, FastFoldLoGNmax10) {
  PartitionRequest req = request_for(patterns::log5x5());
  req.max_banks = 10;
  req.strategy = ConstraintStrategy::kFastFold;
  const PartitionSolution sol = Partitioner::solve(req);
  EXPECT_EQ(sol.num_banks(), 7);
  EXPECT_EQ(sol.constraint.fold_factor, 2);
  EXPECT_EQ(sol.delta_ii(), 1);
  EXPECT_EQ(sol.access_cycles(), 2);
  // At most 2 pattern elements share any folded bank.
  std::vector<Count> histogram(7, 0);
  for (Count b : sol.pattern_banks) ++histogram[static_cast<size_t>(b)];
  for (Count h : histogram) EXPECT_LE(h, 2);
}

TEST(Partitioner, SameSizeLoGNmax10) {
  PartitionRequest req = request_for(patterns::log5x5());
  req.max_banks = 10;
  req.strategy = ConstraintStrategy::kSameSize;
  const PartitionSolution sol = Partitioner::solve(req);
  EXPECT_EQ(sol.num_banks(), 7);
  EXPECT_EQ(sol.delta_ii(), 1);
  ASSERT_EQ(sol.constraint.sweep.size(), 10u);
}

TEST(Partitioner, NmaxAboveNfIsNoOp) {
  for (auto strategy :
       {ConstraintStrategy::kFastFold, ConstraintStrategy::kSameSize}) {
    PartitionRequest req = request_for(patterns::median7());
    req.max_banks = 100;
    req.strategy = strategy;
    const PartitionSolution sol = Partitioner::solve(req);
    EXPECT_EQ(sol.num_banks(), 8);
    EXPECT_EQ(sol.delta_ii(), 0);
  }
}

TEST(Partitioner, MappingBuiltAndConsistent) {
  PartitionRequest req = request_for(patterns::log5x5());
  req.array_shape = NdShape({12, 15});
  const PartitionSolution sol = Partitioner::solve(req);
  ASSERT_TRUE(sol.mapping.has_value());
  EXPECT_EQ(sol.mapping->num_banks(), 13);
  EXPECT_TRUE(verify_unique_addresses(*sol.mapping));
  EXPECT_EQ(sol.storage_overhead_elements(),
            sol.mapping->storage_overhead_elements());
}

TEST(Partitioner, MappingBankIndicesMatchPatternBanks) {
  // For an unfolded solution, "these two offsets share a bank" is invariant
  // under the position shift alpha.s, so the solution's per-offset banks
  // must reproduce the mapping's collision structure at every position.
  const Pattern pattern = patterns::log5x5();
  PartitionRequest req = request_for(pattern);
  req.array_shape = NdShape({16, 16});
  const PartitionSolution sol = Partitioner::solve(req);
  ASSERT_TRUE(sol.mapping.has_value());
  for (const NdIndex& s : {NdIndex{4, 5}, NdIndex{0, 0}, NdIndex{9, 3}}) {
    const auto elements = pattern.at(s);
    for (size_t i = 0; i < elements.size(); ++i) {
      for (size_t j = i + 1; j < elements.size(); ++j) {
        const bool same_solution =
            sol.pattern_banks[i] == sol.pattern_banks[j];
        const bool same_mapping = sol.mapping->bank_of(elements[i]) ==
                                  sol.mapping->bank_of(elements[j]);
        EXPECT_EQ(same_solution, same_mapping) << i << "," << j;
      }
    }
  }
}

TEST(Partitioner, FoldedMappingRespectsDeltaBoundAtEveryPosition) {
  // Folded solutions do NOT preserve the exact same-bank relation across
  // positions (the double modulo shifts which raw banks coincide), but the
  // guarantee delta_P <= F - 1 must hold everywhere.
  const Pattern pattern = patterns::log5x5();
  PartitionRequest req = request_for(pattern);
  req.array_shape = NdShape({24, 26});
  req.max_banks = 10;
  req.strategy = ConstraintStrategy::kFastFold;
  const PartitionSolution sol = Partitioner::solve(req);
  ASSERT_TRUE(sol.mapping.has_value());
  for (Coord s0 = 0; s0 < 16; ++s0) {
    for (Coord s1 = 0; s1 < 16; ++s1) {
      std::vector<Count> histogram(static_cast<size_t>(sol.num_banks()), 0);
      for (const NdIndex& x : pattern.at({s0, s1})) {
        ++histogram[static_cast<size_t>(sol.mapping->bank_of(x))];
      }
      for (Count h : histogram) {
        EXPECT_LE(h, sol.constraint.fold_factor) << s0 << "," << s1;
      }
    }
  }
}

TEST(Partitioner, StorageOverheadThrowsWithoutMapping) {
  const PartitionSolution sol =
      Partitioner::solve(request_for(patterns::structure_element()));
  EXPECT_THROW((void)sol.storage_overhead_elements(), InvalidArgument);
}

TEST(Partitioner, CompactTailSolution) {
  PartitionRequest req = request_for(patterns::structure_element());
  req.array_shape = NdShape({9, 11});
  req.tail = TailPolicy::kCompact;
  const PartitionSolution sol = Partitioner::solve(req);
  ASSERT_TRUE(sol.mapping.has_value());
  EXPECT_EQ(sol.storage_overhead_elements(), 0);
  EXPECT_TRUE(verify_unique_addresses(*sol.mapping));
}

TEST(Partitioner, SummaryMentionsKeyFigures) {
  PartitionRequest req = request_for(patterns::log5x5());
  req.max_banks = 10;
  const std::string s = Partitioner::solve(req).summary();
  EXPECT_NE(s.find("banks=7"), std::string::npos);
  EXPECT_NE(s.find("F=2"), std::string::npos);
}

TEST(Partitioner, SingleTapPatternSolvesTrivially) {
  // m = 1: one access per cycle can never conflict. N_f = 1, delta_P = 0,
  // and the mapping must place every element of the array uniquely.
  PartitionRequest req = request_for(Pattern({{0, 0}}, "point"));
  req.array_shape = NdShape({6, 7});
  const PartitionSolution sol = Partitioner::solve(req);
  EXPECT_EQ(sol.num_banks(), 1);
  EXPECT_EQ(sol.delta_ii(), 0);
  ASSERT_TRUE(sol.mapping.has_value());
  EXPECT_TRUE(verify_unique_addresses(*sol.mapping));
}

TEST(Partitioner, DuplicateOffsetsAreRejectedAtPatternConstruction) {
  EXPECT_THROW((void)Pattern({{0, 0}, {1, 1}, {0, 0}}, "dup"),
               InvalidArgument);
}

TEST(Partitioner, ZeroExtentArrayIsRejectedAtShapeConstruction) {
  EXPECT_THROW((void)NdShape({8, 0}), InvalidArgument);
}

TEST(Partitioner, OverflowingArrayRejectsWithStructuredError) {
  // A 2^40-cubed array overflows the volume product already at NdShape
  // construction; the error must be the structured OverflowError, never a
  // silent wrap into a bogus but plausible-looking shape.
  EXPECT_THROW(
      (void)NdShape({Count{1} << 40, Count{1} << 40, Count{1} << 40}),
      OverflowError);
  // A pattern spanning 2^40 in three dimensions overflows the alpha_j
  // suffix products; the same structured error must come out of solve().
  const Coord reach = Coord{1} << 40;
  PartitionRequest req =
      request_for(Pattern({{0, 0, 0, 0}, {0, reach, reach, reach}}, "huge"));
  EXPECT_THROW((void)Partitioner::solve(req), OverflowError);
}

}  // namespace
}  // namespace mempart
