// Differential coverage of the tier-dispatched minimize_banks kernels:
// every simd tier the host supports must return results structurally
// identical to the scalar tier on the same inputs — num_banks,
// max_difference, rejected_candidates and the diagnostics difference_set.
// The inputs deliberately cover the seams of the engine: the fuzz
// generator's degenerate and overflow classes, the 2^24 dense-table
// boundary (one below, at, and one above — the sorted-fallback handover),
// tap counts straddling the vector width, and the error paths (duplicate
// values, overflowing spreads), which must throw identically on every
// tier.
#include "core/bank_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "check/generator.h"
#include "common/errors.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/linear_transform.h"
#include "pattern/pattern.h"

namespace mempart {
namespace {

BankSearchResult solve_at(simd::Tier tier, const std::vector<Address>& z) {
  simd::TierOverride override(tier);
  BankSearchScratch scratch;
  return minimize_banks(z, /*collect_diagnostics=*/true, &scratch);
}

void expect_tiers_agree(const std::vector<Address>& z,
                        const std::string& label) {
  const BankSearchResult want = solve_at(simd::Tier::kScalar, z);
  for (const simd::Tier tier : simd::supported_tiers()) {
    if (tier == simd::Tier::kScalar) continue;
    const BankSearchResult got = solve_at(tier, z);
    EXPECT_EQ(got.num_banks, want.num_banks)
        << label << " tier " << simd::tier_name(tier);
    EXPECT_EQ(got.max_difference, want.max_difference)
        << label << " tier " << simd::tier_name(tier);
    EXPECT_EQ(got.rejected_candidates, want.rejected_candidates)
        << label << " tier " << simd::tier_name(tier);
    EXPECT_EQ(got.difference_set, want.difference_set)
        << label << " tier " << simd::tier_name(tier);
  }
}

TEST(BankSearchSimd, TapCountsStraddlingTheVectorWidth) {
  // m = 2..10 exercises every kernel tail length around the 2- and 4-lane
  // widths; offsets are irregular so diffs don't collapse to one value.
  std::vector<Address> z;
  for (Count m = 2; m <= 10; ++m) {
    z.clear();
    for (Count i = 0; i < m; ++i) z.push_back(i * i * 3 + i);
    expect_tiers_agree(z, "m=" + std::to_string(m));
  }
}

TEST(BankSearchSimd, DenseTableBoundary) {
  // Spreads one below, at, and one above kMaxTableDiff = 2^24: the first
  // two run the packed-bitset path, the last the sorted-fallback
  // divisibility probe. All three must agree across tiers.
  const Count boundary = Count{1} << 24;
  for (const Count spread : {boundary - 1, boundary, boundary + 1}) {
    std::vector<Address> z = {0, 3, 7, 1000, spread};
    expect_tiers_agree(z, "spread=" + std::to_string(spread));
  }
}

TEST(BankSearchSimd, FallbackRegimeWideSpreads) {
  Rng rng(0xd1ff);
  for (int round = 0; round < 20; ++round) {
    std::vector<Address> z;
    const Count m = rng.uniform(2, 24);
    while (static_cast<Count>(z.size()) < m) {
      const Address v = rng.uniform(0, Count{1} << 40);
      if (std::find(z.begin(), z.end(), v) == z.end()) z.push_back(v);
    }
    expect_tiers_agree(z, "fallback round " + std::to_string(round));
  }
}

TEST(BankSearchSimd, GeneratorClassesIncludingDegenerateAndOverflow) {
  // The fuzz generator's config classes, degenerate and overflow draws
  // included. Configs whose z values collide or whose spread overflows
  // must throw the same error class on every tier; valid ones must agree
  // structurally.
  Rng rng(0xc0de);
  check::GeneratorOptions options;
  options.degenerate_rate = 0.3;
  options.overflow_rate = 0.2;
  int checked = 0;
  for (int round = 0; round < 300 && checked < 120; ++round) {
    const check::CheckConfig config = check::generate_config(rng, options);
    if (config.offsets.empty()) continue;
    std::vector<Address> z;
    try {
      const Pattern pattern(config.offsets);
      z = LinearTransform::derive(pattern).transform_values(pattern);
    } catch (const Error&) {
      continue;  // invalid pattern (duplicate offsets, zero extents, ...)
    }
    if (z.size() < 2) continue;

    // Classify on scalar, then demand the same outcome per tier.
    enum class Outcome { kOk, kInvalid, kOverflow };
    auto run = [&](simd::Tier tier, BankSearchResult& out) {
      try {
        out = solve_at(tier, z);
        return Outcome::kOk;
      } catch (const OverflowError&) {
        return Outcome::kOverflow;
      } catch (const InvalidArgument&) {
        return Outcome::kInvalid;
      }
    };
    BankSearchResult want;
    const Outcome expected = run(simd::Tier::kScalar, want);
    for (const simd::Tier tier : simd::supported_tiers()) {
      if (tier == simd::Tier::kScalar) continue;
      BankSearchResult got;
      const Outcome outcome = run(tier, got);
      ASSERT_EQ(static_cast<int>(outcome), static_cast<int>(expected))
          << config.note << " tier " << simd::tier_name(tier);
      if (outcome == Outcome::kOk) {
        EXPECT_EQ(got.num_banks, want.num_banks) << config.note;
        EXPECT_EQ(got.difference_set, want.difference_set) << config.note;
        EXPECT_EQ(got.rejected_candidates, want.rejected_candidates)
            << config.note;
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 60);  // the generator must actually feed the test
}

TEST(BankSearchSimd, DuplicateValuesThrowOnEveryTier) {
  const std::vector<Address> z = {4, 9, 4, 17};
  for (const simd::Tier tier : simd::supported_tiers()) {
    simd::TierOverride override(tier);
    EXPECT_THROW((void)minimize_banks(z, false, nullptr), InvalidArgument)
        << simd::tier_name(tier);
  }
}

TEST(BankSearchSimd, OverflowingSpreadThrowsOnEveryTier) {
  const std::vector<Address> z = {std::numeric_limits<Address>::min(), 0,
                                  std::numeric_limits<Address>::max()};
  for (const simd::Tier tier : simd::supported_tiers()) {
    simd::TierOverride override(tier);
    EXPECT_THROW((void)minimize_banks(z, false, nullptr), OverflowError)
        << simd::tier_name(tier);
  }
}

TEST(BankSearchSimd, ScratchReuseAcrossRegimesIsClean) {
  // One scratch, alternating dense-table and fallback solves: stale bits
  // or diffs from the previous regime must never leak into the next.
  BankSearchScratch scratch;
  const std::vector<Address> dense = {0, 1, 2, 3, 10};
  std::vector<Address> wide = {0, 5, Count{1} << 30};
  for (const simd::Tier tier : simd::supported_tiers()) {
    simd::TierOverride override(tier);
    for (int round = 0; round < 3; ++round) {
      const BankSearchResult a = minimize_banks(dense, true, &scratch);
      const BankSearchResult b = minimize_banks(wide, true, &scratch);
      EXPECT_EQ(a.num_banks, minimize_banks(dense, true, nullptr).num_banks);
      EXPECT_EQ(b.num_banks, minimize_banks(wide, true, nullptr).num_banks);
      EXPECT_EQ(a.difference_set,
                minimize_banks(dense, true, nullptr).difference_set);
      EXPECT_EQ(b.difference_set,
                minimize_banks(wide, true, nullptr).difference_set);
    }
  }
}

}  // namespace
}  // namespace mempart
