#include "core/delta_ii.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

std::vector<Address> log_z() {
  const Pattern p = patterns::log5x5();
  return LinearTransform::derive(p).transform_values(p);
}

TEST(DeltaII, CaseStudyTableSection51) {
  // §5.1: delta_P|N + 1 for N = 1..10 is {13, 9, 5, 6, 5, 3, 2, 3, 2, 3}.
  const std::vector<Count> expected_plus_one{13, 9, 5, 6, 5, 3, 2, 3, 2, 3};
  const auto z = log_z();
  for (Count n = 1; n <= 10; ++n) {
    EXPECT_EQ(delta_ii(z, n) + 1, expected_plus_one[static_cast<size_t>(n - 1)])
        << "N=" << n;
  }
}

TEST(DeltaII, ZeroAtConflictFreeBankCount) {
  const auto z = log_z();
  EXPECT_EQ(delta_ii(z, 13), 0);
}

TEST(DeltaII, OneBankSerialisesEverything) {
  EXPECT_EQ(delta_ii(log_z(), 1), 12);  // m - 1
}

TEST(DeltaII, PatternOverloadMatchesZOverload) {
  const Pattern p = patterns::gaussian9();
  const LinearTransform t = LinearTransform::derive(p);
  const auto z = t.transform_values(p);
  for (Count n = 1; n <= 15; ++n) {
    EXPECT_EQ(delta_ii(p, t, n), delta_ii(z, n));
  }
}

TEST(DeltaII, TranslationInvariant) {
  // delta_P must not depend on the position offset s (§4.3.2): adding
  // alpha.s to every z leaves the collision profile unchanged.
  const auto z = log_z();
  std::vector<Address> shifted;
  for (Address v : z) shifted.push_back(v + 1234);
  for (Count n = 1; n <= 20; ++n) {
    EXPECT_EQ(delta_ii(z, n), delta_ii(shifted, n)) << "N=" << n;
  }
}

TEST(DeltaII, RejectsBadArguments) {
  EXPECT_THROW((void)delta_ii(std::vector<Address>{}, 3), InvalidArgument);
  EXPECT_THROW((void)delta_ii(log_z(), 0), InvalidArgument);
}

TEST(BankIndices, LoGThirteenBanksMatchSection51) {
  // §5.1: bank indexes {1,5,6,7,9,10,11,12,0,2,3,4,8} in offset order.
  const Pattern log = patterns::log5x5().translated({2, 2});
  const auto z = LinearTransform::derive(log).transform_values(log);
  EXPECT_EQ(bank_indices(z, 13),
            (std::vector<Count>{1, 5, 6, 7, 9, 10, 11, 12, 0, 2, 3, 4, 8}));
}

TEST(BankIndices, NegativeTransformValuesStayNonNegative) {
  const auto banks = bank_indices(std::vector<Address>{-1, -14, 3}, 5);
  for (Count b : banks) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 5);
  }
  EXPECT_EQ(banks, (std::vector<Count>{4, 1, 3}));
}

}  // namespace
}  // namespace mempart
