#include "core/bank_constraint.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/bank_search.h"
#include "core/delta_ii.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

std::vector<Address> z_of(const Pattern& p) {
  return LinearTransform::derive(p).transform_values(p);
}

TEST(ConstrainFast, UnconstrainedWhenNfFits) {
  const ConstrainedBanks c = constrain_fast(13, 20);
  EXPECT_EQ(c.num_banks, 13);
  EXPECT_EQ(c.fold_factor, 1);
  EXPECT_EQ(c.delta_ii, 0);
}

TEST(ConstrainFast, LoGCaseStudyNmax10) {
  // §5.1: F = ceil(13/10) = 2, Nc = ceil(13/2) = 7, two accesses per bank.
  const ConstrainedBanks c = constrain_fast(13, 10);
  EXPECT_EQ(c.fold_factor, 2);
  EXPECT_EQ(c.num_banks, 7);
  EXPECT_EQ(c.delta_ii, 1);
}

TEST(ConstrainFast, ExtremeFolding) {
  // Nmax = 1: everything folds into one bank, F = Nf.
  const ConstrainedBanks c = constrain_fast(13, 1);
  EXPECT_EQ(c.fold_factor, 13);
  EXPECT_EQ(c.num_banks, 1);
  EXPECT_EQ(c.delta_ii, 12);
}

TEST(ConstrainFast, NcNeverExceedsNmax) {
  for (Count nf = 1; nf <= 40; ++nf) {
    for (Count nmax = 1; nmax <= 12; ++nmax) {
      const ConstrainedBanks c = constrain_fast(nf, nmax);
      EXPECT_LE(c.num_banks, nmax) << "nf=" << nf << " nmax=" << nmax;
      // F folded banks must cover all Nf originals.
      EXPECT_GE(c.num_banks * c.fold_factor, nf);
    }
  }
}

TEST(ConstrainFast, RejectsBadArguments) {
  EXPECT_THROW((void)constrain_fast(0, 5), InvalidArgument);
  EXPECT_THROW((void)constrain_fast(5, 0), InvalidArgument);
}

TEST(ConstrainSameSize, LoGCaseStudyNmax10) {
  // §5.1: minimum delta_P|N over N <= 10 is 1, first achieved at N = 7.
  const ConstrainedBanks c = constrain_same_size(z_of(patterns::log5x5()), 10);
  EXPECT_EQ(c.num_banks, 7);
  EXPECT_EQ(c.delta_ii, 1);
  EXPECT_EQ(c.fold_factor, 1);
  ASSERT_EQ(c.sweep.size(), 10u);
  // N = 9 ties at delta = 1 (the paper: "Nc = 7 or 9").
  EXPECT_EQ(c.sweep[8], 1);
}

TEST(ConstrainSameSize, PicksNfWhenAllowed) {
  const ConstrainedBanks c = constrain_same_size(z_of(patterns::log5x5()), 13);
  EXPECT_EQ(c.num_banks, 13);
  EXPECT_EQ(c.delta_ii, 0);
}

TEST(ConstrainSameSize, SweepNeverBelowCeilingBound) {
  // delta+1 >= ceil(m / N): N banks cannot serve m accesses faster.
  const auto z = z_of(patterns::canny5x5());
  const Count m = static_cast<Count>(z.size());
  const ConstrainedBanks c = constrain_same_size(z, 30);
  for (size_t i = 0; i < c.sweep.size(); ++i) {
    const Count n = static_cast<Count>(i) + 1;
    EXPECT_GE(c.sweep[i] + 1, (m + n - 1) / n) << "N=" << n;
  }
}

TEST(ConstrainSameSize, RejectsBadNmax) {
  EXPECT_THROW((void)constrain_same_size(std::vector<Address>{0, 1}, 0), InvalidArgument);
}

TEST(DeltaSweep, MatchesIndividualDeltaII) {
  const auto z = z_of(patterns::median7());
  const auto sweep = delta_sweep(z, 12);
  ASSERT_EQ(sweep.size(), 12u);
  for (Count n = 1; n <= 12; ++n) {
    EXPECT_EQ(sweep[static_cast<size_t>(n - 1)], delta_ii(z, n));
  }
}

}  // namespace
}  // namespace mempart
