#include "core/overhead.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/bank_mapping.h"
#include "core/linear_transform.h"

namespace mempart {
namespace {

TEST(Overhead, MotivationalExampleLoGSD) {
  // §2: 640 extra storage positions for LoG (N=13) at 640x480.
  EXPECT_EQ(storage_overhead_elements(NdShape({640, 480}), 13), 640);
}

TEST(Overhead, ZeroWhenInnermostDivisible) {
  EXPECT_EQ(storage_overhead_elements(NdShape({640, 480}), 8), 0);
  EXPECT_EQ(storage_overhead_elements(NdShape({1280, 720}), 9), 0);
}

TEST(Overhead, Sobel3DDepth400) {
  // (ceil(400/27)*27 - 400) * 640*480 = 5 * 307200.
  EXPECT_EQ(storage_overhead_elements(NdShape({640, 480, 400}), 27),
            5 * 640 * 480);
}

TEST(Overhead, MaxBoundHolds) {
  for (Count banks : {2, 3, 7, 13, 25}) {
    for (Count w : {17, 30, 480, 481}) {
      const NdShape shape({12, w});
      EXPECT_LE(storage_overhead_elements(shape, banks),
                max_storage_overhead_elements(shape, banks))
          << "banks=" << banks << " w=" << w;
    }
  }
}

TEST(Overhead, MaxBoundFormula) {
  EXPECT_EQ(max_storage_overhead_elements(NdShape({640, 480}), 13), 12 * 640);
}

TEST(Overhead, RatioIsSmall) {
  // The whole point of the scheme: overhead shrinks relative to the array.
  EXPECT_LT(storage_overhead_ratio(NdShape({640, 480}), 13), 0.01);
  EXPECT_DOUBLE_EQ(storage_overhead_ratio(NdShape({640, 480}), 8), 0.0);
}

TEST(Overhead, AgreesWithBankMappingOnManyShapes) {
  const LinearTransform t({5, 1});
  for (Count w0 : {5, 9}) {
    for (Count w1 : {7, 13, 20}) {
      for (Count banks : {2, 3, 5, 8, 13}) {
        const NdShape shape({w0, w1});
        const BankMapping m(shape, t, {.num_banks = banks});
        EXPECT_EQ(m.storage_overhead_elements(),
                  storage_overhead_elements(shape, banks))
            << shape.to_string() << " banks=" << banks;
      }
    }
  }
}

TEST(Overhead, Rank1) {
  EXPECT_EQ(storage_overhead_elements(NdShape({29}), 4), 3);
  EXPECT_EQ(max_storage_overhead_elements(NdShape({29}), 4), 3);
}

TEST(Overhead, RejectsBadBankCount) {
  EXPECT_THROW((void)storage_overhead_elements(NdShape({4, 4}), 0), InvalidArgument);
  EXPECT_THROW((void)max_storage_overhead_elements(NdShape({4, 4}), -1),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart
