// The §3 / §5.1 bank-bandwidth extension: with bandwidth B, B conflict-free
// banks combine into one physical bank without losing single-cycle access.
#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/partitioner.h"
#include "core/verify.h"
#include "loopnest/schedule.h"
#include "pattern/pattern_library.h"
#include "sim/address_map.h"

namespace mempart {
namespace {

PartitionSolution solve_bw(const Pattern& p, Count bandwidth,
                           Count max_banks = 0) {
  PartitionRequest req;
  req.pattern = p;
  req.bank_bandwidth = bandwidth;
  req.max_banks = max_banks;
  return Partitioner::solve(req);
}

TEST(BankBandwidth, Section51ThirteenToSeven) {
  // "if the bandwidth of memory bank is 2 ... reduce bank number from 13
  // to 7" — and all 13 reads still complete in one cycle.
  const PartitionSolution sol = solve_bw(patterns::log5x5(), 2);
  EXPECT_EQ(sol.num_banks(), 7);
  EXPECT_EQ(sol.constraint.fold_factor, 2);
  EXPECT_EQ(sol.delta_ii(), 1);       // two accesses share a bank...
  EXPECT_EQ(sol.access_cycles(), 1);  // ...but the bank serves both at once
}

TEST(BankBandwidth, DefaultBandwidthUnchanged) {
  const PartitionSolution sol = solve_bw(patterns::log5x5(), 1);
  EXPECT_EQ(sol.num_banks(), 13);
  EXPECT_EQ(sol.access_cycles(), 1);
}

TEST(BankBandwidth, WideBandwidthCollapsesToOneBank) {
  const PartitionSolution sol = solve_bw(patterns::log5x5(), 13);
  EXPECT_EQ(sol.num_banks(), 1);
  EXPECT_EQ(sol.delta_ii(), 12);
  EXPECT_EQ(sol.access_cycles(), 1);
}

TEST(BankBandwidth, AlwaysSingleCycleWithoutNmax) {
  for (const Pattern& p : patterns::table1_patterns()) {
    for (Count b = 1; b <= 4; ++b) {
      const PartitionSolution sol = solve_bw(p, b);
      EXPECT_EQ(sol.access_cycles(), 1) << p.name() << " B=" << b;
      EXPECT_LE(sol.num_banks() * b,
                // N_c * B covers at least the conflict-free N_f banks
                sol.search.num_banks + b * b)
          << p.name();
    }
  }
}

TEST(BankBandwidth, TighterNmaxStillWins) {
  // B=2 would allow 7 banks; Nmax=5 forces further folding and extra cycles.
  const PartitionSolution sol = solve_bw(patterns::log5x5(), 2, 5);
  EXPECT_LE(sol.num_banks(), 5);
  EXPECT_EQ(sol.constraint.fold_factor, 3);  // ceil(13/5)
  EXPECT_EQ(sol.num_banks(), 5);             // ceil(13/3)
  EXPECT_EQ(sol.access_cycles(), 2);         // ceil(3/2)
}

TEST(BankBandwidth, SimulatorConfirmsSingleCycleAtPortsB) {
  const Pattern p = patterns::log5x5();
  PartitionRequest req;
  req.pattern = p;
  req.bank_bandwidth = 2;
  req.array_shape = NdShape({20, 26});
  PartitionSolution sol = Partitioner::solve(req);
  const sim::CoreAddressMap map(std::move(*sol.mapping));
  const loopnest::StencilProgram program(NdShape({20, 26}), p, "LoG");
  const sim::AccessStats stats =
      loopnest::simulate(program, map, /*ports_per_bank=*/2);
  EXPECT_EQ(stats.worst_group_cycles, 1);
  EXPECT_EQ(stats.cycles, stats.iterations);
}

TEST(BankBandwidth, MappingStillUniqueUnderFold) {
  PartitionRequest req;
  req.pattern = patterns::gaussian9();
  req.bank_bandwidth = 3;
  req.array_shape = NdShape({12, 14});
  const PartitionSolution sol = Partitioner::solve(req);
  ASSERT_TRUE(sol.mapping.has_value());
  const VerifyResult r = verify_unique_addresses(*sol.mapping);
  EXPECT_TRUE(r) << r.message;
}

TEST(BankBandwidth, RejectsNonPositive) {
  PartitionRequest req;
  req.pattern = patterns::median7();
  req.bank_bandwidth = 0;
  EXPECT_THROW((void)Partitioner::solve(req), InvalidArgument);
}

}  // namespace
}  // namespace mempart
