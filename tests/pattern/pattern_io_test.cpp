#include "pattern/pattern_io.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

TEST(ParsePattern2D, CrossShape) {
  const Pattern p = parse_pattern_2d(
      ".#.\n"
      "###\n"
      ".#.\n",
      "cross");
  EXPECT_EQ(p.size(), 5);
  EXPECT_EQ(p.rank(), 2);
  EXPECT_TRUE(p.contains({0, 1}));
  EXPECT_TRUE(p.contains({1, 0}));
  EXPECT_TRUE(p.contains({1, 1}));
  EXPECT_FALSE(p.contains({0, 0}));
}

TEST(ParsePattern2D, AcceptsAlternativeMarkers) {
  const Pattern a = parse_pattern_2d("X1\n#x\n");
  EXPECT_EQ(a.size(), 4);
  const Pattern b = parse_pattern_2d("0._ \n#...\n");
  EXPECT_EQ(b.size(), 1);
}

TEST(ParsePattern2D, ResultIsNormalized) {
  const Pattern p = parse_pattern_2d(
      "...\n"
      "..#\n"
      ".##\n");
  EXPECT_EQ(p.min_coord(0), 0);
  EXPECT_EQ(p.min_coord(1), 0);
}

TEST(ParsePattern2D, RejectsGarbage) {
  EXPECT_THROW((void)parse_pattern_2d("..@..\n"), InvalidArgument);
  EXPECT_THROW((void)parse_pattern_2d("...\n...\n"), InvalidArgument);  // empty
  EXPECT_THROW((void)parse_pattern_2d(""), InvalidArgument);
}

TEST(RenderPattern2D, RoundTripsThroughParse) {
  const Pattern original = patterns::log5x5();
  const std::string art = render_pattern_2d(original);
  EXPECT_EQ(parse_pattern_2d(art), original);
}

TEST(RenderPattern2D, ExactArtForLoG) {
  EXPECT_EQ(render_pattern_2d(patterns::log5x5()),
            "..#..\n"
            ".###.\n"
            "#####\n"
            ".###.\n"
            "..#..\n");
}

TEST(RenderPattern2D, Rejects3D) {
  EXPECT_THROW((void)render_pattern_2d(patterns::sobel3d()), InvalidArgument);
}

TEST(RenderBankMap, FormatsAlignedGrid) {
  const std::string map = render_bank_map(
      2, 3, [](const NdIndex& x) { return x[0] * 10 + x[1]; });
  EXPECT_EQ(map,
            " 0  1  2\n"
            "10 11 12\n");
}

TEST(RenderBankMap, RejectsEmptyWindow) {
  EXPECT_THROW((void)render_bank_map(0, 3, [](const NdIndex&) { return Count{0}; }),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart
