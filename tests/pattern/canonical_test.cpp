#include "pattern/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/errors.h"
#include "core/linear_transform.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

Pattern rect2x3() {
  return Pattern({{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}, "rect2x3");
}

Pattern transposed(const Pattern& pattern) {
  std::vector<NdIndex> offsets = pattern.offsets();
  for (NdIndex& offset : offsets) std::reverse(offset.begin(), offset.end());
  return Pattern(std::move(offsets));
}

TEST(Canonicalizer, SquarePatternsKeepIdentityPermAndDerivedAlpha) {
  Canonicalizer canon;
  for (const Pattern& pattern : patterns::table1_patterns()) {
    const Canonicalizer::View view = canon.run(pattern);
    EXPECT_TRUE(view.identity_perm) << pattern.name();
    const LinearTransform derived =
        LinearTransform::derive(pattern.normalized());
    EXPECT_EQ(std::vector<Count>(view.alpha.begin(), view.alpha.end()),
              derived.alpha())
        << pattern.name();
  }
}

TEST(Canonicalizer, ExtentsComeOutNonDecreasing) {
  Canonicalizer canon;
  const Canonicalizer::View view = canon.run(rect2x3());
  EXPECT_EQ(std::vector<Count>(view.extents.begin(), view.extents.end()),
            (std::vector<Count>{2, 3}));
  const Canonicalizer::View swapped = canon.run(transposed(rect2x3()));
  EXPECT_EQ(std::vector<Count>(swapped.extents.begin(), swapped.extents.end()),
            (std::vector<Count>{2, 3}));
  EXPECT_FALSE(swapped.identity_perm);
}

TEST(Canonicalizer, TranslationNeverChangesTheForm) {
  Canonicalizer canon;
  const CanonicalForm base = canonicalize(patterns::log5x5());
  for (const NdIndex& shift :
       {NdIndex{7, -3}, NdIndex{-100, 41}, NdIndex{0, 999}}) {
    const CanonicalForm moved = canonicalize(patterns::log5x5().translated(shift));
    EXPECT_EQ(moved.extents, base.extents);
    EXPECT_EQ(moved.values, base.values);
    EXPECT_EQ(moved.alpha, base.alpha);
  }
}

TEST(Canonicalizer, TransposedRectangleSharesTheSortedValues) {
  const CanonicalForm a = canonicalize(rect2x3());
  const CanonicalForm b = canonicalize(transposed(rect2x3()));
  EXPECT_EQ(a.extents, b.extents);
  EXPECT_EQ(a.sorted_values, b.sorted_values);
  // The rehydrated alpha differs (caller dimension order differs) but both
  // encode the same canonical weights.
  EXPECT_EQ(a.alpha, (std::vector<Count>{3, 1}));
  EXPECT_EQ(b.alpha, (std::vector<Count>{1, 3}));
}

TEST(Canonicalizer, PermutationCanBeDisabled) {
  const CanonicalForm kept = canonicalize(transposed(rect2x3()),
                                          /*allow_permutation=*/false);
  EXPECT_TRUE(kept.identity_perm);
  EXPECT_EQ(kept.extents, (std::vector<Count>{3, 2}));
  const LinearTransform derived =
      LinearTransform::derive(transposed(rect2x3()).normalized());
  EXPECT_EQ(kept.alpha, derived.alpha());
}

TEST(Canonicalizer, RankThreePermutationSortsAllExtents) {
  // Extents 2 x 4 x 3 -> canonical 2 x 3 x 4 via perm (0, 2, 1).
  std::vector<NdIndex> offsets;
  for (Coord a = 0; a < 2; ++a) {
    for (Coord b = 0; b < 4; ++b) {
      for (Coord c = 0; c < 3; ++c) offsets.push_back({a, b, c});
    }
  }
  const CanonicalForm form = canonicalize(Pattern(std::move(offsets)));
  EXPECT_EQ(form.extents, (std::vector<Count>{2, 3, 4}));
  EXPECT_EQ(form.perm, (std::vector<int>{0, 2, 1}));
  EXPECT_FALSE(form.identity_perm);
}

TEST(CanonicalPattern, RepresentativeIsSharedAcrossTheClass) {
  const Pattern base = rect2x3();
  const Pattern rep = canonical_pattern(base);
  EXPECT_EQ(canonical_pattern(base.translated({5, -2})).offsets(),
            rep.offsets());
  EXPECT_EQ(canonical_pattern(transposed(base)).offsets(), rep.offsets());
  EXPECT_EQ(canonical_pattern(transposed(base).translated({-9, 13})).offsets(),
            rep.offsets());
}

TEST(CanonicallyEqual, AcceptsTranslatesAndPermutationsOnly) {
  const Pattern base = rect2x3();
  EXPECT_TRUE(canonically_equal(base, base.translated({3, 3})));
  EXPECT_TRUE(canonically_equal(base, transposed(base)));
  EXPECT_TRUE(canonically_equal(patterns::log5x5(),
                                patterns::log5x5().translated({-2, -2})));
  EXPECT_FALSE(canonically_equal(base, patterns::prewitt3x3()));
  EXPECT_FALSE(canonically_equal(base, patterns::row1d(6)));
}

TEST(Canonicalizer, OverflowMirrorsDeriveAndTransform) {
  // Rank 3 with huge extents: the mixed-radix weight product alone leaves
  // 64 bits, so derive() itself throws, and so must the canonicalizer.
  const Pattern cube({{0, 0, 0}, {4'000'000'000, 4'000'000'000, 4'000'000'000}});
  Canonicalizer canon;
  EXPECT_THROW((void)canon.run(cube), OverflowError);
  EXPECT_THROW((void)LinearTransform::derive(cube.normalized()),
               OverflowError);

  // Rank 2 where the weights fit but a transformed value z = alpha . Delta
  // does not: derive succeeds, transform_values overflows, and the
  // canonicalizer (which computes the values) throws all the same.
  const Pattern wide({{0, 0}, {0, 4'000'000'000}, {4'000'000'000, 0}});
  EXPECT_THROW((void)canon.run(wide), OverflowError);
  const LinearTransform derived = LinearTransform::derive(wide.normalized());
  EXPECT_THROW((void)derived.transform_values(wide.normalized()),
               OverflowError);
}

}  // namespace
}  // namespace mempart
