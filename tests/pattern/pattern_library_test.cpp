// Pins the reconstructed Fig. 3 / §5.2 benchmark patterns. Their shapes are
// the ground the Table 1 reproduction stands on (see DESIGN.md §2), so any
// accidental edit must fail loudly here.
#include "pattern/pattern_library.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/partitioner.h"
#include "pattern/pattern_io.h"

namespace mempart {
namespace {

using patterns::box2d;
using patterns::box3d;
using patterns::cross2d;
using patterns::random_pattern;
using patterns::row1d;

TEST(PatternLibrary, LoGMatchesSection51Offsets) {
  // §5.1 lists P in (x0,x1): (2,4),(3,3),(3,4),...,(5,4),(5,5),(6,4) — the
  // same constellation normalised here to origin (0,0) = their (2,2).
  const Pattern log = patterns::log5x5();
  EXPECT_EQ(log.size(), 13);
  const Pattern expected(
      {{0, 2}, {1, 1}, {1, 2}, {1, 3}, {2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4},
       {3, 1}, {3, 2}, {3, 3}, {4, 2}});
  EXPECT_EQ(log, expected);
}

TEST(PatternLibrary, Table1Sizes) {
  EXPECT_EQ(patterns::log5x5().size(), 13);
  EXPECT_EQ(patterns::canny5x5().size(), 25);
  EXPECT_EQ(patterns::prewitt3x3().size(), 8);
  EXPECT_EQ(patterns::structure_element().size(), 5);
  EXPECT_EQ(patterns::sobel3d().size(), 26);
  EXPECT_EQ(patterns::median7().size(), 7);
  EXPECT_EQ(patterns::gaussian9().size(), 9);
}

TEST(PatternLibrary, Table1PatternsInPaperOrder) {
  const auto all = patterns::table1_patterns();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].name(), "LoG");
  EXPECT_EQ(all[1].name(), "Canny");
  EXPECT_EQ(all[2].name(), "Prewitt");
  EXPECT_EQ(all[3].name(), "SE");
  EXPECT_EQ(all[4].name(), "Sobel3D");
  EXPECT_EQ(all[5].name(), "Median");
  EXPECT_EQ(all[6].name(), "Gaussian");
}

TEST(PatternLibrary, PrewittIsUnionOfDirectionalSupports) {
  const Pattern combined = patterns::prewitt3x3();
  const Pattern h = patterns::prewitt_horizontal_kernel().support();
  const Pattern v = patterns::prewitt_vertical_kernel().support();
  for (const NdIndex& o : h.offsets()) EXPECT_TRUE(combined.contains(o));
  for (const NdIndex& o : v.offsets()) EXPECT_TRUE(combined.contains(o));
  EXPECT_FALSE(combined.contains({1, 1}));
  EXPECT_EQ(combined.size(), 8);
}

TEST(PatternLibrary, SobelIsFullCubeMinusCentre) {
  const Pattern s = patterns::sobel3d();
  EXPECT_EQ(s.rank(), 3);
  EXPECT_FALSE(s.contains({1, 1, 1}));
  EXPECT_EQ(s.bounding_box(), NdShape({3, 3, 3}));
}

TEST(PatternLibrary, Sobel3dKernelSupportInsidePattern) {
  const Pattern s = patterns::sobel3d();
  const Kernel z_kernel = patterns::sobel3d_z_kernel();
  for (const KernelTap& t : z_kernel.taps()) {
    EXPECT_TRUE(s.contains(t.offset)) << to_string(t.offset);
  }
}

TEST(PatternLibrary, LoGKernelCoefficientsOfFig1a) {
  const Kernel log = patterns::log5x5_kernel();
  EXPECT_EQ(log.support(), patterns::log5x5());
  EXPECT_EQ(log.weight_at({2, 2}), 16.0);
  EXPECT_EQ(log.weight_at({0, 2}), -1.0);
  EXPECT_EQ(log.weight_at({1, 2}), -2.0);
  EXPECT_DOUBLE_EQ(log.weight_sum(), 0.0);  // LoG is zero-sum
}

TEST(PatternLibrary, Gaussian3x3KernelNormalised) {
  EXPECT_DOUBLE_EQ(patterns::gaussian3x3_kernel().weight_sum(), 1.0);
}

TEST(PatternLibrary, Generators) {
  EXPECT_EQ(box2d(4).size(), 16);
  EXPECT_EQ(box2d(1).size(), 1);
  EXPECT_EQ(cross2d(2), patterns::gaussian9());
  EXPECT_EQ(cross2d(1), patterns::structure_element());
  EXPECT_EQ(cross2d(0).size(), 1);
  EXPECT_EQ(row1d(7).size(), 7);
  EXPECT_EQ(row1d(7).rank(), 1);
  EXPECT_EQ(box3d(2).size(), 8);
  EXPECT_THROW((void)box2d(0), InvalidArgument);
  EXPECT_THROW((void)row1d(0), InvalidArgument);
}

TEST(PatternLibrary, AtrousPatternsSpanDilatedBoxes) {
  const Pattern a = patterns::atrous2d(3, 2);
  EXPECT_EQ(a.size(), 9);
  EXPECT_EQ(a.bounding_box(), NdShape({5, 5}));
  EXPECT_TRUE(a.contains({0, 0}));
  EXPECT_TRUE(a.contains({2, 4}));
  EXPECT_FALSE(a.contains({1, 1}));
  EXPECT_EQ(patterns::atrous2d(3, 1), patterns::box2d(3));
  EXPECT_THROW((void)patterns::atrous2d(0, 1), InvalidArgument);
  EXPECT_THROW((void)patterns::atrous2d(3, 0), InvalidArgument);
}

TEST(PatternLibrary, AtrousPartitionsConflictFree) {
  // Dilated constellations have extents D >> sqrt(m); the closed-form
  // transform must still land on a conflict-free bank count.
  for (Count dilation : {2, 3}) {
    const Pattern a = patterns::atrous2d(3, dilation);
    PartitionRequest req;
    req.pattern = a;
    const PartitionSolution sol = Partitioner::solve(req);
    EXPECT_EQ(sol.delta_ii(), 0) << "dilation=" << dilation;
    EXPECT_GE(sol.num_banks(), 9);
  }
}

TEST(PatternLibrary, RobertsAndLaplacian) {
  EXPECT_EQ(patterns::roberts2x2().size(), 4);
  EXPECT_EQ(patterns::roberts2x2(), patterns::box2d(2));
  const Kernel lap = patterns::laplacian3x3_kernel();
  EXPECT_EQ(lap.support(), patterns::structure_element());
  EXPECT_DOUBLE_EQ(lap.weight_sum(), 0.0);
}

TEST(PatternLibrary, RandomPatternRespectsBoxAndSize) {
  Rng rng(11);
  const Pattern p = random_pattern(rng, {4, 5}, 9);
  EXPECT_EQ(p.size(), 9);
  for (const NdIndex& o : p.offsets()) {
    EXPECT_GE(o[0], 0);
    EXPECT_LT(o[0], 4);
    EXPECT_GE(o[1], 0);
    EXPECT_LT(o[1], 5);
  }
  EXPECT_THROW((void)random_pattern(rng, {2, 2}, 5), InvalidArgument);
}

TEST(PatternLibrary, RandomPatternDeterministic) {
  Rng a(123);
  Rng b(123);
  EXPECT_EQ(random_pattern(a, {5, 5}, 10), random_pattern(b, {5, 5}, 10));
}

TEST(PatternLibrary, PatternFromSpecResolvesNamesAndGenerators) {
  ASSERT_TRUE(patterns::pattern_from_spec("LoG").has_value());
  EXPECT_EQ(patterns::pattern_from_spec("LoG"), patterns::log5x5());
  EXPECT_EQ(patterns::pattern_from_spec("box:4"), patterns::box2d(4));
  EXPECT_EQ(patterns::pattern_from_spec("cross:2"), patterns::cross2d(2));
  EXPECT_EQ(patterns::pattern_from_spec("row:8"), patterns::row1d(8));
  EXPECT_EQ(patterns::pattern_from_spec("box3d:3"), patterns::box3d(3));
}

TEST(PatternLibrary, PatternFromSpecPassesFilePathsThrough) {
  EXPECT_FALSE(patterns::pattern_from_spec("my_pattern.txt").has_value());
  EXPECT_FALSE(patterns::pattern_from_spec("unknown-name").has_value());
}

TEST(PatternLibrary, PatternFromSpecRejectsMalformedSpecs) {
  // "box:junk" used to escape as std::invalid_argument from std::stoll.
  EXPECT_THROW((void)patterns::pattern_from_spec("box:junk"), InvalidArgument);
  EXPECT_THROW((void)patterns::pattern_from_spec("box:"), InvalidArgument);
  EXPECT_THROW((void)patterns::pattern_from_spec("blob:4"), InvalidArgument);
  EXPECT_THROW((void)patterns::pattern_from_spec("box:0"), InvalidArgument);
}

}  // namespace
}  // namespace mempart
