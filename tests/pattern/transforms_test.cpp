#include "pattern/transforms.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace mempart::patterns {
namespace {

TEST(Transforms, PrewittIsUnionOfDirectionalSupports) {
  // §5.2: the Prewitt benchmark pattern is exactly the union of the
  // horizontal and vertical kernels' supports.
  const Pattern built = set_union(prewitt_horizontal_kernel().support(),
                                  prewitt_vertical_kernel().support());
  EXPECT_EQ(built, prewitt3x3());
}

TEST(Transforms, UnionIsCommutativeAndIdempotent) {
  const Pattern a = median7();
  const Pattern b = structure_element();
  EXPECT_EQ(set_union(a, b), set_union(b, a));
  EXPECT_EQ(set_union(a, a), a);
}

TEST(Transforms, IntersectionOfCrossAndBox) {
  const Pattern cross = structure_element();            // 3x3 cross
  const Pattern box = box2d(3);                         // full 3x3
  EXPECT_EQ(set_intersection(cross, box), cross);
  EXPECT_THROW(
      (void)set_intersection(cross, box2d(3).translated({10, 10})),
      InvalidArgument);
}

TEST(Transforms, RankMismatchRejected) {
  EXPECT_THROW((void)set_union(median7(), sobel3d()), InvalidArgument);
  EXPECT_THROW((void)dilate(median7(), sobel3d()), InvalidArgument);
}

TEST(Transforms, DilateByUnitIsIdentity) {
  const Pattern unit({{0, 0}});
  EXPECT_EQ(dilate(log5x5(), unit), log5x5());
}

TEST(Transforms, UnrollGrowsAlongOneDimension) {
  const Pattern base = row1d(3);               // {0,1,2}
  const Pattern unrolled = unroll(base, 0, 2); // reads of 2 iterations
  EXPECT_EQ(unrolled.size(), 4);               // {0,1,2,3}
  EXPECT_EQ(unrolled.extent(0), 4);
  EXPECT_EQ(unroll(base, 0, 1), base);
  EXPECT_THROW((void)unroll(base, 1, 2), InvalidArgument);
  EXPECT_THROW((void)unroll(base, 0, 0), InvalidArgument);
}

TEST(Transforms, UnrolledStencilStillPartitions) {
  // Unrolling LoG by 2 along the row dimension: the partitioner must serve
  // the doubled constellation conflict-free.
  const Pattern unrolled = unroll(log5x5(), 0, 2);
  PartitionRequest req;
  req.pattern = unrolled;
  const PartitionSolution sol = Partitioner::solve(req);
  EXPECT_EQ(sol.delta_ii(), 0);
  EXPECT_GE(sol.num_banks(), unrolled.size());
}

TEST(Transforms, MirrorIsInvolutionUpToNormalisation) {
  const Pattern p = median7();
  EXPECT_EQ(mirror(mirror(p, 0), 0), p.normalized());
  EXPECT_EQ(mirror(mirror(p, 1), 1), p.normalized());
}

TEST(Transforms, MirrorPreservesSymmetricPatterns) {
  EXPECT_EQ(mirror(log5x5(), 0), log5x5());
  EXPECT_EQ(mirror(log5x5(), 1), log5x5());
  EXPECT_EQ(mirror(structure_element(), 0), structure_element());
}

TEST(Transforms, Rotate90FourTimesIsIdentity) {
  const Pattern p = median7();
  EXPECT_EQ(rotate90(rotate90(rotate90(rotate90(p)))), p.normalized());
}

TEST(Transforms, Rotate90OnAsymmetricShape) {
  const Pattern ell({{0, 0}, {1, 0}, {2, 0}, {2, 1}});
  const Pattern rot = rotate90(ell);
  EXPECT_EQ(rot.size(), 4);
  // A 3x2 L becomes a 2x3 L.
  EXPECT_EQ(rot.extent(0), 2);
  EXPECT_EQ(rot.extent(1), 3);
  EXPECT_THROW((void)rotate90(sobel3d()), InvalidArgument);
}

TEST(Transforms, RotationPreservesBankCount) {
  // Rotating a pattern permutes D0/D1, but the solver's bank count tracks
  // the constellation's structure, not its orientation, for symmetric D.
  const Pattern p = log5x5();
  PartitionRequest a;
  a.pattern = p;
  PartitionRequest b;
  b.pattern = rotate90(p);
  EXPECT_EQ(Partitioner::solve(a).num_banks(),
            Partitioner::solve(b).num_banks());
}

}  // namespace
}  // namespace mempart::patterns
