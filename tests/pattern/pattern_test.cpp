#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart {
namespace {

Pattern ell() {
  // An L-shape: (0,0), (1,0), (2,0), (2,1).
  return Pattern({{0, 0}, {1, 0}, {2, 0}, {2, 1}}, "L");
}

TEST(Pattern, BasicProperties) {
  const Pattern p = ell();
  EXPECT_EQ(p.rank(), 2);
  EXPECT_EQ(p.size(), 4);
  EXPECT_EQ(p.name(), "L");
}

TEST(Pattern, OffsetsAreSorted) {
  const Pattern p({{2, 1}, {0, 0}, {2, 0}, {1, 0}});
  EXPECT_EQ(p.offsets(),
            (std::vector<NdIndex>{{0, 0}, {1, 0}, {2, 0}, {2, 1}}));
}

TEST(Pattern, EqualityIgnoresConstructionOrderAndName) {
  const Pattern a({{1, 1}, {0, 0}}, "a");
  const Pattern b({{0, 0}, {1, 1}}, "b");
  EXPECT_EQ(a, b);
}

TEST(Pattern, RejectsMalformedInput) {
  EXPECT_THROW((void)Pattern({}), InvalidArgument);
  EXPECT_THROW((void)Pattern({{0, 0}, {0, 0}}), InvalidArgument);           // dup
  EXPECT_THROW((void)Pattern({{0, 0}, {0, 0, 0}}), InvalidArgument);        // rank
  EXPECT_THROW((void)Pattern({NdIndex{}}), InvalidArgument);                // rank 0
}

TEST(Pattern, MinMaxExtent) {
  const Pattern p({{-1, 3}, {2, 5}, {0, 4}});
  EXPECT_EQ(p.min_coord(0), -1);
  EXPECT_EQ(p.max_coord(0), 2);
  EXPECT_EQ(p.extent(0), 4);
  EXPECT_EQ(p.min_coord(1), 3);
  EXPECT_EQ(p.max_coord(1), 5);
  EXPECT_EQ(p.extent(1), 3);
  EXPECT_EQ(p.bounding_box(), NdShape({4, 3}));
}

TEST(Pattern, ExtentRejectsBadDimension) {
  EXPECT_THROW((void)ell().extent(2), InvalidArgument);
  EXPECT_THROW((void)ell().extent(-1), InvalidArgument);
}

TEST(Pattern, Contains) {
  const Pattern p = ell();
  EXPECT_TRUE(p.contains({2, 1}));
  EXPECT_FALSE(p.contains({1, 1}));
}

TEST(Pattern, NormalizedShiftsMinToZero) {
  const Pattern p({{-2, 5}, {1, 7}});
  const Pattern n = p.normalized();
  EXPECT_EQ(n.min_coord(0), 0);
  EXPECT_EQ(n.min_coord(1), 0);
  EXPECT_EQ(n.offsets(), (std::vector<NdIndex>{{0, 0}, {3, 2}}));
  // Normalisation preserves the extents.
  EXPECT_EQ(n.extent(0), p.extent(0));
  EXPECT_EQ(n.extent(1), p.extent(1));
}

TEST(Pattern, NormalizedIsIdempotent) {
  const Pattern n = ell().normalized();
  EXPECT_EQ(n, n.normalized());
}

TEST(Pattern, TranslatedMovesAllOffsets) {
  const Pattern p({{0, 0}, {1, 1}});
  const Pattern t = p.translated({10, -1});
  EXPECT_EQ(t.offsets(), (std::vector<NdIndex>{{10, -1}, {11, 0}}));
  EXPECT_THROW((void)p.translated({1}), InvalidArgument);
}

TEST(Pattern, AtAddsPosition) {
  const Pattern p({{0, 0}, {0, 2}});
  EXPECT_EQ(p.at({5, 5}), (std::vector<NdIndex>{{5, 5}, {5, 7}}));
  EXPECT_THROW((void)p.at({5}), InvalidArgument);
}

TEST(Pattern, FitsWithin) {
  const Pattern p({{0, 0}, {2, 2}});
  const NdShape domain({4, 4});
  EXPECT_TRUE(p.fits_within(domain, {0, 0}));
  EXPECT_TRUE(p.fits_within(domain, {1, 1}));
  EXPECT_FALSE(p.fits_within(domain, {2, 2}));   // (4,4) out of bounds
  EXPECT_FALSE(p.fits_within(NdShape({4}), {0}));  // rank mismatch
}

TEST(Pattern, ToStringMentionsNameAndSize) {
  const std::string s = ell().to_string();
  EXPECT_NE(s.find("L{m=4"), std::string::npos);
}

TEST(Pattern, SingleElementAndRank1) {
  const Pattern p(std::vector<NdIndex>{{7}});
  EXPECT_EQ(p.rank(), 1);
  EXPECT_EQ(p.size(), 1);
  EXPECT_EQ(p.extent(0), 1);
  EXPECT_EQ(p.normalized().offsets(), (std::vector<NdIndex>{{0}}));
}

TEST(Pattern, ExtentSpanningTheCoordinateRangeDoesNotWrap) {
  // max - min overflows int64 when taps sit at both extremes; extent()
  // must report structured overflow, not a negative width.
  const Coord lo = INT64_MIN + 1;
  const Coord hi = INT64_MAX - 1;
  const Pattern p({{lo}, {hi}}, "span");
  EXPECT_THROW((void)p.extent(0), OverflowError);
  // A merely-large spread still works: width = 2^62 + 1 fits.
  const Pattern wide({{0}, {Coord{1} << 62}}, "wide");
  EXPECT_EQ(wide.extent(0), (Coord{1} << 62) + 1);
}

}  // namespace
}  // namespace mempart
