#include "pattern/kernel.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart {
namespace {

TEST(Kernel, FromMatrixDropsZeros) {
  const Kernel k = Kernel::from_matrix_2d({{0, 1, 0}, {2, 0, 3}}, "k");
  EXPECT_EQ(k.taps().size(), 3u);
  EXPECT_EQ(k.support().size(), 3);
  EXPECT_EQ(k.weight_at({0, 1}), 1.0);
  EXPECT_EQ(k.weight_at({1, 0}), 2.0);
  EXPECT_EQ(k.weight_at({1, 2}), 3.0);
  EXPECT_EQ(k.weight_at({0, 0}), 0.0);
}

TEST(Kernel, WeightSum) {
  const Kernel k = Kernel::from_matrix_2d({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(k.weight_sum(), 10.0);
}

TEST(Kernel, RejectsAllZero) {
  EXPECT_THROW((void)Kernel::from_matrix_2d({{0, 0}, {0, 0}}), InvalidArgument);
  EXPECT_THROW((void)Kernel({KernelTap{{0, 0}, 0.0}}), InvalidArgument);
}

TEST(Kernel, RejectsMalformedMatrix) {
  EXPECT_THROW((void)Kernel::from_matrix_2d({}), InvalidArgument);
  EXPECT_THROW((void)Kernel::from_matrix_2d({{1, 2}, {3}}), InvalidArgument);
}

TEST(Kernel, RejectsDuplicateOffsets) {
  EXPECT_THROW((void)Kernel({{{0, 0}, 1.0}, {{0, 0}, 2.0}}), InvalidArgument);
}

TEST(Kernel, TapsSortedByOffset) {
  const Kernel k({{{1, 0}, 5.0}, {{0, 0}, 3.0}, {{0, 1}, 4.0}});
  ASSERT_EQ(k.taps().size(), 3u);
  EXPECT_EQ(k.taps()[0].offset, (NdIndex{0, 0}));
  EXPECT_EQ(k.taps()[1].offset, (NdIndex{0, 1}));
  EXPECT_EQ(k.taps()[2].offset, (NdIndex{1, 0}));
}

TEST(Kernel, SupportMatchesNonZeroTaps) {
  const Kernel k = Kernel::from_matrix_2d({{1, 0, -1}});
  EXPECT_TRUE(k.support().contains({0, 0}));
  EXPECT_FALSE(k.support().contains({0, 1}));
  EXPECT_TRUE(k.support().contains({0, 2}));
}

TEST(Kernel, Rank3Kernel) {
  const Kernel k({{{0, 0, 0}, 1.0}, {{1, 1, 1}, -1.0}}, "3d");
  EXPECT_EQ(k.rank(), 3);
  EXPECT_EQ(k.support().size(), 2);
}

}  // namespace
}  // namespace mempart
