// End-to-end tests for mempart_lint: spawn the real binary over the fixture
// corpus and pin exact finding counts, rules, and exit codes. The fixtures
// under tests/lint/fixtures/ each carry a tally comment; a count drifting
// here means either a fixture edit or a linter behavior change — both must
// be deliberate.
//
// Paths come in as compile definitions (see tests/CMakeLists.txt):
//   MEMPART_LINT_BIN       absolute path to the mempart_lint executable
//   MEMPART_LINT_FIXTURES  absolute path to tests/lint/fixtures
//   MEMPART_LINT_SRC_DIR   absolute path to the repo's src/ tree
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "json.h"  // tools/analyze JSON parser, reused for report round-trips

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_lint(const std::string& args) {
  const std::string cmd =
      std::string(MEMPART_LINT_BIN) + " " + args + " 2>&1";
  RunResult result;
#if defined(_WIN32)
  FILE* pipe = _popen(cmd.c_str(), "r");
#else
  FILE* pipe = popen(cmd.c_str(), "r");
#endif
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), static_cast<int>(buffer.size()), pipe) !=
         nullptr) {
    result.output += buffer.data();
  }
#if defined(_WIN32)
  const int status = _pclose(pipe);
  result.exit_code = status;
#else
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
  return result;
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

std::string fixture(const std::string& rel) {
  return std::string(MEMPART_LINT_FIXTURES) + "/" + rel;
}

TEST(LintTool, ViolationsFixtureFindsExactlyFiveRawArith) {
  const RunResult r = run_lint(fixture("core/violations.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[raw-arith]"), 5) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[mutex-guard]"), 0) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[obs-span]"), 0) << r.output;
}

TEST(LintTool, CleanFixturePasses) {
  const RunResult r = run_lint(fixture("core/clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(LintTool, PragmasSuppressButDemandReasons) {
  const RunResult r = run_lint(fixture("core/suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Two good pragmas suppress their sites; the reason-less pragma does not
  // suppress (1 raw-arith) and is itself flagged, as is the unknown rule.
  EXPECT_EQ(count_occurrences(r.output, "[raw-arith]"), 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[bad-pragma]"), 2) << r.output;
}

TEST(LintTool, StalePragmasAreFlagged) {
  const RunResult r = run_lint(fixture("core/stale.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The live pragma suppresses its modulo and is not flagged; the two dead
  // allowances (trailing and line-above forms) are.
  EXPECT_EQ(count_occurrences(r.output, "[stale-pragma]"), 2) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[raw-arith]"), 0) << r.output;
  EXPECT_NE(r.output.find("suppresses nothing"), std::string::npos)
      << r.output;
}

TEST(LintTool, FindingsCarryColumns) {
  // file:line:col: — the stale trailing pragma sits at column 37 of line 17
  // (the comment start), pinning that columns are real and 1-based.
  const RunResult r = run_lint(fixture("core/stale.cpp"));
  EXPECT_NE(r.output.find("stale.cpp:17:37: [stale-pragma]"),
            std::string::npos)
      << r.output;
}

TEST(LintTool, RawArithScopedToSolverDirs) {
  // The guard fixtures live outside any core/ or pattern/ segment, so their
  // arithmetic-free content aside, raw-arith must not even be consulted.
  const RunResult r = run_lint(fixture("guard/unguarded.h"));
  EXPECT_EQ(count_occurrences(r.output, "[raw-arith]"), 0) << r.output;
}

TEST(LintTool, UnguardedMutexesAreFlagged) {
  const RunResult r = run_lint(fixture("guard/unguarded.h"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[mutex-guard]"), 2) << r.output;
}

TEST(LintTool, GuardedMutexesPass) {
  const RunResult r = run_lint(fixture("guard/guarded.h"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintTool, SpanlessEntryPointsAreFlagged) {
  const RunResult r = run_lint(fixture("span/spanless.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[obs-span]"), 2) << r.output;
  EXPECT_NE(r.output.find("Partitioner::solve"), std::string::npos)
      << r.output;
}

TEST(LintTool, SpansDelegationAndPragmaSatisfyTheRule) {
  const RunResult r = run_lint(fixture("span/spanned.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintTool, LeakedIntrinsicsAreFlagged) {
  const RunResult r = run_lint(fixture("simd/leaky.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // 2 intrinsic-header includes + 2 intrinsic-identifier lines (several
  // intrinsics on one line collapse to a single finding) + 1 I64x4 use
  // outside an _avx2.cpp unit.
  EXPECT_EQ(count_occurrences(r.output, "[simd-guard]"), 5) << r.output;
  EXPECT_NE(r.output.find("immintrin.h"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("I64x4"), std::string::npos) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[raw-arith]"), 0) << r.output;
}

TEST(LintTool, WideLaneWrapperIsAllowedInAvx2Units) {
  const RunResult r = run_lint(fixture("simd/kernels_avx2.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(LintTool, SuppressedIntrinsicsPass) {
  const RunResult r = run_lint(fixture("simd/guarded.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[simd-guard]"), 0) << r.output;
}

TEST(LintTool, SimdAbstractionHeaderIsExempt) {
  const RunResult r = run_lint(fixture("simd/common/simd.h"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(LintTool, WholeCorpusCountIsPinned) {
  const RunResult r = run_lint(std::string(MEMPART_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("19 finding(s)"), std::string::npos) << r.output;
}

TEST(LintTool, RealSourceTreeIsClean) {
  // The gate the CI job enforces, pinned here too so a local `ctest` run
  // catches a new violation before it reaches CI.
  const RunResult r = run_lint(std::string(MEMPART_LINT_SRC_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(LintTool, MissingPathIsAUsageError) {
  const RunResult r = run_lint(fixture("does/not/exist.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(LintTool, NoArgumentsIsAUsageError) {
  const RunResult r = run_lint("");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(LintTool, ListRulesExitsZero) {
  const RunResult r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("raw-arith"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("mutex-guard"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("obs-span"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("simd-guard"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("stale-pragma"), std::string::npos) << r.output;
}

TEST(LintTool, ReportWritesJson) {
  const std::string report =
      ::testing::TempDir() + "/mempart_lint_report.json";
  const RunResult r =
      run_lint("--report " + report + " " + fixture("core/violations.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  FILE* f = std::fopen(report.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  std::array<char, 4096> buffer{};
  size_t n = 0;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), f)) > 0) {
    contents.append(buffer.data(), n);
  }
  std::fclose(f);
  std::remove(report.c_str());
  EXPECT_NE(contents.find("\"rule\": \"raw-arith\""), std::string::npos)
      << contents;
  EXPECT_EQ(count_occurrences(contents, "\"line\":"), 5) << contents;
  EXPECT_EQ(count_occurrences(contents, "\"col\":"), 5) << contents;
}

TEST(LintTool, ReportRoundTripsThroughJsonParser) {
  // Schema pin: the report over the whole corpus — messages carry em dashes,
  // quotes and apostrophes — must parse as strict JSON into an array of
  // {file, line, col, rule, message} objects with the right types.
  const std::string report =
      ::testing::TempDir() + "/mempart_lint_roundtrip.json";
  const RunResult r =
      run_lint("--report " + report + " " + std::string(MEMPART_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  std::string contents;
  {
    FILE* f = std::fopen(report.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::array<char, 4096> buffer{};
    size_t n = 0;
    while ((n = std::fread(buffer.data(), 1, buffer.size(), f)) > 0) {
      contents.append(buffer.data(), n);
    }
    std::fclose(f);
    std::remove(report.c_str());
  }
  std::string error;
  const auto doc = mempart::analyze::Json::parse(contents, &error);
  ASSERT_TRUE(doc.is_array()) << error << "\n" << contents;
  ASSERT_EQ(doc.size(), 19u) << contents;
  for (size_t i = 0; i < doc.size(); ++i) {
    const auto& f = doc.at(i);
    ASSERT_TRUE(f.is_object());
    EXPECT_TRUE(f["file"].is_string());
    EXPECT_TRUE(f["rule"].is_string());
    EXPECT_TRUE(f["message"].is_string());
    EXPECT_TRUE(f["line"].is_number());
    EXPECT_TRUE(f["col"].is_number());
    EXPECT_GE(f["line"].as_int(0), 1);
    EXPECT_GE(f["col"].as_int(-1), 0);
    EXPECT_FALSE(f["message"].as_string().empty());
  }
}

}  // namespace
