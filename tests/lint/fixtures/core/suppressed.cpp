// Fixture: pragma behavior. Two correctly suppressed sites, one pragma with
// a missing reason (bad-pragma finding), one pragma naming an unknown rule
// (bad-pragma finding).
#include <cstdint>

namespace fixture {

using Count = std::int64_t;

Count suppressed_trailing(Count v, Count banks) {
  return v % banks;  // mempart-lint: allow(raw-arith) banks > 0 and v >= 0 in this fixture
}

Count suppressed_line_above(Count z, Count stride) {
  // mempart-lint: allow(raw-arith) fixture demonstrates the line-above form
  return z * stride;
}

Count missing_reason(Count v, Count banks) {
  return v % banks;  // mempart-lint: allow(raw-arith)
}

Count unknown_rule(Count v, Count banks) {
  return euclid_mod_stub(v, banks);  // mempart-lint: allow(no-such-rule) reason given but rule unknown
}

Count euclid_mod_stub(Count v, Count m);

}  // namespace fixture

// Tally: 1 raw-arith (the missing-reason pragma does not suppress), 2
// bad-pragma (missing reason, unknown rule).
