// Fixture: solver-style code with zero findings. Checked helpers, strings
// and comments containing operator-like text, and non-z identifiers must all
// pass untouched.
#include <cstdint>
#include <string>

namespace fixture {

using Count = std::int64_t;

Count euclid_mod(Count v, Count m);
Count checked_mul(Count a, Count b);

Count good_modulo(Count v, Count banks) { return euclid_mod(v, banks); }

Count good_product(Count z, Count stride) { return checked_mul(z, stride); }

// A comment mentioning v % banks must not trip the tokenizer.
std::string operator_in_string() { return "a % b and z * 2"; }

Count zebra_is_not_z(Count zebra, Count zoom) {
  // Identifiers merely starting with z are not z-values.
  return zebra > zoom ? zebra : zoom;
}

Count member_access_is_not_arith(const std::string& z) {
  // z.size() chains through '.', which the rule must skip.
  return static_cast<Count>(z.size());
}

}  // namespace fixture
