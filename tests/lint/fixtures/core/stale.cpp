// Fixture: stale-pragma detection. An allow() that suppresses nothing is
// itself a finding — suppressions must not outlive their reasons. The live
// pragma shows the boundary: it keeps suppressing and is not flagged.
#include <cstdint>

namespace fixture {

using Count = std::int64_t;

Count checked_helper(Count v, Count banks);

Count live_pragma(Count v, Count banks) {
  return v % banks;  // mempart-lint: allow(raw-arith) fixture: live — suppresses the naked modulo on this line
}

Count stale_trailing(Count v, Count banks) {
  return checked_helper(v, banks);  // mempart-lint: allow(raw-arith) fixture: stale — the call is already checked, nothing fires here
}

Count stale_line_above(Count v, Count banks) {
  // mempart-lint: allow(mutex-guard) fixture: stale — no mutex anywhere near this line
  return checked_helper(v, banks);
}

}  // namespace fixture

// Tally: 2 stale-pragma (trailing raw-arith, line-above mutex-guard); the
// live pragma suppresses its modulo and contributes nothing.
