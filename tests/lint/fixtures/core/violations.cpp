// Fixture: every statement here is a raw-arith violation. The test pins the
// exact finding count, so keep the tally comment at the bottom in sync.
#include <cstdint>

namespace fixture {

using Count = std::int64_t;

Count bad_modulo(Count v, Count banks) {
  return v % banks;  // finding 1: naked %
}

void bad_compound(Count& v, Count banks) {
  v %= banks;  // finding 2: naked %=
}

Count bad_z_mul(Count z, Count stride) {
  return z * stride;  // finding 3: '*' adjacent to z
}

Count bad_z_add(const Count* zvals, Count i, Count base) {
  return base + zvals[i];  // finding 4: '+' before zvals (subscript skipped)
}

Count bad_sorted_z(Count sorted_z, Count other) {
  return sorted_z - other;  // finding 5: '-' after sorted_z
}

}  // namespace fixture

// Tally: 5 raw-arith findings.
