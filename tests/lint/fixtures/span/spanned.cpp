// Fixture: spans satisfied directly, via delegation, and via pragma —
// zero findings. Constructors and destructors are exempt by design.
namespace fixture {

namespace obs {
struct Span {
  explicit Span(const char* name);
};
}  // namespace obs

struct Result {};

class AccessEngine {
 public:
  AccessEngine();
  ~AccessEngine();
  Result run();
  Result run_twice();
  void tick();
};

AccessEngine::AccessEngine() {}

AccessEngine::~AccessEngine() {}

Result AccessEngine::run() {
  obs::Span span("fixture.run");
  return Result{};
}

Result AccessEngine::run_twice() {
  // No span of its own, but it delegates to run(), which has one.
  run();
  return run();
}

// mempart-lint: allow(obs-span) fixture hot path; observed via histogram
void AccessEngine::tick() {}

}  // namespace fixture
