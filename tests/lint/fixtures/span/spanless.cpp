// Fixture: Partitioner / AccessEngine entry points without obs spans.
namespace fixture {

struct Result {};

class Partitioner {
 public:
  Result solve();
  void warm_up();
};

Result Partitioner::solve() {  // finding 1: no span, no spanned delegate
  return Result{};
}

void Partitioner::warm_up() {  // finding 2
  int work = 0;
  ++work;
}

}  // namespace fixture

// Tally: 2 obs-span findings.
