// Fixture: simd-guard suppression. Same constructs as leaky.cpp but every
// site carries an allow() pragma with a reason. Include directives consume
// their trailing text, so include suppressions must use the line-above form.
// mempart-lint: allow(simd-guard) fixture exercises the line-above form on a directive
#include <immintrin.h>
#include <cstdint>

namespace fixture {

std::int64_t guarded_sum(const std::int64_t* data) {
  // mempart-lint: allow(simd-guard) fixture exercises line-above suppression
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
  return _mm256_extract_epi64(acc, 0);  // mempart-lint: allow(simd-guard) fixture exercises trailing suppression
}

}  // namespace fixture

// Tally: 0 findings.
