// Fixture: the one file allowed to touch vendor intrinsics. The simd-guard
// rule exempts any path ending in common/simd.h, so these includes and
// identifiers must produce zero findings without any pragma.
#pragma once
#include <immintrin.h>
#include <emmintrin.h>

namespace fixture {

inline long long abstraction_probe(const long long* data) {
  __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data));
  return _mm_cvtsi128_si64(v);
}

}  // namespace fixture

// Tally: 0 findings (path-exempt).
