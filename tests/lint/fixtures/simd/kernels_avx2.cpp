// Fixture: the I64x4 wide-lane restriction exempts *_avx2.cpp units —
// they are the translation units compiled with -mavx2, so instantiating
// the 4-lane wrapper there is exactly what the dispatch design intends.
#include <cstdint>

namespace fixture {

template <typename Lane>
std::int64_t first_lane(const std::int64_t* data);

std::int64_t avx2_sum(const std::int64_t* data) {
  return first_lane<mempart::simd::I64x4>(data);
}

}  // namespace fixture

// Tally: 0 findings.
