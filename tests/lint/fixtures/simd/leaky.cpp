// Fixture: simd-guard violations. Two intrinsic-header includes plus two
// lines using vendor intrinsic identifiers, all outside common/simd.h.
// Lives outside core/ and pattern/ so raw-arith must stay silent.
#include <immintrin.h>
#include <emmintrin.h>
#include <cstdint>

namespace fixture {

std::int64_t leaky_sum(const std::int64_t* data) {
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
  return _mm256_extract_epi64(acc, 0);
}

}  // namespace fixture


namespace fixture {

// The wide lane wrapper outside an _avx2.cpp unit is its own finding.
template <typename Lane>
std::int64_t first_lane(const std::int64_t* data);
std::int64_t wide_sum(const std::int64_t* data) {
  return first_lane<mempart::simd::I64x4>(data);
}

}  // namespace fixture

// Tally: 5 simd-guard (2 includes + 2 intrinsic-identifier lines — multiple
// intrinsics on one line collapse to a single finding — + 1 I64x4 use
// outside an _avx2.cpp unit).
