// Fixture: mutex members whose guarded data is not annotated.
#pragma once
#include <mutex>
#include <vector>

namespace fixture {

class Mutex;  // stands in for mempart::Mutex in this fixture

class UnguardedWrapper {
 public:
  void push(int v);

 private:
  std::mutex mutex_;  // finding 1: no MEMPART_GUARDED_BY(mutex_) anywhere
  std::vector<int> values_;
};

struct UnguardedPlain {
  Mutex lock;  // finding 2: repo Mutex type, same rule
  int counter = 0;
};

}  // namespace fixture

// Tally: 2 mutex-guard findings.
