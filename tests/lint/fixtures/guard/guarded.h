// Fixture: correctly annotated mutexes — zero findings. Includes a
// reference member (MutexLock-style), which is not a mutex declaration.
#pragma once
#include <mutex>
#include <vector>

#define MEMPART_GUARDED_BY(x)
#define MEMPART_PT_GUARDED_BY(x)

namespace fixture {

class Mutex;

class GuardedWrapper {
 public:
  void push(int v);

 private:
  std::mutex mutex_;
  std::vector<int> values_ MEMPART_GUARDED_BY(mutex_);
};

class TwoMutexes {
 private:
  Mutex a_;
  Mutex b_;
  int x_ MEMPART_GUARDED_BY(a_);
  int* y_ MEMPART_PT_GUARDED_BY(b_);
};

class LockHolder {
 public:
  explicit LockHolder(Mutex& m) : mutex_(m) {}

 private:
  Mutex& mutex_;  // a reference, not an owned mutex — no guard required
};

}  // namespace fixture
