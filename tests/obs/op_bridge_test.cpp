// Regression guard for the OpScope -> metrics bridge: turning the
// observability layer on must not change the Table 1 op-count measurements
// themselves, and the bridged counters must agree with the tallies.
#include <gtest/gtest.h>

#include "baseline/ltb.h"
#include "core/partitioner.h"
#include "obs/metrics.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

class ObsState {
 public:
  ObsState() = default;
  ~ObsState() {
    obs::enable(false);
    obs::TraceLog::instance().clear();
    obs::Registry::instance().clear();
  }
};

TEST(OpBridge, SolverOpCountsIdenticalWithObsOnAndOff) {
  const ObsState guard;
  for (const Pattern& pattern : patterns::table1_patterns()) {
    PartitionRequest req;
    req.pattern = pattern;

    obs::enable(false);
    const OpTally off = Partitioner::solve(req).ops;

    obs::enable(true);
    obs::TraceLog::instance().clear();
    obs::Registry::instance().clear();
    const OpTally on = Partitioner::solve(req).ops;

    EXPECT_EQ(on, off) << pattern.name()
                       << ": observability changed the measured op counts";
    EXPECT_GT(on.arithmetic(), 0) << pattern.name();
  }
}

TEST(OpBridge, SolveTallyReachesRegistryCounters) {
  const ObsState guard;
  obs::enable(true);
  obs::Registry::instance().clear();
  PartitionRequest req;
  req.pattern = patterns::log5x5();
  const PartitionSolution sol = Partitioner::solve(req);

  const obs::Registry& registry = obs::Registry::instance();
  EXPECT_EQ(registry.counter("solver.ops.add"), sol.ops.add);
  EXPECT_EQ(registry.counter("solver.ops.mul"), sol.ops.mul);
  EXPECT_EQ(registry.counter("solver.ops.div"), sol.ops.div);
  EXPECT_EQ(registry.counter("solver.ops.compare"), sol.ops.compare);
  EXPECT_EQ(registry.counter("partitioner.solves"), 1);
}

TEST(OpBridge, LtbOpCountsIdenticalWithObsOnAndOff) {
  const ObsState guard;
  const Pattern pattern = patterns::log5x5();

  obs::enable(false);
  const baseline::LtbSolution off = baseline::ltb_solve(pattern);

  obs::enable(true);
  obs::TraceLog::instance().clear();
  obs::Registry::instance().clear();
  const baseline::LtbSolution on = baseline::ltb_solve(pattern);

  EXPECT_EQ(on.ops, off.ops);
  EXPECT_EQ(on.num_banks, off.num_banks);
  EXPECT_EQ(on.vectors_tried, off.vectors_tried);

  const obs::Registry& registry = obs::Registry::instance();
  EXPECT_EQ(registry.counter("ltb.ops.add"), on.ops.add);
  EXPECT_EQ(registry.counter("ltb.vectors_tried"), on.vectors_tried);
}

TEST(OpBridge, SolveProducesNestedTrace) {
  const ObsState guard;
  obs::enable(true);
  obs::TraceLog::instance().clear();
  PartitionRequest req;
  req.pattern = patterns::canny5x5();
  req.array_shape = NdShape({64, 64});
  (void)Partitioner::solve(req);

  bool saw_solve = false;
  bool saw_search = false;
  bool saw_mapping = false;
  for (const obs::TraceEvent& event : obs::TraceLog::instance().events()) {
    if (event.name == "partitioner.solve") {
      saw_solve = true;
      EXPECT_EQ(event.depth, 0);
    }
    if (event.name == "bank_search.minimize") {
      saw_search = true;
      EXPECT_GE(event.depth, 1);
    }
    if (event.name == "partitioner.mapping") saw_mapping = true;
  }
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_mapping);
}

}  // namespace
}  // namespace mempart
