#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::obs {
namespace {

using mempart::testing::JsonParser;
using mempart::testing::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight_clear();
    set_flight_capacity(64);
  }
  void TearDown() override {
    flight_clear();
    set_flight_capacity(kDefaultFlightCapacity);
  }
};

TEST_F(FlightRecorderTest, RecordsNotesWithNamesAndValues) {
  flight_note("setup", 1);
  flight_note("loop", 2);
  flight_note("teardown", 3);
  const std::vector<FlightEvent> events = flight_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "setup");
  EXPECT_EQ(events[0].value, 1);
  EXPECT_EQ(events[0].kind, FlightKind::kNote);
  EXPECT_EQ(events[2].name, "teardown");
  EXPECT_EQ(events[2].value, 3);
  // Per-thread sequence numbers are dense and 1-based.
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[2].seq, 3u);
  // Timestamps never run backwards within a thread.
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  EXPECT_LE(events[1].t_ns, events[2].t_ns);
}

TEST_F(FlightRecorderTest, WraparoundKeepsTheLastCapacityEvents) {
  set_flight_capacity(8);
  for (int i = 1; i <= 20; ++i) flight_note("event", i);
  const std::vector<FlightEvent> events = flight_events();
  ASSERT_EQ(events.size(), 8u);
  // The ring retains exactly the newest 8 of the 20 records, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].value, static_cast<std::int64_t>(13 + i));
    EXPECT_EQ(events[i].seq, 13 + i);
  }
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsEverything) {
  set_flight_capacity(0);
  EXPECT_FALSE(flight_enabled());
  flight_note("dropped", 1);
  EXPECT_TRUE(flight_events().empty());
}

TEST_F(FlightRecorderTest, QuietScopeSuppressesDetailEvents) {
  flight_note("narrative.before", 1);
  {
    const FlightQuietScope quiet;
    EXPECT_TRUE(flight_quiet());
    // Spans, counters, and notes are all detail inside the scope.
    { Span span("detail.span"); }
    count("detail.counter", 3);
    flight_note("detail.note", 2);
    {
      const FlightQuietScope nested;  // nests without unlocking early
      flight_note("detail.nested", 4);
    }
    EXPECT_TRUE(flight_quiet());
  }
  EXPECT_FALSE(flight_quiet());
  flight_note("narrative.after", 5);
  const std::vector<FlightEvent> events = flight_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "narrative.before");
  EXPECT_EQ(events[1].name, "narrative.after");
}

TEST_F(FlightRecorderTest, SpansRecordBeginEndEvenWithTracingOff) {
  set_tracing_enabled(false);
  { Span span("flight.only.span"); }
  const std::vector<FlightEvent> events = flight_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightKind::kSpanBegin);
  EXPECT_EQ(events[0].name, "flight.only.span");
  EXPECT_EQ(events[1].kind, FlightKind::kSpanEnd);
}

TEST_F(FlightRecorderTest, DumpJsonIsChromeTraceCompatible) {
  {
    Span span("dump.span");
    flight_note("dump.note", 42);
  }
  count("dump.counter", 5);  // counters feed the recorder unconditionally
  const JsonValue root = JsonParser::parse(flight_dump_json());
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.items.size(), 4u);
  // Span begin, note, span end, counter — in recording order.
  EXPECT_EQ(events.items[0].at("ph").text, "B");
  EXPECT_EQ(events.items[0].at("name").text, "dump.span");
  EXPECT_EQ(events.items[1].at("ph").text, "i");
  EXPECT_DOUBLE_EQ(events.items[1].at("args").at("value").number, 42.0);
  EXPECT_EQ(events.items[2].at("ph").text, "E");
  EXPECT_EQ(events.items[3].at("ph").text, "C");
  EXPECT_DOUBLE_EQ(events.items[3].at("args").at("delta").number, 5.0);
}

TEST_F(FlightRecorderTest, DumpToFileRoundTrips) {
  flight_note("persisted", 9);
  const std::string path =
      ::testing::TempDir() + "mempart_flight_roundtrip.json";
  std::remove(path.c_str());
  ASSERT_TRUE(flight_dump_to_file(path));
  const JsonValue root = JsonParser::parse(read_file(path));
  ASSERT_EQ(root.at("traceEvents").items.size(), 1u);
  EXPECT_EQ(root.at("traceEvents").items[0].at("name").text, "persisted");
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, DumpToFileFailsGracefully) {
  EXPECT_FALSE(flight_dump_to_file("/nonexistent-dir/flight.json"));
}

TEST_F(FlightRecorderTest, DumpPathHonoursOverride) {
  set_flight_dump_path("/tmp/custom_flight.json");
  EXPECT_EQ(flight_dump_path(), "/tmp/custom_flight.json");
  // flight_clear() in TearDown resets the override with the rest of the
  // state; the default path is pid-derived.
}

TEST_F(FlightRecorderTest, EachThreadGetsItsOwnRing) {
  set_flight_capacity(4);
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 10; ++i) flight_note("per.thread", i);
    });
  }
  for (std::thread& t : threads) t.join();
  // Each thread overflowed its own 4-slot ring: 3 * 4 survivors.
  const std::vector<FlightEvent> events = flight_events();
  EXPECT_EQ(events.size(), 12u);
}

// Writers race a dumper; under TSan this pins the seqlock protocol (the
// reader either sees a coherent slot or skips it — never a torn mix).
TEST_F(FlightRecorderTest, ConcurrentRecordAndDump) {
  set_flight_capacity(32);
  std::vector<std::thread> threads;
  threads.reserve(2);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5000; ++i) flight_note("race.note", i);
    });
  }
  for (int i = 0; i < 100; ++i) {
    for (const FlightEvent& event : flight_events()) {
      // A surviving slot must be fully coherent.
      EXPECT_EQ(event.name, "race.note");
      EXPECT_GE(event.value, 0);
      EXPECT_LT(event.value, 5000);
    }
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(flight_events().size(), 64u);  // two full 32-slot rings
}

using FlightRecorderDeathTest = FlightRecorderTest;

TEST_F(FlightRecorderDeathTest, CrashHandlerWritesReadableDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "mempart_flight_death.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        set_flight_capacity(32);
        set_flight_dump_path(path);
        install_flight_crash_handler();
        flight_note("before.crash", 7);
        std::raise(SIGSEGV);
      },
      "");
  // The handler in the dying child wrote its last events before re-raising.
  const std::string dumped = read_file(path);
  ASSERT_FALSE(dumped.empty());
  const JsonValue root = JsonParser::parse(dumped);
  ASSERT_GE(root.at("traceEvents").items.size(), 1u);
  bool found = false;
  for (const JsonValue& event : root.at("traceEvents").items) {
    if (event.at("name").text == "before.crash") found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mempart::obs
