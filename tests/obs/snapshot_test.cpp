#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/errors.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    Registry::instance().clear();
  }
  void TearDown() override {
    Registry::instance().clear();
    set_metrics_enabled(false);
  }
};

TEST_F(SnapshotTest, OpenMetricsRendersEveryMetricFamily) {
  count("solver.solves", 3);
  gauge("cache.hits", 41.0);
  observe("delta", 1.5, {1.0, 2.0});
  record_latency("solve.ns", 100);
  record_latency("solve.ns", 300);
  const std::string text = openmetrics_text();
  EXPECT_NE(text.find("# TYPE mempart_solver_solves counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("mempart_solver_solves_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mempart_cache_hits gauge\n"), std::string::npos);
  EXPECT_NE(text.find("mempart_cache_hits 41\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mempart_delta histogram\n"), std::string::npos);
  EXPECT_NE(text.find("mempart_delta_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mempart_delta_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mempart_solve_ns summary\n"), std::string::npos);
  EXPECT_NE(text.find("mempart_solve_ns{quantile=\"0.5\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("mempart_solve_ns_count 2\n"), std::string::npos);
  // The exposition terminator must be the final line.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST_F(SnapshotTest, OpenMetricsRoundTripsThroughTheParser) {
  count("solver.solves", 7);
  gauge("cache.hit_rate", 0.875);
  record_latency("solve.ns", 50);
  const MetricSample sample = parse_openmetrics(openmetrics_text());
  EXPECT_DOUBLE_EQ(sample.at("mempart_solver_solves_total"), 7.0);
  EXPECT_DOUBLE_EQ(sample.at("mempart_cache_hit_rate"), 0.875);
  EXPECT_DOUBLE_EQ(sample.at("mempart_solve_ns{quantile=\"0.5\"}"), 50.0);
  EXPECT_DOUBLE_EQ(sample.at("mempart_solve_ns_count"), 1.0);
}

TEST_F(SnapshotTest, ParserEnforcesTheLineGrammar) {
  // Well-formed minimal exposition.
  EXPECT_NO_THROW(parse_openmetrics("# TYPE a counter\na_total 1\n# EOF\n"));
  // Missing the terminator.
  EXPECT_THROW(parse_openmetrics("a_total 1\n"), InvalidArgument);
  // Content after the terminator.
  EXPECT_THROW(parse_openmetrics("# EOF\na 1\n"), InvalidArgument);
  // Empty lines are not part of the format.
  EXPECT_THROW(parse_openmetrics("\n# EOF\n"), InvalidArgument);
  // Metric names must not start with a digit.
  EXPECT_THROW(parse_openmetrics("9lives 1\n# EOF\n"), InvalidArgument);
  // Values must parse as floats.
  EXPECT_THROW(parse_openmetrics("a one\n# EOF\n"), InvalidArgument);
  // Unterminated label set.
  EXPECT_THROW(parse_openmetrics("a{le=\"1\" 2\n# EOF\n"), InvalidArgument);
  // Unknown TYPE keyword.
  EXPECT_THROW(parse_openmetrics("# TYPE a flavour\na 1\n# EOF\n"),
               InvalidArgument);
  // Special float values are accepted.
  const MetricSample inf = parse_openmetrics("a +Inf\n# EOF\n");
  EXPECT_TRUE(std::isinf(inf.at("a")));
}

TEST_F(SnapshotTest, NdjsonSampleRoundTrips) {
  count("solver.solves", 5);
  gauge("cache.entries", 12.0);
  record_latency("solve.ns", 64);
  record_latency("solve.ns", 256);
  const std::string line = ndjson_sample();
  // One complete object per line, newline-terminated.
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  const MetricSample sample = last_ndjson_sample(line);
  EXPECT_DOUBLE_EQ(sample.at("counters.solver.solves"), 5.0);
  EXPECT_DOUBLE_EQ(sample.at("gauges.cache.entries"), 12.0);
  EXPECT_DOUBLE_EQ(sample.at("latency.solve.ns.count"), 2.0);
  EXPECT_DOUBLE_EQ(sample.at("latency.solve.ns.min"), 64.0);
  EXPECT_DOUBLE_EQ(sample.at("latency.solve.ns.max"), 256.0);
  EXPECT_GT(sample.at("latency.solve.ns.p99"), 0.0);
  EXPECT_GT(sample.at("ts_ms"), 0.0);
}

TEST_F(SnapshotTest, LastNdjsonSampleTakesTheNewestLine) {
  count("ticks", 1);
  const std::string first = ndjson_sample();
  count("ticks", 1);
  const std::string second = ndjson_sample();
  const MetricSample sample = last_ndjson_sample(first + second);
  EXPECT_DOUBLE_EQ(sample.at("counters.ticks"), 2.0);
}

TEST_F(SnapshotTest, LastNdjsonSampleRejectsGarbage) {
  EXPECT_THROW(last_ndjson_sample(""), InvalidArgument);
  EXPECT_THROW(last_ndjson_sample("not json\n"), InvalidArgument);
  EXPECT_THROW(last_ndjson_sample("{\"unterminated\": 1\n"), InvalidArgument);
}

TEST_F(SnapshotTest, SnapshotterWritesBothFormatsOnStop) {
  const std::string om_path = ::testing::TempDir() + "snap_stop.om";
  const std::string nd_path = ::testing::TempDir() + "snap_stop.ndjson";
  std::remove(om_path.c_str());
  std::remove(nd_path.c_str());
  count("work.items", 9);
  SnapshotOptions options;
  options.openmetrics_path = om_path;
  options.ndjson_path = nd_path;
  options.interval = std::chrono::hours(1);  // only the final tick fires
  {
    Snapshotter snapshotter(options);
    snapshotter.start();
    // Destruction stops the thread and takes the final snapshot.
  }
  const MetricSample om = parse_openmetrics(read_file(om_path));
  EXPECT_DOUBLE_EQ(om.at("mempart_work_items_total"), 9.0);
  const MetricSample nd = last_ndjson_sample(read_file(nd_path));
  EXPECT_DOUBLE_EQ(nd.at("counters.work.items"), 9.0);
  std::remove(om_path.c_str());
  std::remove(nd_path.c_str());
}

TEST_F(SnapshotTest, SnapshotterTicksPeriodicallyAndAppends) {
  const std::string nd_path = ::testing::TempDir() + "snap_ticks.ndjson";
  std::remove(nd_path.c_str());
  SnapshotOptions options;
  options.ndjson_path = nd_path;
  options.interval = std::chrono::milliseconds(5);
  int callbacks = 0;
  options.before_snapshot = [&callbacks] { ++callbacks; };
  Snapshotter snapshotter(options);
  snapshotter.start();
  // Wait for at least two periodic ticks (plus the final one at stop).
  while (snapshotter.ticks() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  snapshotter.stop();
  const Count ticks = snapshotter.ticks();
  EXPECT_GE(ticks, 3);
  EXPECT_EQ(callbacks, static_cast<int>(ticks));
  // Every tick appended one parsable NDJSON line.
  const std::string series = read_file(nd_path);
  EXPECT_EQ(static_cast<Count>(std::count(series.begin(), series.end(), '\n')),
            ticks);
  EXPECT_NO_THROW(last_ndjson_sample(series));
  std::remove(nd_path.c_str());
}

TEST_F(SnapshotTest, SnapshotterWithoutPathsIsInert) {
  Snapshotter snapshotter(SnapshotOptions{});
  snapshotter.start();
  snapshotter.stop();
  EXPECT_EQ(snapshotter.ticks(), 0);
}

TEST_F(SnapshotTest, StopIsIdempotent) {
  const std::string nd_path = ::testing::TempDir() + "snap_idem.ndjson";
  std::remove(nd_path.c_str());
  SnapshotOptions options;
  options.ndjson_path = nd_path;
  options.interval = std::chrono::hours(1);
  Snapshotter snapshotter(options);
  snapshotter.start();
  snapshotter.stop();
  const Count after_first = snapshotter.ticks();
  snapshotter.stop();
  EXPECT_EQ(snapshotter.ticks(), after_first);
  std::remove(nd_path.c_str());
}

TEST_F(SnapshotTest, RepeatedStartStopCyclesRestartCleanly) {
  const std::string nd_path = ::testing::TempDir() + "snap_cycles.ndjson";
  std::remove(nd_path.c_str());
  SnapshotOptions options;
  options.ndjson_path = nd_path;
  options.interval = std::chrono::hours(1);
  Snapshotter snapshotter(options);
  for (int cycle = 1; cycle <= 5; ++cycle) {
    snapshotter.start();
    snapshotter.stop();
    // Each cycle contributes exactly its guaranteed final tick.
    EXPECT_EQ(snapshotter.ticks(), static_cast<Count>(cycle));
  }
  const std::string series = read_file(nd_path);
  EXPECT_EQ(std::count(series.begin(), series.end(), '\n'), 5);
  std::remove(nd_path.c_str());
}

// Regression for the stop() race `mempart serve` exposed: a signal-driven
// drain calling stop() while the session teardown destructor does the same.
// Exactly one of the racers must write the guaranteed final tick, and the
// thread join must not be entered twice (UB on std::thread). Run several
// rounds so TSan gets real interleavings.
TEST_F(SnapshotTest, ConcurrentStopsTakeTheFinalSnapshotExactlyOnce) {
  const std::string nd_path = ::testing::TempDir() + "snap_stop_race.ndjson";
  for (int round = 0; round < 20; ++round) {
    std::remove(nd_path.c_str());
    SnapshotOptions options;
    options.ndjson_path = nd_path;
    options.interval = std::chrono::hours(1);  // only the final tick fires
    Snapshotter snapshotter(options);
    snapshotter.start();
    std::vector<std::thread> stoppers;
    stoppers.reserve(4);
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&snapshotter] { snapshotter.stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    EXPECT_EQ(snapshotter.ticks(), 1) << "round " << round;
    const std::string series = read_file(nd_path);
    EXPECT_EQ(std::count(series.begin(), series.end(), '\n'), 1)
        << "round " << round;
  }
  std::remove(nd_path.c_str());
}

// Recorders race the snapshotter thread; under TSan this pins the
// histogram-record vs registry-export interleaving end to end.
TEST_F(SnapshotTest, ConcurrentRecordersWhileSnapshotting) {
  const std::string om_path = ::testing::TempDir() + "snap_race.om";
  std::remove(om_path.c_str());
  SnapshotOptions options;
  options.openmetrics_path = om_path;
  options.interval = std::chrono::milliseconds(1);
  Snapshotter snapshotter(options);
  snapshotter.start();
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 2000; ++i) {
        record_latency("race.ns", i);
        count("race.count");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  snapshotter.stop();
  // The final snapshot (taken after the joins) sees every record.
  const MetricSample sample = parse_openmetrics(read_file(om_path));
  EXPECT_DOUBLE_EQ(sample.at("mempart_race_count_total"), 6000.0);
  EXPECT_DOUBLE_EQ(sample.at("mempart_race_ns_count"), 6000.0);
  std::remove(om_path.c_str());
}

}  // namespace
}  // namespace mempart::obs
