#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::obs {
namespace {

// Nearest-rank reference: the value the histogram's quantile() approximates.
std::int64_t reference_quantile(std::vector<std::int64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto count = static_cast<double>(values.size());
  auto rank = static_cast<size_t>(std::ceil(q * count));
  rank = std::max<size_t>(rank, 1);
  return values[std::min(rank, values.size()) - 1];
}

/// Worst-case relative quantization error of the bucket layout: octave
/// buckets span 1/(kSubBucketCount/2) of their lower bound.
constexpr double kMaxRelativeError =
    2.0 / static_cast<double>(LatencyHistogram::kSubBucketCount);

TEST(LatencyHistogramTest, UnitBucketsAreExact) {
  for (std::int64_t v = 0; v < LatencyHistogram::kSubBucketCount; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::bucket_upper_bound(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketIndexPins) {
  // First octave bucket: values 64..65 share index 64 (width 2).
  EXPECT_EQ(LatencyHistogram::bucket_index(64), 64);
  EXPECT_EQ(LatencyHistogram::bucket_index(65), 64);
  EXPECT_EQ(LatencyHistogram::bucket_index(66), 65);
  EXPECT_EQ(LatencyHistogram::bucket_index(127), 95);
  // Next octave: width doubles to 4.
  EXPECT_EQ(LatencyHistogram::bucket_index(128), 96);
  EXPECT_EQ(LatencyHistogram::bucket_index(131), 96);
  EXPECT_EQ(LatencyHistogram::bucket_index(132), 97);
  // Negative values clamp to the zero bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(-5), 0);
  // The extremes stay inside the table.
  EXPECT_LT(LatencyHistogram::bucket_index(
                std::numeric_limits<std::int64_t>::max()),
            LatencyHistogram::kNumBuckets);
}

TEST(LatencyHistogramTest, UpperBoundsRoundTripAndIncrease) {
  std::int64_t previous = -1;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const std::int64_t bound = LatencyHistogram::bucket_upper_bound(i);
    EXPECT_GT(bound, previous) << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::bucket_index(bound), i) << "bucket " << i;
    previous = bound;
  }
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(
                LatencyHistogram::kNumBuckets - 1),
            std::numeric_limits<std::int64_t>::max());
}

TEST(LatencyHistogramTest, EmptySnapshotIsAllZero) {
  LatencyHistogram hist;
  const LatencySnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.p50(), 0);
  EXPECT_EQ(snap.quantile(0.999), 0);
}

TEST(LatencyHistogramTest, ExactStatsForSmallValues) {
  LatencyHistogram hist;
  for (const std::int64_t v : {5, 1, 9, 3, 7, 3, 60}) hist.record(v);
  const LatencySnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 7);
  EXPECT_EQ(snap.sum, 88);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 60);
  // Values below kSubBucketCount live in exact unit buckets, so every
  // quantile must equal the sorted-reference nearest-rank answer.
  const std::vector<std::int64_t> values{5, 1, 9, 3, 7, 3, 60};
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(snap.quantile(q), reference_quantile(values, q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MinAndMaxAreExactForLargeValues) {
  LatencyHistogram hist;
  hist.record(123456789);
  hist.record(987654321);
  hist.record(555555555);
  const LatencySnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.min, 123456789);
  EXPECT_EQ(snap.max, 987654321);
  // Quantiles clamp to the exact extremes.
  EXPECT_EQ(snap.quantile(0.0), 123456789);
  EXPECT_EQ(snap.quantile(1.0), 987654321);
}

TEST(LatencyHistogramTest, PercentilesMatchSortedReferenceWithinError) {
  LatencyHistogram hist;
  std::mt19937_64 rng(42);
  // Log-uniform draws cover several octaves, the layout's hard case.
  std::uniform_real_distribution<double> exponent(0.0, 20.0);
  std::vector<std::int64_t> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::int64_t>(std::exp2(exponent(rng)));
    values.push_back(v);
    hist.record(v);
  }
  const LatencySnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, 10000);
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const std::int64_t reference = reference_quantile(values, q);
    const std::int64_t reported = snap.quantile(q);
    // The report is the upper bound of the reference's bucket: never below
    // the true value, at most one bucket width (~3.1%) above it.
    EXPECT_GE(reported, reference) << "q=" << q;
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(reference) * (1.0 + kMaxRelativeError) + 1.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram hist;
  hist.record(10);
  hist.record(1000);
  hist.reset();
  const LatencySnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.p99(), 0);
}

// Recorders race a snapshotting reader; run under TSan this pins the
// lock-free record/snapshot protocol, and in any build the final counts
// must be exact.
TEST(LatencyHistogramTest, ConcurrentRecordAndSnapshot) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kRecords = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecords; ++i) {
        hist.record(static_cast<std::int64_t>(i % 1000) + t);
      }
    });
  }
  // Reader races the writers: every intermediate snapshot must be coherent
  // (count never exceeds the final total, sum consistent with count*max).
  for (int i = 0; i < 50; ++i) {
    const LatencySnapshot snap = hist.snapshot();
    EXPECT_LE(snap.count, static_cast<std::int64_t>(kThreads) * kRecords);
    EXPECT_GE(snap.count, 0);
  }
  for (std::thread& t : threads) t.join();
  const LatencySnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::int64_t>(kThreads) * kRecords);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 999 + kThreads - 1);
}

class LatencyTimerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    Registry::instance().clear();
  }
  void TearDown() override {
    Registry::instance().clear();
    set_metrics_enabled(false);
  }
};

TEST_F(LatencyTimerTest, RecordsElapsedNanoseconds) {
  {
    LatencyTimer timer("timed.op.ns");
    EXPECT_TRUE(timer.active());
  }
  const LatencyHistogram* hist =
      Registry::instance().find_latency("timed.op.ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1);
  EXPECT_GE(hist->snapshot().min, 0);
}

TEST_F(LatencyTimerTest, StopIsIdempotent) {
  LatencyTimer timer("timed.op.ns");
  timer.stop();
  timer.stop();
  const LatencyHistogram* hist =
      Registry::instance().find_latency("timed.op.ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1);
}

TEST_F(LatencyTimerTest, InertWhenMetricsDisabled) {
  set_metrics_enabled(false);
  {
    LatencyTimer timer("ignored.ns");
    EXPECT_FALSE(timer.active());
  }
  record_latency("ignored.ns", 123);
  set_metrics_enabled(true);
  EXPECT_EQ(Registry::instance().find_latency("ignored.ns"), nullptr);
}

TEST_F(LatencyTimerTest, RecordLatencyFeedsRegistry) {
  record_latency("manual.ns", 40);
  record_latency("manual.ns", 2000);
  const LatencyHistogram* hist = Registry::instance().find_latency("manual.ns");
  ASSERT_NE(hist, nullptr);
  const LatencySnapshot snap = hist->snapshot();
  EXPECT_EQ(snap.count, 2);
  EXPECT_EQ(snap.min, 40);
  EXPECT_EQ(snap.max, 2000);
}

TEST_F(LatencyTimerTest, RegistrySnapshotsAllLatencies) {
  record_latency("a.ns", 1);
  record_latency("b.ns", 2);
  const auto all = Registry::instance().latencies();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("a.ns").count, 1);
  EXPECT_EQ(all.at("b.ns").max, 2);
}

}  // namespace
}  // namespace mempart::obs
