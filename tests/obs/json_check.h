// Minimal JSON parser for validating the obs sinks' output in tests.
//
// Parses the full JSON grammar the sinks can emit (objects, arrays,
// strings with escapes, numbers, booleans, null) into a tiny DOM so tests
// can assert structure and round-trip values, without adding a JSON
// library dependency to the repo.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mempart::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    const auto it = members.find(key);
    if (it == members.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return members.find(key) != members.end();
  }
};

class JsonParser {
 public:
  /// Parses `text`, throwing std::runtime_error on any syntax error or
  /// trailing garbage — the test's validity oracle.
  static JsonValue parse(const std::string& text) {
    JsonParser parser(text);
    JsonValue value = parser.parse_value();
    parser.skip_ws();
    if (parser.pos_ != text.size()) {
      throw std::runtime_error("trailing garbage at " +
                               std::to_string(parser.pos_));
    }
    return value;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      value.members[key.text] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  JsonValue parse_string() {
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    expect('"');
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw std::runtime_error("bad \\u escape");
            }
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      }
      value.text += c;
    }
    ++pos_;
    return value;
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return value;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) {
      throw std::runtime_error("bad literal");
    }
    pos_ += 4;
    JsonValue value;
    value.kind = JsonValue::Kind::kNull;
    return value;
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw std::runtime_error("bad number at " + std::to_string(start));
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace mempart::testing
