#include "obs/trace.h"

#include <gtest/gtest.h>

#include <thread>

#include "json_check.h"
#include "obs/sinks.h"

namespace mempart::obs {
namespace {

using mempart::testing::JsonParser;
using mempart::testing::JsonValue;

/// Every test runs with a clean, enabled trace log and restores the
/// disabled default so other suites keep their zero-overhead path.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(true);
    TraceLog::instance().clear();
  }
  void TearDown() override {
    TraceLog::instance().clear();
    set_tracing_enabled(false);
  }
};

TEST_F(TraceTest, RecordsCompletedSpan) {
  {
    Span span("unit.work");
    span.arg("items", std::int64_t{3});
  }
  const std::vector<TraceEvent> events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_GE(events[0].duration_us, 0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "items");
  EXPECT_EQ(events[0].args[0].second, "3");
}

TEST_F(TraceTest, SpansNestByDepth) {
  {
    Span outer("outer");
    {
      Span inner("inner");
      { Span leaf("leaf"); }
    }
  }
  const std::vector<TraceEvent> events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 3u);
  // events() sorts by start time, so parents precede children.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "leaf");
  EXPECT_EQ(events[2].depth, 2);
  // Children are contained in their parent's interval.
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_LE(events[1].start_us + events[1].duration_us,
            events[0].start_us + events[0].duration_us);
}

TEST_F(TraceTest, DisabledSpanIsInert) {
  set_tracing_enabled(false);
  {
    Span span("ignored");
    span.arg("key", std::int64_t{1});
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(TraceLog::instance().size(), 0);
  set_tracing_enabled(true);
}

TEST_F(TraceTest, DisableMidwayKeepsSpanConsistent) {
  // A span opened while enabled must still close cleanly after a disable.
  {
    Span span("opened.enabled");
    set_tracing_enabled(false);
  }
  set_tracing_enabled(true);
  ASSERT_EQ(TraceLog::instance().size(), 1);
  { Span span("after"); }
  const std::vector<TraceEvent> events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].name, "after");
  EXPECT_EQ(events[1].depth, 0);  // depth counter was not corrupted
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  {
    Span span("solve");
    span.arg("pattern", std::string_view{"LoG \"quoted\""});
    span.arg("ratio", 0.5);
    { Span inner("search"); }
  }
  const std::string json = chrome_trace_json();
  const JsonValue root = JsonParser::parse(json);
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events.items.size(), 2u);
  for (const JsonValue& event : events.items) {
    EXPECT_EQ(event.at("ph").text, "X");
    EXPECT_EQ(event.at("cat").text, "mempart");
    EXPECT_GE(event.at("dur").number, 0.0);
    EXPECT_TRUE(event.has("ts"));
    EXPECT_TRUE(event.has("pid"));
    EXPECT_TRUE(event.has("tid"));
  }
  // events() ordering puts the parent span first on one thread.
  const JsonValue& solve = events.items[0];
  EXPECT_EQ(solve.at("name").text, "solve");
  EXPECT_EQ(solve.at("args").at("pattern").text, "LoG \"quoted\"");
  EXPECT_DOUBLE_EQ(solve.at("args").at("ratio").number, 0.5);
}

TEST_F(TraceTest, TextReportIndentsByDepth) {
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  const std::string report = trace_text_report();
  EXPECT_NE(report.find("thread "), std::string::npos);
  EXPECT_NE(report.find("  outer"), std::string::npos);
  EXPECT_NE(report.find("    inner"), std::string::npos);
}

TEST_F(TraceTest, ThreadsGetDistinctIds) {
  {
    Span main_span("main.work");
    std::thread worker([] {
      // Threads inherit the programmatic default set in SetUp().
      Span worker_span("worker.work");
    });
    worker.join();
  }
  const std::vector<TraceEvent> events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
}

TEST_F(TraceTest, ClearDropsEvents) {
  { Span span("temp"); }
  EXPECT_EQ(TraceLog::instance().size(), 1);
  TraceLog::instance().clear();
  EXPECT_EQ(TraceLog::instance().size(), 0);
  const JsonValue root = JsonParser::parse(chrome_trace_json());
  EXPECT_TRUE(root.at("traceEvents").items.empty());
}

}  // namespace
}  // namespace mempart::obs
