#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/errors.h"
#include "json_check.h"
#include "obs/sinks.h"
#include "obs/trace.h"

namespace mempart::obs {
namespace {

using mempart::testing::JsonParser;
using mempart::testing::JsonValue;

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    Registry::instance().clear();
  }
  void TearDown() override {
    Registry::instance().clear();
    set_metrics_enabled(false);
  }
};

TEST_F(MetricsTest, CountersAccumulate) {
  count("requests");
  count("requests", 4);
  count("errors", 1);
  EXPECT_EQ(Registry::instance().counter("requests"), 5);
  EXPECT_EQ(Registry::instance().counter("errors"), 1);
  EXPECT_EQ(Registry::instance().counter("unknown"), 0);
}

TEST_F(MetricsTest, GaugesHoldLastValue) {
  gauge("load", 0.25);
  gauge("load", 0.75);
  EXPECT_DOUBLE_EQ(Registry::instance().gauge("load"), 0.75);
}

TEST_F(MetricsTest, DisabledHelpersAreNoOps) {
  set_metrics_enabled(false);
  count("requests", 100);
  gauge("load", 1.0);
  observe("latency", 5.0, {1.0, 10.0});
  set_metrics_enabled(true);
  EXPECT_EQ(Registry::instance().counter("requests"), 0);
  EXPECT_EQ(Registry::instance().find_histogram("latency"), nullptr);
}

TEST_F(MetricsTest, HistogramBucketing) {
  // Buckets: <=1, <=4, <=16, overflow.
  observe("h", 0.0, {1.0, 4.0, 16.0});
  observe("h", 1.0, {1.0, 4.0, 16.0});  // boundary lands in its bucket
  observe("h", 3.0, {1.0, 4.0, 16.0});
  observe("h", 16.0, {1.0, 4.0, 16.0});
  observe("h", 100.0, {1.0, 4.0, 16.0});
  const Histogram* hist = Registry::instance().find_histogram("h");
  ASSERT_NE(hist, nullptr);
  const Histogram::Snapshot snap = hist->snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2);  // 0, 1
  EXPECT_EQ(snap.buckets[1], 1);  // 3
  EXPECT_EQ(snap.buckets[2], 1);  // 16
  EXPECT_EQ(snap.buckets[3], 1);  // 100 overflow
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 120.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

TEST_F(MetricsTest, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({4.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);
}

TEST_F(MetricsTest, CountersMergeAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIncrements; ++i) {
        count("merged");
        observe("merged.hist", static_cast<double>(i % 8), pow2_bounds(3));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Registry::instance().counter("merged"), kThreads * kIncrements);
  const Histogram* hist = Registry::instance().find_histogram("merged.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->snapshot().count, kThreads * kIncrements);
}

TEST_F(MetricsTest, RecordOpTallyBridgesCounters) {
  OpTally tally{.add = 10, .mul = 20, .div = 30, .compare = 40};
  record_op_tally(tally);
  record_op_tally(tally, "ltb.ops");
  EXPECT_EQ(Registry::instance().counter("solver.ops.add"), 10);
  EXPECT_EQ(Registry::instance().counter("solver.ops.mul"), 20);
  EXPECT_EQ(Registry::instance().counter("solver.ops.div"), 30);
  EXPECT_EQ(Registry::instance().counter("solver.ops.compare"), 40);
  EXPECT_EQ(Registry::instance().counter("ltb.ops.add"), 10);
}

TEST_F(MetricsTest, JsonRoundTrip) {
  count("solver.solves", 3);
  gauge("bank.load.mean", 12.5);
  observe("delta", 0.0, {1.0, 2.0});
  observe("delta", 5.0, {1.0, 2.0});
  const std::string json = metrics_json();
  const JsonValue root = JsonParser::parse(json);

  EXPECT_DOUBLE_EQ(root.at("counters").at("solver.solves").number, 3.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("bank.load.mean").number, 12.5);
  const JsonValue& hist = root.at("histograms").at("delta");
  ASSERT_EQ(hist.at("upper_bounds").items.size(), 2u);
  EXPECT_DOUBLE_EQ(hist.at("upper_bounds").items[0].number, 1.0);
  ASSERT_EQ(hist.at("buckets").items.size(), 3u);
  EXPECT_DOUBLE_EQ(hist.at("buckets").items[0].number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").items[2].number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 5.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 0.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 5.0);
}

TEST_F(MetricsTest, EmptyRegistryExportsValidJson) {
  const JsonValue root = JsonParser::parse(metrics_json());
  EXPECT_TRUE(root.at("counters").members.empty());
  EXPECT_TRUE(root.at("gauges").members.empty());
  EXPECT_TRUE(root.at("histograms").members.empty());
}

TEST_F(MetricsTest, Pow2Bounds) {
  const std::vector<double> bounds = pow2_bounds(4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

}  // namespace
}  // namespace mempart::obs
