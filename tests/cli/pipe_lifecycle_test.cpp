// Pipe-lifecycle regression for the CLI's NDJSON writers: `mempart batch`
// and `mempart serve` streaming to a downstream that closes early (the
// `mempart batch | head` shape) must exit with the dedicated broken-pipe
// code 3 — not crash on SIGPIPE, not report success — and still flush
// their telemetry snapshot on the way out.
//
// The real binary is spawned through /bin/sh; its path arrives as the
// MEMPART_CLI_BIN compile definition (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/snapshot.h"

namespace mempart {
namespace {

std::string shell(const std::string& cmd) {
  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return output;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), static_cast<int>(buffer.size()), pipe) !=
         nullptr) {
    output += buffer.data();
  }
  (void)pclose(pipe);
  return output;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Writes `lines` requests. The count must be large enough that the
/// response stream overflows the kernel pipe buffer (64 KiB on Linux):
/// only then is the writer guaranteed to block until the reader exits and
/// hit EPIPE — a smaller run can fit entirely in the buffer and finish
/// cleanly without the reader consuming a byte.
void write_requests(const std::string& path, int lines) {
  std::ofstream out(path);
  for (int i = 0; i < lines; ++i) {
    out << "{\"offsets\": [[0, 0], [0, " << (i % 40 + 1) << "], ["
        << (i % 7 + 1) << ", 0]]}\n";
  }
}

/// Runs `BIN <subcommand> < requests | head -n 2`, capturing the CLI's own
/// exit code (the pipeline's status would be head's) and stderr.
struct EarlyCloseResult {
  int exit_code = -1;
  std::string stderr_text;
};

EarlyCloseResult run_with_early_closing_reader(const std::string& subcommand,
                                               const std::string& extra_flags,
                                               const std::string& tag) {
  const std::string requests = temp_path("pipe_" + tag + ".ndjsonl");
  const std::string code_file = temp_path("pipe_" + tag + ".code");
  const std::string err_file = temp_path("pipe_" + tag + ".stderr");
  write_requests(requests, 3000);
  std::remove(code_file.c_str());
  const std::string cmd = "{ " MEMPART_CLI_BIN " " + subcommand + " " +
                          extra_flags + " < " + requests + " 2> " + err_file +
                          "; echo $? > " + code_file +
                          "; } | head -n 2 > /dev/null";
  (void)shell(cmd);
  EarlyCloseResult result;
  const std::string code = read_file(code_file);
  if (!code.empty()) result.exit_code = std::stoi(code);
  result.stderr_text = read_file(err_file);
  std::remove(requests.c_str());
  std::remove(code_file.c_str());
  std::remove(err_file.c_str());
  return result;
}

TEST(CliPipeLifecycle, BatchExitsThreeWhenTheReaderClosesEarly) {
  const std::string om_path = temp_path("pipe_batch.om");
  std::remove(om_path.c_str());
  const EarlyCloseResult r = run_with_early_closing_reader(
      "batch", "--openmetrics " + om_path, "batch");
  EXPECT_EQ(r.exit_code, 3) << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("pipe closed early"), std::string::npos)
      << r.stderr_text;
  // The telemetry snapshot was still flushed — and is well-formed.
  const std::string om = read_file(om_path);
  ASSERT_FALSE(om.empty());
  EXPECT_NO_THROW((void)obs::parse_openmetrics(om));
  std::remove(om_path.c_str());
}

TEST(CliPipeLifecycle, ServePipeModeExitsThreeWhenTheReaderClosesEarly) {
  const std::string om_path = temp_path("pipe_serve.om");
  std::remove(om_path.c_str());
  const EarlyCloseResult r = run_with_early_closing_reader(
      "serve", "--threads 1 --openmetrics " + om_path, "serve");
  EXPECT_EQ(r.exit_code, 3) << r.stderr_text;
  const std::string om = read_file(om_path);
  ASSERT_FALSE(om.empty());
  EXPECT_NO_THROW((void)obs::parse_openmetrics(om));
  // The final snapshot carries the serve.* accounting gauges.
  EXPECT_NE(om.find("mempart_serve_admitted"), std::string::npos);
  std::remove(om_path.c_str());
}

TEST(CliPipeLifecycle, BatchExitsZeroWhenTheReaderStays) {
  const std::string requests = temp_path("pipe_ok.ndjsonl");
  write_requests(requests, 5);
  const std::string out =
      shell(std::string(MEMPART_CLI_BIN) + " batch < " + requests +
            " 2> /dev/null; echo \"CODE=$?\"");
  EXPECT_NE(out.find("CODE=0"), std::string::npos) << out;
  std::remove(requests.c_str());
}

TEST(CliPipeLifecycle, RejectsABadEnvironmentAtStartup) {
  const std::string out =
      shell(std::string("MEMPART_THREADS=garbage " MEMPART_CLI_BIN
                        " solve 2>&1; echo \"CODE=$?\""));
  EXPECT_NE(out.find("CODE=1"), std::string::npos) << out;
  EXPECT_NE(out.find("MEMPART_THREADS"), std::string::npos) << out;
}

}  // namespace
}  // namespace mempart
