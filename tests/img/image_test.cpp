#include "img/image.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart::img {
namespace {

TEST(Image, ConstructionAndDefaults) {
  const Image im(NdShape({4, 5}));
  EXPECT_EQ(im.rank(), 2);
  EXPECT_EQ(im.size(), 20);
  EXPECT_EQ(im.at({3, 4}), 0);
}

TEST(Image, InitialValue) {
  const Image im(NdShape({2, 2}), 7);
  EXPECT_EQ(im.at({0, 0}), 7);
  EXPECT_EQ(im.at({1, 1}), 7);
}

TEST(Image, SetAndGet) {
  Image im(NdShape({3, 3}));
  im.set({1, 2}, -42);
  EXPECT_EQ(im.at({1, 2}), -42);
  EXPECT_THROW((void)im.at({3, 0}), InvalidArgument);
  EXPECT_THROW((void)im.set({0, 3}, 1), InvalidArgument);
}

TEST(Image, FillFrom) {
  Image im(NdShape({2, 3}));
  im.fill_from([](const NdIndex& x) { return x[0] * 10 + x[1]; });
  EXPECT_EQ(im.at({0, 0}), 0);
  EXPECT_EQ(im.at({1, 2}), 12);
}

TEST(Image, MinMax) {
  Image im(NdShape({2, 2}));
  im.set({0, 0}, -5);
  im.set({1, 1}, 9);
  EXPECT_EQ(im.min_value(), -5);
  EXPECT_EQ(im.max_value(), 9);
}

TEST(Image, EqualityIsValueBased) {
  Image a(NdShape({2, 2}));
  Image b(NdShape({2, 2}));
  EXPECT_EQ(a, b);
  b.set({0, 1}, 1);
  EXPECT_NE(a, b);
}

TEST(Image, Rank3) {
  Image v(NdShape({2, 3, 4}));
  v.set({1, 2, 3}, 11);
  EXPECT_EQ(v.at({1, 2, 3}), 11);
  EXPECT_EQ(v.size(), 24);
}

}  // namespace
}  // namespace mempart::img
