#include "img/pgm_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/errors.h"
#include "img/synthetic.h"

namespace mempart::img {
namespace {

TEST(PgmIO, RoundTripPreservesPixels) {
  const Image original = noise(NdShape({7, 9}), 21);
  const Image parsed = from_pgm(to_pgm(original));
  EXPECT_EQ(parsed, original);
}

TEST(PgmIO, HeaderLayout) {
  Image im(NdShape({2, 3}));
  im.set({1, 2}, 200);
  const std::string pgm = to_pgm(im);
  EXPECT_EQ(pgm.rfind("P2", 0), 0u);                    // magic first
  EXPECT_NE(pgm.find("3 2"), std::string::npos);        // width height
  EXPECT_NE(pgm.find("255"), std::string::npos);        // maxval
}

TEST(PgmIO, ClampsOutOfRangeSamples) {
  Image im(NdShape({1, 2}));
  im.set({0, 0}, -50);
  im.set({0, 1}, 999);
  const Image parsed = from_pgm(to_pgm(im));
  EXPECT_EQ(parsed.at({0, 0}), 0);
  EXPECT_EQ(parsed.at({0, 1}), 255);
}

TEST(PgmIO, CustomMaxval) {
  Image im(NdShape({1, 1}));
  im.set({0, 0}, 100);
  const std::string pgm = to_pgm(im, 100);
  EXPECT_NE(pgm.find("100"), std::string::npos);
  EXPECT_EQ(from_pgm(pgm).at({0, 0}), 100);
}

TEST(PgmIO, ParsesCommentsAndWhitespace) {
  const Image parsed = from_pgm(
      "P2\n# a comment\n  2 # inline-ish\n 2\n255\n# data next\n"
      "1 2\n3   4\n");
  EXPECT_EQ(parsed.shape(), NdShape({2, 2}));
  EXPECT_EQ(parsed.at({0, 0}), 1);
  EXPECT_EQ(parsed.at({1, 1}), 4);
}

TEST(PgmIO, RejectsMalformedInput) {
  EXPECT_THROW((void)from_pgm(""), InvalidArgument);
  EXPECT_THROW((void)from_pgm("P5\n1 1\n255\n0\n"), InvalidArgument);
  EXPECT_THROW((void)from_pgm("P2\n2 2\n255\n1 2 3\n"), InvalidArgument);
  EXPECT_THROW((void)from_pgm("P2\n0 2\n255\n"), InvalidArgument);
  EXPECT_THROW((void)from_pgm("P2\n1 1\n255\n300\n"), InvalidArgument);
}

TEST(PgmIO, RejectsNon2D) {
  const Image volume(NdShape({2, 2, 2}));
  EXPECT_THROW((void)to_pgm(volume), InvalidArgument);
}

TEST(PgmIO, FileRoundTrip) {
  const Image original = gradient(NdShape({5, 6}));
  const std::string path = "/tmp/mempart_pgm_io_test.pgm";
  save_pgm(original, path);
  EXPECT_EQ(load_pgm(path), original);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_pgm("/nonexistent/dir/x.pgm"), InvalidArgument);
}

TEST(PgmIO, NormalizeForDisplayMapsRangeTo255) {
  Image im(NdShape({1, 3}));
  im.set({0, 0}, -100);
  im.set({0, 1}, 0);
  im.set({0, 2}, 100);
  const Image norm = normalize_for_display(im);
  EXPECT_EQ(norm.at({0, 0}), 0);
  EXPECT_EQ(norm.at({0, 1}), 127);
  EXPECT_EQ(norm.at({0, 2}), 255);
  // Constant image maps to all-zero without dividing by zero.
  const Image flat(NdShape({2, 2}), 42);
  EXPECT_EQ(normalize_for_display(flat).max_value(), 0);
}

}  // namespace
}  // namespace mempart::img
