#include "img/convolve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "common/errors.h"
#include "img/synthetic.h"
#include "pattern/pattern_library.h"

namespace mempart::img {
namespace {

TEST(Convolve, IdentityKernel) {
  const Kernel identity({KernelTap{{0, 0}, 1.0}}, "id");
  const Image in = noise(NdShape({6, 7}), 3);
  EXPECT_EQ(convolve(in, identity), in);
}

TEST(Convolve, ConstantImageUnderLoGIsZero) {
  // LoG is zero-sum, so any flat region must respond 0.
  const Image flat(NdShape({10, 10}), 77);
  const Image out = convolve(flat, patterns::log5x5_kernel());
  for (Sample s : out.data()) EXPECT_EQ(s, 0);
}

TEST(Convolve, HandComputedThreeByThree) {
  // 3x3 input, sum kernel over a 2x2 support.
  Image in(NdShape({3, 3}));
  in.fill_from([](const NdIndex& x) { return x[0] * 3 + x[1] + 1; });  // 1..9
  const Kernel sum2x2 = Kernel::from_matrix_2d({{1, 1}, {1, 1}});
  const Image out = convolve(in, sum2x2);
  // Valid positions: (0,0),(0,1),(1,0),(1,1).
  EXPECT_EQ(out.at({0, 0}), 1 + 2 + 4 + 5);
  EXPECT_EQ(out.at({0, 1}), 2 + 3 + 5 + 6);
  EXPECT_EQ(out.at({1, 0}), 4 + 5 + 7 + 8);
  EXPECT_EQ(out.at({1, 1}), 5 + 6 + 8 + 9);
  // Border (unreachable) positions stay 0.
  EXPECT_EQ(out.at({2, 2}), 0);
  EXPECT_EQ(out.at({0, 2}), 0);
}

TEST(Convolve, FractionalWeightsRoundToNearest) {
  Image in(NdShape({1, 2}));
  in.set({0, 0}, 3);
  in.set({0, 1}, 4);
  const Kernel half = Kernel::from_matrix_2d({{0.5, 0.5}});
  const Image out = convolve(in, half);
  EXPECT_EQ(out.at({0, 0}), 4);  // 3.5 rounds to 4 (llround away from zero)
}

TEST(Convolve, GaussianPreservesFlatRegions) {
  const Image flat(NdShape({8, 8}), 100);
  const Image out = convolve(flat, patterns::gaussian3x3_kernel());
  // Interior: weights sum to 1 -> exactly 100.
  EXPECT_EQ(out.at({3, 3}), 100);
}

TEST(Convolve, StepEdgeGivesStrongLoGResponse) {
  Image in(NdShape({12, 12}), 0);
  in.fill_from([](const NdIndex& x) { return x[1] >= 6 ? 200 : 0; });
  const Image out = convolve(in, patterns::log5x5_kernel());
  Sample peak = 0;
  for (Sample s : out.data()) peak = std::max(peak, std::abs(s));
  EXPECT_GT(peak, 100);
}

TEST(Convolve, RejectsRankMismatch) {
  const Image in(NdShape({8, 8}));
  EXPECT_THROW((void)convolve(in, patterns::sobel3d_z_kernel()),
               InvalidArgument);
}

TEST(MedianFilter, RemovesImpulseNoise) {
  Image in(NdShape({9, 9}), 50);
  in.set({4, 4}, 255);  // single hot pixel
  const Image out = median_filter(in, patterns::box2d(3).translated({-1, -1}));
  EXPECT_EQ(out.at({4, 4}), 50);
}

TEST(MedianFilter, ConstantImageStaysConstantInterior) {
  const Image in(NdShape({7, 7}), 31);
  const Image out = median_filter(in, patterns::median7());
  // Check an interior position covered by the window.
  EXPECT_EQ(out.at({2, 2}), 31);
}

TEST(MedianFilter, RejectsRankMismatch) {
  const Image in(NdShape({8, 8}));
  EXPECT_THROW((void)median_filter(in, patterns::sobel3d()), InvalidArgument);
}

}  // namespace
}  // namespace mempart::img
