#include "img/synthetic.h"

#include <gtest/gtest.h>

namespace mempart::img {
namespace {

TEST(Synthetic, GradientMonotoneAlongDiagonal) {
  const Image g = gradient(NdShape({16, 16}));
  EXPECT_EQ(g.at({0, 0}), 0);
  EXPECT_EQ(g.at({15, 15}), 255);
  for (Coord i = 1; i < 16; ++i) {
    EXPECT_GE(g.at({i, i}), g.at({i - 1, i - 1}));
  }
}

TEST(Synthetic, GradientRange) {
  const Image g = gradient(NdShape({7, 9}));
  EXPECT_GE(g.min_value(), 0);
  EXPECT_LE(g.max_value(), 255);
}

TEST(Synthetic, CheckerboardAlternates) {
  const Image c = checkerboard(NdShape({8, 8}), 2);
  EXPECT_EQ(c.at({0, 0}), 0);
  EXPECT_EQ(c.at({0, 2}), 255);
  EXPECT_EQ(c.at({2, 0}), 255);
  EXPECT_EQ(c.at({2, 2}), 0);
}

TEST(Synthetic, NoiseDeterministicPerSeed) {
  const Image a = noise(NdShape({10, 10}), 5);
  const Image b = noise(NdShape({10, 10}), 5);
  const Image c = noise(NdShape({10, 10}), 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GE(a.min_value(), 0);
  EXPECT_LE(a.max_value(), 255);
}

TEST(Synthetic, EdgeSceneHasDiskAndRectangle) {
  const Image scene = edge_scene(64, 48, 1);
  // Disk centre is bright, rectangle interior dark, background mid-gray
  // (all +-3 noise).
  EXPECT_GT(scene.at({16, 12}), 230);                 // inside disk
  EXPECT_LT(scene.at({40, 30}), 40);                  // inside rectangle
  EXPECT_NEAR(static_cast<double>(scene.at({60, 5})), 128.0, 4.0);
}

TEST(Synthetic, BallVolumeBrightCore) {
  const Image v = ball_volume(12, 12, 12);
  EXPECT_EQ(v.at({6, 6, 6}), 200);
  EXPECT_EQ(v.at({0, 0, 0}), 16);
}

}  // namespace
}  // namespace mempart::img
