#include "img/morphology.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "img/synthetic.h"
#include "pattern/pattern_library.h"

namespace mempart::img {
namespace {

TEST(Morphology, ErodeDilateOnConstantAreIdentity) {
  const Image flat(NdShape({8, 8}), 77);
  const Pattern se = patterns::structure_element();
  EXPECT_EQ(erode(flat, se), flat);
  EXPECT_EQ(dilate(flat, se), flat);
  EXPECT_EQ(morphological_gradient(flat, se).max_value(), 0);
}

TEST(Morphology, ErodeTakesMinDilateTakesMax) {
  Image im(NdShape({5, 5}), 100);
  im.set({2, 2}, 10);
  const Pattern se = patterns::structure_element();
  // The low pixel spreads to its cross neighbourhood under erosion...
  const Image eroded = erode(im, se);
  EXPECT_EQ(eroded.at({2, 2}), 10);
  EXPECT_EQ(eroded.at({1, 2}), 10);
  EXPECT_EQ(eroded.at({2, 1}), 10);
  EXPECT_EQ(eroded.at({1, 1}), 100);  // diagonal not in the cross
  // ...and vanishes under dilation.
  const Image dilated = dilate(im, se);
  EXPECT_EQ(dilated.at({2, 2}), 100);
}

TEST(Morphology, OrderingInvariant) {
  // erode(x) <= x <= dilate(x) pointwise on window-covered positions.
  const Image scene = edge_scene(24, 20, 5);
  const Pattern se = patterns::structure_element();
  const Image lo = erode(scene, se);
  const Image hi = dilate(scene, se);
  scene.shape().for_each([&](const NdIndex& x) {
    EXPECT_LE(lo.at(x), scene.at(x)) << to_string(x);
    EXPECT_GE(hi.at(x), scene.at(x)) << to_string(x);
  });
}

TEST(Morphology, GradientDetectsTheDiskBoundary) {
  const Image scene = edge_scene(48, 40, 7);
  const Image gradient = morphological_gradient(
      scene, patterns::structure_element());
  // Strong response somewhere (the disk/rectangle borders)...
  EXPECT_GT(gradient.max_value(), 80);
  // ...and near-zero response in the flat background corner.
  EXPECT_LE(gradient.at({46, 2}), 10);
}

TEST(Morphology, OpeningRemovesSpeckleClosingFillsPit) {
  Image im(NdShape({9, 9}), 50);
  im.set({4, 4}, 255);  // one-pixel speckle
  const Pattern se = patterns::structure_element();
  EXPECT_EQ(opening(im, se).at({4, 4}), 50);

  Image pit(NdShape({9, 9}), 50);
  pit.set({4, 4}, 0);   // one-pixel pit
  EXPECT_EQ(closing(pit, se).at({4, 4}), 50);
}

TEST(Morphology, IdempotenceOfOpeningAndClosingInInterior) {
  // Classical morphology: opening and closing are idempotent. Our border
  // policy (borders keep the input) perturbs the outermost rings, so check
  // the interior, 4 pixels in (two applications of a radius-1 window).
  const Image scene = edge_scene(20, 20, 9);
  const Pattern se = patterns::structure_element();
  const Image once_open = opening(scene, se);
  const Image twice_open = opening(once_open, se);
  const Image once_close = closing(scene, se);
  const Image twice_close = closing(once_close, se);
  for (Coord i = 4; i < 16; ++i) {
    for (Coord j = 4; j < 16; ++j) {
      EXPECT_EQ(twice_open.at({i, j}), once_open.at({i, j})) << i << ',' << j;
      EXPECT_EQ(twice_close.at({i, j}), once_close.at({i, j})) << i << ',' << j;
    }
  }
}

TEST(Morphology, RejectsRankMismatch) {
  const Image im(NdShape({8, 8}));
  EXPECT_THROW((void)erode(im, patterns::sobel3d()), InvalidArgument);
}

}  // namespace
}  // namespace mempart::img
