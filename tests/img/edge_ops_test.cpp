#include "img/edge_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "img/synthetic.h"

namespace mempart::img {
namespace {

TEST(EdgeOps, LogResponseZeroOnFlat) {
  const Image flat(NdShape({10, 10}), 90);
  const Image r = log_response(flat);
  EXPECT_EQ(r.min_value(), 0);
  EXPECT_EQ(r.max_value(), 0);
}

TEST(EdgeOps, LogEdgesAreBinary) {
  const Image scene = edge_scene(48, 48, 2);
  const Image edges = log_edges(scene, 60);
  for (Sample s : edges.data()) {
    EXPECT_TRUE(s == 0 || s == 1);
  }
}

TEST(EdgeOps, LogEdgesFindTheDiskBoundary) {
  const Image scene = edge_scene(64, 64, 3);
  const Image edges = log_edges(scene, 80);
  const double density = edge_density(edges);
  EXPECT_GT(density, 0.001);  // some edges found
  EXPECT_LT(density, 0.5);    // but not everything
}

TEST(EdgeOps, PrewittRespondsToVerticalEdge) {
  Image in(NdShape({12, 12}));
  in.fill_from([](const NdIndex& x) { return x[1] >= 6 ? 255 : 0; });
  const Image mag = prewitt_magnitude(in);
  // Strongest response along the edge column, zero far away.
  EXPECT_GT(mag.at({6, 5}), 0);
  EXPECT_EQ(mag.at({6, 2}), 0);
}

TEST(EdgeOps, PrewittIsotropicOnFlat) {
  const Image flat(NdShape({8, 8}), 10);
  const Image mag = prewitt_magnitude(flat);
  EXPECT_EQ(mag.max_value(), 0);
}

TEST(EdgeOps, Sobel3dRespondsAtBallSurface) {
  const Image v = ball_volume(10, 10, 10);
  const Image r = sobel3d_z_response(v);
  Sample peak = 0;
  for (Sample s : r.data()) peak = std::max(peak, std::abs(s));
  EXPECT_GT(peak, 0);
  // Flat corner responds zero.
  EXPECT_EQ(r.at({1, 1, 1}), 0);
}

TEST(EdgeOps, EdgeDensityCountsNonZeros) {
  Image im(NdShape({2, 2}));
  im.set({0, 0}, 1);
  im.set({1, 1}, 5);
  EXPECT_DOUBLE_EQ(edge_density(im), 0.5);
}

}  // namespace
}  // namespace mempart::img
