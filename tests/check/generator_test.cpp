#include "check/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace mempart::check {
namespace {

TEST(Generator, DeterministicPerSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(generate_config(a), generate_config(b)) << "draw " << i;
  }
}

TEST(Generator, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 20; ++i) {
    if (generate_config(a) == generate_config(b)) ++equal;
  }
  EXPECT_LT(equal, 20);
}

TEST(Generator, RespectsRankAndTapBounds) {
  Rng rng(99);
  GeneratorOptions options;
  options.max_rank = 3;
  options.max_taps = 6;
  for (int i = 0; i < 300; ++i) {
    const CheckConfig c = generate_config(rng, options);
    ASSERT_FALSE(c.offsets.empty());
    // The duplicate-offsets class appends one extra (duplicated) tap, so
    // the hard ceiling is max_taps + 1.
    EXPECT_LE(static_cast<Count>(c.offsets.size()), options.max_taps + 1);
    for (const auto& o : c.offsets) {
      EXPECT_GE(o.size(), 1u);
      EXPECT_LE(static_cast<int>(o.size()), options.max_rank);
    }
  }
}

TEST(Generator, EmitsDegenerateAndOverflowClasses) {
  // With the default rates, 2000 draws should hit every adversarial class
  // the generator documents in the note field.
  Rng rng(7);
  std::set<std::string> notes;
  for (int i = 0; i < 2000; ++i) notes.insert(generate_config(rng).note);
  auto has_prefix = [&](const std::string& prefix) {
    for (const auto& n : notes) {
      if (n.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_prefix("degenerate:")) << "no degenerate class drawn";
  EXPECT_TRUE(has_prefix("overflow:")) << "no overflow class drawn";
  EXPECT_TRUE(has_prefix("random:")) << "no random class drawn";
}

TEST(Generator, CoversAllRanks) {
  Rng rng(31);
  std::set<size_t> ranks;
  for (int i = 0; i < 500; ++i) {
    ranks.insert(generate_config(rng).offsets.front().size());
  }
  for (size_t r = 1; r <= 4; ++r) {
    EXPECT_TRUE(ranks.count(r)) << "rank " << r << " never drawn";
  }
}

TEST(Generator, SeedFieldRecordsProvenance) {
  Rng rng(4242);
  // The config's seed field carries the generator seed it was drawn under;
  // generate_config cannot know it, so the caller (fuzzer) stamps it. Here
  // we only require the note to be non-empty for triage.
  const CheckConfig c = generate_config(rng);
  EXPECT_FALSE(c.note.empty());
}

}  // namespace
}  // namespace mempart::check
