#include "check/shrink.h"

#include <gtest/gtest.h>

#include "check/differential.h"
#include "common/errors.h"
#include "pattern/pattern_library.h"

namespace mempart::check {
namespace {

CheckConfig big_config() {
  CheckConfig config;
  const Pattern log = patterns::log5x5();
  config.offsets = log.offsets();
  config.shape = {40, 40};
  config.max_banks = 11;
  config.bank_bandwidth = 2;
  config.strategy = ConstraintStrategy::kSameSize;
  config.tail = TailPolicy::kCompact;
  return config;
}

TEST(Shrink, RequiresFailingInput) {
  EXPECT_THROW((void)shrink_config(
                   big_config(), [](const CheckConfig&) { return false; }),
               InvalidArgument);
}

TEST(Shrink, MinimisesTapCountUnderSyntheticPredicate) {
  // "Fails" whenever the pattern still has >= 3 taps: the reducer must walk
  // it down to exactly 3.
  const auto predicate = [](const CheckConfig& c) {
    return c.offsets.size() >= 3;
  };
  ShrinkStats stats;
  const CheckConfig small =
      shrink_config(big_config(), predicate, 400, &stats);
  EXPECT_EQ(small.offsets.size(), 3u);
  EXPECT_GT(stats.accepted, 0);
  EXPECT_GT(stats.rounds, 0);
}

TEST(Shrink, PullsCoordinatesTowardZeroAndResetsKnobs) {
  // Failure depends only on having >= 2 taps, so every other knob must be
  // reset to its default and coordinates pulled to the smallest pattern the
  // moves can reach.
  const auto predicate = [](const CheckConfig& c) {
    return c.offsets.size() >= 2;
  };
  const CheckConfig small = shrink_config(big_config(), predicate);
  EXPECT_EQ(small.offsets.size(), 2u);
  EXPECT_EQ(small.max_banks, 0);
  EXPECT_EQ(small.bank_bandwidth, 1);
  EXPECT_EQ(small.strategy, ConstraintStrategy::kFastFold);
  EXPECT_EQ(small.tail, TailPolicy::kPadded);
  for (const auto& o : small.offsets) {
    for (Coord c : o) EXPECT_LE(std::abs(c), 4) << "coordinate not pulled in";
  }
}

TEST(Shrink, DropsDimensionsWhenFailureSurvivesProjection) {
  const auto predicate = [](const CheckConfig& c) {
    return !c.offsets.empty();
  };
  const CheckConfig small = shrink_config(big_config(), predicate);
  EXPECT_EQ(small.offsets.size(), 1u);
  EXPECT_EQ(small.offsets.front().size(), 1u);  // rank projected to 1
  if (!small.shape.empty()) {
    EXPECT_EQ(small.shape.size(), 1u);
  }
}

TEST(Shrink, PredicateExceptionCountsAsNotFailing) {
  // A predicate that throws on the shrunk candidate must not derail the
  // reducer — the candidate is simply rejected.
  const auto predicate = [](const CheckConfig& c) {
    if (c.offsets.size() < 4) throw std::runtime_error("boom");
    return true;
  };
  const CheckConfig small = shrink_config(big_config(), predicate);
  EXPECT_EQ(small.offsets.size(), 4u);
}

TEST(Shrink, RespectsAttemptBudget) {
  ShrinkStats stats;
  (void)shrink_config(
      big_config(), [](const CheckConfig& c) { return !c.offsets.empty(); },
      /*max_attempts=*/10, &stats);
  EXPECT_LE(stats.attempts, 10);
}

TEST(Shrink, MinimisesRealDivergenceToFewTaps) {
  // The acceptance scenario, in-tree: an off-by-one planted in the bank
  // callback (not in the library) makes the differential's own oracle kind
  // of failure reproducible, and the reducer must bring a 10-tap pattern
  // down to something tiny. Here the "bug" is: any config whose pattern
  // contains a tap with |coordinate| >= 2 diverges.
  const auto buggy = [](const CheckConfig& c) {
    for (const auto& o : c.offsets) {
      for (Coord v : o) {
        if (std::abs(v) >= 2) return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(buggy(big_config()));
  const CheckConfig small = shrink_config(big_config(), buggy);
  EXPECT_LE(small.offsets.size(), 3u) << "repro not minimised to <= 3 taps";
  ASSERT_TRUE(buggy(small));
}

}  // namespace
}  // namespace mempart::check
