#include "check/oracle.h"

#include <gtest/gtest.h>

#include "core/bank_mapping.h"
#include "core/linear_transform.h"
#include "pattern/pattern_library.h"

namespace mempart::check {
namespace {

/// Adapts a BankMapping to the oracle's callback interface.
BankFn bank_fn(const BankMapping& m) {
  return [&m](const std::vector<Coord>& x) {
    return m.bank_of(NdIndex(x.begin(), x.end()));
  };
}

OffsetFn offset_fn(const BankMapping& m) {
  return [&m](const std::vector<Coord>& x) {
    return m.offset_of(NdIndex(x.begin(), x.end()));
  };
}

std::vector<Count> capacities(const BankMapping& m, Count banks) {
  std::vector<Count> caps;
  for (Count b = 0; b < banks; ++b) caps.push_back(m.bank_capacity(b));
  return caps;
}

TEST(BoundedVolume, HandlesEmptyOversizedAndExact) {
  EXPECT_EQ(bounded_volume({4, 5}, 100), 20);
  EXPECT_EQ(bounded_volume({}, 100), 1);
  EXPECT_EQ(bounded_volume({4, 0, 5}, 100), 0);   // empty box
  EXPECT_EQ(bounded_volume({4, -1}, 100), 0);     // negative extent: empty
  EXPECT_EQ(bounded_volume({4, 26}, 100), -1);    // 104 > 100
  EXPECT_EQ(bounded_volume({10, 10}, 100), 100);  // exactly at the limit
  // Would overflow 64 bits if multiplied naively; must report -1, not wrap.
  EXPECT_EQ(bounded_volume({Count{1} << 40, Count{1} << 40}, Count{1} << 60),
            -1);
}

TEST(ConflictOracle, KnownConflictFreeMappingScoresZero) {
  // Row pattern (0,0),(0,1),(0,2) with B(x) = (x0 + x1) mod 3: the three
  // banks are s0+s1, s0+s1+1, s0+s1+2 mod 3 — always distinct.
  const ConflictReport r = enumerate_conflicts(
      {{0, 0}, {0, 1}, {0, 2}}, {4, 6},
      [](const std::vector<Coord>& x) { return (x[0] + x[1]) % 3; });
  EXPECT_EQ(r.positions, 4 * 4);  // s1 in [0, 3]
  EXPECT_TRUE(r.conflict_free());
  EXPECT_EQ(r.delta_p, 0);
}

TEST(ConflictOracle, DetectsWorstMultiplicity) {
  // Same row pattern but only 2 banks: banks are b, b+1, b mod 2 — two of
  // the three elements always share a bank, so delta_P = 1 everywhere.
  const ConflictReport r = enumerate_conflicts(
      {{0, 0}, {0, 1}, {0, 2}}, {2, 5},
      [](const std::vector<Coord>& x) { return (x[0] + x[1]) % 2; });
  EXPECT_EQ(r.delta_p, 1);
  ASSERT_EQ(r.worst_position.size(), 2u);

  // A single bank for everything: delta_P = m - 1.
  const ConflictReport all = enumerate_conflicts(
      {{0}, {1}, {2}, {3}}, {8}, [](const std::vector<Coord>&) { return 0; });
  EXPECT_EQ(all.delta_p, 3);
}

TEST(ConflictOracle, NegativeOffsetsShiftAnchorRange) {
  // Centered 1-D window {-1, 0, 1} in [0, 5): anchors are s in [1, 3].
  const ConflictReport r = enumerate_conflicts(
      {{-1}, {0}, {1}}, {5},
      [](const std::vector<Coord>& x) { return x[0] % 3; });
  EXPECT_EQ(r.positions, 3);
  EXPECT_TRUE(r.conflict_free());
}

TEST(ConflictOracle, PatternLargerThanDomainHasNoPositions) {
  const ConflictReport r = enumerate_conflicts(
      {{0}, {9}}, {5}, [](const std::vector<Coord>& x) { return x[0]; });
  EXPECT_EQ(r.positions, 0);
  EXPECT_EQ(r.delta_p, 0);
}

TEST(AddressOracle, AcceptsCorrectMapping) {
  const BankMapping m(NdShape({9, 11}),
                      LinearTransform::derive(patterns::box2d(3)),
                      {.num_banks = 9});
  const AddressReport r = enumerate_addresses({9, 11}, 9, bank_fn(m),
                                              offset_fn(m), capacities(m, 9));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.elements, 9 * 11);
}

TEST(AddressOracle, CatchesDuplicatePairs) {
  // Everything lands on (bank 0, offset 0): second element must trip it.
  const AddressReport r = enumerate_addresses(
      {2, 2}, 4, [](const std::vector<Coord>&) { return 0; },
      [](const std::vector<Coord>&) { return 0; }, {});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("reused"), std::string::npos);
}

TEST(AddressOracle, CatchesBankAndCapacityViolations) {
  const AddressReport bad_bank = enumerate_addresses(
      {3}, 2, [](const std::vector<Coord>& x) { return x[0]; },
      [](const std::vector<Coord>&) { return 0; }, {});
  EXPECT_FALSE(bad_bank.ok);
  EXPECT_NE(bad_bank.violation.find("bank"), std::string::npos);

  const AddressReport bad_cap = enumerate_addresses(
      {3}, 1, [](const std::vector<Coord>&) { return 0; },
      [](const std::vector<Coord>& x) { return x[0]; }, {2});
  EXPECT_FALSE(bad_cap.ok);
  EXPECT_NE(bad_cap.violation.find("capacity"), std::string::npos);
}

TEST(AddressOracle, EmptyDomainIsVacuouslyUnique) {
  const AddressReport r = enumerate_addresses(
      {4, 0}, 4, [](const std::vector<Coord>&) { return 0; },
      [](const std::vector<Coord>&) { return 0; }, {});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.elements, 0);
}

TEST(AddressOracle, CatchesInjectedOffByOne) {
  // The acceptance scenario: a correct mapping wrapped with a one-slot
  // offset bump on the last padded slice. The oracle must flag it either as
  // a capacity violation or as a reused pair — without any solver help.
  const BankMapping m(NdShape({5, 7}),
                      LinearTransform::derive(patterns::box2d(2)),
                      {.num_banks = 4});
  const OffsetFn broken = [&m](const std::vector<Coord>& x) {
    const Address off = m.offset_of(NdIndex(x.begin(), x.end()));
    return off + (x[1] >= 4 ? 1 : 0);  // off-by-one past the body
  };
  const AddressReport r = enumerate_addresses({5, 7}, 4, bank_fn(m), broken,
                                              capacities(m, 4));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.violation.empty());
}

}  // namespace
}  // namespace mempart::check
