#include "check/differential.h"

#include <gtest/gtest.h>

#include "pattern/pattern_library.h"

namespace mempart::check {
namespace {

CheckConfig box_config() {
  CheckConfig config;
  const Pattern box = patterns::box2d(3);
  config.offsets = box.offsets();
  config.shape = {17, 23};
  return config;
}

TEST(Differential, CleanConfigHasNoDivergences) {
  const DiffReport r = run_config(box_config());
  EXPECT_FALSE(r.clean_reject) << r.reject_reason;
  EXPECT_FALSE(r.diverged()) << r.divergences.front().kind << ": "
                             << r.divergences.front().detail;
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.oracle_positions, 0);
}

TEST(Differential, RunsBothStrategiesUnderBankCap) {
  for (ConstraintStrategy s :
       {ConstraintStrategy::kFastFold, ConstraintStrategy::kSameSize}) {
    CheckConfig config = box_config();
    config.strategy = s;
    config.max_banks = 7;  // below N_f = 9, forcing the constraint path
    const DiffReport r = run_config(config);
    EXPECT_FALSE(r.diverged())
        << "strategy " << static_cast<int>(s) << ": "
        << r.divergences.front().kind << ": " << r.divergences.front().detail;
  }
}

TEST(Differential, CompactTailConfigIsChecked) {
  CheckConfig config = box_config();
  config.tail = TailPolicy::kCompact;
  config.shape = {13, 20};  // innermost not a multiple of N_f = 9
  const DiffReport r = run_config(config);
  EXPECT_FALSE(r.diverged()) << r.divergences.front().detail;
}

TEST(Differential, DuplicateOffsetsMustBeRejected) {
  CheckConfig config;
  config.offsets = {{0, 0}, {1, 1}, {0, 0}};
  config.shape = {8, 8};
  const DiffReport r = run_config(config);
  // Pattern throws on duplicates; the harness records the rejection as the
  // *expected* outcome, not a divergence.
  EXPECT_TRUE(r.clean_reject);
  EXPECT_FALSE(r.diverged());
}

TEST(Differential, RaggedRanksMustBeRejected) {
  CheckConfig config;
  config.offsets = {{0, 0}, {1}};
  config.shape = {8, 8};
  const DiffReport r = run_config(config);
  EXPECT_TRUE(r.clean_reject);
  EXPECT_FALSE(r.diverged());
}

TEST(Differential, ZeroExtentShapeMustBeRejected) {
  CheckConfig config;
  config.offsets = {{0, 0}, {0, 1}};
  config.shape = {8, 0};
  const DiffReport r = run_config(config);
  EXPECT_TRUE(r.clean_reject);
  EXPECT_FALSE(r.diverged());
}

TEST(Differential, SingleTapPatternIsTriviallySolved) {
  CheckConfig config;
  config.offsets = {{0, 0}};
  config.shape = {6, 6};
  const DiffReport r = run_config(config);
  EXPECT_FALSE(r.clean_reject) << r.reject_reason;
  EXPECT_FALSE(r.diverged()) << r.divergences.front().detail;
}

TEST(Differential, OverflowExtentsRejectCleanly) {
  CheckConfig config;
  config.offsets = {{0, 0}, {0, 1}, {1, 0}};
  config.shape = {Count{1} << 40, Count{1} << 40};
  const DiffReport r = run_config(config);
  // alpha_0 = D_1 = 2^40 and the volume overflows checked_mul inside the
  // mapping; either way the library must reject with a structured Error,
  // never wrap or crash.
  EXPECT_FALSE(r.diverged()) << r.divergences.front().detail;
  EXPECT_FALSE(r.exhaustive);
}

TEST(Differential, HugeVolumeSkipsOracleButSolves) {
  CheckConfig config = box_config();
  config.shape = {1 << 10, 1 << 10};  // 2^20 elements > kExhaustiveVolumeLimit
  const DiffReport r = run_config(config);
  EXPECT_FALSE(r.clean_reject) << r.reject_reason;
  EXPECT_FALSE(r.diverged());
  EXPECT_FALSE(r.exhaustive);
  EXPECT_EQ(r.oracle_positions, 0);
}

TEST(Differential, PatternOnlyConfigSolvesWithoutArray) {
  CheckConfig config;
  const Pattern log = patterns::log5x5();
  config.offsets = log.offsets();
  const DiffReport r = run_config(config);
  EXPECT_FALSE(r.clean_reject) << r.reject_reason;
  EXPECT_FALSE(r.diverged()) << r.divergences.front().detail;
  EXPECT_EQ(r.oracle_positions, 0);
}

}  // namespace
}  // namespace mempart::check
