#include "check/fuzzer.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "obs/metrics.h"

namespace mempart::check {
namespace {

TEST(Fuzz, RejectsUnusableOptions) {
  FuzzOptions options;
  options.iters = 0;
  EXPECT_THROW((void)run_fuzz(options), InvalidArgument);
}

TEST(Fuzz, BoundedRunIsCleanAndDeterministic) {
  FuzzOptions options;
  options.seed = 20260805;
  options.iters = 150;
  options.repro_dir = testing::TempDir();
  const FuzzSummary first = run_fuzz(options);
  EXPECT_EQ(first.iters_run, 150);
  EXPECT_TRUE(first.clean()) << first.divergences
                             << " divergences; first repro: "
                             << (first.repro_paths.empty()
                                     ? std::string("none")
                                     : first.repro_paths.front());
  EXPECT_EQ(first.ok + first.clean_rejects + first.divergences,
            first.iters_run);
  EXPECT_GT(first.ok, 0);

  // Same seed, same outcome counts: the pipeline is deterministic.
  const FuzzSummary second = run_fuzz(options);
  EXPECT_EQ(second.ok, first.ok);
  EXPECT_EQ(second.clean_rejects, first.clean_rejects);
  EXPECT_EQ(second.divergences, first.divergences);
}

TEST(Fuzz, PublishesObsCounters) {
  obs::set_metrics_enabled(true);
  const std::int64_t before =
      obs::Registry::instance().counter("check.fuzz.iterations");
  FuzzOptions options;
  options.seed = 7;
  options.iters = 25;
  options.repro_dir = testing::TempDir();
  (void)run_fuzz(options);
  EXPECT_EQ(obs::Registry::instance().counter("check.fuzz.iterations"),
            before + 25);
  obs::set_metrics_enabled(false);
}

}  // namespace
}  // namespace mempart::check
