#include <gtest/gtest.h>

#include "check/config.h"
#include "check/differential.h"
#include "check/fuzzer.h"
#include "common/errors.h"

namespace mempart::check {
namespace {

CheckConfig sample_config() {
  CheckConfig config;
  config.offsets = {{-1, 0}, {0, -2}, {3, 4}};
  config.shape = {17, 23};
  config.max_banks = 5;
  config.bank_bandwidth = 2;
  config.strategy = ConstraintStrategy::kSameSize;
  config.tail = TailPolicy::kCompact;
  config.seed = 0xdeadbeef;
  config.note = "hand-written \"sample\"\nwith escapes\\";
  return config;
}

TEST(CheckConfigJson, RoundTripsAllFields) {
  const CheckConfig original = sample_config();
  const CheckConfig parsed = CheckConfig::from_json(original.to_json());
  EXPECT_EQ(parsed, original);
}

TEST(CheckConfigJson, RoundTripsDefaults) {
  CheckConfig config;
  config.offsets = {{0}};
  EXPECT_EQ(CheckConfig::from_json(config.to_json()), config);
}

TEST(CheckConfigJson, RoundTripsDegenerateShapes) {
  CheckConfig config;
  config.offsets = {{0, 0}, {0, 0}};  // duplicates are representable
  config.shape = {8, 0};              // zero extents too
  EXPECT_EQ(CheckConfig::from_json(config.to_json()), config);
}

TEST(CheckConfigJson, RejectsMalformedInput) {
  EXPECT_THROW((void)CheckConfig::from_json(""), InvalidArgument);
  EXPECT_THROW((void)CheckConfig::from_json("[]"), InvalidArgument);
  EXPECT_THROW((void)CheckConfig::from_json("{\"offsets\":"), InvalidArgument);
  EXPECT_THROW((void)CheckConfig::from_json("{\"offsets\": [[0]], \"strategy\": "
                                            "\"banana\"}"),
               InvalidArgument);
  const std::string valid = sample_config().to_json();
  EXPECT_THROW((void)CheckConfig::from_json(valid + "trailing"),
               InvalidArgument);
}

TEST(ReproDocument, EmbedsConfigAndDivergences) {
  const CheckConfig config = sample_config();
  DiffReport report;
  report.exhaustive = true;
  report.oracle_positions = 42;
  report.divergences.push_back({"delta-bound", "oracle says 2, solver says 1"});
  const std::string doc = repro_json(config, report);
  EXPECT_NE(doc.find("mempart-check-repro-v1"), std::string::npos);
  EXPECT_NE(doc.find("delta-bound"), std::string::npos);
  EXPECT_EQ(config_from_repro(doc), config);
}

TEST(ReproDocument, AcceptsBareConfigDocument) {
  const CheckConfig config = sample_config();
  EXPECT_EQ(config_from_repro(config.to_json()), config);
}

TEST(ReproDocument, RejectsDocumentWithoutConfig) {
  EXPECT_THROW((void)config_from_repro("{\"schema\": \"x\"}"),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart::check
