// Replays the checked-in seed corpus through the differential matrix.
//
// Every fuzz failure that led to a fix earns a minimised config in
// tests/check/corpus/; this suite replays them all so the bug class stays
// dead. Also registered as the standalone `check_regressions` ctest target
// (a --gtest_filter over this suite) so CI can run the corpus by itself.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/differential.h"
#include "check/fuzzer.h"

#ifndef MEMPART_CHECK_CORPUS_DIR
#error "MEMPART_CHECK_CORPUS_DIR must point at tests/check/corpus"
#endif

namespace mempart::check {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(MEMPART_CHECK_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CheckRegressions, CorpusIsPresent) {
  EXPECT_GE(corpus_files().size(), 10u)
      << "seed corpus missing or moved: " << MEMPART_CHECK_CORPUS_DIR;
}

TEST(CheckRegressions, EverySeedReplaysWithoutDivergence) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const CheckConfig config = config_from_repro(slurp(path));
    const DiffReport report = run_config(config);
    EXPECT_FALSE(report.diverged())
        << report.divergences.front().kind << ": "
        << report.divergences.front().detail;
  }
}

TEST(CheckRegressions, MustRejectSeedsAreRejected) {
  // Files named *_reject.json document inputs the library MUST refuse; a
  // clean_reject is the asserted outcome, not merely tolerated.
  int seen = 0;
  for (const auto& path : corpus_files()) {
    if (path.filename().string().find("_reject") == std::string::npos) {
      continue;
    }
    SCOPED_TRACE(path.filename().string());
    ++seen;
    const DiffReport report = run_config(config_from_repro(slurp(path)));
    EXPECT_TRUE(report.clean_reject)
        << "library accepted a config documented as invalid";
  }
  EXPECT_GE(seen, 3);
}

TEST(CheckRegressions, PositiveSeedsActuallySolve) {
  // The non-reject seeds must exercise the solver, not bounce off it: a
  // corpus that silently degraded into rejections would test nothing.
  int solved = 0;
  for (const auto& path : corpus_files()) {
    if (path.filename().string().find("_reject") != std::string::npos) {
      continue;
    }
    const DiffReport report = run_config(config_from_repro(slurp(path)));
    if (!report.clean_reject && report.exhaustive) ++solved;
  }
  EXPECT_GE(solved, 6);
}

}  // namespace
}  // namespace mempart::check
