// Pins every Table 1 cell this reproduction derives analytically, plus the
// §2 motivational numbers and the §5.1 case study — the quantitative
// contract between this library and the paper. See EXPERIMENTS.md for the
// cells that can only be compared qualitatively (op counts, wall time,
// LTB Sobel-3D overhead).
#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "baseline/ltb.h"
#include "baseline/ltb_mapping.h"
#include "core/overhead.h"
#include "core/partitioner.h"
#include "hw/bram.h"
#include "hw/resolutions.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

struct OverheadRow {
  const char* pattern;
  Count our_banks;
  Count ltb_banks;
  bool three_d;
  // Paper's Table 1 storage-overhead cells in memory blocks, SD..4K.
  std::array<Count, 5> ours;
  std::array<Count, 5> ltb;
  bool ltb_cells_reproducible;  ///< false for Sobel3D (DESIGN.md §2)
};

// Values copied from Table 1 of the paper.
const OverheadRow kRows[] = {
    {"LoG", 13, 13, false, {2, 19, 41, 55, 76}, {10, 28, 49, 58, 106}, true},
    {"Canny", 25, 25, false, {23, 12, 69, 0, 103}, {32, 38, 79, 43, 142}, true},
    {"Prewitt", 9, 9, false, {7, 0, 0, 10, 0}, {14, 9, 12, 24, 12}, true},
    {"SE", 5, 5, false, {0, 0, 0, 0, 0}, {0, 0, 0, 0, 0}, true},
    {"Sobel3D", 27, 27, true,
     {2731, 8192, 18432, 36409, 73728},
     {8193, 24578, 36864, 78508, 105984}, false},
    {"Median", 8, 7, false, {0, 0, 0, 0, 0}, {7, 4, 27, 20, 33}, true},
    {"Gaussian", 13, 10, false, {2, 19, 41, 55, 76}, {0, 0, 0, 0, 0}, true},
};

const Pattern& pattern_named(const char* name) {
  static const auto all = patterns::table1_patterns();
  for (const Pattern& p : all) {
    if (p.name() == name) return p;
  }
  throw std::runtime_error("unknown pattern");
}

class Table1Row : public ::testing::TestWithParam<OverheadRow> {};

TEST_P(Table1Row, BankNumbersMatchPaper) {
  const OverheadRow& row = GetParam();
  const Pattern& p = pattern_named(row.pattern);

  PartitionRequest req;
  req.pattern = p;
  EXPECT_EQ(Partitioner::solve(req).num_banks(), row.our_banks);
  EXPECT_EQ(baseline::ltb_solve(p).num_banks, row.ltb_banks);
}

TEST_P(Table1Row, OurStorageOverheadBlocksMatchPaperExactly) {
  const OverheadRow& row = GetParam();
  const Pattern& p = pattern_named(row.pattern);
  const auto& resolutions = hw::table1_resolutions();
  for (size_t i = 0; i < resolutions.size(); ++i) {
    const NdShape shape =
        row.three_d ? resolutions[i].shape3d() : resolutions[i].shape2d();
    const Count elems = storage_overhead_elements(shape, row.our_banks);
    EXPECT_EQ(hw::overhead_blocks(elems), row.ours[i])
        << p.name() << " @ " << resolutions[i].name;
  }
}

TEST_P(Table1Row, LtbStorageOverheadBlocksMatchPaperWhereReproducible) {
  const OverheadRow& row = GetParam();
  const auto& resolutions = hw::table1_resolutions();
  for (size_t i = 0; i < resolutions.size(); ++i) {
    const NdShape shape =
        row.three_d ? resolutions[i].shape3d() : resolutions[i].shape2d();
    const Count elems =
        baseline::ltb_storage_overhead_elements(shape, row.ltb_banks);
    const Count blocks = hw::overhead_blocks(elems);
    if (row.ltb_cells_reproducible) {
      EXPECT_EQ(blocks, row.ltb[i])
          << row.pattern << " @ " << resolutions[i].name;
    } else {
      // Sobel3D: the paper's LTB cells do not fit the all-dims padding
      // model; require only the qualitative relation (LTB >= ours, same
      // order of magnitude).
      const Count ours = hw::overhead_blocks(
          storage_overhead_elements(shape, row.our_banks));
      EXPECT_GE(blocks, ours) << resolutions[i].name;
      EXPECT_LT(blocks, 40 * (ours + 1)) << resolutions[i].name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Paper, Table1Row, ::testing::ValuesIn(kRows),
                         [](const auto& param_info) {
                           return std::string(param_info.param.pattern);
                         });

TEST(MotivationalExample, Section2Numbers) {
  // Ours: 640 extra elements for LoG at 640x480; LTB: 5450.
  const NdShape sd({640, 480});
  EXPECT_EQ(storage_overhead_elements(sd, 13), 640);
  EXPECT_EQ(baseline::ltb_storage_overhead_elements(sd, 13), 5450);
}

TEST(MotivationalExample, ArithmeticGapIsLarge) {
  // §2 quotes 92 vs 1053 ops for LoG. Our instrumentation counts real
  // operations, so only the ratio is comparable: LTB must cost at least 4x.
  const Pattern p = patterns::log5x5();
  PartitionRequest req;
  req.pattern = p;
  const PartitionSolution ours = Partitioner::solve(req);
  const baseline::LtbSolution ltb = baseline::ltb_solve(p);
  EXPECT_GT(ltb.ops.arithmetic(), 4 * ours.ops.arithmetic());
}

TEST(CaseStudy, Section51EndToEnd) {
  // alpha = (5,1); Nf = 13; fast approach F=2, Nc=7; same-size Nc=7 with
  // delta=1 (ties with 9).
  const Pattern p = patterns::log5x5();

  PartitionRequest unconstrained;
  unconstrained.pattern = p;
  const PartitionSolution base = Partitioner::solve(unconstrained);
  EXPECT_EQ(base.transform.alpha(), (std::vector<Count>{5, 1}));
  EXPECT_EQ(base.search.num_banks, 13);

  PartitionRequest fast = unconstrained;
  fast.max_banks = 10;
  fast.strategy = ConstraintStrategy::kFastFold;
  const PartitionSolution f = Partitioner::solve(fast);
  EXPECT_EQ(f.constraint.fold_factor, 2);
  EXPECT_EQ(f.num_banks(), 7);

  PartitionRequest same = unconstrained;
  same.max_banks = 10;
  same.strategy = ConstraintStrategy::kSameSize;
  const PartitionSolution s = Partitioner::solve(same);
  EXPECT_EQ(s.num_banks(), 7);
  EXPECT_EQ(s.delta_ii(), 1);
  const std::vector<Count> expected_delta_plus_one{13, 9, 5, 6, 5, 3, 2,
                                                   3, 2, 3};
  ASSERT_EQ(s.constraint.sweep.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s.constraint.sweep[i] + 1, expected_delta_plus_one[i])
        << "N=" << i + 1;
  }
}

TEST(Complexity, OpsScaleLikeMSquaredNotExponentially) {
  // Our solver's ops grow ~m^2; LTB's grow with N^n per candidate N. On the
  // 3-D Sobel pattern the gap must be at least 100x.
  const Pattern p = patterns::sobel3d();
  PartitionRequest req;
  req.pattern = p;
  const PartitionSolution ours = Partitioner::solve(req);
  const baseline::LtbSolution ltb = baseline::ltb_solve(p);
  EXPECT_GT(ltb.ops.arithmetic(), 100 * ours.ops.arithmetic());
}

}  // namespace
}  // namespace mempart
