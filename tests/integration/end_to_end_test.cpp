// Full-stack integration: kernel -> pattern extraction -> partitioning ->
// banked layout -> simulated execution -> functional equality with the
// direct computation, plus the cycle-count claims.
#include <gtest/gtest.h>

#include "core/partitioner.h"
#include "img/banked_convolve.h"
#include "img/convolve.h"
#include "img/synthetic.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_program.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

using img::Image;

sim::CoreAddressMap partition_for(const Kernel& kernel, const NdShape& shape,
                                  Count max_banks = 0,
                                  ConstraintStrategy strategy =
                                      ConstraintStrategy::kFastFold) {
  PartitionRequest req;
  req.pattern = kernel.support();
  req.array_shape = shape;
  req.max_banks = max_banks;
  req.strategy = strategy;
  PartitionSolution sol = Partitioner::solve(req);
  return sim::CoreAddressMap(std::move(*sol.mapping));
}

TEST(EndToEnd, BankedLoGEqualsDirectLoG) {
  const Kernel log = patterns::log5x5_kernel();
  const Image scene = img::edge_scene(32, 28, 7);
  const auto map = partition_for(log, scene.shape());

  const Image direct = img::convolve(scene, log);
  const auto banked = img::convolve_banked(scene, log, map);

  EXPECT_EQ(banked.output, direct);
  // delta_P = 0: one cycle per iteration, bandwidth 13 elements/cycle.
  EXPECT_EQ(banked.stats.conflict_cycles, 0);
  EXPECT_DOUBLE_EQ(banked.stats.effective_bandwidth(), 13.0);
}

TEST(EndToEnd, UnpartitionedMemoryIsThirteenTimesSlower) {
  const Kernel log = patterns::log5x5_kernel();
  const Image scene = img::edge_scene(24, 24, 9);
  const auto partitioned = partition_for(log, scene.shape());
  const sim::FlatAddressMap flat{scene.shape()};

  const auto fast = img::convolve_banked(scene, log, partitioned);
  const auto slow = img::convolve_banked(scene, log, flat);

  EXPECT_EQ(fast.output, slow.output);  // functionally identical
  EXPECT_EQ(slow.stats.cycles, 13 * fast.stats.cycles);
}

TEST(EndToEnd, FoldedSolutionStaysCorrectAtTwoCycles) {
  const Kernel log = patterns::log5x5_kernel();
  const Image scene = img::edge_scene(26, 26, 11);
  const auto map =
      partition_for(log, scene.shape(), /*max_banks=*/10);

  const auto banked = img::convolve_banked(scene, log, map);
  EXPECT_EQ(banked.output, img::convolve(scene, log));
  EXPECT_EQ(banked.stats.worst_group_cycles, 2);
  EXPECT_EQ(banked.stats.cycles, 2 * banked.stats.iterations);
}

TEST(EndToEnd, SameSizeSolutionStaysCorrect) {
  const Kernel log = patterns::log5x5_kernel();
  const Image scene = img::edge_scene(26, 22, 13);
  const auto map = partition_for(log, scene.shape(), /*max_banks=*/10,
                                 ConstraintStrategy::kSameSize);
  const auto banked = img::convolve_banked(scene, log, map);
  EXPECT_EQ(banked.output, img::convolve(scene, log));
  EXPECT_EQ(banked.stats.worst_group_cycles, 2);  // delta = 1
}

TEST(EndToEnd, GaussianThroughItsThirteenBanks) {
  // The Gaussian evaluation pattern needs 13 banks under the closed form;
  // run the matching 5x5-cross *kernel* through them.
  const Pattern nine = patterns::gaussian9();
  std::vector<KernelTap> taps;
  for (const NdIndex& o : nine.offsets()) {
    taps.push_back({o, 1.0 / 9});
  }
  const Kernel cross(taps, "Gaussian9");
  const Image scene = img::edge_scene(30, 24, 17);
  const auto map = partition_for(cross, scene.shape());
  const auto banked = img::convolve_banked(scene, cross, map);
  EXPECT_EQ(banked.output, img::convolve(scene, cross));
  EXPECT_EQ(banked.stats.conflict_cycles, 0);
}

TEST(EndToEnd, Sobel3dVolumePipeline) {
  const Kernel sobel = patterns::sobel3d_z_kernel();
  const Image volume = img::ball_volume(8, 8, 9);
  // Partition for the FULL 26-element Sobel pattern (as the paper's flow
  // would), then run the 18-tap z-kernel through it: a subset of a
  // conflict-free pattern is still conflict-free.
  PartitionRequest req;
  req.pattern = patterns::sobel3d();
  req.array_shape = volume.shape();
  PartitionSolution sol = Partitioner::solve(req);
  const sim::CoreAddressMap map(std::move(*sol.mapping));

  const auto banked = img::convolve_banked(volume, sobel, map);
  EXPECT_EQ(banked.output, img::convolve(volume, sobel));
  EXPECT_EQ(banked.stats.conflict_cycles, 0);
}

TEST(EndToEnd, StencilProgramSimulationMatchesConvolutionCycles) {
  // The loopnest simulation and the image pipeline must agree on timing.
  const Kernel log = patterns::log5x5_kernel();
  const NdShape shape({20, 23});
  const auto map = partition_for(log, shape);
  const loopnest::StencilProgram program =
      loopnest::StencilProgram::from_kernel(log, shape);
  const sim::AccessStats via_program = loopnest::simulate(program, map);

  const Image scene = img::edge_scene(20, 23, 5);
  const auto via_pipeline = img::convolve_banked(scene, log, map);
  EXPECT_EQ(via_program.cycles, via_pipeline.stats.cycles);
  EXPECT_EQ(via_program.iterations, via_pipeline.stats.iterations);
}

}  // namespace
}  // namespace mempart
