// Rank generality: nothing in the core is specialised to 2-D/3-D. These
// sweeps push random patterns of rank 1..4 through transform, Algorithm 1,
// mapping, uniqueness verification and the RTL golden model, plus the LTB
// baseline's mapping, pinning the whole stack's dimension-independence.
#include <gtest/gtest.h>

#include <set>

#include "baseline/ltb_mapping.h"
#include "common/random.h"
#include "core/partitioner.h"
#include "core/verify.h"
#include "hw/rtl_gen.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

struct RankCase {
  std::uint64_t seed;
  int rank;
};

std::vector<RankCase> make_cases() {
  std::vector<RankCase> cases;
  std::uint64_t seed = 7000;
  for (int rank = 1; rank <= 4; ++rank) {
    for (int i = 0; i < 6; ++i) cases.push_back({seed++, rank});
  }
  return cases;
}

class RankSweep : public ::testing::TestWithParam<RankCase> {
 protected:
  Pattern make_pattern(Rng& rng) const {
    const int rank = GetParam().rank;
    std::vector<Count> box(static_cast<size_t>(rank),
                           rank >= 3 ? 3 : rng.uniform(3, 5));
    const Count volume = NdShape(box).volume();
    return patterns::random_pattern(rng, box,
                                    rng.uniform(2, std::min<Count>(volume, 9)));
  }

  NdShape make_shape(const Pattern& pattern, Rng& rng) const {
    std::vector<Count> extents;
    for (int d = 0; d < pattern.rank(); ++d) {
      extents.push_back(pattern.extent(d) + rng.uniform(3, 6));
    }
    return NdShape(std::move(extents));
  }
};

TEST_P(RankSweep, FullSolveVerifiesAtAnyRank) {
  Rng rng(GetParam().seed);
  const Pattern pattern = make_pattern(rng);
  const NdShape shape = make_shape(pattern, rng);

  PartitionRequest req;
  req.pattern = pattern;
  req.array_shape = shape;
  const PartitionSolution sol = Partitioner::solve(req);

  EXPECT_GE(sol.num_banks(), pattern.size());
  EXPECT_EQ(sol.delta_ii(), 0);
  EXPECT_EQ(static_cast<int>(sol.transform.alpha().size()), pattern.rank());
  const VerifyResult unique = verify_unique_addresses(*sol.mapping);
  EXPECT_TRUE(unique) << unique.message;
  // delta measured from the definition must agree.
  EXPECT_EQ(measure_delta_ii(pattern, shape,
                             [&](const NdIndex& x) {
                               return sol.mapping->bank_of(x);
                             }),
            0);
}

TEST_P(RankSweep, RtlGoldenModelMatchesAtAnyRank) {
  Rng rng(GetParam().seed + 100);
  const Pattern pattern = make_pattern(rng);
  const NdShape shape = make_shape(pattern, rng);
  PartitionRequest req;
  req.pattern = pattern;
  req.array_shape = shape;
  PartitionSolution sol = Partitioner::solve(req);
  const hw::AddrGenIr ir = hw::build_addr_gen_ir(*sol.mapping);
  shape.for_each([&](const NdIndex& x) {
    EXPECT_EQ(hw::ir_bank(ir, x), sol.mapping->bank_of(x));
    EXPECT_EQ(hw::ir_offset(ir, x), sol.mapping->offset_of(x));
  });
  const std::string verilog = hw::emit_verilog(ir);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST_P(RankSweep, LtbMappingUniqueAtAnyRank) {
  Rng rng(GetParam().seed + 200);
  const Pattern pattern = make_pattern(rng);
  const NdShape shape = make_shape(pattern, rng);
  // Use the closed-form alpha as the LTB transform stand-in; LtbMapping's
  // uniqueness must hold for ANY transform vector.
  const baseline::LtbMapping mapping(
      shape, LinearTransform::derive(pattern), pattern.size() + 1);
  std::set<std::pair<Count, Address>> seen;
  bool unique = true;
  shape.for_each([&](const NdIndex& x) {
    unique = unique &&
             seen.insert({mapping.bank_of(x), mapping.offset_of(x)}).second;
  });
  EXPECT_TRUE(unique);
  EXPECT_EQ(mapping.total_capacity() - shape.volume(),
            baseline::ltb_storage_overhead_elements(shape,
                                                    pattern.size() + 1));
}

std::string rank_case_name(const ::testing::TestParamInfo<RankCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_rank" +
         std::to_string(info.param.rank);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RankSweep, ::testing::ValuesIn(make_cases()),
                         rank_case_name);

}  // namespace
}  // namespace mempart
