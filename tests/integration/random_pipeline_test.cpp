// Randomized full-pipeline property sweep: random integer kernels over
// random small images, solved, scattered into banks, executed through the
// simulator — the banked result must equal the direct convolution bit for
// bit, and the cycle counts must equal the solver's prediction, for every
// draw and for both tail policies and several bank budgets.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/partitioner.h"
#include "img/banked_convolve.h"
#include "img/convolve.h"
#include "img/synthetic.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

struct PipelineCase {
  std::uint64_t seed;
  Count max_banks;   ///< 0 = unconstrained
  TailPolicy tail;
};

std::string case_name(const ::testing::TestParamInfo<PipelineCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_nmax" +
         std::to_string(info.param.max_banks) +
         (info.param.tail == TailPolicy::kPadded ? "_padded" : "_compact");
}

std::vector<PipelineCase> make_cases() {
  std::vector<PipelineCase> cases;
  std::uint64_t seed = 5000;
  for (Count max_banks : {Count{0}, Count{4}}) {
    for (TailPolicy tail : {TailPolicy::kPadded, TailPolicy::kCompact}) {
      // Folding requires the padded tail; skip the unsupported combination.
      if (max_banks != 0 && tail == TailPolicy::kCompact) continue;
      for (int i = 0; i < 10; ++i) {
        cases.push_back({seed++, max_banks, tail});
      }
    }
  }
  return cases;
}

class RandomPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(RandomPipeline, BankedEqualsDirectAndCyclesMatchPrediction) {
  const PipelineCase& param = GetParam();
  Rng rng(param.seed);

  // Random integer kernel over a random window.
  const Count box0 = rng.uniform(2, 4);
  const Count box1 = rng.uniform(2, 5);
  const Count m = rng.uniform(2, box0 * box1);
  const Pattern support =
      patterns::random_pattern(rng, {box0, box1}, m);
  std::vector<KernelTap> taps;
  for (const NdIndex& o : support.offsets()) {
    Count w = 0;
    while (w == 0) w = rng.uniform(-4, 4);
    taps.push_back({o, static_cast<double>(w)});
  }
  const Kernel kernel(taps, "random");

  // Random image comfortably larger than the window.
  const Count h = box0 + rng.uniform(6, 12);
  const Count w = box1 + rng.uniform(6, 12);
  const img::Image image = img::noise(NdShape({h, w}), param.seed * 31 + 7);

  PartitionRequest req;
  req.pattern = support;
  req.array_shape = image.shape();
  req.max_banks = param.max_banks;
  req.tail = param.tail;
  PartitionSolution sol = Partitioner::solve(req);
  const Count predicted_cycles = sol.delta_ii() + 1;
  const sim::CoreAddressMap map(std::move(*sol.mapping));

  const img::BankedConvolveResult banked =
      img::convolve_banked(image, kernel, map);
  EXPECT_EQ(banked.output, img::convolve(image, kernel));
  if (sol.constraint.fold_factor > 1) {
    // Folded solutions promise delta_P <= F - 1; the realised worst case can
    // be smaller when the pattern occupies fewer than N_f raw banks.
    EXPECT_LE(banked.stats.worst_group_cycles, predicted_cycles);
  } else {
    EXPECT_EQ(banked.stats.worst_group_cycles, predicted_cycles);
    EXPECT_EQ(banked.stats.cycles,
              banked.stats.iterations * predicted_cycles);
  }
  if (param.tail == TailPolicy::kCompact) {
    EXPECT_EQ(map.mapping().storage_overhead_elements(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPipeline,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace mempart
