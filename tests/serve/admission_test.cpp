#include "serve/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "common/errors.h"

namespace mempart::serve {
namespace {

TEST(BoundedQueue, RequiresAPositiveBound) {
  EXPECT_THROW(BoundedQueue<int>(0), InvalidArgument);
  EXPECT_EQ(BoundedQueue<int>(3).max_depth(), 3);
}

TEST(BoundedQueue, ShedsAtCapacityWithoutBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full: the shed signal
  EXPECT_EQ(queue.depth(), 2);
  EXPECT_EQ(queue.pop(), 1);  // FIFO
  EXPECT_TRUE(queue.try_push(3));  // capacity freed
}

TEST(BoundedQueue, TryPopManyFormsABatchWithoutBlocking) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.try_push(i));
  std::vector<int> batch;
  EXPECT_EQ(queue.try_pop_many(batch, 3), 3);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.try_pop_many(batch, 10), 2);  // takes what's there
  EXPECT_EQ(queue.try_pop_many(batch, 10), 0);  // empty: returns, no block
  EXPECT_EQ(batch.size(), 5u);
}

TEST(BoundedQueue, CloseStopsAdmissionButDrainsQueuedItems) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.try_push(7));
  queue.close();
  EXPECT_FALSE(queue.try_push(8));  // admission over
  EXPECT_EQ(queue.pop(), 7);        // admitted before close: still served
  EXPECT_EQ(queue.pop(), std::nullopt);  // closed and drained: exit signal
  queue.close();  // idempotent
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, CloseWakesABlockedConsumer) {
  BoundedQueue<int> queue(1);
  std::atomic<bool> woke{false};
  std::thread consumer([&queue, &woke] {
    EXPECT_EQ(queue.pop(), std::nullopt);
    woke.store(true);
  });
  // Give the consumer time to block in pop() before closing.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

// TSan coverage for the serve engine's exact topology: several producers
// shedding at a small bound, several consumers batching, a racing close.
// The invariant under test is the drain contract — every successfully
// pushed item is popped exactly once, none invented, none lost.
TEST(BoundedQueue, ConcurrentProducersConsumersAndClose) {
  BoundedQueue<int> queue(8);
  std::atomic<long> pushed{0};
  std::atomic<long> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&queue, &pushed] {
      for (int i = 0; i < 2000; ++i) {
        if (queue.try_push(i)) pushed.fetch_add(1);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&queue, &popped] {
      std::vector<int> batch;
      while (true) {
        const std::optional<int> item = queue.pop();
        if (!item.has_value()) return;  // closed and drained
        batch.clear();
        const Count extra = queue.try_pop_many(batch, 4);
        popped.fetch_add(1 + static_cast<long>(extra));
      }
    });
  }
  // Let the producers finish, then close; consumers must drain the rest.
  for (int p = 0; p < 3; ++p) threads[static_cast<size_t>(p)].join();
  queue.close();
  for (size_t t = 3; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(popped.load(), pushed.load());
  EXPECT_EQ(queue.depth(), 0);
}

}  // namespace
}  // namespace mempart::serve
