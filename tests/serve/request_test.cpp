#include "serve/request.h"

#include <gtest/gtest.h>

#include <string>

#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace mempart::serve {
namespace {

TEST(ServeRequest, ParsesTheFullGrammar) {
  ServeRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id": "c3-17", "tenant": "imaging", )"
      R"("offsets": [[0, 0], [0, 1], [1, 0]], "shape": [640, 480], )"
      R"("max_banks": 4, "bank_bandwidth": 1, "strategy": "same_size", )"
      R"("tail": "compact", "seed": 7, "note": "provenance"})",
      parsed, &error))
      << error;
  EXPECT_EQ(parsed.id, "c3-17");
  EXPECT_EQ(parsed.tenant, "imaging");
  ASSERT_TRUE(parsed.request.pattern.has_value());
  EXPECT_EQ(parsed.request.pattern->size(), 3);
  ASSERT_TRUE(parsed.request.array_shape.has_value());
  EXPECT_EQ(*parsed.request.array_shape, NdShape({640, 480}));
  EXPECT_EQ(parsed.request.max_banks, 4);
  EXPECT_EQ(parsed.request.strategy, ConstraintStrategy::kSameSize);
  EXPECT_EQ(parsed.request.tail, TailPolicy::kCompact);
}

TEST(ServeRequest, MinimalRequestNeedsOnlyOffsets) {
  ServeRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_request(R"({"offsets": [[0], [1], [2]]})", parsed, &error))
      << error;
  EXPECT_TRUE(parsed.id.empty());
  EXPECT_TRUE(parsed.tenant.empty());
  ASSERT_TRUE(parsed.request.pattern.has_value());
  EXPECT_EQ(parsed.request.pattern->size(), 3);
}

TEST(ServeRequest, RejectsUnknownKeysWithAByteDiagnostic) {
  ServeRequest parsed;
  std::string error;
  EXPECT_FALSE(parse_request(R"({"offsets": [[0]], "bogus": 1})", parsed,
                             &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_NE(error.find("byte"), std::string::npos);
}

TEST(ServeRequest, FillsTagsBestEffortOnAMalformedLine) {
  // The id parses before the malformed offsets, so the error response can
  // still be correlated by the client.
  ServeRequest parsed;
  std::string error;
  EXPECT_FALSE(parse_request(
      R"({"id": "req-9", "tenant": "t0", "offsets": [[0], "oops"]})", parsed,
      &error));
  EXPECT_EQ(parsed.id, "req-9");
  EXPECT_EQ(parsed.tenant, "t0");
  EXPECT_FALSE(error.empty());
}

TEST(ServeRequest, RejectsSemanticallyInvalidPatterns) {
  ServeRequest parsed;
  std::string error;
  // Mixed ranks pass the JSON layer but fail Pattern validation.
  EXPECT_FALSE(parse_request(R"({"offsets": [[0, 0], [1]]})", parsed, &error));
  EXPECT_FALSE(error.empty());
  // No offsets at all.
  EXPECT_FALSE(parse_request(R"({"shape": [64, 64]})", parsed, &error));
}

TEST(ServeRequest, ResponsesEchoTagsVerbatim) {
  ServeRequest request;
  request.id = "a\"b";  // must round-trip through JSON escaping
  request.tenant = "team/7";
  request.request.pattern = patterns::prewitt3x3();
  const PartitionSolution solution = Partitioner::solve(request.request);

  const std::string ok = ok_response(request, solution);
  EXPECT_NE(ok.find(R"("id": "a\"b")"), std::string::npos) << ok;
  EXPECT_NE(ok.find(R"("tenant": "team/7")"), std::string::npos);
  EXPECT_NE(ok.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(ok.find("\"num_banks\": "), std::string::npos);
  EXPECT_EQ(ok.find('\n'), std::string::npos);  // caller owns the newline

  const std::string err = error_response(request, "boom");
  EXPECT_NE(err.find(R"("id": "a\"b")"), std::string::npos);
  EXPECT_NE(err.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(err.find("\"error\": \"boom\""), std::string::npos);
  EXPECT_EQ(err.find("\"shed\""), std::string::npos);

  const std::string shed = shed_response(request, "queue full");
  EXPECT_NE(shed.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(shed.find("\"shed\": true"), std::string::npos);
  EXPECT_NE(shed.find("queue full"), std::string::npos);
}

TEST(ServeRequest, UntaggedResponsesOmitTheTagFields) {
  ServeRequest request;
  request.request.pattern = patterns::roberts2x2();
  const std::string err = error_response(request, "nope");
  EXPECT_EQ(err.find("\"id\""), std::string::npos) << err;
  EXPECT_EQ(err.find("\"tenant\""), std::string::npos);
}

TEST(ServeRequest, OkResponseCarriesTheSolveFields) {
  ServeRequest request;
  request.id = "r1";
  request.request.pattern = patterns::log5x5();
  const PartitionSolution solution = Partitioner::solve(request.request);
  const std::string ok = ok_response(request, solution);
  EXPECT_NE(ok.find("\"num_banks\": 13"), std::string::npos) << ok;
  EXPECT_NE(ok.find("\"delta_ii\": "), std::string::npos);
  EXPECT_NE(ok.find("\"fold_factor\": "), std::string::npos);
  EXPECT_NE(ok.find("\"alpha\": ["), std::string::npos);
  EXPECT_NE(ok.find("\"pattern_banks\": ["), std::string::npos);
}

}  // namespace
}  // namespace mempart::serve
