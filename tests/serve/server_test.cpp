#include "serve/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/solve_cache.h"
#include "serve/request.h"

namespace mempart::serve {
namespace {

int count_lines(const std::string& text) {
  int lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Pipe mode
// ---------------------------------------------------------------------------

TEST(ServeServer, PipeModeAnswersEveryLineAndEchoesTags) {
  std::istringstream in(
      "{\"id\": \"a\", \"tenant\": \"t1\", \"offsets\": [[0, 0], [0, 1]]}\n"
      "{\"id\": \"b\", \"offsets\": [[0, 0], [1, 0], [1, 1]]}\n"
      "this is not json\n"
      "{\"id\": \"c\", \"offsets\": [[0], [0]]}\n");  // duplicate offset
  std::ostringstream out;
  ServeOptions options;
  options.threads = 2;
  SolveCache cache(64);
  options.cache = &cache;
  Server server(options);
  const ServeSummary summary = server.run_pipe(in, out);

  const std::string responses = out.str();
  EXPECT_EQ(count_lines(responses), 4);  // one response per input line
  EXPECT_NE(responses.find("\"id\": \"a\""), std::string::npos);
  EXPECT_NE(responses.find("\"tenant\": \"t1\""), std::string::npos);
  EXPECT_NE(responses.find("\"id\": \"b\""), std::string::npos);
  EXPECT_NE(responses.find("\"id\": \"c\""), std::string::npos);
  EXPECT_EQ(summary.admitted, 2);
  EXPECT_EQ(summary.solved, 2);
  EXPECT_EQ(summary.failed, 2);  // parse error + duplicate-offset reject
  EXPECT_EQ(summary.shed, 0);
  EXPECT_FALSE(summary.downstream_closed);
  EXPECT_FALSE(summary.drained);  // EOF end, not a shutdown drain
}

TEST(ServeServer, PipeModeSharesTheCacheAcrossRequests) {
  // 20 canonically equal requests: one miss, the rest hits.
  std::string input;
  for (int i = 0; i < 20; ++i) {
    input += "{\"id\": \"r" + std::to_string(i) +
             "\", \"offsets\": [[0, 0], [0, 1], [1, 0]]}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  ServeOptions options;
  options.threads = 2;
  SolveCache cache(64);
  options.cache = &cache;
  Server server(options);
  const ServeSummary summary = server.run_pipe(in, out);
  EXPECT_EQ(summary.solved, 20);
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  // Batching may dedup some lookups entirely; what matters is that at
  // most one real solve happened.
  EXPECT_LE(stats.misses, 1);
}

TEST(ServeServer, PipeModeShedsWhenTheQueueIsSaturated) {
  // One worker, depth-1 queue, single-item batches: flooding 200 requests
  // through a stringstream must shed most of them, and every input line
  // still gets exactly one response.
  std::string input;
  for (int i = 0; i < 200; ++i) {
    input += "{\"id\": \"f" + std::to_string(i) +
             "\", \"offsets\": [[0, 0], [0, " + std::to_string(i % 7 + 1) +
             "]]}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  ServeOptions options;
  options.threads = 1;
  options.queue_depth = 1;
  options.max_batch = 1;
  SolveCache cache(64);
  options.cache = &cache;
  Server server(options);
  const ServeSummary summary = server.run_pipe(in, out);
  EXPECT_EQ(count_lines(out.str()), 200);
  EXPECT_EQ(summary.admitted + summary.shed, 200);
  EXPECT_GT(summary.shed, 0);
  EXPECT_EQ(summary.solved, summary.admitted);
  EXPECT_NE(out.str().find("\"shed\": true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Socket mode + graceful drain
// ---------------------------------------------------------------------------

class SocketClient {
 public:
  explicit SocketClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~SocketClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  }

  /// Reads until `n` newline-terminated lines arrived (or EOF).
  std::vector<std::string> read_lines(int n) {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (static_cast<int>(lines.size()) < n) {
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) break;
      buffer.append(chunk, static_cast<size_t>(got));
      size_t start = 0;
      for (size_t pos = buffer.find('\n', start); pos != std::string::npos;
           pos = buffer.find('\n', start)) {
        lines.push_back(buffer.substr(start, pos - start));
        start = pos + 1;
      }
      buffer.erase(0, start);
    }
    return lines;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string test_socket_path(const char* tag) {
  return ::testing::TempDir() + "serve_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

void wait_for_socket(const std::string& path) {
  while (::access(path.c_str(), F_OK) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServeServer, SocketModeServesConnectionsIndependently) {
  const std::string path = test_socket_path("basic");
  ServeOptions options;
  options.socket_path = path;
  options.threads = 2;
  SolveCache cache(64);
  options.cache = &cache;
  Server server(options);
  std::thread server_thread([&server] { (void)server.run_socket(); });
  wait_for_socket(path);
  {
    SocketClient a(path);
    SocketClient b(path);
    ASSERT_TRUE(a.connected());
    ASSERT_TRUE(b.connected());
    a.send_line(R"({"id": "a1", "offsets": [[0, 0], [0, 1]]})");
    b.send_line(R"({"id": "b1", "offsets": [[0, 0], [1, 0]]})");
    const std::vector<std::string> from_a = a.read_lines(1);
    const std::vector<std::string> from_b = b.read_lines(1);
    // Each connection sees its own responses only.
    ASSERT_EQ(from_a.size(), 1u);
    ASSERT_EQ(from_b.size(), 1u);
    EXPECT_NE(from_a[0].find("\"id\": \"a1\""), std::string::npos);
    EXPECT_NE(from_b[0].find("\"id\": \"b1\""), std::string::npos);
  }
  server.request_shutdown();
  server_thread.join();
  const ServeSummary summary = server.summary();
  EXPECT_TRUE(summary.drained);
  EXPECT_EQ(summary.connections, 2);
  EXPECT_EQ(summary.solved, 2);
}

// The drain contract the CLI's SIGTERM handler relies on (the handler just
// calls request_shutdown()): every admitted request is answered before
// run_socket returns, connection readers unblock without EOF from the
// client, and nothing is dropped without a response.
TEST(ServeServer, ShutdownDrainsAdmittedRequestsAndAnswersAll) {
  const std::string path = test_socket_path("drain");
  ServeOptions options;
  options.socket_path = path;
  options.threads = 1;
  SolveCache cache(256);
  options.cache = &cache;
  Server server(options);
  std::thread server_thread([&server] { (void)server.run_socket(); });
  wait_for_socket(path);

  SocketClient client(path);
  ASSERT_TRUE(client.connected());
  constexpr int kInFlight = 50;
  for (int i = 0; i < kInFlight; ++i) {
    client.send_line("{\"id\": \"d" + std::to_string(i) +
                     "\", \"offsets\": [[0, 0], [0, " +
                     std::to_string(i % 9 + 1) + "], [1, 0]]}");
  }
  // Shut down while requests are still queued/solving. The client never
  // closes its end first — the drain must unblock the reader itself.
  server.request_shutdown();
  const std::vector<std::string> responses = client.read_lines(kInFlight);
  server_thread.join();

  const ServeSummary summary = server.summary();
  EXPECT_TRUE(summary.drained);
  // The drain contract: every ADMITTED request was solved and answered —
  // none dropped. (Lines still sitting unread in the socket buffer when the
  // drain unblocked the reader were never admitted; that's the admission
  // boundary, not a drop.)
  EXPECT_EQ(summary.solved, summary.admitted);
  EXPECT_EQ(summary.failed, 0);  // all 50 requests were valid
  EXPECT_EQ(summary.write_failures, 0);  // the client never went away
  // The client saw exactly one response per handled line: an answer for
  // every admitted request plus a shed line for any request that raced the
  // queue close.
  EXPECT_EQ(static_cast<std::int64_t>(responses.size()),
            summary.solved + summary.shed);
  EXPECT_LE(static_cast<std::int64_t>(responses.size()), kInFlight);
}

TEST(ServeServer, ShutdownBeforeAnyTrafficDrainsCleanly) {
  const std::string path = test_socket_path("idle");
  ServeOptions options;
  options.socket_path = path;
  options.threads = 1;
  SolveCache cache(16);
  options.cache = &cache;
  Server server(options);
  std::thread server_thread([&server] { (void)server.run_socket(); });
  wait_for_socket(path);
  server.request_shutdown();
  server.request_shutdown();  // idempotent
  server_thread.join();
  EXPECT_TRUE(server.summary().drained);
  EXPECT_EQ(server.summary().admitted, 0);
  // The socket file is gone after a clean drain.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServeServer, ValidatesItsOptions) {
  ServeOptions bad;
  bad.max_batch = 0;
  EXPECT_ANY_THROW(Server server(bad));
  ServeOptions negative;
  negative.threads = -1;
  EXPECT_ANY_THROW(Server server2(negative));
}

}  // namespace
}  // namespace mempart::serve
