#include "loopnest/stencil_program.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pattern/pattern_library.h"

namespace mempart::loopnest {
namespace {

TEST(StencilProgram, LoGBoundsMatchFig1b) {
  // Fig. 1(b): X[1:640][1:480] with loops i = 3..638, j = 3..478. Our arrays
  // are 0-based, so the equivalent bounds are 2..637 and 2..477.
  const Pattern centred = patterns::log5x5().translated({-2, -2});
  const StencilProgram program(NdShape({640, 480}), centred, "LoG");
  ASSERT_EQ(program.loop_nest().depth(), 2);
  EXPECT_EQ(program.loop_nest().loops()[0], (Loop{2, 637, 1}));
  EXPECT_EQ(program.loop_nest().loops()[1], (Loop{2, 477, 1}));
  EXPECT_EQ(program.loop_nest().total_iterations(), 636 * 476);
}

TEST(StencilProgram, ExtractPatternReturnsReads) {
  const StencilProgram program(NdShape({10, 10}), patterns::median7());
  EXPECT_EQ(program.extract_pattern(), patterns::median7());
}

TEST(StencilProgram, FromKernelUsesSupport) {
  const StencilProgram program = StencilProgram::from_kernel(
      patterns::log5x5_kernel(), NdShape({16, 16}));
  EXPECT_EQ(program.extract_pattern(), patterns::log5x5());
  EXPECT_EQ(program.name(), "LoG");
}

TEST(StencilProgram, ReadsAtStayInBounds) {
  const StencilProgram program(NdShape({9, 9}), patterns::canny5x5());
  program.loop_nest().for_each([&](const NdIndex& iv) {
    for (const NdIndex& x : program.reads_at(iv)) {
      EXPECT_TRUE(program.array_shape().contains(x)) << to_string(x);
    }
  });
}

TEST(StencilProgram, Rank3Domain) {
  const StencilProgram program(NdShape({5, 5, 6}), patterns::sobel3d());
  EXPECT_EQ(program.loop_nest().depth(), 3);
  EXPECT_EQ(program.loop_nest().total_iterations(), 3 * 3 * 4);
}

TEST(StencilProgram, RejectsImpossibleFit) {
  EXPECT_THROW((void)StencilProgram(NdShape({4, 4}), patterns::canny5x5()),
               InvalidArgument);
  EXPECT_THROW((void)StencilProgram(NdShape({10}), patterns::log5x5()),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart::loopnest
