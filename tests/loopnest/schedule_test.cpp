#include "loopnest/schedule.h"

#include <gtest/gtest.h>

#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace mempart::loopnest {
namespace {

sim::CoreAddressMap solve_map(const Pattern& pattern, NdShape shape,
                              Count max_banks = 0,
                              ConstraintStrategy strategy =
                                  ConstraintStrategy::kFastFold) {
  PartitionRequest req;
  req.pattern = pattern;
  req.array_shape = std::move(shape);
  req.max_banks = max_banks;
  req.strategy = strategy;
  PartitionSolution sol = Partitioner::solve(req);
  return sim::CoreAddressMap(std::move(*sol.mapping));
}

TEST(Simulate, PartitionedLoGRunsAtOneCyclePerIteration) {
  const Pattern p = patterns::log5x5();
  const StencilProgram program(NdShape({20, 22}), p, "LoG");
  const auto map = solve_map(p, NdShape({20, 22}));
  const sim::AccessStats stats = simulate(program, map);
  EXPECT_EQ(stats.iterations, program.loop_nest().total_iterations());
  EXPECT_EQ(stats.cycles, stats.iterations);          // delta_P = 0
  EXPECT_EQ(stats.conflict_cycles, 0);
  EXPECT_EQ(stats.worst_group_cycles, 1);
  EXPECT_DOUBLE_EQ(stats.effective_bandwidth(), 13.0);
}

TEST(Simulate, UnpartitionedLoGSerialises) {
  const Pattern p = patterns::log5x5();
  const StencilProgram program(NdShape({20, 22}), p, "LoG");
  const sim::FlatAddressMap flat{NdShape({20, 22})};
  const sim::AccessStats stats = simulate(program, flat);
  EXPECT_EQ(stats.cycles, stats.iterations * 13);     // m cycles each
  EXPECT_DOUBLE_EQ(stats.effective_bandwidth(), 1.0);
}

TEST(Simulate, FoldedLoGTakesTwoCyclesPerIteration) {
  const Pattern p = patterns::log5x5();
  const StencilProgram program(NdShape({20, 26}), p, "LoG");
  const auto map = solve_map(p, NdShape({20, 26}), /*max_banks=*/10);
  const sim::AccessStats stats = simulate(program, map);
  EXPECT_EQ(stats.cycles, stats.iterations * 2);      // delta_P = 1
  EXPECT_EQ(stats.worst_group_cycles, 2);
}

TEST(Simulate, SameSizeSolutionMatchesPredictedDelta) {
  const Pattern p = patterns::log5x5();
  PartitionRequest req;
  req.pattern = p;
  req.array_shape = NdShape({20, 21});
  req.max_banks = 10;
  req.strategy = ConstraintStrategy::kSameSize;
  PartitionSolution sol = Partitioner::solve(req);
  const Count predicted = sol.delta_ii();
  const sim::CoreAddressMap map(std::move(*sol.mapping));
  const StencilProgram program(NdShape({20, 21}), p, "LoG");
  const sim::AccessStats stats = simulate(program, map);
  EXPECT_EQ(stats.worst_group_cycles, predicted + 1);
  EXPECT_EQ(stats.cycles, stats.iterations * (predicted + 1));
}

TEST(SimulateSampled, AgreesWithFullRunOnWorstCase) {
  const Pattern p = patterns::median7();
  const StencilProgram program(NdShape({16, 17}), p, "Median");
  const auto map = solve_map(p, NdShape({16, 17}));
  const sim::AccessStats full = simulate(program, map);
  const sim::AccessStats sampled = simulate_sampled(program, map, 20);
  EXPECT_EQ(sampled.worst_group_cycles, full.worst_group_cycles);
  EXPECT_LT(sampled.iterations, full.iterations);
}

TEST(Simulate, ThreeDimensionalSobel) {
  const Pattern p = patterns::sobel3d();
  const NdShape shape({6, 6, 8});
  const StencilProgram program(shape, p, "Sobel3D");
  const auto map = solve_map(p, shape);
  const sim::AccessStats stats = simulate(program, map);
  EXPECT_EQ(stats.conflict_cycles, 0);
  EXPECT_EQ(stats.accesses, stats.iterations * 26);
}

}  // namespace
}  // namespace mempart::loopnest
