// Loop unrolling flow: unrolled programs read dilated patterns with strided
// domains; the partitioner must keep the widened constellation conflict-free
// and the simulator must see every element exactly as often as before.
#include <gtest/gtest.h>

#include <map>

#include "core/partitioner.h"
#include "common/errors.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_program.h"
#include "pattern/pattern_library.h"

namespace mempart::loopnest {
namespace {

TEST(Unroll, FactorOneIsIdentity) {
  const StencilProgram base(NdShape({12, 12}), patterns::log5x5(), "LoG");
  const StencilProgram same = base.unrolled(0, 1);
  EXPECT_EQ(same.extract_pattern(), base.extract_pattern());
  EXPECT_EQ(same.loop_nest().total_iterations(),
            base.loop_nest().total_iterations());
}

TEST(Unroll, PatternDilatesAndDomainStrides) {
  const StencilProgram base(NdShape({12, 12}), patterns::structure_element(),
                            "SE");
  const StencilProgram u2 = base.unrolled(1, 2);
  // SE (5 elements) unrolled by 2 along columns: two crosses overlapping in
  // 2 positions -> 8 distinct reads.
  EXPECT_EQ(u2.extract_pattern().size(), 8);
  EXPECT_EQ(u2.loop_nest().loops()[1].step, 2);
  EXPECT_EQ(u2.loop_nest().loops()[0].step, 1);
}

TEST(Unroll, ReadMultisetIsPreservedOnAlignedDomain) {
  // A single-read body over an even extent tiles exactly under factor 2:
  // the rolled loop reads every element once, and so must the unrolled one
  // (each unrolled iteration reads two consecutive elements).
  const Pattern row = patterns::row1d(1);  // reads {0}
  const StencilProgram base(NdShape({10}), row, "row");  // s in [0, 9]
  const StencilProgram u2 = base.unrolled(0, 2);         // s in {0,2,...,8}
  auto histogram = [](const StencilProgram& p) {
    std::map<NdIndex, Count> reads;
    p.loop_nest().for_each([&](const NdIndex& iv) {
      for (const NdIndex& x : p.reads_at(iv)) ++reads[x];
    });
    return reads;
  };
  EXPECT_EQ(histogram(base), histogram(u2));
}

TEST(Unroll, UnrolledLoGStaysConflictFreeAfterRepartitioning) {
  const StencilProgram base(NdShape({16, 20}), patterns::log5x5(), "LoG");
  const StencilProgram u2 = base.unrolled(1, 2);

  PartitionRequest req;
  req.pattern = u2.extract_pattern();
  req.array_shape = NdShape({16, 20});
  PartitionSolution sol = Partitioner::solve(req);
  EXPECT_GE(sol.num_banks(), u2.extract_pattern().size());
  const sim::CoreAddressMap map(std::move(*sol.mapping));
  const sim::AccessStats stats = simulate(u2, map);
  EXPECT_EQ(stats.conflict_cycles, 0);
  // Unrolling halves the iteration count along the unrolled dimension...
  EXPECT_LT(stats.iterations, base.loop_nest().total_iterations());
  // ...so total cycles drop roughly 2x versus the rolled conflict-free run.
  const Count rolled_cycles = base.loop_nest().total_iterations();
  EXPECT_LT(2 * stats.cycles, rolled_cycles + stats.iterations + 8);
}

TEST(Unroll, OldPartitionConflictsOnUnrolledPattern) {
  // The rolled 13-bank LoG solution cannot serve the 2x-unrolled pattern in
  // one cycle: unrolling demands re-partitioning, which is why banking and
  // unrolling are co-designed in the HLS literature.
  const StencilProgram base(NdShape({16, 26}), patterns::log5x5(), "LoG");
  const StencilProgram u2 = base.unrolled(1, 2);

  PartitionRequest rolled;
  rolled.pattern = patterns::log5x5();
  rolled.array_shape = NdShape({16, 26});
  PartitionSolution sol = Partitioner::solve(rolled);
  const sim::CoreAddressMap map(std::move(*sol.mapping));
  const sim::AccessStats stats = simulate(u2, map);
  EXPECT_GT(stats.conflict_cycles, 0);
}

TEST(Unroll, RejectsBadArguments) {
  const StencilProgram base(NdShape({10, 10}), patterns::median7(), "M");
  EXPECT_THROW((void)base.unrolled(2, 2), InvalidArgument);
  EXPECT_THROW((void)base.unrolled(-1, 2), InvalidArgument);
  EXPECT_THROW((void)base.unrolled(0, 0), InvalidArgument);
}

TEST(StencilProgramSteps, ExplicitStepsRespected) {
  const StencilProgram strided(NdShape({12}), patterns::row1d(3), "s", {3});
  EXPECT_EQ(strided.loop_nest().loops()[0].step, 3);
  EXPECT_THROW((void)StencilProgram(NdShape({12}), patterns::row1d(3), "s", {0}),
               InvalidArgument);
  EXPECT_THROW((void)StencilProgram(NdShape({12}), patterns::row1d(3), "s", {1, 1}),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart::loopnest
