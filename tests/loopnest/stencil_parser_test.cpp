#include "loopnest/stencil_parser.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace mempart::loopnest {
namespace {

constexpr const char* kFig1b =
    "for (i = 3; i <= 638; i++) {\n"
    "  for (j = 3; j <= 478; j++) {\n"
    "    Y[i][j] = -X[i-2][j] - X[i-1][j-1] - 2*X[i-1][j] - X[i-1][j+1]\n"
    "              - X[i][j-2] - 2*X[i][j-1] + 16*X[i][j] - 2*X[i][j+1]\n"
    "              - X[i][j+2] - X[i+1][j-1] - 2*X[i+1][j] - X[i+1][j+1]\n"
    "              - X[i+2][j];\n"
    "  }\n"
    "}\n";

TEST(StencilParser, Fig1bRecoverLoGKernel) {
  const ParsedStencil parsed = parse_stencil(kFig1b);
  EXPECT_EQ(parsed.output_array, "Y");
  EXPECT_EQ(parsed.input_array, "X");
  EXPECT_EQ(parsed.loop_vars, (std::vector<std::string>{"i", "j"}));
  // The recovered support is the LoG pattern, the coefficients Fig. 1(a)'s.
  EXPECT_EQ(parsed.kernel.support().normalized(), patterns::log5x5());
  EXPECT_EQ(parsed.kernel.weight_at({0, 0}), 16.0);
  EXPECT_EQ(parsed.kernel.weight_at({-2, 0}), -1.0);
  EXPECT_EQ(parsed.kernel.weight_at({-1, 0}), -2.0);
  EXPECT_EQ(parsed.kernel.weight_at({0, 2}), -1.0);
  EXPECT_EQ(parsed.kernel.support().size(), 13);
}

TEST(StencilParser, MinimalStatement) {
  const ParsedStencil parsed = parse_stencil("Y[i][j] = X[i][j];");
  EXPECT_EQ(parsed.kernel.support().size(), 1);
  EXPECT_EQ(parsed.kernel.weight_at({0, 0}), 1.0);
}

TEST(StencilParser, WithoutForHeadersOrSemicolon) {
  const ParsedStencil parsed = parse_stencil("out[i] = a[i-1] + a[i+1]");
  EXPECT_EQ(parsed.input_array, "a");
  EXPECT_EQ(parsed.loop_vars, (std::vector<std::string>{"i"}));
  EXPECT_EQ(parsed.kernel.support().size(), 2);
  EXPECT_EQ(parsed.kernel.weight_at({-1}), 1.0);
  EXPECT_EQ(parsed.kernel.weight_at({1}), 1.0);
}

TEST(StencilParser, TrailingCoefficient) {
  const ParsedStencil parsed = parse_stencil("Y[i] = X[i]*4 - 2*X[i+1];");
  EXPECT_EQ(parsed.kernel.weight_at({0}), 4.0);
  EXPECT_EQ(parsed.kernel.weight_at({1}), -2.0);
}

TEST(StencilParser, RepeatedOffsetsAccumulate) {
  const ParsedStencil parsed = parse_stencil("Y[i] = X[i] + X[i] + X[i+1];");
  EXPECT_EQ(parsed.kernel.weight_at({0}), 2.0);
  EXPECT_EQ(parsed.kernel.support().size(), 2);
}

TEST(StencilParser, CancellingTermsDropFromSupport) {
  const ParsedStencil parsed =
      parse_stencil("Y[i] = X[i] - X[i] + X[i+2];");
  EXPECT_EQ(parsed.kernel.support().size(), 1);
  EXPECT_TRUE(parsed.kernel.support().contains({2}));
}

TEST(StencilParser, ThreeDimensionalSobelSlice) {
  const ParsedStencil parsed = parse_stencil(
      "G[i][j][k] = -V[i-1][j-1][k-1] + V[i-1][j-1][k+1]"
      " - 2*V[i][j][k-1] + 2*V[i][j][k+1];");
  EXPECT_EQ(parsed.loop_vars, (std::vector<std::string>{"i", "j", "k"}));
  EXPECT_EQ(parsed.kernel.support().size(), 4);
  EXPECT_EQ(parsed.kernel.weight_at({0, 0, 1}), 2.0);
}

TEST(StencilParser, PartitionsParsedPattern) {
  // The end purpose: feed the parsed support straight into the partitioner
  // and land on the paper's 13 banks.
  const ParsedStencil parsed = parse_stencil(kFig1b);
  PartitionRequest req;
  req.pattern = parsed.kernel.support();
  EXPECT_EQ(Partitioner::solve(req).num_banks(), 13);
}

TEST(StencilParser, RejectsNonAffineIndex) {
  EXPECT_THROW((void)parse_stencil("Y[i] = X[i*2];"), InvalidArgument);
}

TEST(StencilParser, RejectsInconsistentVariables) {
  EXPECT_THROW((void)parse_stencil("Y[i][j] = X[i][j] + X[j][i];"),
               InvalidArgument);
}

TEST(StencilParser, RejectsDimensionalityMismatch) {
  EXPECT_THROW((void)parse_stencil("Y[i][j] = X[i][j] + X[i];"),
               InvalidArgument);
}

TEST(StencilParser, RejectsMultipleInputArrays) {
  EXPECT_THROW((void)parse_stencil("Y[i] = X[i] + Z[i];"), InvalidArgument);
}

TEST(StencilParser, RejectsConstantOnlyInputIndex) {
  EXPECT_THROW((void)parse_stencil("Y[i] = X[3];"), InvalidArgument);
}

TEST(StencilParser, RejectsMalformedSyntax) {
  EXPECT_THROW((void)parse_stencil(""), InvalidArgument);
  EXPECT_THROW((void)parse_stencil("Y[i] ="), InvalidArgument);
  EXPECT_THROW((void)parse_stencil("Y[i] = X[i"), InvalidArgument);
  EXPECT_THROW((void)parse_stencil("Y = X[i];"), InvalidArgument);
  EXPECT_THROW((void)parse_stencil("Y[i] = X[i]; garbage"), InvalidArgument);
  EXPECT_THROW((void)parse_stencil("Y[i] = 2 X[i];"), InvalidArgument);
  EXPECT_THROW((void)parse_stencil("Y[i] @ X[i];"), InvalidArgument);
}

TEST(StencilParser, EmitIsInverseOfParse) {
  const ParsedStencil parsed = parse_stencil(kFig1b);
  const std::string source = emit_stencil_source(parsed.kernel);
  const ParsedStencil reparsed = parse_stencil(source);
  EXPECT_EQ(reparsed.kernel.taps(), parsed.kernel.taps());
  EXPECT_EQ(reparsed.kernel.support(), parsed.kernel.support());
}

TEST(StencilParser, EmitFormatsOffsetsAndCoefficients) {
  const Kernel k({{{-1, 2}, -3.0}, {{0, 0}, 1.0}}, "k");
  const std::string source = emit_stencil_source(k);
  EXPECT_NE(source.find("- 3*X[i-1][j+2]"), std::string::npos);
  EXPECT_NE(source.find("+ X[i][j]"), std::string::npos);
  EXPECT_EQ(source.back(), ';');
}

TEST(StencilParser, EmitRejectsFractionalWeights) {
  const Kernel k({{{0, 0}, 0.5}}, "half");
  EXPECT_THROW((void)emit_stencil_source(k), InvalidArgument);
}

class ParserRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRoundTrip, RandomIntegerKernelsSurvive) {
  // Fuzz-lite: random integer kernels of random rank render to source and
  // parse back tap-for-tap.
  Rng rng(GetParam());
  const int rank = static_cast<int>(rng.uniform(1, 3));
  std::vector<Count> box(static_cast<size_t>(rank), rng.uniform(2, 4));
  const Count volume = NdShape(box).volume();
  const Pattern support =
      patterns::random_pattern(rng, box, rng.uniform(1, volume));
  std::vector<KernelTap> taps;
  for (const NdIndex& o : support.offsets()) {
    Count w = 0;
    while (w == 0) w = rng.uniform(-9, 9);
    taps.push_back({o, static_cast<double>(w)});
  }
  const Kernel kernel(taps, "fuzz");
  const ParsedStencil reparsed = parse_stencil(emit_stencil_source(kernel));
  EXPECT_EQ(reparsed.kernel.taps(), kernel.taps());
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ParserRoundTrip,
                         ::testing::Range<std::uint64_t>(9000, 9030));

TEST(StencilParser, ErrorsCarryOffsets) {
  try {
    (void)parse_stencil("Y[i] = X[i*2];");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace mempart::loopnest
