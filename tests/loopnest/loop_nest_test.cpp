#include "loopnest/loop_nest.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/errors.h"

namespace mempart::loopnest {
namespace {

TEST(Loop, TripCount) {
  EXPECT_EQ((Loop{0, 9, 1}).trip_count(), 10);
  EXPECT_EQ((Loop{3, 638, 1}).trip_count(), 636);  // Fig. 1(b) outer loop
  EXPECT_EQ((Loop{0, 9, 2}).trip_count(), 5);
  EXPECT_EQ((Loop{0, 8, 2}).trip_count(), 5);
  EXPECT_EQ((Loop{5, 4, 1}).trip_count(), 0);
}

TEST(LoopNest, TotalIterations) {
  const LoopNest nest({{3, 638, 1}, {3, 478, 1}});
  EXPECT_EQ(nest.total_iterations(), 636 * 476);
}

TEST(LoopNest, ForEachVisitsInProgramOrder) {
  const LoopNest nest({{0, 1, 1}, {0, 2, 1}});
  std::vector<NdIndex> visited;
  nest.for_each([&](const NdIndex& iv) { visited.push_back(iv); });
  EXPECT_EQ(visited, (std::vector<NdIndex>{{0, 0}, {0, 1}, {0, 2},
                                           {1, 0}, {1, 1}, {1, 2}}));
}

TEST(LoopNest, ForEachRespectsStepAndLowerBound) {
  const LoopNest nest({{2, 8, 3}});
  std::vector<Coord> visited;
  nest.for_each([&](const NdIndex& iv) { visited.push_back(iv[0]); });
  EXPECT_EQ(visited, (std::vector<Coord>{2, 5, 8}));
}

TEST(LoopNest, EmptyDomainVisitsNothing) {
  const LoopNest nest({{0, 3, 1}, {5, 2, 1}});
  Count visits = 0;
  nest.for_each([&](const NdIndex&) { ++visits; });
  EXPECT_EQ(visits, 0);
  EXPECT_EQ(nest.total_iterations(), 0);
}

TEST(LoopNest, SampledSubsetOfFullSweep) {
  const LoopNest nest({{0, 9, 1}, {0, 9, 1}});
  std::vector<NdIndex> all;
  nest.for_each([&](const NdIndex& iv) { all.push_back(iv); });
  std::vector<NdIndex> sampled;
  nest.for_each_sampled(10, [&](const NdIndex& iv) { sampled.push_back(iv); });
  EXPECT_GE(sampled.size(), 10u);
  EXPECT_LE(sampled.size(), all.size());
  EXPECT_EQ(sampled.front(), all.front());
  for (const NdIndex& iv : sampled) {
    EXPECT_NE(std::find(all.begin(), all.end(), iv), all.end());
  }
}

TEST(LoopNest, SampledMoreThanTotalVisitsAll) {
  const LoopNest nest({{0, 4, 1}});
  Count visits = 0;
  nest.for_each_sampled(100, [&](const NdIndex&) { ++visits; });
  EXPECT_EQ(visits, 5);
}

TEST(LoopNest, SampledHonoursStep) {
  const LoopNest nest({{1, 9, 2}});
  std::vector<Coord> visited;
  nest.for_each_sampled(100, [&](const NdIndex& iv) { visited.push_back(iv[0]); });
  EXPECT_EQ(visited, (std::vector<Coord>{1, 3, 5, 7, 9}));
}

TEST(LoopNest, RejectsMalformed) {
  EXPECT_THROW((void)LoopNest({}), InvalidArgument);
  EXPECT_THROW((void)LoopNest({{0, 4, 0}}), InvalidArgument);
  EXPECT_THROW((void)LoopNest({{0, 4, -1}}), InvalidArgument);
  const LoopNest ok({{0, 1, 1}});
  EXPECT_THROW((void)ok.for_each_sampled(0, [](const NdIndex&) {}), InvalidArgument);
}

TEST(LoopNest, ToString) {
  const LoopNest nest({{3, 638, 1}, {0, 8, 2}});
  const std::string s = nest.to_string();
  EXPECT_NE(s.find("i0=3..638"), std::string::npos);
  EXPECT_NE(s.find("step 2"), std::string::npos);
}

}  // namespace
}  // namespace mempart::loopnest
