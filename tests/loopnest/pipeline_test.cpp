#include "loopnest/pipeline.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pattern/pattern_library.h"

namespace mempart::loopnest {
namespace {

StencilProgram log_program() {
  return StencilProgram(NdShape({20, 20}), patterns::log5x5(), "LoG");
}

TEST(Pipeline, ConflictFreeRunsAtBaseII) {
  const PipelineEstimate e = estimate_pipeline(log_program(), /*delta=*/0);
  EXPECT_EQ(e.ii, 1);
  EXPECT_EQ(e.iterations, 16 * 16);
  EXPECT_EQ(e.total_cycles, 5 + 1 * (256 - 1));
  // Serial II is m = 13, so the speedup approaches 13x for long loops.
  EXPECT_GT(e.speedup_vs_serial, 10.0);
  EXPECT_LT(e.speedup_vs_serial, 13.0);
}

TEST(Pipeline, DeltaAddsToII) {
  const PipelineEstimate e = estimate_pipeline(log_program(), /*delta=*/1);
  EXPECT_EQ(e.ii, 2);
  EXPECT_EQ(e.total_cycles, 5 + 2 * 255);
}

TEST(Pipeline, PortsDivideTheStall) {
  PipelineParams params;
  params.ports_per_bank = 2;
  const PipelineEstimate e = estimate_pipeline(log_program(), /*delta=*/1,
                                               params);
  EXPECT_EQ(e.ii, 1);  // ceil(2/2)
}

TEST(Pipeline, BaseIIDominatesWhenLarger) {
  PipelineParams params;
  params.base_ii = 4;
  const PipelineEstimate e = estimate_pipeline(log_program(), /*delta=*/1,
                                               params);
  EXPECT_EQ(e.ii, 4);
}

TEST(Pipeline, SpeedupConsistentWithIIRatio) {
  // For long loops speedup -> serial_ii / ii.
  const PipelineEstimate e = estimate_pipeline(log_program(), /*delta=*/1);
  EXPECT_NEAR(e.speedup_vs_serial, 13.0 / 2.0, 0.3);
}

TEST(Pipeline, RejectsBadArguments) {
  EXPECT_THROW((void)estimate_pipeline(log_program(), -1), InvalidArgument);
  PipelineParams bad;
  bad.depth = 0;
  EXPECT_THROW((void)estimate_pipeline(log_program(), 0, bad),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart::loopnest
