#include "common/nd.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart {
namespace {

TEST(NdShape, BasicProperties) {
  const NdShape s({640, 480});
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.extent(0), 640);
  EXPECT_EQ(s.extent(1), 480);
  EXPECT_EQ(s.volume(), 640 * 480);
  EXPECT_EQ(s.to_string(), "640x480");
}

TEST(NdShape, RejectsInvalidExtents) {
  EXPECT_THROW((void)NdShape(std::vector<Count>{}), InvalidArgument);
  EXPECT_THROW((void)NdShape({0}), InvalidArgument);
  EXPECT_THROW((void)NdShape({5, -1}), InvalidArgument);
}

TEST(NdShape, RejectsOverflowingVolume) {
  EXPECT_THROW((void)NdShape({INT64_MAX, 2}), InvalidArgument);
}

TEST(NdShape, Contains) {
  const NdShape s({3, 4});
  EXPECT_TRUE(s.contains({0, 0}));
  EXPECT_TRUE(s.contains({2, 3}));
  EXPECT_FALSE(s.contains({3, 0}));
  EXPECT_FALSE(s.contains({0, 4}));
  EXPECT_FALSE(s.contains({-1, 0}));
  EXPECT_FALSE(s.contains({0}));       // rank mismatch
  EXPECT_FALSE(s.contains({0, 0, 0}));
}

TEST(NdShape, FlattenUnflattenRoundTrip) {
  const NdShape s({3, 5, 2});
  Address expected = 0;
  s.for_each([&](const NdIndex& x) {
    EXPECT_EQ(s.flatten(x), expected);
    EXPECT_EQ(s.unflatten(expected), x);
    ++expected;
  });
  EXPECT_EQ(expected, s.volume());
}

TEST(NdShape, FlattenIsRowMajor) {
  const NdShape s({4, 7});
  EXPECT_EQ(s.flatten({0, 0}), 0);
  EXPECT_EQ(s.flatten({0, 6}), 6);
  EXPECT_EQ(s.flatten({1, 0}), 7);
  EXPECT_EQ(s.flatten({3, 6}), 27);
}

TEST(NdShape, FlattenRejectsOutOfDomain) {
  const NdShape s({2, 2});
  EXPECT_THROW((void)s.flatten({2, 0}), InvalidArgument);
  EXPECT_THROW((void)s.unflatten(4), InvalidArgument);
  EXPECT_THROW((void)s.unflatten(-1), InvalidArgument);
}

TEST(NdShape, ForEachVisitsEveryIndexOnce) {
  const NdShape s({2, 3});
  Count visits = 0;
  s.for_each([&](const NdIndex&) { ++visits; });
  EXPECT_EQ(visits, 6);
}

TEST(NdShape, Rank1) {
  const NdShape s({5});
  EXPECT_EQ(s.flatten({4}), 4);
  EXPECT_EQ(s.unflatten(3), (NdIndex{3}));
}

TEST(NdIndexOps, AddSub) {
  EXPECT_EQ(add({1, 2}, {3, -4}), (NdIndex{4, -2}));
  EXPECT_EQ(sub({1, 2}, {3, -4}), (NdIndex{-2, 6}));
  EXPECT_THROW((void)add({1}, {1, 2}), InvalidArgument);
  EXPECT_THROW((void)sub({1}, {1, 2}), InvalidArgument);
}

TEST(NdIndexOps, ToString) {
  EXPECT_EQ(to_string(NdIndex{3, 4}), "(3, 4)");
  EXPECT_EQ(to_string(NdIndex{-1}), "(-1)");
}

}  // namespace
}  // namespace mempart
