#include "common/op_counter.h"

#include <gtest/gtest.h>

namespace mempart {
namespace {

TEST(OpCounter, InactiveWithoutScope) {
  EXPECT_FALSE(OpCounter::active());
  // Charging without a scope must be a harmless no-op.
  OpCounter::charge(OpKind::kAdd, 100);
  EXPECT_FALSE(OpCounter::active());
}

TEST(OpCounter, ScopeAccumulatesByKind) {
  OpScope scope;
  EXPECT_TRUE(OpCounter::active());
  OpCounter::charge(OpKind::kAdd, 3);
  OpCounter::charge(OpKind::kMul, 2);
  OpCounter::charge(OpKind::kDiv);
  OpCounter::charge(OpKind::kCompare, 7);
  EXPECT_EQ(scope.tally().add, 3);
  EXPECT_EQ(scope.tally().mul, 2);
  EXPECT_EQ(scope.tally().div, 1);
  EXPECT_EQ(scope.tally().compare, 7);
  EXPECT_EQ(scope.tally().arithmetic(), 6);
  EXPECT_EQ(scope.tally().all(), 13);
}

TEST(OpCounter, NestedScopesPropagateToParent) {
  OpScope outer;
  OpCounter::charge(OpKind::kAdd);
  {
    OpScope inner;
    OpCounter::charge(OpKind::kMul, 5);
    EXPECT_EQ(inner.tally().mul, 5);
    // The outer scope has not yet seen the inner charges.
    EXPECT_EQ(outer.tally().mul, 0);
  }
  EXPECT_EQ(outer.tally().add, 1);
  EXPECT_EQ(outer.tally().mul, 5);
}

TEST(OpCounter, FreshScopeStartsAtZero) {
  {
    OpScope scope;
    OpCounter::charge(OpKind::kAdd, 42);
  }
  OpScope scope;
  EXPECT_EQ(scope.tally().all(), 0);
}

TEST(OpTally, PlusEqualsAndToString) {
  OpTally a{.add = 1, .mul = 2, .div = 3, .compare = 4};
  OpTally b{.add = 10, .mul = 20, .div = 30, .compare = 40};
  a += b;
  EXPECT_EQ(a.add, 11);
  EXPECT_EQ(a.mul, 22);
  EXPECT_EQ(a.div, 33);
  EXPECT_EQ(a.compare, 44);
  EXPECT_NE(a.to_string().find("arith=66"), std::string::npos);
}

}  // namespace
}  // namespace mempart
