#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baseline/ltb.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(513);
  pool.parallel_for(static_cast<Count>(hits.size()), [&](Count i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, MapResultsAreThreadCountInvariant) {
  const Count n = 301;
  const auto job = [](Count i) { return i * i + 7; };
  std::vector<Count> expected;
  for (Count i = 0; i < n; ++i) expected.push_back(job(i));
  for (const Count threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.map<Count>(n, job), expected)
        << "diverged at " << threads << " threads";
  }
}

TEST(ThreadPool, HandlesEmptyAndSingletonBatches) {
  ThreadPool pool(3);
  Count calls = 0;
  pool.parallel_for(0, [&](Count) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](Count) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](Count i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must survive a failed batch.
  std::atomic<Count> sum{0};
  pool.parallel_for(10, [&](Count i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolChunked, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const Count n : {0, 1, 7, 16, 17, 257}) {
    for (const Count min_grain : {1, 4, 16, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(n) + 1);
      pool.parallel_for_chunked(n, min_grain, [&](Count begin, Count end) {
        EXPECT_LE(begin, end);
        for (Count i = begin; i < end; ++i) {
          hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (Count i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "n=" << n << " grain=" << min_grain;
      }
    }
  }
}

TEST(ThreadPoolChunked, SmallSweepStaysOnTheCallingThread) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  // n <= min_grain means a single chunk, run inline with no pool dispatch.
  pool.parallel_for_chunked(8, 16, [&](Count begin, Count end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 8);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolChunked, ChunksRespectTheMinimumGrain) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<Count> sizes;
  pool.parallel_for_chunked(100, 8, [&](Count begin, Count end) {
    const std::lock_guard<std::mutex> lock(mutex);
    sizes.push_back(end - begin);
  });
  Count total = 0;
  for (const Count size : sizes) {
    EXPECT_GE(size, 8);
    total += size;
  }
  EXPECT_EQ(total, 100);
  // At most 4 chunks per executor.
  EXPECT_LE(static_cast<Count>(sizes.size()), 4 * pool.size());
}

TEST(ThreadPoolChunked, MapChunkedIsThreadCountInvariant) {
  const Count n = 301;
  const auto job = [](Count i) { return 3 * i + 1; };
  std::vector<Count> expected;
  for (Count i = 0; i < n; ++i) expected.push_back(job(i));
  for (const Count threads : {1, 2, 8}) {
    for (const Count min_grain : {1, 16, 500}) {
      ThreadPool pool(threads);
      EXPECT_EQ(pool.map_chunked<Count>(n, min_grain, job), expected)
          << threads << " threads, grain " << min_grain;
    }
  }
}

TEST(ThreadPoolChunked, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_chunked(64, 4,
                                         [&](Count begin, Count) {
                                           if (begin >= 32) {
                                             throw std::runtime_error("boom");
                                           }
                                         }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<Count> sum{0};
  pool.parallel_for_chunked(10, 1, [&](Count begin, Count end) {
    for (Count i = begin; i < end; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForChunked, FreeFunctionSkipsPoolConstructionForTinySweeps) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for_chunked(4, 16,
                       [&](Count, Count) { seen = std::this_thread::get_id(); },
                       /*threads=*/8);
  EXPECT_EQ(seen, caller);

  std::vector<std::atomic<int>> hits(100);
  parallel_for_chunked(100, 4,
                       [&](Count begin, Count end) {
                         for (Count i = begin; i < end; ++i) {
                           hits[static_cast<size_t>(i)].fetch_add(
                               1, std::memory_order_relaxed);
                         }
                       },
                       /*threads=*/3);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, FreeFunctionMatchesSequential) {
  std::vector<Count> out(64, 0);
  parallel_for(static_cast<Count>(out.size()),
               [&](Count i) { out[static_cast<size_t>(i)] = 2 * i; },
               /*threads=*/3);
  for (Count i = 0; i < static_cast<Count>(out.size()); ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], 2 * i);
  }
}

TEST(ParallelFor, DefaultThreadCountOverride) {
  set_default_thread_count(3);
  EXPECT_EQ(default_thread_count(), 3);
  set_default_thread_count(0);
  EXPECT_GE(default_thread_count(), 1);
}

TEST(LtbParallel, ThreadedSearchMatchesSequentialSolution) {
  const std::vector<Pattern> cases = {patterns::box2d(2), patterns::cross2d(2),
                                      patterns::prewitt3x3()};
  for (const Pattern& pattern : cases) {
    baseline::LtbOptions sequential;
    const auto expected = baseline::ltb_solve(pattern, sequential);
    for (const Count threads : {2, 4}) {
      baseline::LtbOptions sharded;
      sharded.threads = threads;
      const auto got = baseline::ltb_solve(pattern, sharded);
      EXPECT_EQ(got.num_banks, expected.num_banks);
      EXPECT_EQ(got.transform, expected.transform)
          << pattern.name() << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace mempart
