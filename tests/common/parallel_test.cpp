#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "baseline/ltb.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(513);
  pool.parallel_for(static_cast<Count>(hits.size()), [&](Count i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, MapResultsAreThreadCountInvariant) {
  const Count n = 301;
  const auto job = [](Count i) { return i * i + 7; };
  std::vector<Count> expected;
  for (Count i = 0; i < n; ++i) expected.push_back(job(i));
  for (const Count threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.map<Count>(n, job), expected)
        << "diverged at " << threads << " threads";
  }
}

TEST(ThreadPool, HandlesEmptyAndSingletonBatches) {
  ThreadPool pool(3);
  Count calls = 0;
  pool.parallel_for(0, [&](Count) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](Count) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](Count i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must survive a failed batch.
  std::atomic<Count> sum{0};
  pool.parallel_for(10, [&](Count i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, FreeFunctionMatchesSequential) {
  std::vector<Count> out(64, 0);
  parallel_for(static_cast<Count>(out.size()),
               [&](Count i) { out[static_cast<size_t>(i)] = 2 * i; },
               /*threads=*/3);
  for (Count i = 0; i < static_cast<Count>(out.size()); ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], 2 * i);
  }
}

TEST(ParallelFor, DefaultThreadCountOverride) {
  set_default_thread_count(3);
  EXPECT_EQ(default_thread_count(), 3);
  set_default_thread_count(0);
  EXPECT_GE(default_thread_count(), 1);
}

TEST(LtbParallel, ThreadedSearchMatchesSequentialSolution) {
  const std::vector<Pattern> cases = {patterns::box2d(2), patterns::cross2d(2),
                                      patterns::prewitt3x3()};
  for (const Pattern& pattern : cases) {
    baseline::LtbOptions sequential;
    const auto expected = baseline::ltb_solve(pattern, sequential);
    for (const Count threads : {2, 4}) {
      baseline::LtbOptions sharded;
      sharded.threads = threads;
      const auto got = baseline::ltb_solve(pattern, sharded);
      EXPECT_EQ(got.num_banks, expected.num_banks);
      EXPECT_EQ(got.transform, expected.transform)
          << pattern.name() << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace mempart
