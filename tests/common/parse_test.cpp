// CLI-facing parsing guards: malformed "--shape 640xABC" or "box:junk"
// input must surface as a friendly InvalidArgument, never as an uncaught
// std::invalid_argument from std::stoll.
#include <gtest/gtest.h>

#include "common/args.h"
#include "common/errors.h"

namespace mempart {
namespace {

TEST(ParseCount, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_count("0", "test"), 0);
  EXPECT_EQ(parse_count("640", "test"), 640);
  EXPECT_EQ(parse_count("-12", "test"), -12);
}

TEST(ParseCount, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_count("", "test"), InvalidArgument);
  EXPECT_THROW((void)parse_count("ABC", "test"), InvalidArgument);
  EXPECT_THROW((void)parse_count("12abc", "test"), InvalidArgument);
  EXPECT_THROW((void)parse_count("1.5", "test"), InvalidArgument);
  EXPECT_THROW((void)parse_count(" 12", "test"), InvalidArgument);
  EXPECT_THROW((void)parse_count("99999999999999999999", "test"), InvalidArgument);
}

TEST(ParseCount, ErrorNamesTheContext) {
  try {
    (void)parse_count("junk", "shape extent");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("shape extent"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("junk"), std::string::npos);
  }
}

TEST(ParseShape, AcceptsWellFormedShapes) {
  EXPECT_EQ(parse_shape("640x480"), NdShape({640, 480}));
  EXPECT_EQ(parse_shape("7"), NdShape({7}));
  EXPECT_EQ(parse_shape("3x4x5"), NdShape({3, 4, 5}));
}

TEST(ParseShape, RejectsMalformedShapes) {
  EXPECT_THROW((void)parse_shape(""), InvalidArgument);
  EXPECT_THROW((void)parse_shape("640xABC"), InvalidArgument);
  EXPECT_THROW((void)parse_shape("640x"), InvalidArgument);
  EXPECT_THROW((void)parse_shape("x480"), InvalidArgument);
  EXPECT_THROW((void)parse_shape("640x-480"), InvalidArgument);  // negative extent
  EXPECT_THROW((void)parse_shape("640x0"), InvalidArgument);     // zero extent
}

}  // namespace
}  // namespace mempart
