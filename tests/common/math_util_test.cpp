#include "common/math_util.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart {
namespace {

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 1), 1);
  EXPECT_EQ(ceil_div(480, 13), 37);
  EXPECT_EQ(ceil_div(400, 27), 15);
}

TEST(CeilDiv, RejectsBadArguments) {
  EXPECT_THROW((void)ceil_div(-1, 5), InvalidArgument);
  EXPECT_THROW((void)ceil_div(5, 0), InvalidArgument);
  EXPECT_THROW((void)ceil_div(5, -2), InvalidArgument);
}

TEST(FloorDiv, RoundsTowardNegativeInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(floor_div(0, 3), 0);
}

TEST(FloorDiv, RejectsNonPositiveDivisor) {
  EXPECT_THROW((void)floor_div(1, 0), InvalidArgument);
  EXPECT_THROW((void)floor_div(1, -1), InvalidArgument);
}

TEST(EuclidMod, AlwaysNonNegative) {
  EXPECT_EQ(euclid_mod(7, 3), 1);
  EXPECT_EQ(euclid_mod(-7, 3), 2);
  EXPECT_EQ(euclid_mod(-6, 3), 0);
  EXPECT_EQ(euclid_mod(0, 13), 0);
}

TEST(EuclidMod, MatchesFloorDivIdentity) {
  for (Count a = -20; a <= 20; ++a) {
    for (Count b = 1; b <= 7; ++b) {
      EXPECT_EQ(floor_div(a, b) * b + euclid_mod(a, b), a)
          << "a=" << a << " b=" << b;
      EXPECT_GE(euclid_mod(a, b), 0);
      EXPECT_LT(euclid_mod(a, b), b);
    }
  }
}

TEST(RoundUp, MultiplesAndNonMultiples) {
  EXPECT_EQ(round_up(480, 13), 481);
  EXPECT_EQ(round_up(480, 8), 480);
  EXPECT_EQ(round_up(0, 4), 0);
  EXPECT_EQ(round_up(1, 25), 25);
}

TEST(CheckedMul, DetectsOverflow) {
  EXPECT_EQ(checked_mul(3, 7), 21);
  EXPECT_EQ(checked_mul(0, INT64_MAX), 0);
  EXPECT_THROW((void)checked_mul(INT64_MAX, 2), InvalidArgument);
  EXPECT_THROW((void)checked_mul(-1, 2), InvalidArgument);
}

TEST(CheckedAdd, DetectsOverflow) {
  EXPECT_EQ(checked_add(3, 7), 10);
  EXPECT_THROW((void)checked_add(INT64_MAX, 1), InvalidArgument);
  EXPECT_THROW((void)checked_add(-1, 1), InvalidArgument);
}

TEST(CheckedMul, OverflowIsDistinguishableFromBadArgument) {
  // Overflow raises the OverflowError subtype so callers (and the check
  // harness) can tell "result does not fit" from "caller passed nonsense";
  // both still satisfy existing EXPECT_THROW(InvalidArgument) sites.
  EXPECT_THROW((void)checked_mul(INT64_MAX, 2), OverflowError);
  EXPECT_THROW((void)checked_add(INT64_MAX, 1), OverflowError);
  try {
    (void)checked_mul(-1, 2);
    FAIL() << "negative operand must throw";
  } catch (const OverflowError&) {
    FAIL() << "negative operand is invalid, not overflow";
  } catch (const InvalidArgument&) {
    // expected
  }
}

TEST(CheckedMulSigned, CoversNegativeOperands) {
  EXPECT_EQ(checked_mul_signed(-3, 7), -21);
  EXPECT_EQ(checked_mul_signed(-3, -7), 21);
  EXPECT_EQ(checked_mul_signed(0, INT64_MIN), 0);
  EXPECT_THROW((void)checked_mul_signed(INT64_MAX, 2), OverflowError);
  EXPECT_THROW((void)checked_mul_signed(INT64_MIN, -1), OverflowError);
}

TEST(CheckedAddSigned, CoversNegativeOperands) {
  EXPECT_EQ(checked_add_signed(-3, 7), 4);
  EXPECT_THROW((void)checked_add_signed(INT64_MAX, 1), OverflowError);
  EXPECT_THROW((void)checked_add_signed(INT64_MIN, -1), OverflowError);
}

TEST(AbsDiffChecked, HandlesFullRange) {
  EXPECT_EQ(abs_diff_checked(3, 10), 7);
  EXPECT_EQ(abs_diff_checked(10, 3), 7);
  EXPECT_EQ(abs_diff_checked(-5, 5), 10);
  EXPECT_EQ(abs_diff_checked(INT64_MIN + 1, 0), INT64_MAX);
  // INT64_MAX - INT64_MIN does not fit in 64 bits; naive subtraction would
  // wrap to -1 and "work". It must throw instead.
  EXPECT_THROW((void)abs_diff_checked(INT64_MAX, INT64_MIN), OverflowError);
  EXPECT_THROW((void)abs_diff_checked(INT64_MIN, 0), OverflowError);
}

}  // namespace
}  // namespace mempart
