#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/errors.h"

namespace mempart {
namespace {

/// Every test runs against a scrubbed MEMPART_* environment and restores
/// whatever the harness had afterwards, so suites can run in any order.
class EnvParsingTest : public ::testing::Test {
 protected:
  static constexpr const char* kVars[] = {
      "MEMPART_THREADS", "MEMPART_CACHE_CAPACITY", "MEMPART_CACHE_SHARDS",
      "MEMPART_FLIGHT_CAPACITY", "MEMPART_SIMD"};

  void SetUp() override {
    for (const char* var : kVars) {
      if (const char* value = std::getenv(var)) saved_[var] = value;
      ::unsetenv(var);
    }
  }
  void TearDown() override {
    for (const char* var : kVars) {
      const auto it = saved_.find(var);
      if (it == saved_.end()) {
        ::unsetenv(var);
      } else {
        ::setenv(var, it->second.c_str(), 1);
      }
    }
  }

 private:
  std::map<std::string, std::string> saved_;
};

TEST_F(EnvParsingTest, UnsetAndEmptySelectTheFallback) {
  EXPECT_EQ(env_int("MEMPART_THREADS", 0, 100), std::nullopt);
  EXPECT_EQ(env_count("MEMPART_THREADS", 7, 0, 100), 7);
  ::setenv("MEMPART_THREADS", "", 1);
  EXPECT_EQ(env_int("MEMPART_THREADS", 0, 100), std::nullopt);
  EXPECT_EQ(env_count("MEMPART_THREADS", 7, 0, 100), 7);
}

TEST_F(EnvParsingTest, ParsesPlainDecimalValues) {
  ::setenv("MEMPART_THREADS", "16", 1);
  EXPECT_EQ(env_int("MEMPART_THREADS", 0, 100), 16);
  EXPECT_EQ(env_count("MEMPART_THREADS", 7, 0, 100), 16);
}

TEST_F(EnvParsingTest, RejectsGarbageNamingTheVariable) {
  ::setenv("MEMPART_THREADS", "abc", 1);
  try {
    (void)env_int("MEMPART_THREADS", 0, 100);
    FAIL() << "garbage value must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("MEMPART_THREADS"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

TEST_F(EnvParsingTest, RejectsTrailingTextAndNonDecimalSpellings) {
  for (const char* bad : {"8x", "8 ", " 8", "0x10", "1e3", "+8", "8.0"}) {
    ::setenv("MEMPART_THREADS", bad, 1);
    EXPECT_THROW((void)env_int("MEMPART_THREADS", 0, 100), InvalidArgument)
        << "value: '" << bad << "'";
  }
}

TEST_F(EnvParsingTest, RejectsNegativeAndOutOfRangeValues) {
  ::setenv("MEMPART_THREADS", "-4", 1);
  EXPECT_THROW((void)env_int("MEMPART_THREADS", 0, 100), InvalidArgument);
  ::setenv("MEMPART_THREADS", "101", 1);
  EXPECT_THROW((void)env_int("MEMPART_THREADS", 0, 100), InvalidArgument);
  // The diagnostic names the documented range.
  try {
    (void)env_int("MEMPART_THREADS", 0, 100);
    FAIL();
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("100"), std::string::npos);
  }
}

TEST_F(EnvParsingTest, RejectsSixtyFourBitOverflow) {
  ::setenv("MEMPART_THREADS", "9223372036854775808", 1);  // INT64_MAX + 1
  EXPECT_THROW((void)env_int("MEMPART_THREADS", 0, 100), InvalidArgument);
  ::setenv("MEMPART_THREADS", "99999999999999999999999999", 1);
  EXPECT_THROW((void)env_int("MEMPART_THREADS", 0, 100), InvalidArgument);
}

// One regression per real knob: validate_env() is what `mempart` runs at
// startup, so each variable must surface its own name in the diagnostic
// instead of silently falling back (the pre-fix behaviour).
TEST_F(EnvParsingTest, ValidateEnvChecksEveryIntegerKnob) {
  const std::vector<std::pair<const char*, const char*>> cases = {
      {"MEMPART_THREADS", "many"},
      {"MEMPART_CACHE_CAPACITY", "-1"},
      {"MEMPART_CACHE_SHARDS", "3.5"},
      {"MEMPART_FLIGHT_CAPACITY", "18446744073709551616"},
  };
  for (const auto& [var, bad] : cases) {
    ::setenv(var, bad, 1);
    try {
      validate_env();
      FAIL() << var << "=" << bad << " must be rejected";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(var), std::string::npos)
          << "diagnostic must name " << var << ", got: " << e.what();
    }
    ::unsetenv(var);
  }
  EXPECT_NO_THROW(validate_env());
}

TEST_F(EnvParsingTest, ValidateEnvChecksTheSimdTierSpelling) {
  ::setenv("MEMPART_SIMD", "avx1024", 1);
  try {
    validate_env();
    FAIL() << "unknown tier must be rejected";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("MEMPART_SIMD"), std::string::npos);
  }
  for (const char* good : {"scalar", "sse2", "avx2", "neon", "auto"}) {
    ::setenv("MEMPART_SIMD", good, 1);
    EXPECT_NO_THROW(validate_env()) << good;
  }
}

TEST_F(EnvParsingTest, RangesAcceptTheirDocumentedBounds) {
  ::setenv("MEMPART_THREADS", "4096", 1);
  EXPECT_EQ(env_count("MEMPART_THREADS", 0, 0, kMaxEnvThreads),
            kMaxEnvThreads);
  ::setenv("MEMPART_THREADS", "4097", 1);
  EXPECT_THROW((void)env_count("MEMPART_THREADS", 0, 0, kMaxEnvThreads),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart
