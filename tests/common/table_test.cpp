#include "common/table.h"

#include <gtest/gtest.h>

namespace mempart {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.row({"name", "value"});
  t.row({"x", "12345"});
  const std::string out = t.to_string();
  // Both rows must have the second column starting at the same offset.
  const auto first_line = out.substr(0, out.find('\n'));
  EXPECT_NE(first_line.find("name"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  const size_t col_in_row0 = first_line.find("value");
  const std::string second_line =
      out.substr(out.find('\n') + 1,
                 out.find('\n', out.find('\n') + 1) - out.find('\n') - 1);
  EXPECT_EQ(second_line.find("12345"), col_in_row0);
}

TEST(TextTable, CellAppendsToCurrentRow) {
  TextTable t;
  t.add_row();
  t.cell("a").cell(std::int64_t{42}).cell(3.14159, 2);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(out.find("3.14159"), std::string::npos);
}

TEST(TextTable, SeparatorRendersDashes) {
  TextTable t;
  t.row({"abc"});
  t.separator();
  t.row({"def"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CellWithoutRowCreatesOne) {
  TextTable t;
  t.cell("solo");
  EXPECT_NE(t.to_string().find("solo"), std::string::npos);
}

TEST(TextTable, RaggedRowsSupported) {
  TextTable t;
  t.row({"a", "b", "c"});
  t.row({"only"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace mempart
