#include "common/args.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart {
namespace {

ArgParser make_parser() {
  ArgParser args("prog", "test parser");
  args.add_int("count", 7, "a count")
      .add_string("name", "default", "a name")
      .add_bool("verbose", "chatty output");
  return args;
}

TEST(ArgParser, DefaultsApplyWithoutArgs) {
  ArgParser args = make_parser();
  args.parse({});
  EXPECT_EQ(args.get_int("count"), 7);
  EXPECT_EQ(args.get_string("name"), "default");
  EXPECT_FALSE(args.get_bool("verbose"));
  EXPECT_FALSE(args.help_requested());
}

TEST(ArgParser, SpaceSeparatedValues) {
  ArgParser args = make_parser();
  args.parse({"--count", "42", "--name", "hello"});
  EXPECT_EQ(args.get_int("count"), 42);
  EXPECT_EQ(args.get_string("name"), "hello");
}

TEST(ArgParser, EqualsSeparatedValues) {
  ArgParser args = make_parser();
  args.parse({"--count=-3", "--name=a=b"});
  EXPECT_EQ(args.get_int("count"), -3);
  EXPECT_EQ(args.get_string("name"), "a=b");
}

TEST(ArgParser, BoolFlagAndPositionals) {
  ArgParser args = make_parser();
  args.parse({"file1", "--verbose", "file2"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_EQ(args.positionals(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(ArgParser, HelpFlag) {
  ArgParser args = make_parser();
  args.parse({"--help"});
  EXPECT_TRUE(args.help_requested());
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("a name"), std::string::npos);
  EXPECT_NE(usage.find("prog"), std::string::npos);
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  {
    ArgParser args = make_parser();
    EXPECT_THROW((void)args.parse({"--bogus", "1"}), InvalidArgument);
  }
  {
    ArgParser args = make_parser();
    EXPECT_THROW((void)args.parse({"--count"}), InvalidArgument);  // missing value
  }
  {
    ArgParser args = make_parser();
    EXPECT_THROW((void)args.parse({"--count", "abc"}), InvalidArgument);
  }
  {
    ArgParser args = make_parser();
    EXPECT_THROW((void)args.parse({"--verbose=true"}), InvalidArgument);
  }
}

TEST(ArgParser, RejectsTypeMismatchAndUndeclared) {
  ArgParser args = make_parser();
  args.parse({});
  EXPECT_THROW((void)args.get_int("name"), InvalidArgument);
  EXPECT_THROW((void)args.get_string("missing"), InvalidArgument);
}

TEST(ArgParser, RejectsDuplicateDeclaration) {
  ArgParser args("p");
  args.add_int("x", 0, "first");
  EXPECT_THROW((void)args.add_string("x", "", "second"), InvalidArgument);
}

}  // namespace
}  // namespace mempart
