#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

#include "common/errors.h"

namespace mempart {
namespace {

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Count v = rng.uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(2);
  EXPECT_EQ(rng.uniform(7, 7), 7);
  EXPECT_THROW((void)rng.uniform(3, 2), InvalidArgument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_difference = false;
  for (int i = 0; i < 50 && !any_difference; ++i) {
    any_difference = a.uniform(0, 1 << 30) != b.uniform(0, 1 << 30);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  EXPECT_THROW((void)rng.chance(-0.1), InvalidArgument);
  EXPECT_THROW((void)rng.chance(1.1), InvalidArgument);
}

TEST(Rng, SampleWithoutReplacementIsDistinctSortedSubset) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<Count> seen;
  Count prev = -1;
  for (Count v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
    EXPECT_GT(v, prev) << "must be strictly sorted";
    prev = v;
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(6);
  const auto sample = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(sample, (std::vector<Count>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleRejectsBadArguments) {
  Rng rng(7);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), InvalidArgument);
  EXPECT_THROW((void)rng.sample_without_replacement(-1, 0), InvalidArgument);
}

}  // namespace
}  // namespace mempart
