#include "support/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

// Replacing the global operator new/delete pair affects the whole test
// binary, so the implementation stays minimal (malloc/free plus a relaxed
// counter) and thread-safe; the aligned overloads are untouched and keep
// their default pairing.
namespace {
std::atomic<long> g_allocations{0};
}

// GCC pairs the replaced operator new (malloc-backed) with the library
// delete at some inlined call sites and reports -Wmismatched-new-delete;
// the pairing here is intentional and consistent, so silence it locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace mempart::testsupport {

long allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace mempart::testsupport
