// Process-wide allocation counter for zero-allocation warm-path pins.
//
// The companion .cpp replaces the global operator new/delete pair for the
// whole test binary (there can only be one replacement per program, so the
// counter lives here instead of in each test file that wants a pin). Tests
// sample allocation_count() before and after the code under test and
// assert the delta is zero.
#pragma once

namespace mempart::testsupport {

/// Number of operator new / operator new[] calls since process start.
/// Monotonic; sample before/after and compare deltas.
[[nodiscard]] long allocation_count() noexcept;

}  // namespace mempart::testsupport
