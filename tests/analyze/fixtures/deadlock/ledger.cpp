// Seeded defect: ABBA deadlock. credit() acquires accounts_ then journal_,
// debit() acquires them in the opposite order — two threads running one
// each can deadlock. mempart_analyze must report a lock-order cycle whose
// witness names both locks and both functions.
namespace fixture {

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex);
};

class Ledger {
 public:
  void credit();
  void debit();

 private:
  Mutex accounts_;
  Mutex journal_;
};

void Ledger::credit() {
  MutexLock hold_accounts(accounts_);
  MutexLock hold_journal(journal_);
}

void Ledger::debit() {
  MutexLock hold_journal(journal_);
  MutexLock hold_accounts(accounts_);
}

}  // namespace fixture

// Tally: 1 lock-order cycle (Ledger::accounts_ <-> Ledger::journal_), with
// the witness anchored at the second acquisition inside credit() (line 30).
