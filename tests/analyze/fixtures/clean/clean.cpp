// Clean fixture: every rule's approved shape in one file. Consistent a_
// then b_ lock order across both methods, a relaxed counter (always
// approved), and a MEMPART_NOALLOC fast path whose growth is fenced behind
// a MEMPART_ALLOC_BOUNDARY audit point. Zero findings expected.
#include <atomic>
#include <vector>

#define MEMPART_NOALLOC
#define MEMPART_ALLOC_BOUNDARY

namespace fixture {

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex);
};

class Pool {
 public:
  void fill();
  void drain();
  MEMPART_NOALLOC void fast();
  MEMPART_ALLOC_BOUNDARY void grow();

 private:
  Mutex a_;
  Mutex b_;
  std::atomic<long> ticks_{0};
  std::vector<int> items_;
};

void Pool::fill() {
  MutexLock first(a_);
  MutexLock second(b_);
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void Pool::drain() {
  MutexLock first(a_);
  MutexLock second(b_);
}

void Pool::fast() {
  grow();
}

void Pool::grow() {
  items_.push_back(1);
}

}  // namespace fixture

// Tally: 0 findings — the lock order is globally consistent, the relaxed
// RMW is an approved counter, and the allocation sits behind a boundary.
