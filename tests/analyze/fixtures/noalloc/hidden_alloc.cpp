// Seeded defect: an allocation hidden two calls below a MEMPART_NOALLOC
// entry point. hot_path() promises not to allocate, but it calls refill(),
// which calls topup(), which grows a vector — the analyzer must walk the
// call graph and report the push_back with the full witness chain.
#include <vector>

#define MEMPART_NOALLOC

namespace fixture {

struct Scratch {
  std::vector<int> slots;
};

void refill(Scratch& scratch);
void topup(Scratch& scratch);

MEMPART_NOALLOC void hot_path(Scratch& scratch) {
  refill(scratch);
}

void refill(Scratch& scratch) {
  topup(scratch);
}

void topup(Scratch& scratch) {
  scratch.slots.push_back(1);
}

}  // namespace fixture

// Tally: 1 noalloc (the push_back on line 27, reachable from hot_path via
// refill -> topup).
