// Seeded defect: a relaxed load used as a readiness handshake. The load
// guards mutation of non-atomic state, but memory_order_relaxed
// synchronizes nothing — the payload read can be reordered ahead of the
// producer's write. The approved relaxed counter below must NOT be flagged.
#include <atomic>

namespace fixture {

class Handshake {
 public:
  void poll() {
    if (ready_.load(std::memory_order_relaxed)) {
      payload_ = payload_ + 1;
    }
  }

  void tick() {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> ready_{false};
  std::atomic<long> hits_{0};
  long payload_ = 0;
};

}  // namespace fixture

// Tally: 1 atomic-audit (the relaxed load of ready_ on line 12); the
// relaxed fetch_add counter is an approved pattern and contributes nothing.
