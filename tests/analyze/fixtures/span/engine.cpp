// Seeded defect: a Partitioner entry point defined in a .cpp whose call
// graph never reaches an obs span. traced() carries its own span and must
// not be flagged; solve() reaches nothing and must be.
namespace fixture {

struct Span {
  explicit Span(const char* name);
};

class Partitioner {
 public:
  void solve();
  void traced();
};

void Partitioner::solve() {
  int work = 0;
  (void)work;
}

void Partitioner::traced() {
  Span span("traced");
}

}  // namespace fixture

// Tally: 1 span-coverage (Partitioner::solve, line 16); traced() declares a
// span and is covered.
