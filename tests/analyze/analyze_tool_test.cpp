// Tests for mempart_analyze: the binary over the seeded-defect fixture
// corpus (each fixture plants exactly one defect a rule must catch, with
// the witness location pinned), the CLI contract (exit codes, --list-rules,
// --report schema), and the library pieces the binary is built from (the
// clang AST lowering on a hand-built dump, the facts-cache round trip).
//
// Paths come in as compile definitions (see tests/CMakeLists.txt):
//   MEMPART_ANALYZE_BIN       absolute path to the mempart_analyze binary
//   MEMPART_ANALYZE_FIXTURES  absolute path to tests/analyze/fixtures
//   MEMPART_ANALYZE_SRC_DIR   absolute path to the repo's src/ tree
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "frontend_clang.h"
#include "frontend_syntax.h"
#include "ir.h"
#include "json.h"
#include "rules.h"

namespace {

using mempart::analyze::FactsDb;
using mempart::analyze::Json;

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_analyze(const std::string& args) {
  const std::string cmd =
      std::string(MEMPART_ANALYZE_BIN) + " " + args + " 2>&1";
  RunResult result;
#if defined(_WIN32)
  FILE* pipe = _popen(cmd.c_str(), "r");
#else
  FILE* pipe = popen(cmd.c_str(), "r");
#endif
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), static_cast<int>(buffer.size()), pipe) !=
         nullptr) {
    result.output += buffer.data();
  }
#if defined(_WIN32)
  const int status = _pclose(pipe);
  result.exit_code = status;
#else
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
  return result;
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

std::string fixture(const std::string& rel) {
  return std::string(MEMPART_ANALYZE_FIXTURES) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Seeded-defect fixtures: each must be caught with the expected rule name
// and witness location.
// ---------------------------------------------------------------------------

TEST(AnalyzeTool, DeadlockCycleIsCaughtWithWitnessPath) {
  const RunResult r = run_analyze(fixture("deadlock"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[lock-order]"), 1) << r.output;
  // The cycle names both locks with class-qualified identities...
  EXPECT_NE(r.output.find("Ledger::accounts_ -> Ledger::journal_"),
            std::string::npos)
      << r.output;
  // ...and the witness path pins both acquisition sites.
  EXPECT_NE(r.output.find("in Ledger::credit at"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("in Ledger::debit at"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("ledger.cpp:30:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("ledger.cpp:35:"), std::string::npos) << r.output;
}

TEST(AnalyzeTool, RelaxedHandshakeIsCaughtButCounterIsNot) {
  const RunResult r = run_analyze(fixture("relaxed"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Exactly one finding: the handshake load. The relaxed fetch_add counter
  // is an approved pattern and must not appear.
  EXPECT_EQ(count_occurrences(r.output, "[atomic-audit]"), 1) << r.output;
  EXPECT_NE(r.output.find("handshake.cpp:12:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("relaxed load of `ready_`"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(AnalyzeTool, HiddenAllocationIsCaughtThroughTheCallGraph) {
  const RunResult r = run_analyze(fixture("noalloc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[noalloc]"), 1) << r.output;
  EXPECT_NE(r.output.find("hidden_alloc.cpp:27:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("`push_back` on `scratch.slots`"),
            std::string::npos)
      << r.output;
  // Witness chain: root, then each hop down to the allocation.
  EXPECT_NE(r.output.find("hot_path"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("refill"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("topup"), std::string::npos) << r.output;
}

TEST(AnalyzeTool, SpanlessEntryPointIsCaughtAndTracedOneIsNot) {
  const RunResult r = run_analyze(fixture("span"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[span-coverage]"), 1) << r.output;
  EXPECT_NE(r.output.find("Partitioner::solve"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("Partitioner::traced"), std::string::npos)
      << r.output;
}

TEST(AnalyzeTool, CleanFixtureIsClean) {
  const RunResult r = run_analyze(fixture("clean"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("mempart_analyze: clean"), std::string::npos)
      << r.output;
}

TEST(AnalyzeTool, RuleFilterRestrictsToOneRule) {
  // The whole corpus seeds four defects; --rule lock-order must surface
  // only the deadlock.
  const RunResult r =
      run_analyze("--rule lock-order " + std::string(MEMPART_ANALYZE_FIXTURES));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[lock-order]"), 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[atomic-audit]"), 0) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[noalloc]"), 0) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "[span-coverage]"), 0) << r.output;
}

// ---------------------------------------------------------------------------
// CLI contract
// ---------------------------------------------------------------------------

TEST(AnalyzeTool, BadCompdbPathIsAnInvocationError) {
  const RunResult r = run_analyze("--compdb /nonexistent/compile_commands.json " +
                                  fixture("clean"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  // The diagnostic must name the tool and the unreadable path.
  EXPECT_NE(r.output.find("mempart_analyze:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("/nonexistent/compile_commands.json"),
            std::string::npos)
      << r.output;
}

TEST(AnalyzeTool, ClangFrontendWithoutCompdbIsAnInvocationError) {
  const RunResult r = run_analyze("--frontend clang " + fixture("clean"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--compdb"), std::string::npos) << r.output;
}

TEST(AnalyzeTool, UnknownRuleIsAnInvocationError) {
  const RunResult r = run_analyze("--rule no-such-rule " + fixture("clean"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("no-such-rule"), std::string::npos) << r.output;
}

TEST(AnalyzeTool, MissingPathIsAnInvocationError) {
  const RunResult r = run_analyze(fixture("does/not/exist"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(AnalyzeTool, ListRulesMatchesTheDocumentedFour) {
  const RunResult r = run_analyze("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Exactly the four documented rules, one per line.
  for (const std::string& rule : mempart::analyze::rule_names()) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
  }
  EXPECT_EQ(count_occurrences(r.output, "\n"), 4) << r.output;
}

TEST(AnalyzeTool, ReportJsonParsesWithFindingsAndLockGraph) {
  const std::string report =
      ::testing::TempDir() + "/mempart_analyze_report.json";
  const RunResult r = run_analyze("--report " + report + " " +
                                  std::string(MEMPART_ANALYZE_FIXTURES));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string contents = read_file(report);
  std::remove(report.c_str());
  std::string error;
  const Json doc = Json::parse(contents, &error);
  ASSERT_TRUE(doc.is_object()) << error << "\n" << contents;
  EXPECT_EQ(doc["tool"].as_string(), "mempart_analyze");
  EXPECT_EQ(doc["version"].as_int(), 1);
  const Json& findings = doc["findings"];
  ASSERT_TRUE(findings.is_array()) << contents;
  ASSERT_EQ(findings.size(), 4u) << contents;  // one per seeded defect
  for (size_t i = 0; i < findings.size(); ++i) {
    const Json& f = findings.at(i);
    EXPECT_TRUE(f["file"].is_string());
    EXPECT_TRUE(f["rule"].is_string());
    EXPECT_TRUE(f["message"].is_string());
    EXPECT_GE(f["line"].as_int(0), 1);
    EXPECT_GE(f["col"].as_int(-1), 0);
    EXPECT_TRUE(f["path"].is_array());
  }
  const Json& edges = doc["lock_graph"]["edges"];
  ASSERT_TRUE(edges.is_array()) << contents;
  EXPECT_GE(edges.size(), 3u) << contents;  // 2 cycle edges + clean a_->b_
  bool saw_cycle_edge = false;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges.at(i)["in_cycle"].as_bool()) saw_cycle_edge = true;
  }
  EXPECT_TRUE(saw_cycle_edge) << contents;
}

TEST(AnalyzeTool, GraphExportMarksCycleEdges) {
  const std::string dot = ::testing::TempDir() + "/mempart_lock_graph.dot";
  const RunResult r =
      run_analyze("--graph " + dot + " " + fixture("deadlock"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string contents = read_file(dot);
  std::remove(dot.c_str());
  EXPECT_NE(contents.find("digraph"), std::string::npos) << contents;
  EXPECT_NE(contents.find("Ledger::accounts_"), std::string::npos)
      << contents;
  // Both edges of the ABBA cycle render highlighted.
  EXPECT_EQ(count_occurrences(contents, "color=red"), 2) << contents;
}

// ---------------------------------------------------------------------------
// Library pieces: clang AST lowering and the facts cache
// ---------------------------------------------------------------------------

TEST(AnalyzeLib, LowerClangTuExtractsFunctionsAndAllocs) {
  std::string error;
  const Json ast = Json::parse(read_file(fixture("clang/mini_ast.json")),
                               &error);
  ASSERT_TRUE(ast.is_object()) << error;
  const FactsDb db = mempart::analyze::lower_clang_tu(ast, "");
  ASSERT_EQ(db.functions.size(), 2u);
  const auto& leaky = db.functions[0];
  EXPECT_EQ(leaky.name, "leaky");
  EXPECT_EQ(leaky.loc.file, "mini/alloc.cpp");
  EXPECT_EQ(leaky.loc.line, 4);
  EXPECT_TRUE(leaky.defined_in_cpp);
  ASSERT_EQ(leaky.allocs.size(), 1u);
  EXPECT_EQ(leaky.allocs[0].what, "new");
  EXPECT_EQ(leaky.allocs[0].loc.line, 5);
  // The second function's loc omits `file` (clang's delta encoding); the
  // walker must carry the cursor forward from the first.
  const auto& tidy = db.functions[1];
  EXPECT_EQ(tidy.name, "tidy");
  EXPECT_EQ(tidy.loc.file, "mini/alloc.cpp");
  EXPECT_EQ(tidy.loc.line, 9);
  EXPECT_TRUE(tidy.allocs.empty());
}

TEST(AnalyzeLib, FactsCacheRoundTripPreservesRuleBehavior) {
  // Serialize the extracted facts of a defect fixture, parse them back, and
  // require the rules to reach the identical verdict — the contract the
  // per-TU facts cache depends on.
  const std::string path = fixture("noalloc/hidden_alloc.cpp");
  FactsDb original = mempart::analyze::extract_syntax(path, read_file(path));
  std::string error;
  const Json reparsed = Json::parse(original.to_json().dump(2), &error);
  ASSERT_TRUE(reparsed.is_object()) << error;
  FactsDb restored = FactsDb::from_json(reparsed);
  ASSERT_EQ(restored.functions.size(), original.functions.size());
  EXPECT_EQ(restored.noalloc_names, original.noalloc_names);
  EXPECT_EQ(restored.boundary_names, original.boundary_names);

  original.finalize();
  restored.finalize();
  const auto before = mempart::analyze::run_rules(original, {});
  const auto after = mempart::analyze::run_rules(restored, {});
  ASSERT_EQ(after.findings.size(), before.findings.size());
  for (size_t i = 0; i < after.findings.size(); ++i) {
    EXPECT_EQ(after.findings[i].rule, before.findings[i].rule);
    EXPECT_EQ(after.findings[i].file, before.findings[i].file);
    EXPECT_EQ(after.findings[i].line, before.findings[i].line);
    EXPECT_EQ(after.findings[i].message, before.findings[i].message);
  }
}

TEST(AnalyzeLib, SuppressionPragmaSilencesTheFinding) {
  // The same seeded handshake, but with an analyzer allow() pragma — the
  // finding must be filtered by FactsDb::allowed().
  const std::string source =
      "#include <atomic>\n"
      "class Gate {\n"
      " public:\n"
      "  void poll() {\n"
      "    // mempart-analyze: allow(atomic-audit) test: benign by design\n"
      "    if (flag_.load(std::memory_order_relaxed)) {\n"
      "      state_ = state_ + 1;\n"
      "    }\n"
      "  }\n"
      " private:\n"
      "  std::atomic<bool> flag_{false};\n"
      "  int state_ = 0;\n"
      "};\n";
  FactsDb db = mempart::analyze::extract_syntax("gate.h", source);
  db.finalize();
  const auto result = mempart::analyze::run_rules(db, {"atomic-audit"});
  EXPECT_TRUE(result.findings.empty());
  // Without the pragma the identical code is a finding.
  std::string bare = source;
  const size_t at = bare.find("    // mempart-analyze");
  ASSERT_NE(at, std::string::npos);
  bare.erase(at, bare.find('\n', at) - at + 1);
  FactsDb db2 = mempart::analyze::extract_syntax("gate.h", bare);
  db2.finalize();
  const auto result2 = mempart::analyze::run_rules(db2, {"atomic-audit"});
  ASSERT_EQ(result2.findings.size(), 1u);
  EXPECT_EQ(result2.findings[0].rule, "atomic-audit");
}

// ---------------------------------------------------------------------------
// The gate: the real src/ tree must be clean (also a standalone ctest —
// analyze_self_check — mirroring lint_self_check).
// ---------------------------------------------------------------------------

TEST(AnalyzeTool, RealSourceTreeIsClean) {
  const RunResult r = run_analyze(std::string(MEMPART_ANALYZE_SRC_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("mempart_analyze: clean"), std::string::npos)
      << r.output;
}

}  // namespace
