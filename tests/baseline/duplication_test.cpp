#include "baseline/duplication.h"

#include <gtest/gtest.h>

#include "baseline/ltb_mapping.h"
#include "core/overhead.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

using baseline::duplication_solve;

TEST(Duplication, OneCopyPerAccess) {
  const auto sol =
      duplication_solve(patterns::log5x5(), NdShape({640, 480}));
  EXPECT_EQ(sol.copies, 13);
  EXPECT_EQ(sol.delta_ii, 0);
  EXPECT_EQ(sol.overhead_elements, 12 * 640 * 480);
}

TEST(Duplication, SingleAccessNeedsNoExtraCopy) {
  const auto sol = duplication_solve(Pattern({{0, 0}}), NdShape({8, 8}));
  EXPECT_EQ(sol.copies, 1);
  EXPECT_EQ(sol.overhead_elements, 0);
}

TEST(Duplication, AlwaysDominatedByPartitioning) {
  // The §1 argument: duplication costs (m-1)*W, vastly more than either
  // partitioning scheme on every benchmark.
  for (const Pattern& p : patterns::table1_patterns()) {
    if (p.rank() != 2) continue;
    const NdShape shape({640, 480});
    const auto dup = duplication_solve(p, shape);
    EXPECT_GT(dup.overhead_elements,
              baseline::ltb_storage_overhead_elements(shape, p.size()))
        << p.name();
    EXPECT_GT(dup.overhead_elements,
              storage_overhead_elements(shape, p.size()))
        << p.name();
  }
}

}  // namespace
}  // namespace mempart
