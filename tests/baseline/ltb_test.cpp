#include "baseline/ltb.h"

#include <gtest/gtest.h>

#include <set>

#include "common/errors.h"
#include "common/math_util.h"
#include "core/bank_search.h"
#include "pattern/pattern_library.h"
#include "support/alloc_counter.h"

namespace mempart {
namespace {

using baseline::ltb_conflict_free;
using baseline::ltb_solve;
using baseline::LtbOptions;
using baseline::LtbSolution;

struct LtbCase {
  const char* name;
  Count expected_banks;
};

class Table1LtbBankNumber : public ::testing::TestWithParam<LtbCase> {};

TEST_P(Table1LtbBankNumber, MatchesPaper) {
  for (const Pattern& p : patterns::table1_patterns()) {
    if (p.name() == GetParam().name) {
      EXPECT_EQ(ltb_solve(p).num_banks, GetParam().expected_banks);
      return;
    }
  }
  FAIL() << "pattern not found";
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table1LtbBankNumber,
    ::testing::Values(LtbCase{"LoG", 13}, LtbCase{"Canny", 25},
                      LtbCase{"Prewitt", 9}, LtbCase{"SE", 5},
                      LtbCase{"Sobel3D", 27}, LtbCase{"Median", 7},
                      LtbCase{"Gaussian", 10}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(LtbSolve, FoundTransformIsActuallyConflictFree) {
  for (const Pattern& p : patterns::table1_patterns()) {
    const LtbSolution sol = ltb_solve(p);
    std::set<Count> banks;
    for (const NdIndex& delta : p.offsets()) {
      banks.insert(euclid_mod(sol.transform.apply(delta), sol.num_banks));
    }
    EXPECT_EQ(static_cast<Count>(banks.size()), p.size()) << p.name();
  }
}

TEST(LtbSolve, BeatsOrEqualsClosedFormOnBankCount) {
  // Exhaustive search is optimal over linear transforms, so it can never
  // need MORE banks than the closed-form alpha (which is one candidate).
  for (const Pattern& p : patterns::table1_patterns()) {
    const LtbSolution sol = ltb_solve(p);
    const auto z = LinearTransform::derive(p).transform_values(p);
    const Count ours = minimize_banks(z).num_banks;
    EXPECT_LE(sol.num_banks, ours) << p.name();
  }
}

TEST(LtbSolve, CostsOrdersOfMagnitudeMoreThanClosedForm) {
  // The headline claim of the paper, in arithmetic operations.
  const Pattern p = patterns::log5x5();
  const LtbSolution sol = ltb_solve(p);

  OpScope ours;
  const LinearTransform t = LinearTransform::derive(p);
  (void)minimize_banks(t.transform_values(p));
  EXPECT_GT(sol.ops.arithmetic(), 4 * ours.tally().arithmetic());
  EXPECT_GT(sol.vectors_tried, 1);
}

TEST(LtbSolve, RejectsCapBelowPatternSize) {
  LtbOptions options;
  options.max_banks = 13;  // Canny needs at least m = 25 banks
  EXPECT_THROW((void)ltb_solve(patterns::canny5x5(), options),
               InvalidArgument);
}

TEST(LtbSolve, ReportsExhaustionWhenNoSolutionUnderCap) {
  LtbOptions options;
  options.max_banks = 9;  // Gaussian9: m = 9 but no 9-bank transform exists
  EXPECT_THROW((void)ltb_solve(patterns::gaussian9(), options), InvalidState);
}

TEST(LtbSolve, Rank1RowPattern) {
  const LtbSolution sol = ltb_solve(patterns::row1d(5));
  EXPECT_EQ(sol.num_banks, 5);
}

// --- Pruned enumeration (LtbOptions::prune) ---
//
// The conflict-difference DFS must return bit-for-bit the same solution as
// the exhaustive lexicographic scan — same minimal N AND same (first in
// lex order) alpha — on every pattern, sequentially and threaded. The
// suite name is part of the CI TSan regex (LtbPruned* runs under TSan).

TEST(LtbPrunedSolve, MatchesUnprunedOnTable1Patterns) {
  for (const Pattern& p : patterns::table1_patterns()) {
    const LtbSolution want = ltb_solve(p);
    LtbOptions pruned;
    pruned.prune = true;
    const LtbSolution got = ltb_solve(p, pruned);
    EXPECT_EQ(got.num_banks, want.num_banks) << p.name();
    EXPECT_EQ(got.transform.alpha(), want.transform.alpha()) << p.name();
    // The DFS visits strictly fewer complete alphas than the full scan
    // (on these patterns; in the worst case it ties).
    EXPECT_LE(got.vectors_tried, want.vectors_tried) << p.name();
  }
}

TEST(LtbPrunedSolve, ThreadedMatchesSequential) {
  baseline::LtbScratch scratch;
  for (const Pattern& p : patterns::table1_patterns()) {
    LtbOptions sequential;
    sequential.prune = true;
    LtbOptions threaded = sequential;
    threaded.threads = 3;
    const LtbSolution want = ltb_solve(p, sequential, scratch);
    const LtbSolution got = ltb_solve(p, threaded, scratch);
    EXPECT_EQ(got.num_banks, want.num_banks) << p.name();
    EXPECT_EQ(got.transform.alpha(), want.transform.alpha()) << p.name();
  }
}

TEST(LtbPrunedSolve, ReportsExhaustionLikeTheUnprunedScan) {
  LtbOptions options;
  options.prune = true;
  options.max_banks = 9;
  EXPECT_THROW((void)ltb_solve(patterns::gaussian9(), options), InvalidState);
  options.threads = 2;
  EXPECT_THROW((void)ltb_solve(patterns::gaussian9(), options), InvalidState);
}

TEST(LtbPrunedSolve, Rank1AndTightCapMatchUnpruned) {
  // Rank-1 degenerates the DFS to a single level; a cap exactly at the
  // answer leaves no slack for the bound to overshoot.
  LtbOptions pruned;
  pruned.prune = true;
  EXPECT_EQ(ltb_solve(patterns::row1d(5), pruned).num_banks, 5);
  LtbOptions tight = pruned;
  tight.max_banks = 13;  // LoG answer is exactly 13
  const LtbSolution got = ltb_solve(patterns::log5x5(), tight);
  const LtbSolution want = ltb_solve(patterns::log5x5());
  EXPECT_EQ(got.num_banks, want.num_banks);
  EXPECT_EQ(got.transform.alpha(), want.transform.alpha());
}

TEST(LtbPrunedSolve, WarmSolveIntoAllocatesNothing) {
  const Pattern p = patterns::log5x5();
  LtbOptions options;
  options.prune = true;
  baseline::LtbScratch scratch;
  LtbSolution out;
  baseline::ltb_solve_into(p, options, scratch, out);  // sizes every buffer
  baseline::ltb_solve_into(p, options, scratch, out);
  const long before = testsupport::allocation_count();
  for (int i = 0; i < 50; ++i) baseline::ltb_solve_into(p, options, scratch, out);
  const long after = testsupport::allocation_count();
  EXPECT_EQ(after - before, 0);
  EXPECT_EQ(out.num_banks, 13);
}

TEST(LtbConflictFree, AgreesWithDirectCheck) {
  const Pattern p = patterns::gaussian9();
  // alpha = (1,3) mod 10 is the known-good LTB solution for the 5x5 cross.
  EXPECT_TRUE(ltb_conflict_free(p, LinearTransform({1, 3}), 10));
  // alpha = (5,1) mod 10 collides.
  EXPECT_FALSE(ltb_conflict_free(p, LinearTransform({5, 1}), 10));
  EXPECT_THROW((void)ltb_conflict_free(p, LinearTransform({1}), 10),
               InvalidArgument);
  EXPECT_THROW((void)ltb_conflict_free(p, LinearTransform({1, 3}), 0),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart
