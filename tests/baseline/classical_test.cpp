#include "baseline/classical.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/errors.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace mempart::baseline {
namespace {

TEST(ClassicalMapping, CyclicBankFormula) {
  const ClassicalMapping m(NdShape({8, 12}), /*dim=*/1, /*banks=*/4,
                           ClassicalScheme::kCyclic);
  EXPECT_EQ(m.bank_of({0, 0}), 0);
  EXPECT_EQ(m.bank_of({0, 5}), 1);
  EXPECT_EQ(m.bank_of({7, 11}), 3);
  EXPECT_EQ(m.bank_of({3, 4}), 0);
}

TEST(ClassicalMapping, BlockBankFormula) {
  const ClassicalMapping m(NdShape({8, 12}), /*dim=*/1, /*banks=*/4,
                           ClassicalScheme::kBlock);
  // block size = ceil(12/4) = 3.
  EXPECT_EQ(m.bank_of({0, 0}), 0);
  EXPECT_EQ(m.bank_of({0, 2}), 0);
  EXPECT_EQ(m.bank_of({0, 3}), 1);
  EXPECT_EQ(m.bank_of({0, 11}), 3);
}

TEST(ClassicalMapping, BlockCyclicBankFormula) {
  const ClassicalMapping m(NdShape({4, 16}), /*dim=*/1, /*banks=*/2,
                           ClassicalScheme::kBlockCyclic, /*block_size=*/4);
  EXPECT_EQ(m.bank_of({0, 0}), 0);
  EXPECT_EQ(m.bank_of({0, 4}), 1);
  EXPECT_EQ(m.bank_of({0, 8}), 0);
  EXPECT_EQ(m.bank_of({0, 15}), 1);
}

TEST(ClassicalMapping, AddressesUniqueAcrossSchemes) {
  const NdShape shape({6, 11});
  for (auto scheme : {ClassicalScheme::kCyclic, ClassicalScheme::kBlock}) {
    for (int dim : {0, 1}) {
      for (Count banks : {2, 3, 5}) {
        const ClassicalMapping m(shape, dim, banks, scheme);
        std::set<std::string> seen;
        bool unique = true;
        shape.for_each([&](const NdIndex& x) {
          const Count bank = m.bank_of(x);
          const Address offset = m.offset_of(x);
          EXPECT_GE(bank, 0);
          EXPECT_LT(bank, banks);
          EXPECT_GE(offset, 0);
          EXPECT_LT(offset, m.bank_capacity());
          unique = unique && seen.insert(std::to_string(bank) + ':' +
                                         std::to_string(offset)).second;
        });
        EXPECT_TRUE(unique) << "dim=" << dim << " banks=" << banks;
      }
    }
  }
}

TEST(ClassicalMapping, OverheadFromRoundedShare) {
  // 11 columns cyclically over 4 banks: share = 3, capacity 4*3*6 = 72 for
  // 66 elements.
  const ClassicalMapping m(NdShape({6, 11}), 1, 4, ClassicalScheme::kCyclic);
  EXPECT_EQ(m.bank_capacity(), 18);
  EXPECT_EQ(m.storage_overhead_elements(), 72 - 66);
}

TEST(ClassicalMapping, RejectsBadArguments) {
  EXPECT_THROW((void)ClassicalMapping(NdShape({4, 4}), 2, 2,
                                ClassicalScheme::kCyclic),
               InvalidArgument);
  EXPECT_THROW((void)ClassicalMapping(NdShape({4, 4}), 0, 0,
                                ClassicalScheme::kCyclic),
               InvalidArgument);
  EXPECT_THROW((void)ClassicalMapping(NdShape({4, 4}), 0, 2,
                                ClassicalScheme::kBlockCyclic, 0),
               InvalidArgument);
  const ClassicalMapping ok(NdShape({4, 4}), 0, 2, ClassicalScheme::kCyclic);
  EXPECT_THROW((void)ok.bank_of({4, 0}), InvalidArgument);
}

TEST(ClassicalDelta, CyclicCannotServeA2DWindowInOneCycle) {
  // LoG has 5 elements in one column: any single-dimension cyclic split
  // along columns leaves those 5 in distinct banks, but the 5 in one ROW
  // collide when splitting along rows — and vice versa. Either way delta
  // stays > 0 for any N <= 13, while the paper's transform reaches 0.
  const Pattern log = patterns::log5x5();
  const NdShape shape({12, 13});
  for (int dim : {0, 1}) {
    const ClassicalMapping m(shape, dim, 13, ClassicalScheme::kCyclic);
    EXPECT_GT(classical_delta_ii(log, m), 0) << "dim=" << dim;
  }
}

TEST(ClassicalDelta, RowPatternIsCyclicFriendly) {
  // A purely 1-D pattern along the split dimension is the classical
  // schemes' home turf: cyclic with N = m reaches delta = 0.
  const Pattern row = patterns::row1d(5);
  const ClassicalMapping m(NdShape({23}), 0, 5, ClassicalScheme::kCyclic);
  EXPECT_EQ(classical_delta_ii(row, m), 0);
}

TEST(ClassicalDelta, BlockSchemeConflictsAtBorders) {
  // Block partitioning keeps neighbouring elements together — exactly what
  // a sliding window does NOT want: windows inside one block serialise.
  const Pattern row = patterns::row1d(5);
  const ClassicalMapping m(NdShape({20}), 0, 4, ClassicalScheme::kBlock);
  EXPECT_GE(classical_delta_ii(row, m), 3);
}

TEST(BestClassical, StillLosesToLinearTransformOnBenchmarks) {
  // The punchline: even the best classical configuration cannot reach
  // delta = 0 on any genuinely 2-D benchmark with the same bank budget the
  // linear transform needs.
  for (const Pattern& p : patterns::table1_patterns()) {
    if (p.rank() != 2) continue;
    PartitionRequest req;
    req.pattern = p;
    const Count our_banks = Partitioner::solve(req).num_banks();
    std::vector<Count> extents;
    for (int d = 0; d < p.rank(); ++d) extents.push_back(p.extent(d) + 6);
    const ClassicalBest best =
        best_classical(p, NdShape(extents), our_banks);
    EXPECT_GT(best.delta_ii, 0) << p.name();
  }
}

TEST(BestClassical, FindsTheObviousAnswerFor1D) {
  const ClassicalBest best =
      best_classical(patterns::row1d(4), NdShape({19}), 8);
  EXPECT_EQ(best.delta_ii, 0);
  EXPECT_EQ(best.scheme, ClassicalScheme::kCyclic);
  EXPECT_LE(best.banks, 8);
  EXPECT_GE(best.banks, 4);
}

}  // namespace
}  // namespace mempart::baseline
