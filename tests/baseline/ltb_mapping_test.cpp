#include "baseline/ltb_mapping.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/errors.h"
#include "core/overhead.h"
#include "pattern/pattern_library.h"

namespace mempart {
namespace {

using baseline::ltb_padded_shape;
using baseline::ltb_storage_overhead_elements;
using baseline::LtbMapping;

TEST(LtbPadding, MotivationalExampleLoGSD) {
  // §2: LTB wastes 5450 elements on LoG at 640x480, N = 13:
  // 650*481 - 640*480.
  EXPECT_EQ(ltb_padded_shape(NdShape({640, 480}), 13), NdShape({650, 481}));
  EXPECT_EQ(ltb_storage_overhead_elements(NdShape({640, 480}), 13), 5450);
}

TEST(LtbPadding, ZeroWhenAllDimensionsDivisible) {
  EXPECT_EQ(ltb_storage_overhead_elements(NdShape({640, 480}), 5), 0);
  EXPECT_EQ(ltb_storage_overhead_elements(NdShape({650, 480}), 10), 0);
}

TEST(LtbPadding, AlwaysAtLeastOurOverhead) {
  // LTB pads all n dimensions; we pad only the innermost, so for equal N our
  // overhead can never exceed LTB's.
  for (Count banks : {3, 7, 9, 13, 25}) {
    for (Count w0 : {17, 640, 1921}) {
      for (Count w1 : {30, 480, 1081}) {
        const NdShape shape({w0, w1});
        EXPECT_LE(storage_overhead_elements(shape, banks),
                  ltb_storage_overhead_elements(shape, banks))
            << shape.to_string() << " N=" << banks;
      }
    }
  }
}

TEST(LtbMapping, UniqueAddressesSmallArray) {
  const LtbMapping m(NdShape({9, 11}), LinearTransform({5, 1}), 13);
  std::set<std::string> seen;
  bool ok = true;
  m.array_shape().for_each([&](const NdIndex& x) {
    const Count bank = m.bank_of(x);
    const Address offset = m.offset_of(x);
    EXPECT_GE(bank, 0);
    EXPECT_LT(bank, 13);
    EXPECT_GE(offset, 0);
    EXPECT_LT(offset, m.bank_capacity());
    ok = ok && seen.insert(std::to_string(bank) + ':' +
                           std::to_string(offset)).second;
  });
  EXPECT_TRUE(ok) << "duplicate (bank, offset) pair";
}

TEST(LtbMapping, CapacityMatchesPaddedVolume) {
  const LtbMapping m(NdShape({640, 480}), LinearTransform({5, 1}), 13);
  EXPECT_EQ(m.total_capacity(), 650 * 481);
  EXPECT_EQ(m.bank_capacity(), 650 * 481 / 13);
  EXPECT_EQ(m.storage_overhead_elements(), 5450);
}

TEST(LtbMapping, Rank3Overhead) {
  // All three dimensions padded to multiples of 27.
  const NdShape shape({640, 480, 400});
  EXPECT_EQ(ltb_storage_overhead_elements(shape, 27),
            648 * 486 * 405 - 640 * 480 * 400);
}

TEST(LtbMapping, RejectsRankMismatch) {
  EXPECT_THROW((void)LtbMapping(NdShape({8, 8}), LinearTransform({1}), 4),
               InvalidArgument);
}

TEST(LtbMapping, RejectsOutOfDomain) {
  const LtbMapping m(NdShape({4, 4}), LinearTransform({1, 1}), 2);
  EXPECT_THROW((void)m.bank_of({4, 0}), InvalidArgument);
  EXPECT_THROW((void)m.offset_of({0, 4}), InvalidArgument);
}

TEST(LtbPadding, RejectsBadBankCount) {
  EXPECT_THROW((void)ltb_padded_shape(NdShape({4, 4}), 0), InvalidArgument);
}

TEST(LtbMapping, RejectsNonInjectiveSearchedTransform) {
  // The exhaustive search can return alpha with alpha_{n-1} sharing a
  // factor with the padded innermost extent — e.g. alpha = (1, 3), N = 9
  // over a 17x23 array (padded innermost 27, gcd(3, 27) = 3). Before the
  // fix this constructed a mapping that stored two elements in one slot;
  // now it must be refused at construction.
  try {
    (void)LtbMapping(NdShape({17, 23}), LinearTransform({1, 3}), 9);
    FAIL() << "non-injective remap accepted";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("not injective"), std::string::npos);
  }
  // A coprime alpha_last over the same array is accepted and stays unique.
  const LtbMapping ok(NdShape({17, 23}), LinearTransform({5, 1}), 13);
  std::set<std::pair<Count, Address>> seen;
  NdShape({17, 23}).for_each([&](const NdIndex& x) {
    ASSERT_TRUE(seen.emplace(ok.bank_of(x), ok.offset_of(x)).second);
  });
}

}  // namespace
}  // namespace mempart
