#include "sim/access_engine.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace mempart::sim {
namespace {

CoreAddressMap log_map(NdShape shape, Count banks, Count fold = 0) {
  BankMapping mapping(std::move(shape),
                      LinearTransform::derive(patterns::log5x5()),
                      {.num_banks = banks, .fold_modulus = fold});
  return CoreAddressMap(std::move(mapping));
}

TEST(AccessEngine, ConflictFreeGroupTakesOneCycle) {
  const auto map = log_map(NdShape({14, 16}), 13);
  AccessEngine engine(map);
  const Pattern p = patterns::log5x5();
  EXPECT_EQ(engine.issue(p.at({2, 3})), 1);
  EXPECT_EQ(engine.stats().cycles, 1);
  EXPECT_EQ(engine.stats().accesses, 13);
  EXPECT_EQ(engine.stats().conflict_cycles, 0);
  EXPECT_DOUBLE_EQ(engine.stats().effective_bandwidth(), 13.0);
}

TEST(AccessEngine, FlatMemorySerialises) {
  const FlatAddressMap map{NdShape({14, 16})};
  AccessEngine engine(map);
  const Pattern p = patterns::log5x5();
  EXPECT_EQ(engine.issue(p.at({2, 3})), 13);
  EXPECT_EQ(engine.stats().conflict_cycles, 12);
  EXPECT_DOUBLE_EQ(engine.stats().effective_bandwidth(), 1.0);
}

TEST(AccessEngine, FoldedMappingTakesTwoCycles) {
  // LoG folded 13 -> 7 banks: delta_P = 1, so every group takes 2 cycles.
  const auto map = log_map(NdShape({14, 26}), 7, /*fold=*/13);
  AccessEngine engine(map);
  const Pattern p = patterns::log5x5();
  EXPECT_EQ(engine.issue(p.at({2, 3})), 2);
  EXPECT_EQ(engine.issue(p.at({5, 9})), 2);
  EXPECT_EQ(engine.stats().cycles, 4);
  EXPECT_EQ(engine.stats().worst_group_cycles, 2);
}

TEST(AccessEngine, TwoPortsHalveConflicts) {
  const auto map = log_map(NdShape({14, 26}), 7, /*fold=*/13);
  AccessEngine engine(map, /*ports_per_bank=*/2);
  const Pattern p = patterns::log5x5();
  // Worst bank demand is 2; with 2 ports the group completes in 1 cycle.
  EXPECT_EQ(engine.issue(p.at({2, 3})), 1);
}

TEST(AccessEngine, BankLoadHistogram) {
  const auto map = log_map(NdShape({14, 16}), 13);
  AccessEngine engine(map);
  const Pattern p = patterns::log5x5();
  engine.issue(p.at({2, 3}));
  engine.issue(p.at({3, 3}));
  Count total = 0;
  for (Count l : engine.stats().bank_load) total += l;
  EXPECT_EQ(total, 26);
  // With delta = 0, each group spreads over all 13 banks: load 2 everywhere.
  for (Count l : engine.stats().bank_load) EXPECT_EQ(l, 2);
}

TEST(AccessEngine, ResetClearsStats) {
  const auto map = log_map(NdShape({14, 16}), 13);
  AccessEngine engine(map);
  engine.issue(patterns::log5x5().at({2, 3}));
  engine.reset();
  EXPECT_EQ(engine.stats().cycles, 0);
  EXPECT_EQ(engine.stats().iterations, 0);
  EXPECT_EQ(engine.stats().bank_load.size(), 13u);
}

TEST(AccessEngine, RejectsEmptyGroupAndBadPorts) {
  const auto map = log_map(NdShape({14, 16}), 13);
  AccessEngine engine(map);
  EXPECT_THROW((void)engine.issue({}), InvalidArgument);
  EXPECT_THROW((void)AccessEngine(map, 0), InvalidArgument);
}

TEST(AccessStats, EmptyStatsAreZero) {
  const AccessStats s;
  EXPECT_DOUBLE_EQ(s.avg_cycles_per_iteration(), 0.0);
  EXPECT_DOUBLE_EQ(s.effective_bandwidth(), 0.0);
}

}  // namespace
}  // namespace mempart::sim
