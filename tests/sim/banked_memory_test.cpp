#include "sim/banked_memory.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart::sim {
namespace {

TEST(BankedMemory, ConstructionAndCapacities) {
  const BankedMemory m({4, 7, 0});
  EXPECT_EQ(m.num_banks(), 3);
  EXPECT_EQ(m.bank_capacity(0), 4);
  EXPECT_EQ(m.bank_capacity(1), 7);
  EXPECT_EQ(m.bank_capacity(2), 0);
  EXPECT_EQ(m.total_capacity(), 11);
}

TEST(BankedMemory, ReadsBackWrites) {
  BankedMemory m({3, 3});
  m.write(0, 2, 42);
  m.write(1, 0, -7);
  EXPECT_EQ(m.read(0, 2), 42);
  EXPECT_EQ(m.read(1, 0), -7);
  EXPECT_EQ(m.read(0, 0), 0);  // untouched words are zero
}

TEST(BankedMemory, Fill) {
  BankedMemory m({2, 2});
  m.fill(9);
  EXPECT_EQ(m.read(0, 0), 9);
  EXPECT_EQ(m.read(1, 1), 9);
}

TEST(BankedMemory, BoundsChecked) {
  BankedMemory m({2, 3});
  EXPECT_THROW((void)m.read(2, 0), InvalidArgument);
  EXPECT_THROW((void)m.read(-1, 0), InvalidArgument);
  EXPECT_THROW((void)m.read(0, 2), InvalidArgument);
  EXPECT_THROW((void)m.read(0, -1), InvalidArgument);
  EXPECT_THROW((void)m.write(1, 3, 0), InvalidArgument);
  EXPECT_THROW((void)m.bank_capacity(5), InvalidArgument);
}

TEST(BankedMemory, RejectsInvalidConstruction) {
  EXPECT_THROW((void)BankedMemory({}), InvalidArgument);
  EXPECT_THROW((void)BankedMemory({4, -1}), InvalidArgument);
}

}  // namespace
}  // namespace mempart::sim
