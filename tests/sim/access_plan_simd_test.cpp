// SIMD/SoA bit-identity properties. Every supported dispatch tier must
// reproduce the scalar row walk and the per-group engine exactly: same
// banks, same offsets, same cycle statistics — across all compiled plan
// kinds and the lane-remainder edge cases (rows shorter than one vector,
// tails, non-unit inner steps).
#include <gtest/gtest.h>

#include <vector>

#include "baseline/ltb.h"
#include "baseline/ltb_mapping.h"
#include "common/errors.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/partitioner.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_program.h"
#include "obs/trace.h"
#include "pattern/pattern_library.h"
#include "sim/access_engine.h"
#include "sim/access_plan.h"

namespace mempart::sim {
namespace {

CoreAddressMap solve_map(const Pattern& pattern, NdShape shape,
                         Count max_banks = 0,
                         TailPolicy tail = TailPolicy::kPadded) {
  PartitionRequest req;
  req.pattern = pattern;
  req.array_shape = std::move(shape);
  req.max_banks = max_banks;
  req.tail = tail;
  PartitionSolution sol = Partitioner::solve(req);
  return CoreAddressMap(std::move(*sol.mapping));
}

/// Tap-major reference: flattens the group-major row walk into the SoA
/// plane order the block walk emits. The row walk never touches the vector
/// kernels, so it is tier-independent.
void row_walk_reference(const AccessPlan& plan, std::vector<Count>* banks,
                        std::vector<Address>* addr) {
  const auto m = static_cast<size_t>(plan.taps());
  plan.for_each_row([&](const NdIndex&, std::span<const Count> b,
                        std::span<const Address> a) {
    const size_t groups = b.size() / m;
    for (size_t t = 0; t < m; ++t) {
      for (size_t g = 0; g < groups; ++g) {
        banks->push_back(b[g * m + t]);
        addr->push_back(a[g * m + t]);
      }
    }
  });
}

/// Runs the block walk under `tier` and checks it against the row-walk
/// reference, element for element.
void expect_block_walk_matches(const AccessPlan& plan, simd::Tier tier) {
  std::vector<Count> ref_banks;
  std::vector<Address> ref_addr;
  row_walk_reference(plan, &ref_banks, &ref_addr);

  const simd::TierOverride guard(tier);
  size_t pos = 0;
  plan.for_each_row_block([&](const NdIndex& row,
                              const AccessPlan::RowBlock& block) {
    ASSERT_EQ(block.banks.size(), block.offsets.size());
    ASSERT_EQ(block.banks.size(),
              static_cast<size_t>(block.taps) *
                  static_cast<size_t>(block.groups));
    for (size_t i = 0; i < block.banks.size(); ++i, ++pos) {
      ASSERT_LT(pos, ref_banks.size());
      ASSERT_EQ(block.banks[i], ref_banks[pos])
          << "tier=" << simd::tier_name(tier) << " row=" << to_string(row)
          << " plane index " << i;
      ASSERT_EQ(block.offsets[i], ref_addr[pos])
          << "tier=" << simd::tier_name(tier) << " row=" << to_string(row)
          << " plane index " << i;
    }
  });
  EXPECT_EQ(pos, ref_banks.size());
}

void expect_stats_equal(const AccessStats& a, const AccessStats& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.conflict_cycles, b.conflict_cycles);
  EXPECT_EQ(a.worst_group_cycles, b.worst_group_cycles);
  EXPECT_EQ(a.bank_load, b.bank_load);
}

TEST(AccessPlanSimd, DispatchLadderIsSane) {
  const std::vector<simd::Tier> tiers = simd::supported_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Tier::kScalar);
  for (const simd::Tier tier : tiers) {
    EXPECT_TRUE(simd::tier_supported(tier));
    EXPECT_GE(simd::tier_lanes(tier), 1);
    EXPECT_LE(simd::tier_lanes(tier), simd::kMaxLanes);
    const simd::TierOverride guard(tier);
    EXPECT_EQ(simd::active_tier(), tier);
  }
  bool is_auto = false;
  EXPECT_EQ(simd::tier_from_name("scalar", &is_auto), simd::Tier::kScalar);
  EXPECT_FALSE(is_auto);
  (void)simd::tier_from_name("definitely-not-a-tier", &is_auto);
  EXPECT_TRUE(is_auto);
}

TEST(AccessPlanSimd, BlockWalkMatchesRowWalkAcrossKindsAndTiers) {
  struct Config {
    Pattern pattern;
    NdShape shape;
    Count max_banks;
    TailPolicy tail;
  };
  // One config per compiled kind: padded mod-slice, compact tail, folded
  // lookup; flat and LTB maps follow below.
  const std::vector<Config> configs = {
      {patterns::log5x5(), NdShape({20, 22}), 0, TailPolicy::kPadded},
      {patterns::box2d(3), NdShape({15, 21}), 0, TailPolicy::kCompact},
      {patterns::log5x5(), NdShape({20, 26}), 10, TailPolicy::kPadded},
      {patterns::box3d(2), NdShape({7, 8, 11}), 0, TailPolicy::kPadded},
      {patterns::row1d(5), NdShape({43}), 0, TailPolicy::kCompact},
  };
  for (const Config& config : configs) {
    const CoreAddressMap map =
        solve_map(config.pattern, config.shape, config.max_banks, config.tail);
    const loopnest::StencilProgram program(config.shape, config.pattern, "p");
    const AccessPlan plan(map, config.pattern,
                          loopnest::plan_domain(program.loop_nest()));
    ASSERT_TRUE(plan.compiled());
    for (const simd::Tier tier : simd::supported_tiers()) {
      expect_block_walk_matches(plan, tier);
    }
  }
}

TEST(AccessPlanSimd, BlockWalkMatchesOnFlatAndLtbMaps) {
  const Pattern pattern = patterns::box2d(3);
  const NdShape shape({17, 23});

  const FlatAddressMap flat(shape);
  const loopnest::StencilProgram program(shape, pattern, "flat");
  const auto domain = loopnest::plan_domain(program.loop_nest());
  const AccessPlan flat_plan(flat, pattern, domain);
  ASSERT_TRUE(flat_plan.compiled());

  const LtbAddressMap ltb(
      baseline::LtbMapping(shape, LinearTransform({5, 1}), 13));
  const AccessPlan ltb_plan(ltb, pattern, domain);
  ASSERT_TRUE(ltb_plan.compiled());

  for (const simd::Tier tier : simd::supported_tiers()) {
    expect_block_walk_matches(flat_plan, tier);
    expect_block_walk_matches(ltb_plan, tier);
  }
}

TEST(AccessPlanSimd, LaneRemainderEdgeCases) {
  // Rows shorter than the widest vector (1..kMaxLanes groups), plus a
  // couple past it so every remainder count 0..W-1 occurs for every tier.
  const Pattern pattern = patterns::box2d(2);
  for (Count extra = 0; extra <= simd::kMaxLanes + 1; ++extra) {
    const NdShape shape({pattern.extent(0) + 2,
                         pattern.extent(1) + extra});
    const CoreAddressMap map = solve_map(pattern, shape);
    const loopnest::StencilProgram program(shape, pattern, "edge");
    const AccessPlan plan(map, pattern,
                          loopnest::plan_domain(program.loop_nest()));
    ASSERT_TRUE(plan.compiled());
    for (const simd::Tier tier : simd::supported_tiers()) {
      expect_block_walk_matches(plan, tier);
    }
  }
}

TEST(AccessPlanSimd, NonUnitInnerStepMatches) {
  // Unrolling multiplies the inner step, so the per-lane stride tables use
  // a stride > 1; compact tails interact with the cut point too.
  const Pattern base = patterns::box2d(3);
  const NdShape shape({19, 26});
  for (const int factor : {2, 3}) {
    const loopnest::StencilProgram program =
        loopnest::StencilProgram(shape, base, "unroll").unrolled(1, factor);
    const Pattern& pattern = program.extract_pattern();
    const CoreAddressMap map = solve_map(pattern, shape);
    const AccessPlan plan(map, pattern,
                          loopnest::plan_domain(program.loop_nest()));
    ASSERT_TRUE(plan.compiled());
    for (const simd::Tier tier : simd::supported_tiers()) {
      expect_block_walk_matches(plan, tier);
    }
  }
}

TEST(AccessPlanSimd, BanksOnlyWalkMatchesFullWalk) {
  const Pattern pattern = patterns::log5x5();
  const NdShape shape({20, 22});
  const CoreAddressMap map = solve_map(pattern, shape);
  const loopnest::StencilProgram program(shape, pattern, "banks");
  const AccessPlan plan(map, pattern,
                        loopnest::plan_domain(program.loop_nest()));
  ASSERT_TRUE(plan.compiled());
  for (const simd::Tier tier : simd::supported_tiers()) {
    const simd::TierOverride guard(tier);
    std::vector<Count> full;
    plan.for_each_row_block(
        [&](const NdIndex&, const AccessPlan::RowBlock& block) {
          full.insert(full.end(), block.banks.begin(), block.banks.end());
        });
    std::vector<Count> banks_only;
    plan.for_each_row_block_banks(
        [&](const NdIndex&, const AccessPlan::RowBlock& block) {
          EXPECT_TRUE(block.offsets.empty());
          banks_only.insert(banks_only.end(), block.banks.begin(),
                            block.banks.end());
        });
    EXPECT_EQ(full, banks_only);
  }
}

TEST(AccessPlanSimd, SimulateFastStatsIdenticalAcrossTiers) {
  const Pattern pattern = patterns::log5x5();
  const NdShape shape({20, 26});
  const CoreAddressMap map = solve_map(pattern, shape, /*max_banks=*/10);
  const loopnest::StencilProgram program(shape, pattern, "stats");
  const AccessStats reference = loopnest::simulate(program, map);
  for (const simd::Tier tier : simd::supported_tiers()) {
    const simd::TierOverride guard(tier);
    expect_stats_equal(loopnest::simulate_fast(program, map), reference);
  }
}

// ---------------------------------------------------------------------------
// Engine: issue_batch_soa vs the per-group batch scorer
// ---------------------------------------------------------------------------

/// Minimal N-bank map for engine tests: the engine only reads num_banks().
class StubMap final : public AddressMap {
 public:
  StubMap(NdShape shape, Count banks)
      : shape_(std::move(shape)), banks_(banks) {}
  [[nodiscard]] const NdShape& array_shape() const override { return shape_; }
  [[nodiscard]] Count num_banks() const override { return banks_; }
  [[nodiscard]] Count bank_of(const NdIndex& x) const override {
    return euclid_mod(x.back(), banks_);
  }
  [[nodiscard]] Address offset_of(const NdIndex& x) const override {
    return x.back() / banks_;
  }
  [[nodiscard]] Count bank_capacity(Count) const override {
    return shape_.volume();
  }

 private:
  NdShape shape_;
  Count banks_;
};

/// Issues the same random groups through issue_batch (group-major) and
/// issue_batch_soa (tap-major) and demands identical cycles and stats.
void expect_soa_matches_batch(Count num_banks, Count taps, Count groups,
                              Count ports, Rng& rng) {
  const StubMap map(NdShape({1024}), num_banks);
  std::vector<Count> group_major(static_cast<size_t>(taps) *
                                 static_cast<size_t>(groups));
  for (Count& b : group_major) b = rng.uniform(0, num_banks - 1);
  std::vector<Count> tap_major(group_major.size());
  for (Count g = 0; g < groups; ++g) {
    for (Count t = 0; t < taps; ++t) {
      tap_major[static_cast<size_t>(t * groups + g)] =
          group_major[static_cast<size_t>(g * taps + t)];
    }
  }
  AccessEngine batch_engine(map, ports);
  AccessEngine soa_engine(map, ports);
  const Count batch_cycles = batch_engine.issue_batch(group_major, taps);
  const Count soa_cycles = soa_engine.issue_batch_soa(tap_major, taps, groups);
  EXPECT_EQ(soa_cycles, batch_cycles)
      << "banks=" << num_banks << " taps=" << taps << " groups=" << groups;
  expect_stats_equal(soa_engine.stats(), batch_engine.stats());
}

TEST(AccessEngineSoa, MatchesIssueBatchOnRandomStreams) {
  Rng rng(20260808);
  for (const simd::Tier tier : simd::supported_tiers()) {
    const simd::TierOverride guard(tier);
    for (int trial = 0; trial < 30; ++trial) {
      const Count num_banks = rng.uniform(1, 64);
      const Count taps = rng.uniform(1, 9);
      const Count groups = rng.uniform(1, 50);
      const Count ports = rng.uniform(1, 2);
      expect_soa_matches_batch(num_banks, taps, groups, ports, rng);
    }
  }
}

TEST(AccessEngineSoa, WideBankCountTakesExactScalarPath) {
  // More than 64 banks: occupancy no longer fits one word, so the SoA
  // scorer must fall back to exact epoch-stamped counting.
  Rng rng(20260809);
  for (const simd::Tier tier : simd::supported_tiers()) {
    const simd::TierOverride guard(tier);
    expect_soa_matches_batch(/*num_banks=*/100, /*taps=*/7, /*groups=*/33,
                             /*ports=*/1, rng);
  }
}

TEST(AccessEngineSoa, MetricsEnabledStillMatches) {
  // Metrics force the exact path (the per-group histogram must fire);
  // statistics must not change.
  Rng rng(20260810);
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  expect_soa_matches_batch(/*num_banks=*/13, /*taps=*/13, /*groups=*/21,
                           /*ports=*/1, rng);
  obs::set_metrics_enabled(was_enabled);
}

TEST(AccessEngineSoa, ZeroGroupsIsANoOp) {
  const StubMap map(NdShape({64}), 8);
  AccessEngine engine(map);
  EXPECT_EQ(engine.issue_batch_soa({}, /*taps=*/3, /*groups=*/0), 0);
  EXPECT_EQ(engine.stats().iterations, 0);
  EXPECT_EQ(engine.stats().cycles, 0);
}

TEST(AccessEngineSoa, RejectsBadArguments) {
  const StubMap map(NdShape({64}), 8);
  AccessEngine engine(map);
  const std::vector<Count> banks(6, 0);
  EXPECT_THROW((void)engine.issue_batch_soa(banks, 0, 6), InvalidArgument);
  EXPECT_THROW((void)engine.issue_batch_soa(banks, 4, 2), InvalidArgument);
  const std::vector<Count> out_of_range{0, 1, 8};
  EXPECT_THROW((void)engine.issue_batch_soa(out_of_range, 1, 3),
               InternalError);
}

}  // namespace
}  // namespace mempart::sim
