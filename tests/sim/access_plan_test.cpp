#include "sim/access_plan.h"

#include <gtest/gtest.h>

#include <vector>

#include "baseline/ltb.h"
#include "common/random.h"
#include "core/partitioner.h"
#include "img/banked_convolve.h"
#include "img/synthetic.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_program.h"
#include "pattern/kernel.h"
#include "pattern/pattern_library.h"

namespace mempart::sim {
namespace {

CoreAddressMap solve_map(const Pattern& pattern, NdShape shape,
                         Count max_banks = 0,
                         ConstraintStrategy strategy =
                             ConstraintStrategy::kFastFold,
                         TailPolicy tail = TailPolicy::kPadded) {
  PartitionRequest req;
  req.pattern = pattern;
  req.array_shape = std::move(shape);
  req.max_banks = max_banks;
  req.strategy = strategy;
  req.tail = tail;
  PartitionSolution sol = Partitioner::solve(req);
  return CoreAddressMap(std::move(*sol.mapping));
}

/// Checks every compiled bank and offset of `plan` against per-access
/// virtual AddressMap calls — the reference oracle.
void expect_matches_oracle(const AccessPlan& plan, const AddressMap& map,
                           const Pattern& pattern,
                           const std::vector<PlanLoop>& domain) {
  const auto& offsets = pattern.offsets();
  const size_t m = offsets.size();
  const Coord step = domain.back().step;
  const size_t inner = domain.size() - 1;
  Count rows = 0;
  plan.for_each_row([&](const NdIndex& row, std::span<const Count> banks,
                        std::span<const Address> addr) {
    ++rows;
    ASSERT_EQ(banks.size(), addr.size());
    ASSERT_EQ(banks.size() % m, 0u);
    const size_t groups = banks.size() / m;
    NdIndex iv = row;
    for (size_t g = 0; g < groups; ++g) {
      for (size_t t = 0; t < m; ++t) {
        const NdIndex x = add(iv, offsets[t]);
        ASSERT_EQ(banks[g * m + t], map.bank_of(x))
            << "bank mismatch at iv=" << to_string(iv)
            << " tap=" << to_string(offsets[t]);
        ASSERT_EQ(addr[g * m + t], map.offset_of(x))
            << "offset mismatch at iv=" << to_string(iv)
            << " tap=" << to_string(offsets[t]);
      }
      iv[inner] += step;
    }
  });
  Count expected_rows = 1;
  for (size_t d = 0; d + 1 < domain.size(); ++d) {
    expected_rows *= (domain[d].upper - domain[d].lower) / domain[d].step + 1;
  }
  EXPECT_EQ(rows, expected_rows);
}

void expect_stats_equal(const AccessStats& a, const AccessStats& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.conflict_cycles, b.conflict_cycles);
  EXPECT_EQ(a.worst_group_cycles, b.worst_group_cycles);
  EXPECT_EQ(a.bank_load, b.bank_load);
}

TEST(AccessPlan, RandomizedCoreMapsMatchOracle) {
  Rng rng(20260805);
  for (int trial = 0; trial < 40; ++trial) {
    Pattern pattern = [&] {
      switch (trial % 4) {
        case 0:
          return patterns::box2d(rng.uniform(2, 4));
        case 1:
          return patterns::cross2d(rng.uniform(1, 3));
        case 2:
          return patterns::row1d(rng.uniform(2, 6));
        default:
          return patterns::box3d(2);
      }
    }();
    std::vector<Count> extents;
    for (int d = 0; d < pattern.rank(); ++d) {
      extents.push_back(pattern.extent(d) + rng.uniform(3, 17));
    }
    const NdShape shape{extents};
    // Cycle through tail/fold/constraint configurations.
    const bool compact = trial % 3 == 1;
    const Count max_banks = trial % 3 == 2 ? (pattern.size() + 1) / 2 : 0;
    const auto strategy = trial % 6 == 5 ? ConstraintStrategy::kSameSize
                                         : ConstraintStrategy::kFastFold;
    const CoreAddressMap map =
        solve_map(pattern, shape, max_banks, strategy,
                  compact ? TailPolicy::kCompact : TailPolicy::kPadded);
    const loopnest::StencilProgram program(shape, pattern, "prop");
    const auto domain = loopnest::plan_domain(program.loop_nest());
    const AccessPlan plan(map, pattern, domain);
    EXPECT_TRUE(plan.compiled());
    expect_matches_oracle(plan, map, pattern, domain);
  }
}

TEST(AccessPlan, LtbMapMatchesOracle) {
  const Pattern pattern = patterns::box2d(3);
  const NdShape shape({17, 23});
  // Explicit conflict-free transform: the searched lex-min alpha for box2d(3)
  // is (1, 3), whose innermost component shares a factor with the padded
  // extent and is rejected by LtbMapping's injectivity precondition. alpha =
  // (5, 1) keeps z = 5a + b distinct mod 13 over the 3x3 support and has
  // gcd(alpha_1, w'_1) = 1.
  const LtbAddressMap map(
      baseline::LtbMapping(shape, LinearTransform({5, 1}), 13));
  const loopnest::StencilProgram program(shape, pattern, "ltb");
  const auto domain = loopnest::plan_domain(program.loop_nest());
  const AccessPlan plan(map, pattern, domain);
  EXPECT_TRUE(plan.compiled());
  expect_matches_oracle(plan, map, pattern, domain);
}

TEST(AccessPlan, FlatMapMatchesOracle) {
  const Pattern pattern = patterns::cross2d(2);
  const NdShape shape({11, 13});
  const FlatAddressMap map(shape);
  const loopnest::StencilProgram program(shape, pattern, "flat");
  const auto domain = loopnest::plan_domain(program.loop_nest());
  const AccessPlan plan(map, pattern, domain);
  EXPECT_TRUE(plan.compiled());
  expect_matches_oracle(plan, map, pattern, domain);
}

TEST(AccessPlan, UnrolledProgramMatchesOracle) {
  const Pattern base = patterns::box2d(3);
  const NdShape shape({19, 26});
  const loopnest::StencilProgram program =
      loopnest::StencilProgram(shape, base, "unroll").unrolled(1, 2);
  const Pattern& pattern = program.extract_pattern();
  const CoreAddressMap map = solve_map(pattern, shape);
  const auto domain = loopnest::plan_domain(program.loop_nest());
  const AccessPlan plan(map, pattern, domain);
  EXPECT_TRUE(plan.compiled());
  expect_matches_oracle(plan, map, pattern, domain);
}

TEST(AccessPlan, SimulateFastMatchesSimulateBitForBit) {
  struct Config {
    Pattern pattern;
    NdShape shape;
    Count max_banks;
    TailPolicy tail;
    Count ports;
  };
  const std::vector<Config> configs = {
      {patterns::log5x5(), NdShape({20, 22}), 0, TailPolicy::kPadded, 1},
      {patterns::log5x5(), NdShape({20, 26}), 10, TailPolicy::kPadded, 1},
      {patterns::box2d(3), NdShape({15, 21}), 0, TailPolicy::kCompact, 1},
      {patterns::box2d(3), NdShape({15, 21}), 4, TailPolicy::kPadded, 2},
      {patterns::box3d(2), NdShape({7, 8, 11}), 0, TailPolicy::kPadded, 1},
      {patterns::row1d(5), NdShape({43}), 0, TailPolicy::kCompact, 1},
  };
  for (const Config& config : configs) {
    const loopnest::StencilProgram program(config.shape, config.pattern, "ab");
    const CoreAddressMap map =
        solve_map(config.pattern, config.shape, config.max_banks,
                  ConstraintStrategy::kFastFold, config.tail);
    expect_stats_equal(loopnest::simulate_fast(program, map, config.ports),
                       loopnest::simulate(program, map, config.ports));
  }
}

TEST(AccessPlan, SimulateFastMatchesOnFlatAndLtbMaps) {
  const Pattern pattern = patterns::prewitt3x3();
  const NdShape shape({14, 18});
  const loopnest::StencilProgram program(shape, pattern, "maps");

  const FlatAddressMap flat(shape);
  expect_stats_equal(loopnest::simulate_fast(program, flat),
                     loopnest::simulate(program, flat));

  // Explicit injective transform (see LtbMapMatchesOracle): the searched
  // alpha for a 3x3 support is (1, 3), which LtbMapping now rejects for
  // shapes whose padded innermost extent shares a factor with 3.
  const LtbAddressMap ltb(
      baseline::LtbMapping(shape, LinearTransform({5, 1}), 13));
  expect_stats_equal(loopnest::simulate_fast(program, ltb),
                     loopnest::simulate(program, ltb));
}

/// An AddressMap shape the plan does not recognise: forces the generic
/// fallback and proves it reproduces the virtual path exactly.
class ScrambledMap final : public AddressMap {
 public:
  explicit ScrambledMap(NdShape shape) : shape_(std::move(shape)) {}
  [[nodiscard]] const NdShape& array_shape() const override { return shape_; }
  [[nodiscard]] Count num_banks() const override { return 3; }
  [[nodiscard]] Count bank_of(const NdIndex& x) const override {
    return (shape_.flatten(x) * 7) % 3;
  }
  [[nodiscard]] Address offset_of(const NdIndex& x) const override {
    return shape_.flatten(x) / 3;
  }
  [[nodiscard]] Count bank_capacity(Count) const override {
    return shape_.volume() / 3 + 1;
  }

 private:
  NdShape shape_;
};

TEST(AccessPlan, GenericFallbackMatchesOracle) {
  const Pattern pattern = patterns::box2d(2);
  const NdShape shape({9, 12});
  const ScrambledMap map(shape);
  EXPECT_FALSE(AccessPlan::supports(map));
  const loopnest::StencilProgram program(shape, pattern, "scrambled");
  const auto domain = loopnest::plan_domain(program.loop_nest());
  const AccessPlan plan(map, pattern, domain);
  EXPECT_FALSE(plan.compiled());
  expect_matches_oracle(plan, map, pattern, domain);
  expect_stats_equal(loopnest::simulate_fast(program, map),
                     loopnest::simulate(program, map));
}

TEST(AccessPlan, FastConvolveMatchesReference) {
  const img::Image input = img::gradient(NdShape({18, 24}));
  const Kernel kernel = Kernel::from_matrix_2d(
      {{1.0, 2.0, 1.0}, {2.0, 4.0, 2.0}, {1.0, 2.0, 1.0}}, "blur");
  const std::vector<TailPolicy> tails = {TailPolicy::kPadded,
                                         TailPolicy::kCompact};
  for (const TailPolicy tail : tails) {
    const CoreAddressMap map =
        solve_map(kernel.support(), input.shape(), 0,
                  ConstraintStrategy::kFastFold, tail);
    const auto fast = img::convolve_banked(input, kernel, map);
    const auto ref = img::convolve_banked_reference(input, kernel, map);
    EXPECT_EQ(fast.output, ref.output);
    expect_stats_equal(fast.stats, ref.stats);
  }
  const FlatAddressMap flat(input.shape());
  const auto fast = img::convolve_banked(input, kernel, flat);
  const auto ref = img::convolve_banked_reference(input, kernel, flat);
  EXPECT_EQ(fast.output, ref.output);
  expect_stats_equal(fast.stats, ref.stats);
}

}  // namespace
}  // namespace mempart::sim
