#include "sim/banked_array.h"

#include <gtest/gtest.h>

#include "core/linear_transform.h"
#include "pattern/pattern_library.h"

namespace mempart::sim {
namespace {

TEST(BankedArray, RoundTripsEveryElementCoreMap) {
  BankMapping mapping(NdShape({9, 11}),
                      LinearTransform::derive(patterns::log5x5()),
                      {.num_banks = 13});
  const CoreAddressMap map(std::move(mapping));
  BankedArray array(map);
  array.fill_from([&](const NdIndex& x) { return x[0] * 100 + x[1]; });
  array.shape().for_each([&](const NdIndex& x) {
    EXPECT_EQ(array.load(x), x[0] * 100 + x[1]) << to_string(x);
  });
}

TEST(BankedArray, RoundTripsLtbMap) {
  const LtbAddressMap map(
      baseline::LtbMapping(NdShape({9, 11}), LinearTransform({5, 1}), 13));
  BankedArray array(map);
  array.fill_from([&](const NdIndex& x) { return 7 * x[0] - 3 * x[1]; });
  array.shape().for_each([&](const NdIndex& x) {
    EXPECT_EQ(array.load(x), 7 * x[0] - 3 * x[1]);
  });
}

TEST(BankedArray, RoundTripsFlatMap) {
  const FlatAddressMap map{NdShape({5, 6})};
  BankedArray array(map);
  array.store({4, 5}, 99);
  EXPECT_EQ(array.load({4, 5}), 99);
  EXPECT_EQ(array.load({0, 0}), 0);
}

TEST(BankedArray, CompactTailPolicyRoundTrip) {
  BankMapping mapping(NdShape({8, 11}),
                      LinearTransform::derive(patterns::median7()),
                      {.num_banks = 8, .fold_modulus = 0,
                       .tail = TailPolicy::kCompact});
  const CoreAddressMap map(std::move(mapping));
  BankedArray array(map);
  EXPECT_EQ(array.memory().total_capacity(), 88);  // zero overhead
  array.fill_from([&](const NdIndex& x) { return x[0] * 11 + x[1] + 1; });
  array.shape().for_each([&](const NdIndex& x) {
    EXPECT_EQ(array.load(x), x[0] * 11 + x[1] + 1);
  });
}

TEST(BankedArray, FoldedMappingRoundTrip) {
  BankMapping mapping(NdShape({10, 26}),
                      LinearTransform::derive(patterns::log5x5()),
                      {.num_banks = 7, .fold_modulus = 13});
  const CoreAddressMap map(std::move(mapping));
  BankedArray array(map);
  array.fill_from([&](const NdIndex& x) { return x[0] ^ (x[1] << 3); });
  array.shape().for_each([&](const NdIndex& x) {
    EXPECT_EQ(array.load(x), (x[0] ^ (x[1] << 3)));
  });
}

}  // namespace
}  // namespace mempart::sim
