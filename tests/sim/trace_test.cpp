#include "sim/trace.h"

#include <gtest/gtest.h>

#include "core/partitioner.h"
#include "loopnest/stencil_program.h"
#include "pattern/pattern_library.h"

namespace mempart::sim {
namespace {

AccessTrace trace_log(const NdShape& shape, Count max_banks = 0) {
  PartitionRequest req;
  req.pattern = patterns::log5x5();
  req.array_shape = shape;
  req.max_banks = max_banks;
  PartitionSolution sol = Partitioner::solve(req);
  const CoreAddressMap map(std::move(*sol.mapping));
  AccessEngine engine(map);
  const loopnest::StencilProgram program(shape, patterns::log5x5(), "LoG");
  AccessTrace trace;
  program.loop_nest().for_each([&](const NdIndex& iv) {
    trace.record(iv, engine.issue(program.reads_at(iv)));
  });
  return trace;
}

TEST(AccessTrace, ConflictFreeTraceIsUniformOneCycle) {
  const AccessTrace trace = trace_log(NdShape({14, 16}));
  EXPECT_TRUE(trace.uniform());
  EXPECT_EQ(trace.total_cycles(), trace.size());
  const auto histogram = trace.cycle_histogram();
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram.begin()->first, 1);
  EXPECT_EQ(histogram.begin()->second, trace.size());
}

TEST(AccessTrace, FoldedTraceIsUniformTwoCycles) {
  // Position-invariance (§4.3.2): every iteration costs exactly delta+1.
  const AccessTrace trace = trace_log(NdShape({14, 26}), /*max_banks=*/10);
  EXPECT_TRUE(trace.uniform());
  const auto histogram = trace.cycle_histogram();
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram.begin()->first, 2);
}

TEST(AccessTrace, WorstPositionsCoverEverythingWhenUniform) {
  const AccessTrace trace = trace_log(NdShape({10, 16}));
  EXPECT_EQ(static_cast<Count>(trace.worst_positions().size()), trace.size());
}

TEST(AccessTrace, NonUniformTraceDetected) {
  AccessTrace trace;
  trace.record({0, 0}, 1);
  trace.record({0, 1}, 2);
  EXPECT_FALSE(trace.uniform());
  EXPECT_EQ(trace.total_cycles(), 3);
  EXPECT_EQ(trace.worst_positions(), (std::vector<NdIndex>{{0, 1}}));
  const auto histogram = trace.cycle_histogram();
  EXPECT_EQ(histogram.at(1), 1);
  EXPECT_EQ(histogram.at(2), 1);
}

TEST(AccessTrace, EmptyTraceIsTriviallyUniform) {
  const AccessTrace trace;
  EXPECT_TRUE(trace.uniform());
  EXPECT_EQ(trace.total_cycles(), 0);
  EXPECT_TRUE(trace.cycle_histogram().empty());
  EXPECT_TRUE(trace.worst_positions().empty());
}

TEST(AccessTrace, TraceAccessesHelper) {
  PartitionRequest req;
  req.pattern = patterns::structure_element();
  req.array_shape = NdShape({8, 10});
  PartitionSolution sol = Partitioner::solve(req);
  const CoreAddressMap map(std::move(*sol.mapping));
  AccessEngine engine(map);
  const loopnest::StencilProgram program(NdShape({8, 10}),
                                         patterns::structure_element(), "SE");
  const Pattern pattern = patterns::structure_element();
  const AccessTrace trace = trace_accesses(
      engine,
      [&](auto&& body) { program.loop_nest().for_each(body); },
      [&](const NdIndex& iv) { return pattern.at(iv); });
  EXPECT_EQ(trace.size(), program.loop_nest().total_iterations());
  EXPECT_TRUE(trace.uniform());
}

}  // namespace
}  // namespace mempart::sim
