#include "hw/addr_gen.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/linear_transform.h"
#include "pattern/pattern_library.h"

namespace mempart::hw {
namespace {

TEST(AddrGen, PowerOfTwoHelper) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(-4));
  EXPECT_FALSE(is_power_of_two(13));
}

TEST(AddrGen, LoGThirteenBanks) {
  // alpha = (5,1): one constant multiplier (5), one adder per port; 13 is
  // not a power of two so two modulos and one divider per port.
  const LinearTransform alpha({5, 1});
  const AddressGenCost cost = estimate_addr_gen(alpha, 13, 13);
  EXPECT_EQ(cost.constant_multipliers, 13);
  EXPECT_EQ(cost.adders, 13);
  EXPECT_EQ(cost.modulo_units, 26);
  EXPECT_EQ(cost.divider_units, 13);
  EXPECT_EQ(cost.crossbar_ports, 13 * 13);
  EXPECT_GT(cost.lut_estimate, 0.0);
}

TEST(AddrGen, PowerOfTwoBanksDropModDiv) {
  const LinearTransform alpha({3, 1});
  const AddressGenCost cost = estimate_addr_gen(alpha, 8, 7);
  EXPECT_EQ(cost.modulo_units, 0);
  EXPECT_EQ(cost.divider_units, 0);
}

TEST(AddrGen, PowerOfTwoCoefficientsAreFree) {
  // alpha = (4, 1): shift and wire, no multipliers.
  const AddressGenCost cost = estimate_addr_gen(LinearTransform({4, 1}), 5, 1);
  EXPECT_EQ(cost.constant_multipliers, 0);
  EXPECT_EQ(cost.adders, 1);
}

TEST(AddrGen, ZeroCoefficientDropsTerm) {
  const AddressGenCost cost = estimate_addr_gen(LinearTransform({0, 1}), 5, 1);
  EXPECT_EQ(cost.adders, 0);  // single surviving term, nothing to add
}

TEST(AddrGen, CostGrowsWithBanks) {
  const LinearTransform alpha = LinearTransform::derive(patterns::log5x5());
  const auto small = estimate_addr_gen(alpha, 7, 13);
  const auto large = estimate_addr_gen(alpha, 13, 13);
  EXPECT_LT(small.lut_estimate, large.lut_estimate);
}

TEST(AddrGen, RejectsBadArguments) {
  const LinearTransform alpha({1, 1});
  EXPECT_THROW((void)estimate_addr_gen(alpha, 0, 1), InvalidArgument);
  EXPECT_THROW((void)estimate_addr_gen(alpha, 4, 0), InvalidArgument);
}

TEST(AddrGen, ToStringMentionsUnits) {
  const auto cost = estimate_addr_gen(LinearTransform({5, 1}), 13, 2);
  const std::string s = cost.to_string();
  EXPECT_NE(s.find("mul="), std::string::npos);
  EXPECT_NE(s.find("LUT"), std::string::npos);
}

}  // namespace
}  // namespace mempart::hw
