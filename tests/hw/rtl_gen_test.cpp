#include "hw/rtl_gen.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/partitioner.h"
#include "pattern/pattern_library.h"

namespace mempart::hw {
namespace {

BankMapping solve_mapping(const Pattern& p, NdShape shape,
                          Count max_banks = 0,
                          TailPolicy tail = TailPolicy::kPadded) {
  PartitionRequest req;
  req.pattern = p;
  req.array_shape = std::move(shape);
  req.max_banks = max_banks;
  req.tail = tail;
  return std::move(*Partitioner::solve(req).mapping);
}

TEST(RtlGen, GoldenModelMatchesMappingUnfolded) {
  const BankMapping mapping =
      solve_mapping(patterns::log5x5(), NdShape({9, 11}));
  const AddrGenIr ir = build_addr_gen_ir(mapping);
  EXPECT_FALSE(ir.folded());
  mapping.array_shape().for_each([&](const NdIndex& x) {
    EXPECT_EQ(ir_bank(ir, x), mapping.bank_of(x)) << to_string(x);
    EXPECT_EQ(ir_offset(ir, x), mapping.offset_of(x)) << to_string(x);
  });
}

TEST(RtlGen, GoldenModelMatchesMappingFolded) {
  const BankMapping mapping =
      solve_mapping(patterns::log5x5(), NdShape({10, 26}), /*max_banks=*/10);
  const AddrGenIr ir = build_addr_gen_ir(mapping);
  EXPECT_TRUE(ir.folded());
  mapping.array_shape().for_each([&](const NdIndex& x) {
    EXPECT_EQ(ir_bank(ir, x), mapping.bank_of(x)) << to_string(x);
    EXPECT_EQ(ir_offset(ir, x), mapping.offset_of(x)) << to_string(x);
  });
}

TEST(RtlGen, GoldenModelMatchesRank3) {
  const BankMapping mapping =
      solve_mapping(patterns::sobel3d(), NdShape({5, 6, 8}));
  const AddrGenIr ir = build_addr_gen_ir(mapping);
  mapping.array_shape().for_each([&](const NdIndex& x) {
    EXPECT_EQ(ir_bank(ir, x), mapping.bank_of(x));
    EXPECT_EQ(ir_offset(ir, x), mapping.offset_of(x));
  });
}

TEST(RtlGen, RejectsCompactTail) {
  const BankMapping mapping = solve_mapping(
      patterns::median7(), NdShape({8, 11}), 0, TailPolicy::kCompact);
  EXPECT_THROW((void)build_addr_gen_ir(mapping), InvalidArgument);
}

TEST(RtlGen, VerilogContainsTheSolutionConstants) {
  const BankMapping mapping =
      solve_mapping(patterns::log5x5(), NdShape({640, 480}));
  const AddrGenIr ir = build_addr_gen_ir(mapping);
  const std::string v = emit_verilog(ir);
  EXPECT_NE(v.find("module mempart_addr_gen"), std::string::npos);
  EXPECT_NE(v.find("ALPHA0 = 5"), std::string::npos);
  EXPECT_NE(v.find("ALPHA1 = 1"), std::string::npos);
  EXPECT_NE(v.find("MODULUS   = 13"), std::string::npos);
  EXPECT_NE(v.find("SLICES    = 37"), std::string::npos);  // ceil(480/13)
  EXPECT_NE(v.find("input  wire"), std::string::npos);
  EXPECT_NE(v.find("output wire"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // No fold logic in the unfolded module.
  EXPECT_EQ(v.find("fold_seg"), std::string::npos);
}

TEST(RtlGen, FoldedVerilogHasSecondModulo) {
  const BankMapping mapping =
      solve_mapping(patterns::log5x5(), NdShape({20, 26}), /*max_banks=*/10);
  const std::string v = emit_verilog(build_addr_gen_ir(mapping));
  EXPECT_NE(v.find("raw_bank % NUM_BANKS"), std::string::npos);
  EXPECT_NE(v.find("fold_seg"), std::string::npos);
  EXPECT_NE(v.find("RAW_CAPACITY"), std::string::npos);
}

TEST(RtlGen, ModuleNameAndWidthConfigurable) {
  const BankMapping mapping =
      solve_mapping(patterns::structure_element(), NdShape({16, 15}));
  RtlOptions options;
  options.module_name = "se_banker";
  options.coord_width = 16;
  const std::string v = emit_verilog(build_addr_gen_ir(mapping), options);
  EXPECT_NE(v.find("module se_banker"), std::string::npos);
  EXPECT_NE(v.find("[15:0] x0"), std::string::npos);
}

TEST(RtlGen, TestbenchEmbedsGoldenExpectations) {
  const BankMapping mapping =
      solve_mapping(patterns::log5x5(), NdShape({9, 11}));
  const AddrGenIr ir = build_addr_gen_ir(mapping);
  const std::vector<NdIndex> vectors{{0, 0}, {3, 4}, {8, 10}};
  const std::string tb = emit_verilog_testbench(ir, vectors);
  EXPECT_NE(tb.find("mempart_addr_gen_tb"), std::string::npos);
  for (const NdIndex& x : vectors) {
    const std::string expect = "check(" + std::to_string(ir_bank(ir, x)) +
                               ", " + std::to_string(ir_offset(ir, x)) + ")";
    EXPECT_NE(tb.find(expect), std::string::npos) << expect;
  }
  EXPECT_THROW((void)emit_verilog_testbench(ir, {}), InvalidArgument);
  EXPECT_THROW((void)emit_verilog_testbench(ir, {{1}}), InvalidArgument);
}

TEST(RtlGen, Rank1Module) {
  PartitionRequest req;
  req.pattern = patterns::row1d(5);
  req.array_shape = NdShape({23});
  const BankMapping mapping = std::move(*Partitioner::solve(req).mapping);
  const AddrGenIr ir = build_addr_gen_ir(mapping);
  mapping.array_shape().for_each([&](const NdIndex& x) {
    EXPECT_EQ(ir_bank(ir, x), mapping.bank_of(x));
    EXPECT_EQ(ir_offset(ir, x), mapping.offset_of(x));
  });
  const std::string v = emit_verilog(ir);
  EXPECT_NE(v.find("leading_flat = 0"), std::string::npos);
}

}  // namespace
}  // namespace mempart::hw
