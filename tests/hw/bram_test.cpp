#include "hw/bram.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart::hw {
namespace {

TEST(Bram, DefaultSpecMatchesTable1Accounting) {
  // 16-bit elements, 9000-bit blocks: ceil(e*16/9000).
  EXPECT_EQ(blocks_for_elements(0), 0);
  EXPECT_EQ(blocks_for_elements(1), 1);
  EXPECT_EQ(blocks_for_elements(562), 1);   // 562*16 = 8992 < 9000
  EXPECT_EQ(blocks_for_elements(563), 2);   // 9008 > 9000
  // Table 1 "ours" cells (LoG row): 640 -> 2, 10240 -> 19, 23040 -> 41.
  EXPECT_EQ(overhead_blocks(640), 2);
  EXPECT_EQ(overhead_blocks(10240), 19);
  EXPECT_EQ(overhead_blocks(23040), 41);
  // Table 1 LTB LoG/SD: 5450 elements -> 10 blocks.
  EXPECT_EQ(overhead_blocks(5450), 10);
}

TEST(Bram, CustomSpec) {
  // A Xilinx-style 18kb block with 18-bit elements: 1024 elements/block.
  const BramSpec spec{.block_bits = 18432, .element_bits = 18};
  EXPECT_EQ(blocks_for_elements(1024, spec), 1);
  EXPECT_EQ(blocks_for_elements(1025, spec), 2);
}

TEST(Bram, PerBankSumIsAtLeastAggregate) {
  // Rounding per bank can only add blocks relative to aggregate rounding.
  const std::vector<Count> banks{1000, 1000, 1000, 777};
  Count total_elems = 0;
  for (Count b : banks) total_elems += b;
  EXPECT_GE(blocks_per_bank_sum(banks), blocks_for_elements(total_elems));
}

TEST(Bram, PerBankSumExact) {
  // Each 1000-element bank needs ceil(16000/9000) = 2 blocks.
  EXPECT_EQ(blocks_per_bank_sum({1000, 1000, 1000}), 6);
  EXPECT_EQ(blocks_per_bank_sum({}), 0);
}

TEST(Bram, RejectsBadArguments) {
  EXPECT_THROW((void)blocks_for_elements(-1), InvalidArgument);
  EXPECT_THROW((void)blocks_for_elements(1, {.block_bits = 0, .element_bits = 16}),
               InvalidArgument);
  EXPECT_THROW((void)blocks_for_elements(1, {.block_bits = 9000, .element_bits = 0}),
               InvalidArgument);
}

}  // namespace
}  // namespace mempart::hw
