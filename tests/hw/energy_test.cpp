#include "hw/energy.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace mempart::hw {
namespace {

TEST(Energy, BankingReducesDynamicEnergyPerAccess) {
  // 307200 words flat vs split into 13 banks: the sqrt(bitline) term
  // shrinks, so the same number of accesses costs less dynamic energy.
  const Count accesses = 100000;
  const EnergyEstimate flat =
      estimate_energy({307200}, accesses, accesses);
  const EnergyEstimate banked = estimate_energy(
      std::vector<Count>(13, 23680), accesses, accesses / 13);
  EXPECT_LT(banked.dynamic, flat.dynamic);
}

TEST(Energy, LeakageScalesWithAllocatedWords) {
  const EnergyEstimate small = estimate_energy({1000}, 0, 100);
  const EnergyEstimate large = estimate_energy({2000}, 0, 100);
  EXPECT_LT(small.stat, large.stat);
  EXPECT_EQ(small.dynamic, 0.0);
}

TEST(Energy, PeripheryPenalisesManyBanks) {
  // Same total words, same accesses, more banks: static term grows with
  // per-bank periphery (another face of constraint 2).
  const EnergyEstimate few =
      estimate_energy(std::vector<Count>(4, 2500), 1000, 1000);
  const EnergyEstimate many =
      estimate_energy(std::vector<Count>(100, 100), 1000, 1000);
  EXPECT_GT(many.stat, few.stat);
}

TEST(Energy, TotalIsSumOfParts) {
  const EnergyEstimate e = estimate_energy({500, 500}, 10, 10);
  EXPECT_DOUBLE_EQ(e.total(), e.dynamic + e.stat);
  EXPECT_GT(e.dynamic, 0.0);
  EXPECT_GT(e.stat, 0.0);
}

TEST(Energy, FasterRunPaysLessLeakage) {
  // Partitioning finishes the sweep in 13x fewer cycles, so it also leaks
  // for 13x less time — the second power win of banking.
  const std::vector<Count> banks(13, 23680);
  const EnergyEstimate slow = estimate_energy(banks, 1000, 13000);
  const EnergyEstimate fast = estimate_energy(banks, 1000, 1000);
  EXPECT_GT(slow.stat, fast.stat);
  EXPECT_EQ(slow.dynamic, fast.dynamic);
}

TEST(Energy, RejectsBadArguments) {
  EXPECT_THROW((void)estimate_energy({}, 1, 1), InvalidArgument);
  EXPECT_THROW((void)estimate_energy({-1}, 1, 1), InvalidArgument);
  EXPECT_THROW((void)estimate_energy({10}, -1, 1), InvalidArgument);
}

}  // namespace
}  // namespace mempart::hw
