#include "hw/bram_packing.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "hw/bram.h"

namespace mempart::hw {
namespace {

TEST(BramPacking, M9kAspectSetCoversAllGeometries) {
  const auto& aspects = m9k_aspects();
  ASSERT_EQ(aspects.size(), 6u);
  for (const BramAspect& a : aspects) {
    // Every configuration exposes the same 8192+ data bits (9216 with the
    // x9 parity widths).
    EXPECT_GE(a.depth * a.width, 8192);
    EXPECT_LE(a.depth * a.width, 9216);
  }
}

TEST(BramPacking, SixteenBitBankUses512x18) {
  // A 16-bit-wide bank fits the 512x18 configuration: one block per 512
  // words of depth.
  const PackingResult r = pack_memory(/*depth=*/512, /*width_bits=*/16);
  EXPECT_EQ(r.blocks, 1);
  EXPECT_EQ(r.aspect, (BramAspect{512, 18}));
  EXPECT_EQ(pack_memory(513, 16).blocks, 2);
  EXPECT_EQ(pack_memory(1024, 16).blocks, 2);
}

TEST(BramPacking, WideWordSplitsAcrossBlocks) {
  // 36-bit words at depth 256: exactly one 256x36 block.
  EXPECT_EQ(pack_memory(256, 36).blocks, 1);
  // 72-bit words: two blocks side by side.
  EXPECT_EQ(pack_memory(256, 72).blocks, 2);
}

TEST(BramPacking, OneBitDeepMemoryUses8192x1) {
  const PackingResult r = pack_memory(8000, 1);
  EXPECT_EQ(r.blocks, 1);
  EXPECT_EQ(r.aspect, (BramAspect{8192, 1}));
}

TEST(BramPacking, NeverBeatsTheAggregateBitBound) {
  // Physical packing can only need >= the paper's aggregate bit count.
  const BramSpec aggregate{.block_bits = 9216, .element_bits = 16};
  for (Count depth : {100, 512, 1000, 23680, 37 * 640}) {
    const Count physical = pack_memory(depth, 16).blocks;
    const Count bound = blocks_for_elements(depth, aggregate);
    EXPECT_GE(physical, bound) << "depth=" << depth;
  }
}

TEST(BramPacking, PackBanksSumsPerBank) {
  // 13 LoG/SD banks of 37*640 = 23680 16-bit words each.
  const std::vector<Count> banks(13, 23680);
  const Count per_bank = pack_memory(23680, 16).blocks;
  EXPECT_EQ(pack_banks(banks, 16), 13 * per_bank);
  EXPECT_EQ(pack_banks({}, 16), 0);
  EXPECT_EQ(pack_banks({0, 100}, 16), pack_memory(100, 16).blocks);
}

TEST(BramPacking, ManySmallBanksCostMoreThanFewLarge) {
  // The hardware argument behind constraint 2 (N_max): splitting the same
  // storage over more banks can only increase physical block count.
  const Count total_depth = 4096;
  const Count few = pack_banks(std::vector<Count>(4, total_depth / 4), 16);
  const Count many = pack_banks(std::vector<Count>(64, total_depth / 64), 16);
  EXPECT_GE(many, few);
  EXPECT_EQ(many, 64);  // every 64-word bank still burns a whole block
}

TEST(BramPacking, RejectsBadArguments) {
  EXPECT_THROW((void)pack_memory(0, 16), InvalidArgument);
  EXPECT_THROW((void)pack_memory(16, 0), InvalidArgument);
  EXPECT_THROW((void)pack_memory(16, 16, {}), InvalidArgument);
  EXPECT_THROW((void)pack_memory(16, 16, {{0, 4}}), InvalidArgument);
}

TEST(BramPacking, CustomAspectSet) {
  // A Xilinx-ish 18k block: 1024x18 / 512x36.
  const std::vector<BramAspect> xilinx{{1024, 18}, {512, 36}};
  EXPECT_EQ(pack_memory(1024, 16, xilinx).blocks, 1);
  EXPECT_EQ(pack_memory(512, 32, xilinx).blocks, 1);
  EXPECT_EQ(pack_memory(1024, 32, xilinx).blocks, 2);
}

}  // namespace
}  // namespace mempart::hw
