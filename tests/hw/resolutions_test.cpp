#include "hw/resolutions.h"

#include <gtest/gtest.h>

namespace mempart::hw {
namespace {

TEST(Resolutions, PaperOrderAndSizes) {
  const auto& r = table1_resolutions();
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0].name, "SD");
  EXPECT_EQ(r[0].width, 640);
  EXPECT_EQ(r[0].height, 480);
  EXPECT_EQ(r[1].name, "HD");
  EXPECT_EQ(r[2].name, "FullHD");
  EXPECT_EQ(r[3].name, "WQXGA");
  EXPECT_EQ(r[3].width, 2560);
  EXPECT_EQ(r[3].height, 1600);
  EXPECT_EQ(r[4].name, "4K");
  EXPECT_EQ(r[4].width, 3840);
  EXPECT_EQ(r[4].height, 2160);
}

TEST(Resolutions, ShapesPutHeightInnermost) {
  const Resolution sd = table1_resolutions()[0];
  EXPECT_EQ(sd.shape2d(), NdShape({640, 480}));
  EXPECT_EQ(sd.shape3d(), NdShape({640, 480, 400}));
  EXPECT_EQ(sd.shape3d(7), NdShape({640, 480, 7}));
}

TEST(Resolutions, SobelDepthConstant) {
  EXPECT_EQ(Resolution::kSobelDepth, 400);
}

}  // namespace
}  // namespace mempart::hw
