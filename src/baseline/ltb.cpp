#include "baseline/ltb.h"

#include <algorithm>
#include <atomic>
#include <span>
#include <vector>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::baseline {
namespace {

/// Checks one candidate (alpha, N), charging the justification cost the
/// DAC'13 flow pays per vector: all m transformed values are computed up
/// front (per element one dot product — n mul, n-1 add — and one modulo),
/// then the bank indices are tested pairwise for distinctness ("it takes
/// O(m^2) times to justify the solution", §4.3.1). The pairwise scan stops
/// at the first collision; the m transform evaluations cannot be skipped.
bool candidate_conflict_free(const Pattern& pattern,
                             const std::vector<Count>& alpha, Count banks,
                             std::vector<Count>& scratch) {
  const int n = pattern.rank();
  const Count m = pattern.size();
  scratch.clear();
  for (const NdIndex& delta : pattern.offsets()) {
    Address v = 0;
    for (size_t d = 0; d < alpha.size(); ++d) v += alpha[d] * delta[d];
    scratch.push_back(euclid_mod(v, banks));  // mempart-analyze: allow(noalloc) first-touch growth of reused LtbScratch capacity; warm iterations reallocate nothing
  }
  OpCounter::charge(OpKind::kMul, m * n);
  OpCounter::charge(OpKind::kAdd, m * (n - 1));
  OpCounter::charge(OpKind::kDiv, m);
  for (size_t i = 0; i + 1 < scratch.size(); ++i) {
    for (size_t j = i + 1; j < scratch.size(); ++j) {
      OpCounter::charge(OpKind::kCompare);
      if (scratch[i] == scratch[j]) return false;
    }
  }
  return true;
}

/// Advances `alpha` to the next vector in [0, banks)^n lexicographic order;
/// false when wrapped around.
bool next_vector(std::vector<Count>& alpha, Count banks) {
  for (size_t d = alpha.size(); d-- > 0;) {
    if (++alpha[d] < banks) return true;
    alpha[d] = 0;
  }
  return false;
}

/// Decodes the flat lexicographic index (last dimension fastest, matching
/// next_vector) into the alpha vector it denotes.
void flat_to_vector(Count flat, Count banks, std::vector<Count>& alpha) {
  for (size_t d = alpha.size(); d-- > 0;) {
    alpha[d] = flat % banks;
    flat /= banks;
  }
}

// ---------------------------------------------------------------------------
// Pruned enumeration (LtbOptions::prune)
// ---------------------------------------------------------------------------

/// The grouped difference vectors of one pattern: row r of `rows` holds
/// rank coordinates; rows [group_begin[d], group_begin[d+1]) have their
/// last nonzero coordinate at d, so they become decidable the moment
/// alpha[d] is assigned. `conflicted` is the degenerate duplicate-offset
/// case (a zero difference vector): every alpha conflicts at every N.
struct DiffGroups {
  const Count* rows = nullptr;
  const Count* group_begin = nullptr;  // rank + 1 entries
  int rank = 1;
  bool conflicted = false;
};

/// Builds the deduplicated, sign-canonicalized, grouped difference vectors
/// into `scratch`. Dedup matters: collinear taps produce the same
/// direction many times over, and every duplicate would be re-tested at
/// every DFS node of its group's depth.
DiffGroups build_diff_groups(const Pattern& pattern, LtbScratch& scratch) {
  const int rank = pattern.rank();
  const auto urank = static_cast<size_t>(rank);
  const Count m = pattern.size();
  DiffGroups groups;
  groups.rank = rank;

  std::vector<Count>& pairs = scratch.pair_coords;
  pairs.clear();
  const auto& offsets = pattern.offsets();
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    for (size_t j = i + 1; j < offsets.size(); ++j) {
      const size_t base = pairs.size();
      pairs.resize(base + urank);  // mempart-analyze: allow(noalloc) first-touch growth of reused LtbScratch capacity; warm iterations reallocate nothing
      Count lead = 0;
      for (size_t d = 0; d < urank; ++d) {
        const Count c = offsets[j][d] - offsets[i][d];
        if (lead == 0) lead = c;
        // (alpha . dv) mod N == 0 iff (alpha . -dv) mod N == 0: canonical
        // sign (first nonzero positive) makes dv and -dv dedup together.
        pairs[base + d] = lead < 0 ? -c : c;
      }
      if (lead == 0) groups.conflicted = true;  // duplicate offsets
    }
  }
  const Count num_pairs = m * (m - 1) / 2;

  std::vector<Count>& order = scratch.order;
  order.resize(static_cast<size_t>(num_pairs));  // mempart-analyze: allow(noalloc) first-touch growth of reused LtbScratch capacity; warm iterations reallocate nothing
  for (size_t r = 0; r < order.size(); ++r) order[r] = static_cast<Count>(r);
  const Count* data = pairs.data();
  auto row_less = [data, urank](Count a, Count b) {
    const Count* ra = data + static_cast<size_t>(a) * urank;
    const Count* rb = data + static_cast<size_t>(b) * urank;
    return std::lexicographical_compare(ra, ra + urank, rb, rb + urank);
  };
  auto row_eq = [data, urank](Count a, Count b) {
    const Count* ra = data + static_cast<size_t>(a) * urank;
    const Count* rb = data + static_cast<size_t>(b) * urank;
    return std::equal(ra, ra + urank, rb);
  };
  std::sort(order.begin(), order.end(), row_less);
  order.erase(std::unique(order.begin(), order.end(), row_eq), order.end());

  // Counting sort by last-nonzero coordinate: sizes, prefix sums, place.
  std::vector<Count>& begin = scratch.group_begin;
  begin.assign(urank + 1, 0);
  auto last_nonzero = [data, urank](Count r) {
    const Count* row = data + static_cast<size_t>(r) * urank;
    for (size_t d = urank; d-- > 0;) {
      if (row[d] != 0) return d;
    }
    return size_t{0};  // zero rows: parked in group 0, conflicted anyway
  };
  for (const Count r : order) ++begin[last_nonzero(r) + 1];
  for (size_t d = 1; d <= urank; ++d) begin[d] += begin[d - 1];
  std::vector<Count>& grouped = scratch.grouped;
  grouped.resize(order.size() * urank);  // mempart-analyze: allow(noalloc) first-touch growth of reused LtbScratch capacity; warm iterations reallocate nothing
  std::vector<Count>& cursor = scratch.group_cursor;
  cursor.assign(begin.begin(), begin.end());
  for (const Count r : order) {
    const size_t d = last_nonzero(r);
    const auto slot = static_cast<size_t>(cursor[d]++);
    std::copy(data + static_cast<size_t>(r) * urank,
              data + static_cast<size_t>(r) * urank + urank,
              grouped.begin() + static_cast<std::ptrdiff_t>(slot * urank));
  }
  groups.rows = grouped.data();
  groups.group_begin = begin.data();
  return groups;
}

/// One DFS worker's state for a fixed candidate N. Op charges accumulate
/// locally and flush once per shard so the hot walk is not a stream of
/// thread-local counter increments.
struct Dfs {
  const DiffGroups* groups = nullptr;
  Count banks = 0;
  Count* alpha = nullptr;
  Count leaves = 0;
  Count mul = 0;
  Count add = 0;
  Count div = 0;
  Count cmp = 0;

  /// True iff no difference vector in depth-d's group is congruent to 0
  /// mod banks under the current alpha[0..d] prefix.
  bool prefix_ok(size_t d) {
    const Count* rows = groups->rows;
    const auto rank = static_cast<size_t>(groups->rank);
    const auto lo = static_cast<size_t>(groups->group_begin[d]);
    const auto hi = static_cast<size_t>(groups->group_begin[d + 1]);
    for (size_t r = lo; r < hi; ++r) {
      const Count* row = rows + r * rank;
      Count dot = 0;
      for (size_t j = 0; j <= d; ++j) dot += alpha[j] * row[j];
      mul += static_cast<Count>(d) + 1;
      add += static_cast<Count>(d);
      div += 1;
      cmp += 1;
      if (euclid_mod(dot, banks) == 0) return false;
    }
    return true;
  }

  /// Lexicographic DFS from depth d; true once alpha holds the first
  /// conflict-free completion of the current prefix.
  bool search(size_t d) {
    const auto rank = static_cast<size_t>(groups->rank);
    for (Count a = 0; a < banks; ++a) {
      alpha[d] = a;
      const bool leaf = d + 1 == rank;
      if (leaf) ++leaves;
      if (!prefix_ok(d)) continue;
      if (leaf) return true;
      if (search(d + 1)) return true;
    }
    return false;
  }

  void flush_charges() const {
    OpCounter::charge(OpKind::kMul, mul);
    OpCounter::charge(OpKind::kAdd, add);
    OpCounter::charge(OpKind::kDiv, div);
    OpCounter::charge(OpKind::kCompare, cmp);
  }
};

void finish_solution(Count banks, std::span<const Count> alpha,
                     OpScope& scope, obs::Span& span, LtbSolution& out) {
  out.num_banks = banks;
  out.transform.assign(alpha);
  out.ops = scope.tally();
  span.arg("banks", banks).arg("vectors_tried", out.vectors_tried);
  obs::count("ltb.solves");
  obs::count("ltb.vectors_tried", out.vectors_tried);
  obs::record_op_tally(out.ops, "ltb.ops");
}

/// The pruned search (sequential and sharded). Returns via `out`; throws
/// InvalidState on exhaustion like the unpruned walk.
void solve_pruned(const Pattern& pattern, const LtbOptions& options,
                  Count threads, LtbScratch& scratch, OpScope& scope,
                  obs::Span& span, LtbSolution& out) {
  const int rank = pattern.rank();
  const auto urank = static_cast<size_t>(rank);
  const DiffGroups groups = build_diff_groups(pattern, scratch);

  if (!groups.conflicted && threads > 1) {
    // Sharded pruned search: each worker owns one top-level coordinate
    // value and DFS-es its subtree; the winner is the atomic MINIMUM
    // conflict-free flat index, which is exactly the alpha the sequential
    // DFS returns first (subtrees are disjoint and lex-ordered by a0).
    ThreadPool pool(threads);
    for (Count banks = pattern.size(); banks <= options.max_banks; ++banks) {
      obs::Span candidate("ltb.candidate");
      Count total = 1;
      for (int d = 0; d < rank; ++d) total = checked_mul(total, banks);
      const Count subtree = total / banks;  // leaves under one a0
      scratch.shard_alpha.assign(static_cast<size_t>(banks) * urank, 0);
      std::atomic<Count> best{total};
      std::atomic<Count> tried{0};
      pool.parallel_for(banks, [&](Count a0) {
        if (a0 * subtree >= best.load(std::memory_order_relaxed)) return;
        Dfs dfs;
        dfs.groups = &groups;
        dfs.banks = banks;
        dfs.alpha =
            scratch.shard_alpha.data() + static_cast<size_t>(a0) * urank;
        dfs.alpha[0] = a0;
        bool found = false;
        if (dfs.prefix_ok(0)) {
          if (rank == 1) {
            ++dfs.leaves;
            found = true;
          } else {
            found = dfs.search(1);
          }
        } else if (rank == 1) {
          ++dfs.leaves;
        }
        dfs.flush_charges();
        tried.fetch_add(dfs.leaves, std::memory_order_relaxed);
        if (found) {
          Count flat = 0;
          for (size_t d = 0; d < urank; ++d) flat = flat * banks + dfs.alpha[d];
          Count current = best.load(std::memory_order_relaxed);
          while (flat < current &&
                 !best.compare_exchange_weak(current, flat,
                                             std::memory_order_relaxed)) {
          }
        }
      });
      const Count winner = best.load(std::memory_order_relaxed);
      out.vectors_tried += tried.load(std::memory_order_relaxed);
      candidate.arg("N", banks)
          .arg("vectors_tried", tried.load(std::memory_order_relaxed))
          .arg("found", Count{winner < total});
      if (winner < total) {
        scratch.alpha.resize(urank);  // mempart-analyze: allow(noalloc) rank-bounded winner buffer in reused scratch; capacity persists across solves
        flat_to_vector(winner, banks, scratch.alpha);
        finish_solution(banks, scratch.alpha, scope, span, out);
        return;
      }
    }
    throw InvalidState(
        "ltb_solve: no conflict-free transform within max_banks");
  }

  for (Count banks = pattern.size();
       !groups.conflicted && banks <= options.max_banks; ++banks) {
    // One span per candidate N: the pruned alpha walk under each keeps the
    // exponential-vs-O(m^2) gap of Table 1 visible on a trace timeline.
    obs::Span candidate("ltb.candidate");
    scratch.alpha.assign(urank, 0);
    Dfs dfs;
    dfs.groups = &groups;
    dfs.banks = banks;
    dfs.alpha = scratch.alpha.data();
    const bool found = dfs.search(0);
    dfs.flush_charges();
    out.vectors_tried += dfs.leaves;
    candidate.arg("N", banks)
        .arg("vectors_tried", dfs.leaves)
        .arg("found", Count{found});
    if (found) {
      finish_solution(banks, scratch.alpha, scope, span, out);
      return;
    }
  }
  throw InvalidState("ltb_solve: no conflict-free transform within max_banks");
}

}  // namespace

void ltb_solve_into(const Pattern& pattern, const LtbOptions& options,
                    LtbScratch& scratch, LtbSolution& out) {
  MEMPART_REQUIRE(options.max_banks >= pattern.size(),
                  "ltb_solve: max_banks below pattern size");
  obs::Span span("ltb.solve");
  span.arg("pattern", pattern.name()).arg("m", pattern.size());
  obs::LatencyTimer timer("ltb.alpha_search.ns");

  OpScope scope;
  out.num_banks = 0;
  out.vectors_tried = 0;
  const Count threads =
      options.threads == 0 ? default_thread_count() : options.threads;
  if (options.prune) {
    solve_pruned(pattern, options, threads, scratch, scope, span, out);
    return;
  }

  if (threads > 1) {
    // Sharded enumeration: chunks of the flat lexicographic index space are
    // handed to a pool; the winner is the atomic MINIMUM conflict-free flat
    // index, which is exactly the alpha the sequential scan returns first.
    ThreadPool pool(threads);
    const int rank = pattern.rank();
    for (Count banks = pattern.size(); banks <= options.max_banks; ++banks) {
      obs::Span candidate("ltb.candidate");
      Count total = 1;
      for (int d = 0; d < rank; ++d) total = checked_mul(total, banks);
      constexpr Count kChunk = 2048;
      const Count num_chunks = ceil_div(total, kChunk);
      std::atomic<Count> best{total};
      std::atomic<Count> tried{0};
      pool.parallel_for(num_chunks, [&](Count c) {
        const Count begin = c * kChunk;
        if (begin >= best.load(std::memory_order_relaxed)) return;
        const Count end = std::min(total, begin + kChunk);
        std::vector<Count> alpha(static_cast<size_t>(rank));
        flat_to_vector(begin, banks, alpha);
        std::vector<Count> chunk_scratch;
        Count local_tried = 0;
        for (Count flat = begin; flat < end; ++flat) {
          if (flat >= best.load(std::memory_order_relaxed)) break;
          ++local_tried;
          if (candidate_conflict_free(pattern, alpha, banks, chunk_scratch)) {
            Count current = best.load(std::memory_order_relaxed);
            while (flat < current &&
                   !best.compare_exchange_weak(current, flat,
                                               std::memory_order_relaxed)) {
            }
            break;
          }
          next_vector(alpha, banks);
        }
        tried.fetch_add(local_tried, std::memory_order_relaxed);
      });
      const Count winner = best.load(std::memory_order_relaxed);
      out.vectors_tried += tried.load(std::memory_order_relaxed);
      candidate.arg("N", banks)
          .arg("vectors_tried", tried.load(std::memory_order_relaxed))
          .arg("found", Count{winner < total});
      if (winner < total) {
        scratch.alpha.resize(static_cast<size_t>(rank));  // mempart-analyze: allow(noalloc) rank-bounded winner buffer in reused scratch; capacity persists across solves
        flat_to_vector(winner, banks, scratch.alpha);
        finish_solution(banks, scratch.alpha, scope, span, out);
        return;
      }
    }
    throw InvalidState(
        "ltb_solve: no conflict-free transform within max_banks");
  }
  std::vector<Count>& bank_scratch = scratch.bank_scratch;
  for (Count banks = pattern.size(); banks <= options.max_banks; ++banks) {
    // One span per candidate N: the N^n alpha enumeration under each makes
    // the exponential-vs-O(m^2) gap of Table 1 visible on a trace timeline.
    obs::Span candidate("ltb.candidate");
    const Count vectors_before = out.vectors_tried;
    scratch.alpha.assign(static_cast<size_t>(pattern.rank()), 0);
    bool found = false;
    do {
      ++out.vectors_tried;
      if (candidate_conflict_free(pattern, scratch.alpha, banks,
                                  bank_scratch)) {
        found = true;
        break;
      }
    } while (next_vector(scratch.alpha, banks));
    candidate.arg("N", banks)
        .arg("vectors_tried", out.vectors_tried - vectors_before)
        .arg("found", Count{found});
    if (found) {
      finish_solution(banks, scratch.alpha, scope, span, out);
      return;
    }
  }
  throw InvalidState("ltb_solve: no conflict-free transform within max_banks");
}

LtbSolution ltb_solve(const Pattern& pattern, const LtbOptions& options,
                      LtbScratch& scratch) {
  LtbSolution solution{.num_banks = 0,
                       .transform = LinearTransform({1}),
                       .vectors_tried = 0,
                       .ops = {}};
  ltb_solve_into(pattern, options, scratch, solution);
  return solution;
}

LtbSolution ltb_solve(const Pattern& pattern, const LtbOptions& options) {
  LtbScratch scratch;
  return ltb_solve(pattern, options, scratch);
}

bool ltb_conflict_free(const Pattern& pattern, const LinearTransform& alpha,
                       Count banks) {
  MEMPART_REQUIRE(banks >= 1, "ltb_conflict_free: banks must be >= 1");
  MEMPART_REQUIRE(alpha.rank() == pattern.rank(),
                  "ltb_conflict_free: rank mismatch");
  std::vector<Count> scratch;
  return candidate_conflict_free(pattern, alpha.alpha(), banks, scratch);
}

}  // namespace mempart::baseline
