#include "baseline/ltb.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::baseline {
namespace {

/// Checks one candidate (alpha, N), charging the justification cost the
/// DAC'13 flow pays per vector: all m transformed values are computed up
/// front (per element one dot product — n mul, n-1 add — and one modulo),
/// then the bank indices are tested pairwise for distinctness ("it takes
/// O(m^2) times to justify the solution", §4.3.1). The pairwise scan stops
/// at the first collision; the m transform evaluations cannot be skipped.
bool candidate_conflict_free(const Pattern& pattern,
                             const std::vector<Count>& alpha, Count banks,
                             std::vector<Count>& scratch) {
  const int n = pattern.rank();
  const Count m = pattern.size();
  scratch.clear();
  for (const NdIndex& delta : pattern.offsets()) {
    Address v = 0;
    for (size_t d = 0; d < alpha.size(); ++d) v += alpha[d] * delta[d];
    scratch.push_back(euclid_mod(v, banks));
  }
  OpCounter::charge(OpKind::kMul, m * n);
  OpCounter::charge(OpKind::kAdd, m * (n - 1));
  OpCounter::charge(OpKind::kDiv, m);
  for (size_t i = 0; i + 1 < scratch.size(); ++i) {
    for (size_t j = i + 1; j < scratch.size(); ++j) {
      OpCounter::charge(OpKind::kCompare);
      if (scratch[i] == scratch[j]) return false;
    }
  }
  return true;
}

/// Advances `alpha` to the next vector in [0, banks)^n lexicographic order;
/// false when wrapped around.
bool next_vector(std::vector<Count>& alpha, Count banks) {
  for (size_t d = alpha.size(); d-- > 0;) {
    if (++alpha[d] < banks) return true;
    alpha[d] = 0;
  }
  return false;
}

/// Decodes the flat lexicographic index (last dimension fastest, matching
/// next_vector) into the alpha vector it denotes.
void flat_to_vector(Count flat, Count banks, std::vector<Count>& alpha) {
  for (size_t d = alpha.size(); d-- > 0;) {
    alpha[d] = flat % banks;
    flat /= banks;
  }
}

}  // namespace

LtbSolution ltb_solve(const Pattern& pattern, const LtbOptions& options) {
  MEMPART_REQUIRE(options.max_banks >= pattern.size(),
                  "ltb_solve: max_banks below pattern size");
  obs::Span span("ltb.solve");
  span.arg("pattern", pattern.name()).arg("m", pattern.size());

  OpScope scope;
  LtbSolution solution{.num_banks = 0,
                       .transform = LinearTransform({1}),
                       .vectors_tried = 0,
                       .ops = {}};
  const Count threads =
      options.threads == 0 ? default_thread_count() : options.threads;
  if (threads > 1) {
    // Sharded enumeration: chunks of the flat lexicographic index space are
    // handed to a pool; the winner is the atomic MINIMUM conflict-free flat
    // index, which is exactly the alpha the sequential scan returns first.
    ThreadPool pool(threads);
    const int rank = pattern.rank();
    for (Count banks = pattern.size(); banks <= options.max_banks; ++banks) {
      obs::Span candidate("ltb.candidate");
      Count total = 1;
      for (int d = 0; d < rank; ++d) total = checked_mul(total, banks);
      constexpr Count kChunk = 2048;
      const Count num_chunks = ceil_div(total, kChunk);
      std::atomic<Count> best{total};
      std::atomic<Count> tried{0};
      pool.parallel_for(num_chunks, [&](Count c) {
        const Count begin = c * kChunk;
        if (begin >= best.load(std::memory_order_relaxed)) return;
        const Count end = std::min(total, begin + kChunk);
        std::vector<Count> alpha(static_cast<size_t>(rank));
        flat_to_vector(begin, banks, alpha);
        std::vector<Count> chunk_scratch;
        Count local_tried = 0;
        for (Count flat = begin; flat < end; ++flat) {
          if (flat >= best.load(std::memory_order_relaxed)) break;
          ++local_tried;
          if (candidate_conflict_free(pattern, alpha, banks, chunk_scratch)) {
            Count current = best.load(std::memory_order_relaxed);
            while (flat < current &&
                   !best.compare_exchange_weak(current, flat,
                                               std::memory_order_relaxed)) {
            }
            break;
          }
          next_vector(alpha, banks);
        }
        tried.fetch_add(local_tried, std::memory_order_relaxed);
      });
      const Count winner = best.load(std::memory_order_relaxed);
      solution.vectors_tried += tried.load(std::memory_order_relaxed);
      candidate.arg("N", banks)
          .arg("vectors_tried", tried.load(std::memory_order_relaxed))
          .arg("found", Count{winner < total});
      if (winner < total) {
        std::vector<Count> alpha(static_cast<size_t>(rank));
        flat_to_vector(winner, banks, alpha);
        solution.num_banks = banks;
        solution.transform = LinearTransform(alpha);
        solution.ops = scope.tally();
        span.arg("banks", banks).arg("vectors_tried", solution.vectors_tried);
        obs::count("ltb.solves");
        obs::count("ltb.vectors_tried", solution.vectors_tried);
        obs::record_op_tally(solution.ops, "ltb.ops");
        return solution;
      }
    }
    throw InvalidState(
        "ltb_solve: no conflict-free transform within max_banks");
  }
  std::vector<Count> scratch;
  for (Count banks = pattern.size(); banks <= options.max_banks; ++banks) {
    // One span per candidate N: the N^n alpha enumeration under each makes
    // the exponential-vs-O(m^2) gap of Table 1 visible on a trace timeline.
    obs::Span candidate("ltb.candidate");
    const Count vectors_before = solution.vectors_tried;
    std::vector<Count> alpha(static_cast<size_t>(pattern.rank()), 0);
    bool found = false;
    do {
      ++solution.vectors_tried;
      if (candidate_conflict_free(pattern, alpha, banks, scratch)) {
        found = true;
        break;
      }
    } while (next_vector(alpha, banks));
    candidate.arg("N", banks)
        .arg("vectors_tried", solution.vectors_tried - vectors_before)
        .arg("found", Count{found});
    if (found) {
      solution.num_banks = banks;
      solution.transform = LinearTransform(alpha);
      solution.ops = scope.tally();
      span.arg("banks", banks).arg("vectors_tried", solution.vectors_tried);
      obs::count("ltb.solves");
      obs::count("ltb.vectors_tried", solution.vectors_tried);
      obs::record_op_tally(solution.ops, "ltb.ops");
      return solution;
    }
  }
  throw InvalidState("ltb_solve: no conflict-free transform within max_banks");
}

bool ltb_conflict_free(const Pattern& pattern, const LinearTransform& alpha,
                       Count banks) {
  MEMPART_REQUIRE(banks >= 1, "ltb_conflict_free: banks must be >= 1");
  MEMPART_REQUIRE(alpha.rank() == pattern.rank(),
                  "ltb_conflict_free: rank mismatch");
  std::vector<Count> scratch;
  return candidate_conflict_free(pattern, alpha.alpha(), banks, scratch);
}

}  // namespace mempart::baseline
