// Array-duplication baseline (reference [4] of the paper, §1).
//
// The simplest way to serve m reads per cycle from single-port memory is to
// keep m full copies of the array: every copy serves one access. Zero
// additional II, no address transformation — but (m-1) * W elements of
// storage overhead, which is what motivates partitioning in the first
// place. Included so benches can show the full design-space triangle
// (duplication / LTB / ours).
#pragma once

#include "common/nd.h"
#include "common/types.h"
#include "pattern/pattern.h"

namespace mempart::baseline {

/// Cost summary of serving `pattern` by duplicating the array.
struct DuplicationSolution {
  Count copies = 0;              ///< = m, one copy per simultaneous access
  Count delta_ii = 0;            ///< always 0
  Count overhead_elements = 0;   ///< (m - 1) * W
};

/// Computes the duplication costs for `pattern` over `shape`.
[[nodiscard]] DuplicationSolution duplication_solve(const Pattern& pattern,
                                                    const NdShape& shape);

}  // namespace mempart::baseline
