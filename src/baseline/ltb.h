// LTB baseline: the linear-transformation-based partitioning of
// Wang, Li, Zhang, Zhang, Cong — "Memory partitioning for multidimensional
// arrays in high-level synthesis", DAC 2013 (reference [9] of the paper).
//
// LTB also maps with B(x) = (alpha . x) mod N, but finds alpha by exhaustive
// search: for each candidate N starting at m it enumerates the N^n transform
// vectors alpha in [0, N)^n and keeps the first that maps the pattern's m
// offsets to m distinct banks. Cost O(C * N^n * m^2) — the exponential-in-n
// search the DAC'15 paper eliminates. Because the search is exhaustive, the
// resulting N is the true minimum over linear transforms, so it can beat the
// closed-form approach by a few banks on some patterns (Median: 7 vs 8,
// Gaussian: 10 vs 13 in Table 1) while costing orders of magnitude more
// arithmetic.
//
// The enumeration can optionally be pruned with the conflict-difference
// bound (LtbOptions::prune): alpha conflicts iff some pairwise offset
// difference dv has (alpha . dv) mod N == 0, and whether that holds for
// dv depends only on the alpha coordinates up to dv's last nonzero
// coordinate. Grouping the (deduplicated) difference vectors by that
// coordinate lets a DFS over alpha prefixes discard a whole
// [0, N)^(n-1-d) subtree the moment a prefix already hits a difference —
// without changing the answer: the DFS visits prefixes in lexicographic
// order and only skips alphas that are provably conflicted, so the first
// surviving leaf is exactly the alpha the unpruned scan returns.
//
// Pruning is OFF by default on purpose. The unpruned walk is the DAC'13
// baseline whose arithmetic cost Table 1 reproduces; the pruned walk
// charges only the dot products, modulos and compares it really performs,
// which collapses the measured cost gap the repo exists to demonstrate.
// Cold-solve consumers that want LTB as a fast competitor (bench_solver's
// A/B, batch drivers) opt in and pass an LtbScratch so warm solves
// allocate nothing; the paper-comparison paths keep the faithful cost
// model.
#pragma once

#include <optional>
#include <vector>

#include "common/annotations.h"
#include "common/op_counter.h"
#include "common/types.h"
#include "core/linear_transform.h"
#include "pattern/pattern.h"

namespace mempart::baseline {

/// Outcome of the exhaustive LTB search.
struct LtbSolution {
  Count num_banks = 0;           ///< minimal N over all linear transforms
  LinearTransform transform;     ///< the first conflict-free alpha found
  Count vectors_tried = 0;       ///< candidate alphas evaluated
  OpTally ops;                   ///< arithmetic charged during the search
};

/// Search controls.
struct LtbOptions {
  /// Abort threshold: highest N to try before giving up (a pattern always
  /// has a solution at some N <= max z-spread + 1, but the exhaustive search
  /// gets expensive; the paper's benchmarks all resolve within m + a few).
  Count max_banks = 256;

  /// Worker threads sharding the alpha enumeration. 1 (the default) runs the
  /// exact sequential scan; 0 resolves to default_thread_count(). The
  /// threaded search returns the SAME num_banks and transform (the
  /// first-in-lexicographic-order conflict-free alpha, via an atomic
  /// minimum over flat vector indices), but vectors_tried and the op tally
  /// become thread-count-dependent: chunks past the winner are skipped, and
  /// ops charged on worker threads land in their thread-local counters.
  Count threads = 1;

  /// Prune the enumeration with the conflict-difference bound (see the
  /// header comment). Identical num_banks and transform; vectors_tried
  /// counts only the complete alphas the DFS actually evaluated and the
  /// op tally shrinks to the work really done, so leave this off anywhere
  /// the DAC'13 cost model is being measured.
  bool prune = false;
};

/// Reusable buffers for the pruned enumeration: the grouped difference
/// vectors, the DFS alpha state, and the per-shard alpha slices of the
/// threaded search. Batch drivers (bench_solver, the serve cold path's
/// LTB A/B) own one per worker and pass it in, so warm solves allocate
/// nothing — the mirror of the Partitioner's BankSearchScratch.
struct LtbScratch {
  std::vector<Count> pair_coords;   ///< raw pairwise diffs, rank coords each
  std::vector<Count> order;         ///< sort permutation for dedup
  std::vector<Count> grouped;       ///< deduped diffs grouped by last nonzero
  std::vector<Count> group_begin;   ///< rank+1 offsets into grouped (rows)
  std::vector<Count> group_cursor;  ///< counting-sort write cursors
  std::vector<Count> alpha;         ///< sequential candidate vector
  std::vector<Count> shard_alpha;   ///< banks*rank: per-top-coordinate slices
  std::vector<Count> bank_scratch;  ///< unpruned justification bank values
};

/// Runs the exhaustive search. Throws InvalidState if no solution is found
/// within options.max_banks.
[[nodiscard]] LtbSolution ltb_solve(const Pattern& pattern,
                                    const LtbOptions& options = {});

/// ltb_solve with caller-owned working buffers.
[[nodiscard]] LtbSolution ltb_solve(const Pattern& pattern,
                                    const LtbOptions& options,
                                    LtbScratch& scratch);

/// Allocation-free variant for warm batch loops: reuses `scratch` and
/// writes the winner into `out` in place (out.transform.assign reuses its
/// capacity). Behaves exactly like ltb_solve otherwise.
MEMPART_NOALLOC void ltb_solve_into(const Pattern& pattern,
                                    const LtbOptions& options,
                                    LtbScratch& scratch, LtbSolution& out);

/// True iff `alpha` maps the pattern's offsets to distinct banks mod N.
/// Exposed for tests and the op-count model; charges ops like the search.
[[nodiscard]] bool ltb_conflict_free(const Pattern& pattern,
                                     const LinearTransform& alpha, Count banks);

}  // namespace mempart::baseline
