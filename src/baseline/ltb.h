// LTB baseline: the linear-transformation-based partitioning of
// Wang, Li, Zhang, Zhang, Cong — "Memory partitioning for multidimensional
// arrays in high-level synthesis", DAC 2013 (reference [9] of the paper).
//
// LTB also maps with B(x) = (alpha . x) mod N, but finds alpha by exhaustive
// search: for each candidate N starting at m it enumerates ALL N^n transform
// vectors alpha in [0, N)^n and keeps the first that maps the pattern's m
// offsets to m distinct banks. Cost O(C * N^n * m^2) — the exponential-in-n
// search the DAC'15 paper eliminates. Because the search is exhaustive, the
// resulting N is the true minimum over linear transforms, so it can beat the
// closed-form approach by a few banks on some patterns (Median: 7 vs 8,
// Gaussian: 10 vs 13 in Table 1) while costing orders of magnitude more
// arithmetic.
#pragma once

#include <optional>

#include "common/op_counter.h"
#include "common/types.h"
#include "core/linear_transform.h"
#include "pattern/pattern.h"

namespace mempart::baseline {

/// Outcome of the exhaustive LTB search.
struct LtbSolution {
  Count num_banks = 0;           ///< minimal N over all linear transforms
  LinearTransform transform;     ///< the first conflict-free alpha found
  Count vectors_tried = 0;       ///< candidate alphas evaluated
  OpTally ops;                   ///< arithmetic charged during the search
};

/// Search controls.
struct LtbOptions {
  /// Abort threshold: highest N to try before giving up (a pattern always
  /// has a solution at some N <= max z-spread + 1, but the exhaustive search
  /// gets expensive; the paper's benchmarks all resolve within m + a few).
  Count max_banks = 256;

  /// Worker threads sharding the alpha enumeration. 1 (the default) runs the
  /// exact sequential scan; 0 resolves to default_thread_count(). The
  /// threaded search returns the SAME num_banks and transform (the
  /// first-in-lexicographic-order conflict-free alpha, via an atomic
  /// minimum over flat vector indices), but vectors_tried and the op tally
  /// become thread-count-dependent: chunks past the winner are pruned, and
  /// ops charged on worker threads land in their thread-local counters.
  Count threads = 1;
};

/// Runs the exhaustive search. Throws InvalidState if no solution is found
/// within options.max_banks.
[[nodiscard]] LtbSolution ltb_solve(const Pattern& pattern,
                                    const LtbOptions& options = {});

/// True iff `alpha` maps the pattern's offsets to distinct banks mod N.
/// Exposed for tests and the op-count model; charges ops like the search.
[[nodiscard]] bool ltb_conflict_free(const Pattern& pattern,
                                     const LinearTransform& alpha, Count banks);

}  // namespace mempart::baseline
