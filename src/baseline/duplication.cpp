#include "baseline/duplication.h"

#include "common/math_util.h"

namespace mempart::baseline {

DuplicationSolution duplication_solve(const Pattern& pattern,
                                      const NdShape& shape) {
  DuplicationSolution out;
  out.copies = pattern.size();
  out.delta_ii = 0;
  out.overhead_elements = checked_mul(out.copies - 1, shape.volume());
  return out;
}

}  // namespace mempart::baseline
