#include "baseline/classical.h"

#include <algorithm>

#include "common/errors.h"
#include "common/math_util.h"
#include "core/verify.h"

namespace mempart::baseline {

ClassicalMapping::ClassicalMapping(NdShape shape, int dim, Count banks,
                                   ClassicalScheme scheme, Count block_size)
    : shape_(std::move(shape)),
      dim_(dim),
      banks_(banks),
      scheme_(scheme),
      block_size_(block_size) {
  MEMPART_REQUIRE(dim_ >= 0 && dim_ < shape_.rank(),
                  "ClassicalMapping: dimension out of range");
  MEMPART_REQUIRE(banks_ >= 1, "ClassicalMapping: banks must be >= 1");
  const Count extent = shape_.extent(dim_);
  switch (scheme_) {
    case ClassicalScheme::kCyclic:
      block_size_ = 1;
      break;
    case ClassicalScheme::kBlock:
      block_size_ = ceil_div(extent, banks_);
      break;
    case ClassicalScheme::kBlockCyclic:
      MEMPART_REQUIRE(block_size_ >= 1,
                      "ClassicalMapping: block-cyclic needs block_size >= 1");
      break;
  }
  // Per-bank share of the partitioned dimension, rounded up to whole blocks
  // so every bank has identical capacity.
  share_ = ceil_div(ceil_div(extent, block_size_), banks_) * block_size_;
}

Count ClassicalMapping::bank_of(const NdIndex& x) const {
  MEMPART_REQUIRE(shape_.contains(x), "ClassicalMapping::bank_of: x out of domain");
  const Coord coordinate = x[static_cast<size_t>(dim_)];
  return (coordinate / block_size_) % banks_;
}

Address ClassicalMapping::offset_of(const NdIndex& x) const {
  MEMPART_REQUIRE(shape_.contains(x),
                  "ClassicalMapping::offset_of: x out of domain");
  // Coordinate within the bank along the partitioned dimension: which of
  // the bank's blocks, times the block size, plus position in the block.
  const Coord coordinate = x[static_cast<size_t>(dim_)];
  const Count block_index = coordinate / block_size_;
  const Count local = (block_index / banks_) * block_size_ +
                      coordinate % block_size_;
  Address offset = 0;
  for (int d = 0; d < shape_.rank(); ++d) {
    const Count extent = d == dim_ ? share_ : shape_.extent(d);
    const Count value = d == dim_ ? local : x[static_cast<size_t>(d)];
    offset = offset * extent + value;
  }
  return offset;
}

Count ClassicalMapping::bank_capacity() const {
  Count capacity = share_;
  for (int d = 0; d < shape_.rank(); ++d) {
    if (d != dim_) capacity = checked_mul(capacity, shape_.extent(d));
  }
  return capacity;
}

Count ClassicalMapping::storage_overhead_elements() const {
  return checked_mul(bank_capacity(), banks_) - shape_.volume();
}

Count classical_delta_ii(const Pattern& pattern,
                         const ClassicalMapping& mapping) {
  MEMPART_REQUIRE(pattern.rank() == mapping.array_shape().rank(),
                  "classical_delta_ii: rank mismatch");
  // Block schemes are not shift-invariant (a window near a block border
  // spreads differently than mid-block), so measure over all positions.
  return measure_delta_ii(pattern, mapping.array_shape(),
                          [&](const NdIndex& x) { return mapping.bank_of(x); });
}

ClassicalBest best_classical(const Pattern& pattern, const NdShape& shape,
                             Count max_banks) {
  MEMPART_REQUIRE(max_banks >= 1, "best_classical: max_banks must be >= 1");
  ClassicalBest best;
  best.delta_ii = pattern.size();  // sentinel above any real value
  for (int dim = 0; dim < shape.rank(); ++dim) {
    for (ClassicalScheme scheme :
         {ClassicalScheme::kCyclic, ClassicalScheme::kBlock}) {
      for (Count banks = 1; banks <= max_banks; ++banks) {
        const ClassicalMapping mapping(shape, dim, banks, scheme);
        const Count delta = classical_delta_ii(pattern, mapping);
        if (delta < best.delta_ii ||
            (delta == best.delta_ii && banks < best.banks)) {
          best = {delta, banks, dim, scheme};
        }
      }
    }
  }
  return best;
}

}  // namespace mempart::baseline
