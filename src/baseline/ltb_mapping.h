// LTB's intra-bank mapping and its storage cost.
//
// The DAC'15 paper characterises LTB's storage model as padding EVERY array
// dimension to a multiple of N before laying out banks — the motivational
// example quantifies it for LoG at 640x480, N=13: 650*481 - 640*480 = 5450
// wasted elements, versus 640 for the proposed scheme. So:
//
//     Delta W_LTB = prod_i (ceil(w_i/N)*N) - prod_i w_i
//
// We realise that storage budget with a correct-by-construction mapping:
// inside the padded volume (every w'_i a multiple of N) the innermost
// coordinate is remapped cyclically exactly as in core/bank_mapping.h, with
// K' = w'_{n-1}/N slices per bank; each bank additionally keeps the padded
// extents of the leading dimensions. Address uniqueness follows from the
// same bijectivity argument, and the allocated capacity is exactly the
// padded volume, matching the paper's LTB overhead accounting.
#pragma once

#include "common/nd.h"
#include "common/types.h"
#include "core/linear_transform.h"

namespace mempart::baseline {

/// Padded shape: every extent rounded up to a multiple of `banks`.
[[nodiscard]] NdShape ltb_padded_shape(const NdShape& shape, Count banks);

/// Element overhead of LTB's all-dimensions padding.
[[nodiscard]] Count ltb_storage_overhead_elements(const NdShape& shape,
                                                  Count banks);

/// Full (B, F) mapping with LTB's storage layout.
class LtbMapping {
 public:
  LtbMapping(NdShape array_shape, LinearTransform transform, Count num_banks);

  [[nodiscard]] const NdShape& array_shape() const { return shape_; }
  [[nodiscard]] Count num_banks() const { return num_banks_; }
  [[nodiscard]] const LinearTransform& transform() const { return transform_; }

  /// Every-dimension padded extents (each w'_i a multiple of N).
  [[nodiscard]] const NdShape& padded_shape() const { return padded_; }

  /// K' = w'_{n-1} / N: intra-bank slices per bank.
  [[nodiscard]] Count padded_slices() const { return padded_slices_; }

  /// Bank index B(x) = (alpha . x) mod N.
  [[nodiscard]] Count bank_of(const NdIndex& x) const;

  /// Flat address inside the bank; unique per (bank, offset).
  [[nodiscard]] Address offset_of(const NdIndex& x) const;

  /// Allocated slots per bank: padded_volume / N (equal for all banks).
  [[nodiscard]] Count bank_capacity() const;

  /// Total allocated slots = padded volume.
  [[nodiscard]] Count total_capacity() const;

  [[nodiscard]] Count storage_overhead_elements() const;

 private:
  NdShape shape_;
  NdShape padded_;
  LinearTransform transform_;
  Count num_banks_ = 0;
  Count padded_slices_ = 0;   ///< w'_{n-1} / N
  Count leading_padded_ = 1;  ///< prod_{k<n-1} w'_k
};

}  // namespace mempart::baseline
