#include "baseline/ltb_mapping.h"

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"

namespace mempart::baseline {

NdShape ltb_padded_shape(const NdShape& shape, Count banks) {
  MEMPART_REQUIRE(banks >= 1, "ltb_padded_shape: banks must be >= 1");
  std::vector<Count> extents;
  extents.reserve(static_cast<size_t>(shape.rank()));
  for (Count w : shape.extents()) extents.push_back(round_up(w, banks));
  return NdShape(std::move(extents));
}

Count ltb_storage_overhead_elements(const NdShape& shape, Count banks) {
  return ltb_padded_shape(shape, banks).volume() - shape.volume();
}

LtbMapping::LtbMapping(NdShape array_shape, LinearTransform transform,
                       Count num_banks)
    : shape_(std::move(array_shape)),
      padded_(ltb_padded_shape(shape_, num_banks)),
      transform_(std::move(transform)),
      num_banks_(num_banks) {
  MEMPART_REQUIRE(transform_.rank() == shape_.rank(),
                  "LtbMapping: transform/array rank mismatch");
  padded_slices_ = padded_.extent(padded_.rank() - 1) / num_banks_;
  leading_padded_ = 1;
  for (int d = 0; d + 1 < padded_.rank(); ++d) {
    leading_padded_ = checked_mul(leading_padded_, padded_.extent(d));
  }

  // For fixed leading coordinates the (bank, x_new) pair is v mod span with
  // span = w'_{n-1}; v advances by alpha_{n-1} per innermost step, so the
  // remap repeats with period span / gcd(alpha_{n-1}, span). A searched
  // alpha with gcd(alpha_{n-1}, span) > 1 therefore assigns two in-domain
  // elements the same (bank, offset) slot whenever w_{n-1} exceeds that
  // period — an equal-capacity layout is mathematically impossible for such
  // a transform, so reject rather than silently corrupt the banked image.
  const Count span = padded_.extent(padded_.rank() - 1);
  const Count alpha_last =
      transform_.alpha()[static_cast<size_t>(shape_.rank() - 1)];
  const Count period = span / gcd(euclid_mod(alpha_last, span), span);
  MEMPART_REQUIRE(shape_.extent(shape_.rank() - 1) <= period,
                  "LtbMapping: innermost remap not injective — extent "
                  "w_{n-1} exceeds w'_{n-1} / gcd(alpha_{n-1}, w'_{n-1})");
}

Count LtbMapping::bank_of(const NdIndex& x) const {
  MEMPART_REQUIRE(shape_.contains(x), "LtbMapping::bank_of: x out of domain");
  OpCounter::charge(OpKind::kDiv);
  return euclid_mod(transform_.apply(x), num_banks_);
}

Address LtbMapping::offset_of(const NdIndex& x) const {
  MEMPART_REQUIRE(shape_.contains(x), "LtbMapping::offset_of: x out of domain");
  const Address v = transform_.apply(x);
  // Leading coordinates flattened in the PADDED leading extents, so every
  // bank reserves the full padded slab — this is precisely LTB's waste.
  Address leading_flat = 0;
  for (int d = 0; d + 1 < shape_.rank(); ++d) {
    leading_flat = leading_flat * padded_.extent(d) + x[static_cast<size_t>(d)];
  }
  const Count span = padded_slices_ * num_banks_;  // = w'_{n-1}
  const Count x_new = floor_div(euclid_mod(v, span), num_banks_);
  OpCounter::charge(OpKind::kDiv, 2);
  return leading_flat * padded_slices_ + x_new;
}

Count LtbMapping::bank_capacity() const {
  return checked_mul(leading_padded_, padded_slices_);
}

Count LtbMapping::total_capacity() const {
  return checked_mul(bank_capacity(), num_banks_);
}

Count LtbMapping::storage_overhead_elements() const {
  return total_capacity() - shape_.volume();
}

}  // namespace mempart::baseline
