// Classical HLS partitioning schemes: block, cyclic and block-cyclic.
//
// These are the array_partition pragmas every HLS tool ships (and the
// schemes references [5]/[1] build on): split one chosen dimension either
// into contiguous blocks (bank = x_d / block) or round-robin (bank =
// x_d mod N), or both (block-cyclic). They need no transform search at all
// — but because they only look at ONE dimension, multidimensional stencil
// patterns collide: a 5x5 window cyclically split along columns into 13
// banks still puts the window's 5 same-column elements into one bank.
// Implemented as full (bank, offset) mappings so the same verifiers,
// simulator and benches quantify exactly how much delta_II they leave on
// the table versus the paper's linear transforms.
#pragma once

#include "common/nd.h"
#include "common/types.h"
#include "pattern/pattern.h"

namespace mempart::baseline {

/// Which classical scheme to apply along the chosen dimension.
enum class ClassicalScheme {
  kCyclic,       ///< bank = x_d mod N
  kBlock,        ///< bank = x_d / ceil(w_d / N)
  kBlockCyclic,  ///< bank = (x_d / block_size) mod N
};

/// A one-dimensional classical partitioning of an n-dimensional array.
class ClassicalMapping {
 public:
  /// Partitions dimension `dim` of `shape` into `banks` banks. For
  /// kBlockCyclic, `block_size` > 0 selects the block granularity (ignored
  /// otherwise).
  ClassicalMapping(NdShape shape, int dim, Count banks, ClassicalScheme scheme,
                   Count block_size = 0);

  [[nodiscard]] const NdShape& array_shape() const { return shape_; }
  [[nodiscard]] Count num_banks() const { return banks_; }
  [[nodiscard]] ClassicalScheme scheme() const { return scheme_; }
  [[nodiscard]] int dimension() const { return dim_; }

  [[nodiscard]] Count bank_of(const NdIndex& x) const;

  /// Unique flat address inside the bank (row-major over the array with the
  /// partitioned dimension contracted to its per-bank share).
  [[nodiscard]] Address offset_of(const NdIndex& x) const;

  /// Allocated slots per bank: every bank reserves the worst-case share
  /// ceil(w_d / N) of the partitioned dimension.
  [[nodiscard]] Count bank_capacity() const;

  [[nodiscard]] Count storage_overhead_elements() const;

 private:
  NdShape shape_;
  int dim_ = 0;
  Count banks_ = 0;
  ClassicalScheme scheme_ = ClassicalScheme::kCyclic;
  Count block_size_ = 1;
  Count share_ = 0;  ///< per-bank extent of the partitioned dimension
};

/// delta_II of `pattern` under a classical mapping: computed from the
/// pattern offsets only (classical bank indices are position-invariant in
/// the same sense as linear transforms along the chosen dimension is NOT
/// guaranteed — this measures the worst case over a window of positions).
[[nodiscard]] Count classical_delta_ii(const Pattern& pattern,
                                       const ClassicalMapping& mapping);

/// The best (minimum) delta_II any single-dimension classical scheme can
/// reach for `pattern` with at most `max_banks` banks on `shape`; tries
/// every dimension, both cyclic and block, all N in [1, max_banks].
struct ClassicalBest {
  Count delta_ii = 0;
  Count banks = 0;
  int dim = 0;
  ClassicalScheme scheme = ClassicalScheme::kCyclic;
};
[[nodiscard]] ClassicalBest best_classical(const Pattern& pattern,
                                           const NdShape& shape,
                                           Count max_banks);

}  // namespace mempart::baseline
