#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include <unistd.h>

#include "common/annotations.h"
#include "common/env.h"
#include "common/errors.h"
#include "obs/trace.h"  // json_escape

namespace mempart::obs {
namespace {

constexpr Count kDefaultCapacity = kDefaultFlightCapacity;

/// One recorded slot. Writers stamp seq 0 -> fields -> seq n (release);
/// readers accept a slot only when seq reads the same non-zero value before
/// and after the field loads.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::int64_t> t_ns{0};
  std::atomic<std::int64_t> value{0};
  std::atomic<std::uint32_t> name_id{0};
  std::atomic<std::uint8_t> kind{0};
};

struct ThreadRing {
  ThreadRing(size_t capacity_in, int thread_id_in, std::uint64_t generation_in,
             std::chrono::steady_clock::time_point epoch_in)
      : slots(new Slot[capacity_in]),
        capacity(capacity_in),
        thread_id(thread_id_in),
        generation(generation_in),
        epoch(epoch_in) {}
  std::unique_ptr<Slot[]> slots;
  size_t capacity;
  int thread_id;
  std::uint64_t generation;
  /// Copy of the global epoch so the record path never touches the
  /// FlightState singleton.
  std::chrono::steady_clock::time_point epoch;
  /// Next sequence number to write (1-based). Only the owner thread
  /// stores; dumpers load to find the live window.
  std::atomic<std::uint64_t> next_seq{1};
};

/// Heterogeneous string hashing: intern lookups take the caller's
/// string_view directly instead of materialising a std::string per event
/// (that allocation dominated the record cost for non-SSO names).
struct NameHash {
  using is_transparent = void;
  size_t operator()(std::string_view name) const noexcept {
    return std::hash<std::string_view>{}(name);
  }
};
using NameIdMap =
    std::unordered_map<std::string, std::uint32_t, NameHash, std::equal_to<>>;

Count parse_capacity_env() noexcept {
  // The record paths below are noexcept (they run inside crash handlers),
  // so a malformed MEMPART_FLIGHT_CAPACITY cannot propagate from here: print
  // the diagnostic once and keep the default so crash dumps still work. CLI
  // entry points reject the same bad value up front via validate_env().
  try {
    return env_count("MEMPART_FLIGHT_CAPACITY", kDefaultCapacity, 0,
                     kMaxEnvFlightCapacity);
  } catch (const Error& error) {
    std::fprintf(stderr, "mempart: %s (flight recorder keeping default %lld)\n",
                 error.what(), static_cast<long long>(kDefaultCapacity));
    return kDefaultCapacity;
  }
}

std::atomic<std::int64_t> g_capacity{-1};  // -1 = env not read yet
/// Bumped by flight_clear(); threads drop cached rings/name ids on mismatch.
std::atomic<std::uint64_t> g_generation{1};
std::atomic<int> g_next_thread_id{1};

Count capacity_now() noexcept {
  std::int64_t cap = g_capacity.load(std::memory_order_relaxed);
  if (cap < 0) {
    cap = parse_capacity_env();
    g_capacity.store(cap, std::memory_order_relaxed);
  }
  return cap;
}

class FlightState {
 public:
  static FlightState& instance() {
    static FlightState state;
    return state;
  }

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  void register_ring(std::shared_ptr<ThreadRing> ring) {
    const MutexLock lock(mutex_);
    rings_.push_back(std::move(ring));
  }

  std::vector<std::shared_ptr<ThreadRing>> rings() const {
    const MutexLock lock(mutex_);
    std::vector<std::shared_ptr<ThreadRing>> out;
    const std::uint64_t generation =
        g_generation.load(std::memory_order_relaxed);
    for (const auto& ring : rings_) {
      if (ring->generation == generation) out.push_back(ring);
    }
    return out;
  }

  std::uint32_t intern(std::string_view name) {
    const MutexLock lock(mutex_);
    const auto it = name_ids_.find(name);
    if (it != name_ids_.end()) return it->second;
    names_.emplace_back(name);
    const auto id = static_cast<std::uint32_t>(names_.size());
    name_ids_.emplace(names_.back(), id);
    return id;
  }

  std::string name_of(std::uint32_t id) const {
    const MutexLock lock(mutex_);
    if (id == 0 || id > names_.size()) return "<unknown>";
    return names_[id - 1];
  }

  void clear() {
    const MutexLock lock(mutex_);
    rings_.clear();
    names_.clear();
    name_ids_.clear();
  }

  void set_dump_path(std::string path) {
    const MutexLock lock(mutex_);
    dump_path_ = std::move(path);
  }

  std::string dump_path() const {
    const MutexLock lock(mutex_);
    if (!dump_path_.empty()) return dump_path_;
    const char* dir = std::getenv("MEMPART_FLIGHT_DIR");
    std::ostringstream os;
    os << (dir != nullptr && dir[0] != '\0' ? dir : ".")
       << "/mempart_flight_" << static_cast<long>(::getpid()) << ".json";
    return os.str();
  }

 private:
  FlightState() : epoch_(std::chrono::steady_clock::now()) {}
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_;
  std::vector<std::shared_ptr<ThreadRing>> rings_ MEMPART_GUARDED_BY(mutex_);
  /// id - 1 indexes names_; the map holds its own key copies.
  std::vector<std::string> names_ MEMPART_GUARDED_BY(mutex_);
  NameIdMap name_ids_ MEMPART_GUARDED_BY(mutex_);
  std::string dump_path_ MEMPART_GUARDED_BY(mutex_);
};

/// Per-thread cached state, regenerated when flight_clear() bumps the
/// global generation.
struct ThreadCache {
  std::uint64_t generation = 0;
  std::shared_ptr<ThreadRing> ring;
  NameIdMap name_ids;
};

ThreadCache& thread_cache() {
  thread_local ThreadCache cache;
  const std::uint64_t generation = g_generation.load(std::memory_order_relaxed);
  if (cache.generation != generation) {
    cache = ThreadCache{};
    cache.generation = generation;
  }
  return cache;
}

ThreadRing* ring_for_this_thread() {
  ThreadCache& cache = thread_cache();
  if (cache.ring == nullptr) {
    const Count capacity = capacity_now();
    if (capacity <= 0) return nullptr;
    cache.ring = std::make_shared<ThreadRing>(
        static_cast<size_t>(capacity),
        g_next_thread_id.fetch_add(1, std::memory_order_relaxed),
        cache.generation, FlightState::instance().epoch());
    FlightState::instance().register_ring(cache.ring);
  }
  return cache.ring.get();
}

// ---------------------------------------------------------------------------
// Crash handlers
// ---------------------------------------------------------------------------

std::terminate_handler g_previous_terminate = nullptr;

extern "C" void flight_signal_handler(int signum) {
  // Not strictly async-signal-safe (the dump allocates); best effort for a
  // process that is already dying. Restore default first so a second fault
  // inside the dump terminates instead of recursing.
  std::signal(signum, SIG_DFL);
  (void)flight_dump_to_file(flight_dump_path());
  std::raise(signum);
}

[[noreturn]] void flight_terminate_handler() {
  (void)flight_dump_to_file(flight_dump_path());
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

}  // namespace

bool flight_enabled() noexcept { return capacity_now() > 0; }

Count flight_capacity() noexcept { return capacity_now(); }

void set_flight_capacity(Count events_per_thread) noexcept {
  g_capacity.store(events_per_thread < 0 ? 0 : events_per_thread,
                   std::memory_order_relaxed);
}

std::uint32_t flight_intern(std::string_view name) {
  ThreadCache& cache = thread_cache();
  const auto it = cache.name_ids.find(name);
  if (it != cache.name_ids.end()) return it->second;
  const std::uint32_t id = FlightState::instance().intern(name);
  cache.name_ids.emplace(std::string(name), id);
  return id;
}

void flight_record(FlightKind kind, std::uint32_t name_id,
                   std::int64_t value) noexcept {
  if (name_id == 0 || flight_quiet() || capacity_now() <= 0) return;
  ThreadRing* ring = ring_for_this_thread();
  if (ring == nullptr) return;
  const std::int64_t t_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ring->epoch)
          .count();
  const std::uint64_t seq = ring->next_seq.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[(seq - 1) % ring->capacity];
  slot.seq.store(0, std::memory_order_release);
  slot.t_ns.store(t_ns, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.name_id.store(name_id, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
  ring->next_seq.store(seq + 1, std::memory_order_release);
}

void flight_note(std::string_view name, std::int64_t value) {
  if (!flight_enabled() || flight_quiet()) return;
  flight_record(FlightKind::kNote, flight_intern(name), value);
}

namespace {
/// Depth of live FlightQuietScopes on this thread; > 0 suppresses the ring.
thread_local int t_quiet_depth = 0;
}  // namespace

bool flight_quiet() noexcept { return t_quiet_depth > 0; }

FlightQuietScope::FlightQuietScope() noexcept { ++t_quiet_depth; }

FlightQuietScope::~FlightQuietScope() { --t_quiet_depth; }

std::vector<FlightEvent> flight_events() {
  FlightState& state = FlightState::instance();
  std::vector<FlightEvent> out;
  for (const auto& ring : state.rings()) {
    const std::uint64_t next = ring->next_seq.load(std::memory_order_acquire);
    const std::uint64_t window = std::min<std::uint64_t>(
        next - 1, static_cast<std::uint64_t>(ring->capacity));
    std::vector<FlightEvent> thread_events;
    thread_events.reserve(static_cast<size_t>(window));
    for (std::uint64_t seq = next - window; seq < next; ++seq) {
      const Slot& slot = ring->slots[(seq - 1) % ring->capacity];
      const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0) continue;
      FlightEvent event;
      event.t_ns = slot.t_ns.load(std::memory_order_relaxed);
      event.value = slot.value.load(std::memory_order_relaxed);
      const std::uint32_t name_id =
          slot.name_id.load(std::memory_order_relaxed);
      event.kind =
          static_cast<FlightKind>(slot.kind.load(std::memory_order_relaxed));
      // Re-check the stamp: an owner overwriting this slot mid-read leaves
      // a different (or zero) value, and the torn slot is dropped.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != before) continue;
      event.seq = before;
      event.thread_id = ring->thread_id;
      event.name = state.name_of(name_id);
      thread_events.push_back(std::move(event));
    }
    std::sort(thread_events.begin(), thread_events.end(),
              [](const FlightEvent& a, const FlightEvent& b) {
                return a.seq < b.seq;
              });
    out.insert(out.end(), std::make_move_iterator(thread_events.begin()),
               std::make_move_iterator(thread_events.end()));
  }
  return out;
}

std::string flight_dump_json() {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const FlightEvent& event : flight_events()) {
    if (!first) os << ',';
    first = false;
    // Chrome trace timestamps are microseconds; keep sub-us precision as a
    // fraction so adjacent events stay ordered.
    char ts[48];
    std::snprintf(ts, sizeof(ts), "%lld.%03lld",
                  static_cast<long long>(event.t_ns / 1000),
                  static_cast<long long>(event.t_ns % 1000));
    os << "\n{\"name\":\"" << json_escape(event.name)
       << "\",\"cat\":\"flight\",\"pid\":1,\"tid\":" << event.thread_id
       << ",\"ts\":" << ts;
    switch (event.kind) {
      case FlightKind::kSpanBegin:
        os << ",\"ph\":\"B\"";
        break;
      case FlightKind::kSpanEnd:
        os << ",\"ph\":\"E\"";
        break;
      case FlightKind::kCounter:
        os << ",\"ph\":\"C\",\"args\":{\"delta\":" << event.value << '}';
        break;
      case FlightKind::kNote:
        os << ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"value\":" << event.value
           << '}';
        break;
    }
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool flight_dump_to_file(const std::string& path) noexcept {
  try {
    std::ofstream out(path);
    if (!out.good()) return false;
    out << flight_dump_json();
    out.flush();
    return out.good();
  } catch (...) {
    return false;
  }
}

std::string flight_dump_path() {
  return FlightState::instance().dump_path();
}

void set_flight_dump_path(std::string path) {
  FlightState::instance().set_dump_path(std::move(path));
}

void install_flight_crash_handler() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  for (const int signum :
       {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    std::signal(signum, flight_signal_handler);
  }
  g_previous_terminate = std::set_terminate(flight_terminate_handler);
}

void flight_clear() {
  g_generation.fetch_add(1, std::memory_order_relaxed);
  FlightState::instance().clear();
}

}  // namespace mempart::obs
