// Fixed-layout log-bucketed latency histograms with lock-free recording.
//
// The fixed-bucket obs::Histogram takes a mutex per observation and needs
// caller-chosen bounds; neither works for the latency numbers the serving
// roadmap wants (p50/p99 attached to throughput claims). LatencyHistogram
// uses an HDR-style bucket layout fixed at compile time — values below
// kSubBucketCount land in exact unit buckets, larger values in log2 octaves
// split into kSubBucketCount/2 sub-buckets each, bounding the relative
// quantization error at 2/kSubBucketCount (~3.1%) — so every histogram in
// the process shares one layout and recording is a handful of relaxed
// atomic increments: no locks, no allocation, safe from any thread.
//
// Queries come from an immutable LatencySnapshot: nearest-rank percentiles
// (p50/p90/p99/p999 or any quantile), count, sum, and *exact* min/max
// (tracked separately via CAS, not reconstructed from buckets). A snapshot
// taken while other threads record sees each counter atomically; the test
// suite races recorders against snapshots under TSan to pin this.
//
// LatencyTimer is the RAII instrumentation helper: construction resolves
// the named histogram from the Registry if metrics are enabled (one mutex'd
// map lookup), destruction records the elapsed steady-clock nanoseconds.
// Disabled-metrics cost is a thread-local read and a branch, matching the
// Span discipline in obs/trace.h.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace mempart::obs {

/// Immutable view of a LatencyHistogram, safe to query repeatedly.
struct LatencySnapshot {
  std::vector<std::uint64_t> buckets;  ///< dense, index = bucket index
  std::int64_t count = 0;
  std::int64_t sum = 0;   ///< sum of recorded values (ns for timers)
  std::int64_t min = 0;   ///< exact smallest recorded value; 0 when empty
  std::int64_t max = 0;   ///< exact largest recorded value; 0 when empty

  /// Nearest-rank quantile, q in [0, 1]. Returns the upper bound of the
  /// bucket holding the rank-ceil(q*count) value, clamped to [min, max] —
  /// exact for values < kSubBucketCount, within ~3.1% above. 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  [[nodiscard]] std::int64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::int64_t p90() const { return quantile(0.90); }
  [[nodiscard]] std::int64_t p99() const { return quantile(0.99); }
  [[nodiscard]] std::int64_t p999() const { return quantile(0.999); }

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lock-free log-bucketed histogram of non-negative int64 values
/// (negative inputs clamp to 0). All methods are safe from any thread.
class LatencyHistogram {
 public:
  /// Exact unit buckets cover [0, kSubBucketCount); each octave above is
  /// split into kSubBucketCount/2 sub-buckets.
  static constexpr int kSubBucketBits = 6;
  static constexpr std::int64_t kSubBucketCount = std::int64_t{1}
                                                  << kSubBucketBits;
  /// Octave groups needed to reach INT64_MAX (bit widths 7..63).
  static constexpr int kOctaves = 63 - kSubBucketBits;
  static constexpr int kNumBuckets =
      static_cast<int>(kSubBucketCount) +
      kOctaves * static_cast<int>(kSubBucketCount / 2);

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value: relaxed atomic increments only.
  void record(std::int64_t value) noexcept;

  [[nodiscard]] LatencySnapshot snapshot() const;

  [[nodiscard]] std::int64_t count() const noexcept {
    return static_cast<std::int64_t>(count_.load(std::memory_order_relaxed));
  }

  /// Resets every counter. Not atomic with respect to concurrent record()
  /// calls; callers quiesce recorders first (tests, registry clear()).
  void reset() noexcept;

  /// Bucket index of `value` (clamped to >= 0). Exposed for tests.
  [[nodiscard]] static int bucket_index(std::int64_t value) noexcept;

  /// Largest value mapping to bucket `index` — the value quantile() reports
  /// for ranks landing there. Exposed for tests.
  [[nodiscard]] static std::int64_t bucket_upper_bound(int index) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{-1};
};

/// RAII timer recording elapsed steady-clock nanoseconds into a named
/// LatencyHistogram from the process Registry. Inert when metrics are
/// disabled at construction. The resolved histogram reference follows the
/// Registry::histogram() lifetime rule: valid until Registry::clear().
class LatencyTimer {
 public:
  explicit LatencyTimer(std::string_view name);
  ~LatencyTimer() { stop(); }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  /// Records now instead of at scope exit. Idempotent.
  void stop() noexcept;

  /// True when this timer will record (metrics were on at construction).
  [[nodiscard]] bool active() const noexcept { return hist_ != nullptr; }

 private:
  LatencyHistogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Records `ns` into the named histogram (no-op with metrics disabled).
void record_latency(std::string_view name, std::int64_t ns);

}  // namespace mempart::obs
