// Always-on crash flight recorder: the last N trace events per thread.
//
// Traces and metrics answer "what happened" only when someone asked up
// front; a crashed fuzz run or batch job answers with nothing. The flight
// recorder closes that gap: every thread owns a fixed-capacity ring of
// recent events (span begin/end, counter deltas, user notes) that is
// recorded into unconditionally — no env var, no flag — and dumped as
// Chrome-trace-compatible JSON from the crash/terminate handlers and the
// differential-fuzz failure path, so a post-mortem always ships with its
// last moments of context.
//
// Cost discipline. Event names are interned once into small integer ids
// (global table, thread-local cache), so recording is: one relaxed load of
// the capacity, a thread-local ring lookup, a steady-clock read, and five
// relaxed/release atomic stores into a preallocated slot. A disabled
// recorder (capacity 0) costs one relaxed atomic load and a branch.
//
// Concurrency. Only the owning thread writes its ring; dumpers read every
// ring through a per-slot sequence stamp (write: seq=0, fields, seq=n
// release; read: seq acquire, fields, seq re-check) so a torn slot is
// detected and skipped instead of mis-read. Everything is atomics — the
// record/dump race is TSan-clean and exercised by tests/obs.
//
// Knobs: MEMPART_FLIGHT_CAPACITY (events per thread, default 2048, 0
// disables), MEMPART_FLIGHT_DIR (crash-dump directory, default cwd). See
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace mempart::obs {

/// Per-thread ring capacity when MEMPART_FLIGHT_CAPACITY is unset.
inline constexpr Count kDefaultFlightCapacity = 2048;

enum class FlightKind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kCounter = 2,
  kNote = 3,
};

/// One decoded ring entry, as returned by flight_events().
struct FlightEvent {
  FlightKind kind = FlightKind::kNote;
  std::string name;
  std::int64_t value = 0;  ///< counter delta / note value; 0 for spans
  std::int64_t t_ns = 0;   ///< steady-clock ns since the recorder epoch
  std::uint64_t seq = 0;   ///< per-thread sequence number, 1-based
  int thread_id = 0;       ///< small sequential id per recorded thread
};

/// True when recording is on (capacity > 0). One relaxed atomic load.
[[nodiscard]] bool flight_enabled() noexcept;

/// Events retained per thread. Seeded from MEMPART_FLIGHT_CAPACITY.
[[nodiscard]] Count flight_capacity() noexcept;

/// Overrides the capacity. Applies to rings created afterwards (each
/// thread's ring is sized at its first record); 0 disables recording
/// everywhere immediately.
void set_flight_capacity(Count events_per_thread) noexcept;

/// Interns `name`, returning its stable id (> 0). Cached thread-locally,
/// so repeat calls with the same name skip the global table.
[[nodiscard]] std::uint32_t flight_intern(std::string_view name);

/// Records one event into the calling thread's ring. No-op when disabled
/// or when name_id is 0.
void flight_record(FlightKind kind, std::uint32_t name_id,
                   std::int64_t value = 0) noexcept;

/// Convenience: intern + record a user note.
void flight_note(std::string_view name, std::int64_t value = 0);

/// True while a FlightQuietScope is alive on this thread. One thread-local
/// load — checked by the span/counter feeds before they intern anything.
[[nodiscard]] bool flight_quiet() noexcept;

/// Marks the rest of the enclosing scope as detail on this thread: spans,
/// counters, and notes inside it skip the flight ring (traces and metrics
/// are unaffected). Hot loops that process many items per narrative event
/// use this so the always-on recorder prices per-batch, not per-item —
/// declare it after recording the loop's own span, and the ring keeps the
/// coarse story. Nests; not copyable or movable.
class FlightQuietScope {
 public:
  FlightQuietScope() noexcept;
  ~FlightQuietScope();
  FlightQuietScope(const FlightQuietScope&) = delete;
  FlightQuietScope& operator=(const FlightQuietScope&) = delete;
};

/// Decodes every thread's ring, oldest first per thread. Slots being
/// overwritten mid-read are skipped.
[[nodiscard]] std::vector<FlightEvent> flight_events();

/// Renders flight_events() as Chrome trace-event JSON (ph B/E for spans,
/// C for counters, i for notes) loadable in chrome://tracing / Perfetto.
[[nodiscard]] std::string flight_dump_json();

/// Writes flight_dump_json() to `path` (best effort: returns false instead
/// of throwing, so the crash path never recurses into error handling).
bool flight_dump_to_file(const std::string& path) noexcept;

/// Where the crash handlers write their dump:
/// <MEMPART_FLIGHT_DIR or '.'>/mempart_flight_<pid>.json, unless
/// overridden by set_flight_dump_path().
[[nodiscard]] std::string flight_dump_path();
void set_flight_dump_path(std::string path);

/// Installs the SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT handlers and the
/// std::terminate hook: each dumps the flight recorder to
/// flight_dump_path(), then re-raises the default behaviour. Idempotent.
/// Best effort by design — the dump allocates, which is not strictly
/// async-signal-safe; acceptable for a post-mortem artifact of a process
/// that is dying anyway.
void install_flight_crash_handler();

/// Drops all rings and interned names (tests). Quiesce recording threads
/// first: their cached ring/name ids are invalidated.
void flight_clear();

}  // namespace mempart::obs
