#include "obs/sinks.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/errors.h"

namespace mempart::obs {
namespace {

std::string render_double(double value) {
  if (std::isinf(value)) return value > 0 ? "1e999" : "-1e999";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void append_args(std::ostringstream& os,
                 const std::vector<std::pair<std::string, std::string>>& args) {
  os << '{';
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << "\":" << value;
  }
  os << '}';
}

}  // namespace

std::string chrome_trace_json(const TraceLog& log) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : log.events()) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << json_escape(event.name)
       << "\",\"cat\":\"mempart\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << event.thread_id << ",\"ts\":" << event.start_us
       << ",\"dur\":" << event.duration_us;
    if (!event.args.empty()) {
      os << ",\"args\":";
      append_args(os, event.args);
    }
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

std::string trace_text_report(const TraceLog& log) {
  std::ostringstream os;
  int current_thread = -1;
  for (const TraceEvent& event : log.events()) {
    if (event.thread_id != current_thread) {
      current_thread = event.thread_id;
      os << "thread " << current_thread << '\n';
    }
    os << "  ";
    for (int i = 0; i < event.depth; ++i) os << "  ";
    os << event.name << "  " << event.duration_us << " us";
    if (!event.args.empty()) {
      os << "  [";
      bool first = true;
      for (const auto& [key, value] : event.args) {
        if (!first) os << ' ';
        first = false;
        os << key << '=' << value;
      }
      os << ']';
    }
    os << '\n';
  }
  return os.str();
}

std::string metrics_json(const Registry& registry) {
  std::ostringstream os;
  os << "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    if (!first) os << ',';
    first = false;
    os << "\n  \"" << json_escape(name) << "\":" << value;
  }
  os << "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    if (!first) os << ',';
    first = false;
    os << "\n  \"" << json_escape(name) << "\":" << render_double(value);
  }
  os << "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.histograms()) {
    if (!first) os << ',';
    first = false;
    os << "\n  \"" << json_escape(name) << "\":{\"upper_bounds\":[";
    for (size_t i = 0; i < snap.upper_bounds.size(); ++i) {
      if (i > 0) os << ',';
      os << render_double(snap.upper_bounds[i]);
    }
    os << "],\"buckets\":[";
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (i > 0) os << ',';
      os << snap.buckets[i];
    }
    os << "],\"count\":" << snap.count << ",\"sum\":" << render_double(snap.sum);
    if (snap.count > 0) {
      os << ",\"min\":" << render_double(snap.min)
         << ",\"max\":" << render_double(snap.max);
    }
    os << '}';
  }
  os << "\n}\n}\n";
  return os.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  MEMPART_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  MEMPART_REQUIRE(out.good(), "failed writing '" + path + "'");
}

}  // namespace mempart::obs
