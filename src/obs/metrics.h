// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms.
//
// Everything the paper reports is a number — solver op counts (Table 1),
// bank-load balance, conflict cycles, delta_P per candidate N — so the
// registry gives each of those a stable name and a machine-readable export
// (obs/sinks.h renders the whole registry as JSON). Counters accumulate
// int64 deltas, gauges hold the last written double, and histograms count
// observations into caller-fixed buckets plus an overflow bucket, tracking
// count/sum/min/max alongside.
//
// All mutation goes through the registry mutex (histograms carry their
// own), so concurrent instrumented code merges correctly. The free helpers
// (count/gauge/observe) first check obs::metrics_enabled() — a thread-local
// read — so disabled instrumentation stays out of the hot-path profile.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/op_counter.h"
#include "common/types.h"
#include "obs/histogram.h"
#include "obs/trace.h"  // for the metrics_enabled() hot-path guard

namespace mempart::obs {

/// Fixed-bucket histogram. Buckets are "value <= bound" with an implicit
/// final +inf bucket; bounds must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);

  /// Immutable snapshot of the histogram state.
  struct Snapshot {
    std::vector<double> upper_bounds;   ///< finite bounds, ascending
    std::vector<std::int64_t> buckets;  ///< size() == upper_bounds.size() + 1
    std::int64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable Mutex mutex_;
  /// Bucket bounds are fixed at construction and never mutated, so they are
  /// readable without the mutex; everything observed is guarded.
  std::vector<double> bounds_;
  /// bounds_.size() + 1 (overflow last)
  std::vector<std::int64_t> buckets_ MEMPART_GUARDED_BY(mutex_);
  std::int64_t count_ MEMPART_GUARDED_BY(mutex_) = 0;
  double sum_ MEMPART_GUARDED_BY(mutex_) = 0.0;
  double min_ MEMPART_GUARDED_BY(mutex_) =
      std::numeric_limits<double>::infinity();
  double max_ MEMPART_GUARDED_BY(mutex_) =
      -std::numeric_limits<double>::infinity();
};

/// Process-wide name -> metric store.
class Registry {
 public:
  static Registry& instance();

  void counter_add(std::string_view name, std::int64_t delta = 1);
  [[nodiscard]] std::int64_t counter(std::string_view name) const;

  void gauge_set(std::string_view name, double value);
  [[nodiscard]] double gauge(std::string_view name) const;

  /// Gets or creates the named histogram. `upper_bounds` is consulted only
  /// on creation; later callers receive the existing instance regardless.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& upper_bounds);

  /// Nullptr when the histogram does not exist.
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Gets or creates the named latency histogram (obs/histogram.h). All
  /// latency histograms share one fixed bucket layout, so there are no
  /// creation parameters; the returned reference stays valid until clear().
  LatencyHistogram& latency(std::string_view name);

  /// Nullptr when the latency histogram does not exist.
  [[nodiscard]] const LatencyHistogram* find_latency(
      std::string_view name) const;

  [[nodiscard]] std::map<std::string, std::int64_t> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  [[nodiscard]] std::map<std::string, Histogram::Snapshot> histograms() const;
  [[nodiscard]] std::map<std::string, LatencySnapshot> latencies() const;

  /// Drops every metric.
  void clear();

 private:
  Registry() = default;
  mutable Mutex mutex_;
  std::map<std::string, std::int64_t, std::less<>> counters_
      MEMPART_GUARDED_BY(mutex_);
  std::map<std::string, double, std::less<>> gauges_
      MEMPART_GUARDED_BY(mutex_);
  /// The map is guarded; the Histogram objects pointed to are internally
  /// synchronized (each carries its own mutex), so references handed out by
  /// histogram() stay usable without the registry lock.
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      MEMPART_GUARDED_BY(mutex_);
  /// Same discipline as histograms_: the map is guarded, the
  /// LatencyHistogram objects are internally lock-free.
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      latencies_ MEMPART_GUARDED_BY(mutex_);
};

/// The helpers below are the instrumentation entry points: they no-op
/// unless obs::metrics_enabled() is true on the calling thread.

/// Adds `delta` to the named counter.
void count(std::string_view name, std::int64_t delta = 1);

/// Sets the named gauge.
void gauge(std::string_view name, double value);

/// Records one observation into the named histogram (created with
/// `upper_bounds` on first use). Hot paths should pass a bounds vector
/// that outlives the call (e.g. a function-local `static`) so nothing is
/// constructed when metrics are disabled.
void observe(std::string_view name, double value,
             const std::vector<double>& upper_bounds);

/// Bridges an OpScope tally into counters `<prefix>.{add,mul,div,compare}`.
/// This is how Table 1's solver arithmetic reaches the metrics export.
void record_op_tally(const OpTally& tally,
                     std::string_view prefix = "solver.ops");

/// Power-of-two bounds {1, 2, 4, ..., 2^(n-1)} — the default shape for
/// open-ended count distributions (bank loads, probe counts).
[[nodiscard]] std::vector<double> pow2_bounds(int n);

}  // namespace mempart::obs
