#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/flight_recorder.h"

namespace mempart::obs {
namespace {

/// -1 = defer to the environment variable; 0/1 = programmatic override.
std::atomic<int> g_trace_default{-1};
std::atomic<int> g_metrics_default{-1};

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         std::string_view(value) != "0";
}

/// Thread-local cached flag: -1 until first query on this thread.
thread_local int t_trace = -1;
thread_local int t_metrics = -1;

bool resolve(int& cached, const std::atomic<int>& fallback,
             const char* env_name) {
  if (cached < 0) {
    const int def = fallback.load(std::memory_order_relaxed);
    cached = def >= 0 ? def : (env_truthy(env_name) ? 1 : 0);
  }
  return cached != 0;
}

std::atomic<int> g_next_thread_id{1};

int this_thread_id() {
  thread_local int id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local int t_depth = 0;

std::string render_number(std::int64_t value) { return std::to_string(value); }

std::string render_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

bool tracing_enabled() noexcept {
  return resolve(t_trace, g_trace_default, "MEMPART_TRACE");
}

bool metrics_enabled() noexcept {
  return resolve(t_metrics, g_metrics_default, "MEMPART_METRICS");
}

void set_tracing_enabled(bool on) noexcept {
  t_trace = on ? 1 : 0;
  g_trace_default.store(t_trace, std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  t_metrics = on ? 1 : 0;
  g_metrics_default.store(t_metrics, std::memory_order_relaxed);
}

void enable(bool on) noexcept {
  set_tracing_enabled(on);
  set_metrics_enabled(on);
}

TraceLog& TraceLog::instance() {
  static TraceLog log;
  return log;
}

TraceLog::TraceLog() : epoch_(std::chrono::steady_clock::now()) {}

void TraceLog::append(TraceEvent event) {
  const MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> snapshot;
  {
    const MutexLock lock(mutex_);
    snapshot = events_;
  }
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.thread_id != b.thread_id) {
                       return a.thread_id < b.thread_id;
                     }
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     return a.depth < b.depth;
                   });
  return snapshot;
}

Count TraceLog::size() const {
  const MutexLock lock(mutex_);
  return static_cast<Count>(events_.size());
}

void TraceLog::clear() {
  const MutexLock lock(mutex_);
  events_.clear();
}

Span::Span(std::string_view name) : active_(tracing_enabled()) {
  if (flight_enabled() && !flight_quiet()) {
    flight_id_ = flight_intern(name);
    flight_record(FlightKind::kSpanBegin, flight_id_);
  }
  if (!active_) return;
  name_.assign(name);
  depth_ = t_depth++;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (flight_id_ != 0) flight_record(FlightKind::kSpanEnd, flight_id_);
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  --t_depth;
  TraceLog& log = TraceLog::instance();
  TraceEvent event;
  event.name = std::move(name_);
  event.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       start_ - log.epoch_)
                       .count();
  event.duration_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count();
  event.thread_id = this_thread_id();
  event.depth = depth_;
  event.args = std::move(args_);
  log.append(std::move(event));
}

Span& Span::arg(std::string_view key, std::int64_t value) {
  if (active_) args_.emplace_back(std::string(key), render_number(value));
  return *this;
}

Span& Span::arg(std::string_view key, double value) {
  if (active_) args_.emplace_back(std::string(key), render_number(value));
  return *this;
}

Span& Span::arg(std::string_view key, std::string_view value) {
  if (active_) {
    args_.emplace_back(std::string(key), '"' + json_escape(value) + '"');
  }
  return *this;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mempart::obs
