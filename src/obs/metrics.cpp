#include "obs/metrics.h"

#include <algorithm>

#include "common/errors.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace mempart::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1, 0) {
  MEMPART_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "Histogram: upper bounds must be strictly increasing");
}

void Histogram::observe(double value) {
  const MutexLock lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  const MutexLock lock(mutex_);
  Snapshot snap;
  snap.upper_bounds = bounds_;
  snap.buckets = buckets_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::counter_add(std::string_view name, std::int64_t delta) {
  const MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::int64_t Registry::counter(std::string_view name) const {
  const MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::gauge_set(std::string_view name, double value) {
  const MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double Registry::gauge(std::string_view name) const {
  const MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const std::vector<double>& upper_bounds) {
  const MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  const MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

LatencyHistogram& Registry::latency(std::string_view name) {
  const MutexLock lock(mutex_);
  auto it = latencies_.find(name);
  if (it == latencies_.end()) {
    it = latencies_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

const LatencyHistogram* Registry::find_latency(std::string_view name) const {
  const MutexLock lock(mutex_);
  const auto it = latencies_.find(name);
  return it == latencies_.end() ? nullptr : it->second.get();
}

std::map<std::string, std::int64_t> Registry::counters() const {
  const MutexLock lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> Registry::gauges() const {
  const MutexLock lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, Histogram::Snapshot> Registry::histograms() const {
  std::vector<std::pair<std::string, const Histogram*>> refs;
  {
    const MutexLock lock(mutex_);
    refs.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      refs.emplace_back(name, hist.get());
    }
  }
  // Snapshots are taken outside the registry lock (Histogram has its own)
  // so concurrent observe() calls are never blocked on an export.
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, hist] : refs) out.emplace(name, hist->snapshot());
  return out;
}

std::map<std::string, LatencySnapshot> Registry::latencies() const {
  std::vector<std::pair<std::string, const LatencyHistogram*>> refs;
  {
    const MutexLock lock(mutex_);
    refs.reserve(latencies_.size());
    for (const auto& [name, hist] : latencies_) {
      refs.emplace_back(name, hist.get());
    }
  }
  // Snapshots are lock-free reads, taken outside the registry lock so
  // concurrent record() calls are never blocked on an export.
  std::map<std::string, LatencySnapshot> out;
  for (const auto& [name, hist] : refs) out.emplace(name, hist->snapshot());
  return out;
}

void Registry::clear() {
  const MutexLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  latencies_.clear();
}

void count(std::string_view name, std::int64_t delta) {
  // Counter deltas also feed the always-on flight recorder, so a crash dump
  // shows what was being counted even when metrics were never enabled.
  if (flight_enabled() && !flight_quiet()) {
    flight_record(FlightKind::kCounter, flight_intern(name), delta);
  }
  if (!metrics_enabled()) return;
  Registry::instance().counter_add(name, delta);
}

void gauge(std::string_view name, double value) {
  if (!metrics_enabled()) return;
  Registry::instance().gauge_set(name, value);
}

void observe(std::string_view name, double value,
             const std::vector<double>& upper_bounds) {
  if (!metrics_enabled()) return;
  Registry::instance().histogram(name, upper_bounds).observe(value);
}

void record_op_tally(const OpTally& tally, std::string_view prefix) {
  if (!metrics_enabled()) return;
  Registry& registry = Registry::instance();
  const std::string base(prefix);
  registry.counter_add(base + ".add", tally.add);
  registry.counter_add(base + ".mul", tally.mul);
  registry.counter_add(base + ".div", tally.div);
  registry.counter_add(base + ".compare", tally.compare);
}

std::vector<double> pow2_bounds(int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(n));
  double bound = 1.0;
  for (int i = 0; i < n; ++i, bound *= 2.0) bounds.push_back(bound);
  return bounds;
}

}  // namespace mempart::obs
