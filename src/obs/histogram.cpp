#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::obs {

int LatencyHistogram::bucket_index(std::int64_t value) noexcept {
  const std::uint64_t v =
      value <= 0 ? 0 : static_cast<std::uint64_t>(value);
  if (v < static_cast<std::uint64_t>(kSubBucketCount)) {
    return static_cast<int>(v);
  }
  // v in [2^k, 2^(k+1)) with k >= kSubBucketBits: drop the low bits until
  // kSubBucketBits significant bits remain; the result lies in
  // [kSubBucketCount/2, kSubBucketCount), giving kSubBucketCount/2
  // sub-buckets per octave and a relative error <= 2/kSubBucketCount.
  const int exp = std::bit_width(v) - kSubBucketBits;  // >= 1
  const auto sub = static_cast<std::int64_t>(v >> exp);
  return static_cast<int>(kSubBucketCount +
                          (exp - 1) * (kSubBucketCount / 2) +
                          (sub - kSubBucketCount / 2));
}

std::int64_t LatencyHistogram::bucket_upper_bound(int index) noexcept {
  if (index < kSubBucketCount) return index;
  const int off = index - static_cast<int>(kSubBucketCount);
  const int exp = off / static_cast<int>(kSubBucketCount / 2) + 1;
  const std::int64_t sub =
      kSubBucketCount / 2 + off % static_cast<int>(kSubBucketCount / 2);
  // Largest v with (v >> exp) == sub; computed unsigned because the top
  // bucket's bound is exactly INT64_MAX and (sub + 1) << exp touches 2^63.
  return static_cast<std::int64_t>(
      ((static_cast<std::uint64_t>(sub) + 1) << exp) - 1);
}

void LatencyHistogram::record(std::int64_t value) noexcept {
  const std::int64_t v = value < 0 ? 0 : value;
  buckets_[static_cast<size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::snapshot() const {
  LatencySnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  snap.count =
      static_cast<std::int64_t>(count_.load(std::memory_order_relaxed));
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::int64_t min = min_.load(std::memory_order_relaxed);
  const std::int64_t max = max_.load(std::memory_order_relaxed);
  snap.min = min == std::numeric_limits<std::int64_t>::max() ? 0 : min;
  snap.max = max < 0 ? 0 : max;
  return snap;
}

void LatencyHistogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(-1, std::memory_order_relaxed);
}

std::int64_t LatencySnapshot::quantile(double q) const {
  if (count <= 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest value with at least ceil(q * count)
  // observations at or below it (rank 1 for q = 0).
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(clamped * static_cast<double>(count))));
  // The rank-1 and rank-count values are the tracked exact extremes; report
  // them directly instead of a bucket bound.
  if (rank <= 1) return min;
  if (rank >= count) return max;
  std::int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += static_cast<std::int64_t>(buckets[i]);
    if (cumulative >= rank) {
      const std::int64_t bound =
          LatencyHistogram::bucket_upper_bound(static_cast<int>(i));
      return std::clamp(bound, min, max);
    }
  }
  return max;
}

LatencyTimer::LatencyTimer(std::string_view name) {
  if (!metrics_enabled()) return;
  hist_ = &Registry::instance().latency(name);
  start_ = std::chrono::steady_clock::now();
}

void LatencyTimer::stop() noexcept {
  if (hist_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  hist_->record(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  hist_ = nullptr;
}

void record_latency(std::string_view name, std::int64_t ns) {
  if (!metrics_enabled()) return;
  Registry::instance().latency(name).record(ns);
}

}  // namespace mempart::obs
