// Scoped-span tracing: who ran, when, for how long, nested how.
//
// The paper's evaluation is all measurements (Table 1 op counts, §5 storage
// overhead and conflict-free access); this layer makes the repo's own
// runtime behaviour measurable the same way. A Span is an RAII scope that
// records a named, steady-clock-timed interval into the process-wide
// TraceLog; spans nest naturally with C++ scopes and the log can be
// exported as Chrome trace-event JSON (chrome://tracing / Perfetto) or as
// an indented text report (see obs/sinks.h).
//
// Overhead discipline: tracing and metrics are off by default. Each is
// controlled by a thread-local flag seeded from the MEMPART_TRACE /
// MEMPART_METRICS environment variables (any value other than empty or
// "0" enables) or set programmatically via obs::enable() — programmatic
// changes also become the default inherited by threads started later.
// A disabled Span costs one thread-local read and no clock access, so
// instrumentation can stay in hot paths permanently.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"

namespace mempart::obs {

/// True when the calling thread records spans. Seeded from MEMPART_TRACE.
[[nodiscard]] bool tracing_enabled() noexcept;

/// True when the calling thread records metrics. Seeded from MEMPART_METRICS.
[[nodiscard]] bool metrics_enabled() noexcept;

/// Sets the calling thread's tracing flag and the default for new threads.
void set_tracing_enabled(bool on) noexcept;

/// Sets the calling thread's metrics flag and the default for new threads.
void set_metrics_enabled(bool on) noexcept;

/// Convenience: flips tracing and metrics together.
void enable(bool on = true) noexcept;

/// One completed span. Times are microseconds since the TraceLog epoch
/// (the first use of the log in the process), from std::chrono::steady_clock.
struct TraceEvent {
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  int thread_id = 0;  ///< small sequential id, 1-based per observed thread
  int depth = 0;      ///< nesting depth at open, 0 = top level
  /// Span arguments; values are pre-rendered JSON (numbers unquoted,
  /// strings quoted and escaped) so sinks can splice them verbatim.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide, mutex-protected store of completed spans.
class TraceLog {
 public:
  static TraceLog& instance();

  /// Snapshot of all completed events, ordered by (thread_id, start_us).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] Count size() const;

  /// Drops all recorded events (the epoch is kept).
  void clear();

 private:
  friend class Span;
  TraceLog();
  void append(TraceEvent event);

  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ MEMPART_GUARDED_BY(mutex_);
  /// Set once at construction, read without the mutex by ~Span.
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII tracing scope. When tracing is disabled at construction the span is
/// inert: no clock read, no allocation, and arg() is a no-op — except the
/// always-on flight recorder (obs/flight_recorder.h), which records a
/// begin/end pair whenever it is enabled, independent of the tracing flag.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span will be recorded (tracing was on at construction).
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Attaches a named argument shown in the exported trace. Chainable.
  Span& arg(std::string_view key, std::int64_t value);
  Span& arg(std::string_view key, int value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  Span& arg(std::string_view key, double value);
  Span& arg(std::string_view key, std::string_view value);

 private:
  bool active_;
  int depth_ = 0;
  /// Interned flight-recorder name; 0 when the recorder was disabled at
  /// construction (the destructor then records nothing).
  std::uint32_t flight_id_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Escapes a string for embedding inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace mempart::obs
