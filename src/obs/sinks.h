// Export sinks for the observability layer.
//
// Two artifact formats, both plain strings so callers decide where they go:
//   - chrome_trace_json(): the Chrome trace-event format ("traceEvents"
//     array of ph:"X" complete events, timestamps in microseconds). Load
//     the file in chrome://tracing or https://ui.perfetto.dev to see the
//     solver/simulator span hierarchy on a timeline.
//   - metrics_json(): the whole registry as one JSON object with
//     "counters", "gauges" and "histograms" sections; histograms carry
//     bucket upper bounds, per-bucket counts (overflow last), and
//     count/sum/min/max.
// trace_text_report() renders the same spans as an indented plain-text
// tree for terminal use.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::obs {

/// Renders the trace log in Chrome trace-event JSON.
[[nodiscard]] std::string chrome_trace_json(
    const TraceLog& log = TraceLog::instance());

/// Renders the trace log as an indented per-thread text tree.
[[nodiscard]] std::string trace_text_report(
    const TraceLog& log = TraceLog::instance());

/// Renders the metrics registry as a JSON object.
[[nodiscard]] std::string metrics_json(
    const Registry& registry = Registry::instance());

/// Writes `content` to `path`, throwing InvalidArgument on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace mempart::obs
