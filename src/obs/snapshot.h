// Live metric snapshots: OpenMetrics + NDJSON export, and the periodic
// snapshotter thread behind `mempart --openmetrics/--ndjson`.
//
// PR 1's obs export was one-shot JSON written at process exit — useless
// for a long batch job, a fuzz soak, or the roadmap's `mempart serve`.
// This module serialises the full metrics registry (counters, gauges,
// fixed-bucket histograms, latency histograms with percentiles) in two
// live-consumable formats:
//
//   - openmetrics_text(): the OpenMetrics / Prometheus text exposition
//     format. Counters become `<name>_total`, gauges `gauge`, fixed-bucket
//     histograms `histogram` (cumulative `_bucket{le=...}` + _sum/_count),
//     latency histograms `summary` (quantile series + _sum/_count). Metric
//     names are prefixed `mempart_` and '.' maps to '_'. Ends with `# EOF`.
//   - ndjson_sample(): one self-contained JSON object per call — wall-clock
//     timestamp, every counter/gauge, and per-latency-histogram
//     count/sum/min/max/p50/p90/p99/p999 — designed to be appended to an
//     NDJSON file as an immediately greppable time series.
//
// parse_openmetrics() / last_ndjson_sample() read both formats back
// (strictly: a malformed line throws InvalidArgument), powering the
// `mempart stats` table renderer and the format tests.
//
// Snapshotter owns the periodic thread: every interval it runs an optional
// callback (the CLI publishes solve-cache gauges there), rewrites the
// OpenMetrics file, and appends one NDJSON sample; stop() (or destruction)
// takes a final snapshot and joins. State is MEMPART_GUARDED_BY-annotated
// and the start/stop/tick discipline is TSan-tested.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/annotations.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace mempart::obs {

/// Renders the registry in OpenMetrics text exposition format.
[[nodiscard]] std::string openmetrics_text(
    const Registry& registry = Registry::instance());

/// Renders one NDJSON time-series sample (single line, '\n'-terminated).
[[nodiscard]] std::string ndjson_sample(
    const Registry& registry = Registry::instance());

/// Flat name -> value view of a parsed exposition. Histogram series keep
/// their label set in the key, e.g. `mempart_solve_ns{quantile="0.99"}`.
using MetricSample = std::map<std::string, double>;

/// Parses OpenMetrics text, validating the line grammar (# TYPE/# HELP/
/// # UNIT/# EOF comments, `name[{labels}] value [timestamp]` samples,
/// metric-name charset). Throws InvalidArgument on any malformed line.
[[nodiscard]] MetricSample parse_openmetrics(const std::string& text);

/// Parses the LAST sample line of an NDJSON series into the same flat view
/// (counters/gauges keep their dotted names; latency histograms expand to
/// `<name>.p50` etc). Throws InvalidArgument on malformed JSON or an empty
/// series.
[[nodiscard]] MetricSample last_ndjson_sample(const std::string& text);

/// What the snapshotter writes and how often.
struct SnapshotOptions {
  std::string openmetrics_path;  ///< rewritten every tick; empty = skip
  std::string ndjson_path;       ///< appended every tick; empty = skip
  std::chrono::milliseconds interval{1000};
  /// Runs before every tick (and the final stop() snapshot) on the
  /// snapshotter thread — e.g. SolveCache::publish_stats.
  std::function<void()> before_snapshot;
};

/// Periodic exporter thread with clean shutdown.
class Snapshotter {
 public:
  explicit Snapshotter(SnapshotOptions options);
  ~Snapshotter();
  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Starts the thread. No-op when already running or when neither output
  /// path is set.
  void start();

  /// Takes one final snapshot, then stops and joins the thread. Safe to
  /// call repeatedly AND concurrently (also runs from the destructor):
  /// whichever caller claims the running state writes the guaranteed final
  /// tick exactly once, and the thread join is serialized — previously two
  /// racing stop() calls could both join thread_ (UB) and double the final
  /// snapshot, which `mempart serve` would hit whenever a signal-triggered
  /// drain raced the session teardown.
  void stop();

  /// Runs one snapshot synchronously on the calling thread (used by stop()
  /// and for interval-less one-shot exports).
  void write_once();

  /// Ticks taken so far (periodic + final).
  [[nodiscard]] Count ticks() const;

 private:
  void run();

  const SnapshotOptions options_;
  mutable Mutex mutex_;
  std::condition_variable_any cv_;
  bool stop_requested_ MEMPART_GUARDED_BY(mutex_) = false;
  bool running_ MEMPART_GUARDED_BY(mutex_) = false;
  Count ticks_ MEMPART_GUARDED_BY(mutex_) = 0;
  /// Separate from mutex_ so a stop() holding it across join() cannot
  /// deadlock with the snapshot thread taking mutex_ on its way out.
  Mutex join_mutex_;
  std::thread thread_ MEMPART_GUARDED_BY(join_mutex_);
};

}  // namespace mempart::obs
