#include "obs/snapshot.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "common/errors.h"
#include "obs/sinks.h"
#include "obs/trace.h"

namespace mempart::obs {
namespace {

// ---------------------------------------------------------------------------
// OpenMetrics rendering
// ---------------------------------------------------------------------------

/// Maps a dotted registry name onto the OpenMetrics charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*, prefixed to keep the namespace unambiguous.
std::string sanitize_name(std::string_view name) {
  std::string out = "mempart_";
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_value(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.99", "0.999"};

std::int64_t wall_clock_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Minimal JSON value parser (objects / numbers / strings / literals), just
// enough to read back our own NDJSON samples strictly.
// ---------------------------------------------------------------------------

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  /// Parses one complete JSON object, flattening nested objects with
  /// dotted keys ("counters" -> "counters.<name>"). Non-numeric leaves are
  /// ignored. Throws InvalidArgument on malformed input.
  std::map<std::string, double> parse_flat() {
    std::map<std::string, double> out;
    skip_ws();
    parse_object("", out);
    skip_ws();
    MEMPART_REQUIRE(pos_ == text_.size(),
                    "ndjson sample: trailing characters after object");
    return out;
  }

 private:
  void parse_object(const std::string& prefix,
                    std::map<std::string, double>& out) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const std::string path = prefix.empty() ? key : prefix + '.' + key;
      parse_value(path, out);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_value(const std::string& path,
                   std::map<std::string, double>& out) {
    const char c = peek();
    if (c == '{') {
      parse_object(path, out);
    } else if (c == '"') {
      (void)parse_string();
    } else if (c == 't' || c == 'f' || c == 'n') {
      for (const std::string_view lit : {"true", "false", "null"}) {
        if (text_.compare(pos_, lit.size(), lit) == 0) {
          pos_ += lit.size();
          return;
        }
      }
      throw InvalidArgument("ndjson sample: bad literal");
    } else {
      out[path] = parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        MEMPART_REQUIRE(pos_ < text_.size(),
                        "ndjson sample: truncated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default:
            throw InvalidArgument("ndjson sample: unsupported escape");
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double parse_number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    MEMPART_REQUIRE(pos_ > start, "ndjson sample: expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    MEMPART_REQUIRE(end != nullptr && *end == '\0',
                    "ndjson sample: malformed number '" + token + "'");
    return value;
  }

  char peek() const {
    MEMPART_REQUIRE(pos_ < text_.size(), "ndjson sample: truncated input");
    return text_[pos_];
  }

  void expect(char c) {
    MEMPART_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                    std::string("ndjson sample: expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// OpenMetrics parsing
// ---------------------------------------------------------------------------

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name.front())) != 0) {
    return false;
  }
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != ':') {
      return false;
    }
  }
  return true;
}

void check_comment_line(std::string_view line, int line_number) {
  // "# TYPE <name> <type>" / "# HELP <name> <text>" / "# UNIT <name> <u>".
  std::istringstream in{std::string(line)};
  std::string hash;
  std::string keyword;
  std::string name;
  in >> hash >> keyword >> name;
  MEMPART_REQUIRE(
      (keyword == "TYPE" || keyword == "HELP" || keyword == "UNIT") &&
          valid_metric_name(name),
      "openmetrics line " + std::to_string(line_number) +
          ": malformed comment '" + std::string(line) + "'");
  if (keyword == "TYPE") {
    std::string type;
    in >> type;
    MEMPART_REQUIRE(type == "counter" || type == "gauge" ||
                        type == "histogram" || type == "summary" ||
                        type == "unknown" || type == "info" ||
                        type == "stateset" || type == "gaugehistogram",
                    "openmetrics line " + std::to_string(line_number) +
                        ": unknown metric type '" + type + "'");
  }
}

/// Parses `name[{labels}] value [timestamp]`, returning (key, value).
std::pair<std::string, double> parse_sample_line(std::string_view line,
                                                 int line_number) {
  const std::string context =
      "openmetrics line " + std::to_string(line_number) + ": ";
  size_t pos = 0;
  while (pos < line.size() && line[pos] != ' ' && line[pos] != '{') ++pos;
  MEMPART_REQUIRE(valid_metric_name(line.substr(0, pos)),
                  context + "invalid metric name in '" + std::string(line) +
                      "'");
  std::string key(line.substr(0, pos));
  if (pos < line.size() && line[pos] == '{') {
    const size_t close = line.find('}', pos);
    MEMPART_REQUIRE(close != std::string_view::npos,
                    context + "unterminated label set");
    const std::string_view labels = line.substr(pos + 1, close - pos - 1);
    // Each label is name="value"; values may escape \" \\ \n.
    size_t lp = 0;
    while (lp < labels.size()) {
      size_t eq = labels.find('=', lp);
      MEMPART_REQUIRE(eq != std::string_view::npos &&
                          valid_metric_name(labels.substr(lp, eq - lp)),
                      context + "malformed label name");
      MEMPART_REQUIRE(eq + 1 < labels.size() && labels[eq + 1] == '"',
                      context + "label value must be quoted");
      size_t vp = eq + 2;
      while (vp < labels.size() && labels[vp] != '"') {
        vp += labels[vp] == '\\' ? 2 : 1;
      }
      MEMPART_REQUIRE(vp < labels.size(), context + "unterminated label value");
      lp = vp + 1;
      if (lp < labels.size()) {
        MEMPART_REQUIRE(labels[lp] == ',', context + "expected ',' in labels");
        ++lp;
      }
    }
    key.append(line.substr(pos, close - pos + 1));
    pos = close + 1;
  }
  MEMPART_REQUIRE(pos < line.size() && line[pos] == ' ',
                  context + "expected ' ' before value");
  ++pos;
  const size_t value_end = line.find(' ', pos);
  const std::string_view value_text =
      line.substr(pos, value_end == std::string_view::npos
                           ? std::string_view::npos
                           : value_end - pos);
  double value = 0.0;
  if (value_text == "+Inf") {
    value = std::numeric_limits<double>::infinity();
  } else if (value_text == "-Inf") {
    value = -std::numeric_limits<double>::infinity();
  } else if (value_text == "NaN") {
    value = std::numeric_limits<double>::quiet_NaN();
  } else {
    const std::string token(value_text);
    char* end = nullptr;
    value = std::strtod(token.c_str(), &end);
    MEMPART_REQUIRE(end != token.c_str() && *end == '\0',
                    context + "malformed value '" + token + "'");
  }
  // Anything after the value is an optional timestamp; validate charset.
  if (value_end != std::string_view::npos) {
    const std::string token(line.substr(value_end + 1));
    char* end = nullptr;
    (void)std::strtod(token.c_str(), &end);
    MEMPART_REQUIRE(end != token.c_str() && *end == '\0',
                    context + "malformed timestamp '" + token + "'");
  }
  return {std::move(key), value};
}

}  // namespace

std::string openmetrics_text(const Registry& registry) {
  std::ostringstream os;
  for (const auto& [name, value] : registry.counters()) {
    const std::string metric = sanitize_name(name);
    os << "# TYPE " << metric << " counter\n"
       << metric << "_total " << value << '\n';
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string metric = sanitize_name(name);
    os << "# TYPE " << metric << " gauge\n"
       << metric << ' ' << render_value(value) << '\n';
  }
  for (const auto& [name, snap] : registry.histograms()) {
    const std::string metric = sanitize_name(name);
    os << "# TYPE " << metric << " histogram\n";
    std::int64_t cumulative = 0;
    for (size_t i = 0; i < snap.upper_bounds.size(); ++i) {
      cumulative += snap.buckets[i];
      os << metric << "_bucket{le=\"" << render_value(snap.upper_bounds[i])
         << "\"} " << cumulative << '\n';
    }
    os << metric << "_bucket{le=\"+Inf\"} " << snap.count << '\n'
       << metric << "_sum " << render_value(snap.sum) << '\n'
       << metric << "_count " << snap.count << '\n';
  }
  for (const auto& [name, snap] : registry.latencies()) {
    const std::string metric = sanitize_name(name);
    os << "# TYPE " << metric << " summary\n";
    for (size_t q = 0; q < std::size(kQuantiles); ++q) {
      os << metric << "{quantile=\"" << kQuantileLabels[q] << "\"} "
         << snap.quantile(kQuantiles[q]) << '\n';
    }
    os << metric << "_sum " << snap.sum << '\n'
       << metric << "_count " << snap.count << '\n';
  }
  os << "# EOF\n";
  return os.str();
}

std::string ndjson_sample(const Registry& registry) {
  std::ostringstream os;
  os << "{\"ts_ms\":" << wall_clock_ms();
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":" << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":" << render_value(value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.histograms()) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":{\"count\":" << snap.count
       << ",\"sum\":" << render_value(snap.sum) << '}';
    first = false;
  }
  os << "},\"latency\":{";
  first = true;
  for (const auto& [name, snap] : registry.latencies()) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":{\"count\":" << snap.count << ",\"sum\":" << snap.sum
       << ",\"min\":" << snap.min << ",\"max\":" << snap.max
       << ",\"p50\":" << snap.p50() << ",\"p90\":" << snap.p90()
       << ",\"p99\":" << snap.p99() << ",\"p999\":" << snap.p999() << '}';
    first = false;
  }
  os << "}}\n";
  return os.str();
}

MetricSample parse_openmetrics(const std::string& text) {
  MetricSample out;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  bool saw_eof = false;
  while (std::getline(in, line)) {
    ++line_number;
    MEMPART_REQUIRE(!saw_eof, "openmetrics line " +
                                  std::to_string(line_number) +
                                  ": content after # EOF");
    MEMPART_REQUIRE(!line.empty(), "openmetrics line " +
                                       std::to_string(line_number) +
                                       ": empty line");
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.front() == '#') {
      check_comment_line(line, line_number);
      continue;
    }
    out.insert(parse_sample_line(line, line_number));
  }
  MEMPART_REQUIRE(saw_eof, "openmetrics: missing terminating # EOF");
  return out;
}

MetricSample last_ndjson_sample(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      last = line;
    }
  }
  MEMPART_REQUIRE(!last.empty(), "ndjson series: no sample lines");
  return JsonReader(last).parse_flat();
}

Snapshotter::Snapshotter(SnapshotOptions options)
    : options_(std::move(options)) {}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::start() {
  {
    const MutexLock lock(mutex_);
    if (running_) return;
    if (options_.openmetrics_path.empty() && options_.ndjson_path.empty()) {
      return;
    }
    running_ = true;
    stop_requested_ = false;
  }
  const MutexLock join_lock(join_mutex_);
  thread_ = std::thread([this] { run(); });
}

void Snapshotter::stop() {
  bool do_final = false;
  {
    // Claim the running state under the mutex: of N racing stop() calls
    // exactly one sees running_ still true, and only that one writes the
    // final snapshot — previously every racer did, doubling the "guaranteed
    // final tick" and leaving two threads in thread_.join() (a data race on
    // the std::thread itself).
    const MutexLock lock(mutex_);
    do_final = running_;
    running_ = false;
    stop_requested_ = true;
  }
  cv_.notify_all();
  {
    const MutexLock join_lock(join_mutex_);
    if (thread_.joinable()) thread_.join();
  }
  if (do_final) {
    // Final snapshot after the thread quiesced, so the files always end on
    // the freshest state even when the interval never elapsed.
    write_once();
  }
}

void Snapshotter::write_once() {
  if (options_.before_snapshot) options_.before_snapshot();
  if (!options_.openmetrics_path.empty()) {
    write_text_file(options_.openmetrics_path, openmetrics_text());
  }
  if (!options_.ndjson_path.empty()) {
    std::ofstream out(options_.ndjson_path, std::ios::app);
    MEMPART_REQUIRE(out.good(), "Snapshotter: cannot append to '" +
                                    options_.ndjson_path + "'");
    out << ndjson_sample();
    out.flush();
    MEMPART_REQUIRE(out.good(), "Snapshotter: failed writing '" +
                                    options_.ndjson_path + "'");
  }
  const MutexLock lock(mutex_);
  ++ticks_;
}

Count Snapshotter::ticks() const {
  const MutexLock lock(mutex_);
  return ticks_;
}

void Snapshotter::run() {
  UniqueLock lock(mutex_);
  while (!stop_requested_) {
    // Explicit wait loop (parallel.cpp idiom): wake on stop or interval.
    cv_.wait_for(lock, options_.interval);
    if (stop_requested_) break;
    lock.unlock();
    write_once();
    lock.lock();
  }
}

}  // namespace mempart::obs
