#include "loopnest/pipeline.h"

#include <algorithm>

#include "common/errors.h"
#include "common/math_util.h"

namespace mempart::loopnest {

PipelineEstimate estimate_pipeline(const StencilProgram& program,
                                   Count delta_ii,
                                   const PipelineParams& params) {
  MEMPART_REQUIRE(delta_ii >= 0, "estimate_pipeline: delta_ii must be >= 0");
  MEMPART_REQUIRE(params.depth >= 1 && params.base_ii >= 1 &&
                      params.ports_per_bank >= 1,
                  "estimate_pipeline: params must be positive");
  PipelineEstimate out;
  out.iterations = program.loop_nest().total_iterations();
  out.ii = std::max(params.base_ii,
                    ceil_div(delta_ii + 1, params.ports_per_bank));
  out.total_cycles =
      out.iterations == 0 ? 0 : params.depth + out.ii * (out.iterations - 1);

  // The unpartitioned memory serialises all m reads: II = ceil(m / B).
  const Count serial_ii =
      std::max(params.base_ii, ceil_div(program.extract_pattern().size(),
                                        params.ports_per_bank));
  const Count serial_cycles =
      out.iterations == 0 ? 0 : params.depth + serial_ii * (out.iterations - 1);
  out.speedup_vs_serial =
      out.total_cycles == 0 ? 1.0
                            : static_cast<double>(serial_cycles) /
                                  static_cast<double>(out.total_cycles);
  return out;
}

}  // namespace mempart::loopnest
