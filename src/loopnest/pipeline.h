// Pipelined-loop performance model.
//
// Definition 4 calls delta_P the ADDITIONAL initiation interval: an HLS tool
// pipelines the loop nest of Fig. 1(b) with some base II (1 when nothing
// else stalls), and bank conflicts add delta_P cycles to it. This model puts
// the partitioner's delta_P into that context: for a loop with T iterations,
// pipeline fill depth D and achieved initiation interval II,
//
//     total cycles ~= D + II * (T - 1).
//
// It quantifies the end-to-end speedup of a partitioning solution the way
// the HLS papers in the related work ([2], [3]) report it, and is what the
// sim_throughput bench prints next to the raw memory-cycle counts.
#pragma once

#include "common/types.h"
#include "loopnest/stencil_program.h"

namespace mempart::loopnest {

/// Pipeline characteristics of the synthesised loop body.
struct PipelineParams {
  Count depth = 5;          ///< fill latency D in cycles
  Count base_ii = 1;        ///< II before memory stalls
  Count ports_per_bank = 1; ///< bank bandwidth B
};

/// Cycle estimate for one partitioning solution.
struct PipelineEstimate {
  Count ii = 0;             ///< achieved initiation interval
  Count total_cycles = 0;   ///< D + II * (T - 1)
  Count iterations = 0;     ///< T
  double speedup_vs_serial = 0.0;  ///< vs unpartitioned (II = m)
};

/// Estimates pipelined execution of `program` given the partitioning's
/// delta_P. The achieved II is max(base_ii, ceil((delta_P + 1) / B)).
[[nodiscard]] PipelineEstimate estimate_pipeline(const StencilProgram& program,
                                                 Count delta_ii,
                                                 const PipelineParams& params = {});

}  // namespace mempart::loopnest
