// Stencil programs: the bridge from source-level loop nests to patterns.
//
// A StencilProgram is what an HLS front end would hand the partitioner: an
// array declaration (shape), the constellation of read offsets the loop body
// performs (relative to the iteration vector), and the iteration domain over
// which every read stays in bounds. extract_pattern() is the analysis step —
// in a real flow it comes from the polyhedral model of the body's affine
// accesses; here the offsets are declared directly or harvested from a
// Kernel's support.
#pragma once

#include <string>
#include <vector>

#include "common/nd.h"
#include "pattern/kernel.h"
#include "pattern/pattern.h"
#include "loopnest/loop_nest.h"

namespace mempart::loopnest {

/// One array + one read constellation + the valid iteration domain.
class StencilProgram {
 public:
  /// Throws when ranks mismatch or the pattern cannot fit inside the array
  /// at any position. `steps` (default all 1) are the per-dimension
  /// iteration strides — an unrolled loop advances by its unroll factor.
  StencilProgram(NdShape array_shape, Pattern reads, std::string name = "",
                 std::vector<Count> steps = {});

  /// Builds the program a convolution by `kernel` over an array of
  /// `array_shape` would run (Fig. 1(b) for the LoG kernel).
  static StencilProgram from_kernel(const Kernel& kernel, NdShape array_shape);

  /// The program after unrolling dimension `dim` by `factor`: one iteration
  /// reads the Minkowski-dilated pattern and the loop advances by
  /// factor * step in that dimension. The read multiset is preserved.
  [[nodiscard]] StencilProgram unrolled(int dim, Count factor) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const NdShape& array_shape() const { return shape_; }

  /// The access pattern P the partitioner needs.
  [[nodiscard]] const Pattern& extract_pattern() const { return reads_; }

  /// The loop nest enumerating every iteration vector s at which all reads
  /// s + Delta(i) are in bounds (the paper's "for i = 3..638" bounds).
  [[nodiscard]] const LoopNest& loop_nest() const { return nest_; }

  /// The m element addresses read at iteration vector `iv`.
  [[nodiscard]] std::vector<NdIndex> reads_at(const NdIndex& iv) const;

  /// The loop nest over positions where all reads are in bounds AND the
  /// position itself lies inside the array — the domain a stencil that
  /// WRITES output[iv] iterates. Identical to loop_nest() for patterns
  /// whose offsets include the zero corner (min = 0, max >= 0 per dim);
  /// differs when the support floats away from the origin.
  [[nodiscard]] LoopNest output_domain() const;

 private:
  NdShape shape_;
  Pattern reads_;
  std::vector<Count> steps_;
  LoopNest nest_;
  std::string name_;
};

}  // namespace mempart::loopnest
