#include "loopnest/schedule.h"

#include "obs/trace.h"

namespace mempart::loopnest {

sim::AccessStats simulate(const StencilProgram& program,
                          const sim::AddressMap& map, Count ports_per_bank) {
  obs::Span span("loopnest.simulate");
  span.arg("program", program.name()).arg("banks", map.num_banks());
  sim::AccessEngine engine(map, ports_per_bank);
  program.loop_nest().for_each([&](const NdIndex& iv) {
    engine.issue(program.reads_at(iv));
  });
  span.arg("iterations", engine.stats().iterations)
      .arg("cycles", engine.stats().cycles);
  sim::publish_stats(engine.stats());
  return engine.stats();
}

sim::AccessStats simulate_sampled(const StencilProgram& program,
                                  const sim::AddressMap& map, Count samples,
                                  Count ports_per_bank) {
  obs::Span span("loopnest.simulate_sampled");
  span.arg("program", program.name()).arg("banks", map.num_banks());
  sim::AccessEngine engine(map, ports_per_bank);
  program.loop_nest().for_each_sampled(samples, [&](const NdIndex& iv) {
    engine.issue(program.reads_at(iv));
  });
  span.arg("iterations", engine.stats().iterations)
      .arg("cycles", engine.stats().cycles);
  sim::publish_stats(engine.stats());
  return engine.stats();
}

}  // namespace mempart::loopnest
