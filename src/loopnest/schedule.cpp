#include "loopnest/schedule.h"

#include "common/simd.h"
#include "obs/trace.h"

namespace mempart::loopnest {

std::vector<sim::PlanLoop> plan_domain(const LoopNest& nest) {
  std::vector<sim::PlanLoop> domain;
  domain.reserve(nest.loops().size());
  for (const Loop& loop : nest.loops()) {
    domain.push_back(sim::PlanLoop{loop.lower, loop.upper, loop.step});
  }
  return domain;
}

sim::AccessStats simulate(const StencilProgram& program,
                          const sim::AddressMap& map, Count ports_per_bank) {
  obs::Span span("loopnest.simulate");
  span.arg("program", program.name()).arg("banks", map.num_banks());
  sim::AccessEngine engine(map, ports_per_bank);
  program.loop_nest().for_each([&](const NdIndex& iv) {
    engine.issue(program.reads_at(iv));
  });
  span.arg("iterations", engine.stats().iterations)
      .arg("cycles", engine.stats().cycles);
  sim::publish_stats(engine.stats());
  return engine.stats();
}

sim::AccessStats simulate_fast(const StencilProgram& program,
                               const sim::AddressMap& map,
                               Count ports_per_bank) {
  obs::Span span("loopnest.simulate_fast");
  span.arg("program", program.name()).arg("banks", map.num_banks());
  sim::AccessEngine engine(map, ports_per_bank);
  const sim::AccessPlan plan(map, program.extract_pattern(),
                             plan_domain(program.loop_nest()));
  plan.for_each_row_block_banks(
      [&](const NdIndex& /*row*/, const sim::AccessPlan::RowBlock& block) {
        engine.issue_batch_soa(block.banks, block.taps, block.groups);
      });
  span.arg("iterations", engine.stats().iterations)
      .arg("cycles", engine.stats().cycles)
      .arg("compiled", plan.compiled() ? 1 : 0)
      .arg("simd", simd::tier_name(simd::active_tier()));
  sim::publish_stats(engine.stats());
  return engine.stats();
}

sim::AccessStats simulate_sampled(const StencilProgram& program,
                                  const sim::AddressMap& map, Count samples,
                                  Count ports_per_bank) {
  obs::Span span("loopnest.simulate_sampled");
  span.arg("program", program.name()).arg("banks", map.num_banks());
  sim::AccessEngine engine(map, ports_per_bank);
  program.loop_nest().for_each_sampled(samples, [&](const NdIndex& iv) {
    engine.issue(program.reads_at(iv));
  });
  span.arg("iterations", engine.stats().iterations)
      .arg("cycles", engine.stats().cycles);
  sim::publish_stats(engine.stats());
  return engine.stats();
}

}  // namespace mempart::loopnest
