#include "loopnest/schedule.h"

namespace mempart::loopnest {

sim::AccessStats simulate(const StencilProgram& program,
                          const sim::AddressMap& map, Count ports_per_bank) {
  sim::AccessEngine engine(map, ports_per_bank);
  program.loop_nest().for_each([&](const NdIndex& iv) {
    engine.issue(program.reads_at(iv));
  });
  return engine.stats();
}

sim::AccessStats simulate_sampled(const StencilProgram& program,
                                  const sim::AddressMap& map, Count samples,
                                  Count ports_per_bank) {
  sim::AccessEngine engine(map, ports_per_bank);
  program.loop_nest().for_each_sampled(samples, [&](const NdIndex& iv) {
    engine.issue(program.reads_at(iv));
  });
  return engine.stats();
}

}  // namespace mempart::loopnest
