#include "loopnest/stencil_parser.h"

#include <cctype>
#include <map>
#include <sstream>

#include "common/errors.h"

namespace mempart::loopnest {
namespace {

// ---------------------------------------------------------------- lexer ---

enum class TokKind { kIdent, kNumber, kPlus, kMinus, kStar, kAssign,
                     kLBracket, kRBracket, kSemicolon, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  long long value = 0;
  size_t pos = 0;
};

[[noreturn]] void fail(size_t pos, const std::string& message) {
  std::ostringstream os;
  os << "parse_stencil: " << message << " (at offset " << pos << ')';
  throw InvalidArgument(os.str());
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(strip_for_headers(source)) {
    advance();
  }

  const Token& peek() const { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

  Token expect(TokKind kind, const char* what) {
    if (current_.kind != kind) fail(current_.pos, std::string("expected ") + what);
    return next();
  }

 private:
  /// Drops `for (...)` loop headers so callers can paste whole loop nests.
  static std::string strip_for_headers(const std::string& source) {
    std::string out;
    size_t i = 0;
    while (i < source.size()) {
      // Recognise the keyword 'for' at a word boundary.
      if (source.compare(i, 3, "for") == 0 &&
          (i == 0 || !std::isalnum(static_cast<unsigned char>(source[i - 1]))) &&
          (i + 3 >= source.size() ||
           !std::isalnum(static_cast<unsigned char>(source[i + 3])))) {
        // Skip to the matching ')' of the header, then any '{'.
        size_t j = source.find('(', i);
        if (j == std::string::npos) fail(i, "malformed for header");
        int depth = 0;
        for (; j < source.size(); ++j) {
          if (source[j] == '(') ++depth;
          if (source[j] == ')' && --depth == 0) break;
        }
        if (j >= source.size()) fail(i, "unbalanced parentheses in for header");
        i = j + 1;
        continue;
      }
      if (source[i] == '{' || source[i] == '}') {
        ++i;
        continue;
      }
      out.push_back(source[i]);
      ++i;
    }
    return out;
  }

  void advance() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= src_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kIdent;
      current_.text = src_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      current_.kind = TokKind::kNumber;
      current_.text = src_.substr(start, pos_ - start);
      current_.value = std::stoll(current_.text);
      return;
    }
    ++pos_;
    switch (c) {
      case '+': current_.kind = TokKind::kPlus; return;
      case '-': current_.kind = TokKind::kMinus; return;
      case '*': current_.kind = TokKind::kStar; return;
      case '=': current_.kind = TokKind::kAssign; return;
      case '[': current_.kind = TokKind::kLBracket; return;
      case ']': current_.kind = TokKind::kRBracket; return;
      case ';': current_.kind = TokKind::kSemicolon; return;
      default:
        fail(pos_ - 1, std::string("unexpected character '") + c + '\'');
    }
  }

  std::string src_;
  size_t pos_ = 0;
  Token current_;
};

// --------------------------------------------------------------- parser ---

struct ArrayRef {
  std::string array;
  std::vector<std::string> vars;   ///< variable per dimension ("" = constant)
  NdIndex offsets;                 ///< constant part per dimension
  size_t pos = 0;
};

/// index := var (('+'|'-') number)? | number
void parse_index(Lexer& lex, ArrayRef& ref) {
  const Token head = lex.next();
  if (head.kind == TokKind::kIdent) {
    Coord offset = 0;
    if (lex.peek().kind == TokKind::kPlus || lex.peek().kind == TokKind::kMinus) {
      const bool negative = lex.next().kind == TokKind::kMinus;
      const Token num = lex.expect(TokKind::kNumber, "constant after +/-");
      offset = negative ? -num.value : num.value;
    } else if (lex.peek().kind == TokKind::kStar) {
      fail(lex.peek().pos, "non-affine index (variable * ...)");
    }
    ref.vars.push_back(head.text);
    ref.offsets.push_back(offset);
    return;
  }
  if (head.kind == TokKind::kNumber) {
    ref.vars.push_back("");
    ref.offsets.push_back(head.value);
    return;
  }
  fail(head.pos, "expected index expression");
}

/// ref := ident ('[' index ']')+
ArrayRef parse_ref(Lexer& lex) {
  const Token name = lex.expect(TokKind::kIdent, "array name");
  ArrayRef ref;
  ref.array = name.text;
  ref.pos = name.pos;
  if (lex.peek().kind != TokKind::kLBracket) {
    fail(lex.peek().pos, "expected '[' after array name");
  }
  while (lex.peek().kind == TokKind::kLBracket) {
    lex.next();
    parse_index(lex, ref);
    lex.expect(TokKind::kRBracket, "']'");
  }
  return ref;
}

}  // namespace

ParsedStencil parse_stencil(const std::string& source) {
  Lexer lex(source);

  const ArrayRef lhs = parse_ref(lex);
  lex.expect(TokKind::kAssign, "'='");

  std::string input_array;
  std::vector<std::string> loop_vars;
  std::vector<KernelTap> taps;

  bool first_term = true;
  while (lex.peek().kind != TokKind::kEnd &&
         lex.peek().kind != TokKind::kSemicolon) {
    // term := sign? (number '*')? ref ('*' number)?
    double sign = 1.0;
    if (lex.peek().kind == TokKind::kPlus) {
      lex.next();
    } else if (lex.peek().kind == TokKind::kMinus) {
      sign = -1.0;
      lex.next();
    } else if (!first_term) {
      fail(lex.peek().pos, "expected '+' or '-' between terms");
    }
    first_term = false;

    double magnitude = 1.0;
    if (lex.peek().kind == TokKind::kNumber) {
      magnitude = static_cast<double>(lex.next().value);
      lex.expect(TokKind::kStar, "'*' after coefficient");
    }
    ArrayRef ref = parse_ref(lex);
    if (lex.peek().kind == TokKind::kStar) {
      lex.next();
      const Token num = lex.expect(TokKind::kNumber, "constant coefficient");
      magnitude *= static_cast<double>(num.value);
    }

    if (input_array.empty()) {
      input_array = ref.array;
      for (const std::string& v : ref.vars) {
        if (v.empty()) fail(ref.pos, "input index must use a loop variable");
        loop_vars.push_back(v);
      }
    }
    if (ref.array != input_array) {
      fail(ref.pos, "multiple input arrays are not supported ('" + ref.array +
                        "' vs '" + input_array + "')");
    }
    if (ref.vars.size() != loop_vars.size()) {
      fail(ref.pos, "inconsistent dimensionality of '" + ref.array + "'");
    }
    for (size_t d = 0; d < ref.vars.size(); ++d) {
      if (ref.vars[d] != loop_vars[d]) {
        fail(ref.pos, "dimension " + std::to_string(d) +
                          " must index with variable '" + loop_vars[d] + "'");
      }
    }
    taps.push_back({ref.offsets, sign * magnitude});
  }
  if (lex.peek().kind == TokKind::kSemicolon) lex.next();
  if (lex.peek().kind != TokKind::kEnd) {
    fail(lex.peek().pos, "trailing input after statement");
  }
  MEMPART_REQUIRE(!taps.empty(), "parse_stencil: statement reads no array");

  // Accumulate repeated offsets (e.g. "X[i][j] + X[i][j]" = weight 2).
  std::map<NdIndex, double> accumulated;
  for (const KernelTap& t : taps) accumulated[t.offset] += t.weight;
  std::vector<KernelTap> merged;
  for (const auto& [offset, weight] : accumulated) {
    merged.push_back({offset, weight});
  }

  ParsedStencil out{.output_array = lhs.array,
                    .input_array = input_array,
                    .loop_vars = std::move(loop_vars),
                    .kernel = Kernel(std::move(merged), input_array)};
  return out;
}

std::string emit_stencil_source(const Kernel& kernel,
                                const std::string& output_array,
                                const std::string& input_array) {
  static const char* kVars[] = {"i", "j", "k", "l", "m", "n"};
  const int rank = kernel.rank();
  MEMPART_REQUIRE(rank <= 6, "emit_stencil_source: rank > 6 unsupported");

  auto ref = [&](const std::string& array, const NdIndex* offset) {
    std::ostringstream os;
    os << array;
    for (int d = 0; d < rank; ++d) {
      os << '[' << kVars[d];
      if (offset != nullptr) {
        const Coord c = (*offset)[static_cast<size_t>(d)];
        if (c > 0) os << '+' << c;
        if (c < 0) os << c;
      }
      os << ']';
    }
    return os.str();
  };

  std::ostringstream os;
  os << ref(output_array, nullptr) << " =";
  bool first = true;
  for (const KernelTap& tap : kernel.taps()) {
    const auto coefficient = static_cast<long long>(tap.weight);
    MEMPART_REQUIRE(static_cast<double>(coefficient) == tap.weight,
                    "emit_stencil_source: non-integral coefficient");
    MEMPART_REQUIRE(coefficient != 0, "emit_stencil_source: zero coefficient");
    const long long magnitude = coefficient < 0 ? -coefficient : coefficient;
    os << ' ' << (coefficient < 0 ? '-' : '+') << ' ';
    if (magnitude != 1) os << magnitude << '*';
    os << ref(input_array, &tap.offset);
    first = false;
  }
  MEMPART_REQUIRE(!first, "emit_stencil_source: kernel has no taps");
  os << ';';
  return os.str();
}

}  // namespace mempart::loopnest
