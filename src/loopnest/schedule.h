// Replaying stencil programs against partitioned memory.
//
// simulate() drives a StencilProgram's loop nest through an AccessEngine:
// each iteration issues its m reads as one parallel group, and the engine
// charges ceil(worst bank demand / ports) cycles. The result is the
// end-to-end check of the paper's claim chain: pattern -> transform ->
// mapping -> "all m accesses in one cycle" (or delta_P + 1 cycles under a
// bank-count cap). Sampled variants keep huge domains tractable; sampling
// is sound for delta_P because the conflict profile is position-invariant
// (§4.3.2), which tests/integration assert explicitly.
#pragma once

#include <vector>

#include "common/types.h"
#include "loopnest/stencil_program.h"
#include "sim/access_engine.h"
#include "sim/access_plan.h"
#include "sim/address_map.h"

namespace mempart::loopnest {

/// The nest's loops as the sim-layer mirror type AccessPlan consumes.
[[nodiscard]] std::vector<sim::PlanLoop> plan_domain(const LoopNest& nest);

/// Replays the whole iteration domain. Returns the engine's statistics.
[[nodiscard]] sim::AccessStats simulate(const StencilProgram& program,
                                        const sim::AddressMap& map,
                                        Count ports_per_bank = 1);

/// simulate() through a compiled AccessPlan: identical statistics, but banks
/// come from incremental updates instead of per-access virtual address
/// resolution (falls back to the generic per-access walk for maps the plan
/// cannot compile). The reference simulate() stays as the oracle.
[[nodiscard]] sim::AccessStats simulate_fast(const StencilProgram& program,
                                             const sim::AddressMap& map,
                                             Count ports_per_bank = 1);

/// Replays about `samples` evenly spread iterations.
[[nodiscard]] sim::AccessStats simulate_sampled(const StencilProgram& program,
                                                const sim::AddressMap& map,
                                                Count samples,
                                                Count ports_per_bank = 1);

}  // namespace mempart::loopnest
