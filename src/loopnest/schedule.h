// Replaying stencil programs against partitioned memory.
//
// simulate() drives a StencilProgram's loop nest through an AccessEngine:
// each iteration issues its m reads as one parallel group, and the engine
// charges ceil(worst bank demand / ports) cycles. The result is the
// end-to-end check of the paper's claim chain: pattern -> transform ->
// mapping -> "all m accesses in one cycle" (or delta_P + 1 cycles under a
// bank-count cap). Sampled variants keep huge domains tractable; sampling
// is sound for delta_P because the conflict profile is position-invariant
// (§4.3.2), which tests/integration assert explicitly.
#pragma once

#include "common/types.h"
#include "loopnest/stencil_program.h"
#include "sim/access_engine.h"
#include "sim/address_map.h"

namespace mempart::loopnest {

/// Replays the whole iteration domain. Returns the engine's statistics.
[[nodiscard]] sim::AccessStats simulate(const StencilProgram& program,
                                        const sim::AddressMap& map,
                                        Count ports_per_bank = 1);

/// Replays about `samples` evenly spread iterations.
[[nodiscard]] sim::AccessStats simulate_sampled(const StencilProgram& program,
                                                const sim::AddressMap& map,
                                                Count samples,
                                                Count ports_per_bank = 1);

}  // namespace mempart::loopnest
