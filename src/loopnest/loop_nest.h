// Perfectly nested affine loop nests — the paper's workload shape.
//
// Fig. 1(b)'s edge-detection code is the archetype: an n-deep nest whose
// body reads a fixed constellation of array elements around the iteration
// vector. LoopNest models bounds and steps of such a nest (one Loop per
// array dimension, outermost first) and enumerates iteration vectors in
// program order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/nd.h"
#include "common/types.h"

namespace mempart::loopnest {

/// One loop level: for (iv = lower; iv <= upper; iv += step).
struct Loop {
  Coord lower = 0;
  Coord upper = 0;   ///< inclusive
  Coord step = 1;

  /// Number of iterations this level executes (0 when upper < lower).
  [[nodiscard]] Count trip_count() const;

  friend bool operator==(const Loop&, const Loop&) = default;
};

/// A perfect nest, outermost loop first.
class LoopNest {
 public:
  explicit LoopNest(std::vector<Loop> loops);

  [[nodiscard]] int depth() const { return static_cast<int>(loops_.size()); }
  [[nodiscard]] const std::vector<Loop>& loops() const { return loops_; }

  /// Product of all trip counts.
  [[nodiscard]] Count total_iterations() const;

  /// Invokes `body` for every iteration vector in program order.
  void for_each(const std::function<void(const NdIndex&)>& body) const;

  /// Invokes `body` for about `samples` iteration vectors on a regular
  /// stride through program order (first iteration always included).
  void for_each_sampled(Count samples,
                        const std::function<void(const NdIndex&)>& body) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Loop> loops_;
};

}  // namespace mempart::loopnest
