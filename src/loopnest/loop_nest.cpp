#include "loopnest/loop_nest.h"

#include <sstream>

#include "common/errors.h"
#include "common/math_util.h"

namespace mempart::loopnest {

Count Loop::trip_count() const {
  if (upper < lower) return 0;
  return (upper - lower) / step + 1;
}

LoopNest::LoopNest(std::vector<Loop> loops) : loops_(std::move(loops)) {
  MEMPART_REQUIRE(!loops_.empty(), "LoopNest: depth must be >= 1");
  for (const Loop& l : loops_) {
    MEMPART_REQUIRE(l.step > 0, "LoopNest: step must be positive");
  }
}

Count LoopNest::total_iterations() const {
  Count total = 1;
  for (const Loop& l : loops_) total = checked_mul(total, l.trip_count());
  return total;
}

void LoopNest::for_each(const std::function<void(const NdIndex&)>& body) const {
  if (total_iterations() == 0) return;
  NdIndex iv(static_cast<size_t>(depth()));
  for (int d = 0; d < depth(); ++d) {
    iv[static_cast<size_t>(d)] = loops_[static_cast<size_t>(d)].lower;
  }
  while (true) {
    body(iv);
    int d = depth() - 1;
    for (; d >= 0; --d) {
      const Loop& l = loops_[static_cast<size_t>(d)];
      auto& x = iv[static_cast<size_t>(d)];
      x += l.step;
      if (x <= l.upper) break;
      x = l.lower;
    }
    if (d < 0) return;
  }
}

void LoopNest::for_each_sampled(
    Count samples, const std::function<void(const NdIndex&)>& body) const {
  MEMPART_REQUIRE(samples >= 1, "LoopNest::for_each_sampled: samples >= 1");
  const Count total = total_iterations();
  if (total == 0) return;
  const Count stride = std::max<Count>(1, total / samples);
  // Unrank flat iteration indices into iteration vectors.
  std::vector<Count> trips;
  trips.reserve(static_cast<size_t>(depth()));
  for (const Loop& l : loops_) trips.push_back(l.trip_count());
  NdIndex iv(static_cast<size_t>(depth()));
  for (Count flat = 0; flat < total; flat += stride) {
    Count rest = flat;
    for (int d = depth() - 1; d >= 0; --d) {
      const Count t = trips[static_cast<size_t>(d)];
      const Loop& l = loops_[static_cast<size_t>(d)];
      iv[static_cast<size_t>(d)] = l.lower + (rest % t) * l.step;
      rest /= t;
    }
    body(iv);
  }
}

std::string LoopNest::to_string() const {
  std::ostringstream os;
  for (size_t d = 0; d < loops_.size(); ++d) {
    const Loop& l = loops_[d];
    if (d > 0) os << ' ';
    os << "for(i" << d << '=' << l.lower << ".." << l.upper;
    if (l.step != 1) os << " step " << l.step;
    os << ')';
  }
  return os.str();
}

}  // namespace mempart::loopnest
