// Front end: parse C-like stencil statements into kernels and patterns.
//
// The paper's input is source code like Fig. 1(b):
//
//   Y[i][j] = -X[i-2][j] - X[i-1][j-1] - 2*X[i-1][j] - X[i-1][j+1]
//             - X[i][j-2] - 2*X[i][j-1] + 16*X[i][j] - 2*X[i][j+1]
//             - X[i][j+2] - X[i+1][j-1] - 2*X[i+1][j] - X[i+1][j+1]
//             - X[i+2][j];
//
// parse_stencil() turns such a statement into the input array's Kernel
// (coefficients + offsets) — exactly what an HLS front end's affine access
// analysis would produce. Surrounding `for (...)` headers and whitespace are
// tolerated and ignored (the iteration domain is reconstructed from the
// array shape by StencilProgram).
//
// Grammar (after discarding `for` headers):
//   stmt    := ref '=' term+ ';'?
//   term    := ('+'|'-')? (number '*')? ref | ('+'|'-')? ref '*' number
//   ref     := ident ('[' index ']')+
//   index   := var (('+'|'-') number)? | number
//
// Every input-array index expression must be var +/- constant with a
// consistent variable per dimension (the paper's pattern model, Def. 2);
// anything else (i*j, i+j, different vars in one dimension) is rejected
// with a diagnostic.
#pragma once

#include <string>
#include <vector>

#include "pattern/kernel.h"
#include "pattern/pattern.h"

namespace mempart::loopnest {

/// Result of parsing one stencil statement.
struct ParsedStencil {
  std::string output_array;             ///< lhs array name ("Y")
  std::string input_array;              ///< rhs array name ("X")
  std::vector<std::string> loop_vars;   ///< per-dimension variable ("i","j")
  Kernel kernel;                        ///< weights per offset
};

/// Parses `source`. Throws InvalidArgument with a position-annotated message
/// on malformed or non-affine input.
[[nodiscard]] ParsedStencil parse_stencil(const std::string& source);

/// The inverse: renders a kernel back to a parseable statement, e.g.
/// "Y[i][j] = 16*X[i][j] - 2*X[i][j+1] ...;". Loop variables default to
/// i, j, k, l, ... per dimension. Weights must be integral (the statement
/// grammar has integer coefficients); throws otherwise.
/// parse_stencil(emit_stencil_source(k)) reproduces k's taps exactly.
[[nodiscard]] std::string emit_stencil_source(
    const Kernel& kernel, const std::string& output_array = "Y",
    const std::string& input_array = "X");

}  // namespace mempart::loopnest
