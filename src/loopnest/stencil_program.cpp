#include "loopnest/stencil_program.h"

#include "common/errors.h"
#include <algorithm>
#include "pattern/transforms.h"

namespace mempart::loopnest {
namespace {

Pattern checked_reads(Pattern reads, const NdShape& shape) {
  MEMPART_REQUIRE(reads.rank() == shape.rank(),
                  "StencilProgram: pattern/array rank mismatch");
  return reads;
}

std::vector<Count> checked_steps(std::vector<Count> steps, const NdShape& shape) {
  if (steps.empty()) steps.assign(static_cast<size_t>(shape.rank()), 1);
  MEMPART_REQUIRE(static_cast<int>(steps.size()) == shape.rank(),
                  "StencilProgram: steps rank mismatch");
  for (Count s : steps) {
    MEMPART_REQUIRE(s >= 1, "StencilProgram: steps must be >= 1");
  }
  return steps;
}

LoopNest valid_domain(const NdShape& shape, const Pattern& reads,
                      const std::vector<Count>& steps) {
  std::vector<Loop> loops;
  loops.reserve(static_cast<size_t>(shape.rank()));
  for (int d = 0; d < shape.rank(); ++d) {
    Loop l;
    l.lower = -reads.min_coord(d);
    l.upper = shape.extent(d) - 1 - reads.max_coord(d);
    l.step = steps[static_cast<size_t>(d)];
    MEMPART_REQUIRE(l.upper >= l.lower,
                    "StencilProgram: pattern never fits inside the array");
    loops.push_back(l);
  }
  return LoopNest(std::move(loops));
}

}  // namespace

StencilProgram::StencilProgram(NdShape array_shape, Pattern reads,
                               std::string name, std::vector<Count> steps)
    : shape_(std::move(array_shape)),
      reads_(checked_reads(std::move(reads), shape_)),
      steps_(checked_steps(std::move(steps), shape_)),
      nest_(valid_domain(shape_, reads_, steps_)),
      name_(std::move(name)) {}

StencilProgram StencilProgram::from_kernel(const Kernel& kernel,
                                           NdShape array_shape) {
  return StencilProgram(std::move(array_shape), kernel.support(),
                        kernel.name());
}

StencilProgram StencilProgram::unrolled(int dim, Count factor) const {
  MEMPART_REQUIRE(dim >= 0 && dim < shape_.rank(),
                  "StencilProgram::unrolled: dimension out of range");
  MEMPART_REQUIRE(factor >= 1, "StencilProgram::unrolled: factor must be >= 1");
  std::vector<Count> steps = steps_;
  steps[static_cast<size_t>(dim)] *= factor;
  // One unrolled iteration reads the base pattern at u * step offsets for
  // u in [0, factor).
  std::vector<NdIndex> shifts;
  for (Count u = 0; u < factor; ++u) {
    NdIndex shift(static_cast<size_t>(shape_.rank()), 0);
    shift[static_cast<size_t>(dim)] = u * steps_[static_cast<size_t>(dim)];
    shifts.push_back(std::move(shift));
  }
  const Pattern dilated = patterns::dilate(
      reads_, Pattern(std::move(shifts)),
      name_.empty() ? "" : name_ + "_u" + std::to_string(factor));
  return StencilProgram(shape_, dilated, name_, std::move(steps));
}

std::vector<NdIndex> StencilProgram::reads_at(const NdIndex& iv) const {
  return reads_.at(iv);
}

LoopNest StencilProgram::output_domain() const {
  std::vector<Loop> loops = nest_.loops();
  for (int d = 0; d < shape_.rank(); ++d) {
    Loop& l = loops[static_cast<size_t>(d)];
    l.lower = std::max<Coord>(l.lower, 0);
    l.upper = std::min<Coord>(l.upper, shape_.extent(d) - 1);
    MEMPART_REQUIRE(l.upper >= l.lower,
                    "StencilProgram: empty output domain");
  }
  return LoopNest(std::move(loops));
}

}  // namespace mempart::loopnest
