// Error taxonomy for the mempart libraries.
//
// Contract violations (bad arguments, malformed patterns, out-of-domain
// indices) throw exceptions derived from mempart::Error so callers can
// distinguish library failures from std:: failures. Internal invariants use
// MEMPART_ASSERT, which throws InternalError with file/line context; this is
// preferred over assert() because the solvers are also exercised from
// long-running benchmark binaries built in Release mode.
#pragma once

#include <stdexcept>
#include <string>

namespace mempart {

/// Base class of all mempart exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller-supplied argument violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An operation was requested on an object in an unsuitable state.
class InvalidState : public Error {
 public:
  explicit InvalidState(const std::string& what) : Error(what) {}
};

/// Integer arithmetic left the 64-bit range the library computes in. Derives
/// from InvalidArgument because the overflow is always provoked by caller
/// data (extents, offsets) rather than by an internal bug: callers that
/// already handle InvalidArgument keep working, callers that care about the
/// distinction (the check/ fuzzing harness) can catch the subtype.
class OverflowError : public InvalidArgument {
 public:
  explicit OverflowError(const std::string& what) : InvalidArgument(what) {}
};

/// An internal invariant failed: indicates a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

/// Checks an internal invariant; throws InternalError with context on failure.
#define MEMPART_ASSERT(expr, message)                                       \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::mempart::detail::assert_fail(#expr, __FILE__, __LINE__, (message)); \
    }                                                                       \
  } while (false)

/// Validates a documented precondition; throws InvalidArgument on failure.
#define MEMPART_REQUIRE(expr, message)                \
  do {                                                \
    if (!(expr)) {                                    \
      throw ::mempart::InvalidArgument((message));    \
    }                                                 \
  } while (false)

}  // namespace mempart
