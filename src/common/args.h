// Minimal declarative command-line flag parser for the CLI tool.
//
// Supports "--flag value", "--flag=value" and boolean "--flag", plus
// positional arguments. Flags are declared up front with a type, default
// and help text, so --help output and validation come for free. No global
// state; each ArgParser instance owns its declarations.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/nd.h"
#include "common/types.h"

namespace mempart {

/// Strictly parses `text` as a decimal integer (the whole string must be
/// consumed). Throws InvalidArgument naming `what` on malformed input —
/// the guard the CLI needs so "--shape 640xABC" fails with a friendly
/// error instead of an uncaught std::invalid_argument.
[[nodiscard]] Count parse_count(const std::string& text,
                                const std::string& what);

/// Parses "640x480"-style text into an NdShape; every extent must be a
/// positive integer. Throws InvalidArgument on malformed input.
[[nodiscard]] NdShape parse_shape(const std::string& text);

/// Declarative parser for one command's flags and positionals.
class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  /// Declares flags. `name` is spelled without the leading dashes.
  ArgParser& add_int(const std::string& name, Count default_value,
                     const std::string& help);
  ArgParser& add_string(const std::string& name,
                        const std::string& default_value,
                        const std::string& help);
  ArgParser& add_bool(const std::string& name, const std::string& help);

  /// Parses argv (excluding argv[0]). Throws InvalidArgument on unknown
  /// flags, malformed values, or a missing value. "--help" sets help_requested.
  void parse(const std::vector<std::string>& args);

  [[nodiscard]] Count get_int(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  [[nodiscard]] bool help_requested() const { return help_requested_; }

  /// Renders the --help text.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;       ///< current (default or parsed) textual value
    bool bool_value = false;
  };
  Flag& find(const std::string& name, Kind kind);
  const Flag& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> declaration_order_;
  std::vector<std::string> positionals_;
  bool help_requested_ = false;
};

}  // namespace mempart
