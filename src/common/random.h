// Deterministic pseudo-random source for tests, property sweeps and
// synthetic workload generation.
//
// A thin wrapper over std::mt19937_64 with convenience samplers. Every user
// passes an explicit seed so experiments are reproducible run to run; no
// global state, no std::random_device.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/errors.h"
#include "common/types.h"

namespace mempart {

/// Seeded pseudo-random generator with typed samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] Count uniform(Count lo, Count hi);

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01();

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool chance(double p);

  /// Samples `k` distinct values from [0, n) without replacement.
  [[nodiscard]] std::vector<Count> sample_without_replacement(Count n, Count k);

  /// Access to the underlying engine for std:: algorithms (e.g. shuffle).
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mempart
