// Minimal column-aligned ASCII table writer for the report binaries.
//
// Every bench/ binary prints paper rows next to measured rows; this helper
// keeps that output aligned and diff-friendly without pulling in a formatting
// dependency. Cells are strings; numeric convenience overloads format with
// ostream defaults.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mempart {

/// Accumulates rows of string cells and renders them column-aligned.
class TextTable {
 public:
  /// Starts a new row and returns its index.
  size_t add_row();

  /// Appends a cell to the last row (creates a first row if none exists).
  TextTable& cell(std::string text);
  TextTable& cell(std::int64_t value);
  TextTable& cell(double value, int precision = 2);

  /// Appends a full row at once.
  TextTable& row(std::vector<std::string> cells);

  /// Inserts a horizontal separator line after the current row.
  TextTable& separator();

  /// Renders the table; every column padded to its widest cell.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  // A separator is encoded as an empty row vector.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mempart
