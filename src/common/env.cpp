#include "common/env.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/errors.h"
#include "common/simd.h"

namespace mempart {

std::optional<std::int64_t> env_int(const char* name, std::int64_t min_value,
                                    std::int64_t max_value) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return std::nullopt;
  const char* end = text + std::strlen(text);
  std::int64_t value = 0;
  const auto [rest, ec] = std::from_chars(text, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    throw InvalidArgument(std::string(name) + "='" + text +
                          "' overflows a 64-bit integer");
  }
  if (ec != std::errc() || rest != end) {
    throw InvalidArgument(std::string(name) + "='" + text +
                          "' is not a decimal integer");
  }
  if (value < min_value || value > max_value) {
    throw InvalidArgument(std::string(name) + "=" + std::to_string(value) +
                          " is outside the accepted range [" +
                          std::to_string(min_value) + ", " +
                          std::to_string(max_value) + "]");
  }
  return value;
}

Count env_count(const char* name, Count fallback, Count min_value,
                Count max_value) {
  const std::optional<std::int64_t> value =
      env_int(name, min_value, max_value);
  return value.has_value() ? static_cast<Count>(*value) : fallback;
}

void validate_env() {
  (void)env_int("MEMPART_THREADS", 1, kMaxEnvThreads);
  (void)env_int("MEMPART_CACHE_CAPACITY", 1, kMaxEnvCacheCapacity);
  (void)env_int("MEMPART_CACHE_SHARDS", 1, kMaxEnvCacheShards);
  (void)env_int("MEMPART_FLIGHT_CAPACITY", 0, kMaxEnvFlightCapacity);
  if (const char* tier = std::getenv("MEMPART_SIMD")) {
    if (*tier != '\0') (void)simd::parse_tier_env(tier);
  }
}

}  // namespace mempart
