#include "common/random.h"

#include <algorithm>
#include <numeric>

namespace mempart {

Count Rng::uniform(Count lo, Count hi) {
  MEMPART_REQUIRE(lo <= hi, "Rng::uniform: lo must be <= hi");
  std::uniform_int_distribution<Count> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::chance(double p) {
  MEMPART_REQUIRE(p >= 0.0 && p <= 1.0, "Rng::chance: p must be in [0,1]");
  return uniform01() < p;
}

std::vector<Count> Rng::sample_without_replacement(Count n, Count k) {
  MEMPART_REQUIRE(n >= 0 && k >= 0 && k <= n,
                  "Rng::sample_without_replacement: need 0 <= k <= n");
  // Partial Fisher-Yates over an index vector; fine for the test-scale n used
  // here (n is at most a few thousand in pattern sweeps).
  std::vector<Count> indices(static_cast<size_t>(n));
  std::iota(indices.begin(), indices.end(), Count{0});
  for (Count i = 0; i < k; ++i) {
    const Count j = uniform(i, n - 1);
    std::swap(indices[static_cast<size_t>(i)], indices[static_cast<size_t>(j)]);
  }
  indices.resize(static_cast<size_t>(k));
  std::sort(indices.begin(), indices.end());
  return indices;
}

}  // namespace mempart
