// Fixed-size thread pool and deterministic parallel-for.
//
// The bench sweeps (Table 1, the ablations) and the LTB baseline's
// exhaustive alpha enumeration are embarrassingly parallel: independent
// work items whose RESULTS must come back in a caller-defined order so the
// emitted tables and JSON stay byte-identical regardless of thread count.
// ThreadPool provides that contract: parallel_for(n, fn) runs fn(0..n-1)
// across the workers plus the calling thread, each result lands in its
// own index slot, and ordering nondeterminism is confined to side effects
// the callers avoid. Work is handed out through a single atomic cursor, so
// uneven items (one pattern's LTB search dwarfing another's) self-balance.
//
// The pool is deliberately minimal: no futures, no task graph, one batch
// job at a time. Nested parallel_for on the same pool is not supported
// (the caller participates in its own job and would deadlock waiting for
// itself); compose parallelism by sharding at the outermost level.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"

namespace mempart {

/// Threads used when a caller passes 0: the MEMPART_THREADS environment
/// variable when set to a positive integer, else the hardware concurrency
/// (minimum 1).
[[nodiscard]] Count default_thread_count();

/// Overrides default_thread_count() for the process (0 restores auto).
void set_default_thread_count(Count n);

/// A fixed set of worker threads executing one parallel_for batch at a time.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread is the last executor);
  /// 0 means default_thread_count(). A pool of size 1 runs everything inline.
  explicit ThreadPool(Count threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executing threads during parallel_for (workers + caller).
  [[nodiscard]] Count size() const {
    return static_cast<Count>(workers_.size()) + 1;
  }

  /// Runs fn(i) for every i in [0, n) across the pool, blocking until all
  /// complete. Indices are handed out dynamically; result determinism comes
  /// from writing outputs by index, which map() below does. If any fn
  /// throws, the first exception is rethrown here after the batch drains
  /// (remaining indices are skipped).
  void parallel_for(Count n, const std::function<void(Count)>& fn);

  /// parallel_for that collects fn(i) into slot i — deterministic output
  /// order regardless of thread count or scheduling.
  template <typename T, typename Fn>
  std::vector<T> map(Count n, Fn&& fn) {
    std::vector<T> out(static_cast<size_t>(n));
    parallel_for(n, [&](Count i) { out[static_cast<size_t>(i)] = fn(i); });
    return out;
  }

  /// Chunked parallel_for: runs fn(begin, end) over contiguous ranges
  /// covering [0, n). Ranges hold at least `min_grain` indices (except
  /// possibly when n < min_grain) and at most 4 chunks per executor are
  /// formed, so per-item dispatch overhead amortises over the grain and a
  /// sweep whose total work is tiny stays on the calling thread entirely
  /// (n <= min_grain means one chunk, run inline with no pool round-trip).
  /// Per-chunk setup (scratch buffers, RNG, caches) goes at the top of fn.
  void parallel_for_chunked(Count n, Count min_grain,
                            const std::function<void(Count, Count)>& fn);

  /// Chunked map: fn(i) into slot i, scheduled chunk-wise as above.
  template <typename T, typename Fn>
  std::vector<T> map_chunked(Count n, Count min_grain, Fn&& fn) {
    std::vector<T> out(static_cast<size_t>(n));
    parallel_for_chunked(n, min_grain, [&](Count begin, Count end) {
      for (Count i = begin; i < end; ++i) out[static_cast<size_t>(i)] = fn(i);
    });
    return out;
  }

 private:
  void worker_loop();
  /// Drains the shared index cursor, running fn on each claimed index.
  /// `n` is the batch size the caller read from job_n_ under mutex_ (the
  /// cursor itself is atomic, so the drain runs unlocked).
  void run_indices(const std::function<void(Count)>& fn, Count n);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  /// condition_variable_any: waitable on the annotated UniqueLock (the
  /// analysis then sees the capability held across the whole wait loop).
  std::condition_variable_any start_cv_;
  std::condition_variable_any done_cv_;
  /// Current batch job; set by parallel_for, read by woken workers.
  const std::function<void(Count)>* job_ MEMPART_GUARDED_BY(mutex_) = nullptr;
  /// Bumped per batch to wake workers.
  std::uint64_t generation_ MEMPART_GUARDED_BY(mutex_) = 0;
  /// Workers still inside the current batch.
  Count active_ MEMPART_GUARDED_BY(mutex_) = 0;
  std::atomic<Count> next_{0};  ///< index cursor of the current batch
  Count job_n_ MEMPART_GUARDED_BY(mutex_) = 0;
  /// First exception of the batch.
  std::exception_ptr error_ MEMPART_GUARDED_BY(mutex_);
  bool stop_ MEMPART_GUARDED_BY(mutex_) = false;
};

/// One-shot convenience: runs fn(0..n-1) on `threads` threads (0 = default).
/// Constructs a transient pool; hot callers should hold a ThreadPool.
void parallel_for(Count n, const std::function<void(Count)>& fn,
                  Count threads = 0);

/// One-shot chunked convenience; stays on the calling thread (no pool
/// construction at all) when the grain leaves a single chunk.
void parallel_for_chunked(Count n, Count min_grain,
                          const std::function<void(Count, Count)>& fn,
                          Count threads = 0);

}  // namespace mempart
