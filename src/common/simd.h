// mempart::simd — the repo's only window onto CPU vector instructions.
//
// The SoA fast path (sim/soa_kernels_*.cpp) runs the paper's
// add-and-conditional-subtract recurrence over W loop iterations at once;
// this header supplies (a) the runtime dispatch state — which lane width the
// process should use, detected via cpuid and overridable with the
// MEMPART_SIMD environment variable or set_tier() — and (b) thin int64 lane
// wrappers over SSE2 / AVX2 / NEON so the kernels are written once as a
// template over the lane type.
//
// This is deliberately the ONE file allowed to include vendor intrinsic
// headers; mempart_lint's simd-guard rule flags <immintrin.h> (and friends)
// anywhere else so ISA-specific code cannot leak past the abstraction.
//
// Wrapper contract (all types):
//   * lanes are int64_t, matching Count/Address;
//   * ge0_mask(d) returns all-ones lanes where d >= 0 — the conditional
//     subtract `if (v >= m) v -= m` becomes
//     `d = sub(add(v, inc), m); v = sub(t, and_(ge0_mask(d), m))`;
//   * shl1(c) computes int64{1} << c with the x86 SLLV convention: any
//     count outside [0, 64) yields 0 (never UB), so the conflict-scoring
//     kernel can run ahead of the engine's range assertion;
//   * gather(table, idx) is a table lookup per lane (hardware gather on
//     AVX2, scalar extraction elsewhere) used by the folded-bank pass;
//   * srl(a, count) is a LOGICAL right shift by one uniform count in
//     [0, 64) — bit extraction from the packed difference bitset
//     (core/bank_kernels_impl.h) treats lanes as unsigned words;
//   * mullo(a, b) is the low 64 bits of the unsigned product (SSE2/AVX2
//     synthesize it from 32x32 partial products; NEON has no 64-bit
//     vector multiply and spills) — the modular-inverse divisibility
//     probe only needs the product mod 2^64;
//   * leu_mask(a, b) returns all-ones lanes where a <= b as UNSIGNED
//     64-bit values (sign-bias + signed compare on AVX2, vcleq_u64 on
//     NEON, per-lane spill on SSE2).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.h"

#if defined(__x86_64__) || defined(_M_X64)
#define MEMPART_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define MEMPART_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace mempart::simd {

/// Dispatch tiers, narrowest first. kSse2 and kAvx2 exist only on x86-64
/// builds, kNeon only on AArch64; tier_supported() reports what the running
/// CPU (and the binary) can actually execute.
enum class Tier { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

/// Widest tier this binary + CPU pair can execute.
[[nodiscard]] bool tier_supported(Tier tier);

/// Supported tiers in ascending lane width (always starts with kScalar).
[[nodiscard]] std::vector<Tier> supported_tiers();

/// The tier the fast path dispatches to. Resolution order: the last
/// set_tier() call, else the MEMPART_SIMD environment variable
/// (scalar|sse2|avx2|neon|auto), else the widest supported tier. Requests
/// for an unsupported tier clamp down (avx2 -> sse2 -> scalar, neon ->
/// scalar); unknown env spellings throw InvalidArgument (parse_tier_env).
[[nodiscard]] Tier active_tier();

/// Programmatic override (tests, fuzzing, benches). Clamped like the env
/// variable; returns the tier actually installed.
Tier set_tier(Tier tier);

/// Lanes a tier processes per step: 1, 2, 4, 2.
[[nodiscard]] Count tier_lanes(Tier tier);

/// Lower-case tier name ("scalar", "sse2", "avx2", "neon").
[[nodiscard]] std::string_view tier_name(Tier tier);

/// Parses a tier name or "auto". Sets *is_auto for "auto"/unknown input.
[[nodiscard]] Tier tier_from_name(std::string_view name, bool* is_auto);

/// Strictly parses a MEMPART_SIMD value: returns the named tier, nullopt
/// for "auto", and throws InvalidArgument (listing the accepted spellings)
/// for anything else — a typo must not silently change the dispatch tier.
[[nodiscard]] std::optional<Tier> parse_tier_env(std::string_view value);

/// Widest lane count any tier uses; per-lane stride tables are sized by it.
inline constexpr Count kMaxLanes = 8;

/// RAII tier override for tests and the differential harness: installs
/// `tier` (clamped) and restores the previous active tier on destruction.
class TierOverride {
 public:
  explicit TierOverride(Tier tier) : previous_(active_tier()) {
    set_tier(tier);
  }
  ~TierOverride() { set_tier(previous_); }
  TierOverride(const TierOverride&) = delete;
  TierOverride& operator=(const TierOverride&) = delete;

 private:
  Tier previous_;
};

// ---------------------------------------------------------------------------
// Lane wrappers
// ---------------------------------------------------------------------------

/// Scalar "vector" of one int64 lane; the template baseline every kernel
/// falls back to and the reference the wider wrappers are tested against.
struct I64x1 {
  static constexpr Count kLanes = 1;
  std::int64_t v;

  static I64x1 broadcast(std::int64_t x) { return {x}; }
  static I64x1 load(const std::int64_t* p) { return {*p}; }
  void store(std::int64_t* p) const { *p = v; }
  static I64x1 add(I64x1 a, I64x1 b) { return {a.v + b.v}; }
  static I64x1 sub(I64x1 a, I64x1 b) { return {a.v - b.v}; }
  static I64x1 and_(I64x1 a, I64x1 b) { return {a.v & b.v}; }
  static I64x1 or_(I64x1 a, I64x1 b) { return {a.v | b.v}; }
  static I64x1 xor_(I64x1 a, I64x1 b) { return {a.v ^ b.v}; }
  static I64x1 ge0_mask(I64x1 d) { return {d.v >= 0 ? ~std::int64_t{0} : 0}; }
  static I64x1 srl(I64x1 a, int count) {
    return {static_cast<std::int64_t>(static_cast<std::uint64_t>(a.v) >>
                                      static_cast<unsigned>(count))};
  }
  static I64x1 mullo(I64x1 a, I64x1 b) {
    return {static_cast<std::int64_t>(static_cast<std::uint64_t>(a.v) *
                                      static_cast<std::uint64_t>(b.v))};
  }
  static I64x1 leu_mask(I64x1 a, I64x1 b) {
    return {static_cast<std::uint64_t>(a.v) <= static_cast<std::uint64_t>(b.v)
                ? ~std::int64_t{0}
                : 0};
  }
  static I64x1 shl1(I64x1 c) {
    return {static_cast<std::uint64_t>(c.v) < 64
                ? static_cast<std::int64_t>(std::uint64_t{1}
                                            << static_cast<std::uint64_t>(c.v))
                : 0};
  }
  static I64x1 gather(const std::int64_t* table, I64x1 idx) {
    return {table[idx.v]};
  }
  [[nodiscard]] std::uint32_t nonzero_mask() const { return v != 0 ? 1u : 0u; }
};

#if defined(MEMPART_SIMD_X86)

/// Two int64 lanes over SSE2 (baseline on x86-64). SSE2 has no 64-bit
/// compare, so ge0_mask replicates each lane's sign dword and arithmetic-
/// shifts it; shl1/gather/nonzero_mask go through a stack spill — the hot
/// generation kernel never calls them.
struct I64x2 {
  static constexpr Count kLanes = 2;
  __m128i v;

  static I64x2 broadcast(std::int64_t x) { return {_mm_set1_epi64x(x)}; }
  static I64x2 load(const std::int64_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::int64_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static I64x2 add(I64x2 a, I64x2 b) { return {_mm_add_epi64(a.v, b.v)}; }
  static I64x2 sub(I64x2 a, I64x2 b) { return {_mm_sub_epi64(a.v, b.v)}; }
  static I64x2 and_(I64x2 a, I64x2 b) { return {_mm_and_si128(a.v, b.v)}; }
  static I64x2 or_(I64x2 a, I64x2 b) { return {_mm_or_si128(a.v, b.v)}; }
  static I64x2 xor_(I64x2 a, I64x2 b) { return {_mm_xor_si128(a.v, b.v)}; }
  static I64x2 srl(I64x2 a, int count) {
    return {_mm_srl_epi64(a.v, _mm_cvtsi32_si128(count))};
  }
  static I64x2 mullo(I64x2 a, I64x2 b) {
    // SSE2 has no 64-bit multiply; build the low half from 32x32 partials:
    // lo(a)*lo(b) + ((hi(a)*lo(b) + lo(a)*hi(b)) << 32). The cross terms'
    // own high halves shift out of the 64-bit lane, so plain epu32
    // products suffice.
    const __m128i lo = _mm_mul_epu32(a.v, b.v);
    const __m128i cross =
        _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a.v, 32), b.v),
                      _mm_mul_epu32(a.v, _mm_srli_epi64(b.v, 32)));
    return {_mm_add_epi64(lo, _mm_slli_epi64(cross, 32))};
  }
  static I64x2 leu_mask(I64x2 a, I64x2 b) {
    // No 64-bit unsigned compare before SSE4.2; spill like shl1/gather.
    alignas(16) std::int64_t la[2];
    alignas(16) std::int64_t lb[2];
    a.store(la);
    b.store(lb);
    la[0] = I64x1::leu_mask({la[0]}, {lb[0]}).v;
    la[1] = I64x1::leu_mask({la[1]}, {lb[1]}).v;
    return load(la);
  }
  static I64x2 ge0_mask(I64x2 d) {
    const __m128i sign =
        _mm_srai_epi32(_mm_shuffle_epi32(d.v, 0xF5), 31);  // lt-zero mask
    return {_mm_xor_si128(sign, _mm_set1_epi32(-1))};
  }
  static I64x2 shl1(I64x2 c) {
    alignas(16) std::int64_t lanes[2];
    c.store(lanes);
    lanes[0] = I64x1::shl1({lanes[0]}).v;
    lanes[1] = I64x1::shl1({lanes[1]}).v;
    return load(lanes);
  }
  static I64x2 gather(const std::int64_t* table, I64x2 idx) {
    alignas(16) std::int64_t lanes[2];
    idx.store(lanes);
    lanes[0] = table[lanes[0]];
    lanes[1] = table[lanes[1]];
    return load(lanes);
  }
  [[nodiscard]] std::uint32_t nonzero_mask() const {
    alignas(16) std::int64_t lanes[2];
    store(lanes);
    return (lanes[0] != 0 ? 1u : 0u) | (lanes[1] != 0 ? 2u : 0u);
  }
};

#ifdef __AVX2__
/// Four int64 lanes over AVX2. Only visible in translation units compiled
/// with -mavx2 (sim/soa_kernels_avx2.cpp); runtime dispatch keeps these
/// instructions off CPUs that lack them.
struct I64x4 {
  static constexpr Count kLanes = 4;
  __m256i v;

  static I64x4 broadcast(std::int64_t x) { return {_mm256_set1_epi64x(x)}; }
  static I64x4 load(const std::int64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::int64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static I64x4 add(I64x4 a, I64x4 b) { return {_mm256_add_epi64(a.v, b.v)}; }
  static I64x4 sub(I64x4 a, I64x4 b) { return {_mm256_sub_epi64(a.v, b.v)}; }
  static I64x4 and_(I64x4 a, I64x4 b) { return {_mm256_and_si256(a.v, b.v)}; }
  static I64x4 or_(I64x4 a, I64x4 b) { return {_mm256_or_si256(a.v, b.v)}; }
  static I64x4 xor_(I64x4 a, I64x4 b) { return {_mm256_xor_si256(a.v, b.v)}; }
  static I64x4 srl(I64x4 a, int count) {
    return {_mm256_srl_epi64(a.v, _mm_cvtsi32_si128(count))};
  }
  static I64x4 mullo(I64x4 a, I64x4 b) {
    // Same 32x32 partial-product decomposition as the SSE2 wrapper
    // (_mm256_mullo_epi64 needs AVX-512DQ).
    const __m256i lo = _mm256_mul_epu32(a.v, b.v);
    const __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a.v, 32), b.v),
                         _mm256_mul_epu32(a.v, _mm256_srli_epi64(b.v, 32)));
    return {_mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32))};
  }
  static I64x4 leu_mask(I64x4 a, I64x4 b) {
    // a <=u b  ==  !(bias(a) >s bias(b)) with the sign bit flipped.
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<std::int64_t>(std::uint64_t{1} << 63));
    const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a.v, bias),
                                          _mm256_xor_si256(b.v, bias));
    return {_mm256_xor_si256(gt, _mm256_set1_epi64x(-1))};
  }
  static I64x4 ge0_mask(I64x4 d) {
    return {_mm256_cmpgt_epi64(d.v, _mm256_set1_epi64x(-1))};
  }
  static I64x4 shl1(I64x4 c) {
    // SLLV zeroes lanes whose (unsigned) count is >= 64, which is exactly
    // the contract shl1 promises.
    return {_mm256_sllv_epi64(_mm256_set1_epi64x(1), c.v)};
  }
  static I64x4 gather(const std::int64_t* table, I64x4 idx) {
    return {_mm256_i64gather_epi64(reinterpret_cast<const long long*>(table),
                                   idx.v, 8)};
  }
  [[nodiscard]] std::uint32_t nonzero_mask() const {
    const __m256i eq0 = _mm256_cmpeq_epi64(v, _mm256_setzero_si256());
    const auto zero_lanes = static_cast<std::uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(eq0)));
    return ~zero_lanes & 0xFu;
  }
};
#endif  // __AVX2__

#elif defined(MEMPART_SIMD_NEON)

/// Two int64 lanes over AArch64 NEON (always available there).
struct I64x2 {
  static constexpr Count kLanes = 2;
  int64x2_t v;

  static I64x2 broadcast(std::int64_t x) { return {vdupq_n_s64(x)}; }
  static I64x2 load(const std::int64_t* p) { return {vld1q_s64(p)}; }
  void store(std::int64_t* p) const { vst1q_s64(p, v); }
  static I64x2 add(I64x2 a, I64x2 b) { return {vaddq_s64(a.v, b.v)}; }
  static I64x2 sub(I64x2 a, I64x2 b) { return {vsubq_s64(a.v, b.v)}; }
  static I64x2 and_(I64x2 a, I64x2 b) { return {vandq_s64(a.v, b.v)}; }
  static I64x2 or_(I64x2 a, I64x2 b) { return {vorrq_s64(a.v, b.v)}; }
  static I64x2 xor_(I64x2 a, I64x2 b) { return {veorq_s64(a.v, b.v)}; }
  static I64x2 srl(I64x2 a, int count) {
    // NEON shifts by a vector of signed counts; negative = right, and the
    // u64 flavour makes it logical.
    return {vreinterpretq_s64_u64(
        vshlq_u64(vreinterpretq_u64_s64(a.v), vdupq_n_s64(-count)))};
  }
  static I64x2 mullo(I64x2 a, I64x2 b) {
    // No 64-bit vector multiply on NEON; spill like shl1/gather.
    alignas(16) std::int64_t la[2];
    alignas(16) std::int64_t lb[2];
    a.store(la);
    b.store(lb);
    la[0] = I64x1::mullo({la[0]}, {lb[0]}).v;
    la[1] = I64x1::mullo({la[1]}, {lb[1]}).v;
    return load(la);
  }
  static I64x2 leu_mask(I64x2 a, I64x2 b) {
    return {vreinterpretq_s64_u64(vcleq_u64(vreinterpretq_u64_s64(a.v),
                                            vreinterpretq_u64_s64(b.v)))};
  }
  static I64x2 ge0_mask(I64x2 d) {
    return {vreinterpretq_s64_u64(vcgeq_s64(d.v, vdupq_n_s64(0)))};
  }
  static I64x2 shl1(I64x2 c) {
    alignas(16) std::int64_t lanes[2];
    c.store(lanes);
    lanes[0] = I64x1::shl1({lanes[0]}).v;
    lanes[1] = I64x1::shl1({lanes[1]}).v;
    return load(lanes);
  }
  static I64x2 gather(const std::int64_t* table, I64x2 idx) {
    alignas(16) std::int64_t lanes[2];
    idx.store(lanes);
    lanes[0] = table[lanes[0]];
    lanes[1] = table[lanes[1]];
    return load(lanes);
  }
  [[nodiscard]] std::uint32_t nonzero_mask() const {
    alignas(16) std::int64_t lanes[2];
    store(lanes);
    return (lanes[0] != 0 ? 1u : 0u) | (lanes[1] != 0 ? 2u : 0u);
  }
};

#endif  // MEMPART_SIMD_X86 / MEMPART_SIMD_NEON

}  // namespace mempart::simd
