// Fundamental scalar types shared across the mempart libraries.
//
// All coordinates, extents and addresses are signed 64-bit. Memory arrays in
// the paper's evaluation reach 3840 x 2160 x 400 16-bit elements (~3.3 G
// elements), and intermediate products (padded sizes, linearised addresses,
// bit counts) overflow 32 bits easily, so a single wide signed type keeps the
// arithmetic honest and lets us detect negative/invalid values cheaply.
#pragma once

#include <cstdint>

namespace mempart {

/// Signed coordinate / offset in one array dimension.
using Coord = std::int64_t;

/// Count of elements, banks, cycles; always non-negative in valid states.
using Count = std::int64_t;

/// Linearised address or transform value (alpha . x can be large).
using Address = std::int64_t;

}  // namespace mempart
