// Checked environment-variable parsing for every MEMPART_* knob.
//
// Before this helper each subsystem hand-rolled its own strtol call and
// silently fell back to a default on garbage ("MEMPART_THREADS=abc"),
// negative, or overflowing values — exactly the misconfiguration a
// long-running `mempart serve` daemon must refuse to start under, because
// the operator would otherwise run production traffic on a silently wrong
// thread count or cache size. env_int/env_count parse strictly (the whole
// value must be a decimal integer inside the documented range) and throw
// InvalidArgument naming the variable and the offending text; only a
// genuinely unset (or empty) variable selects the fallback.
//
// validate_env() checks every integer MEMPART_* variable eagerly so CLI
// entry points can reject a bad environment at startup with one clear
// diagnostic instead of failing at first lazy use deep inside a solve.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.h"

namespace mempart {

/// Reads `name` as a strict decimal integer in [min_value, max_value].
/// Returns nullopt when the variable is unset or empty. Throws
/// InvalidArgument (naming the variable) on non-numeric text, trailing
/// characters, values outside the range, or 64-bit overflow.
[[nodiscard]] std::optional<std::int64_t> env_int(const char* name,
                                                  std::int64_t min_value,
                                                  std::int64_t max_value);

/// env_int specialised for Count-valued knobs: unset/empty returns
/// `fallback`, anything else must parse inside [min_value, max_value].
[[nodiscard]] Count env_count(const char* name, Count fallback,
                              Count min_value, Count max_value);

/// Documented ranges of the integer knobs (shared by their lazy readers and
/// validate_env so the two can never disagree).
inline constexpr Count kMaxEnvThreads = 4096;
inline constexpr Count kMaxEnvCacheCapacity = Count{1} << 31;
inline constexpr Count kMaxEnvCacheShards = Count{1} << 16;
inline constexpr Count kMaxEnvFlightCapacity = Count{1} << 24;

/// Eagerly validates every integer MEMPART_* variable (MEMPART_THREADS,
/// MEMPART_CACHE_CAPACITY, MEMPART_CACHE_SHARDS, MEMPART_FLIGHT_CAPACITY)
/// plus the MEMPART_SIMD tier spelling. Throws InvalidArgument on the first
/// bad value; call once at process startup.
void validate_env();

}  // namespace mempart
