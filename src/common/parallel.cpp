#include "common/parallel.h"

#include <algorithm>

#include "common/env.h"
#include "common/errors.h"

namespace mempart {
namespace {

std::atomic<Count> g_thread_override{0};

/// 0 = unset; anything set must be a valid positive thread count (garbage
/// or out-of-range values throw instead of silently running single-threaded).
Count env_thread_count() {
  return env_count("MEMPART_THREADS", 0, 1, kMaxEnvThreads);
}

}  // namespace

Count default_thread_count() {
  const Count override_value = g_thread_override.load(std::memory_order_relaxed);
  if (override_value > 0) return override_value;
  const Count env = env_thread_count();
  if (env > 0) return env;
  return std::max<Count>(1, static_cast<Count>(std::thread::hardware_concurrency()));
}

void set_default_thread_count(Count n) {
  MEMPART_REQUIRE(n >= 0, "set_default_thread_count: n must be >= 0");
  g_thread_override.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(Count threads) {
  const Count resolved = threads == 0 ? default_thread_count() : threads;
  MEMPART_REQUIRE(resolved >= 1, "ThreadPool: thread count must be >= 1");
  workers_.reserve(static_cast<size_t>(resolved - 1));
  for (Count i = 1; i < resolved; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_indices(const std::function<void(Count)>& fn, Count n) {
  for (;;) {
    const Count i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
      // Skip the remaining indices: drain the batch without more work.
      next_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  UniqueLock lock(mutex_);
  for (;;) {
    // Explicit wait loop (not the predicate overload): the predicate lambda
    // would read guarded members from a context the thread-safety analysis
    // treats as unlocked; this form keeps every guarded read visibly under
    // the capability.
    while (!stop_ && generation_ == seen) start_cv_.wait(lock);
    if (stop_) return;
    seen = generation_;
    const std::function<void(Count)>* fn = job_;
    const Count n = job_n_;
    lock.unlock();
    run_indices(*fn, n);
    lock.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(Count n, const std::function<void(Count)>& fn) {
  MEMPART_REQUIRE(n >= 0, "ThreadPool::parallel_for: n must be >= 0");
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (Count i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = static_cast<Count>(workers_.size());
    error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_indices(fn, n);
  UniqueLock lock(mutex_);
  while (active_ != 0) done_cv_.wait(lock);
  if (error_) std::rethrow_exception(error_);
}

void ThreadPool::parallel_for_chunked(
    Count n, Count min_grain, const std::function<void(Count, Count)>& fn) {
  MEMPART_REQUIRE(n >= 0, "ThreadPool::parallel_for_chunked: n must be >= 0");
  MEMPART_REQUIRE(min_grain >= 1,
                  "ThreadPool::parallel_for_chunked: min_grain must be >= 1");
  if (n == 0) return;
  // Enough chunks for the atomic cursor to self-balance uneven items (4 per
  // executor), but never chunks smaller than the grain — hence the floor
  // division: n/min_grain chunks of at least min_grain each (the remainder
  // spreads over them), or one inline chunk when n < min_grain.
  const Count by_grain = std::max<Count>(1, n / min_grain);
  const Count chunks = std::min(size() * 4, by_grain);
  if (workers_.empty() || chunks <= 1) {
    fn(0, n);
    return;
  }
  const Count base = n / chunks;
  const Count extra = n % chunks;
  parallel_for(chunks, [&](Count c) {
    const Count begin = c * base + std::min(c, extra);
    const Count end = begin + base + (c < extra ? 1 : 0);
    fn(begin, end);
  });
}

void parallel_for(Count n, const std::function<void(Count)>& fn,
                  Count threads) {
  const Count resolved = threads == 0 ? default_thread_count() : threads;
  if (resolved <= 1 || n <= 1) {
    MEMPART_REQUIRE(n >= 0, "parallel_for: n must be >= 0");
    for (Count i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(resolved, n));
  pool.parallel_for(n, fn);
}

void parallel_for_chunked(Count n, Count min_grain,
                          const std::function<void(Count, Count)>& fn,
                          Count threads) {
  MEMPART_REQUIRE(n >= 0, "parallel_for_chunked: n must be >= 0");
  MEMPART_REQUIRE(min_grain >= 1,
                  "parallel_for_chunked: min_grain must be >= 1");
  if (n == 0) return;
  const Count resolved = threads == 0 ? default_thread_count() : threads;
  // A sweep that fits in one grain never pays for pool construction.
  if (resolved <= 1 || n <= min_grain) {
    fn(0, n);
    return;
  }
  ThreadPool pool(std::min(resolved, n / min_grain));
  pool.parallel_for_chunked(n, min_grain, fn);
}

}  // namespace mempart
