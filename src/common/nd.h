// N-dimensional index and shape machinery.
//
// Definition 1 of the paper: a data element of an n-dimensional array X is an
// address vector x = (x0, ..., x_{n-1})^T with x_i in [0, w_i - 1]. NdShape
// models the extents (w_0, ..., w_{n-1}) and provides the canonical row-major
// linearisation used by the flat-memory substrate; NdIndex is the address
// vector. Dimension 0 is the slowest-varying (outermost) dimension and
// dimension n-1 the fastest-varying (innermost), matching the paper's
// convention that the intra-bank mapping only touches x_{n-1}.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/errors.h"
#include "common/types.h"

namespace mempart {

/// Address vector of an element, or an offset between elements.
using NdIndex = std::vector<Coord>;

/// Extents of a finite n-dimensional array (Definition 1).
class NdShape {
 public:
  NdShape() = default;

  /// Constructs from per-dimension extents; every extent must be positive.
  explicit NdShape(std::vector<Count> extents);

  /// Number of dimensions n.
  [[nodiscard]] int rank() const { return static_cast<int>(extents_.size()); }

  /// Extent w_d of dimension d.
  [[nodiscard]] Count extent(int d) const;

  /// All extents.
  [[nodiscard]] const std::vector<Count>& extents() const { return extents_; }

  /// Total element count W = prod(w_i). Throws on 64-bit overflow.
  [[nodiscard]] Count volume() const;

  /// True when `index` has matching rank and every coordinate is in range.
  [[nodiscard]] bool contains(const NdIndex& index) const;

  /// Row-major linear address of `index`; requires contains(index).
  [[nodiscard]] Address flatten(const NdIndex& index) const;

  /// Inverse of flatten(); requires addr in [0, volume()).
  [[nodiscard]] NdIndex unflatten(Address addr) const;

  /// Invokes `fn` for every index in lexicographic (row-major) order.
  void for_each(const std::function<void(const NdIndex&)>& fn) const;

  /// Renders as e.g. "640x480".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const NdShape&, const NdShape&) = default;

 private:
  std::vector<Count> extents_;
};

/// Renders an index as e.g. "(3, 4)".
[[nodiscard]] std::string to_string(const NdIndex& index);

/// Component-wise sum; both operands must have equal rank.
[[nodiscard]] NdIndex add(const NdIndex& a, const NdIndex& b);

/// Component-wise difference; both operands must have equal rank.
[[nodiscard]] NdIndex sub(const NdIndex& a, const NdIndex& b);

}  // namespace mempart
