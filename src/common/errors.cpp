#include "common/errors.h"

#include <sstream>

namespace mempart::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: " << message << " [" << expr << " at "
     << file << ':' << line << ']';
  throw InternalError(os.str());
}

}  // namespace mempart::detail
