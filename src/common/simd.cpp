#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/errors.h"

namespace mempart::simd {
namespace {

/// -1 means "not resolved yet"; active_tier() initialises lazily so the
/// MEMPART_SIMD environment variable is honoured however early the first
/// fast-path call happens.
std::atomic<int> g_active_tier{-1};

bool cpu_has(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
#if defined(MEMPART_SIMD_X86)
    case Tier::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(MEMPART_SIMD_NEON)
    case Tier::kNeon:
      return true;
#endif
    default:
      return false;
  }
}

/// Steps an unsupported request down the widest-to-narrowest ladder.
Tier clamp_to_supported(Tier tier) {
  if (tier == Tier::kAvx2 && !cpu_has(Tier::kAvx2)) tier = Tier::kSse2;
  if (tier == Tier::kSse2 && !cpu_has(Tier::kSse2)) tier = Tier::kScalar;
  if (tier == Tier::kNeon && !cpu_has(Tier::kNeon)) tier = Tier::kScalar;
  return tier;
}

Tier widest_supported() {
  if (cpu_has(Tier::kAvx2)) return Tier::kAvx2;
  if (cpu_has(Tier::kSse2)) return Tier::kSse2;
  if (cpu_has(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
}

Tier resolve_initial() {
  // getenv, not a cached copy: tests and the CI dispatch matrix rely on the
  // variable being read at first use of the fast path. parse_tier_env
  // throws on unknown spellings — a typo silently meaning "auto" would let
  // the dispatch matrix test the wrong tier.
  if (const char* env = std::getenv("MEMPART_SIMD")) {
    if (*env != '\0') {
      const std::optional<Tier> requested = parse_tier_env(env);
      if (requested.has_value()) return clamp_to_supported(*requested);
    }
  }
  return widest_supported();
}

}  // namespace

bool tier_supported(Tier tier) { return cpu_has(tier); }

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers{Tier::kScalar};
  for (const Tier t : {Tier::kSse2, Tier::kAvx2, Tier::kNeon}) {
    if (cpu_has(t)) tiers.push_back(t);
  }
  return tiers;
}

Tier active_tier() {
  int raw = g_active_tier.load(std::memory_order_acquire);
  if (raw < 0) {
    const Tier resolved = resolve_initial();
    raw = static_cast<int>(resolved);
    int expected = -1;
    if (!g_active_tier.compare_exchange_strong(expected, raw,
                                               std::memory_order_acq_rel)) {
      raw = expected;  // another thread resolved (or overrode) first
    }
  }
  return static_cast<Tier>(raw);
}

Tier set_tier(Tier tier) {
  const Tier installed = clamp_to_supported(tier);
  g_active_tier.store(static_cast<int>(installed), std::memory_order_release);
  return installed;
}

Count tier_lanes(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return 1;
    case Tier::kSse2:
      return 2;
    case Tier::kAvx2:
      return 4;
    case Tier::kNeon:
      return 2;
  }
  return 1;
}

std::string_view tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
  }
  return "scalar";
}

Tier tier_from_name(std::string_view name, bool* is_auto) {
  *is_auto = false;
  if (name == "scalar") return Tier::kScalar;
  if (name == "sse2") return Tier::kSse2;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "neon") return Tier::kNeon;
  // "auto" and unrecognised spellings both mean: detect. A typo silently
  // falling back to scalar would make the bench lie about the speedup.
  *is_auto = true;
  return Tier::kScalar;
}

std::optional<Tier> parse_tier_env(std::string_view value) {
  if (value == "auto") return std::nullopt;
  if (value == "scalar") return Tier::kScalar;
  if (value == "sse2") return Tier::kSse2;
  if (value == "avx2") return Tier::kAvx2;
  if (value == "neon") return Tier::kNeon;
  throw InvalidArgument("MEMPART_SIMD='" + std::string(value) +
                        "' is not a dispatch tier (expected scalar, sse2, "
                        "avx2, neon or auto)");
}

}  // namespace mempart::simd
