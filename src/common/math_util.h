// Small integer helpers used throughout the partitioning algorithms.
//
// The paper's formulas mix floor division (intra-bank offsets, Def. in §4.4),
// ceiling division (padding, bank folding F = ceil(Nf/Nmax)) and the
// mathematical modulo (bank index B(x) = (alpha . x) % N, which must be
// non-negative even for negative transform values when patterns are expressed
// relative to a centre). C++ '%' truncates toward zero, so we provide
// Euclidean variants explicitly.
#pragma once

#include <numeric>

#include "common/errors.h"
#include "common/types.h"

namespace mempart {

/// Ceiling division for a >= 0, b > 0.
constexpr Count ceil_div(Count a, Count b) {
  return (b > 0 && a >= 0) ? (a + b - 1) / b
                           : throw InvalidArgument("ceil_div: need a>=0, b>0");
}

/// Floor division (rounds toward negative infinity) for b > 0.
constexpr Count floor_div(Count a, Count b) {
  if (b <= 0) throw InvalidArgument("floor_div: need b>0");
  Count q = a / b;
  if ((a % b != 0) && (a < 0)) --q;
  return q;
}

/// Euclidean modulo: result always in [0, b) for b > 0.
constexpr Count euclid_mod(Count a, Count b) {
  if (b <= 0) throw InvalidArgument("euclid_mod: need b>0");
  Count r = a % b;
  return r < 0 ? r + b : r;
}

/// Rounds `a` up to the next multiple of `b` (a >= 0, b > 0).
constexpr Count round_up(Count a, Count b) { return ceil_div(a, b) * b; }

/// Multiplies two non-negative counts, throwing OverflowError on overflow.
constexpr Count checked_mul(Count a, Count b) {
  if (a < 0 || b < 0) throw InvalidArgument("checked_mul: negative operand");
  if (a != 0 && b > (INT64_MAX / a)) {
    throw OverflowError("checked_mul: 64-bit overflow");
  }
  return a * b;
}

/// Adds two non-negative counts, throwing OverflowError on overflow.
constexpr Count checked_add(Count a, Count b) {
  if (a < 0 || b < 0) throw InvalidArgument("checked_add: negative operand");
  if (a > INT64_MAX - b) throw OverflowError("checked_add: 64-bit overflow");
  return a + b;
}

/// Signed product with overflow detection: transform components and offsets
/// may both be negative (patterns expressed relative to a centre), so the
/// non-negative checked_mul does not apply on the alpha . x path.
constexpr Address checked_mul_signed(Address a, Address b) {
  Address out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw OverflowError("checked_mul_signed: 64-bit overflow");
  }
  return out;
}

/// Signed sum with overflow detection.
constexpr Address checked_add_signed(Address a, Address b) {
  Address out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw OverflowError("checked_add_signed: 64-bit overflow");
  }
  return out;
}

/// |a - b| for arbitrary signed values, throwing OverflowError when the
/// difference leaves the 64-bit range (values of opposite sign can span
/// nearly 2^65).
constexpr Count abs_diff_checked(Address a, Address b) {
  Address d = 0;
  if (__builtin_sub_overflow(a, b, &d) || d == INT64_MIN) {
    throw OverflowError("abs_diff_checked: 64-bit overflow");
  }
  return d < 0 ? -d : d;
}

/// Greatest common divisor of non-negative values.
constexpr Count gcd(Count a, Count b) { return std::gcd(a, b); }

}  // namespace mempart
