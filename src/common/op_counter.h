// Arithmetic-operation instrumentation.
//
// Table 1 of the paper compares the two solvers by the *amount of arithmetic
// operations* (additions, subtractions, multiplications, divisions, ...)
// executed while finding a partitioning solution. To reproduce that column we
// instrument the solvers with an explicit counter instead of guessing: each
// solver charges the operations it actually performs through OpCounter.
//
// The counter is thread-local so concurrent benchmark runs do not interfere.
// OpScope is the RAII entry point: it zeroes the active tally on construction
// and exposes the totals accumulated during its lifetime.
#pragma once

#include <cstdint>
#include <string>

namespace mempart {

/// Categories of counted operations, matching the paper's enumeration.
enum class OpKind : int {
  kAdd = 0,       ///< additions and subtractions
  kMul,           ///< multiplications
  kDiv,           ///< divisions and modulo reductions
  kCompare,       ///< value comparisons (max/min scans, conflict tests)
  kNumKinds,
};

/// Per-kind operation tallies.
struct OpTally {
  std::int64_t add = 0;
  std::int64_t mul = 0;
  std::int64_t div = 0;
  std::int64_t compare = 0;

  /// Total over arithmetic kinds (add+mul+div), the paper's headline count.
  [[nodiscard]] std::int64_t arithmetic() const { return add + mul + div; }

  /// Total including comparisons.
  [[nodiscard]] std::int64_t all() const { return arithmetic() + compare; }

  OpTally& operator+=(const OpTally& other);
  friend bool operator==(const OpTally&, const OpTally&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// Static facade over the thread-local active tally.
class OpCounter {
 public:
  /// Charges `n` operations of the given kind to the active scope (if any).
  static void charge(OpKind kind, std::int64_t n = 1) noexcept;

  /// True when an OpScope is active on this thread.
  static bool active() noexcept;
};

/// RAII measurement scope. Scopes nest; an inner scope's operations are also
/// charged to the outer scope when the inner scope is destroyed.
class OpScope {
 public:
  OpScope();
  ~OpScope();
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// Tally accumulated so far inside this scope.
  [[nodiscard]] const OpTally& tally() const { return tally_; }

 private:
  friend class OpCounter;
  OpTally tally_;
  OpScope* parent_;
};

}  // namespace mempart
