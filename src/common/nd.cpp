#include "common/nd.h"

#include <sstream>

#include "common/math_util.h"

namespace mempart {

NdShape::NdShape(std::vector<Count> extents) : extents_(std::move(extents)) {
  MEMPART_REQUIRE(!extents_.empty(), "NdShape: rank must be >= 1");
  for (Count w : extents_) {
    MEMPART_REQUIRE(w > 0, "NdShape: every extent must be positive");
  }
  // Validate that the volume is representable so flatten() cannot overflow.
  (void)volume();
}

Count NdShape::extent(int d) const {
  MEMPART_REQUIRE(d >= 0 && d < rank(), "NdShape::extent: dimension out of range");
  return extents_[static_cast<size_t>(d)];
}

Count NdShape::volume() const {
  Count v = 1;
  for (Count w : extents_) v = checked_mul(v, w);
  return v;
}

bool NdShape::contains(const NdIndex& index) const {
  if (static_cast<int>(index.size()) != rank()) return false;
  for (int d = 0; d < rank(); ++d) {
    const Coord x = index[static_cast<size_t>(d)];
    if (x < 0 || x >= extents_[static_cast<size_t>(d)]) return false;
  }
  return true;
}

Address NdShape::flatten(const NdIndex& index) const {
  MEMPART_REQUIRE(contains(index), "NdShape::flatten: index out of domain");
  Address addr = 0;
  for (int d = 0; d < rank(); ++d) {
    addr = addr * extents_[static_cast<size_t>(d)] + index[static_cast<size_t>(d)];
  }
  return addr;
}

NdIndex NdShape::unflatten(Address addr) const {
  MEMPART_REQUIRE(addr >= 0 && addr < volume(),
                  "NdShape::unflatten: address out of range");
  NdIndex index(static_cast<size_t>(rank()));
  for (int d = rank() - 1; d >= 0; --d) {
    const Count w = extents_[static_cast<size_t>(d)];
    index[static_cast<size_t>(d)] = addr % w;
    addr /= w;
  }
  return index;
}

void NdShape::for_each(const std::function<void(const NdIndex&)>& fn) const {
  NdIndex index(static_cast<size_t>(rank()), 0);
  while (true) {
    fn(index);
    int d = rank() - 1;
    for (; d >= 0; --d) {
      auto& x = index[static_cast<size_t>(d)];
      if (++x < extents_[static_cast<size_t>(d)]) break;
      x = 0;
    }
    if (d < 0) return;
  }
}

std::string NdShape::to_string() const {
  std::ostringstream os;
  for (size_t d = 0; d < extents_.size(); ++d) {
    if (d > 0) os << 'x';
    os << extents_[d];
  }
  return os.str();
}

std::string to_string(const NdIndex& index) {
  std::ostringstream os;
  os << '(';
  for (size_t d = 0; d < index.size(); ++d) {
    if (d > 0) os << ", ";
    os << index[d];
  }
  os << ')';
  return os.str();
}

NdIndex add(const NdIndex& a, const NdIndex& b) {
  MEMPART_REQUIRE(a.size() == b.size(), "add: rank mismatch");
  NdIndex out(a.size());
  for (size_t d = 0; d < a.size(); ++d) out[d] = a[d] + b[d];
  return out;
}

NdIndex sub(const NdIndex& a, const NdIndex& b) {
  MEMPART_REQUIRE(a.size() == b.size(), "sub: rank mismatch");
  NdIndex out(a.size());
  for (size_t d = 0; d < a.size(); ++d) out[d] = a[d] - b[d];
  return out;
}

}  // namespace mempart
