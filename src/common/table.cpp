#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mempart {

size_t TextTable::add_row() {
  rows_.emplace_back();
  return rows_.size() - 1;
}

TextTable& TextTable::cell(std::string text) {
  if (rows_.empty()) add_row();
  rows_.back().push_back(std::move(text));
  return *this;
}

TextTable& TextTable::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

TextTable& TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  if (rows_.back().empty()) {
    // An explicitly empty row would collide with the separator encoding.
    rows_.back().push_back("");
  }
  return *this;
}

TextTable& TextTable::separator() {
  rows_.emplace_back();  // empty row == separator
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::vector<size_t> widths;
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c >= widths.size()) widths.push_back(0);
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  for (const auto& r : rows_) {
    if (r.empty()) {
      os << std::string(total, '-') << '\n';
      continue;
    }
    for (size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << r[c];
    }
    os << '\n';
  }
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace mempart
