#include "common/math_util.h"

// All helpers are constexpr and defined in the header; this translation unit
// exists so the library has a stable archive member for the component and to
// host any future non-inline additions.
