#include "common/args.h"

#include <charconv>
#include <sstream>

#include "common/errors.h"

namespace mempart {

Count parse_count(const std::string& text, const std::string& what) {
  Count value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  MEMPART_REQUIRE(ec == std::errc{} && ptr == end,
                  what + ": expected an integer, got '" + text + "'");
  return value;
}

NdShape parse_shape(const std::string& text) {
  MEMPART_REQUIRE(!text.empty(), "parse_shape: empty shape text");
  std::vector<Count> extents;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t sep = text.find('x', start);
    const size_t stop = sep == std::string::npos ? text.size() : sep;
    extents.push_back(
        parse_count(text.substr(start, stop - start), "shape extent"));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return NdShape(std::move(extents));
}

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_int(const std::string& name, Count default_value,
                              const std::string& help) {
  MEMPART_REQUIRE(flags_.find(name) == flags_.end(),
                  "ArgParser: duplicate flag --" + name);
  flags_[name] = Flag{Kind::kInt, help, std::to_string(default_value), false};
  declaration_order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::add_string(const std::string& name,
                                 const std::string& default_value,
                                 const std::string& help) {
  MEMPART_REQUIRE(flags_.find(name) == flags_.end(),
                  "ArgParser: duplicate flag --" + name);
  flags_[name] = Flag{Kind::kString, help, default_value, false};
  declaration_order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::add_bool(const std::string& name,
                               const std::string& help) {
  MEMPART_REQUIRE(flags_.find(name) == flags_.end(),
                  "ArgParser: duplicate flag --" + name);
  flags_[name] = Flag{Kind::kBool, help, "", false};
  declaration_order_.push_back(name);
  return *this;
}

void ArgParser::parse(const std::vector<std::string>& args) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    const auto it = flags_.find(name);
    MEMPART_REQUIRE(it != flags_.end(), "unknown flag --" + name);
    Flag& flag = it->second;
    if (flag.kind == Kind::kBool) {
      MEMPART_REQUIRE(!inline_value.has_value(),
                      "flag --" + name + " takes no value");
      flag.bool_value = true;
      continue;
    }
    std::string value;
    if (inline_value.has_value()) {
      value = *inline_value;
    } else {
      MEMPART_REQUIRE(i + 1 < args.size(), "flag --" + name + " needs a value");
      value = args[++i];
    }
    if (flag.kind == Kind::kInt) {
      try {
        size_t used = 0;
        (void)std::stoll(value, &used);
        MEMPART_REQUIRE(used == value.size(), "trailing garbage");
      } catch (const std::exception&) {
        throw InvalidArgument("flag --" + name + " expects an integer, got '" +
                              value + "'");
      }
    }
    flag.value = value;
  }
}

ArgParser::Flag& ArgParser::find(const std::string& name, Kind kind) {
  const auto it = flags_.find(name);
  MEMPART_REQUIRE(it != flags_.end(), "ArgParser: undeclared flag --" + name);
  MEMPART_REQUIRE(it->second.kind == kind,
                  "ArgParser: type mismatch for --" + name);
  return it->second;
}

const ArgParser::Flag& ArgParser::find(const std::string& name,
                                       Kind kind) const {
  return const_cast<ArgParser*>(this)->find(name, kind);
}

Count ArgParser::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool ArgParser::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).bool_value;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags] [positionals]\n";
  if (!description_.empty()) os << description_ << '\n';
  os << "\nflags:\n";
  for (const std::string& name : declaration_order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name;
    switch (flag.kind) {
      case Kind::kInt: os << " <int>    (default " << flag.value << ')'; break;
      case Kind::kString:
        os << " <str>    (default \"" << flag.value << "\")";
        break;
      case Kind::kBool: os << "          (boolean)"; break;
    }
    os << "\n      " << flag.help << '\n';
  }
  return os.str();
}

}  // namespace mempart
