#include "common/op_counter.h"

#include <sstream>

namespace mempart {
namespace {

thread_local OpScope* g_active_scope = nullptr;

}  // namespace

OpTally& OpTally::operator+=(const OpTally& other) {
  add += other.add;
  mul += other.mul;
  div += other.div;
  compare += other.compare;
  return *this;
}

std::string OpTally::to_string() const {
  std::ostringstream os;
  os << "add=" << add << " mul=" << mul << " div=" << div
     << " cmp=" << compare << " (arith=" << arithmetic() << ')';
  return os.str();
}

void OpCounter::charge(OpKind kind, std::int64_t n) noexcept {
  OpScope* scope = g_active_scope;
  if (scope == nullptr) return;
  switch (kind) {
    case OpKind::kAdd: scope->tally_.add += n; break;
    case OpKind::kMul: scope->tally_.mul += n; break;
    case OpKind::kDiv: scope->tally_.div += n; break;
    case OpKind::kCompare: scope->tally_.compare += n; break;
    case OpKind::kNumKinds: break;
  }
}

bool OpCounter::active() noexcept { return g_active_scope != nullptr; }

OpScope::OpScope() : parent_(g_active_scope) { g_active_scope = this; }

OpScope::~OpScope() {
  g_active_scope = parent_;
  if (parent_ != nullptr) parent_->tally_ += tally_;
}

}  // namespace mempart
