// Clang Thread Safety Analysis capabilities for mempart's concurrency.
//
// Three subsystems are concurrent by design — common::ThreadPool, the
// mutex-striped SolveCache, and the obs registries — and until now their
// locking discipline was enforced only at runtime by the TSan CI job. The
// macros here attach Clang's static thread-safety capabilities
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) to that code so
// a missed lock acquisition is a *compile error* under
// `-DMEMPART_THREAD_SAFETY=ON` (Clang only; every macro expands to nothing
// elsewhere, so GCC builds are unaffected).
//
// The standard library's mutex types carry no capability attributes under
// libstdc++, so annotating call sites alone teaches the analysis nothing.
// Instead mempart code uses the annotated wrappers below:
//
//   Mutex       — a std::mutex declared as a capability
//   MutexLock   — std::lock_guard equivalent, a scoped capability
//   UniqueLock  — relockable scoped capability; BasicLockable, so it works
//                 with std::condition_variable_any for wait loops
//
// Members protected by a Mutex are declared with MEMPART_GUARDED_BY(m);
// internal helpers that expect the caller to hold a lock are declared with
// MEMPART_REQUIRES(m). See docs/STATIC_ANALYSIS.md for the full guide.
#pragma once

#include <mutex>

#if defined(__clang__)
#define MEMPART_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MEMPART_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability (e.g. a mutex wrapper).
#define MEMPART_CAPABILITY(x) MEMPART_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define MEMPART_SCOPED_CAPABILITY MEMPART_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a member is protected by the given capability.
#define MEMPART_GUARDED_BY(x) MEMPART_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the data *pointed to* by a member is protected.
#define MEMPART_PT_GUARDED_BY(x) MEMPART_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that a function may only be called holding the capability.
#define MEMPART_REQUIRES(...) \
  MEMPART_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the capability and does not release it.
#define MEMPART_ACQUIRE(...) \
  MEMPART_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the capability.
#define MEMPART_RELEASE(...) \
  MEMPART_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares that a function acquires the capability when it returns the
/// given value.
#define MEMPART_TRY_ACQUIRE(...) \
  MEMPART_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that a function must NOT be called holding the capability.
#define MEMPART_EXCLUDES(...) \
  MEMPART_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the capability.
#define MEMPART_RETURN_CAPABILITY(x) \
  MEMPART_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the discipline cannot be expressed.
#define MEMPART_NO_THREAD_SAFETY_ANALYSIS \
  MEMPART_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Asserts at analysis time that the capability is held (for code reached
/// only via paths that acquired it in ways the analysis cannot see).
#define MEMPART_ASSERT_CAPABILITY(x) \
  MEMPART_THREAD_ANNOTATION(assert_capability(x))

// ---------------------------------------------------------------------------
// Hot-path allocation discipline (checked by tools/analyze/mempart_analyze)
// ---------------------------------------------------------------------------
//
// The warm solve path promises zero heap traffic; until now that promise
// was enforced only dynamically (the alloc-counter tests pin the warm-path
// allocation count at zero). These annotations make the contract visible
// in source and statically auditable: mempart_analyze's `noalloc` rule
// walks the call graph from every MEMPART_NOALLOC function and reports any
// reachable allocation construct (operator new, make_unique/make_shared,
// growing-container calls) that is not fenced off behind a
// MEMPART_ALLOC_BOUNDARY.
//
// Place either macro at the *start* of the declaration (before the return
// type), on the header declaration or the definition — the analyzer
// propagates it to the other by qualified name. Under Clang the macros
// also emit an `annotate` attribute so AST-level tooling can see them;
// under other compilers they are documentation plus analyzer input.

#if defined(__clang__)
#define MEMPART_ALLOC_ANNOTATION(text) __attribute__((annotate(text)))
#else
#define MEMPART_ALLOC_ANNOTATION(text)  // no-op outside Clang
#endif

/// The transitive closure of this function must not allocate (up to
/// MEMPART_ALLOC_BOUNDARY fences). Apply to warm-path entry points.
#define MEMPART_NOALLOC MEMPART_ALLOC_ANNOTATION("mempart::noalloc")

/// Audited allocation fence: this function may allocate even when reached
/// from MEMPART_NOALLOC code — it is a deliberate cold path (cache miss,
/// first-touch growth) whose allocations are pinned by dedicated tests.
#define MEMPART_ALLOC_BOUNDARY MEMPART_ALLOC_ANNOTATION("mempart::alloc_boundary")

namespace mempart {

/// std::mutex declared as a Clang thread-safety capability.
class MEMPART_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MEMPART_ACQUIRE() { mutex_.lock(); }
  void unlock() MEMPART_RELEASE() { mutex_.unlock(); }
  bool try_lock() MEMPART_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock of a Mutex — std::lock_guard with capability annotations.
class MEMPART_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MEMPART_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MEMPART_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Relockable scoped lock. Satisfies BasicLockable, so it can be handed to
/// std::condition_variable_any::wait, which unlocks and relocks it
/// internally — from the analysis' point of view the capability stays held
/// across the wait, which matches how guarded members may be used around it.
class MEMPART_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) MEMPART_ACQUIRE(mutex)
      : mutex_(mutex), held_(true) {
    mutex_.lock();
  }
  ~UniqueLock() MEMPART_RELEASE() {
    if (held_) mutex_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() MEMPART_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  void unlock() MEMPART_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }

 private:
  Mutex& mutex_;
  bool held_;
};

}  // namespace mempart
