#include "check/config.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/errors.h"

namespace mempart::check {
namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

const char* strategy_name(ConstraintStrategy s) {
  return s == ConstraintStrategy::kFastFold ? "fast_fold" : "same_size";
}

const char* tail_name(TailPolicy t) {
  return t == TailPolicy::kPadded ? "padded" : "compact";
}

/// Minimal recursive-descent parser for the JSON subset to_json() emits:
/// objects, arrays, strings (with the escapes above), and signed integers.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: out.push_back(e);
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  std::int64_t parse_int() {
    skip_ws();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text_.c_str() + start, &end, 10);
    if (errno == ERANGE) fail("integer out of 64-bit range");
    return v;
  }

  std::uint64_t parse_uint() {
    skip_ws();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected unsigned integer");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text_.c_str() + start, &end, 10);
    if (errno == ERANGE) fail("integer out of 64-bit range");
    return v;
  }

  std::vector<std::int64_t> parse_int_array() {
    std::vector<std::int64_t> out;
    expect('[');
    if (try_consume(']')) return out;
    do {
      out.push_back(parse_int());
    } while (try_consume(','));
    expect(']');
    return out;
  }

  /// Fails unless only whitespace remains — a repro file with trailing
  /// garbage is more likely truncation or a bad merge than intent.
  void expect_end() {
    skip_ws();
    if (pos_ < text_.size()) fail("trailing content after document");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& why) {
    std::ostringstream os;
    os << "CheckConfig::from_json: " << why << " at byte " << pos_;
    throw InvalidArgument(os.str());
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string CheckConfig::to_json() const {
  std::ostringstream os;
  os << "{\n  \"offsets\": [";
  for (size_t i = 0; i < offsets.size(); ++i) {
    if (i > 0) os << ", ";
    os << '[';
    for (size_t d = 0; d < offsets[i].size(); ++d) {
      if (d > 0) os << ", ";
      os << offsets[i][d];
    }
    os << ']';
  }
  os << "],\n  \"shape\": [";
  for (size_t d = 0; d < shape.size(); ++d) {
    if (d > 0) os << ", ";
    os << shape[d];
  }
  os << "],\n  \"max_banks\": " << max_banks
     << ",\n  \"bank_bandwidth\": " << bank_bandwidth << ",\n  \"strategy\": \""
     << strategy_name(strategy) << "\",\n  \"tail\": \"" << tail_name(tail)
     << "\",\n  \"seed\": " << seed << ",\n  \"note\": ";
  append_escaped(os, note);
  os << "\n}\n";
  return os.str();
}

CheckConfig CheckConfig::from_json(const std::string& text) {
  Parser p(text);
  CheckConfig config;
  p.expect('{');
  if (!p.try_consume('}')) {
    do {
      const std::string key = p.parse_string();
      p.expect(':');
      if (key == "offsets") {
        p.expect('[');
        if (!p.try_consume(']')) {
          do {
            const auto coords = p.parse_int_array();
            config.offsets.emplace_back(coords.begin(), coords.end());
          } while (p.try_consume(','));
          p.expect(']');
        }
      } else if (key == "shape") {
        const auto extents = p.parse_int_array();
        config.shape.assign(extents.begin(), extents.end());
      } else if (key == "max_banks") {
        config.max_banks = p.parse_int();
      } else if (key == "bank_bandwidth") {
        config.bank_bandwidth = p.parse_int();
      } else if (key == "strategy") {
        const std::string v = p.parse_string();
        if (v == "fast_fold") {
          config.strategy = ConstraintStrategy::kFastFold;
        } else if (v == "same_size") {
          config.strategy = ConstraintStrategy::kSameSize;
        } else {
          p.fail("unknown strategy '" + v + "'");
        }
      } else if (key == "tail") {
        const std::string v = p.parse_string();
        if (v == "padded") {
          config.tail = TailPolicy::kPadded;
        } else if (v == "compact") {
          config.tail = TailPolicy::kCompact;
        } else {
          p.fail("unknown tail policy '" + v + "'");
        }
      } else if (key == "seed") {
        config.seed = p.parse_uint();
      } else if (key == "note") {
        config.note = p.parse_string();
      } else {
        p.fail("unknown key '" + key + "'");
      }
    } while (p.try_consume(','));
    p.expect('}');
  }
  p.expect_end();
  return config;
}

}  // namespace mempart::check
