#include "check/differential.h"

#include <algorithm>
#include <array>
#include <mutex>
#include <optional>
#include <sstream>

#include "baseline/ltb.h"
#include "baseline/ltb_mapping.h"
#include "check/oracle.h"
#include "common/errors.h"
#include "common/simd.h"
#include "core/partitioner.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_program.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/access_plan.h"
#include "sim/address_map.h"

namespace mempart::check {
namespace {

void diverge(DiffReport& report, std::string kind, std::string detail) {
  obs::count("check.divergences");
  report.divergences.push_back({std::move(kind), std::move(detail)});
}

/// True when the raw offsets are definitionally invalid: empty, ragged
/// ranks, or duplicates. These MUST make Pattern construction throw.
bool offsets_invalid(const std::vector<NdIndex>& offsets) {
  if (offsets.empty()) return true;
  const size_t rank = offsets.front().size();
  if (rank == 0) return true;
  for (const auto& o : offsets) {
    if (o.size() != rank) return true;
  }
  auto sorted = offsets;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

bool shape_invalid(const std::vector<Count>& shape) {
  return std::any_of(shape.begin(), shape.end(),
                     [](Count w) { return w <= 0; });
}

std::string stats_to_string(const sim::AccessStats& s) {
  std::ostringstream os;
  os << "{iters=" << s.iterations << " accesses=" << s.accesses
     << " cycles=" << s.cycles << " conflict=" << s.conflict_cycles
     << " worst=" << s.worst_group_cycles << '}';
  return os.str();
}

bool stats_equal(const sim::AccessStats& a, const sim::AccessStats& b) {
  return a.iterations == b.iterations && a.accesses == b.accesses &&
         a.cycles == b.cycles && a.conflict_cycles == b.conflict_cycles &&
         a.worst_group_cycles == b.worst_group_cycles &&
         a.bank_load == b.bank_load;
}

/// Replays every compiled row of `plan` against per-access virtual calls on
/// `map`; reports the first (bank, offset) disagreement.
void check_plan_against_map(const sim::AccessPlan& plan,
                            const sim::AddressMap& map, const Pattern& pattern,
                            const std::vector<sim::PlanLoop>& domain,
                            const std::string& label, DiffReport& report) {
  const auto& offsets = pattern.offsets();
  const size_t m = offsets.size();
  const Coord step = domain.back().step;
  const size_t inner = domain.size() - 1;
  bool done = false;
  plan.for_each_row([&](const NdIndex& row, std::span<const Count> banks,
                        std::span<const Address> addr) {
    if (done) return;
    const size_t groups = banks.size() / m;
    NdIndex iv = row;
    for (size_t g = 0; g < groups && !done; ++g) {
      for (size_t t = 0; t < m; ++t) {
        const NdIndex x = add(iv, offsets[t]);
        const Count want_bank = map.bank_of(x);
        const Address want_addr = map.offset_of(x);
        if (banks[g * m + t] != want_bank || addr[g * m + t] != want_addr) {
          std::ostringstream os;
          os << label << ": plan says (bank " << banks[g * m + t]
             << ", offset " << addr[g * m + t] << ") but map says (bank "
             << want_bank << ", offset " << want_addr << ") at iv="
             << to_string(iv) << " tap=" << to_string(offsets[t]);
          diverge(report, "plan-vs-map", os.str());
          done = true;
          return;
        }
      }
      iv[inner] += step;
    }
  });
}

/// Replays the SoA block walk under every SIMD tier this binary + CPU can
/// execute and demands bit-identity with the scalar row walk: same banks,
/// same offsets, in tap-major order. The row walk never dispatches to the
/// vector kernels, so it is the tier-independent reference.
void check_simd_block_walk(const sim::AccessPlan& plan,
                           const std::string& label, DiffReport& report) {
  const auto m = static_cast<size_t>(plan.taps());
  std::vector<Count> ref_banks;
  std::vector<Address> ref_addr;
  plan.for_each_row([&](const NdIndex&, std::span<const Count> banks,
                        std::span<const Address> addr) {
    const size_t groups = banks.size() / m;
    for (size_t t = 0; t < m; ++t) {
      for (size_t g = 0; g < groups; ++g) {
        ref_banks.push_back(banks[g * m + t]);
        ref_addr.push_back(addr[g * m + t]);
      }
    }
  });
  for (const simd::Tier tier : simd::supported_tiers()) {
    const simd::TierOverride guard(tier);
    size_t pos = 0;
    bool done = false;
    plan.for_each_row_block([&](const NdIndex& row,
                                const sim::AccessPlan::RowBlock& block) {
      if (done) return;
      for (size_t i = 0; i < block.banks.size(); ++i, ++pos) {
        if (pos >= ref_banks.size() || block.banks[i] != ref_banks[pos] ||
            block.offsets[i] != ref_addr[pos]) {
          std::ostringstream os;
          os << label << ": tier " << simd::tier_name(tier)
             << " block walk diverges from the scalar row walk at row "
             << to_string(row) << " plane index " << i;
          diverge(report, "simd-tier", os.str());
          done = true;
          return;
        }
      }
    });
    if (!done && pos != ref_banks.size()) {
      std::ostringstream os;
      os << label << ": tier " << simd::tier_name(tier) << " emitted " << pos
         << " accesses but the row walk emitted " << ref_banks.size();
      diverge(report, "simd-tier", os.str());
    }
  }
}

/// Oracle passes plus plan/engine cross-checks shared by the closed-form
/// mapping and the LTB baseline.
void check_mapping(const sim::AddressMap& map, const Pattern& pattern,
                   Count claimed_delta, bool delta_is_bound,
                   const std::string& label, DiffReport& report) {
  const NdShape& shape = map.array_shape();

  const BankFn bank_fn = [&](const std::vector<Coord>& x) {
    return map.bank_of(x);
  };
  const OffsetFn offset_fn = [&](const std::vector<Coord>& x) {
    return map.offset_of(x);
  };

  std::vector<std::vector<Coord>> raw_offsets(pattern.offsets().begin(),
                                              pattern.offsets().end());
  const ConflictReport conflicts =
      enumerate_conflicts(raw_offsets, shape.extents(), bank_fn);
  report.oracle_positions += conflicts.positions;
  if (conflicts.positions > 0) {
    const bool bad = delta_is_bound ? conflicts.delta_p > claimed_delta
                                    : conflicts.delta_p != claimed_delta;
    if (bad) {
      std::ostringstream os;
      os << label << ": oracle measured delta_P = " << conflicts.delta_p
         << " at s=" << to_string(conflicts.worst_position) << " but solver "
         << (delta_is_bound ? "bounds it by " : "claims exactly ")
         << claimed_delta;
      diverge(report, "delta-bound", os.str());
    }
  }

  std::vector<Count> capacity(static_cast<size_t>(map.num_banks()));
  for (Count b = 0; b < map.num_banks(); ++b) {
    capacity[static_cast<size_t>(b)] = map.bank_capacity(b);
  }
  const AddressReport addresses = enumerate_addresses(
      shape.extents(), map.num_banks(), bank_fn, offset_fn, capacity);
  if (!addresses.ok) {
    diverge(report, "address-uniqueness", label + ": " + addresses.violation);
  }

  // AccessPlan vs the virtual map, and fast vs reference simulation —
  // only meaningful when the pattern fits somewhere in the array.
  if (conflicts.positions > 0) {
    const loopnest::StencilProgram program(shape, pattern, "check");
    const auto domain = loopnest::plan_domain(program.loop_nest());
    const sim::AccessPlan plan(map, pattern, domain);
    check_plan_against_map(plan, map, pattern, domain, label, report);
    check_simd_block_walk(plan, label, report);

    // Cycle statistics must be bit-identical for every dispatch tier, not
    // just the ambient one: the SoA engine's bitmask scoring path and the
    // vector generation kernels both vary with the tier.
    const sim::AccessStats reference = loopnest::simulate(program, map);
    for (const simd::Tier tier : simd::supported_tiers()) {
      const simd::TierOverride guard(tier);
      const sim::AccessStats fast = loopnest::simulate_fast(program, map);
      if (!stats_equal(fast, reference)) {
        diverge(report, "fast-vs-reference",
                label + ": simulate_fast[" +
                    std::string(simd::tier_name(tier)) + "] " +
                    stats_to_string(fast) + " != simulate " +
                    stats_to_string(reference));
      }
    }
  }
}

/// Field-by-field comparison of two solutions of the same request; returns
/// an empty string on agreement. ops are excluded deliberately — a cache
/// hit honestly performs (and reports) less arithmetic than a full solve.
std::string solution_mismatch(const PartitionSolution& a,
                              const PartitionSolution& b) {
  std::ostringstream os;
  if (a.transform.alpha() != b.transform.alpha()) {
    os << "alpha " << a.transform.to_string() << " != "
       << b.transform.to_string();
  } else if (a.search.num_banks != b.search.num_banks ||
             a.search.max_difference != b.search.max_difference ||
             a.search.rejected_candidates != b.search.rejected_candidates) {
    os << "search (Nf " << a.search.num_banks << ", M "
       << a.search.max_difference << ") != (Nf " << b.search.num_banks
       << ", M " << b.search.max_difference << ")";
  } else if (a.constraint.num_banks != b.constraint.num_banks ||
             a.constraint.fold_factor != b.constraint.fold_factor ||
             a.constraint.delta_ii != b.constraint.delta_ii ||
             a.constraint.strategy != b.constraint.strategy ||
             a.constraint.sweep != b.constraint.sweep) {
    os << "constraint (Nc " << a.constraint.num_banks << ", F "
       << a.constraint.fold_factor << ", delta " << a.constraint.delta_ii
       << ") != (Nc " << b.constraint.num_banks << ", F "
       << b.constraint.fold_factor << ", delta " << b.constraint.delta_ii
       << ")";
  } else if (a.transformed != b.transformed) {
    os << "transformed values differ";
  } else if (a.pattern_banks != b.pattern_banks) {
    os << "pattern banks differ";
  } else if (a.bank_bandwidth != b.bank_bandwidth) {
    os << "bank_bandwidth differs";
  } else if (a.mapping.has_value() != b.mapping.has_value()) {
    os << "mapping presence differs";
  } else if (a.mapping.has_value() &&
             (a.mapping->total_capacity() != b.mapping->total_capacity() ||
              a.mapping->storage_overhead_elements() !=
                  b.mapping->storage_overhead_elements())) {
    os << "mapping capacity " << a.mapping->total_capacity() << "/overhead "
       << a.mapping->storage_overhead_elements() << " != "
       << b.mapping->total_capacity() << "/"
       << b.mapping->storage_overhead_elements();
  }
  return os.str();
}

void run_matrix(const CheckConfig& config, DiffReport& report) {
  // ---- Rejection contracts -------------------------------------------------
  const bool must_reject_pattern = offsets_invalid(config.offsets);
  std::optional<Pattern> pattern;
  try {
    pattern.emplace(config.offsets, "check");
  } catch (const Error& e) {
    if (!must_reject_pattern) throw;  // surprising but clean: clean_reject
    report.clean_reject = true;
    report.reject_reason = e.what();
    return;
  }
  if (must_reject_pattern) {
    diverge(report, "missing-rejection",
            "Pattern accepted definitionally invalid offsets (duplicates, "
            "ragged ranks, or empty set)");
    return;
  }

  const bool must_reject_shape = shape_invalid(config.shape);
  std::optional<NdShape> shape;
  if (!config.shape.empty()) {
    try {
      shape.emplace(config.shape);
    } catch (const Error& e) {
      if (!must_reject_shape) throw;
      report.clean_reject = true;
      report.reject_reason = e.what();
      return;
    }
    if (must_reject_shape) {
      diverge(report, "missing-rejection",
              "NdShape accepted a non-positive extent");
      return;
    }
    if (shape->rank() != pattern->rank()) shape.reset();
  }

  // ---- Closed-form solve ---------------------------------------------------
  const Count volume =
      shape ? bounded_volume(shape->extents(), kExhaustiveVolumeLimit) : 0;
  report.exhaustive = shape.has_value() && volume >= 0;

  PartitionRequest request;
  request.pattern = *pattern;
  if (shape && report.exhaustive) request.array_shape = *shape;
  request.max_banks = config.max_banks;
  request.bank_bandwidth = config.bank_bandwidth;
  request.strategy = config.strategy;
  request.tail = config.tail;
  const PartitionSolution solution = Partitioner::solve(request);

  // ---- Cache path vs direct solve -----------------------------------------
  // The same request through the batch API and a shared solve cache must
  // reproduce the direct solution field for field. The cache is deliberately
  // tiny so a fuzz run keeps evicting and re-solving, exercising hit, miss
  // and eviction paths alike; the second (warm) solve pins the hit path.
  {
    static SolveCache cache(/*capacity=*/64, /*shards=*/4);
    static Partitioner cached(&cache);
    static Mutex mutex;
    const MutexLock lock(mutex);
    BatchOptions options;
    options.threads = 1;
    const std::array<PartitionRequest, 1> batch{request};
    const auto batched = cached.solve_many_collect(batch, options);
    if (!batched.front().ok()) {
      diverge(report, "cache-vs-direct",
              "direct solve succeeded but solve_many rejected the request: " +
                  batched.front().error);
      return;
    }
    std::string mismatch = solution_mismatch(*batched.front().solution,
                                             solution);
    if (!mismatch.empty()) {
      diverge(report, "cache-vs-direct", "solve_many (miss path): " + mismatch);
      return;
    }
    const PartitionSolution warm = cached.solve_cached(request);
    mismatch = solution_mismatch(warm, solution);
    if (!mismatch.empty()) {
      diverge(report, "cache-vs-direct", "warm hit: " + mismatch);
      return;
    }
  }

  // ---- Solution-internal claims -------------------------------------------
  if (solution.num_banks() < 1) {
    diverge(report, "bogus-banks",
            "solver returned num_banks = " +
                std::to_string(solution.num_banks()));
    return;
  }
  for (Count b : solution.pattern_banks) {
    if (b < 0 || b >= solution.num_banks()) {
      diverge(report, "bogus-banks",
              "pattern bank " + std::to_string(b) + " outside [0, " +
                  std::to_string(solution.num_banks()) + ")");
      return;
    }
  }
  if (solution.delta_ii() == 0) {
    // Zero delta_P claims all m accesses hit distinct banks.
    auto banks = solution.pattern_banks;
    std::sort(banks.begin(), banks.end());
    if (std::adjacent_find(banks.begin(), banks.end()) != banks.end()) {
      diverge(report, "pattern-banks",
              "delta_P = 0 claimed but two pattern offsets share a bank");
    }
  }

  // ---- Oracle + plan/engine passes over the concrete array ----------------
  const bool delta_is_bound = solution.constraint.fold_factor > 1;
  if (solution.mapping.has_value()) {
    const sim::CoreAddressMap map(*solution.mapping);
    check_mapping(map, *pattern, solution.delta_ii(), delta_is_bound,
                  "closed-form", report);

    // Storage accounting: total capacity must be the sum of the banks and
    // never smaller than the element count.
    Count sum = 0;
    for (Count b = 0; b < map.num_banks(); ++b) sum += map.bank_capacity(b);
    if (sum != solution.mapping->total_capacity()) {
      diverge(report, "capacity-sum",
              "sum of bank capacities " + std::to_string(sum) +
                  " != total_capacity " +
                  std::to_string(solution.mapping->total_capacity()));
    }
    if (solution.mapping->storage_overhead_elements() < 0) {
      diverge(report, "negative-overhead",
              "storage overhead " +
                  std::to_string(solution.mapping->storage_overhead_elements()) +
                  " < 0: capacity below the element count");
    }
  }

  // ---- LTB baseline cross-check -------------------------------------------
  // The exhaustive search is exponential in rank, so only small instances
  // are compared; its N is minimal over ALL linear transforms, so it can
  // never need more banks than the closed-form N_f.
  if (pattern->rank() <= 2 && pattern->size() <= 9) {
    baseline::LtbOptions ltb_options;
    ltb_options.max_banks = 64;
    std::optional<baseline::LtbSolution> ltb;
    try {
      ltb = baseline::ltb_solve(*pattern, ltb_options);
    } catch (const Error&) {
      // No solution within the cap: not comparable, not a divergence.
    }
    if (ltb.has_value()) {
      if (ltb->num_banks > solution.search.num_banks) {
        diverge(report, "ltb-vs-closed-form",
                "exhaustive LTB needed " + std::to_string(ltb->num_banks) +
                    " banks but closed-form N_f is " +
                    std::to_string(solution.search.num_banks));
      }
      if (shape && report.exhaustive) {
        std::optional<baseline::LtbMapping> ltb_mapping;
        try {
          ltb_mapping.emplace(*shape, ltb->transform, ltb->num_banks);
        } catch (const Error&) {
          // Searched alpha failed LtbMapping's injectivity precondition —
          // a documented rejection, not a divergence.
        }
        if (ltb_mapping.has_value()) {
          const sim::LtbAddressMap ltb_map(*ltb_mapping);
          check_mapping(ltb_map, *pattern, /*claimed_delta=*/0,
                        /*delta_is_bound=*/false, "ltb", report);
        }
      }
    }
  }
}

}  // namespace

DiffReport run_config(const CheckConfig& config) {
  obs::Span span("check.run_config");
  DiffReport report;
  try {
    run_matrix(config, report);
  } catch (const Error& e) {
    report.clean_reject = true;
    report.reject_reason = e.what();
  } catch (const std::exception& e) {
    diverge(report, "crash",
            std::string("non-mempart exception escaped: ") + e.what());
  } catch (...) {
    diverge(report, "crash", "unknown exception escaped");
  }
  obs::count("check.configs");
  if (report.clean_reject) obs::count("check.clean_rejects");
  span.arg("divergences", static_cast<Count>(report.divergences.size()));
  return report;
}

}  // namespace mempart::check
