// Fuzzing orchestrator: generate -> differential -> shrink -> repro.
//
// Each iteration draws a config from the seeded generator, runs the full
// differential matrix, and — on divergence — minimises the config with the
// shrinking reducer and writes a structured JSON repro (config + observed
// divergences) for triage and corpus check-in. Progress and outcomes flow
// into the obs metrics registry under "check.fuzz.*".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/config.h"
#include "check/differential.h"
#include "check/generator.h"

namespace mempart::check {

/// Controls one fuzzing run.
struct FuzzOptions {
  std::uint64_t seed = 1;       ///< generator seed; same seed = same run
  Count iters = 1000;           ///< configs to draw
  std::string repro_dir = ".";  ///< where repro JSON files are written
  bool shrink = true;           ///< minimise failing configs before writing
  GeneratorOptions generator;   ///< shape of the configs drawn
};

/// What one run did.
struct FuzzSummary {
  Count iters_run = 0;
  Count ok = 0;             ///< configs with an empty divergence list
  Count clean_rejects = 0;  ///< configs the library rejected with an Error
  Count divergences = 0;    ///< configs with at least one divergence
  std::vector<std::string> repro_paths;  ///< one JSON file per divergence
  /// Flight-recorder dumps written next to each repro (Chrome-trace JSON of
  /// the events leading up to the divergence). Empty when the recorder is
  /// disabled (MEMPART_FLIGHT_CAPACITY=0).
  std::vector<std::string> flight_paths;

  [[nodiscard]] bool clean() const { return divergences == 0; }
};

/// Serialises a failing config with its divergences as a repro document.
/// The "config" object round-trips through CheckConfig::from_json.
[[nodiscard]] std::string repro_json(const CheckConfig& config,
                                     const DiffReport& report);

/// Extracts the embedded config from a repro document produced by
/// repro_json() (also accepts a bare config document).
[[nodiscard]] CheckConfig config_from_repro(const std::string& text);

/// Runs the fuzzer. Throws InvalidArgument on unusable options (iters < 1);
/// filesystem errors while writing repros surface as InvalidState.
[[nodiscard]] FuzzSummary run_fuzz(const FuzzOptions& options);

}  // namespace mempart::check
