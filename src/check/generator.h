// Seeded random generation of CheckConfigs.
//
// The generator's job is adversarial coverage, not realism: alongside
// well-formed stencil-like patterns it deliberately emits the degenerate
// shapes the solver must reject or trivially solve — single-tap patterns,
// duplicate offsets, collinear taps, zero extents, and extents large enough
// to push alpha_j products and alpha . x dot products past 64 bits.
#pragma once

#include "check/config.h"
#include "common/random.h"

namespace mempart::check {

/// Knobs for generate_config. Defaults match what the fuzzer uses.
struct GeneratorOptions {
  int max_rank = 4;                ///< dimensions drawn from [1, max_rank]
  Count max_taps = 12;             ///< pattern size m drawn from [1, max_taps]
  Count max_extent_slack = 24;     ///< extent = bounding box + [0, slack]
  double degenerate_rate = 0.12;   ///< chance of a deliberately bad config
  double overflow_rate = 0.05;     ///< chance of overflow-provoking extents
};

/// Draws one configuration. Deterministic in `rng`'s state; records the
/// class of config drawn in the note field for triage.
[[nodiscard]] CheckConfig generate_config(Rng& rng,
                                          const GeneratorOptions& options = {});

}  // namespace mempart::check
