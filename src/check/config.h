// One differential-check configuration: everything needed to reproduce a
// single solver/simulator cross-check, serialisable to and from JSON so a
// fuzz failure can be replayed byte-for-byte (`mempart check --repro f.json`)
// and checked in as a seed-corpus regression.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/nd.h"
#include "common/types.h"
#include "core/bank_constraint.h"
#include "core/bank_mapping.h"

namespace mempart::check {

/// Plain-data description of one partitioning problem instance plus the
/// solver options to exercise. Deliberately NOT built on Pattern/NdShape so
/// that invalid inputs (duplicate offsets, zero extents, ragged ranks) are
/// representable — probing how the library rejects them is the point.
struct CheckConfig {
  std::vector<NdIndex> offsets;     ///< pattern offsets, possibly degenerate
  std::vector<Count> shape;         ///< array extents; empty = pattern-only
  Count max_banks = 0;              ///< N_max, 0 = unconstrained
  Count bank_bandwidth = 1;         ///< ports per bank B
  ConstraintStrategy strategy = ConstraintStrategy::kFastFold;
  TailPolicy tail = TailPolicy::kPadded;
  std::uint64_t seed = 0;           ///< generator seed (provenance only)
  std::string note;                 ///< free-form provenance / triage hint

  [[nodiscard]] std::string to_json() const;

  /// Parses a config previously produced by to_json() (or hand-written in
  /// the same schema). Throws InvalidArgument on malformed input.
  static CheckConfig from_json(const std::string& text);

  friend bool operator==(const CheckConfig&, const CheckConfig&) = default;
};

}  // namespace mempart::check
