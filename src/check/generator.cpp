#include "check/generator.h"

#include <algorithm>
#include <set>

#include "common/math_util.h"

namespace mempart::check {
namespace {

/// Distinct random offsets with coordinates in [-reach, reach].
std::vector<NdIndex> random_offsets(Rng& rng, int rank, Count taps,
                                    Count reach) {
  std::set<NdIndex> unique;
  // Bounded attempts: a tiny coordinate box may hold fewer than `taps`
  // distinct points, in which case we keep what we found.
  for (int attempt = 0; attempt < 64 * taps && std::ssize(unique) < taps;
       ++attempt) {
    NdIndex o(static_cast<size_t>(rank));
    for (auto& c : o) c = rng.uniform(-reach, reach);
    unique.insert(std::move(o));
  }
  return {unique.begin(), unique.end()};
}

/// Collinear taps: o_i = base + i * step. Exercises difference sets Q whose
/// elements are all multiples of |alpha . step|.
std::vector<NdIndex> collinear_offsets(Rng& rng, int rank, Count taps) {
  NdIndex base(static_cast<size_t>(rank)), step(static_cast<size_t>(rank));
  for (auto& c : base) c = rng.uniform(-2, 2);
  bool nonzero = false;
  for (auto& c : step) {
    c = rng.uniform(-2, 2);
    nonzero = nonzero || c != 0;
  }
  if (!nonzero) step[0] = 1;
  std::vector<NdIndex> offsets;
  for (Count i = 0; i < taps; ++i) {
    NdIndex o = base;
    for (size_t d = 0; d < o.size(); ++d) o[d] += i * step[static_cast<size_t>(d)];
    offsets.push_back(std::move(o));
  }
  return offsets;
}

}  // namespace

CheckConfig generate_config(Rng& rng, const GeneratorOptions& options) {
  CheckConfig config;
  const int rank = static_cast<int>(rng.uniform(1, options.max_rank));
  const Count taps = rng.uniform(1, options.max_taps);

  const bool degenerate = rng.chance(options.degenerate_rate);
  const bool overflow = !degenerate && rng.chance(options.overflow_rate);

  if (degenerate) {
    switch (rng.uniform(0, 3)) {
      case 0: {  // single tap
        config.offsets = random_offsets(rng, rank, 1, 3);
        config.note = "degenerate:single-tap";
        break;
      }
      case 1: {  // duplicate offsets — Pattern must reject
        auto offsets = random_offsets(rng, rank, std::max<Count>(taps, 2), 3);
        offsets.push_back(offsets.front());
        config.offsets = std::move(offsets);
        config.note = "degenerate:duplicate-offsets";
        break;
      }
      case 2: {  // zero extent — NdShape must reject
        config.offsets = random_offsets(rng, rank, taps, 3);
        config.note = "degenerate:zero-extent";
        break;
      }
      default: {  // collinear taps
        config.offsets = collinear_offsets(rng, rank, std::max<Count>(taps, 3));
        config.note = "degenerate:collinear";
        break;
      }
    }
  } else if (overflow) {
    // Extents and offsets sized so alpha_j suffix products or alpha . x
    // dot products leave 64 bits. Exercised for structured-error behaviour,
    // never enumerated.
    config.offsets = random_offsets(rng, rank, std::min<Count>(taps, 4), 2);
    for (auto& o : config.offsets) {
      for (auto& c : o) c *= rng.uniform(1, Count{1} << 20);
    }
    config.note = "overflow:huge-offsets";
    if (rng.chance(0.5)) {
      config.note = "overflow:huge-extents";
      for (auto& o : config.offsets) {
        for (auto& c : o) c = euclid_mod(c, 5) - 2;
      }
    }
  } else {
    switch (rng.uniform(0, 2)) {
      case 0:
        config.offsets = random_offsets(rng, rank, taps,
                                        rng.uniform(1, 4));
        config.note = "random:box-reach";
        break;
      case 1:
        config.offsets = collinear_offsets(rng, rank, std::max<Count>(taps, 2));
        config.note = "random:collinear";
        break;
      default:
        // Sparse, wide taps: large pairwise differences at small m.
        config.offsets = random_offsets(rng, rank, std::min<Count>(taps, 6),
                                        rng.uniform(5, 40));
        config.note = "random:sparse-wide";
        break;
    }
  }
  if (config.offsets.empty()) {
    config.offsets.push_back(NdIndex(static_cast<size_t>(rank), 0));
  }

  // Shape: bounding box of the offsets plus slack, clamped so the oracle's
  // exhaustive passes stay bounded. Overflow configs get astronomical
  // extents instead; zero-extent configs null one dimension.
  config.shape.assign(static_cast<size_t>(rank), 1);
  for (int d = 0; d < rank; ++d) {
    Coord lo = config.offsets[0][static_cast<size_t>(d)];
    Coord hi = lo;
    for (const auto& o : config.offsets) {
      lo = std::min(lo, o[static_cast<size_t>(d)]);
      hi = std::max(hi, o[static_cast<size_t>(d)]);
    }
    const Count bb = hi - lo + 1;
    config.shape[static_cast<size_t>(d)] =
        bb + rng.uniform(0, options.max_extent_slack);
  }
  if (config.note == "overflow:huge-extents") {
    for (auto& w : config.shape) w = rng.uniform(Count{1} << 40, Count{1} << 60);
  }
  if (config.note == "degenerate:zero-extent") {
    config.shape[static_cast<size_t>(rng.uniform(0, rank - 1))] = 0;
  }
  // Occasionally drop the shape entirely: pattern-only solve.
  if (rng.chance(0.1)) config.shape.clear();

  config.max_banks = rng.chance(0.4) ? rng.uniform(1, 2 * taps + 2) : 0;
  config.bank_bandwidth = rng.chance(0.2) ? rng.uniform(2, 4) : 1;
  config.strategy = rng.chance(0.5) ? ConstraintStrategy::kFastFold
                                    : ConstraintStrategy::kSameSize;
  config.tail = rng.chance(0.3) ? TailPolicy::kCompact : TailPolicy::kPadded;
  return config;
}

}  // namespace mempart::check
