#include "check/oracle.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "common/errors.h"

namespace mempart::check {
namespace {

/// Advances an odometer over [lo_d, hi_d] boxes; returns false on wrap.
/// Deliberately local: the oracle must not lean on NdShape::for_each or any
/// other iteration helper the code under test also uses.
bool advance(std::vector<Coord>& idx, const std::vector<Coord>& lo,
             const std::vector<Coord>& hi) {
  for (size_t d = idx.size(); d-- > 0;) {
    if (idx[d] < hi[d]) {
      ++idx[d];
      return true;
    }
    idx[d] = lo[d];
  }
  return false;
}

std::string render(const std::vector<Coord>& idx) {
  std::ostringstream os;
  os << '(';
  for (size_t d = 0; d < idx.size(); ++d) {
    if (d > 0) os << ", ";
    os << idx[d];
  }
  os << ')';
  return os.str();
}

}  // namespace

Count bounded_volume(const std::vector<Count>& extents, Count limit) {
  MEMPART_REQUIRE(limit >= 1, "bounded_volume: limit must be >= 1");
  Count volume = 1;
  for (Count w : extents) {
    if (w <= 0) return 0;
    // volume * w > limit, tested without overflow.
    if (volume > limit / w) return -1;
    volume *= w;
  }
  return volume;
}

ConflictReport enumerate_conflicts(
    const std::vector<std::vector<Coord>>& offsets,
    const std::vector<Count>& extents, const BankFn& bank_of) {
  MEMPART_REQUIRE(!offsets.empty(), "enumerate_conflicts: no offsets");
  const size_t rank = extents.size();
  for (const auto& o : offsets) {
    MEMPART_REQUIRE(o.size() == rank, "enumerate_conflicts: rank mismatch");
  }

  // Anchor bounds: s + delta in [0, w) for every offset, i.e.
  // s in [-min_d, w_d - 1 - max_d] per dimension.
  std::vector<Coord> lo(rank), hi(rank);
  for (size_t d = 0; d < rank; ++d) {
    Coord min_o = offsets[0][d];
    Coord max_o = offsets[0][d];
    for (const auto& o : offsets) {
      min_o = std::min(min_o, o[d]);
      max_o = std::max(max_o, o[d]);
    }
    lo[d] = -min_o;
    hi[d] = extents[d] - 1 - max_o;
  }

  ConflictReport report;
  for (size_t d = 0; d < rank; ++d) {
    if (lo[d] > hi[d]) return report;  // pattern never fits: zero positions
  }

  std::vector<Coord> s = lo;
  std::vector<Coord> element(rank);
  std::vector<Count> banks(offsets.size());
  do {
    ++report.positions;
    for (size_t i = 0; i < offsets.size(); ++i) {
      for (size_t d = 0; d < rank; ++d) element[d] = s[d] + offsets[i][d];
      banks[i] = bank_of(element);
    }
    // Worst multiplicity by sorting the m bank ids (m is small).
    std::sort(banks.begin(), banks.end());
    Count worst = 1;
    Count run = 1;
    for (size_t i = 1; i < banks.size(); ++i) {
      run = banks[i] == banks[i - 1] ? run + 1 : 1;
      worst = std::max(worst, run);
    }
    if (worst - 1 > report.delta_p) {
      report.delta_p = worst - 1;
      report.worst_position = s;
    }
  } while (advance(s, lo, hi));
  return report;
}

AddressReport enumerate_addresses(const std::vector<Count>& extents,
                                  Count num_banks, const BankFn& bank_of,
                                  const OffsetFn& offset_of,
                                  const std::vector<Count>& capacity) {
  AddressReport report;
  const size_t rank = extents.size();
  std::vector<Coord> lo(rank, 0), hi(rank);
  for (size_t d = 0; d < rank; ++d) {
    if (extents[d] <= 0) return report;  // empty domain: vacuously unique
    hi[d] = extents[d] - 1;
  }

  std::set<std::pair<Count, Address>> seen;
  std::vector<Coord> x = lo;
  do {
    ++report.elements;
    const Count bank = bank_of(x);
    const Address offset = offset_of(x);
    if (bank < 0 || bank >= num_banks) {
      report.ok = false;
      report.violation = "bank " + std::to_string(bank) + " out of [0, " +
                         std::to_string(num_banks) + ") at " + render(x);
      return report;
    }
    if (offset < 0 ||
        (!capacity.empty() && offset >= capacity[static_cast<size_t>(bank)])) {
      report.ok = false;
      report.violation =
          "offset " + std::to_string(offset) + " outside bank " +
          std::to_string(bank) + "'s capacity at " + render(x);
      return report;
    }
    if (!seen.emplace(bank, offset).second) {
      report.ok = false;
      report.violation = "(bank " + std::to_string(bank) + ", offset " +
                         std::to_string(offset) + ") reused at " + render(x);
      return report;
    }
  } while (advance(x, lo, hi));
  return report;
}

}  // namespace mempart::check
