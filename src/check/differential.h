// Differential harness: one CheckConfig in, a list of divergences out.
//
// The matrix it cross-checks:
//
//   closed-form solve  vs  brute-force oracle   (delta_P claim, bank range,
//                                                address uniqueness)
//   folded / same-size vs  their delta_P bounds (F-1 bound, sweep value)
//   closed-form        vs  LTB baseline         (exhaustive N is minimal
//                                                over linear transforms, so
//                                                N_ltb <= N_f must hold)
//   sim::AccessPlan    vs  AccessEngine::issue  (per-access (bank, offset)
//                                                pairs, whole-run stats)
//   loopnest::simulate_fast vs loopnest::simulate (bit-for-bit statistics)
//   storage accounting vs  capacity sums        (total = sum of banks,
//                                                overhead = total - W)
//
// A clean mempart::Error is a legitimate outcome for degenerate or
// overflow-provoking configs and is reported as `clean_reject`, with one
// exception: definitionally invalid inputs (duplicate offsets, zero
// extents) MUST be rejected — accepting them is itself a divergence. Any
// non-mempart exception is a divergence of kind "crash".
#pragma once

#include <string>
#include <vector>

#include "check/config.h"

namespace mempart::check {

/// One disagreement between two parties of the matrix.
struct Divergence {
  std::string kind;    ///< stable slug, e.g. "delta-bound", "plan-vs-engine"
  std::string detail;  ///< human-readable specifics for triage
};

/// Everything run_config() determined about one configuration.
struct DiffReport {
  bool clean_reject = false;   ///< library rejected the config with an Error
  std::string reject_reason;   ///< what() of that Error
  Count oracle_positions = 0;  ///< anchors the conflict oracle enumerated
  bool exhaustive = false;     ///< oracle enumeration ran (volume in bounds)
  std::vector<Divergence> divergences;

  [[nodiscard]] bool diverged() const { return !divergences.empty(); }
};

/// Volume cap above which the oracle's O(volume) passes are skipped and the
/// config only exercises solver/rejection paths.
inline constexpr Count kExhaustiveVolumeLimit = Count{1} << 16;

/// Runs the full differential matrix over one configuration.
[[nodiscard]] DiffReport run_config(const CheckConfig& config);

}  // namespace mempart::check
