#include "check/fuzzer.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "check/shrink.h"
#include "common/errors.h"
#include "common/simd.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::check {
namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

/// Extracts the value of the top-level "config" key by brace matching
/// (string-aware). Returns the whole text when the key is absent, so bare
/// config documents replay too.
std::string extract_config_object(const std::string& text) {
  const size_t key = text.find("\"config\"");
  if (key == std::string::npos) return text;
  size_t pos = text.find('{', key);
  MEMPART_REQUIRE(pos != std::string::npos,
                  "config_from_repro: \"config\" key has no object value");
  int depth = 0;
  bool in_string = false;
  for (size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) return text.substr(pos, i - pos + 1);
    }
  }
  throw InvalidArgument("config_from_repro: unbalanced braces in repro");
}

}  // namespace

std::string repro_json(const CheckConfig& config, const DiffReport& report) {
  std::ostringstream os;
  os << "{\n\"schema\": \"mempart-check-repro-v1\",\n\"config\": "
     << config.to_json() << ",\n\"exhaustive\": "
     << (report.exhaustive ? "true" : "false")
     << ",\n\"oracle_positions\": " << report.oracle_positions
     << ",\n\"divergences\": [";
  for (size_t i = 0; i < report.divergences.size(); ++i) {
    if (i > 0) os << ',';
    os << "\n  {\"kind\": ";
    append_escaped(os, report.divergences[i].kind);
    os << ", \"detail\": ";
    append_escaped(os, report.divergences[i].detail);
    os << '}';
  }
  os << "\n]\n}\n";
  return os.str();
}

CheckConfig config_from_repro(const std::string& text) {
  return CheckConfig::from_json(extract_config_object(text));
}

FuzzSummary run_fuzz(const FuzzOptions& options) {
  MEMPART_REQUIRE(options.iters >= 1, "run_fuzz: iters must be >= 1");
  obs::Span span("check.fuzz");
  span.arg("iters", options.iters).arg("seed",
                                       static_cast<Count>(options.seed));

  Rng rng(options.seed);
  FuzzSummary summary;
  // Randomise the ambient SIMD dispatch tier per iteration so the fuzz
  // corpus exercises every generation/scoring kernel, not just the widest
  // one this host supports. (run_config's simd leg additionally sweeps all
  // tiers deterministically; this varies which tier the rest of the
  // pipeline — solver, convolution, stats — runs under.)
  const simd::TierOverride ambient_tier(simd::active_tier());
  const std::vector<simd::Tier> tiers = simd::supported_tiers();
  for (Count iter = 0; iter < options.iters; ++iter) {
    simd::set_tier(tiers[static_cast<size_t>(
        rng.uniform(0, static_cast<Count>(tiers.size()) - 1))]);
    CheckConfig config = generate_config(rng, options.generator);
    config.seed = options.seed;
    DiffReport report = run_config(config);
    ++summary.iters_run;
    obs::count("check.fuzz.iterations");

    if (report.diverged()) {
      ++summary.divergences;
      obs::count("check.fuzz.divergences");
      if (options.shrink) {
        // Preserve the first divergence kind while minimising: a shrink
        // that trades one bug for a different one would poison triage.
        const std::string kind = report.divergences.front().kind;
        const FailurePredicate predicate = [&kind](const CheckConfig& c) {
          const DiffReport r = run_config(c);
          return std::any_of(
              r.divergences.begin(), r.divergences.end(),
              [&kind](const Divergence& d) { return d.kind == kind; });
        };
        config = shrink_config(config, predicate);
        report = run_config(config);
      }
      std::ostringstream name;
      name << options.repro_dir << "/repro_" << options.seed << '_' << iter
           << ".json";
      std::ofstream out(name.str());
      MEMPART_REQUIRE(out.good(),
                      "run_fuzz: cannot open repro file for writing: " +
                          name.str());
      out << repro_json(config, report);
      out.close();
      if (!out.good()) {
        throw InvalidState("run_fuzz: failed writing repro: " + name.str());
      }
      summary.repro_paths.push_back(name.str());
      // The flight recorder holds the trace of exactly this divergence (the
      // re-run after shrinking is the last thing it saw). Dump it next to
      // the repro so triage gets a timeline, not just the end state.
      if (obs::flight_enabled()) {
        std::ostringstream flight_name;
        flight_name << options.repro_dir << "/repro_" << options.seed << '_'
                    << iter << "_flight.json";
        if (obs::flight_dump_to_file(flight_name.str())) {
          summary.flight_paths.push_back(flight_name.str());
        }
      }
    } else if (report.clean_reject) {
      ++summary.clean_rejects;
      obs::count("check.fuzz.clean_rejects");
    } else {
      ++summary.ok;
      obs::count("check.fuzz.ok");
    }
  }
  span.arg("divergences", summary.divergences)
      .arg("clean_rejects", summary.clean_rejects);
  obs::gauge("check.fuzz.last_run.divergences",
             static_cast<double>(summary.divergences));
  return summary;
}

}  // namespace mempart::check
