// Brute-force conflict and address oracle.
//
// Checks the two guarantees of Problem 1 straight from their definitions,
// sharing no code with the solver it judges:
//
//  * bank distinctness / delta_P (Definition 4): enumerate every position s
//    at which all m pattern elements s + Delta(i) lie inside the domain and
//    histogram the banks the mapping assigns them. delta_P is the worst
//    per-position multiplicity minus one; a conflict-free mapping has 0.
//  * address uniqueness (constraint 1): enumerate every element x of the
//    domain and record the (bank, offset) pair; any pair seen twice, any
//    bank outside [0, N) or any offset outside [0, capacity(bank)) is a
//    violation.
//
// The mapping under test enters only through std::function callbacks, so
// the same oracle judges the closed-form mapping, the LTB baseline, a
// compiled AccessPlan row, or a deliberately broken scratch mapping.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace mempart::check {

/// Bank / offset resolvers for the mapping under test. The index argument
/// is a plain coordinate vector (not validated by the oracle).
using BankFn = std::function<Count(const std::vector<Coord>&)>;
using OffsetFn = std::function<Address(const std::vector<Coord>&)>;

/// Outcome of a conflict enumeration.
struct ConflictReport {
  Count positions = 0;   ///< anchor positions enumerated
  Count delta_p = 0;     ///< worst per-position bank multiplicity - 1
  std::vector<Coord> worst_position;  ///< an anchor attaining delta_p
  [[nodiscard]] bool conflict_free() const { return delta_p == 0; }
};

/// Outcome of an address-uniqueness enumeration.
struct AddressReport {
  bool ok = true;
  Count elements = 0;      ///< domain elements enumerated
  std::string violation;   ///< description of the first violation (ok=false)
};

/// Enumerates every anchor s with all s + offsets[i] inside the `extents`
/// box and reports the worst bank multiplicity. `extents` must be positive
/// and the offsets non-empty with uniform rank; the domain is [0, w_d) per
/// dimension. Cost O(volume * m); use bounded shapes.
[[nodiscard]] ConflictReport enumerate_conflicts(
    const std::vector<std::vector<Coord>>& offsets,
    const std::vector<Count>& extents, const BankFn& bank_of);

/// Enumerates every element of the `extents` box and checks that (bank,
/// offset) pairs are unique, banks lie in [0, num_banks) and offsets in
/// [0, capacity[bank]). Pass an empty `capacity` to skip the bound check.
[[nodiscard]] AddressReport enumerate_addresses(
    const std::vector<Count>& extents, Count num_banks, const BankFn& bank_of,
    const OffsetFn& offset_of, const std::vector<Count>& capacity);

/// Volume of the extents box, computed with division-based overflow tests;
/// returns 0 when any extent is non-positive and -1 when the volume exceeds
/// `limit` (used to keep the oracle's O(volume) passes bounded).
[[nodiscard]] Count bounded_volume(const std::vector<Count>& extents,
                                   Count limit);

}  // namespace mempart::check
