#include "check/shrink.h"

#include <algorithm>

#include "common/errors.h"
#include "obs/trace.h"

namespace mempart::check {
namespace {

/// Extents of the offsets' bounding box per dimension (1 when no offsets).
std::vector<Count> bounding_box(const std::vector<NdIndex>& offsets) {
  if (offsets.empty()) return {};
  std::vector<Count> bb(offsets.front().size(), 1);
  for (size_t d = 0; d < bb.size(); ++d) {
    Coord lo = offsets.front()[d];
    Coord hi = lo;
    for (const auto& o : offsets) {
      lo = std::min(lo, o[d]);
      hi = std::max(hi, o[d]);
    }
    bb[d] = hi - lo + 1;
  }
  return bb;
}

/// Candidate moves, coarse first. Each returns the set of next configs to
/// try; the caller keeps the first that still fails.
std::vector<CheckConfig> moves(const CheckConfig& c) {
  std::vector<CheckConfig> out;

  // Drop one tap (never below one).
  if (c.offsets.size() > 1) {
    for (size_t i = 0; i < c.offsets.size(); ++i) {
      CheckConfig next = c;
      next.offsets.erase(next.offsets.begin() + static_cast<long>(i));
      out.push_back(std::move(next));
    }
  }

  // Drop one whole dimension: project both taps and shape.
  if (!c.offsets.empty() && c.offsets.front().size() > 1) {
    const size_t rank = c.offsets.front().size();
    for (size_t d = 0; d < rank; ++d) {
      CheckConfig next = c;
      for (auto& o : next.offsets) o.erase(o.begin() + static_cast<long>(d));
      if (next.shape.size() == rank) {
        next.shape.erase(next.shape.begin() + static_cast<long>(d));
      }
      out.push_back(std::move(next));
    }
  }

  // Halve each extent's slack over the pattern's bounding box.
  const auto bb = bounding_box(c.offsets);
  if (c.shape.size() == bb.size()) {
    for (size_t d = 0; d < c.shape.size(); ++d) {
      const Count slack = c.shape[d] - bb[d];
      if (slack > 0) {
        CheckConfig next = c;
        next.shape[d] = bb[d] + slack / 2;
        out.push_back(std::move(next));
      }
    }
  }

  // Pull tap coordinates toward zero (halving keeps sign, converges fast).
  for (size_t i = 0; i < c.offsets.size(); ++i) {
    for (size_t d = 0; d < c.offsets[i].size(); ++d) {
      if (c.offsets[i][d] != 0) {
        CheckConfig next = c;
        next.offsets[i][d] /= 2;
        out.push_back(std::move(next));
      }
    }
  }

  // Reset solver knobs to their defaults one at a time.
  if (c.max_banks != 0) {
    CheckConfig next = c;
    next.max_banks = 0;
    out.push_back(std::move(next));
  }
  if (c.bank_bandwidth != 1) {
    CheckConfig next = c;
    next.bank_bandwidth = 1;
    out.push_back(std::move(next));
  }
  if (c.tail != TailPolicy::kPadded) {
    CheckConfig next = c;
    next.tail = TailPolicy::kPadded;
    out.push_back(std::move(next));
  }
  if (c.strategy != ConstraintStrategy::kFastFold) {
    CheckConfig next = c;
    next.strategy = ConstraintStrategy::kFastFold;
    out.push_back(std::move(next));
  }
  return out;
}

}  // namespace

CheckConfig shrink_config(const CheckConfig& failing,
                          const FailurePredicate& still_fails,
                          Count max_attempts, ShrinkStats* stats) {
  MEMPART_REQUIRE(still_fails(failing),
                  "shrink_config: input config does not fail the predicate");
  obs::Span span("check.shrink");
  ShrinkStats local;
  CheckConfig current = failing;
  bool progressed = true;
  while (progressed && local.attempts < max_attempts) {
    progressed = false;
    ++local.rounds;
    for (CheckConfig& candidate : moves(current)) {
      if (local.attempts >= max_attempts) break;
      ++local.attempts;
      // The predicate re-runs the differential matrix; any escape from it
      // (predicates are expected to swallow library errors themselves)
      // conservatively counts as "does not fail".
      bool fails = false;
      try {
        fails = still_fails(candidate);
      } catch (...) {
        fails = false;
      }
      if (fails) {
        current = std::move(candidate);
        ++local.accepted;
        progressed = true;
        break;  // restart the move list from the smaller config
      }
    }
  }
  span.arg("attempts", local.attempts).arg("accepted", local.accepted);
  if (stats != nullptr) *stats = local;
  return current;
}

}  // namespace mempart::check
