// Greedy config minimiser for fuzz failures.
//
// Given a diverging CheckConfig and a predicate "does this still diverge?",
// repeatedly applies shrinking moves — drop a tap, shrink an extent toward
// the pattern's bounding box, drop a whole dimension, pull tap coordinates
// toward zero, reset solver knobs to defaults — keeping a move only when
// the predicate still holds. Runs to a fixpoint, so the emitted repro is
// 1-minimal with respect to these moves: no single remaining move can be
// applied without losing the failure.
#pragma once

#include <functional>

#include "check/config.h"

namespace mempart::check {

/// Returns true when the config still exhibits the failure being chased.
using FailurePredicate = std::function<bool(const CheckConfig&)>;

/// Statistics of one shrink run.
struct ShrinkStats {
  Count attempts = 0;   ///< candidate configs evaluated
  Count accepted = 0;   ///< moves that kept the failure
  Count rounds = 0;     ///< fixpoint iterations
};

/// Minimises `failing` under `still_fails`. `still_fails(failing)` must be
/// true on entry; the result also satisfies it. `max_attempts` bounds the
/// number of predicate evaluations (each may re-run the whole differential
/// matrix).
[[nodiscard]] CheckConfig shrink_config(const CheckConfig& failing,
                                        const FailurePredicate& still_fails,
                                        Count max_attempts = 400,
                                        ShrinkStats* stats = nullptr);

}  // namespace mempart::check
