#include "pattern/pattern_io.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/errors.h"

namespace mempart {

Pattern parse_pattern_2d(const std::string& art, std::string name) {
  std::vector<NdIndex> offsets;
  Coord row = 0;
  Coord col = 0;
  for (char ch : art) {
    switch (ch) {
      case '\n':
        ++row;
        col = 0;
        continue;
      case '#':
      case 'X':
      case 'x':
      case '1':
        offsets.push_back({row, col});
        break;
      case '.':
      case ' ':
      case '0':
      case '_':
        break;
      default:
        throw InvalidArgument(std::string("parse_pattern_2d: unexpected character '") +
                              ch + "'");
    }
    ++col;
  }
  MEMPART_REQUIRE(!offsets.empty(), "parse_pattern_2d: no elements marked");
  return Pattern(std::move(offsets), std::move(name)).normalized();
}

std::string render_pattern_2d(const Pattern& pattern) {
  MEMPART_REQUIRE(pattern.rank() == 2, "render_pattern_2d: pattern must be 2-D");
  const Pattern norm = pattern.normalized();
  const Count rows = norm.extent(0);
  const Count cols = norm.extent(1);
  std::ostringstream os;
  for (Coord r = 0; r < rows; ++r) {
    for (Coord c = 0; c < cols; ++c) {
      os << (norm.contains({r, c}) ? '#' : '.');
    }
    os << '\n';
  }
  return os.str();
}

std::string render_bank_map(
    Count rows, Count cols,
    const std::function<Count(const NdIndex&)>& bank_of) {
  MEMPART_REQUIRE(rows > 0 && cols > 0, "render_bank_map: empty window");
  std::vector<std::vector<Count>> grid(static_cast<size_t>(rows));
  Count widest = 0;
  for (Coord r = 0; r < rows; ++r) {
    auto& line = grid[static_cast<size_t>(r)];
    line.reserve(static_cast<size_t>(cols));
    for (Coord c = 0; c < cols; ++c) {
      const Count b = bank_of({r, c});
      line.push_back(b);
      widest = std::max(widest, b);
    }
  }
  int width = 1;
  for (Count v = widest; v >= 10; v /= 10) ++width;
  std::ostringstream os;
  for (const auto& line : grid) {
    for (size_t c = 0; c < line.size(); ++c) {
      if (c > 0) os << ' ';
      std::string s = std::to_string(line[c]);
      os << std::string(static_cast<size_t>(width) - s.size(), ' ') << s;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace mempart
