#include "pattern/pattern.h"

#include <algorithm>
#include <sstream>

#include "common/errors.h"
#include "common/math_util.h"

namespace mempart {

Pattern::Pattern(std::vector<NdIndex> offsets, std::string name)
    : offsets_(std::move(offsets)), name_(std::move(name)) {
  MEMPART_REQUIRE(!offsets_.empty(), "Pattern: must contain at least one offset");
  rank_ = static_cast<int>(offsets_.front().size());
  MEMPART_REQUIRE(rank_ >= 1, "Pattern: offsets must have rank >= 1");
  for (const NdIndex& d : offsets_) {
    MEMPART_REQUIRE(static_cast<int>(d.size()) == rank_,
                    "Pattern: all offsets must have equal rank");
  }
  std::sort(offsets_.begin(), offsets_.end());
  const auto dup = std::adjacent_find(offsets_.begin(), offsets_.end());
  MEMPART_REQUIRE(dup == offsets_.end(), "Pattern: duplicate offsets");
}

Coord Pattern::min_coord(int d) const {
  MEMPART_REQUIRE(d >= 0 && d < rank_, "Pattern::min_coord: bad dimension");
  Coord lo = offsets_.front()[static_cast<size_t>(d)];
  for (const NdIndex& o : offsets_) lo = std::min(lo, o[static_cast<size_t>(d)]);
  return lo;
}

Coord Pattern::max_coord(int d) const {
  MEMPART_REQUIRE(d >= 0 && d < rank_, "Pattern::max_coord: bad dimension");
  Coord hi = offsets_.front()[static_cast<size_t>(d)];
  for (const NdIndex& o : offsets_) hi = std::max(hi, o[static_cast<size_t>(d)]);
  return hi;
}

Count Pattern::extent(int d) const {
  // max - min + 1 can exceed 64 bits when offsets straddle the extremes of
  // the Coord range (e.g. INT64_MIN and INT64_MAX in the same dimension).
  return checked_add(abs_diff_checked(max_coord(d), min_coord(d)), 1);
}

NdShape Pattern::bounding_box() const {
  std::vector<Count> extents(static_cast<size_t>(rank_));
  for (int d = 0; d < rank_; ++d) extents[static_cast<size_t>(d)] = extent(d);
  return NdShape(extents);
}

bool Pattern::contains(const NdIndex& offset) const {
  return std::binary_search(offsets_.begin(), offsets_.end(), offset);
}

Pattern Pattern::normalized() const {
  NdIndex shift(static_cast<size_t>(rank_));
  for (int d = 0; d < rank_; ++d) shift[static_cast<size_t>(d)] = -min_coord(d);
  return translated(shift);
}

Pattern Pattern::translated(const NdIndex& shift) const {
  MEMPART_REQUIRE(static_cast<int>(shift.size()) == rank_,
                  "Pattern::translated: shift rank mismatch");
  std::vector<NdIndex> moved;
  moved.reserve(offsets_.size());
  for (const NdIndex& o : offsets_) moved.push_back(add(o, shift));
  return Pattern(std::move(moved), name_);
}

std::vector<NdIndex> Pattern::at(const NdIndex& s) const {
  MEMPART_REQUIRE(static_cast<int>(s.size()) == rank_,
                  "Pattern::at: position rank mismatch");
  std::vector<NdIndex> elems;
  elems.reserve(offsets_.size());
  for (const NdIndex& o : offsets_) elems.push_back(add(s, o));
  return elems;
}

bool Pattern::fits_within(const NdShape& domain, const NdIndex& s) const {
  if (domain.rank() != rank_) return false;
  for (const NdIndex& e : at(s)) {
    if (!domain.contains(e)) return false;
  }
  return true;
}

std::string Pattern::to_string() const {
  std::ostringstream os;
  os << (name_.empty() ? std::string("pattern") : name_) << "{m=" << size()
     << ", n=" << rank_ << ": ";
  for (size_t i = 0; i < offsets_.size(); ++i) {
    if (i > 0) os << ' ';
    os << mempart::to_string(offsets_[i]);
  }
  os << '}';
  return os.str();
}

}  // namespace mempart
