#include "pattern/canonical.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"

namespace mempart {

Canonicalizer::View Canonicalizer::run(const Pattern& pattern,
                                       bool allow_permutation) {
  const int n = pattern.rank();
  const size_t un = static_cast<size_t>(n);
  const auto& offsets = pattern.offsets();
  const Count m = pattern.size();

  // Per-dimension bounds in one pass. Charged like LinearTransform::derive's
  // extent scans: two compares per offset per dim, plus the +1 and the
  // subtraction forming each extent.
  mins_.resize(un);
  maxs_.resize(un);
  for (size_t d = 0; d < un; ++d) mins_[d] = maxs_[d] = offsets.front()[d];
  for (size_t i = 1; i < offsets.size(); ++i) {
    for (size_t d = 0; d < un; ++d) {
      const Coord c = offsets[i][d];
      if (c < mins_[d]) mins_[d] = c;
      if (c > maxs_[d]) maxs_[d] = c;
    }
  }
  OpCounter::charge(OpKind::kCompare, static_cast<Count>(n) * 2 * (m - 1));
  OpCounter::charge(OpKind::kAdd, 2 * static_cast<Count>(n));

  const auto extent_of = [this](int d) {
    const size_t ud = static_cast<size_t>(d);
    return checked_add(abs_diff_checked(maxs_[ud], mins_[ud]), 1);
  };

  // Canonical dimension order: extents non-decreasing, stable ties. Stable
  // ties keep square patterns, 1-D rows and innermost-dilated (unrolled)
  // stencils on the identity permutation.
  perm_.resize(un);
  std::iota(perm_.begin(), perm_.end(), 0);
  if (allow_permutation && n > 1) {
    // Insertion sort: stable, in-place (std::stable_sort may heap-allocate
    // a merge buffer, which would break the zero-allocation warm path),
    // and ranks are single digits.
    for (size_t j = 1; j < un; ++j) {
      const int dim = perm_[j];
      const Count e = extent_of(dim);
      size_t k = j;
      while (k > 0 && extent_of(perm_[k - 1]) > e) {
        perm_[k] = perm_[k - 1];
        --k;
      }
      perm_[k] = dim;
    }
  }
  bool identity = true;
  for (size_t j = 0; j < un && identity; ++j) {
    identity = perm_[j] == static_cast<int>(j);
  }

  // Canonical extents and mixed-radix weights w_j = prod_{k>j} D_{perm[k]}
  // (the suffix product of LinearTransform::derive in canonical order).
  extents_canonical_.resize(un);
  for (size_t j = 0; j < un; ++j) {
    extents_canonical_[j] = extent_of(perm_[j]);
  }
  weights_.resize(un);
  weights_[un - 1] = 1;
  for (int j = n - 2; j >= 0; --j) {
    const size_t uj = static_cast<size_t>(j);
    try {
      weights_[uj] = checked_mul(weights_[uj + 1], extents_canonical_[uj + 1]);
    } catch (const OverflowError&) {
      std::ostringstream os;
      os << "Canonicalizer: canonical weight w_" << j
         << " = prod_{k>j} D_k overflows 64 bits for " << pattern.to_string();
      throw OverflowError(os.str());
    }
  }
  OpCounter::charge(OpKind::kMul, static_cast<Count>(n) - 1);

  // Rehydrated alpha in the caller's dimension order: canonical dim j reads
  // caller dim perm[j], so alpha[perm[j]] = w_j. Applying this alpha to the
  // raw offsets minus the translation gives exactly the canonical z values,
  // in the caller's offset enumeration order.
  alpha_.resize(un);
  for (size_t j = 0; j < un; ++j) {
    alpha_[static_cast<size_t>(perm_[j])] = weights_[j];
  }
  values_.resize(static_cast<size_t>(m));
  for (size_t i = 0; i < offsets.size(); ++i) {
    Address acc = 0;
    for (size_t d = 0; d < un; ++d) {
      // The digit fits by the extent check above; the product/sum are
      // checked like LinearTransform::apply so overflow surfaces the same.
      const Address digit = offsets[i][d] - mins_[d];
      acc = checked_add_signed(acc, checked_mul_signed(alpha_[d], digit));
    }
    values_[i] = acc;
  }
  OpCounter::charge(OpKind::kMul, m * static_cast<Count>(n));
  OpCounter::charge(OpKind::kAdd, m * (static_cast<Count>(n) - 1));

  // Mixed-radix encoding is injective inside the bounding box, so the
  // sorted value multiset (with the extents) is the complete canonical key.
  sorted_.assign(values_.begin(), values_.end());
  std::sort(sorted_.begin(), sorted_.end());

  return View{
      .extents = extents_canonical_,
      .alpha = alpha_,
      .values = values_,
      .sorted_values = sorted_,
      .perm = perm_,
      .translation = mins_,
      .identity_perm = identity,
  };
}

CanonicalForm canonicalize(const Pattern& pattern, bool allow_permutation) {
  Canonicalizer canon;
  const Canonicalizer::View view = canon.run(pattern, allow_permutation);
  return CanonicalForm{
      .extents = {view.extents.begin(), view.extents.end()},
      .alpha = {view.alpha.begin(), view.alpha.end()},
      .values = {view.values.begin(), view.values.end()},
      .sorted_values = {view.sorted_values.begin(), view.sorted_values.end()},
      .perm = {view.perm.begin(), view.perm.end()},
      .translation = NdIndex(view.translation.begin(), view.translation.end()),
      .identity_perm = view.identity_perm,
  };
}

Pattern canonical_pattern(const Pattern& pattern) {
  const CanonicalForm form = canonicalize(pattern);
  const size_t un = static_cast<size_t>(pattern.rank());
  std::vector<NdIndex> offsets;
  offsets.reserve(pattern.offsets().size());
  for (const NdIndex& raw : pattern.offsets()) {
    NdIndex coord(un);
    for (size_t j = 0; j < un; ++j) {
      const size_t src = static_cast<size_t>(form.perm[j]);
      coord[j] = raw[src] - form.translation[src];
    }
    offsets.push_back(std::move(coord));
  }
  return Pattern(std::move(offsets), pattern.name());
}

bool canonically_equal(const Pattern& a, const Pattern& b) {
  if (a.rank() != b.rank() || a.size() != b.size()) return false;
  const CanonicalForm fa = canonicalize(a);
  const CanonicalForm fb = canonicalize(b);
  return fa.extents == fb.extents && fa.sorted_values == fb.sorted_values;
}

}  // namespace mempart
