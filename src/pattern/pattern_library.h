// The benchmark patterns and kernels of the paper (Fig. 1, Fig. 3, §5.2),
// plus parametric generators used by tests and ablation benches.
//
// Fig. 3 is only an image in the paper, so the patterns were reconstructed
// and then validated against the ground truth Table 1 provides: both our
// algorithm and the LTB baseline must produce the paper's exact bank counts
// on every pattern (LoG 13/13, Canny 25/25, Prewitt 9/9, SE 5/5,
// Sobel3D 27/27, Median 8/7, Gaussian 13/10). See DESIGN.md §2 for the
// derivation; tests/pattern_library_test.cpp pins each shape.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "pattern/kernel.h"
#include "pattern/pattern.h"

namespace mempart::patterns {

/// Laplacian-of-Gaussian 5x5 support, 13 elements (Fig. 2(a), §5.1).
[[nodiscard]] Pattern log5x5();

/// The full LoG kernel with the coefficients of Fig. 1(a).
[[nodiscard]] Kernel log5x5_kernel();

/// Canny: full 5x5 window, 25 elements.
[[nodiscard]] Pattern canny5x5();

/// Prewitt: union of the horizontal and vertical 3x3 kernel supports,
/// 8 elements (3x3 minus the centre).
[[nodiscard]] Pattern prewitt3x3();

/// Prewitt horizontal-gradient kernel (zero middle column dropped).
[[nodiscard]] Kernel prewitt_horizontal_kernel();

/// Prewitt vertical-gradient kernel.
[[nodiscard]] Kernel prewitt_vertical_kernel();

/// Structure element of Zhao et al. [11]: 3x3 cross, 5 elements.
[[nodiscard]] Pattern structure_element();

/// 3-D Sobel: union of the three directional 3x3x3 kernel supports,
/// 26 elements (3x3x3 minus the centre).
[[nodiscard]] Pattern sobel3d();

/// 3-D Sobel z-gradient kernel: smoothing (1,2,1)x(1,2,1) in-plane times
/// derivative (-1,0,+1) across planes; 18 non-zero taps.
[[nodiscard]] Kernel sobel3d_z_kernel();

/// Median filter window, 7 elements. Reconstructed (DESIGN.md §2) as the
/// unique-up-to-symmetry 7-element subset of a 3x3 window for which our
/// algorithm needs 8 banks while exhaustive LTB finds 7, as Table 1 reports.
[[nodiscard]] Pattern median7();

/// Gaussian filter pattern, 9 elements: 5x5 axial cross (plus of arm 2).
/// Ours needs 13 banks, LTB finds 10, matching Table 1.
[[nodiscard]] Pattern gaussian9();

/// 3x3 binomial Gaussian kernel (1/16 normalised), 9 taps — used by the
/// image examples; distinct from the sparse gaussian9() evaluation pattern.
[[nodiscard]] Kernel gaussian3x3_kernel();

/// All seven Table 1 patterns in the paper's row order.
[[nodiscard]] std::vector<Pattern> table1_patterns();

/// Resolves a CLI-style pattern spec: a Table 1 benchmark name (e.g. "LoG")
/// or a generator spec ("box:4", "cross:2", "row:8", "box3d:3"). Returns
/// nullopt when `spec` is neither (the CLI then treats it as a file path).
/// Throws InvalidArgument on an unknown generator or a malformed count
/// ("box:junk").
[[nodiscard]] std::optional<Pattern> pattern_from_spec(const std::string& spec);

// ---- Parametric generators (tests / ablations) ----------------------------

/// Dense k x k window.
[[nodiscard]] Pattern box2d(Count k);

/// Axial cross with given arm length (2*arm+1 elements).
[[nodiscard]] Pattern cross2d(Count arm);

/// 1-D window of k consecutive elements.
[[nodiscard]] Pattern row1d(Count k);

/// Dense k x k x k window.
[[nodiscard]] Pattern box3d(Count k);

/// Random pattern: `m` distinct offsets drawn from a box of shape `box`.
/// Requires m <= volume(box).
[[nodiscard]] Pattern random_pattern(Rng& rng, const std::vector<Count>& box,
                                     Count m);

/// Dilated ("atrous") k x k window with the given dilation rate: taps at
/// stride `dilation` so a 3x3/d=2 pattern spans a 5x5 box with 9 elements.
/// Stresses the solver with sparse large-extent constellations.
[[nodiscard]] Pattern atrous2d(Count k, Count dilation);

/// Roberts cross: the 2x2 diagonal-difference operator (4 elements).
[[nodiscard]] Pattern roberts2x2();

/// 3x3 four-neighbour Laplacian support (5 elements; same shape as SE).
[[nodiscard]] Kernel laplacian3x3_kernel();

}  // namespace mempart::patterns
