// Access patterns (Definition 2 of the paper).
//
// A Pattern is a finite set of m distinct constant offsets
// Delta(1..m) in Z^n describing which elements of an n-dimensional array a
// loop body touches in one iteration, relative to the iteration's position
// offset s. The partitioning problem is: map every array element to a bank so
// that for EVERY s the m elements {s + Delta(i)} land in distinct banks.
//
// Patterns are value types. On construction offsets are deduplicated,
// validated for uniform rank and sorted lexicographically, so two patterns
// with equal element sets compare equal.
#pragma once

#include <string>
#include <vector>

#include "common/nd.h"
#include "common/types.h"

namespace mempart {

/// Immutable set of access offsets with uniform rank (Definition 2).
class Pattern {
 public:
  /// Builds a pattern from offsets. Throws InvalidArgument when `offsets` is
  /// empty, ranks differ, or duplicates exist.
  explicit Pattern(std::vector<NdIndex> offsets, std::string name = "");

  /// Number of dimensions n.
  [[nodiscard]] int rank() const { return rank_; }

  /// Number of elements m in the pattern.
  [[nodiscard]] Count size() const { return static_cast<Count>(offsets_.size()); }

  /// Offsets, lexicographically sorted.
  [[nodiscard]] const std::vector<NdIndex>& offsets() const { return offsets_; }

  /// Optional human-readable label ("LoG", "Canny", ...).
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Minimum coordinate over all offsets in dimension d.
  [[nodiscard]] Coord min_coord(int d) const;

  /// Maximum coordinate over all offsets in dimension d.
  [[nodiscard]] Coord max_coord(int d) const;

  /// Per-dimension extent D_d = max - min + 1 (the paper's D_j, section 4.1).
  [[nodiscard]] Count extent(int d) const;

  /// Bounding-box shape (D_0, ..., D_{n-1}).
  [[nodiscard]] NdShape bounding_box() const;

  /// True when `offset` is one of the pattern's elements.
  [[nodiscard]] bool contains(const NdIndex& offset) const;

  /// Returns the same pattern translated so every min_coord is 0.
  [[nodiscard]] Pattern normalized() const;

  /// Returns the pattern translated by `shift`.
  [[nodiscard]] Pattern translated(const NdIndex& shift) const;

  /// Concrete element addresses P_s = {s + Delta(i)} for position offset s.
  [[nodiscard]] std::vector<NdIndex> at(const NdIndex& s) const;

  /// True when every element of at(s) lies inside `domain`.
  [[nodiscard]] bool fits_within(const NdShape& domain, const NdIndex& s) const;

  /// Equality is over the (sorted) offset sets; names are ignored.
  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.offsets_ == b.offsets_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<NdIndex> offsets_;
  std::string name_;
  int rank_ = 0;
};

}  // namespace mempart
