#include "pattern/pattern_library.h"

#include "common/args.h"
#include "common/errors.h"
#include "common/math_util.h"
#include "pattern/pattern_io.h"

namespace mempart::patterns {

Pattern log5x5() {
  // Fig. 1(a): the 13 positions with non-zero LoG coefficients.
  return parse_pattern_2d(
      "..#..\n"
      ".###.\n"
      "#####\n"
      ".###.\n"
      "..#..\n",
      "LoG");
}

Kernel log5x5_kernel() {
  return Kernel::from_matrix_2d(
      {{0, 0, -1, 0, 0},
       {0, -1, -2, -1, 0},
       {-1, -2, 16, -2, -1},
       {0, -1, -2, -1, 0},
       {0, 0, -1, 0, 0}},
      "LoG");
}

Pattern canny5x5() {
  return parse_pattern_2d(
      "#####\n"
      "#####\n"
      "#####\n"
      "#####\n"
      "#####\n",
      "Canny");
}

Pattern prewitt3x3() {
  // Union of the horizontal (zero middle column) and vertical (zero middle
  // row) kernels: everything but the centre.
  return parse_pattern_2d(
      "###\n"
      "#.#\n"
      "###\n",
      "Prewitt");
}

Kernel prewitt_horizontal_kernel() {
  return Kernel::from_matrix_2d(
      {{-1, 0, 1}, {-1, 0, 1}, {-1, 0, 1}}, "Prewitt-H");
}

Kernel prewitt_vertical_kernel() {
  return Kernel::from_matrix_2d(
      {{-1, -1, -1}, {0, 0, 0}, {1, 1, 1}}, "Prewitt-V");
}

Pattern structure_element() {
  return parse_pattern_2d(
      ".#.\n"
      "###\n"
      ".#.\n",
      "SE");
}

Pattern sobel3d() {
  // The three directional 3-D Sobel kernels zero out (only) their own middle
  // plane through the centre; the union of the supports is the full 3x3x3
  // neighbourhood minus the centre voxel: 26 elements.
  std::vector<NdIndex> offsets;
  for (Coord i = 0; i < 3; ++i) {
    for (Coord j = 0; j < 3; ++j) {
      for (Coord k = 0; k < 3; ++k) {
        if (i == 1 && j == 1 && k == 1) continue;
        offsets.push_back({i, j, k});
      }
    }
  }
  return Pattern(std::move(offsets), "Sobel3D");
}

Kernel sobel3d_z_kernel() {
  // h(x) (x) h(y) (x) h'(z) with h = (1,2,1), h' = (-1,0,+1); the middle
  // plane (k = 1) has weight zero everywhere.
  const double smooth[3] = {1, 2, 1};
  const double deriv[3] = {-1, 0, 1};
  std::vector<KernelTap> taps;
  for (Coord i = 0; i < 3; ++i) {
    for (Coord j = 0; j < 3; ++j) {
      for (Coord k = 0; k < 3; ++k) {
        const double w = smooth[i] * smooth[j] * deriv[k];
        if (w != 0.0) taps.push_back({{i, j, k}, w});
      }
    }
  }
  return Kernel(std::move(taps), "Sobel3D-z");
}

Pattern median7() {
  // See DESIGN.md §2: brute-forced so that ours=8 banks and LTB=7 banks,
  // matching the Median row of Table 1.
  return parse_pattern_2d(
      ".##\n"
      ".##\n"
      "###\n",
      "Median");
}

Pattern gaussian9() {
  return parse_pattern_2d(
      "..#..\n"
      "..#..\n"
      "#####\n"
      "..#..\n"
      "..#..\n",
      "Gaussian");
}

Kernel gaussian3x3_kernel() {
  return Kernel::from_matrix_2d(
      {{1.0 / 16, 2.0 / 16, 1.0 / 16},
       {2.0 / 16, 4.0 / 16, 2.0 / 16},
       {1.0 / 16, 2.0 / 16, 1.0 / 16}},
      "Gaussian3x3");
}

std::vector<Pattern> table1_patterns() {
  return {log5x5(),           canny5x5(), prewitt3x3(), structure_element(),
          sobel3d(),          median7(),  gaussian9()};
}

std::optional<Pattern> pattern_from_spec(const std::string& spec) {
  for (const Pattern& p : table1_patterns()) {
    if (p.name() == spec) return p;
  }
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string kind = spec.substr(0, colon);
  const Count k = parse_count(spec.substr(colon + 1),
                              "pattern generator '" + kind + "' parameter");
  if (kind == "box") return box2d(k);
  if (kind == "cross") return cross2d(k);
  if (kind == "row") return row1d(k);
  if (kind == "box3d") return box3d(k);
  throw InvalidArgument("unknown pattern generator '" + kind + "'");
}

Pattern box2d(Count k) {
  MEMPART_REQUIRE(k >= 1, "box2d: k must be >= 1");
  std::vector<NdIndex> offsets;
  for (Coord i = 0; i < k; ++i) {
    for (Coord j = 0; j < k; ++j) offsets.push_back({i, j});
  }
  return Pattern(std::move(offsets), "box" + std::to_string(k));
}

Pattern cross2d(Count arm) {
  MEMPART_REQUIRE(arm >= 0, "cross2d: arm must be >= 0");
  std::vector<NdIndex> offsets;
  offsets.push_back({0, 0});
  for (Coord a = 1; a <= arm; ++a) {
    offsets.push_back({a, 0});
    offsets.push_back({-a, 0});
    offsets.push_back({0, a});
    offsets.push_back({0, -a});
  }
  return Pattern(std::move(offsets), "cross" + std::to_string(arm)).normalized();
}

Pattern row1d(Count k) {
  MEMPART_REQUIRE(k >= 1, "row1d: k must be >= 1");
  std::vector<NdIndex> offsets;
  for (Coord j = 0; j < k; ++j) offsets.push_back({j});
  return Pattern(std::move(offsets), "row" + std::to_string(k));
}

Pattern box3d(Count k) {
  MEMPART_REQUIRE(k >= 1, "box3d: k must be >= 1");
  std::vector<NdIndex> offsets;
  for (Coord i = 0; i < k; ++i) {
    for (Coord j = 0; j < k; ++j) {
      for (Coord l = 0; l < k; ++l) offsets.push_back({i, j, l});
    }
  }
  return Pattern(std::move(offsets), "box3d_" + std::to_string(k));
}

Pattern atrous2d(Count k, Count dilation) {
  MEMPART_REQUIRE(k >= 1 && dilation >= 1,
                  "atrous2d: k and dilation must be >= 1");
  std::vector<NdIndex> offsets;
  for (Coord i = 0; i < k; ++i) {
    for (Coord j = 0; j < k; ++j) {
      offsets.push_back({i * dilation, j * dilation});
    }
  }
  return Pattern(std::move(offsets),
                 "atrous" + std::to_string(k) + "d" + std::to_string(dilation));
}

Pattern roberts2x2() {
  return parse_pattern_2d(
      "##\n"
      "##\n",
      "Roberts");
}

Kernel laplacian3x3_kernel() {
  return Kernel::from_matrix_2d(
      {{0, 1, 0}, {1, -4, 1}, {0, 1, 0}}, "Laplacian3x3");
}

Pattern random_pattern(Rng& rng, const std::vector<Count>& box, Count m) {
  const NdShape shape{box};
  MEMPART_REQUIRE(m >= 1 && m <= shape.volume(),
                  "random_pattern: need 1 <= m <= volume(box)");
  std::vector<NdIndex> offsets;
  offsets.reserve(static_cast<size_t>(m));
  for (Count flat : rng.sample_without_replacement(shape.volume(), m)) {
    offsets.push_back(shape.unflatten(flat));
  }
  return Pattern(std::move(offsets), "random");
}

}  // namespace mempart::patterns
