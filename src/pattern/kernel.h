// Weighted stencil kernels.
//
// A Kernel is a Pattern plus a coefficient per offset — the LoG matrix of
// Fig. 1(a) is the canonical example. Kernels drive the functional image
// pipelines in src/img (convolution), while their support() is what the
// partitioner consumes: the set of offsets with non-zero weight.
#pragma once

#include <string>
#include <vector>

#include "pattern/pattern.h"

namespace mempart {

/// One weighted tap of a stencil.
struct KernelTap {
  NdIndex offset;
  double weight = 0.0;

  friend bool operator==(const KernelTap&, const KernelTap&) = default;
};

/// A stencil kernel: distinct offsets with (non-zero) coefficients.
class Kernel {
 public:
  /// Builds from taps; zero-weight taps are dropped. Throws when no non-zero
  /// tap remains or offsets are malformed (duplicate / rank mismatch).
  explicit Kernel(std::vector<KernelTap> taps, std::string name = "");

  /// Builds a 2-D kernel from a dense row-major matrix.
  /// `rows` x `cols` coefficients, coefficient (r,c) at offset (r,c);
  /// zeros are dropped from the support.
  static Kernel from_matrix_2d(const std::vector<std::vector<double>>& matrix,
                               std::string name = "");

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int rank() const { return support_.rank(); }
  [[nodiscard]] const std::vector<KernelTap>& taps() const { return taps_; }

  /// The access pattern induced by the kernel's non-zero coefficients.
  [[nodiscard]] const Pattern& support() const { return support_; }

  /// Weight at `offset`; 0 when the offset is not in the support.
  [[nodiscard]] double weight_at(const NdIndex& offset) const;

  /// Sum of all weights (used for normalisation checks in tests).
  [[nodiscard]] double weight_sum() const;

 private:
  std::vector<KernelTap> taps_;
  Pattern support_;
  std::string name_;
};

}  // namespace mempart
