// Pattern canonicalization: the solve-cache's notion of "same problem".
//
// The paper's mapping B(x) = (alpha . x) mod N depends only on the pairwise
// differences of the transformed values z(i) = alpha . Delta(i), so
// translating a pattern never changes any solver output. Permuting the
// dimensions DOES change the closed-form alpha (the §4.1 mixed-radix
// weights follow dimension order), so canonicalization fixes a dimension
// order too: dimensions sorted by extent, non-decreasing, with ties kept in
// caller order. Patterns that are translates and/or extent-permutations of
// one another then share one canonical form — one cache entry, one solve.
//
// The canonical form is deliberately *weight-space*: instead of
// materialising a permuted Pattern, canonicalization produces
//
//   * the canonical extents (sorted),
//   * the canonical mixed-radix weights w_j = prod_{k>j} D_k,
//   * the transformed values z(i) = sum_j w_j * digit_j(i) per offset —
//     mixed-radix encoding is bijective inside the bounding box, so the
//     sorted z multiset plus the extents IS a complete canonical key,
//   * alpha scattered back into the caller's dimension order
//     (alpha[perm[j]] = w_j), which is the rehydrated transform the
//     caller-facing solution carries.
//
// The z values are identical whichever equivalent pattern produced them,
// so Algorithm 1 (minimize_banks), the delta_P sweep and the residue
// histograms all agree across the class — the "canonical-equivalent
// patterns yield identical delta_P" property holds by construction.
//
// The stable non-decreasing order is chosen so that square patterns (all
// of Table 1), rank-1 rows and innermost-unrolled stencils canonicalize
// with the identity permutation: for those the solver output is bit-for-bit
// what LinearTransform::derive on the raw pattern produced.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/nd.h"
#include "common/types.h"
#include "pattern/pattern.h"

namespace mempart {

/// Low-allocation canonicalizer. All outputs live in scratch vectors owned
/// by the instance and are reused across run() calls, so a warmed-up
/// instance canonicalizes without touching the allocator. Not thread-safe;
/// give each thread its own instance.
class Canonicalizer {
 public:
  /// Spans into the instance's scratch; valid until the next run().
  struct View {
    std::span<const Count> extents;         ///< canonical order, non-decreasing
    std::span<const Count> alpha;           ///< caller dim order (rehydrated)
    std::span<const Address> values;        ///< z(i), pattern-offset order
    std::span<const Address> sorted_values; ///< z multiset, ascending
    std::span<const int> perm;              ///< canonical dim j = caller dim perm[j]
    std::span<const Coord> translation;     ///< per-dim min of the raw offsets
    bool identity_perm = true;              ///< perm == identity
  };

  /// Canonicalizes `pattern`. With `allow_permutation` false only the
  /// translation is normalized and the dimension order is kept (used when a
  /// permuted transform would break the BankMapping innermost-remap
  /// injectivity precondition — see Partitioner). Charges the same
  /// arithmetic as LinearTransform::derive + transform_values so Table-1
  /// op accounting is unchanged. Throws OverflowError when the bounding-box
  /// volume (and hence some weight or value) leaves 64 bits, exactly like
  /// LinearTransform::derive does on the same pattern.
  View run(const Pattern& pattern, bool allow_permutation = true);

 private:
  std::vector<Coord> mins_;
  std::vector<Coord> maxs_;
  std::vector<Count> extents_canonical_;
  std::vector<Count> weights_;
  std::vector<Count> alpha_;
  std::vector<Address> values_;
  std::vector<Address> sorted_;
  std::vector<int> perm_;
};

/// One-shot owning canonical form (tests, tools; hot paths hold a
/// Canonicalizer).
struct CanonicalForm {
  std::vector<Count> extents;
  std::vector<Count> alpha;
  std::vector<Address> values;
  std::vector<Address> sorted_values;
  std::vector<int> perm;
  NdIndex translation;
  bool identity_perm = true;
};

/// Canonicalizes `pattern` into an owning form.
[[nodiscard]] CanonicalForm canonicalize(const Pattern& pattern,
                                         bool allow_permutation = true);

/// Reconstructs the canonical representative Pattern: offsets translated to
/// the origin and dimensions reordered to the canonical (sorted-extent)
/// order. Two patterns are canonically equal iff their canonical
/// representatives compare equal.
[[nodiscard]] Pattern canonical_pattern(const Pattern& pattern);

/// True when `a` and `b` are translates and/or extent-sorted permutations
/// of one another, i.e. share a canonical form (and hence a cached solve).
[[nodiscard]] bool canonically_equal(const Pattern& a, const Pattern& b);

}  // namespace mempart
