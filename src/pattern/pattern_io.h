// ASCII-art serialisation of 2-D patterns and bank-index maps.
//
// The paper presents patterns and partitioning solutions as dot diagrams
// (Fig. 2, Fig. 3). We mirror that with text grids:
//
//   parse_pattern_2d:  '#'/'X'/'1' marks an element, '.'/' '/'0' a hole.
//   render_pattern_2d: inverse of the above.
//   render_bank_map:   a grid of bank indices B(x) over a window of the
//                      array, reproducing Fig. 2(b)/(c).
//
// Row r of the text corresponds to coordinate x0 = r (outer dimension), and
// column c to x1 = c (inner dimension), matching Fig. 1(b)'s loop order.
#pragma once

#include <functional>
#include <string>

#include "pattern/pattern.h"

namespace mempart {

/// Parses a 2-D pattern from an ASCII grid. Throws InvalidArgument on
/// unknown characters or when no element is marked.
[[nodiscard]] Pattern parse_pattern_2d(const std::string& art,
                                       std::string name = "");

/// Renders a 2-D pattern as an ASCII grid over its bounding box.
[[nodiscard]] std::string render_pattern_2d(const Pattern& pattern);

/// Renders `bank_of(x)` over the window [0,rows) x [0,cols) as a grid of
/// right-aligned numbers, in the style of Fig. 2(b)/(c).
[[nodiscard]] std::string render_bank_map(
    Count rows, Count cols,
    const std::function<Count(const NdIndex&)>& bank_of);

}  // namespace mempart
