#include "pattern/kernel.h"

#include <algorithm>

#include "common/errors.h"

namespace mempart {
namespace {

std::vector<KernelTap> drop_zero_taps(std::vector<KernelTap> taps) {
  std::erase_if(taps, [](const KernelTap& t) { return t.weight == 0.0; });
  MEMPART_REQUIRE(!taps.empty(), "Kernel: needs at least one non-zero tap");
  return taps;
}

Pattern support_of(const std::vector<KernelTap>& taps, const std::string& name) {
  std::vector<NdIndex> offsets;
  offsets.reserve(taps.size());
  for (const KernelTap& t : taps) offsets.push_back(t.offset);
  return Pattern(std::move(offsets), name);
}

}  // namespace

Kernel::Kernel(std::vector<KernelTap> taps, std::string name)
    : taps_(drop_zero_taps(std::move(taps))),
      support_(support_of(taps_, name)),
      name_(std::move(name)) {
  std::sort(taps_.begin(), taps_.end(),
            [](const KernelTap& a, const KernelTap& b) {
              return a.offset < b.offset;
            });
}

Kernel Kernel::from_matrix_2d(const std::vector<std::vector<double>>& matrix,
                              std::string name) {
  MEMPART_REQUIRE(!matrix.empty() && !matrix.front().empty(),
                  "Kernel::from_matrix_2d: empty matrix");
  std::vector<KernelTap> taps;
  for (size_t r = 0; r < matrix.size(); ++r) {
    MEMPART_REQUIRE(matrix[r].size() == matrix.front().size(),
                    "Kernel::from_matrix_2d: ragged matrix");
    for (size_t c = 0; c < matrix[r].size(); ++c) {
      if (matrix[r][c] != 0.0) {
        taps.push_back({{static_cast<Coord>(r), static_cast<Coord>(c)},
                        matrix[r][c]});
      }
    }
  }
  return Kernel(std::move(taps), std::move(name));
}

double Kernel::weight_at(const NdIndex& offset) const {
  for (const KernelTap& t : taps_) {
    if (t.offset == offset) return t.weight;
  }
  return 0.0;
}

double Kernel::weight_sum() const {
  double sum = 0.0;
  for (const KernelTap& t : taps_) sum += t.weight;
  return sum;
}

}  // namespace mempart
