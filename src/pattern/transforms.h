// Pattern algebra.
//
// Loop bodies rarely come with one hand-made pattern: Prewitt's access
// constellation is the UNION of its horizontal and vertical kernels'
// supports (§5.2), unrolling a loop by U dilates the pattern along the
// unrolled dimension, and symmetric operators arise as mirrors/rotations of
// one another. These combinators build patterns from patterns; the solver
// downstream never needs to know how a constellation came to be.
#pragma once

#include "pattern/pattern.h"

namespace mempart::patterns {

/// Set union of two equal-rank patterns.
[[nodiscard]] Pattern set_union(const Pattern& a, const Pattern& b,
                                std::string name = "");

/// Set intersection; throws when the intersection is empty.
[[nodiscard]] Pattern set_intersection(const Pattern& a, const Pattern& b,
                                       std::string name = "");

/// Minkowski dilation: every offset of `a` shifted by every offset of `by`
/// (duplicates merged). Models unrolling a stencil loop: unroll dimension d
/// by factor U == dilate by the pattern {0, e_d, 2*e_d, ..., (U-1)*e_d}.
[[nodiscard]] Pattern dilate(const Pattern& a, const Pattern& by,
                             std::string name = "");

/// The pattern read by one iteration of the stencil after unrolling
/// dimension `dim` by `factor` (factor >= 1).
[[nodiscard]] Pattern unroll(const Pattern& a, int dim, Count factor);

/// Mirror along dimension `dim` (coordinates negated), then normalised.
[[nodiscard]] Pattern mirror(const Pattern& a, int dim);

/// Rotate a 2-D pattern by 90 degrees clockwise, then normalised.
[[nodiscard]] Pattern rotate90(const Pattern& a);

}  // namespace mempart::patterns
