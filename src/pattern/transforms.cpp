#include "pattern/transforms.h"

#include <algorithm>
#include <set>

#include "common/errors.h"

namespace mempart::patterns {
namespace {

void require_equal_rank(const Pattern& a, const Pattern& b, const char* who) {
  MEMPART_REQUIRE(a.rank() == b.rank(),
                  std::string(who) + ": rank mismatch between patterns");
}

}  // namespace

Pattern set_union(const Pattern& a, const Pattern& b, std::string name) {
  require_equal_rank(a, b, "set_union");
  std::set<NdIndex> merged(a.offsets().begin(), a.offsets().end());
  merged.insert(b.offsets().begin(), b.offsets().end());
  return Pattern(std::vector<NdIndex>(merged.begin(), merged.end()),
                 std::move(name));
}

Pattern set_intersection(const Pattern& a, const Pattern& b,
                         std::string name) {
  require_equal_rank(a, b, "set_intersection");
  std::vector<NdIndex> common;
  for (const NdIndex& o : a.offsets()) {
    if (b.contains(o)) common.push_back(o);
  }
  MEMPART_REQUIRE(!common.empty(), "set_intersection: patterns are disjoint");
  return Pattern(std::move(common), std::move(name));
}

Pattern dilate(const Pattern& a, const Pattern& by, std::string name) {
  require_equal_rank(a, by, "dilate");
  std::set<NdIndex> shifted;
  for (const NdIndex& shift : by.offsets()) {
    for (const NdIndex& o : a.offsets()) {
      shifted.insert(add(o, shift));
    }
  }
  return Pattern(std::vector<NdIndex>(shifted.begin(), shifted.end()),
                 std::move(name));
}

Pattern unroll(const Pattern& a, int dim, Count factor) {
  MEMPART_REQUIRE(dim >= 0 && dim < a.rank(), "unroll: dimension out of range");
  MEMPART_REQUIRE(factor >= 1, "unroll: factor must be >= 1");
  std::vector<NdIndex> steps;
  for (Count u = 0; u < factor; ++u) {
    NdIndex step(static_cast<size_t>(a.rank()), 0);
    step[static_cast<size_t>(dim)] = u;
    steps.push_back(std::move(step));
  }
  return dilate(a, Pattern(std::move(steps)),
                a.name().empty() ? "" : a.name() + "_x" + std::to_string(factor));
}

Pattern mirror(const Pattern& a, int dim) {
  MEMPART_REQUIRE(dim >= 0 && dim < a.rank(), "mirror: dimension out of range");
  std::vector<NdIndex> flipped;
  flipped.reserve(a.offsets().size());
  for (NdIndex o : a.offsets()) {
    o[static_cast<size_t>(dim)] = -o[static_cast<size_t>(dim)];
    flipped.push_back(std::move(o));
  }
  return Pattern(std::move(flipped), a.name()).normalized();
}

Pattern rotate90(const Pattern& a) {
  MEMPART_REQUIRE(a.rank() == 2, "rotate90: pattern must be 2-D");
  std::vector<NdIndex> rotated;
  rotated.reserve(a.offsets().size());
  for (const NdIndex& o : a.offsets()) {
    rotated.push_back({o[1], -o[0]});
  }
  return Pattern(std::move(rotated), a.name()).normalized();
}

}  // namespace mempart::patterns
