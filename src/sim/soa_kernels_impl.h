// Template bodies of the SoA kernels, shared by every tier's translation
// unit. Included ONLY by soa_kernels_base.cpp and soa_kernels_avx2.cpp;
// each instantiates the templates with its lane wrappers and registers the
// resulting function pointers in a soa::Kernels table.
#pragma once

#include "sim/soa_kernels.h"

namespace mempart::sim::soa {

/// Lane-parallel add-and-conditional-subtract walk of one tap row. Lane i
/// starts at the row state advanced by i innermost steps (precomputed
/// deltas + one conditional subtract, exact because every delta is already
/// in [0, span)); each vector step then advances all lanes by W steps. The
/// final partial vector IS the remainder: lanes 0..r-1 hold the trailing r
/// groups, no scalar recurrence needed.
template <class V>
void linear_row(const LinearRowArgs& a, std::int64_t* banks,
                std::int64_t* offsets) {
  constexpr Count kW = V::kLanes;
  alignas(64) std::int64_t init_vm[kW];
  alignas(64) std::int64_t init_bk[kW];
  alignas(64) std::int64_t init_xn[kW];
  for (Count i = 0; i < kW; ++i) {
    std::int64_t vm = a.vmod0 + a.lane_vmod[i];
    std::int64_t wrap = 0;
    if (vm >= a.span) {
      vm -= a.span;
      wrap = 1;
    }
    std::int64_t bk = a.bank0 + a.lane_bank[i];
    std::int64_t carry = 0;
    if (bk >= a.modulus) {
      bk -= a.modulus;
      carry = 1;
    }
    init_vm[i] = vm;
    init_bk[i] = bk;
    // off_base rides inside the offset lane: the recurrence only ever adds
    // to xnew, so a constant pre-bias commutes with every later update and
    // saves one vector add per store.
    init_xn[i] = a.off_base + a.xnew0 + a.lane_q[i] + carry - wrap * a.slices;
  }
  V vm = V::load(init_vm);
  V bk = V::load(init_bk);
  V xn = V::load(init_xn);
  const V span = V::broadcast(a.span);
  const V modulus = V::broadcast(a.modulus);
  const V inc_vm = V::broadcast(a.inc_vmod);
  const V inc_bk = V::broadcast(a.inc_bank);
  const V inc_q = V::broadcast(a.inc_q);
  const V slices = V::broadcast(a.slices);
  const V one = V::broadcast(1);
  Count g = 0;
  for (; g + kW <= a.groups; g += kW) {
    bk.store(banks + g);
    if (offsets != nullptr) xn.store(offsets + g);
    V t = V::add(vm, inc_vm);
    const V wrap = V::ge0_mask(V::sub(t, span));
    vm = V::sub(t, V::and_(wrap, span));
    t = V::add(bk, inc_bk);
    const V carry = V::ge0_mask(V::sub(t, modulus));
    bk = V::sub(t, V::and_(carry, modulus));
    xn = V::add(xn, inc_q);
    xn = V::add(xn, V::and_(carry, one));
    xn = V::sub(xn, V::and_(wrap, slices));
  }
  const Count rest = a.groups - g;
  if (rest > 0) {
    alignas(64) std::int64_t tail_bk[kW];
    alignas(64) std::int64_t tail_xn[kW];
    bk.store(tail_bk);
    xn.store(tail_xn);
    for (Count i = 0; i < rest; ++i) {
      banks[g + i] = tail_bk[i];
      if (offsets != nullptr) offsets[g + i] = tail_xn[i];
    }
  }
}

template <class V>
void flat_row(const FlatRowArgs& a, std::int64_t* offsets) {
  constexpr Count kW = V::kLanes;
  alignas(64) std::int64_t init[kW];
  for (Count i = 0; i < kW; ++i) init[i] = a.base + i * a.inc;
  V off = V::load(init);
  const V step = V::broadcast(a.inc * kW);
  Count g = 0;
  for (; g + kW <= a.groups; g += kW) {
    off.store(offsets + g);
    off = V::add(off, step);
  }
  const Count rest = a.groups - g;
  if (rest > 0) {
    alignas(64) std::int64_t tail[kW];
    off.store(tail);
    for (Count i = 0; i < rest; ++i) offsets[g + i] = tail[i];
  }
}

template <class V>
void fold_pass(const FoldArgs& a, std::int64_t* banks, std::int64_t* offsets) {
  constexpr Count kW = V::kLanes;
  Count j = 0;
  for (; j + kW <= a.count; j += kW) {
    const V raw = V::load(banks + j);
    if (offsets != nullptr) {
      const V extra = V::gather(a.fold_offset, raw);
      V::add(V::load(offsets + j), extra).store(offsets + j);
    }
    V::gather(a.fold_bank, raw).store(banks + j);
  }
  for (; j < a.count; ++j) {
    const std::int64_t raw = banks[j];
    if (offsets != nullptr) offsets[j] += a.fold_offset[raw];
    banks[j] = a.fold_bank[raw];
  }
}

template <class V>
Count find_collisions(const std::int64_t* banks, Count taps, Count groups,
                      std::int64_t num_banks, unsigned char* collided,
                      bool* in_range) {
  constexpr Count kW = V::kLanes;
  constexpr auto kAllLanes =
      static_cast<std::uint32_t>((std::uint32_t{1} << kW) - 1u);
  // Range validation rides along: b and (num_banks - 1 - b) are both
  // non-negative exactly when b is in [0, num_banks), so an OR-accumulate
  // over every load plus one final sign test covers the whole block.
  const V nm1 = V::broadcast(num_banks - 1);
  V range = V::broadcast(0);
  Count collisions = 0;
  Count g = 0;
  for (; g + kW <= groups; g += kW) {
    V occupancy = V::broadcast(0);
    V collide = V::broadcast(0);
    for (Count t = 0; t < taps; ++t) {
      const V b = V::load(banks + t * groups + g);
      range = V::or_(range, V::or_(b, V::sub(nm1, b)));
      const V bit = V::shl1(b);
      collide = V::or_(collide, V::and_(occupancy, bit));
      occupancy = V::or_(occupancy, bit);
    }
    const std::uint32_t mask = collide.nonzero_mask();
    for (Count i = 0; i < kW; ++i) {
      const unsigned char hit =
          static_cast<unsigned char>((mask >> static_cast<unsigned>(i)) & 1u);
      collided[g + i] = hit;
      collisions += hit;
    }
  }
  std::int64_t range_tail = 0;
  for (; g < groups; ++g) {
    std::uint64_t occupancy = 0;
    std::uint64_t collide = 0;
    for (Count t = 0; t < taps; ++t) {
      const std::int64_t b = banks[t * groups + g];
      range_tail |= b | (num_banks - 1 - b);
      const std::uint64_t bit =
          static_cast<std::uint64_t>(simd::I64x1::shl1({b}).v);
      collide |= occupancy & bit;
      occupancy |= bit;
    }
    const unsigned char hit = collide != 0 ? 1 : 0;
    collided[g] = hit;
    collisions += hit;
  }
  *in_range =
      V::ge0_mask(range).nonzero_mask() == kAllLanes && range_tail >= 0;
  return collisions;
}

template <class V>
constexpr Kernels make_kernels(simd::Tier tier) {
  Kernels kernels;
  kernels.tier = tier;
  kernels.lanes = V::kLanes;
  kernels.linear_row = &linear_row<V>;
  kernels.flat_row = &flat_row<V>;
  kernels.fold_pass = &fold_pass<V>;
  kernels.find_collisions = &find_collisions<V>;
  return kernels;
}

}  // namespace mempart::sim::soa
