// Scalar, SSE2 and NEON instantiations of the SoA kernels, plus the tier
// dispatch table. The AVX2 instantiation lives in soa_kernels_avx2.cpp
// (its own translation unit compiled with -mavx2); this file only calls
// through its table when CMake compiled it in, so a build without the AVX2
// unit still links and clamps avx2 requests down to SSE2.
#include "sim/soa_kernels_impl.h"

namespace mempart::sim::soa {

const Kernels& kernels_for(simd::Tier tier) {
  static const Kernels scalar =
      make_kernels<simd::I64x1>(simd::Tier::kScalar);
#if defined(MEMPART_SIMD_X86)
  // SSE2 has no 64-bit variable shift: the 2-lane shl1 spills to the stack
  // per element and loses to the scalar scorer, so the SSE2 table keeps the
  // vector generation kernels but scores conflicts with the scalar one.
  static const Kernels sse2 = [] {
    Kernels k = make_kernels<simd::I64x2>(simd::Tier::kSse2);
    k.find_collisions = scalar.find_collisions;
    return k;
  }();
  if (tier == simd::Tier::kAvx2) {
#if defined(MEMPART_HAVE_AVX2_KERNELS)
    return avx2_kernels();
#else
    return sse2;
#endif
  }
  if (tier == simd::Tier::kSse2) return sse2;
#elif defined(MEMPART_SIMD_NEON)
  // Same spilled-shl1 story as SSE2: score with the scalar kernel.
  static const Kernels neon = [] {
    Kernels k = make_kernels<simd::I64x2>(simd::Tier::kNeon);
    k.find_collisions = scalar.find_collisions;
    return k;
  }();
  if (tier == simd::Tier::kNeon) return neon;
#endif
  (void)tier;
  return scalar;
}

}  // namespace mempart::sim::soa
