// Access tracing: per-iteration records of how a loop nest hit the banks.
//
// The aggregate AccessStats answer "how many cycles"; a trace answers
// "where and why" — which iterations conflicted, how the cost distributes
// (the cycle histogram), and whether conflicts cluster spatially. For the
// paper's linear-transform mappings the histogram must be a single spike
// (conflicts are position-invariant, §4.3.2); the trace makes that property
// observable, and would expose any scheme whose worst case hides in a
// corner of the iteration space.
#pragma once

#include <map>
#include <vector>

#include "common/nd.h"
#include "common/types.h"
#include "sim/access_engine.h"

namespace mempart::sim {

/// One issued group.
struct TraceRecord {
  NdIndex position;   ///< iteration vector
  Count cycles = 0;   ///< cycles the group needed
};

/// Sequence of issued groups with summary queries.
class AccessTrace {
 public:
  void record(NdIndex position, Count cycles);

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] Count size() const {
    return static_cast<Count>(records_.size());
  }
  [[nodiscard]] Count total_cycles() const;

  /// cycles -> number of iterations that needed exactly that many.
  [[nodiscard]] std::map<Count, Count> cycle_histogram() const;

  /// Positions of the iterations that needed the most cycles.
  [[nodiscard]] std::vector<NdIndex> worst_positions() const;

  /// True when every iteration needed the same number of cycles — the
  /// position-invariance signature of linear-transform bank mappings.
  [[nodiscard]] bool uniform() const;

 private:
  std::vector<TraceRecord> records_;
};

/// Issues `groups` generated per position by `reads` through an engine,
/// recording each group. Convenience for tests and reports.
template <typename ReadsFn, typename PositionsFn>
AccessTrace trace_accesses(AccessEngine& engine, PositionsFn&& for_each_position,
                           ReadsFn&& reads) {
  AccessTrace trace;
  for_each_position([&](const NdIndex& position) {
    trace.record(position, engine.issue(reads(position)));
  });
  return trace;
}

}  // namespace mempart::sim
