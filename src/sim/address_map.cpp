#include "sim/address_map.h"

namespace mempart::sim {

const NdShape& CoreAddressMap::array_shape() const {
  return mapping_.array_shape();
}
Count CoreAddressMap::num_banks() const { return mapping_.num_banks(); }
Count CoreAddressMap::bank_of(const NdIndex& x) const {
  return mapping_.bank_of(x);
}
Address CoreAddressMap::offset_of(const NdIndex& x) const {
  return mapping_.offset_of(x);
}
Count CoreAddressMap::bank_capacity(Count bank) const {
  return mapping_.bank_capacity(bank);
}

const NdShape& LtbAddressMap::array_shape() const {
  return mapping_.array_shape();
}
Count LtbAddressMap::num_banks() const { return mapping_.num_banks(); }
Count LtbAddressMap::bank_of(const NdIndex& x) const {
  return mapping_.bank_of(x);
}
Address LtbAddressMap::offset_of(const NdIndex& x) const {
  return mapping_.offset_of(x);
}
Count LtbAddressMap::bank_capacity(Count) const {
  return mapping_.bank_capacity();
}

Address FlatAddressMap::offset_of(const NdIndex& x) const {
  return shape_.flatten(x);
}
Count FlatAddressMap::bank_capacity(Count) const { return shape_.volume(); }

}  // namespace mempart::sim
