// Cycle-accounting access engine.
//
// Models the memory subsystem the paper assumes: every bank serves
// `ports_per_bank` accesses per clock cycle (bandwidth 1 by default, §3).
// One loop iteration issues its m pattern accesses as a parallel group; the
// group completes in ceil(max per-bank demand / ports) cycles. A group whose
// accesses spread over m distinct banks therefore finishes in one cycle —
// the delta_P = 0 property — while the unpartitioned memory serialises it
// into m cycles. Statistics accumulate across groups so whole loop nests
// can be replayed and compared.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/nd.h"
#include "common/types.h"
#include "sim/address_map.h"

namespace mempart::sim {

/// Accumulated timing statistics of an engine.
struct AccessStats {
  Count iterations = 0;       ///< groups issued
  Count accesses = 0;         ///< individual element accesses
  Count cycles = 0;           ///< total cycles consumed
  Count conflict_cycles = 0;  ///< cycles beyond 1 per group (bank conflicts)
  Count worst_group_cycles = 0;
  std::vector<Count> bank_load;  ///< accesses per bank

  /// Mean cycles per issued group; the loop II when groups are iterations.
  [[nodiscard]] double avg_cycles_per_iteration() const;

  /// Effective elements fetched per cycle (the paper's bandwidth metric).
  [[nodiscard]] double effective_bandwidth() const;
};

/// Replays parallel access groups against an AddressMap and counts cycles.
class AccessEngine {
 public:
  /// `map` must outlive the engine. ports_per_bank >= 1 (bandwidth B of §3).
  AccessEngine(const AddressMap& map, Count ports_per_bank = 1);

  /// Issues one iteration's group of element addresses; returns the cycles
  /// this group needed. Addresses must lie in the array domain.
  Count issue(const std::vector<NdIndex>& group);

  /// Issues `banks.size() / group_size` consecutive groups of pre-resolved
  /// bank indices (group-major, as AccessPlan emits them); returns the cycles
  /// the whole batch needed. Produces statistics identical to calling
  /// issue() once per group, but skips the per-group demand-vector clear
  /// (epoch-stamped counting) and all address resolution.
  Count issue_batch(std::span<const Count> banks, Count group_size);

  /// Issues a whole SoA row block (tap-major, as AccessPlan's block walk
  /// emits it: tap t's banks for all groups at [t * groups, (t+1) * groups)).
  /// Statistics are bit-identical to issue_batch over the same groups. For
  /// N <= 64 banks with metrics disabled, conflict-free groups are detected
  /// by a vectorized bank-occupancy bitmask (one 64-bit occupancy word per
  /// group, SIMD across groups) and cost exactly one cycle each; only the
  /// collided groups fall back to exact epoch-stamped demand counting.
  /// N > 64 or metrics enabled takes the exact scalar path throughout.
  MEMPART_NOALLOC Count issue_batch_soa(std::span<const Count> banks,
                                        Count taps, Count groups);

  [[nodiscard]] const AccessStats& stats() const { return stats_; }
  [[nodiscard]] Count ports_per_bank() const { return ports_; }

  /// Clears accumulated statistics.
  void reset();

 private:
  const AddressMap& map_;
  Count ports_;
  AccessStats stats_;
  std::vector<Count> demand_;  ///< scratch: per-bank demand of current group
  std::vector<Count> stamp_;   ///< scratch: epoch a bank's demand was touched
  Count epoch_ = 0;            ///< current issue_batch group epoch
  std::vector<unsigned char> collided_;  ///< scratch: per-group conflict flags
};

/// Publishes `stats` into the obs metrics registry under `prefix`:
/// counters `<prefix>.{iterations,accesses,cycles,conflict_cycles}`, gauges
/// `<prefix>.bank_load.{min,max,mean}`, and a `<prefix>.bank_load`
/// histogram over the per-bank access counts. No-op with metrics disabled.
void publish_stats(const AccessStats& stats, std::string_view prefix = "sim");

}  // namespace mempart::sim
