// AVX2 instantiation of the SoA kernels. This is the only translation unit
// compiled with -mavx2 (see src/sim/CMakeLists.txt), so four-lane
// instructions exist nowhere the runtime dispatcher cannot fence off:
// kernels_for() only hands out this table when cpuid reports AVX2.
#include "sim/soa_kernels_impl.h"

#if !defined(__AVX2__)
#error "soa_kernels_avx2.cpp must be compiled with -mavx2"
#endif

namespace mempart::sim::soa {

const Kernels& avx2_kernels() {
  static const Kernels kernels =
      make_kernels<simd::I64x4>(simd::Tier::kAvx2);
  return kernels;
}

}  // namespace mempart::sim::soa
