#include "sim/access_plan.h"

#include <algorithm>

#include "common/errors.h"
#include "common/math_util.h"
#include "sim/soa_kernels.h"

namespace mempart::sim {
namespace {

/// Row-major strides over `extents` restricted to the leading dimensions
/// (the innermost stride is 0 so a plain dot product yields leading_flat).
std::vector<Address> leading_strides(const std::vector<Count>& extents) {
  std::vector<Address> strides(extents.size(), 0);
  Address stride = 1;
  for (size_t d = extents.size() - 1; d-- > 0;) {
    strides[d] = stride;
    stride *= static_cast<Address>(extents[d]);
  }
  return strides;
}

Count trip_count(const PlanLoop& loop) {
  if (loop.upper < loop.lower) return 0;
  return (loop.upper - loop.lower) / loop.step + 1;
}

}  // namespace

AccessPlan::AccessPlan(const AddressMap& map, const Pattern& reads,
                       std::vector<PlanLoop> domain)
    : map_(&map), domain_(std::move(domain)) {
  MEMPART_REQUIRE(!domain_.empty(), "AccessPlan: domain must be non-empty");
  MEMPART_REQUIRE(static_cast<int>(domain_.size()) ==
                      map.array_shape().rank(),
                  "AccessPlan: domain/array rank mismatch");
  MEMPART_REQUIRE(reads.rank() == map.array_shape().rank(),
                  "AccessPlan: pattern/array rank mismatch");
  for (const PlanLoop& loop : domain_) {
    MEMPART_REQUIRE(loop.step >= 1, "AccessPlan: loop step must be >= 1");
  }
  compile(reads);
}

bool AccessPlan::supports(const AddressMap& map) {
  return dynamic_cast<const CoreAddressMap*>(&map) != nullptr ||
         dynamic_cast<const LtbAddressMap*>(&map) != nullptr ||
         dynamic_cast<const FlatAddressMap*>(&map) != nullptr;
}

bool AccessPlan::compiled() const { return kind_ != Kind::kGeneric; }

Count AccessPlan::groups_per_row() const { return trip_count(domain_.back()); }

Count AccessPlan::total_groups() const {
  Count total = 1;
  for (const PlanLoop& loop : domain_) {
    total = checked_mul(total, trip_count(loop));
  }
  return total;
}

void AccessPlan::compile(const Pattern& reads) {
  const NdShape& shape = map_->array_shape();
  const int n = shape.rank();
  const Coord inner_step = domain_.back().step;

  taps_.clear();
  taps_.reserve(static_cast<size_t>(reads.size()));
  for (const NdIndex& delta : reads.offsets()) {
    Tap tap;
    tap.delta = delta;
    tap.inner_delta = delta[static_cast<size_t>(n - 1)];
    taps_.push_back(std::move(tap));
  }

  const auto finish_linear = [&](const LinearTransform& transform,
                                 const std::vector<Count>& lead_extents,
                                 Count modulus, Count slices) {
    alpha_ = transform.alpha();
    lead_stride_ = leading_strides(lead_extents);
    modulus_ = modulus;
    slices_ = slices;
    // span must stay positive for the row-start euclid_mod even when the
    // compact body is empty (slices == 0: every element is a tail element
    // and takes the oracle path, so the incremental state is never read).
    span_ = slices_ > 0 ? checked_mul(slices_, modulus_) : modulus_;
    inc_v_ = alpha_[static_cast<size_t>(n - 1)] * inner_step;
    inc_vmod_ = euclid_mod(inc_v_, span_);
    inc_bank_ = euclid_mod(inc_v_, modulus_);
    inc_q_ = inc_vmod_ / modulus_;
    // SIMD stride tables: the scalar recurrence invariant holds for any
    // fixed increment (span is a multiple of N), so a W-lane kernel steps
    // each lane by W*inc_v while lane i starts i*inc_v ahead of the row
    // state. Precompute the reduced increments for every width a dispatch
    // tier can ask for.
    for (size_t wi = 0; wi < widths_.size(); ++wi) {
      const Count width = Count{1} << wi;
      WidthTable& table = widths_[wi];
      const Address inc_w = checked_mul(inc_v_, width);
      table.inc_vmod = euclid_mod(inc_w, span_);
      table.inc_bank = euclid_mod(inc_w, modulus_);
      table.inc_q = table.inc_vmod / modulus_;
      for (Count lane = 0; lane < width; ++lane) {
        const Address lane_v = checked_mul(inc_v_, lane);
        const size_t slot = static_cast<size_t>(lane);
        table.lane_vmod[slot] = euclid_mod(lane_v, span_);
        table.lane_bank[slot] = euclid_mod(lane_v, modulus_);
        table.lane_q[slot] = table.lane_vmod[slot] / modulus_;
      }
    }
    for (Tap& tap : taps_) {
      Address v = 0;
      Address lead = 0;
      for (size_t d = 0; d < static_cast<size_t>(n); ++d) {
        v += alpha_[d] * tap.delta[d];
        lead += lead_stride_[d] * tap.delta[d];
      }
      tap.v_bias = v;
      tap.lead_bias = lead;
    }
  };

  if (const auto* core = dynamic_cast<const CoreAddressMap*>(map_)) {
    const BankMapping& mapping = core->mapping();
    const Count modulus = mapping.conflict_modulus();
    const Count innermost = shape.extent(n - 1);
    if (mapping.folded()) {
      kind_ = Kind::kFolded;
      finish_linear(mapping.transform(), shape.extents(), modulus,
                    mapping.padded_slices());
      Count leading_volume = 1;
      for (int d = 0; d + 1 < n; ++d) {
        leading_volume = checked_mul(leading_volume, shape.extent(d));
      }
      const Count segment = checked_mul(mapping.padded_slices(), leading_volume);
      const Count folded_banks = mapping.num_banks();
      fold_bank_.resize(static_cast<size_t>(modulus));
      fold_offset_.resize(static_cast<size_t>(modulus));
      for (Count raw = 0; raw < modulus; ++raw) {
        fold_bank_[static_cast<size_t>(raw)] = raw % folded_banks;
        fold_offset_[static_cast<size_t>(raw)] = (raw / folded_banks) * segment;
      }
    } else if (mapping.tail_policy() == TailPolicy::kCompact) {
      kind_ = Kind::kCompact;
      const Count body_slices = innermost / modulus;
      finish_linear(mapping.transform(), shape.extents(), modulus, body_slices);
      tail_start_ = body_slices * modulus;
    } else {
      kind_ = Kind::kModSlice;
      finish_linear(mapping.transform(), shape.extents(), modulus,
                    mapping.padded_slices());
    }
    return;
  }
  if (const auto* ltb = dynamic_cast<const LtbAddressMap*>(map_)) {
    kind_ = Kind::kModSlice;
    // LTB pads every dimension: leading-flat strides come from the padded
    // extents while the cyclic innermost remap uses K' = w'_{n-1} / N.
    finish_linear(ltb->mapping().transform(),
                  ltb->mapping().padded_shape().extents(),
                  ltb->mapping().num_banks(), ltb->mapping().padded_slices());
    return;
  }
  if (dynamic_cast<const FlatAddressMap*>(map_) != nullptr) {
    kind_ = Kind::kFlat;
    flat_stride_.assign(static_cast<size_t>(n), 0);
    Address stride = 1;
    for (int d = n - 1; d >= 0; --d) {
      flat_stride_[static_cast<size_t>(d)] = stride;
      stride *= static_cast<Address>(shape.extent(d));
    }
    flat_inc_ = flat_stride_.back() * inner_step;
    for (Tap& tap : taps_) {
      Address bias = 0;
      for (size_t d = 0; d < static_cast<size_t>(n); ++d) {
        bias += flat_stride_[d] * tap.delta[d];
      }
      tap.v_bias = bias;
    }
    return;
  }
  kind_ = Kind::kGeneric;
}

template <bool WithOffsets, typename Visit>
void AccessPlan::walk_generic(const Visit& visit) const {
  const int n = static_cast<int>(domain_.size());
  const size_t m = taps_.size();
  const Count groups = groups_per_row();
  const Coord inner_step = domain_.back().step;
  std::vector<Count> banks(m * static_cast<size_t>(groups));
  std::vector<Address> offsets(WithOffsets ? banks.size() : 0);

  NdIndex row(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) {
    if (trip_count(domain_[static_cast<size_t>(d)]) == 0) return;
    row[static_cast<size_t>(d)] = domain_[static_cast<size_t>(d)].lower;
  }
  NdIndex x(static_cast<size_t>(n));
  for (;;) {
    for (size_t t = 0; t < m; ++t) {
      x = add(row, taps_[t].delta);
      for (Count g = 0; g < groups; ++g) {
        const size_t slot = static_cast<size_t>(g) * m + t;
        banks[slot] = map_->bank_of(x);
        if constexpr (WithOffsets) offsets[slot] = map_->offset_of(x);
        x[static_cast<size_t>(n - 1)] += inner_step;
      }
    }
    if constexpr (WithOffsets) {
      visit(row, std::span<const Count>(banks),
            std::span<const Address>(offsets));
    } else {
      visit(row, std::span<const Count>(banks));
    }
    int d = n - 2;
    for (; d >= 0; --d) {
      const PlanLoop& loop = domain_[static_cast<size_t>(d)];
      Coord& coord = row[static_cast<size_t>(d)];
      coord += loop.step;
      if (coord <= loop.upper) break;
      coord = loop.lower;
    }
    if (d < 0) return;
  }
}

template <bool WithOffsets, typename Visit>
void AccessPlan::walk(const Visit& visit) const {
  if (kind_ == Kind::kGeneric) {
    walk_generic<WithOffsets>(visit);
    return;
  }
  const int n = static_cast<int>(domain_.size());
  const size_t m = taps_.size();
  const Count groups = groups_per_row();
  const Coord inner_step = domain_.back().step;
  std::vector<Count> banks(m * static_cast<size_t>(groups), 0);
  std::vector<Address> offsets(WithOffsets ? banks.size() : 0);

  NdIndex row(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) {
    if (trip_count(domain_[static_cast<size_t>(d)]) == 0) return;
    row[static_cast<size_t>(d)] = domain_[static_cast<size_t>(d)].lower;
  }

  NdIndex x(static_cast<size_t>(n));  // scratch for compact-tail oracle calls
  for (;;) {
    if (kind_ == Kind::kFlat) {
      // Single bank: banks stay zero; only the linear offset advances.
      if constexpr (WithOffsets) {
        Address base = 0;
        for (size_t d = 0; d < static_cast<size_t>(n); ++d) {
          base += flat_stride_[d] * row[d];
        }
        for (size_t t = 0; t < m; ++t) {
          Address off = base + taps_[t].v_bias;
          for (Count g = 0; g < groups; ++g) {
            offsets[static_cast<size_t>(g) * m + t] = off;
            off += flat_inc_;
          }
        }
      }
    } else {
      Address v_base = 0;
      Address lead_base = 0;
      for (size_t d = 0; d < static_cast<size_t>(n); ++d) {
        v_base += alpha_[d] * row[d];
        lead_base += lead_stride_[d] * row[d];
      }
      for (size_t t = 0; t < m; ++t) {
        const Tap& tap = taps_[t];
        // Row-start state: one mod/div pair per tap per row; everything
        // after this is add-and-conditional-subtract.
        Count vmod = euclid_mod(v_base + tap.v_bias, span_);
        Count bank = vmod % modulus_;
        Count xnew = vmod / modulus_;
        const Address off_base = (lead_base + tap.lead_bias) * slices_;

        Count fast_groups = groups;
        if (kind_ == Kind::kCompact) {
          // Innermost element coordinate crosses into the compact tail at
          // e = tail_start_; everything from that group on takes the
          // oracle path (fewer than N positions per row).
          const Coord e0 = row[static_cast<size_t>(n - 1)] + tap.inner_delta;
          if (e0 >= tail_start_) {
            fast_groups = 0;
          } else {
            fast_groups =
                std::min<Count>(groups, ceil_div(tail_start_ - e0, inner_step));
          }
        }
        Count g = 0;
        for (; g < fast_groups; ++g) {
          const size_t slot = static_cast<size_t>(g) * m + t;
          if (kind_ == Kind::kFolded) {
            banks[slot] = fold_bank_[static_cast<size_t>(bank)];
            if constexpr (WithOffsets) {
              offsets[slot] =
                  off_base + xnew + fold_offset_[static_cast<size_t>(bank)];
            }
          } else {
            banks[slot] = bank;
            if constexpr (WithOffsets) offsets[slot] = off_base + xnew;
          }
          vmod += inc_vmod_;
          Count wrap = 0;
          if (vmod >= span_) {
            vmod -= span_;
            wrap = 1;
          }
          bank += inc_bank_;
          Count carry = 0;
          if (bank >= modulus_) {
            bank -= modulus_;
            carry = 1;
          }
          xnew += inc_q_ + carry - wrap * slices_;
        }
        for (; g < groups; ++g) {
          // Compact-tail slot: bank is still the incremental value; the
          // offset needs the per-bank tail rank, which only the mapping's
          // lazily built index knows.
          const size_t slot = static_cast<size_t>(g) * m + t;
          banks[slot] = bank;
          if constexpr (WithOffsets) {
            x = add(row, tap.delta);
            x[static_cast<size_t>(n - 1)] += g * inner_step;
            offsets[slot] = map_->offset_of(x);
          }
          vmod += inc_vmod_;
          if (vmod >= span_) vmod -= span_;
          bank += inc_bank_;
          if (bank >= modulus_) bank -= modulus_;
        }
      }
    }
    if constexpr (WithOffsets) {
      visit(row, std::span<const Count>(banks),
            std::span<const Address>(offsets));
    } else {
      visit(row, std::span<const Count>(banks));
    }
    int d = n - 2;
    for (; d >= 0; --d) {
      const PlanLoop& loop = domain_[static_cast<size_t>(d)];
      Coord& coord = row[static_cast<size_t>(d)];
      coord += loop.step;
      if (coord <= loop.upper) break;
      coord = loop.lower;
    }
    if (d < 0) return;
  }
}

template <bool WithOffsets>
void AccessPlan::walk_block(const RowBlockVisitor& visit) const {
  const int n = static_cast<int>(domain_.size());
  const size_t m = taps_.size();
  const Count groups = groups_per_row();
  const Coord inner_step = domain_.back().step;
  const size_t plane = static_cast<size_t>(groups);
  std::vector<Count> banks(m * plane, 0);
  std::vector<Address> offsets(WithOffsets ? banks.size() : 0);

  RowBlock block;
  block.taps = static_cast<Count>(m);
  block.groups = groups;
  block.banks = std::span<const Count>(banks);
  if constexpr (WithOffsets) {
    block.offsets = std::span<const Address>(offsets);
  }

  NdIndex row(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) {
    if (trip_count(domain_[static_cast<size_t>(d)]) == 0) return;
    row[static_cast<size_t>(d)] = domain_[static_cast<size_t>(d)].lower;
  }

  if (kind_ == Kind::kGeneric) {
    // Per-access virtual fallback, emitted straight into the SoA layout.
    NdIndex x(static_cast<size_t>(n));
    for (;;) {
      for (size_t t = 0; t < m; ++t) {
        x = add(row, taps_[t].delta);
        Count* bank_plane = banks.data() + t * plane;
        Address* off_plane = WithOffsets ? offsets.data() + t * plane : nullptr;
        for (Count g = 0; g < groups; ++g) {
          bank_plane[g] = map_->bank_of(x);
          if constexpr (WithOffsets) off_plane[g] = map_->offset_of(x);
          x[static_cast<size_t>(n - 1)] += inner_step;
        }
      }
      visit(row, block);
      int d = n - 2;
      for (; d >= 0; --d) {
        const PlanLoop& loop = domain_[static_cast<size_t>(d)];
        Coord& coord = row[static_cast<size_t>(d)];
        coord += loop.step;
        if (coord <= loop.upper) break;
        coord = loop.lower;
      }
      if (d < 0) return;
    }
  }

  const soa::Kernels& kernels = soa::kernels_for(simd::active_tier());
  size_t width_index = 0;
  while ((Count{1} << width_index) < kernels.lanes) ++width_index;
  const WidthTable& table = widths_[width_index];

  NdIndex x(static_cast<size_t>(n));  // scratch for compact-tail oracle calls
  for (;;) {
    if (kind_ == Kind::kFlat) {
      // Single bank: the bank planes stay zero; only offsets advance.
      if constexpr (WithOffsets) {
        Address base = 0;
        for (size_t d = 0; d < static_cast<size_t>(n); ++d) {
          base += flat_stride_[d] * row[d];
        }
        for (size_t t = 0; t < m; ++t) {
          soa::FlatRowArgs args;
          args.groups = groups;
          args.base = base + taps_[t].v_bias;
          args.inc = flat_inc_;
          kernels.flat_row(args, offsets.data() + t * plane);
        }
      }
    } else {
      Address v_base = 0;
      Address lead_base = 0;
      for (size_t d = 0; d < static_cast<size_t>(n); ++d) {
        v_base += alpha_[d] * row[d];
        lead_base += lead_stride_[d] * row[d];
      }
      for (size_t t = 0; t < m; ++t) {
        const Tap& tap = taps_[t];
        Count* bank_plane = banks.data() + t * plane;
        Address* off_plane = WithOffsets ? offsets.data() + t * plane : nullptr;

        Count fast_groups = groups;
        if (kind_ == Kind::kCompact) {
          const Coord e0 = row[static_cast<size_t>(n - 1)] + tap.inner_delta;
          if (e0 >= tail_start_) {
            fast_groups = 0;
          } else {
            fast_groups =
                std::min<Count>(groups, ceil_div(tail_start_ - e0, inner_step));
          }
        }
        if (fast_groups > 0) {
          const Count vmod = euclid_mod(v_base + tap.v_bias, span_);
          soa::LinearRowArgs args;
          args.groups = fast_groups;
          args.span = span_;
          args.modulus = modulus_;
          args.slices = slices_;
          args.inc_vmod = table.inc_vmod;
          args.inc_bank = table.inc_bank;
          args.inc_q = table.inc_q;
          args.lane_vmod = table.lane_vmod.data();
          args.lane_bank = table.lane_bank.data();
          args.lane_q = table.lane_q.data();
          args.vmod0 = vmod;
          args.bank0 = vmod % modulus_;
          args.xnew0 = vmod / modulus_;
          args.off_base = (lead_base + tap.lead_bias) * slices_;
          kernels.linear_row(args, bank_plane, off_plane);
          if (kind_ == Kind::kFolded) {
            soa::FoldArgs fold;
            fold.count = fast_groups;
            fold.fold_bank = fold_bank_.data();
            fold.fold_offset = fold_offset_.data();
            kernels.fold_pass(fold, bank_plane, off_plane);
          }
        }
        // Compact-tail groups: the direct closed form reproduces the
        // incremental bank exactly (both are v mod N); offsets need the
        // mapping's per-bank tail rank, so they stay oracle calls.
        for (Count g = fast_groups; g < groups; ++g) {
          const Address v = v_base + tap.v_bias + inc_v_ * g;
          bank_plane[g] = euclid_mod(v, modulus_);
          if constexpr (WithOffsets) {
            x = add(row, tap.delta);
            x[static_cast<size_t>(n - 1)] += g * inner_step;
            off_plane[g] = map_->offset_of(x);
          }
        }
      }
    }
    visit(row, block);
    int d = n - 2;
    for (; d >= 0; --d) {
      const PlanLoop& loop = domain_[static_cast<size_t>(d)];
      Coord& coord = row[static_cast<size_t>(d)];
      coord += loop.step;
      if (coord <= loop.upper) break;
      coord = loop.lower;
    }
    if (d < 0) return;
  }
}

void AccessPlan::for_each_row(const RowVisitor& visit) const {
  walk<true>(visit);
}

void AccessPlan::for_each_row_banks(const RowBankVisitor& visit) const {
  walk<false>(visit);
}

void AccessPlan::for_each_row_block(const RowBlockVisitor& visit) const {
  walk_block<true>(visit);
}

void AccessPlan::for_each_row_block_banks(const RowBlockVisitor& visit) const {
  walk_block<false>(visit);
}

}  // namespace mempart::sim
