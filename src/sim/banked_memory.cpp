#include "sim/banked_memory.h"

#include "common/errors.h"

namespace mempart::sim {

BankedMemory::BankedMemory(std::vector<Count> capacities) {
  MEMPART_REQUIRE(!capacities.empty(), "BankedMemory: need at least one bank");
  banks_.reserve(capacities.size());
  for (Count c : capacities) {
    MEMPART_REQUIRE(c >= 0, "BankedMemory: negative capacity");
    banks_.emplace_back(static_cast<size_t>(c), Word{0});
  }
}

Count BankedMemory::bank_capacity(Count bank) const {
  MEMPART_REQUIRE(bank >= 0 && bank < num_banks(),
                  "BankedMemory: bank index out of range");
  return static_cast<Count>(banks_[static_cast<size_t>(bank)].size());
}

Count BankedMemory::total_capacity() const {
  Count total = 0;
  for (const auto& b : banks_) total += static_cast<Count>(b.size());
  return total;
}

void BankedMemory::check(Count bank, Address offset) const {
  MEMPART_REQUIRE(bank >= 0 && bank < num_banks(),
                  "BankedMemory: bank index out of range");
  MEMPART_REQUIRE(
      offset >= 0 &&
          offset < static_cast<Address>(banks_[static_cast<size_t>(bank)].size()),
      "BankedMemory: offset out of range");
}

Word BankedMemory::read(Count bank, Address offset) const {
  check(bank, offset);
  return banks_[static_cast<size_t>(bank)][static_cast<size_t>(offset)];
}

void BankedMemory::write(Count bank, Address offset, Word value) {
  check(bank, offset);
  banks_[static_cast<size_t>(bank)][static_cast<size_t>(offset)] = value;
}

void BankedMemory::fill(Word value) {
  for (auto& b : banks_) {
    for (Word& w : b) w = value;
  }
}

}  // namespace mempart::sim
