// Tier-dispatched SoA kernels behind AccessPlan's block walk.
//
// AccessPlan::for_each_row_block generates one tap-major plane of banks
// (and optionally offsets) per tap per row; the inner loops live here as a
// table of function pointers selected once per walk from the active
// mempart::simd tier. Each kernel is written once as a template over a lane
// wrapper (common/simd.h) and instantiated per tier in its own translation
// unit — soa_kernels_base.cpp for scalar/SSE2/NEON, soa_kernels_avx2.cpp
// compiled with -mavx2 — so AVX2 instructions never leak into code paths a
// pre-AVX2 CPU could reach.
//
// The lane-parallel recurrence: the scalar fast path advances
// (vmod, bank, xnew) by one innermost step via add-and-conditional-
// subtract. The same invariant holds for ANY fixed increment — in
// particular i*inc_v (lane initialisation) and W*inc_v (the vector stride)
// — because euclid_mod(k*inc_v, span) < span and span is a multiple of N,
// so one conditional subtract per update still suffices
// (docs/PERFORMANCE.md derives it).
#pragma once

#include <cstdint>

#include "common/simd.h"
#include "common/types.h"

namespace mempart::sim::soa {

/// Inputs of one tap's fast-prefix generation over one row. All increments
/// are pre-reduced for the kernel's lane width W: inc_* advance a lane by W
/// innermost steps, lane_* hold the i-step deltas that spread the row-start
/// scalar state (vmod0, bank0, xnew0) across the W lanes.
struct LinearRowArgs {
  Count groups = 0;  ///< fast-prefix groups to emit
  Count span = 1;
  Count modulus = 1;
  Count slices = 0;
  Count inc_vmod = 0;
  Count inc_bank = 0;
  Count inc_q = 0;
  const Count* lane_vmod = nullptr;  ///< [W]
  const Count* lane_bank = nullptr;  ///< [W]
  const Count* lane_q = nullptr;     ///< [W]
  Count vmod0 = 0;
  Count bank0 = 0;
  Count xnew0 = 0;
  Address off_base = 0;  ///< folded into the offset lanes up front
};

/// Inputs of the single-bank (kFlat) offset row: offsets[g] = base + g*inc.
struct FlatRowArgs {
  Count groups = 0;
  Address base = 0;
  Address inc = 0;
};

/// Raw-bank fold tables (kFolded): banks[j] <- fold_bank[banks[j]] after
/// offsets[j] += fold_offset[banks[j]].
struct FoldArgs {
  Count count = 0;
  const Count* fold_bank = nullptr;
  const Address* fold_offset = nullptr;
};

/// One tier's kernel table. `tier` is what the table actually implements —
/// it can be narrower than the requested tier when the binary lacks the
/// wider instantiation.
struct Kernels {
  simd::Tier tier = simd::Tier::kScalar;
  Count lanes = 1;
  /// Emits `args.groups` banks (and offsets when non-null) for one tap row.
  void (*linear_row)(const LinearRowArgs& args, std::int64_t* banks,
                     std::int64_t* offsets) = nullptr;
  /// Emits the linear offset row of the flat map.
  void (*flat_row)(const FlatRowArgs& args, std::int64_t* offsets) = nullptr;
  /// Applies the fold tables in place over one tap row.
  void (*fold_pass)(const FoldArgs& args, std::int64_t* banks,
                    std::int64_t* offsets) = nullptr;
  /// Bank-occupancy conflict test over a whole tap-major block (N <= 64):
  /// sets collided[g] to 1 when two taps of group g share a bank, 0
  /// otherwise, and returns the number of collided groups. Range validation
  /// is fused into the same pass (two extra vector ops per load): *in_range
  /// reports whether every bank lay in [0, num_banks). Out-of-range lanes
  /// shift to 0 rather than invoking UB, so the caller may assert on
  /// *in_range after the call and before trusting `collided`.
  Count (*find_collisions)(const std::int64_t* banks, Count taps, Count groups,
                           std::int64_t num_banks, unsigned char* collided,
                           bool* in_range) = nullptr;
};

/// The kernel table for `tier`, clamped to what this binary instantiates.
const Kernels& kernels_for(simd::Tier tier);

/// Implemented only in soa_kernels_avx2.cpp (x86-64 builds).
const Kernels& avx2_kernels();

}  // namespace mempart::sim::soa
