#include "sim/trace.h"

#include <algorithm>

namespace mempart::sim {

void AccessTrace::record(NdIndex position, Count cycles) {
  records_.push_back({std::move(position), cycles});
}

Count AccessTrace::total_cycles() const {
  Count total = 0;
  for (const TraceRecord& r : records_) total += r.cycles;
  return total;
}

std::map<Count, Count> AccessTrace::cycle_histogram() const {
  std::map<Count, Count> histogram;
  for (const TraceRecord& r : records_) ++histogram[r.cycles];
  return histogram;
}

std::vector<NdIndex> AccessTrace::worst_positions() const {
  Count worst = 0;
  for (const TraceRecord& r : records_) worst = std::max(worst, r.cycles);
  std::vector<NdIndex> positions;
  for (const TraceRecord& r : records_) {
    if (r.cycles == worst) positions.push_back(r.position);
  }
  return positions;
}

bool AccessTrace::uniform() const {
  if (records_.empty()) return true;
  const Count first = records_.front().cycles;
  return std::all_of(records_.begin(), records_.end(),
                     [first](const TraceRecord& r) {
                       return r.cycles == first;
                     });
}

}  // namespace mempart::sim
