#include "sim/access_engine.h"

#include <algorithm>
#include <string>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/simd.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/soa_kernels.h"

namespace mempart::sim {

double AccessStats::avg_cycles_per_iteration() const {
  return iterations == 0
             ? 0.0
             : static_cast<double>(cycles) / static_cast<double>(iterations);
}

double AccessStats::effective_bandwidth() const {
  return cycles == 0
             ? 0.0
             : static_cast<double>(accesses) / static_cast<double>(cycles);
}

AccessEngine::AccessEngine(const AddressMap& map, Count ports_per_bank)
    : map_(map), ports_(ports_per_bank) {
  MEMPART_REQUIRE(ports_ >= 1, "AccessEngine: ports_per_bank must be >= 1");
  stats_.bank_load.assign(static_cast<size_t>(map_.num_banks()), 0);
  demand_.assign(static_cast<size_t>(map_.num_banks()), 0);
  stamp_.assign(demand_.size(), Count{-1});
}

// mempart-lint: allow(obs-span) per-iteration hot path; the per-group histogram below is the observation point, a span per group would dominate runtime (mempart-analyze: allow(span-coverage) same contract)
Count AccessEngine::issue(const std::vector<NdIndex>& group) {
  MEMPART_REQUIRE(!group.empty(), "AccessEngine::issue: empty group");
  std::fill(demand_.begin(), demand_.end(), Count{0});
  for (const NdIndex& x : group) {
    const Count bank = map_.bank_of(x);
    MEMPART_ASSERT(bank >= 0 && bank < map_.num_banks(),
                   "AddressMap returned bank out of range");
    ++demand_[static_cast<size_t>(bank)];
    ++stats_.bank_load[static_cast<size_t>(bank)];
  }
  Count worst = 0;
  for (Count d : demand_) worst = std::max(worst, d);
  const Count group_cycles = ceil_div(worst, ports_);

  ++stats_.iterations;
  stats_.accesses += static_cast<Count>(group.size());
  stats_.cycles += group_cycles;
  stats_.conflict_cycles += group_cycles - 1;
  stats_.worst_group_cycles = std::max(stats_.worst_group_cycles, group_cycles);
  // Per-group conflict-cycle distribution. This runs once per simulated
  // iteration, so the disabled path must stay a thread-local read plus a
  // branch: the bounds vector is a function-local static, built once.
  static const std::vector<double> kConflictBounds = obs::pow2_bounds(8);
  obs::observe("sim.conflict_cycles_per_group",
               static_cast<double>(group_cycles - 1), kConflictBounds);
  return group_cycles;
}

Count AccessEngine::issue_batch(std::span<const Count> banks,
                                Count group_size) {
  MEMPART_REQUIRE(group_size >= 1, "AccessEngine::issue_batch: group_size");
  MEMPART_REQUIRE(banks.size() % static_cast<size_t>(group_size) == 0,
                  "AccessEngine::issue_batch: banks not a whole number of "
                  "groups");
  obs::Span span("sim.issue_batch");
  span.arg("banks", static_cast<Count>(banks.size())).arg("group", group_size);
  obs::LatencyTimer timer("sim.issue_batch.ns");
  static const std::vector<double> kConflictBounds = obs::pow2_bounds(8);
  const Count num_banks = map_.num_banks();
  Count batch_cycles = 0;
  for (size_t base = 0; base < banks.size();
       base += static_cast<size_t>(group_size)) {
    // Branch-free range check, one assert per group instead of one branch
    // per element: bank and (num_banks - 1 - bank) are both non-negative
    // exactly when the bank is in [0, num_banks), so a sign test on the
    // OR-accumulate covers the whole group.
    Count range_acc = 0;
    for (Count i = 0; i < group_size; ++i) {
      const Count bank = banks[base + static_cast<size_t>(i)];
      range_acc |= bank | (num_banks - 1 - bank);
    }
    MEMPART_ASSERT(range_acc >= 0, "issue_batch: bank out of range in group");
    // Epoch stamping replaces the per-group std::fill of demand_: a bank's
    // count is live only when its stamp matches the current group's epoch.
    const Count epoch = epoch_++;
    Count worst = 0;
    for (Count i = 0; i < group_size; ++i) {
      const Count bank = banks[base + static_cast<size_t>(i)];
      const auto slot = static_cast<size_t>(bank);
      const Count d = stamp_[slot] == epoch ? demand_[slot] + 1 : Count{1};
      demand_[slot] = d;
      stamp_[slot] = epoch;
      ++stats_.bank_load[slot];
      worst = std::max(worst, d);
    }
    const Count group_cycles = ceil_div(worst, ports_);
    ++stats_.iterations;
    stats_.accesses += group_size;
    stats_.cycles += group_cycles;
    stats_.conflict_cycles += group_cycles - 1;
    stats_.worst_group_cycles =
        std::max(stats_.worst_group_cycles, group_cycles);
    obs::observe("sim.conflict_cycles_per_group",
                 static_cast<double>(group_cycles - 1), kConflictBounds);
    batch_cycles += group_cycles;
  }
  return batch_cycles;
}

Count AccessEngine::issue_batch_soa(std::span<const Count> banks, Count taps,
                                    Count groups) {
  MEMPART_REQUIRE(taps >= 1, "AccessEngine::issue_batch_soa: taps must be >= 1");
  MEMPART_REQUIRE(groups >= 0,
                  "AccessEngine::issue_batch_soa: groups must be >= 0");
  MEMPART_REQUIRE(
      banks.size() == static_cast<size_t>(taps) * static_cast<size_t>(groups),
      "AccessEngine::issue_batch_soa: banks span is not taps * groups");
  if (groups == 0) return 0;
  obs::Span span("sim.issue_batch");
  span.arg("banks", static_cast<Count>(banks.size())).arg("group", taps);
  obs::LatencyTimer timer("sim.issue_batch.ns");
  const Count num_banks = map_.num_banks();
  const size_t plane = static_cast<size_t>(groups);

  Count batch_cycles = 0;
  if (num_banks <= 64 && !obs::metrics_enabled()) {
    // Bitmask conflict test across whole lane blocks of groups: a group is
    // conflict-free iff no tap's occupancy bit was already set, and such a
    // group costs exactly ceil(1/ports) = 1 cycle. Only collided groups
    // need the exact epoch-stamped demand count. Range validation is fused
    // into the same pass (the kernel's shl1 is total, so scanning ahead of
    // the assert is safe) and must pass before any bank indexes a table.
    const soa::Kernels& kernels = soa::kernels_for(simd::active_tier());
    collided_.resize(plane);  // mempart-analyze: allow(noalloc) first-touch growth of the member collision buffer; steady-state batches reuse its capacity
    bool in_range = true;
    const Count collided_groups = kernels.find_collisions(
        banks.data(), taps, groups, num_banks, collided_.data(), &in_range);
    MEMPART_ASSERT(in_range, "issue_batch_soa: bank out of range in block");
    // Bank-load histogram over the whole contiguous block. Four interleaved
    // partial histograms break the store-forward chain a single counter
    // array serialises on whenever neighbouring accesses share a bank.
    {
      Count part[4][64] = {};
      const Count* data = banks.data();
      const size_t total = banks.size();
      size_t j = 0;
      for (; j + 4 <= total; j += 4) {
        ++part[0][static_cast<size_t>(data[j])];
        ++part[1][static_cast<size_t>(data[j + 1])];
        ++part[2][static_cast<size_t>(data[j + 2])];
        ++part[3][static_cast<size_t>(data[j + 3])];
      }
      for (; j < total; ++j) ++part[0][static_cast<size_t>(data[j])];
      for (size_t b = 0; b < static_cast<size_t>(num_banks); ++b) {
        stats_.bank_load[b] +=
            part[0][b] + part[1][b] + part[2][b] + part[3][b];
      }
    }
    batch_cycles = groups - collided_groups;
    Count worst_cycles = collided_groups < groups ? 1 : 0;
    for (Count g = 0; collided_groups > 0 && g < groups; ++g) {
      if (collided_[static_cast<size_t>(g)] == 0) continue;
      const Count epoch = epoch_++;
      Count worst = 0;
      for (size_t t = 0; t < static_cast<size_t>(taps); ++t) {
        const auto slot =
            static_cast<size_t>(banks[t * plane + static_cast<size_t>(g)]);
        const Count d = stamp_[slot] == epoch ? demand_[slot] + 1 : Count{1};
        demand_[slot] = d;
        stamp_[slot] = epoch;
        worst = std::max(worst, d);
      }
      const Count group_cycles = ceil_div(worst, ports_);
      batch_cycles += group_cycles;
      worst_cycles = std::max(worst_cycles, group_cycles);
    }
    stats_.iterations += groups;
    stats_.accesses += checked_mul(taps, groups);
    stats_.cycles += batch_cycles;
    stats_.conflict_cycles += batch_cycles - groups;
    stats_.worst_group_cycles =
        std::max(stats_.worst_group_cycles, worst_cycles);
  } else {
    // Exact scalar path: more than 64 banks (occupancy no longer fits one
    // word) or metrics enabled (the per-group histogram observation below
    // must fire for every group, as issue_batch does). Validate every plane
    // before scoring touches a table: branch-free OR-accumulate, one assert
    // per tap plane (same sign trick as issue_batch's per-group check).
    for (size_t t = 0; t < static_cast<size_t>(taps); ++t) {
      const Count* row = banks.data() + t * plane;
      Count range_acc = 0;
      for (size_t g = 0; g < plane; ++g) {
        range_acc |= row[g] | (num_banks - 1 - row[g]);
      }
      MEMPART_ASSERT(range_acc >= 0,
                     "issue_batch_soa: bank out of range in tap plane");
    }
    static const std::vector<double> kConflictBounds = obs::pow2_bounds(8);
    for (Count g = 0; g < groups; ++g) {
      const Count epoch = epoch_++;
      Count worst = 0;
      for (size_t t = 0; t < static_cast<size_t>(taps); ++t) {
        const auto slot =
            static_cast<size_t>(banks[t * plane + static_cast<size_t>(g)]);
        const Count d = stamp_[slot] == epoch ? demand_[slot] + 1 : Count{1};
        demand_[slot] = d;
        stamp_[slot] = epoch;
        ++stats_.bank_load[slot];
        worst = std::max(worst, d);
      }
      const Count group_cycles = ceil_div(worst, ports_);
      ++stats_.iterations;
      stats_.accesses += taps;
      stats_.cycles += group_cycles;
      stats_.conflict_cycles += group_cycles - 1;
      stats_.worst_group_cycles =
          std::max(stats_.worst_group_cycles, group_cycles);
      obs::observe("sim.conflict_cycles_per_group",
                   static_cast<double>(group_cycles - 1), kConflictBounds);
      batch_cycles += group_cycles;
    }
  }
  return batch_cycles;
}

// mempart-lint: allow(obs-span) trivial state reset; nothing worth tracing (mempart-analyze: allow(span-coverage) same contract)
void AccessEngine::reset() {
  stats_ = AccessStats{};
  stats_.bank_load.assign(static_cast<size_t>(map_.num_banks()), 0);
  std::fill(demand_.begin(), demand_.end(), Count{0});
  std::fill(stamp_.begin(), stamp_.end(), Count{-1});
  epoch_ = 0;
}

void publish_stats(const AccessStats& stats, std::string_view prefix) {
  if (!obs::metrics_enabled()) return;
  const std::string base(prefix);
  obs::count(base + ".iterations", stats.iterations);
  obs::count(base + ".accesses", stats.accesses);
  obs::count(base + ".cycles", stats.cycles);
  obs::count(base + ".conflict_cycles", stats.conflict_cycles);
  if (stats.bank_load.empty()) return;
  Count min_load = stats.bank_load.front();
  Count max_load = min_load;
  Count total = 0;
  static const std::vector<double> kLoadBounds = obs::pow2_bounds(24);
  const std::string load_metric = base + ".bank_load";
  for (const Count load : stats.bank_load) {
    min_load = std::min(min_load, load);
    max_load = std::max(max_load, load);
    total += load;
    obs::observe(load_metric, static_cast<double>(load), kLoadBounds);
  }
  obs::gauge(base + ".bank_load.min", static_cast<double>(min_load));
  obs::gauge(base + ".bank_load.max", static_cast<double>(max_load));
  obs::gauge(base + ".bank_load.mean",
             static_cast<double>(total) /
                 static_cast<double>(stats.bank_load.size()));
}

}  // namespace mempart::sim
