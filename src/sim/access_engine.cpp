#include "sim/access_engine.h"

#include <algorithm>
#include <string>

#include "common/errors.h"
#include "common/math_util.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart::sim {

double AccessStats::avg_cycles_per_iteration() const {
  return iterations == 0
             ? 0.0
             : static_cast<double>(cycles) / static_cast<double>(iterations);
}

double AccessStats::effective_bandwidth() const {
  return cycles == 0
             ? 0.0
             : static_cast<double>(accesses) / static_cast<double>(cycles);
}

AccessEngine::AccessEngine(const AddressMap& map, Count ports_per_bank)
    : map_(map), ports_(ports_per_bank) {
  MEMPART_REQUIRE(ports_ >= 1, "AccessEngine: ports_per_bank must be >= 1");
  stats_.bank_load.assign(static_cast<size_t>(map_.num_banks()), 0);
  demand_.assign(static_cast<size_t>(map_.num_banks()), 0);
}

// mempart-lint: allow(obs-span) per-iteration hot path; the per-group histogram below is the observation point, a span per group would dominate runtime
Count AccessEngine::issue(const std::vector<NdIndex>& group) {
  MEMPART_REQUIRE(!group.empty(), "AccessEngine::issue: empty group");
  std::fill(demand_.begin(), demand_.end(), Count{0});
  for (const NdIndex& x : group) {
    const Count bank = map_.bank_of(x);
    MEMPART_ASSERT(bank >= 0 && bank < map_.num_banks(),
                   "AddressMap returned bank out of range");
    ++demand_[static_cast<size_t>(bank)];
    ++stats_.bank_load[static_cast<size_t>(bank)];
  }
  Count worst = 0;
  for (Count d : demand_) worst = std::max(worst, d);
  const Count group_cycles = ceil_div(worst, ports_);

  ++stats_.iterations;
  stats_.accesses += static_cast<Count>(group.size());
  stats_.cycles += group_cycles;
  stats_.conflict_cycles += group_cycles - 1;
  stats_.worst_group_cycles = std::max(stats_.worst_group_cycles, group_cycles);
  // Per-group conflict-cycle distribution. This runs once per simulated
  // iteration, so the disabled path must stay a thread-local read plus a
  // branch: the bounds vector is a function-local static, built once.
  static const std::vector<double> kConflictBounds = obs::pow2_bounds(8);
  obs::observe("sim.conflict_cycles_per_group",
               static_cast<double>(group_cycles - 1), kConflictBounds);
  return group_cycles;
}

Count AccessEngine::issue_batch(std::span<const Count> banks,
                                Count group_size) {
  MEMPART_REQUIRE(group_size >= 1, "AccessEngine::issue_batch: group_size");
  MEMPART_REQUIRE(banks.size() % static_cast<size_t>(group_size) == 0,
                  "AccessEngine::issue_batch: banks not a whole number of "
                  "groups");
  if (stamp_.size() != demand_.size()) {
    stamp_.assign(demand_.size(), Count{-1});
    epoch_ = 0;
  }
  obs::Span span("sim.issue_batch");
  span.arg("banks", static_cast<Count>(banks.size())).arg("group", group_size);
  obs::LatencyTimer timer("sim.issue_batch.ns");
  static const std::vector<double> kConflictBounds = obs::pow2_bounds(8);
  const Count num_banks = map_.num_banks();
  Count batch_cycles = 0;
  for (size_t base = 0; base < banks.size();
       base += static_cast<size_t>(group_size)) {
    // Epoch stamping replaces the per-group std::fill of demand_: a bank's
    // count is live only when its stamp matches the current group's epoch.
    const Count epoch = epoch_++;
    Count worst = 0;
    for (Count i = 0; i < group_size; ++i) {
      const Count bank = banks[base + static_cast<size_t>(i)];
      MEMPART_ASSERT(bank >= 0 && bank < num_banks,
                     "issue_batch: bank out of range");
      const auto slot = static_cast<size_t>(bank);
      const Count d = stamp_[slot] == epoch ? demand_[slot] + 1 : Count{1};
      demand_[slot] = d;
      stamp_[slot] = epoch;
      ++stats_.bank_load[slot];
      worst = std::max(worst, d);
    }
    const Count group_cycles = ceil_div(worst, ports_);
    ++stats_.iterations;
    stats_.accesses += group_size;
    stats_.cycles += group_cycles;
    stats_.conflict_cycles += group_cycles - 1;
    stats_.worst_group_cycles =
        std::max(stats_.worst_group_cycles, group_cycles);
    obs::observe("sim.conflict_cycles_per_group",
                 static_cast<double>(group_cycles - 1), kConflictBounds);
    batch_cycles += group_cycles;
  }
  return batch_cycles;
}

// mempart-lint: allow(obs-span) trivial state reset; nothing worth tracing
void AccessEngine::reset() {
  stats_ = AccessStats{};
  stats_.bank_load.assign(static_cast<size_t>(map_.num_banks()), 0);
}

void publish_stats(const AccessStats& stats, std::string_view prefix) {
  if (!obs::metrics_enabled()) return;
  const std::string base(prefix);
  obs::count(base + ".iterations", stats.iterations);
  obs::count(base + ".accesses", stats.accesses);
  obs::count(base + ".cycles", stats.cycles);
  obs::count(base + ".conflict_cycles", stats.conflict_cycles);
  if (stats.bank_load.empty()) return;
  Count min_load = stats.bank_load.front();
  Count max_load = min_load;
  Count total = 0;
  static const std::vector<double> kLoadBounds = obs::pow2_bounds(24);
  const std::string load_metric = base + ".bank_load";
  for (const Count load : stats.bank_load) {
    min_load = std::min(min_load, load);
    max_load = std::max(max_load, load);
    total += load;
    obs::observe(load_metric, static_cast<double>(load), kLoadBounds);
  }
  obs::gauge(base + ".bank_load.min", static_cast<double>(min_load));
  obs::gauge(base + ".bank_load.max", static_cast<double>(max_load));
  obs::gauge(base + ".bank_load.mean",
             static_cast<double>(total) /
                 static_cast<double>(stats.bank_load.size()));
}

}  // namespace mempart::sim
