// Functional view of an array stored across banks.
//
// BankedArray couples an AddressMap with a BankedMemory sized from it:
// store/load by n-dimensional index, with every element physically living at
// (bank_of(x), offset_of(x)). Integration tests round-trip whole arrays
// through it to prove the mapping loses no data, and the image pipelines use
// it to run convolutions out of the partitioned memory.
#pragma once

#include <functional>

#include "common/nd.h"
#include "sim/address_map.h"
#include "sim/banked_memory.h"

namespace mempart::sim {

/// An n-dimensional array physically laid out by an AddressMap.
class BankedArray {
 public:
  /// `map` must outlive the array. Allocates each bank at its capacity.
  explicit BankedArray(const AddressMap& map);

  [[nodiscard]] const AddressMap& map() const { return map_; }
  [[nodiscard]] const NdShape& shape() const { return map_.array_shape(); }
  [[nodiscard]] BankedMemory& memory() { return memory_; }
  [[nodiscard]] const BankedMemory& memory() const { return memory_; }

  void store(const NdIndex& x, Word value);
  [[nodiscard]] Word load(const NdIndex& x) const;

  /// Stores generator(x) into every element.
  void fill_from(const std::function<Word(const NdIndex&)>& generator);

 private:
  const AddressMap& map_;
  BankedMemory memory_;
};

}  // namespace mempart::sim
