// Uniform interface between partitioning schemes and the memory simulator.
//
// The simulator only needs three questions answered per element: which bank,
// which offset, how big is each bank. Adapters wrap the proposed mapping
// (core/BankMapping), the LTB baseline (baseline/LtbMapping) and the
// unpartitioned case (one bank, row-major) behind this interface, so the
// same access engine measures all of them.
#pragma once

#include <memory>

#include "baseline/ltb_mapping.h"
#include "common/nd.h"
#include "common/types.h"
#include "core/bank_mapping.h"

namespace mempart::sim {

/// Bank/offset view of an array under some partitioning scheme.
class AddressMap {
 public:
  virtual ~AddressMap() = default;

  [[nodiscard]] virtual const NdShape& array_shape() const = 0;
  [[nodiscard]] virtual Count num_banks() const = 0;
  [[nodiscard]] virtual Count bank_of(const NdIndex& x) const = 0;
  [[nodiscard]] virtual Address offset_of(const NdIndex& x) const = 0;
  [[nodiscard]] virtual Count bank_capacity(Count bank) const = 0;
};

/// The proposed scheme (core/BankMapping).
class CoreAddressMap final : public AddressMap {
 public:
  explicit CoreAddressMap(BankMapping mapping) : mapping_(std::move(mapping)) {}

  [[nodiscard]] const NdShape& array_shape() const override;
  [[nodiscard]] Count num_banks() const override;
  [[nodiscard]] Count bank_of(const NdIndex& x) const override;
  [[nodiscard]] Address offset_of(const NdIndex& x) const override;
  [[nodiscard]] Count bank_capacity(Count bank) const override;

  [[nodiscard]] const BankMapping& mapping() const { return mapping_; }

 private:
  BankMapping mapping_;
};

/// The LTB baseline scheme.
class LtbAddressMap final : public AddressMap {
 public:
  explicit LtbAddressMap(baseline::LtbMapping mapping)
      : mapping_(std::move(mapping)) {}

  [[nodiscard]] const NdShape& array_shape() const override;
  [[nodiscard]] Count num_banks() const override;
  [[nodiscard]] Count bank_of(const NdIndex& x) const override;
  [[nodiscard]] Address offset_of(const NdIndex& x) const override;
  [[nodiscard]] Count bank_capacity(Count bank) const override;

  [[nodiscard]] const baseline::LtbMapping& mapping() const { return mapping_; }

 private:
  baseline::LtbMapping mapping_;
};

/// No partitioning: a single bank holding the array row-major. The memory-
/// bandwidth wall of §1 — every access pattern serialises to m cycles.
class FlatAddressMap final : public AddressMap {
 public:
  explicit FlatAddressMap(NdShape shape) : shape_(std::move(shape)) {}

  [[nodiscard]] const NdShape& array_shape() const override { return shape_; }
  [[nodiscard]] Count num_banks() const override { return 1; }
  [[nodiscard]] Count bank_of(const NdIndex&) const override { return 0; }
  [[nodiscard]] Address offset_of(const NdIndex& x) const override;
  [[nodiscard]] Count bank_capacity(Count) const override;

 private:
  NdShape shape_;
};

}  // namespace mempart::sim
