// Multi-bank memory storage.
//
// Pure storage: N banks of fixed capacities holding 64-bit words. Cycle
// behaviour (ports, arbitration) lives in AccessEngine; keeping storage and
// timing separate lets functional tests validate data integrity without a
// clock, and timing tests run without caring about values.
#pragma once

#include <vector>

#include "common/types.h"

namespace mempart::sim {

/// Data word stored by the simulator. Wide enough for 16-bit pixels and for
/// every intermediate the integer stencil kernels produce.
using Word = std::int64_t;

/// N banks of words with bounds-checked access.
class BankedMemory {
 public:
  /// One bank per entry of `capacities` (each > 0 unless the bank is
  /// legitimately empty, which zero-capacity entries model).
  explicit BankedMemory(std::vector<Count> capacities);

  [[nodiscard]] Count num_banks() const {
    return static_cast<Count>(banks_.size());
  }
  [[nodiscard]] Count bank_capacity(Count bank) const;

  /// Total words allocated over all banks.
  [[nodiscard]] Count total_capacity() const;

  [[nodiscard]] Word read(Count bank, Address offset) const;
  void write(Count bank, Address offset, Word value);

  /// Resets every word to `value`.
  void fill(Word value);

 private:
  void check(Count bank, Address offset) const;
  std::vector<std::vector<Word>> banks_;
};

}  // namespace mempart::sim
