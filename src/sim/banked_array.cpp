#include "sim/banked_array.h"

namespace mempart::sim {
namespace {

std::vector<Count> capacities_of(const AddressMap& map) {
  std::vector<Count> caps;
  caps.reserve(static_cast<size_t>(map.num_banks()));
  for (Count b = 0; b < map.num_banks(); ++b) {
    caps.push_back(map.bank_capacity(b));
  }
  return caps;
}

}  // namespace

BankedArray::BankedArray(const AddressMap& map)
    : map_(map), memory_(capacities_of(map)) {}

void BankedArray::store(const NdIndex& x, Word value) {
  memory_.write(map_.bank_of(x), map_.offset_of(x), value);
}

Word BankedArray::load(const NdIndex& x) const {
  return memory_.read(map_.bank_of(x), map_.offset_of(x));
}

void BankedArray::fill_from(const std::function<Word(const NdIndex&)>& generator) {
  shape().for_each([&](const NdIndex& x) { store(x, generator(x)); });
}

}  // namespace mempart::sim
