// Compiled, devirtualized address plans for loop-nest replay.
//
// The paper's pitch is that B(x) = (alpha . x) mod N is cheap enough to
// evaluate every cycle, yet the reference simulator path pays, per access,
// a virtual AddressMap call, an n-term dot product, a Euclidean modulo
// (hardware division) and op-counter bookkeeping — and reads_at() allocates
// a fresh index vector per iteration on top. AccessPlan removes all of it
// by compiling the (map, pattern, domain) triple once:
//
//   * per tap i the constant alpha . Delta(i) is folded into a row-start
//     bias, so a row needs ONE dot product per tap, not one per access;
//   * walking the innermost dimension, v = alpha . x changes by the fixed
//     increment alpha_{n-1} * step, so bank and intra-bank offset advance
//     with add-and-conditional-subtract updates only:
//
//         bank += inc_bank;         if (bank >= N)    bank -= N;
//         vmod += inc_vmod;         if (vmod >= K'N) { vmod -= K'N; wrap; }
//         x_new += inc_q + carry;   if (wrap)         x_new -= K';
//
//     which keeps bank == vmod mod N and x_new == vmod / N without any
//     division (docs/PERFORMANCE.md derives the invariant);
//   * folded mappings replace the second mod/div pair by two precomputed
//     lookup tables over the N_f raw banks.
//
// The plan recognises CoreAddressMap (padded, compact-tail and folded),
// LtbAddressMap and FlatAddressMap; anything else falls back to a generic
// per-access virtual walk so callers never need two code paths. The
// reference AddressMap path stays in the tree as the oracle — the property
// tests and bench_fastpath assert bit-identical banks, offsets and cycle
// statistics between the two.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <vector>

#include "common/nd.h"
#include "common/simd.h"
#include "common/types.h"
#include "pattern/pattern.h"
#include "sim/address_map.h"

namespace mempart::sim {

/// One level of the replayed iteration domain, outermost first — the same
/// triple as loopnest::Loop, mirrored here so sim does not depend on the
/// loopnest library (which depends on sim).
struct PlanLoop {
  Coord lower = 0;
  Coord upper = 0;  ///< inclusive
  Coord step = 1;
};

/// A pattern replay compiled against one AddressMap.
class AccessPlan {
 public:
  /// `map` must outlive the plan. `domain` must have the map's rank and
  /// every domain position p must keep p + Delta inside the array for all
  /// pattern offsets Delta (the StencilProgram loop nests guarantee this).
  AccessPlan(const AddressMap& map, const Pattern& reads,
             std::vector<PlanLoop> domain);

  /// True when `map` is a shape the plan compiles to the incremental fast
  /// path (Core / LTB / flat maps); false means the generic fallback.
  [[nodiscard]] static bool supports(const AddressMap& map);

  /// False when this instance runs the generic per-access fallback.
  [[nodiscard]] bool compiled() const;

  [[nodiscard]] Count taps() const { return static_cast<Count>(taps_.size()); }
  [[nodiscard]] Count num_banks() const { return map_->num_banks(); }

  /// Iterations of the innermost loop (groups emitted per row).
  [[nodiscard]] Count groups_per_row() const;

  /// Total iteration count of the domain.
  [[nodiscard]] Count total_groups() const;

  /// Per-row visitor: `row_start` is the first iteration vector of the row
  /// and the spans hold group-major compiled addresses for all of its
  /// groups_per_row() iterations — tap t of group g at index g * taps() + t.
  /// The spans are only valid inside the callback.
  using RowVisitor = std::function<void(
      const NdIndex& row_start, std::span<const Count> banks,
      std::span<const Address> offsets)>;

  /// Banks-only variant for cycle accounting (skips offset generation).
  using RowBankVisitor = std::function<void(const NdIndex& row_start,
                                            std::span<const Count> banks)>;

  /// Walks the whole domain row by row, emitting banks and offsets.
  void for_each_row(const RowVisitor& visit) const;

  /// Walks the whole domain row by row, emitting banks only.
  void for_each_row_banks(const RowBankVisitor& visit) const;

  /// One row in structure-of-arrays (tap-major) form: tap t's values for
  /// all groups are contiguous at plane [t * groups, (t + 1) * groups).
  /// The SIMD kernels store whole lane vectors into these planes, and SoA
  /// consumers (issue_batch_soa, the convolve inner loop) read them without
  /// repacking. Spans are only valid inside the visitor callback.
  struct RowBlock {
    Count taps = 0;
    Count groups = 0;
    std::span<const Count> banks;      ///< taps planes of `groups` values
    std::span<const Address> offsets;  ///< same layout; empty in banks-only walks

    [[nodiscard]] std::span<const Count> bank_plane(Count t) const {
      return banks.subspan(static_cast<size_t>(t) * static_cast<size_t>(groups),
                           static_cast<size_t>(groups));
    }
    [[nodiscard]] std::span<const Address> offset_plane(Count t) const {
      return offsets.subspan(
          static_cast<size_t>(t) * static_cast<size_t>(groups),
          static_cast<size_t>(groups));
    }
  };

  using RowBlockVisitor =
      std::function<void(const NdIndex& row_start, const RowBlock& block)>;

  /// Walks the whole domain row by row in SoA form, generating each plane
  /// with the simd::active_tier() kernels. Produces banks and offsets
  /// bit-identical to for_each_row (the scalar group-major walk) under
  /// every dispatch tier — pinned by the differential harness and the
  /// AccessPlanSimd property tests.
  void for_each_row_block(const RowBlockVisitor& visit) const;

  /// Banks-only SoA walk (offsets span left empty).
  void for_each_row_block_banks(const RowBlockVisitor& visit) const;

 private:
  enum class Kind {
    kModSlice,  ///< Core padded / LTB: offset = leading * K' + (vmod / N)
    kFolded,    ///< kModSlice plus raw-bank fold lookup tables
    kCompact,   ///< kModSlice body plus oracle fallback for tail elements
    kFlat,      ///< single bank, row-major offset (linear in x)
    kGeneric,   ///< per-access virtual AddressMap calls (the oracle)
  };

  /// Per-tap compile-time constants.
  struct Tap {
    NdIndex delta;          ///< the pattern offset itself (generic/tail path)
    Address v_bias = 0;     ///< alpha . Delta
    Address lead_bias = 0;  ///< leading-flat contribution of Delta
    Coord inner_delta = 0;  ///< Delta_{n-1}
  };

  template <bool WithOffsets, typename Visit>
  void walk(const Visit& visit) const;
  template <bool WithOffsets, typename Visit>
  void walk_generic(const Visit& visit) const;
  template <bool WithOffsets>
  void walk_block(const RowBlockVisitor& visit) const;

  void compile(const Pattern& reads);

  /// Stride table for one SIMD lane width W (widths 1, 2, 4, 8 precomputed
  /// at compile() time, indexed by log2 W): inc_* advance a lane by W
  /// innermost steps, lane_* spread the row-start state across the lanes.
  struct WidthTable {
    Count inc_vmod = 0;
    Count inc_bank = 0;
    Count inc_q = 0;
    std::array<Count, simd::kMaxLanes> lane_vmod{};
    std::array<Count, simd::kMaxLanes> lane_bank{};
    std::array<Count, simd::kMaxLanes> lane_q{};
  };

  const AddressMap* map_;
  std::vector<PlanLoop> domain_;
  Kind kind_ = Kind::kGeneric;
  std::vector<Tap> taps_;

  // Linear-address machinery shared by every compiled kind.
  std::vector<Count> alpha_;         ///< transform vector (empty for kFlat)
  std::vector<Address> lead_stride_; ///< per-dim leading-flat strides
  Count modulus_ = 1;                ///< conflict modulus N (N_f when folded)
  Count slices_ = 0;                 ///< K' (padded) or K (compact body)
  Count span_ = 1;                   ///< slices * modulus (1 when unused)
  Count tail_start_ = 0;             ///< first innermost coord of the tail
  // Innermost-step increments (already reduced mod span_ / modulus_).
  Address inc_v_ = 0;
  Count inc_vmod_ = 0;
  Count inc_bank_ = 0;
  Count inc_q_ = 0;
  std::array<WidthTable, 4> widths_{};  ///< per-lane-width SIMD strides
  // Folding tables over the raw bank index in [0, modulus_).
  std::vector<Count> fold_bank_;
  std::vector<Address> fold_offset_;
  // kFlat: full row-major strides and the innermost increment.
  std::vector<Address> flat_stride_;
  Address flat_inc_ = 0;
};

}  // namespace mempart::sim
