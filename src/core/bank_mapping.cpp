#include "core/bank_mapping.h"

#include <algorithm>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"

namespace mempart {
namespace {

NdShape leading_shape(const NdShape& shape) {
  if (shape.rank() == 1) return NdShape({1});
  std::vector<Count> extents(shape.extents().begin(),
                             shape.extents().end() - 1);
  return NdShape(std::move(extents));
}

}  // namespace

BankMapping::BankMapping(NdShape array_shape, LinearTransform transform,
                         Options options)
    : shape_(std::move(array_shape)),
      transform_(std::move(transform)),
      options_(options) {
  MEMPART_REQUIRE(options_.num_banks >= 1,
                  "BankMapping: num_banks must be >= 1");
  MEMPART_REQUIRE(transform_.rank() == shape_.rank(),
                  "BankMapping: transform/array rank mismatch");
  // fold_modulus == num_banks is a fold factor of 1: every raw bank maps to
  // itself and the fold-position segment offset is always 0. Normalise to
  // the unfolded path so folded() reports false and intra_bank_coord stays
  // available, instead of taking the folded offset path with F = 1.
  if (options_.fold_modulus == options_.num_banks) options_.fold_modulus = 0;
  if (options_.fold_modulus != 0) {
    MEMPART_REQUIRE(options_.fold_modulus >= options_.num_banks,
                    "BankMapping: fold_modulus must be >= num_banks");
    MEMPART_REQUIRE(options_.tail == TailPolicy::kPadded,
                    "BankMapping: folding requires TailPolicy::kPadded");
  }
  modulus_ = folded() ? options_.fold_modulus : options_.num_banks;
  fold_factor_ = ceil_div(modulus_, options_.num_banks);
  const Count innermost = shape_.extent(shape_.rank() - 1);
  body_slices_ = innermost / modulus_;
  padded_slices_ = ceil_div(innermost, modulus_);
  leading_volume_ = 1;
  for (int d = 0; d + 1 < shape_.rank(); ++d) {
    leading_volume_ = checked_mul(leading_volume_, shape_.extent(d));
  }

  // Injectivity of the innermost remap. For fixed leading coordinates the
  // pair (bank, x_new) is exactly v mod span with span = K'N (padded) or the
  // body/tail split (compact), and v advances by alpha_{n-1} per innermost
  // step. x -> (alpha_last * x) mod span repeats with period
  // span / gcd(alpha_last, span), so the remap silently collides whenever
  // the innermost extent exceeds that period. Derived transforms have
  // alpha_{n-1} = 1 and always pass; arbitrary (baseline-style) vectors must
  // be rejected here rather than produce a corrupt layout.
  const Count alpha_last =
      transform_.alpha()[static_cast<size_t>(shape_.rank() - 1)];
  if (options_.tail == TailPolicy::kPadded) {
    const Count span = checked_mul(padded_slices_, modulus_);
    const Count period = span / gcd(euclid_mod(alpha_last, span), span);
    MEMPART_REQUIRE(innermost <= period,
                    "BankMapping: innermost remap not injective — extent "
                    "w_{n-1} exceeds K'N / gcd(alpha_{n-1}, K'N)");
  } else {
    if (body_slices_ > 0) {
      const Count body_span = body_slices_ * modulus_;
      MEMPART_REQUIRE(gcd(euclid_mod(alpha_last, body_span), body_span) == 1,
                      "BankMapping: compact body remap not injective — "
                      "gcd(alpha_{n-1}, K*N) must be 1");
    }
    const Count tail_len = innermost - body_slices_ * modulus_;
    if (tail_len > 0) {
      const Count period =
          modulus_ / gcd(euclid_mod(alpha_last, modulus_), modulus_);
      MEMPART_REQUIRE(tail_len <= period,
                      "BankMapping: compact tail remap not injective — tail "
                      "length exceeds N / gcd(alpha_{n-1}, N)");
    }
  }
}

Count BankMapping::raw_bank(Address v) const {
  OpCounter::charge(OpKind::kDiv);
  return euclid_mod(v, modulus_);
}

Count BankMapping::bank_of(const NdIndex& x) const {
  MEMPART_REQUIRE(shape_.contains(x), "BankMapping::bank_of: x out of domain");
  const Count raw = raw_bank(transform_.apply(x));
  if (!folded()) return raw;
  OpCounter::charge(OpKind::kDiv);
  return euclid_mod(raw, options_.num_banks);
}

NdIndex BankMapping::intra_bank_coord(const NdIndex& x) const {
  MEMPART_REQUIRE(!folded(),
                  "BankMapping::intra_bank_coord: folded mappings have no "
                  "n-dimensional bank coordinate");
  MEMPART_REQUIRE(shape_.contains(x),
                  "BankMapping::intra_bank_coord: x out of domain");
  const Address v = transform_.apply(x);
  const Coord innermost = x[static_cast<size_t>(shape_.rank() - 1)];
  Count x_new = 0;
  if (options_.tail == TailPolicy::kPadded) {
    x_new = floor_div(euclid_mod(v, padded_slices_ * modulus_), modulus_);
    OpCounter::charge(OpKind::kDiv, 2);
  } else if (innermost < body_slices_ * modulus_) {
    x_new = floor_div(euclid_mod(v, body_slices_ * modulus_), modulus_);
    OpCounter::charge(OpKind::kDiv, 2);
  } else {
    // Compact tail: the single extra slice index K.
    x_new = body_slices_;
  }
  NdIndex coord(x.begin(), x.end());
  coord[static_cast<size_t>(shape_.rank() - 1)] = x_new;
  return coord;
}

Address BankMapping::offset_of(const NdIndex& x) const {
  MEMPART_REQUIRE(shape_.contains(x), "BankMapping::offset_of: x out of domain");
  const Address v = transform_.apply(x);
  const Coord innermost = x[static_cast<size_t>(shape_.rank() - 1)];

  // Flat index of the leading coordinates (x_0, ..., x_{n-2}).
  Address leading_flat = 0;
  for (int d = 0; d + 1 < shape_.rank(); ++d) {
    leading_flat = leading_flat * shape_.extent(d) + x[static_cast<size_t>(d)];
  }

  Address offset = 0;
  if (options_.tail == TailPolicy::kPadded) {
    const Count x_new =
        floor_div(euclid_mod(v, padded_slices_ * modulus_), modulus_);
    OpCounter::charge(OpKind::kDiv, 2);
    offset = leading_flat * padded_slices_ + x_new;
  } else if (innermost < body_slices_ * modulus_) {
    const Count x_new =
        floor_div(euclid_mod(v, body_slices_ * modulus_), modulus_);
    OpCounter::charge(OpKind::kDiv, 2);
    offset = leading_flat * body_slices_ + x_new;
  } else {
    // Compact tail: the element's slot is its rank among the tail elements
    // of its bank, appended after the bank's body region.
    const auto& tails = compact_tail_index()[static_cast<size_t>(raw_bank(v))];
    const auto it = std::lower_bound(tails.begin(), tails.end(), leading_flat);
    MEMPART_ASSERT(it != tails.end() && *it == leading_flat,
                   "compact tail index must contain every tail element");
    offset = leading_volume_ * body_slices_ + (it - tails.begin());
  }

  if (folded()) {
    // Folded banks are concatenations of their constituent raw banks; the
    // fold position of the raw bank selects the segment.
    const Count raw = raw_bank(v);
    const Count fold_position = raw / options_.num_banks;
    OpCounter::charge(OpKind::kDiv);
    offset += fold_position * (padded_slices_ * leading_volume_);
  }
  return offset;
}

Count BankMapping::bank_capacity(Count bank) const {
  MEMPART_REQUIRE(bank >= 0 && bank < options_.num_banks,
                  "BankMapping::bank_capacity: bank out of range");
  const Count raw_capacity = padded_slices_ * leading_volume_;
  if (folded()) {
    // Number of raw banks r in [0, modulus) with r % num_banks == bank.
    const Count folds_into =
        (modulus_ - bank + options_.num_banks - 1) / options_.num_banks;
    return raw_capacity * folds_into;
  }
  if (options_.tail == TailPolicy::kPadded) return raw_capacity;

  // Compact: equal body share plus the exact tail occupancy of this bank.
  const auto& tails = compact_tail_index()[static_cast<size_t>(bank)];
  return body_slices_ * leading_volume_ + static_cast<Count>(tails.size());
}

const std::vector<std::vector<Address>>& BankMapping::compact_tail_index()
    const {
  if (!compact_tails_.has_value()) {
    std::vector<std::vector<Address>> tails(static_cast<size_t>(modulus_));
    const Count innermost = shape_.extent(shape_.rank() - 1);
    const Count tail_start = body_slices_ * modulus_;
    if (innermost > tail_start) {
      NdIndex probe(static_cast<size_t>(shape_.rank()), 0);
      Address leading_flat = 0;
      leading_shape(shape_).for_each([&](const NdIndex& leading) {
        if (shape_.rank() > 1) {
          std::copy(leading.begin(), leading.end(), probe.begin());
        }
        for (Count t = tail_start; t < innermost; ++t) {
          probe[static_cast<size_t>(shape_.rank() - 1)] = t;
          const Count bank = euclid_mod(transform_.apply(probe), modulus_);
          tails[static_cast<size_t>(bank)].push_back(leading_flat);
        }
        ++leading_flat;
      });
    }
    // Leading indices were visited in increasing order, so each per-bank list
    // is already sorted; assert rather than re-sort.
    for (const auto& list : tails) {
      MEMPART_ASSERT(std::is_sorted(list.begin(), list.end()),
                     "compact tail lists must be sorted by construction");
    }
    compact_tails_ = std::move(tails);
  }
  return *compact_tails_;
}

Count BankMapping::total_capacity() const {
  if (options_.tail == TailPolicy::kCompact && !folded()) {
    // Compact mapping allocates exactly one slot per element.
    return shape_.volume();
  }
  return checked_mul(modulus_, checked_mul(padded_slices_, leading_volume_));
}

Count BankMapping::storage_overhead_elements() const {
  return total_capacity() - shape_.volume();
}

}  // namespace mempart
