// Tier-dispatched kernels behind minimize_banks (Algorithm 1).
//
// The cold-solve hot loops — the O(m^2) pairwise |z(i)-z(j)| scan, the
// multiple-of-N probe over the packed difference bitset, and the
// divisibility probe over the sorted fallback list — live here as a table
// of function pointers selected once per solve from the active
// mempart::simd tier. Each kernel is written once as a template over a
// lane wrapper (common/simd.h) and instantiated per tier in its own
// translation unit — bank_kernels_base.cpp for scalar/SSE2/NEON,
// bank_kernels_avx2.cpp compiled with -mavx2 — mirroring the SoA fast
// path (sim/soa_kernels.h), so AVX2 instructions never leak into code a
// pre-AVX2 CPU could reach.
#pragma once

#include <cstdint>

#include "common/simd.h"
#include "common/types.h"

namespace mempart::bank {

/// One tier's kernel table. `tier` is what the table actually implements —
/// narrower than the requested tier when the binary lacks the wider
/// instantiation, and individual entries may point at the scalar kernel
/// when the tier's wrapper would spill (see bank_kernels_base.cpp).
struct Kernels {
  simd::Tier tier = simd::Tier::kScalar;
  Count lanes = 1;

  /// out[j] = |base - src[j]| for j in [0, count). No per-pair overflow
  /// checks: the caller bounds max(z)-min(z) with abs_diff_checked before
  /// the pair pass, and every pairwise difference is <= that spread.
  void (*abs_diff_row)(Address base, const Address* src, Count count,
                       std::int64_t* out) = nullptr;

  /// True iff some multiple k*step with k >= 2 and k*step <= max_value has
  /// its bit set in the packed existence bitset (bit d of word d/64 means
  /// "difference d observed"). The k = 1 probe is the caller's own-bit
  /// prefilter. *probes is incremented by the number of multiples examined
  /// (early exit counts the whole vector step it stopped in).
  bool (*table_has_multiple)(const std::uint64_t* bits, Count max_value,
                             Count step, Count* probes) = nullptr;

  /// True iff any of diffs[0..count) (all > 0) is divisible by divisor
  /// (>= 2). Uses the modular-inverse divisibility test — x % d == 0 for
  /// d = 2^s * t (t odd) iff the low s bits of x are clear and
  /// (x >> s) * inv(t) <=u floor((2^64-1)/t) — so the probe is two
  /// multiplies and two compares per lane, no division. *probes is
  /// incremented by the number of differences examined.
  bool (*any_divisible)(const std::int64_t* diffs, Count count, Count divisor,
                        Count* probes) = nullptr;
};

/// The kernel table for `tier`, clamped to what this binary instantiates.
const Kernels& kernels_for(simd::Tier tier);

/// Implemented only in bank_kernels_avx2.cpp (x86-64 builds).
const Kernels& avx2_kernels();

}  // namespace mempart::bank
