// Design-space advisor: enumerate the Pareto-relevant partitioning options.
//
// Problem 1 is multi-objective (delta_II, bank count, storage overhead) and
// §3 notes that "different optimizing orders lead to solutions of different
// concerns". The advisor makes that concrete: for one pattern and array it
// solves every distinct operating point the algorithms offer — the
// unconstrained optimum, every same-size sweep point with a distinct
// (banks, delta) trade, and every fast-fold/bandwidth level — scores each
// with the storage and access-cycle costs, and returns the Pareto-optimal
// set (no point dominates another). A designer, or the bank_constrained
// example, picks from this menu instead of re-running solvers by hand.
#pragma once

#include <string>
#include <vector>

#include "core/partitioner.h"

namespace mempart {

/// One candidate operating point.
struct DesignPoint {
  PartitionRequest request;      ///< how to reproduce it
  Count banks = 0;
  Count delta_ii = 0;
  Count access_cycles = 0;       ///< with the request's bank bandwidth
  Count overhead_elements = 0;
  std::string label;             ///< e.g. "unconstrained", "same-size N=7"

  /// True when this point is at least as good as `other` on every axis and
  /// strictly better on at least one (bank count, cycles, overhead).
  [[nodiscard]] bool dominates(const DesignPoint& other) const;
};

/// Exploration controls.
struct AdvisorOptions {
  Count max_bandwidth = 2;   ///< bandwidth levels to consider (1..max)
  bool include_dominated = false;  ///< keep dominated points in the result
};

/// Enumerates candidate solutions for `pattern` over `shape` and returns
/// them sorted by bank count (ascending), Pareto-filtered by default.
[[nodiscard]] std::vector<DesignPoint> explore_design_space(
    const Pattern& pattern, const NdShape& shape,
    const AdvisorOptions& options = {});

}  // namespace mempart
