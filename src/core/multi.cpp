#include "core/multi.h"

#include <algorithm>

#include "common/errors.h"

namespace mempart {

Count MultiPartitionResult::total_banks() const {
  Count total = 0;
  for (const NamedSolution& a : arrays) total += a.solution.num_banks();
  return total;
}

Count MultiPartitionResult::total_overhead_elements() const {
  Count total = 0;
  for (const NamedSolution& a : arrays) {
    if (a.solution.mapping.has_value()) {
      total += a.solution.mapping->storage_overhead_elements();
    }
  }
  return total;
}

Count MultiPartitionResult::access_cycles() const {
  Count worst = 1;
  for (const NamedSolution& a : arrays) {
    worst = std::max(worst, a.solution.access_cycles());
  }
  return worst;
}

OpTally MultiPartitionResult::total_ops() const {
  OpTally total;
  for (const NamedSolution& a : arrays) total += a.solution.ops;
  return total;
}

MultiPartitionResult partition_arrays(
    const std::vector<ArrayAccess>& accesses) {
  MEMPART_REQUIRE(!accesses.empty(), "partition_arrays: no arrays given");
  MultiPartitionResult result;
  result.arrays.reserve(accesses.size());
  for (const ArrayAccess& access : accesses) {
    result.arrays.push_back(
        {access.name, Partitioner::solve(access.request)});
  }
  return result;
}

}  // namespace mempart
