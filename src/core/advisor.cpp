#include "core/advisor.h"

#include <algorithm>
#include <set>

#include "common/errors.h"

namespace mempart {
namespace {

DesignPoint evaluate(PartitionRequest request, std::string label) {
  const PartitionSolution solution = Partitioner::solve(request);
  DesignPoint point;
  point.banks = solution.num_banks();
  point.delta_ii = solution.delta_ii();
  point.access_cycles = solution.access_cycles();
  point.overhead_elements = solution.storage_overhead_elements();
  point.label = std::move(label);
  point.request = std::move(request);
  return point;
}

}  // namespace

bool DesignPoint::dominates(const DesignPoint& other) const {
  const bool no_worse = banks <= other.banks &&
                        access_cycles <= other.access_cycles &&
                        overhead_elements <= other.overhead_elements;
  const bool better = banks < other.banks ||
                      access_cycles < other.access_cycles ||
                      overhead_elements < other.overhead_elements;
  return no_worse && better;
}

std::vector<DesignPoint> explore_design_space(const Pattern& pattern,
                                              const NdShape& shape,
                                              const AdvisorOptions& options) {
  MEMPART_REQUIRE(options.max_bandwidth >= 1,
                  "explore_design_space: max_bandwidth must be >= 1");
  PartitionRequest base;
  base.pattern = pattern;
  base.array_shape = shape;

  std::vector<DesignPoint> points;

  // The unconstrained optimum, padded and compact.
  points.push_back(evaluate(base, "unconstrained"));
  {
    PartitionRequest compact = base;
    compact.tail = TailPolicy::kCompact;
    points.push_back(evaluate(compact, "unconstrained compact-tail"));
  }
  const Count nf = points.front().banks;

  // Same-size sweep: one candidate per distinct (N, delta) trade below N_f.
  for (Count nmax = 1; nmax < nf; ++nmax) {
    PartitionRequest req = base;
    req.max_banks = nmax;
    req.strategy = ConstraintStrategy::kSameSize;
    points.push_back(evaluate(
        req, "same-size Nmax=" + std::to_string(nmax)));
  }

  // Fast folds at each bandwidth level (bandwidth 1 fold levels are covered
  // by the same-size sweep's cycle trades; higher B changes the cycle cost).
  for (Count bandwidth = 2; bandwidth <= options.max_bandwidth; ++bandwidth) {
    PartitionRequest req = base;
    req.bank_bandwidth = bandwidth;
    points.push_back(evaluate(req, "bandwidth B=" + std::to_string(bandwidth)));
  }

  // Deduplicate identical outcomes (many Nmax values collapse to one N).
  std::set<std::tuple<Count, Count, Count>> seen;
  std::vector<DesignPoint> unique;
  for (DesignPoint& p : points) {
    if (seen.insert({p.banks, p.access_cycles, p.overhead_elements}).second) {
      unique.push_back(std::move(p));
    }
  }

  // Pareto filter.
  std::vector<DesignPoint> result;
  for (const DesignPoint& candidate : unique) {
    const bool dominated =
        !options.include_dominated &&
        std::any_of(unique.begin(), unique.end(),
                    [&](const DesignPoint& other) {
                      return other.dominates(candidate);
                    });
    if (!dominated) result.push_back(candidate);
  }
  std::sort(result.begin(), result.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              return std::tie(a.banks, a.access_cycles, a.overhead_elements) <
                     std::tie(b.banks, b.access_cycles, b.overhead_elements);
            });
  return result;
}

}  // namespace mempart
