#include "core/linear_transform.h"

#include <sstream>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"

namespace mempart {

LinearTransform::LinearTransform(std::vector<Count> alpha)
    : alpha_(std::move(alpha)) {
  MEMPART_REQUIRE(!alpha_.empty(), "LinearTransform: alpha must be non-empty");
}

void LinearTransform::assign(std::span<const Count> alpha) {
  MEMPART_REQUIRE(!alpha.empty(), "LinearTransform::assign: alpha non-empty");
  alpha_.assign(alpha.begin(), alpha.end());
}

LinearTransform LinearTransform::derive(const Pattern& pattern) {
  const int n = pattern.rank();
  // D_j = max Delta_j - min Delta_j + 1. The scans over the m offsets are
  // comparisons; the +1 and the subtraction are additions.
  std::vector<Count> extents(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) {
    extents[static_cast<size_t>(d)] = pattern.extent(d);
    OpCounter::charge(OpKind::kCompare, 2 * (pattern.size() - 1));
    OpCounter::charge(OpKind::kAdd, 2);
  }
  // alpha_j = prod_{k>j} D_k, computed as a running suffix product:
  // n-1 multiplications.
  std::vector<Count> alpha(static_cast<size_t>(n));
  alpha[static_cast<size_t>(n - 1)] = 1;
  for (int j = n - 2; j >= 0; --j) {
    try {
      alpha[static_cast<size_t>(j)] =
          checked_mul(alpha[static_cast<size_t>(j + 1)],
                      extents[static_cast<size_t>(j + 1)]);
    } catch (const OverflowError&) {
      std::ostringstream os;
      os << "LinearTransform::derive: alpha_" << j
         << " = prod_{k>j} D_k overflows 64 bits for "
         << pattern.to_string();
      throw OverflowError(os.str());
    }
    OpCounter::charge(OpKind::kMul);
  }
  return LinearTransform(std::move(alpha));
}

Address LinearTransform::apply(const NdIndex& x) const {
  MEMPART_REQUIRE(static_cast<int>(x.size()) == rank(),
                  "LinearTransform::apply: rank mismatch");
  // alpha_{n-1} is 1 for derived transforms, but apply() must stay correct
  // for arbitrary (baseline-style) vectors, so charge a full dot product:
  // n multiplications and n-1 additions.
  Address acc = 0;
  for (size_t d = 0; d < alpha_.size(); ++d) {
    acc = checked_add_signed(acc, checked_mul_signed(alpha_[d], x[d]));
  }
  OpCounter::charge(OpKind::kMul, rank());
  OpCounter::charge(OpKind::kAdd, rank() - 1);
  return acc;
}

std::vector<Address> LinearTransform::transform_values(
    const Pattern& pattern) const {
  MEMPART_REQUIRE(pattern.rank() == rank(),
                  "LinearTransform::transform_values: rank mismatch");
  std::vector<Address> z;
  z.reserve(static_cast<size_t>(pattern.size()));
  for (const NdIndex& delta : pattern.offsets()) z.push_back(apply(delta));
  return z;
}

std::string LinearTransform::to_string() const {
  std::ostringstream os;
  os << "alpha=(";
  for (size_t d = 0; d < alpha_.size(); ++d) {
    if (d > 0) os << ", ";
    os << alpha_[d];
  }
  os << ')';
  return os.str();
}

}  // namespace mempart
