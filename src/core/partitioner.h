// Public facade of the mempart core: one call from pattern to solution.
//
// Mirrors Problem 1 of the paper: given a pattern P accessing m elements,
// find (B, F) minimising (1) the additional initiation interval delta_P,
// (2) the bank count N, and (3) the storage overhead Delta W, subject to
// address uniqueness and N <= N_max. The solver follows the paper's
// optimisation order — delta_P first (via the closed-form transform and
// Algorithm 1), then N (via the N_max constraint strategy), with Delta W
// fixed by the tail policy.
//
// Typical use:
//
//   PartitionRequest req;
//   req.pattern = patterns::log5x5();
//   req.array_shape = NdShape({640, 480});
//   req.max_banks = 10;
//   req.strategy = ConstraintStrategy::kSameSize;
//   PartitionSolution sol = Partitioner::solve(req);
//   sol.mapping->bank_of({3, 7});   // -> bank index
//
#pragma once

#include <optional>
#include <string>

#include "common/nd.h"
#include "common/op_counter.h"
#include "common/types.h"
#include "core/bank_constraint.h"
#include "core/bank_mapping.h"
#include "core/bank_search.h"
#include "core/linear_transform.h"
#include "pattern/pattern.h"

namespace mempart {

/// Inputs of Problem 1.
struct PartitionRequest {
  /// The access pattern P (required).
  std::optional<Pattern> pattern;

  /// The concrete array to map; when set, the solution carries a full
  /// BankMapping and storage-overhead figures.
  std::optional<NdShape> array_shape;

  /// N_max; 0 means unconstrained.
  Count max_banks = 0;

  /// Bank bandwidth B (§3): accesses each physical bank serves per cycle.
  /// With B > 1 the solver combines B conflict-free banks into one (§5.1's
  /// "reduce bank number from 13 to 7" example), keeping single-cycle
  /// access as long as no tighter N_max forces further folding.
  Count bank_bandwidth = 1;

  /// How to respect N_max when N_f exceeds it.
  ConstraintStrategy strategy = ConstraintStrategy::kFastFold;

  /// Tail handling of the intra-bank mapping (kCompact requires an
  /// unconstrained or same-size solution; folding needs padding).
  TailPolicy tail = TailPolicy::kPadded;
};

/// Everything the solver derived. Plain data; members are documented where
/// their types are defined.
struct PartitionSolution {
  LinearTransform transform;       ///< the §4.1 closed-form alpha
  BankSearchResult search;         ///< Algorithm 1 output (N_f, Q, M, C)
  ConstrainedBanks constraint;     ///< N_c / fold factor / delta_P / sweep
  std::vector<Address> transformed;///< z(i) per pattern offset
  std::vector<Count> pattern_banks;///< final bank index per pattern offset
  std::optional<BankMapping> mapping;  ///< set iff array_shape was given
  OpTally ops;                     ///< arithmetic charged while solving
  Count bank_bandwidth = 1;        ///< B the solution was sized for

  /// Bank count of the final solution (N_c; equals N_f when unconstrained).
  [[nodiscard]] Count num_banks() const { return constraint.num_banks; }

  /// delta_P of the final solution: worst per-bank collisions minus one.
  [[nodiscard]] Count delta_ii() const { return constraint.delta_ii; }

  /// Cycles to fetch all m pattern elements: ceil((delta_P + 1) / B).
  [[nodiscard]] Count access_cycles() const;

  /// Storage overhead in elements; requires a mapping (array_shape given).
  [[nodiscard]] Count storage_overhead_elements() const;

  [[nodiscard]] std::string summary() const;
};

/// Stateless solver entry point.
class Partitioner {
 public:
  /// Solves Problem 1 for `request`. Throws InvalidArgument on a missing or
  /// malformed pattern, or an array_shape whose rank differs from the
  /// pattern's. Records the arithmetic spent into `solution.ops`.
  [[nodiscard]] static PartitionSolution solve(const PartitionRequest& request);
};

}  // namespace mempart
