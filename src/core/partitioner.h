// Public facade of the mempart core: one call from pattern to solution.
//
// Mirrors Problem 1 of the paper: given a pattern P accessing m elements,
// find (B, F) minimising (1) the additional initiation interval delta_P,
// (2) the bank count N, and (3) the storage overhead Delta W, subject to
// address uniqueness and N <= N_max. The solver follows the paper's
// optimisation order — delta_P first (via the closed-form transform and
// Algorithm 1), then N (via the N_max constraint strategy), with Delta W
// fixed by the tail policy.
//
// Typical use:
//
//   PartitionRequest req;
//   req.pattern = patterns::log5x5();
//   req.array_shape = NdShape({640, 480});
//   req.max_banks = 10;
//   req.strategy = ConstraintStrategy::kSameSize;
//   PartitionSolution sol = Partitioner::solve(req);
//   sol.mapping->bank_of({3, 7});   // -> bank index
//
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/nd.h"
#include "common/op_counter.h"
#include "common/types.h"
#include "core/bank_constraint.h"
#include "core/bank_mapping.h"
#include "core/bank_search.h"
#include "core/linear_transform.h"
#include "core/solve_cache.h"
#include "pattern/canonical.h"
#include "pattern/pattern.h"

namespace mempart {

/// Inputs of Problem 1.
struct PartitionRequest {
  /// The access pattern P (required).
  std::optional<Pattern> pattern;

  /// The concrete array to map; when set, the solution carries a full
  /// BankMapping and storage-overhead figures.
  std::optional<NdShape> array_shape;

  /// N_max; 0 means unconstrained.
  Count max_banks = 0;

  /// Bank bandwidth B (§3): accesses each physical bank serves per cycle.
  /// With B > 1 the solver combines B conflict-free banks into one (§5.1's
  /// "reduce bank number from 13 to 7" example), keeping single-cycle
  /// access as long as no tighter N_max forces further folding.
  Count bank_bandwidth = 1;

  /// How to respect N_max when N_f exceeds it.
  ConstraintStrategy strategy = ConstraintStrategy::kFastFold;

  /// Tail handling of the intra-bank mapping (kCompact requires an
  /// unconstrained or same-size solution; folding needs padding).
  TailPolicy tail = TailPolicy::kPadded;
};

/// Everything the solver derived. Plain data; members are documented where
/// their types are defined.
struct PartitionSolution {
  LinearTransform transform;       ///< the §4.1 closed-form alpha
  BankSearchResult search;         ///< Algorithm 1 output (N_f, Q, M, C)
  ConstrainedBanks constraint;     ///< N_c / fold factor / delta_P / sweep
  std::vector<Address> transformed;///< z(i) per pattern offset
  std::vector<Count> pattern_banks;///< final bank index per pattern offset
  std::optional<BankMapping> mapping;  ///< set iff array_shape was given
  OpTally ops;                     ///< arithmetic charged while solving
  Count bank_bandwidth = 1;        ///< B the solution was sized for

  /// Bank count of the final solution (N_c; equals N_f when unconstrained).
  [[nodiscard]] Count num_banks() const { return constraint.num_banks; }

  /// delta_P of the final solution: worst per-bank collisions minus one.
  [[nodiscard]] Count delta_ii() const { return constraint.delta_ii; }

  /// Cycles to fetch all m pattern elements: ceil((delta_P + 1) / B).
  [[nodiscard]] Count access_cycles() const;

  /// Storage overhead in elements; requires a mapping (array_shape given).
  [[nodiscard]] Count storage_overhead_elements() const;

  [[nodiscard]] std::string summary() const;
};

/// Scheduling knobs of Partitioner::solve_many.
struct BatchOptions {
  Count threads = 0;     ///< executors; 0 = default_thread_count()
  Count min_grain = 16;  ///< minimum requests per scheduled chunk
};

/// One slot of solve_many_collect: either a solution or the what() of the
/// mempart::Error that request raised.
struct BatchResult {
  std::optional<PartitionSolution> solution;
  std::string error;

  /// True when the request's canonical class was already cached when the
  /// batch started — i.e. the batch did no cold solve for it. False for
  /// cold classes (including every duplicate of one: they all waited on
  /// the same phase-2 solve) and whenever no cache is bound. Lets serving
  /// layers report hit and miss latency as separate series instead of a
  /// bimodal blur.
  bool cache_hit = false;

  [[nodiscard]] bool ok() const { return solution.has_value(); }
};

/// Solver entry point.
///
/// The static solve() is the stateless single-request API. A Partitioner
/// *instance* adds the throughput machinery on top of the very same
/// pipeline: a canonical solution cache (pattern/canonical.h describes the
/// equivalence classes) and a batch API that dedups canonically equal
/// requests and fans distinct solves over a thread pool. Cached and
/// uncached paths share one implementation, so a cache hit returns, field
/// for field, what the direct solve computes (ops excepted: a hit honestly
/// reports the smaller amount of arithmetic it performed).
///
/// Instances hold per-solve scratch buffers and are therefore NOT
/// thread-safe; the SolveCache they share is. solve_many hands each worker
/// chunk its own scratch internally.
class Partitioner {
 public:
  /// Solves Problem 1 for `request`. Throws InvalidArgument on a missing or
  /// malformed pattern, or an array_shape whose rank differs from the
  /// pattern's. Records the arithmetic spent into `solution.ops`.
  [[nodiscard]] static PartitionSolution solve(const PartitionRequest& request);

  /// Binds the instance to `cache` (nullptr = solve uncached but keep the
  /// scratch reuse). The default shares the process-wide SolveCache.
  explicit Partitioner(SolveCache* cache = &SolveCache::global());

  /// Like solve(), but consults/populates the bound cache.
  [[nodiscard]] PartitionSolution solve_cached(const PartitionRequest& request);

  /// solve_cached() into a caller-owned solution, reusing its buffers. On a
  /// warm cache hit for a request without array_shape this performs zero
  /// heap allocations (verified by tests/core/solve_cache_test.cpp, audited
  /// statically by mempart_analyze's noalloc rule).
  MEMPART_NOALLOC void solve_into(const PartitionRequest& request,
                                  PartitionSolution& out);

  /// Solves a batch: canonically equal requests are deduplicated, the
  /// distinct solves fan out over a ThreadPool in chunks of at least
  /// options.min_grain, and results come back in input order — the output
  /// is byte-identical at any thread count. Throws the first (by input
  /// order) error after the batch drains.
  [[nodiscard]] std::vector<PartitionSolution> solve_many(
      std::span<const PartitionRequest> requests,
      const BatchOptions& options = {});

  /// solve_many that reports per-request errors instead of throwing, for
  /// callers streaming untrusted requests (`mempart batch`).
  [[nodiscard]] std::vector<BatchResult> solve_many_collect(
      std::span<const PartitionRequest> requests,
      const BatchOptions& options = {});

  [[nodiscard]] SolveCache* cache() const { return cache_; }

 private:
  /// The one shared pipeline: canonicalize -> cache lookup or canonical
  /// solve -> rehydrate -> mapping. Static solve() passes cache = nullptr.
  static void solve_impl(const PartitionRequest& request, SolveCache* cache,
                         Canonicalizer& canon, BankSearchScratch& scratch,
                         std::vector<std::int64_t>& key,
                         PartitionSolution& out);

  SolveCache* cache_ = nullptr;
  Canonicalizer canon_;
  BankSearchScratch search_scratch_;
  std::vector<std::int64_t> key_;
};

}  // namespace mempart
