#include "core/delta_ii.h"

#include <algorithm>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"

namespace mempart {

Count delta_ii(std::span<const Address> z, Count banks) {
  MEMPART_REQUIRE(banks >= 1, "delta_ii: banks must be >= 1");
  MEMPART_REQUIRE(!z.empty(), "delta_ii: z must be non-empty");
  std::vector<Count> histogram(static_cast<size_t>(banks), 0);
  for (Address v : z) {
    ++histogram[static_cast<size_t>(euclid_mod(v, banks))];
  }
  OpCounter::charge(OpKind::kDiv, static_cast<Count>(z.size()));
  const Count mode = *std::max_element(histogram.begin(), histogram.end());
  OpCounter::charge(OpKind::kCompare, banks - 1);
  return mode - 1;
}

Count delta_ii(const Pattern& pattern, const LinearTransform& transform,
               Count banks) {
  return delta_ii(transform.transform_values(pattern), banks);
}

std::vector<Count> bank_indices(std::span<const Address> z, Count banks) {
  MEMPART_REQUIRE(banks >= 1, "bank_indices: banks must be >= 1");
  std::vector<Count> out;
  out.reserve(z.size());
  for (Address v : z) out.push_back(euclid_mod(v, banks));
  return out;
}

}  // namespace mempart
