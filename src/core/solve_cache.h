// Sharded, mutex-striped LRU cache of canonical partitioning solves.
//
// The motivation is the service-scale workload of the roadmap: millions of
// solve requests in which most patterns are translates (sliding windows) or
// extent-permutations (layout changes) of a small set of stencils. The
// canonical solve — Algorithm 1's bank search plus the N_max constraint
// stage — depends only on the canonical key (extents + sorted transformed
// values + solver options), so one entry serves the whole equivalence
// class; everything per-request (alpha order, per-offset banks, the
// BankMapping) is cheap to rehydrate and never cached.
//
// Concurrency: the key space is split across shards by key hash, each shard
// holding its own mutex, LRU list and index. Threads solving different
// canonical classes rarely contend; a hit holds one shard mutex for a list
// splice and a shared_ptr copy. Values are immutable and shared, so a hit
// returned to one thread stays valid even if another thread evicts the
// entry a microsecond later.
//
// Observability: the cache keeps its own always-on relaxed counters
// (workers run with obs metrics disabled by default, and the counters must
// not depend on the thread-local gate) and publishes them to the obs
// registry as cache.* gauges via publish_stats(); `mempart profile` and
// `mempart batch` include them in the metrics JSON dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "core/bank_constraint.h"
#include "core/bank_search.h"

namespace mempart {

/// The canonical-solve payload: everything the solver derives that depends
/// only on the canonical key. Immutable once inserted.
struct CachedSolve {
  BankSearchResult search;     ///< Algorithm 1 on the canonical z values
  ConstrainedBanks constraint; ///< N_max/bandwidth constraint stage output
};

/// Sharded LRU cache keyed on flat canonical key words.
class SolveCache {
 public:
  /// Counter snapshot; totals over all shards since construction/clear().
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
    Count entries = 0;   ///< currently resident
    Count capacity = 0;  ///< configured total capacity
    Count shards = 0;    ///< shard count actually used
  };

  /// `capacity` is the total entry budget (minimum 1), split evenly across
  /// `shards` stripes (rounded up to a power of two; 0 reads
  /// MEMPART_CACHE_SHARDS, defaulting to 8).
  explicit SolveCache(Count capacity = 4096, Count shards = 0);
  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Atomically replaces the shard table with a freshly sized one
  /// (drain-and-resize): all cached entries are dropped, hit/miss/insert/
  /// evict counters carry over. Thread-safe against concurrent find/insert
  /// — in-flight calls complete against the table they loaded (an insert
  /// racing the swap may land in the retiring table and is simply lost,
  /// which only costs a future re-solve). Replaces the old first-caller-
  /// wins sizing: `mempart serve --cache-capacity` can now resize the
  /// process-wide cache explicitly instead of silently disagreeing with
  /// MEMPART_CACHE_CAPACITY.
  void reconfigure(Count capacity, Count shards = 0);

  /// Looks up `key`, refreshing its LRU position. Returns nullptr on miss.
  [[nodiscard]] std::shared_ptr<const CachedSolve> find(
      std::span<const std::int64_t> key);

  /// True iff `key` is currently cached. A pure peek: no LRU refresh and
  /// no hit/miss accounting, so callers classifying work (was this request
  /// going to be a cold solve?) don't distort the cache's own telemetry.
  [[nodiscard]] bool contains(std::span<const std::int64_t> key) const;

  /// Inserts (or refreshes) `key` -> `value`, evicting the shard's least
  /// recently used entries beyond its capacity share. Alloc fence: insert
  /// runs only on the cache-miss cold path, never on a warm hit.
  MEMPART_ALLOC_BOUNDARY void insert(std::span<const std::int64_t> key,
                                     std::shared_ptr<const CachedSolve> value);

  [[nodiscard]] Stats stats() const;

  /// Drops all entries and zeroes the counters (capacity/shards unchanged).
  void clear();

  /// Writes the current Stats into the obs metrics registry as cache.*
  /// gauges (cache.hits, cache.misses, cache.evictions, cache.insertions,
  /// cache.entries, cache.capacity, cache.shards). Call from a metrics-
  /// enabled thread before exporting; see docs/OBSERVABILITY.md.
  void publish_stats() const;

  [[nodiscard]] Count capacity() const;
  [[nodiscard]] Count shard_count() const;

  /// Process-wide cache used by default-constructed Partitioner instances.
  /// Capacity and shards come from MEMPART_CACHE_CAPACITY (default 4096)
  /// and MEMPART_CACHE_SHARDS (default 8).
  static SolveCache& global();

  /// FNV-1a over the key words (exposed for tests).
  [[nodiscard]] static std::uint64_t hash_key(
      std::span<const std::int64_t> key) noexcept;

 private:
  struct Entry {
    std::vector<std::int64_t> key;
    std::uint64_t hash = 0;
    std::shared_ptr<const CachedSolve> value;
  };
  /// Index key: a view into an Entry's key storage (list nodes are stable)
  /// or, during lookup, into the caller's scratch.
  struct KeyRef {
    const std::int64_t* data = nullptr;
    size_t size = 0;
    std::uint64_t hash = 0;
  };
  struct KeyHash {
    size_t operator()(const KeyRef& ref) const noexcept {
      return static_cast<size_t>(ref.hash);
    }
  };
  struct KeyEq {
    bool operator()(const KeyRef& a, const KeyRef& b) const noexcept {
      return a.size == b.size &&
             std::equal(a.data, a.data + a.size, b.data);
    }
  };
  struct Shard {
    mutable Mutex mutex;
    /// front = most recently used
    std::list<Entry> lru MEMPART_GUARDED_BY(mutex);
    std::unordered_map<KeyRef, std::list<Entry>::iterator, KeyHash, KeyEq>
        index MEMPART_GUARDED_BY(mutex);
    std::int64_t hits MEMPART_GUARDED_BY(mutex) = 0;
    std::int64_t misses MEMPART_GUARDED_BY(mutex) = 0;
    std::int64_t insertions MEMPART_GUARDED_BY(mutex) = 0;
    std::int64_t evictions MEMPART_GUARDED_BY(mutex) = 0;
  };

  /// One immutable-shape shard table: reconfigure() swaps the whole table
  /// atomically instead of resizing in place, so find/insert can run
  /// lock-free against the table pointer (per-shard mutexes still guard the
  /// shard contents). The retiring table stays alive until the last
  /// in-flight call drops its shared_ptr.
  struct Table {
    Count capacity = 0;
    Count per_shard_capacity = 0;
    size_t shard_mask = 0;
    std::vector<Shard> shards;
  };

  [[nodiscard]] static std::shared_ptr<Table> make_table(Count capacity,
                                                         Count shards);
  [[nodiscard]] std::shared_ptr<Table> table() const {
    return table_.load(std::memory_order_acquire);
  }
  [[nodiscard]] static Shard& shard_for(Table& table, std::uint64_t hash) {
    return table.shards[static_cast<size_t>(hash) & table.shard_mask];
  }

  /// Pops LRU entries beyond the shard's capacity share. Caller must hold
  /// the shard mutex (enforced at compile time under MEMPART_THREAD_SAFETY).
  static void evict_over_capacity(const Table& table, Shard& shard)
      MEMPART_REQUIRES(shard.mutex);

  /// Folds a retiring table's counters into retired_* so stats() stays
  /// monotonic across reconfigure().
  void retire_counters(Table& table);

  std::atomic<std::shared_ptr<Table>> table_;
  /// Counter totals of tables replaced by reconfigure()/clear().
  std::atomic<std::int64_t> retired_hits_{0};
  std::atomic<std::int64_t> retired_misses_{0};
  std::atomic<std::int64_t> retired_insertions_{0};
  std::atomic<std::int64_t> retired_evictions_{0};
};

}  // namespace mempart
