// Exhaustive and sampled checkers for partitioning solutions.
//
// These are the ground-truth oracles the tests and the report binaries use:
// they do not trust Theorem 1 or the closed-form overhead — they brute-force
// the definitions. constraint 1 of Problem 1 (address uniqueness) is checked
// by enumerating every element; Definition 4 (delta_P) by enumerating every
// position offset s at which the pattern fits inside the domain.
#pragma once

#include <functional>
#include <string>

#include "common/nd.h"
#include "common/types.h"
#include "core/bank_mapping.h"
#include "pattern/pattern.h"

namespace mempart {

/// Verdict of an exhaustive check; `ok` plus a human-readable reason.
struct VerifyResult {
  bool ok = true;
  std::string message;

  explicit operator bool() const { return ok; }
};

/// Checks constraint 1 of Problem 1: distinct elements map to distinct
/// (bank, offset) pairs, and every offset fits its bank's capacity.
/// Enumerates the whole array — use small shapes.
[[nodiscard]] VerifyResult verify_unique_addresses(const BankMapping& mapping);

/// Measures delta_P by brute force (Definition 4): for every position s at
/// which every element of P lands inside `domain`, histogram the banks of
/// the m accesses; returns max(mode) - 1 over all s. `bank_of` is any bank
/// mapping function (ours or a baseline's).
[[nodiscard]] Count measure_delta_ii(
    const Pattern& pattern, const NdShape& domain,
    const std::function<Count(const NdIndex&)>& bank_of);

/// Same as measure_delta_ii but only over `samples` positions on a regular
/// stride through the valid range — for big domains.
[[nodiscard]] Count measure_delta_ii_sampled(
    const Pattern& pattern, const NdShape& domain,
    const std::function<Count(const NdIndex&)>& bank_of, Count samples);

}  // namespace mempart
