// Closed-form linear transform derivation (paper §4.1, Theorem 1).
//
// The bank index of element x is B(x) = (alpha . x) mod N. The paper's key
// insight: instead of searching for alpha, derive it from the pattern's
// per-dimension extents D_j = max Delta_j - min Delta_j + 1 as the
// mixed-radix weight vector
//
//     alpha_j = prod_{k > j} D_k          (alpha_{n-1} = 1).
//
// Theorem 1 then guarantees the transformed values z(i) = alpha . Delta(i)
// are pairwise distinct for distinct offsets — exactly like reading a number
// in a mixed-radix positional system where digit j ranges over D_j values.
// This drops the transform-finding cost from exponential (search over all
// alpha in [0,N)^n, as the LTB baseline does) to a constant-time formula.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "pattern/pattern.h"

namespace mempart {

/// The transform vector alpha plus the extents it was derived from.
class LinearTransform {
 public:
  /// Constructs from an explicit alpha (used by the baseline and by tests).
  explicit LinearTransform(std::vector<Count> alpha);

  /// Derives alpha from the pattern per §4.1. Charges the derivation's
  /// arithmetic to the active OpScope.
  static LinearTransform derive(const Pattern& pattern);

  /// Default-constructs an empty transform; assign() before use. Exists so
  /// PartitionSolution can be reused across solves without reallocating.
  LinearTransform() = default;

  /// Replaces alpha in place, reusing the existing capacity (the solver's
  /// cache-hit rehydration path must not allocate). Requires non-empty.
  void assign(std::span<const Count> alpha);

  [[nodiscard]] int rank() const { return static_cast<int>(alpha_.size()); }
  [[nodiscard]] const std::vector<Count>& alpha() const { return alpha_; }

  /// alpha . x. Charges the dot product's arithmetic to the active OpScope.
  [[nodiscard]] Address apply(const NdIndex& x) const;

  /// Transformed values z(i) = alpha . Delta(i) for every pattern offset, in
  /// the pattern's (sorted-offset) order.
  [[nodiscard]] std::vector<Address> transform_values(const Pattern& pattern) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const LinearTransform&, const LinearTransform&) = default;

 private:
  std::vector<Count> alpha_;
};

}  // namespace mempart
